package algebra

import (
	"repro/internal/relation"
)

// OptimizeJoins reorders the operands of maximal join subtrees with a
// greedy smallest-intermediate-first heuristic, using actual base
// cardinalities from db. Natural join is commutative and associative, and
// the §3 propagation rules are symmetric in the operands (an annotation
// propagates from a component tuple regardless of the join shape), so the
// rewrite preserves both the view and the annotation propagation relation
// — which the property tests pin down.
//
// The heuristic: start from the pair with the smallest estimated join
// size, then repeatedly attach the operand minimizing the next estimate,
// preferring operands that share attributes (avoiding cross products
// unless forced).
func OptimizeJoins(q Query, db *relation.Database) Query {
	switch q := q.(type) {
	case Scan:
		return q
	case Select:
		return Select{Child: OptimizeJoins(q.Child, db), Cond: q.Cond}
	case Project:
		return Project{Child: OptimizeJoins(q.Child, db), Attrs: q.Attrs}
	case Rename:
		return Rename{Child: OptimizeJoins(q.Child, db), Theta: q.Theta}
	case Union:
		return Union{Left: OptimizeJoins(q.Left, db), Right: OptimizeJoins(q.Right, db)}
	case Join:
		operands := flattenJoins(q)
		for i, op := range operands {
			operands[i] = OptimizeJoins(op, db)
		}
		return orderJoins(operands, db)
	default:
		return q
	}
}

// flattenJoins collects the operands of a maximal join subtree.
func flattenJoins(q Query) []Query {
	if j, ok := q.(Join); ok {
		return append(flattenJoins(j.Left), flattenJoins(j.Right)...)
	}
	return []Query{q}
}

// estimate approximates an operand's cardinality: base relation size for
// scans, recursing through unary operators; unions add, joins multiply
// (crude, but only relative order matters).
func estimate(q Query, db *relation.Database) float64 {
	switch q := q.(type) {
	case Scan:
		if r := db.Relation(q.Rel); r != nil {
			return float64(r.Len())
		}
		return 1
	case Select:
		return estimate(q.Child, db) / 2
	case Project:
		return estimate(q.Child, db)
	case Rename:
		return estimate(q.Child, db)
	case Union:
		return estimate(q.Left, db) + estimate(q.Right, db)
	case Join:
		return estimate(q.Left, db) * estimate(q.Right, db) / 2
	default:
		return 1
	}
}

// joinEstimate scores joining an accumulated schema with a new operand:
// sharing attributes divides the product by a selectivity factor per
// shared attribute; pure cross products keep the full product (worst).
func joinEstimate(accSize float64, accSchema relation.Schema, opSize float64, opSchema relation.Schema) float64 {
	shared := len(accSchema.Common(opSchema))
	est := accSize * opSize
	for i := 0; i < shared; i++ {
		est /= 4 // assumed per-attribute selectivity
	}
	return est
}

// orderJoins greedily builds a left-deep join over the operands.
func orderJoins(operands []Query, db *relation.Database) Query {
	if len(operands) == 1 {
		return operands[0]
	}
	type item struct {
		q      Query
		size   float64
		schema relation.Schema
	}
	items := make([]item, 0, len(operands))
	for _, op := range operands {
		schema, err := SchemaOf(op, db)
		if err != nil {
			// Invalid operand: keep the original order, validation will
			// report the error at evaluation time.
			return NatJoin(operands...)
		}
		items = append(items, item{q: op, size: estimate(op, db), schema: schema})
	}
	// Seed: the pair with the smallest estimated join.
	bi, bj := 0, 1
	best := joinEstimate(items[0].size, items[0].schema, items[1].size, items[1].schema)
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			if e := joinEstimate(items[i].size, items[i].schema, items[j].size, items[j].schema); e < best {
				best, bi, bj = e, i, j
			}
		}
	}
	acc := Join{Left: items[bi].q, Right: items[bj].q}
	accSchema := items[bi].schema.Join(items[bj].schema)
	accSize := best
	used := make([]bool, len(items))
	used[bi], used[bj] = true, true

	var result Query = acc
	for picked := 2; picked < len(items); picked++ {
		next := -1
		var nextEst float64
		for i, it := range items {
			if used[i] {
				continue
			}
			e := joinEstimate(accSize, accSchema, it.size, it.schema)
			// Prefer attribute-sharing operands over cross products.
			if len(accSchema.Common(it.schema)) == 0 {
				e *= 1e6
			}
			if next < 0 || e < nextEst {
				next, nextEst = i, e
			}
		}
		result = Join{Left: result, Right: items[next].q}
		accSchema = accSchema.Join(items[next].schema)
		accSize = nextEst
		used[next] = true
	}
	return result
}
