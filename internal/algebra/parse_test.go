package algebra

import (
	"testing"

	"repro/internal/relation"
)

func TestParseScan(t *testing.T) {
	q, err := Parse("UserGroup")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := q.(Scan)
	if !ok || s.Rel != "UserGroup" {
		t.Errorf("got %#v", q)
	}
}

func TestParseProjectJoin(t *testing.T) {
	q, err := Parse("project(user, file; join(UserGroup, GroupFile))")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := q.(Project)
	if !ok {
		t.Fatalf("root %T", q)
	}
	if len(p.Attrs) != 2 || p.Attrs[0] != "user" || p.Attrs[1] != "file" {
		t.Errorf("attrs %v", p.Attrs)
	}
	if _, ok := p.Child.(Join); !ok {
		t.Errorf("child %T", p.Child)
	}
}

func TestParseSelectConditions(t *testing.T) {
	cases := []string{
		"select(A = 'x'; R)",
		"select(A != 'x' and B = C; R)",
		"select(A < 3 or not B >= -2; R)",
		"select((A = 'x' or B = 'y') and C = 'z'; R)",
		"select(true; R)",
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if _, ok := q.(Select); !ok {
			t.Errorf("Parse(%q) root %T", src, q)
		}
	}
}

func TestParseNaryFoldsLeftDeep(t *testing.T) {
	q, err := Parse("join(A, B, C)")
	if err != nil {
		t.Fatal(err)
	}
	j, ok := q.(Join)
	if !ok {
		t.Fatalf("root %T", q)
	}
	if _, ok := j.Left.(Join); !ok {
		t.Errorf("expected left-deep join, got left %T", j.Left)
	}
	u, err := Parse("union(A, B, C)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.(Union); !ok {
		t.Fatalf("root %T", u)
	}
}

func TestParseRename(t *testing.T) {
	q, err := Parse("rename(A -> A1, B -> B1; R)")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := q.(Rename)
	if !ok {
		t.Fatalf("root %T", q)
	}
	if r.Theta["A"] != "A1" || r.Theta["B"] != "B1" {
		t.Errorf("theta %v", r.Theta)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"project(; R)",
		"project(A R)",
		"select(A =; R)",
		"select(A = 'unterminated; R)",
		"join(R)",
		"union(R)",
		"rename(A; R)",
		"rename(A -> ; R)",
		"R extra",
		"select(A ~ 'x'; R)",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// Round trip: Format then Parse yields a structurally equal query.
func TestFormatParseRoundTrip(t *testing.T) {
	queries := []Query{
		R("R"),
		Pi([]relation.Attribute{"user", "file"}, NatJoin(R("UserGroup"), R("GroupFile"))),
		Sigma(And{Left: Eq("A", "x"), Right: AttrConst{Attr: "B", Op: OpLt, Val: relation.Int(10)}}, R("R")),
		Sigma(Or{Left: Not{Inner: Eq("A", "x")}, Right: EqAttr("A", "B")}, R("R")),
		Un(NatJoin(R("R1"), R("S1")), NatJoin(R("R2"), R("S2"))),
		Delta(map[relation.Attribute]relation.Attribute{"A": "A1"}, R("R")),
		Sigma(True{}, R("R")),
	}
	for _, q := range queries {
		src := Format(q)
		back, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(Format(%s)): %v", src, err)
			continue
		}
		if !Equal(q, back) {
			t.Errorf("round trip changed query:\n  in:  %s\n  out: %s", src, Format(back))
		}
	}
}

func TestFormatMath(t *testing.T) {
	q := Pi([]relation.Attribute{"A", "C"}, NatJoin(R("R1"), R("R2")))
	got := FormatMath(q)
	want := "Π_{A,C}((R1 ⋈ R2))"
	if got != want {
		t.Errorf("FormatMath=%q want %q", got, want)
	}
}
