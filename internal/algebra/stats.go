package algebra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// NodeStats records the work one operator did during an instrumented
// evaluation.
type NodeStats struct {
	// Op names the operator ("scan R1", "join", "project", ...).
	Op string
	// OutputRows is the cardinality of the node's result.
	OutputRows int
	// WorkRows counts row combinations examined (probe matches for joins,
	// input rows otherwise). For the Theorem 2.5 instances this is where
	// the Σ n^(n-|Si|) intermediate blow-up shows up.
	WorkRows int
	// Depth is the node's depth in the query tree (root = 0).
	Depth int
}

// EvalStats is the result of an instrumented evaluation: the view plus a
// per-node cost profile in post-order.
type EvalStats struct {
	View  *relation.Relation
	Nodes []NodeStats
}

// TotalWork sums WorkRows over all nodes — a machine-independent cost
// measure used by the benchmark harness to demonstrate complexity shapes
// without trusting wall clocks.
func (s *EvalStats) TotalWork() int {
	total := 0
	for _, n := range s.Nodes {
		total += n.WorkRows
	}
	return total
}

// MaxIntermediate returns the largest intermediate result size.
func (s *EvalStats) MaxIntermediate() int {
	max := 0
	for _, n := range s.Nodes {
		if n.OutputRows > max {
			max = n.OutputRows
		}
	}
	return max
}

// Profile renders the per-node statistics as an indented table.
func (s *EvalStats) Profile() string {
	var b strings.Builder
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "%s%-12s out=%-8d work=%d\n",
			strings.Repeat("  ", n.Depth), n.Op, n.OutputRows, n.WorkRows)
	}
	return b.String()
}

// EvalWithStats evaluates q over db recording per-operator costs.
func EvalWithStats(q Query, db *relation.Database) (*EvalStats, error) {
	if err := Validate(q, db); err != nil {
		return nil, err
	}
	stats := &EvalStats{}
	out := statsEval(q, db, stats, 0)
	view := relation.New(DefaultViewName, out.Schema())
	for _, t := range out.Tuples() {
		view.Insert(t)
	}
	stats.View = view
	return stats, nil
}

// statsEval mirrors evalNode with instrumentation; nodes are appended in
// post-order so children precede parents.
func statsEval(q Query, db *relation.Database, stats *EvalStats, depth int) *relation.Relation {
	record := func(op string, out *relation.Relation, work int) *relation.Relation {
		stats.Nodes = append(stats.Nodes, NodeStats{Op: op, OutputRows: out.Len(), WorkRows: work, Depth: depth})
		return out
	}
	switch q := q.(type) {
	case Scan:
		r := db.Relation(q.Rel)
		return record("scan "+q.Rel, r, r.Len())
	case Select:
		child := statsEval(q.Child, db, stats, depth+1)
		out := relation.New("σ", child.Schema())
		for _, t := range child.Tuples() {
			if q.Cond.Holds(child.Schema(), t) {
				out.Insert(t)
			}
		}
		return record("select", out, child.Len())
	case Project:
		child := statsEval(q.Child, db, stats, depth+1)
		schema, _ := child.Schema().Project(q.Attrs)
		positions := attrPositions(child.Schema(), q.Attrs)
		out := relation.New("π", schema)
		for _, t := range child.Tuples() {
			out.Insert(t.Project(positions))
		}
		return record("project", out, child.Len())
	case Join:
		left := statsEval(q.Left, db, stats, depth+1)
		right := statsEval(q.Right, db, stats, depth+1)
		ls, rs := left.Schema(), right.Schema()
		common := ls.Common(rs)
		out := relation.New("⋈", ls.Join(rs))
		var rightExtra []int
		for _, a := range rs.Attrs() {
			if !ls.Has(a) {
				i, _ := rs.Index(a)
				rightExtra = append(rightExtra, i)
			}
		}
		leftKeyPos := attrPositions(ls, common)
		rightKeyPos := attrPositions(rs, common)
		buckets := make(map[string][]relation.Tuple, right.Len())
		for _, rt := range right.Tuples() {
			k := rt.Project(rightKeyPos).Key()
			buckets[k] = append(buckets[k], rt)
		}
		work := 0
		for _, lt := range left.Tuples() {
			k := lt.Project(leftKeyPos).Key()
			for _, rt := range buckets[k] {
				work++
				joined := make(relation.Tuple, 0, out.Schema().Len())
				joined = append(joined, lt...)
				for _, p := range rightExtra {
					joined = append(joined, rt[p])
				}
				out.Insert(joined)
			}
		}
		return record("join", out, work)
	case Union:
		left := statsEval(q.Left, db, stats, depth+1)
		right := statsEval(q.Right, db, stats, depth+1)
		out := relation.New("∪", left.Schema())
		for _, t := range left.Tuples() {
			out.Insert(t)
		}
		positions := attrPositions(right.Schema(), left.Schema().Attrs())
		for _, t := range right.Tuples() {
			out.Insert(t.Project(positions))
		}
		return record("union", out, left.Len()+right.Len())
	case Rename:
		child := statsEval(q.Child, db, stats, depth+1)
		schema, _ := child.Schema().Rename(q.Theta)
		out := relation.New("δ", schema)
		for _, t := range child.Tuples() {
			out.Insert(t)
		}
		return record("rename", out, child.Len())
	default:
		panic(fmt.Sprintf("algebra: statsEval: unknown node %T", q))
	}
}
