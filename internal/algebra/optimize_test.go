package algebra

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// optDB builds a three-relation chain with skewed sizes so the optimizer
// has something to reorder: R1 big, R2 small, R3 medium.
func optDB(r *rand.Rand) *relation.Database {
	db := relation.NewDatabase()
	mk := func(name string, n int, a1, a2 relation.Attribute) {
		rel := relation.New(name, relation.NewSchema(a1, a2))
		for i := 0; i < n; i++ {
			rel.Insert(relation.NewTuple(
				relation.Int(int64(r.Intn(4))), relation.Int(int64(r.Intn(4)))))
		}
		db.MustAdd(rel)
	}
	mk("R1", 30, "A", "B")
	mk("R2", 4, "B", "C")
	mk("R3", 12, "C", "D")
	return db
}

func TestOptimizeJoinsPreservesView(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	db := optDB(r)
	q := Pi([]relation.Attribute{"A", "D"},
		NatJoin(R("R1"), R("R2"), R("R3")))
	opt := OptimizeJoins(q, db)
	before := MustEval(q, db)
	after := MustEval(opt, db)
	if !before.Equal(after) {
		t.Fatalf("optimization changed the view:\n%v\nvs\n%v", before, after)
	}
}

func TestOptimizeJoinsReducesWork(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	db := optDB(r)
	// Deliberately bad order: big ⋈ medium (cross product through C? R1
	// and R3 share nothing → cross product) first.
	q := NatJoin(R("R1"), R("R3"), R("R2"))
	opt := OptimizeJoins(q, db)
	sBad, err := EvalWithStats(q, db)
	if err != nil {
		t.Fatal(err)
	}
	sOpt, err := EvalWithStats(opt, db)
	if err != nil {
		t.Fatal(err)
	}
	if sOpt.TotalWork() > sBad.TotalWork() {
		t.Errorf("optimizer increased work: %d -> %d", sBad.TotalWork(), sOpt.TotalWork())
	}
	if sOpt.View.Len() != sBad.View.Len() {
		t.Error("work comparison invalid: views differ")
	}
}

func TestOptimizeJoinsLeavesNonJoinsAlone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	db := optDB(r)
	q := Un(
		Sigma(Eq("A", "1"), R("R1")),
		Delta(map[relation.Attribute]relation.Attribute{"B": "A", "C": "B"}, R("R2")),
	)
	opt := OptimizeJoins(q, db)
	// Union/select/rename structure unchanged (no joins to reorder).
	if !Equal(q, opt) {
		t.Errorf("non-join query changed: %s -> %s", Format(q), Format(opt))
	}
}

func TestOptimizeJoinsSingleOperand(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	db := optDB(r)
	if !Equal(OptimizeJoins(R("R1"), db), R("R1")) {
		t.Error("scan changed")
	}
}

// Property: optimization preserves evaluation on random join trees over a
// random chain of relations (sizes and shapes vary).
func TestOptimizeJoinsPreservesSemanticsQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		k := 2 + r.Intn(4)
		var operands []Query
		for i := 1; i <= k; i++ {
			a1 := "A" + strconv.Itoa(i-1)
			a2 := "A" + strconv.Itoa(i)
			rel := relation.New("C"+strconv.Itoa(i), relation.NewSchema(a1, a2))
			for j := 0; j < 1+r.Intn(8); j++ {
				rel.Insert(relation.NewTuple(
					relation.Int(int64(r.Intn(3))), relation.Int(int64(r.Intn(3)))))
			}
			db.MustAdd(rel)
			operands = append(operands, R(rel.Name()))
		}
		// Shuffle operand order to exercise reordering.
		r.Shuffle(len(operands), func(i, j int) {
			operands[i], operands[j] = operands[j], operands[i]
		})
		q := NatJoin(operands...)
		opt := OptimizeJoins(q, db)
		before, err := Eval(q, db)
		if err != nil {
			return true
		}
		after, err := Eval(opt, db)
		if err != nil {
			t.Logf("optimized query invalid: %v", err)
			return false
		}
		if before.Len() != after.Len() {
			t.Logf("size changed %d -> %d for %s", before.Len(), after.Len(), Format(q))
			return false
		}
		// Compare up to attribute order.
		attrs := before.Schema().Attrs()
		for _, tu := range after.Tuples() {
			aligned := relation.ProjectAttrs(after.Schema(), tu, attrs)
			if !before.Contains(aligned) {
				t.Logf("tuple %v appeared after optimization", tu)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
