package algebra

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestEvalWithStatsMatchesEval(t *testing.T) {
	db := userGroupDB()
	q := Pi([]relation.Attribute{"user", "file"}, NatJoin(R("UserGroup"), R("GroupFile")))
	plain := MustEval(q, db)
	stats, err := EvalWithStats(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(stats.View) {
		t.Error("instrumented evaluation changed the view")
	}
}

func TestEvalWithStatsNodeProfile(t *testing.T) {
	db := userGroupDB()
	q := Pi([]relation.Attribute{"user", "file"}, NatJoin(R("UserGroup"), R("GroupFile")))
	stats, err := EvalWithStats(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Post-order: scan, scan, join, project.
	if len(stats.Nodes) != 4 {
		t.Fatalf("nodes=%d want 4", len(stats.Nodes))
	}
	if stats.Nodes[2].Op != "join" || stats.Nodes[3].Op != "project" {
		t.Errorf("post-order wrong: %+v", stats.Nodes)
	}
	// Join work = number of matched pairs = 5.
	if stats.Nodes[2].WorkRows != 5 {
		t.Errorf("join work=%d want 5", stats.Nodes[2].WorkRows)
	}
	if stats.Nodes[2].OutputRows != 5 {
		t.Errorf("join output=%d want 5", stats.Nodes[2].OutputRows)
	}
	// Projection collapses to 4 output rows.
	if stats.Nodes[3].OutputRows != 4 {
		t.Errorf("project output=%d want 4", stats.Nodes[3].OutputRows)
	}
	if stats.TotalWork() <= 0 || stats.MaxIntermediate() != 5 {
		t.Errorf("TotalWork=%d MaxIntermediate=%d", stats.TotalWork(), stats.MaxIntermediate())
	}
	if !strings.Contains(stats.Profile(), "join") {
		t.Error("Profile missing join row")
	}
}

func TestEvalWithStatsSelectUnionRename(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A"))
	r.InsertStrings("x")
	r.InsertStrings("y")
	db.MustAdd(r)
	s := relation.New("S", relation.NewSchema("B"))
	s.InsertStrings("x")
	db.MustAdd(s)
	q := Un(
		Sigma(Eq("A", "x"), R("R")),
		Delta(map[relation.Attribute]relation.Attribute{"B": "A"}, R("S")),
	)
	stats, err := EvalWithStats(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if stats.View.Len() != 1 {
		t.Errorf("view=%v want deduplicated {x}", stats.View)
	}
	ops := make(map[string]bool)
	for _, n := range stats.Nodes {
		ops[n.Op] = true
	}
	for _, want := range []string{"select", "union", "rename"} {
		if !ops[want] {
			t.Errorf("missing %s node in %v", want, stats.Nodes)
		}
	}
}

func TestEvalWithStatsError(t *testing.T) {
	db := userGroupDB()
	if _, err := EvalWithStats(R("Ghost"), db); err == nil {
		t.Error("unknown relation must error")
	}
}

// The Theorem 2.5 blow-up: on the Figure 3 family the intermediate join
// work grows like n^Θ(n) while the view stays a single tuple. This is the
// mechanism behind the hardness, demonstrated with the work counter.
func TestStatsShowTheorem25Blowup(t *testing.T) {
	// Reimplementation of a small Figure 3 instance inline to avoid an
	// import cycle with the reduction package.
	build := func(n int) (*relation.Database, Query) {
		db := relation.NewDatabase()
		attrs := []relation.Attribute{"S"}
		for i := 1; i <= n; i++ {
			attrs = append(attrs, "A"+string(rune('0'+i)))
		}
		r0 := relation.New("R0", relation.NewSchema(attrs...))
		row := make(relation.Tuple, n+1)
		row[0] = relation.String("s1")
		for i := 1; i <= n; i++ {
			row[i] = relation.String("d")
		}
		row[1] = relation.String("x1") // set {x1}
		r0.Insert(row)
		db.MustAdd(r0)
		joins := []Query{R("R0")}
		for i := 1; i <= n; i++ {
			ri := relation.New("R"+string(rune('0'+i)),
				relation.NewSchema("A"+string(rune('0'+i)), "B"+string(rune('0'+i)), "C"))
			ri.InsertStrings("x"+string(rune('0'+i)), "alpha0", "c")
			for j := 1; j <= n; j++ {
				ri.InsertStrings("d", "alpha"+string(rune('0'+j)), "c")
			}
			db.MustAdd(ri)
			joins = append(joins, R(ri.Name()))
		}
		return db, Pi([]relation.Attribute{"C"}, NatJoin(joins...))
	}
	work := make(map[int]int)
	for _, n := range []int{2, 3, 4} {
		db, q := build(n)
		stats, err := EvalWithStats(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if stats.View.Len() != 1 {
			t.Fatalf("n=%d: view=%v want single (c)", n, stats.View)
		}
		work[n] = stats.TotalWork()
	}
	// Super-linear growth: the work ratio must exceed the size ratio.
	if !(work[3] > 2*work[2] && work[4] > 2*work[3]) {
		t.Errorf("expected super-linear intermediate growth, got %v", work)
	}
}
