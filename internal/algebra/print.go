package algebra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Format renders q in the textual syntax accepted by Parse:
//
//	project(A, C; join(R1, R2))
//	select(A = 'a' and B = 'b'; R)
//	union(q1, q2)
//	rename(A -> A1; R)
//
// Unicode rendering for papers and logs is provided by FormatMath.
func Format(q Query) string {
	var b strings.Builder
	format(&b, q)
	return b.String()
}

func format(b *strings.Builder, q Query) {
	switch q := q.(type) {
	case Scan:
		b.WriteString(q.Rel)
	case Select:
		b.WriteString("select(")
		b.WriteString(formatCond(q.Cond))
		b.WriteString("; ")
		format(b, q.Child)
		b.WriteString(")")
	case Project:
		b.WriteString("project(")
		b.WriteString(strings.Join(q.Attrs, ", "))
		b.WriteString("; ")
		format(b, q.Child)
		b.WriteString(")")
	case Join:
		b.WriteString("join(")
		format(b, q.Left)
		b.WriteString(", ")
		format(b, q.Right)
		b.WriteString(")")
	case Union:
		b.WriteString("union(")
		format(b, q.Left)
		b.WriteString(", ")
		format(b, q.Right)
		b.WriteString(")")
	case Rename:
		b.WriteString("rename(")
		keys := thetaKeys(q.Theta)
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s -> %s", k, q.Theta[k])
		}
		b.WriteString("; ")
		format(b, q.Child)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "?%T", q)
	}
}

// formatCond renders a condition in the parser's syntax, quoting string
// constants and leaving integers bare.
func formatCond(c Condition) string {
	switch c := c.(type) {
	case AttrConst:
		if c.Val.Kind() == relation.KindInt {
			return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Val)
		}
		return fmt.Sprintf("%s %s '%s'", c.Attr, c.Op, c.Val.Str())
	case AttrAttr:
		return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
	case And:
		return "(" + formatCond(c.Left) + " and " + formatCond(c.Right) + ")"
	case Or:
		return "(" + formatCond(c.Left) + " or " + formatCond(c.Right) + ")"
	case Not:
		return "not " + formatCond(c.Inner)
	case True:
		return "true"
	default:
		return fmt.Sprintf("?%T", c)
	}
}

// FormatMath renders q with the paper's mathematical symbols:
// Π_{A,C}(R1 ⋈ R2), σ_{A='a'}(R), Q1 ∪ Q2, δ_{A→A1}(R).
func FormatMath(q Query) string {
	switch q := q.(type) {
	case Scan:
		return q.Rel
	case Select:
		return "σ_{" + formatCond(q.Cond) + "}(" + FormatMath(q.Child) + ")"
	case Project:
		return "Π_{" + strings.Join(q.Attrs, ",") + "}(" + FormatMath(q.Child) + ")"
	case Join:
		return "(" + FormatMath(q.Left) + " ⋈ " + FormatMath(q.Right) + ")"
	case Union:
		return "(" + FormatMath(q.Left) + " ∪ " + FormatMath(q.Right) + ")"
	case Rename:
		var parts []string
		for _, k := range thetaKeys(q.Theta) {
			parts = append(parts, k+"→"+q.Theta[k])
		}
		return "δ_{" + strings.Join(parts, ",") + "}(" + FormatMath(q.Child) + ")"
	default:
		return fmt.Sprintf("?%T", q)
	}
}
