package algebra

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/relation"
)

// Parse reads the textual query syntax emitted by Format:
//
//	query   := ident                              (scan)
//	         | "select"  "(" cond ";" query ")"
//	         | "project" "(" attrs ";" query ")"
//	         | "join"    "(" query {"," query} ")"
//	         | "union"   "(" query {"," query} ")"
//	         | "rename"  "(" maps ";" query ")"
//	cond    := or
//	or      := and {"or" and}
//	and     := unary {"and" unary}
//	unary   := "not" unary | "(" cond ")" | atom | "true"
//	atom    := ident op (ident | "'" text "'" | int)
//	op      := "=" | "!=" | "<" | "<=" | ">" | ">="
//	maps    := ident "->" ident {"," ident "->" ident}
//
// join and union with more than two operands fold left-deep. Identifiers
// are letters, digits, '_' and '.', starting with a letter.
func Parse(input string) (Query, error) {
	p := &parser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("algebra: trailing input at byte %d: %q", p.pos, p.rest())
	}
	return q, nil
}

// MustParse is Parse but panics on error.
func MustParse(input string) Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) rest() string {
	r := p.src[p.pos:]
	if len(r) > 24 {
		r = r[:24] + "..."
	}
	return r
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("algebra: parse error at byte %d (%q): %s", p.pos, p.rest(), fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) eat(c byte) bool {
	p.skipSpace()
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(c byte) error {
	if !p.eat(c) {
		return p.errf("expected %q", string(c))
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c == '.' || ('0' <= c && c <= '9')
}

func (p *parser) ident() (string, bool) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.src) || !isIdentStart(p.src[p.pos]) {
		return "", false
	}
	for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], true
}

// peekIdent reads an identifier without consuming it.
func (p *parser) peekIdent() string {
	save := p.pos
	id, _ := p.ident()
	p.pos = save
	return id
}

func (p *parser) parseQuery() (Query, error) {
	id, ok := p.ident()
	if !ok {
		return nil, p.errf("expected query")
	}
	switch id {
	case "select":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
		child, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Select{Child: child, Cond: cond}, nil

	case "project":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var attrs []relation.Attribute
		for {
			a, ok := p.ident()
			if !ok {
				return nil, p.errf("expected attribute name")
			}
			attrs = append(attrs, a)
			if !p.eat(',') {
				break
			}
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
		child, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Project{Child: child, Attrs: attrs}, nil

	case "join", "union":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var qs []Query
		for {
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			qs = append(qs, q)
			if !p.eat(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(qs) < 2 {
			return nil, p.errf("%s needs at least two operands", id)
		}
		if id == "join" {
			return NatJoin(qs...), nil
		}
		return Un(qs...), nil

	case "rename":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		theta := make(map[relation.Attribute]relation.Attribute)
		for {
			from, ok := p.ident()
			if !ok {
				return nil, p.errf("expected attribute name in rename")
			}
			p.skipSpace()
			if !strings.HasPrefix(p.src[p.pos:], "->") {
				return nil, p.errf("expected -> in rename")
			}
			p.pos += 2
			to, ok := p.ident()
			if !ok {
				return nil, p.errf("expected target attribute in rename")
			}
			theta[from] = to
			if !p.eat(',') {
				break
			}
		}
		if err := p.expect(';'); err != nil {
			return nil, err
		}
		child, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Rename{Child: child, Theta: theta}, nil

	default:
		return Scan{Rel: id}, nil
	}
}

func (p *parser) parseCond() (Condition, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (Condition, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekIdent() == "or" {
		p.ident()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Condition, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekIdent() == "and" {
		p.ident()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Condition, error) {
	p.skipSpace()
	if p.peekIdent() == "not" {
		p.ident()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{Inner: inner}, nil
	}
	if p.eat('(') {
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return c, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Condition, error) {
	attr, ok := p.ident()
	if !ok {
		return nil, p.errf("expected attribute in condition")
	}
	if attr == "true" {
		return True{}, nil
	}
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	switch {
	case p.peek() == '\'':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, p.errf("unterminated string constant")
		}
		val := p.src[start:p.pos]
		p.pos++
		return AttrConst{Attr: attr, Op: op, Val: relation.String(val)}, nil
	case p.peek() == '-' || ('0' <= p.peek() && p.peek() <= '9'):
		start := p.pos
		if p.peek() == '-' {
			p.pos++
		}
		for p.pos < len(p.src) && '0' <= p.src[p.pos] && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return nil, p.errf("bad integer constant: %v", err)
		}
		return AttrConst{Attr: attr, Op: op, Val: relation.Int(n)}, nil
	default:
		other, ok := p.ident()
		if !ok {
			return nil, p.errf("expected constant or attribute after operator")
		}
		return AttrAttr{Left: attr, Op: op, Right: other}, nil
	}
}

func (p *parser) parseOp() (CmpOp, error) {
	p.skipSpace()
	two := ""
	if p.pos+1 < len(p.src) {
		two = p.src[p.pos : p.pos+2]
	}
	switch two {
	case "!=":
		p.pos += 2
		return OpNe, nil
	case "<=":
		p.pos += 2
		return OpLe, nil
	case ">=":
		p.pos += 2
		return OpGe, nil
	}
	switch p.peek() {
	case '=':
		p.pos++
		return OpEq, nil
	case '<':
		p.pos++
		return OpLt, nil
	case '>':
		p.pos++
		return OpGt, nil
	}
	return 0, p.errf("expected comparison operator")
}
