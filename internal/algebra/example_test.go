package algebra_test

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// The paper's running example: Π_{user,file}(UserGroup ⋈ GroupFile).
func ExampleEval() {
	db := relation.NewDatabase()
	ug := relation.New("UserGroup", relation.NewSchema("user", "group"))
	ug.InsertStrings("john", "staff")
	ug.InsertStrings("mary", "admin")
	db.MustAdd(ug)
	gf := relation.New("GroupFile", relation.NewSchema("group", "file"))
	gf.InsertStrings("staff", "f1")
	gf.InsertStrings("admin", "f2")
	db.MustAdd(gf)

	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	view, _ := algebra.Eval(q, db)
	for _, t := range view.SortedTuples() {
		fmt.Println(t)
	}
	// Output:
	// (john, f1)
	// (mary, f2)
}

func ExampleParse() {
	q, _ := algebra.Parse("select(group = 'admin'; UserGroup)")
	fmt.Println(algebra.Format(q))
	fmt.Println(algebra.FormatMath(q))
	// Output:
	// select(group = 'admin'; UserGroup)
	// σ_{group = 'admin'}(UserGroup)
}

func ExampleClassify() {
	pj := algebra.MustParse("project(A; join(R, S))")
	fmt.Println(algebra.Fragment(pj), "/", algebra.Classify(pj, algebra.ProblemViewSideEffect))
	sj := algebra.MustParse("select(A = 'x'; join(R, S))")
	fmt.Println(algebra.Fragment(sj), "/", algebra.Classify(sj, algebra.ProblemViewSideEffect))
	// Output:
	// PJ / NP-hard
	// SJ / P
}

func ExampleNormalize() {
	// Join over union lifts to a union of joins (Theorem 3.1 rewrites).
	q := algebra.MustParse("join(union(R, T), S)")
	fmt.Println(algebra.Format(algebra.Normalize(q)))
	// Output:
	// union(join(R, S), join(T, S))
}
