package algebra

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestNormalizePushesSelectBelowProject(t *testing.T) {
	q := Sigma(Eq("A", "x"), Pi([]relation.Attribute{"A"}, R("R")))
	n := Normalize(q)
	p, ok := n.(Project)
	if !ok {
		t.Fatalf("normalized root is %T, want Project: %s", n, Format(n))
	}
	if _, ok := p.Child.(Select); !ok {
		t.Fatalf("select not pushed below project: %s", Format(n))
	}
}

func TestNormalizeFusesSelects(t *testing.T) {
	q := Sigma(Eq("A", "x"), Sigma(Eq("B", "y"), R("R")))
	n := Normalize(q)
	s, ok := n.(Select)
	if !ok {
		t.Fatalf("root %T", n)
	}
	if _, ok := s.Child.(Select); ok {
		t.Errorf("adjacent selects not fused: %s", Format(n))
	}
}

func TestNormalizeFusesProjects(t *testing.T) {
	q := Pi([]relation.Attribute{"A"}, Pi([]relation.Attribute{"A", "B"}, R("R")))
	n := Normalize(q)
	p, ok := n.(Project)
	if !ok {
		t.Fatalf("root %T", n)
	}
	if _, ok := p.Child.(Project); ok {
		t.Errorf("adjacent projects not fused: %s", Format(n))
	}
	if len(p.Attrs) != 1 || p.Attrs[0] != "A" {
		t.Errorf("outer projection list must win: %v", p.Attrs)
	}
}

func TestNormalizeLiftsUnionAboveJoin(t *testing.T) {
	q := NatJoin(Un(R("R"), R("S")), R("T"))
	n := Normalize(q)
	if _, ok := n.(Union); !ok {
		t.Fatalf("union not lifted: %s", Format(n))
	}
	terms := UnionTerms(n)
	if len(terms) != 2 {
		t.Fatalf("got %d union terms, want 2", len(terms))
	}
	for _, term := range terms {
		if !IsUnionFree(term) {
			t.Errorf("term %s is not union-free", Format(term))
		}
	}
}

func TestNormalizeComposesRenames(t *testing.T) {
	q := Delta(map[relation.Attribute]relation.Attribute{"B": "C"},
		Delta(map[relation.Attribute]relation.Attribute{"A": "B"}, R("R")))
	n := Normalize(q)
	r, ok := n.(Rename)
	if !ok {
		t.Fatalf("root %T: %s", n, Format(n))
	}
	if _, ok := r.Child.(Rename); ok {
		t.Errorf("adjacent renames not composed: %s", Format(n))
	}
	if r.Theta["A"] != "C" {
		t.Errorf("composed theta wrong: %v", r.Theta)
	}
}

func TestNormalizePushesSelectBelowRename(t *testing.T) {
	q := Sigma(Eq("A1", "x"), Delta(map[relation.Attribute]relation.Attribute{"A": "A1"}, R("R")))
	n := Normalize(q)
	r, ok := n.(Rename)
	if !ok {
		t.Fatalf("root %T: %s", n, Format(n))
	}
	s, ok := r.Child.(Select)
	if !ok {
		t.Fatalf("select not below rename: %s", Format(n))
	}
	ac, ok := s.Cond.(AttrConst)
	if !ok || ac.Attr != "A" {
		t.Errorf("condition not rewritten through rename: %v", s.Cond)
	}
}

func TestIsNormalForm(t *testing.T) {
	if !IsNormalForm(Pi([]relation.Attribute{"A"}, NatJoin(R("R"), R("S")))) {
		t.Error("PJ query should already be normal")
	}
	if IsNormalForm(NatJoin(Un(R("R"), R("S")), R("T"))) {
		t.Error("join-over-union is not normal")
	}
}

func TestEqualStructural(t *testing.T) {
	a := Pi([]relation.Attribute{"A"}, NatJoin(R("R"), R("S")))
	b := Pi([]relation.Attribute{"A"}, NatJoin(R("R"), R("S")))
	c := Pi([]relation.Attribute{"B"}, NatJoin(R("R"), R("S")))
	if !Equal(a, b) {
		t.Error("identical queries must be Equal")
	}
	if Equal(a, c) {
		t.Error("different projections must differ")
	}
	if Equal(R("R"), Sigma(True{}, R("R"))) {
		t.Error("scan vs select must differ")
	}
}

// randomQuery builds a random valid query over a fixed three-relation
// database; used by the equivalence property test.
func randomQuery(r *rand.Rand, depth int) Query {
	// Base relations: R(A,B), S(B,C), T(A,B) — T union-compatible with R.
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return R("R")
		case 1:
			return R("S")
		default:
			return R("T")
		}
	}
	switch r.Intn(6) {
	case 0:
		return randomQuery(r, 0)
	case 1: // select with a random condition over whatever schema results
		child := randomQuery(r, depth-1)
		return Select{Child: child, Cond: True{}}
	case 2:
		child := randomQuery(r, depth-1)
		return child
	case 3:
		// Join R-shaped with S-shaped to stay schema-valid.
		return Join{Left: randomRT(r, depth-1), Right: R("S")}
	case 4:
		return Union{Left: randomRT(r, depth-1), Right: randomRT(r, depth-1)}
	default:
		child := randomRT(r, depth-1)
		return Select{Child: child, Cond: AttrConst{Attr: "A", Op: OpEq, Val: relation.Int(int64(r.Intn(3)))}}
	}
}

// randomRT builds a random query whose schema is exactly (A,B).
func randomRT(r *rand.Rand, depth int) Query {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return R("R")
		}
		return R("T")
	}
	switch r.Intn(4) {
	case 0:
		return Union{Left: randomRT(r, depth-1), Right: randomRT(r, depth-1)}
	case 1:
		return Select{Child: randomRT(r, depth-1), Cond: AttrConst{Attr: "B", Op: OpNe, Val: relation.Int(int64(r.Intn(3)))}}
	case 2:
		return Project{Child: Join{Left: randomRT(r, depth-1), Right: R("S")}, Attrs: []relation.Attribute{"A", "B"}}
	default:
		return randomRT(r, depth-1)
	}
}

func normTestDB(r *rand.Rand) *relation.Database {
	db := relation.NewDatabase()
	mk := func(name string, attrs ...relation.Attribute) *relation.Relation {
		rel := relation.New(name, relation.NewSchema(attrs...))
		n := 2 + r.Intn(6)
		for i := 0; i < n; i++ {
			tu := make(relation.Tuple, len(attrs))
			for j := range tu {
				tu[j] = relation.Int(int64(r.Intn(3)))
			}
			rel.Insert(tu)
		}
		return rel
	}
	db.MustAdd(mk("R", "A", "B"))
	db.MustAdd(mk("S", "B", "C"))
	db.MustAdd(mk("T", "A", "B"))
	return db
}

// Property: Normalize preserves the evaluated view on random queries and
// random databases. (Preservation of annotation propagation is tested in
// the annotation package, which can evaluate with location tracking.)
func TestNormalizePreservesSemanticsQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 400,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := normTestDB(r)
		q := randomQuery(r, 1+r.Intn(3))
		if Validate(q, db) != nil {
			return true // skip rare invalid combinations
		}
		before, err := Eval(q, db)
		if err != nil {
			return true
		}
		n := Normalize(q)
		after, err := Eval(n, db)
		if err != nil {
			t.Logf("normalized query fails to evaluate: %s -> %s: %v", Format(q), Format(n), err)
			return false
		}
		if !sameTupleSet(before, after) {
			t.Logf("normalization changed semantics:\n  q:  %s\n  n:  %s", Format(q), Format(n))
			return false
		}
		if !IsNormalForm(n) {
			t.Logf("Normalize did not reach a fixpoint: %s", Format(n))
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// sameTupleSet compares views up to attribute order.
func sameTupleSet(a, b *relation.Relation) bool {
	if a.Len() != b.Len() || !a.Schema().SameSet(b.Schema()) {
		return false
	}
	attrs := a.Schema().Attrs()
	for _, tb := range b.Tuples() {
		aligned := relation.ProjectAttrs(b.Schema(), tb, attrs)
		if !a.Contains(aligned) {
			return false
		}
	}
	return true
}

func TestComposeTheta(t *testing.T) {
	inner := map[relation.Attribute]relation.Attribute{"A": "B"}
	outer := map[relation.Attribute]relation.Attribute{"B": "C", "D": "E"}
	got := composeTheta(outer, inner)
	if got["A"] != "C" {
		t.Errorf("compose A=%q want C", got["A"])
	}
	if got["D"] != "E" {
		t.Errorf("compose D=%q want E", got["D"])
	}
	if _, ok := got["B"]; ok {
		t.Error("B should not appear: it is consumed by inner's image")
	}
}

func TestUnionTermsFlattens(t *testing.T) {
	q := Un(R("R"), R("T"), R("R"))
	terms := UnionTerms(q)
	if len(terms) != 3 {
		t.Errorf("UnionTerms=%d want 3", len(terms))
	}
}
