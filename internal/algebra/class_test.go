package algebra

import (
	"testing"

	"repro/internal/relation"
)

func TestOperatorsOf(t *testing.T) {
	cases := []struct {
		q    Query
		want string
	}{
		{R("R"), "∅"},
		{Sigma(True{}, R("R")), "S"},
		{Pi([]relation.Attribute{"A"}, R("R")), "P"},
		{NatJoin(R("R"), R("S")), "J"},
		{Un(R("R"), R("S")), "U"},
		{Delta(map[relation.Attribute]relation.Attribute{"A": "B"}, R("R")), "R"},
		{Pi([]relation.Attribute{"A"}, NatJoin(R("R"), R("S"))), "PJ"},
		{Un(NatJoin(R("R"), R("S")), R("T")), "JU"},
		{Sigma(True{}, Pi([]relation.Attribute{"A"}, Un(R("R"), R("S")))), "SPU"},
		{Sigma(True{}, NatJoin(R("R"), R("S"))), "SJ"},
		{Un(Sigma(True{}, NatJoin(R("R"), R("S"))), R("T")), "SJU"},
	}
	for _, c := range cases {
		if got := OperatorsOf(c.q).String(); got != c.want {
			t.Errorf("OperatorsOf(%s)=%q want %q", Format(c.q), got, c.want)
		}
	}
}

// TestDichotomyTables checks the classifier against the three tables of the
// paper verbatim.
func TestDichotomyTables(t *testing.T) {
	pj := Pi([]relation.Attribute{"A"}, NatJoin(R("R"), R("S")))
	ju := Un(NatJoin(R("R"), R("S")), R("T"))
	spu := Sigma(True{}, Pi([]relation.Attribute{"A"}, Un(R("R"), R("S"))))
	sj := Sigma(True{}, NatJoin(R("R"), R("S")))
	sju := Un(Sigma(True{}, NatJoin(R("R"), R("S"))), R("T"))

	type row struct {
		q    Query
		p    Problem
		want Class
	}
	rows := []row{
		// §2.1 table: deciding whether there is a side-effect-free deletion.
		{pj, ProblemViewSideEffect, ClassNPHard},
		{ju, ProblemViewSideEffect, ClassNPHard},
		{spu, ProblemViewSideEffect, ClassPoly},
		{sj, ProblemViewSideEffect, ClassPoly},
		// §2.2 table: finding the minimum source deletions.
		{pj, ProblemSourceSideEffect, ClassNPHard},
		{ju, ProblemSourceSideEffect, ClassNPHard},
		{spu, ProblemSourceSideEffect, ClassPoly},
		{sj, ProblemSourceSideEffect, ClassPoly},
		// §3.1 table: side-effect-free annotation. JU flips to P here.
		{pj, ProblemAnnotationPlacement, ClassNPHard},
		{sju, ProblemAnnotationPlacement, ClassPoly},
		{spu, ProblemAnnotationPlacement, ClassPoly},
		{ju, ProblemAnnotationPlacement, ClassPoly},
	}
	for _, r := range rows {
		if got := Classify(r.q, r.p); got != r.want {
			t.Errorf("Classify(%s, %s)=%s want %s", Fragment(r.q), r.p, got, r.want)
		}
	}
}

func TestFragment(t *testing.T) {
	if f := Fragment(R("R")); f != "scan" {
		t.Errorf("Fragment(scan)=%q", f)
	}
	if f := Fragment(Pi([]relation.Attribute{"A"}, NatJoin(R("R"), R("S")))); f != "PJ" {
		t.Errorf("Fragment=%q want PJ", f)
	}
}

func TestOpsHas(t *testing.T) {
	o := OpProject | OpJoin
	if !o.Has(OpProject | OpJoin) {
		t.Error("Has(PJ) false")
	}
	if o.Has(OpProject | OpUnion) {
		t.Error("Has(PU) true")
	}
	if !o.HasAny(OpUnion | OpJoin) {
		t.Error("HasAny(UJ) false")
	}
	if o.HasAny(OpSelect | OpUnion) {
		t.Error("HasAny(SU) true")
	}
}

func TestProblemString(t *testing.T) {
	if ProblemViewSideEffect.String() == ProblemSourceSideEffect.String() {
		t.Error("problem names must differ")
	}
	if ClassPoly.String() != "P" || ClassNPHard.String() != "NP-hard" {
		t.Error("class names wrong")
	}
}
