package algebra

import (
	"testing"

	"repro/internal/relation"
)

func condSchema() relation.Schema { return relation.NewSchema("A", "B") }

func TestCmpOps(t *testing.T) {
	s := condSchema()
	tu := relation.NewTuple(relation.Int(3), relation.Int(5))
	cases := []struct {
		cond Condition
		want bool
	}{
		{AttrConst{Attr: "A", Op: OpEq, Val: relation.Int(3)}, true},
		{AttrConst{Attr: "A", Op: OpEq, Val: relation.Int(4)}, false},
		{AttrConst{Attr: "A", Op: OpNe, Val: relation.Int(4)}, true},
		{AttrConst{Attr: "A", Op: OpLt, Val: relation.Int(4)}, true},
		{AttrConst{Attr: "A", Op: OpLt, Val: relation.Int(3)}, false},
		{AttrConst{Attr: "A", Op: OpLe, Val: relation.Int(3)}, true},
		{AttrConst{Attr: "A", Op: OpGt, Val: relation.Int(2)}, true},
		{AttrConst{Attr: "A", Op: OpGe, Val: relation.Int(3)}, true},
		{AttrConst{Attr: "A", Op: OpGe, Val: relation.Int(4)}, false},
		{AttrAttr{Left: "A", Op: OpLt, Right: "B"}, true},
		{AttrAttr{Left: "A", Op: OpEq, Right: "B"}, false},
		{AttrAttr{Left: "B", Op: OpGe, Right: "A"}, true},
	}
	for _, c := range cases {
		if got := c.cond.Holds(s, tu); got != c.want {
			t.Errorf("%s on (3,5): got %v want %v", c.cond, got, c.want)
		}
	}
}

func TestBooleanStructure(t *testing.T) {
	s := condSchema()
	tu := relation.NewTuple(relation.Int(1), relation.Int(2))
	a := AttrConst{Attr: "A", Op: OpEq, Val: relation.Int(1)} // true
	b := AttrConst{Attr: "B", Op: OpEq, Val: relation.Int(9)} // false
	if !(And{a, Not{b}}).Holds(s, tu) {
		t.Error("a ∧ ¬b should hold")
	}
	if (And{a, b}).Holds(s, tu) {
		t.Error("a ∧ b should fail")
	}
	if !(Or{b, a}).Holds(s, tu) {
		t.Error("b ∨ a should hold")
	}
	if (Or{b, Not{a}}).Holds(s, tu) {
		t.Error("b ∨ ¬a should fail")
	}
	if !(True{}).Holds(s, tu) {
		t.Error("true should hold")
	}
}

func TestCmpOpString(t *testing.T) {
	wants := map[CmpOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range wants {
		if op.String() != want {
			t.Errorf("%v renders %q want %q", op, op.String(), want)
		}
	}
	if CmpOp(99).String() != "?" {
		t.Error("unknown op must render ?")
	}
}

func TestHoldsOnMissingAttribute(t *testing.T) {
	// Holds is defensive: missing attributes fail the comparison rather
	// than panicking (validation happens at query construction).
	s := condSchema()
	tu := relation.NewTuple(relation.Int(1), relation.Int(2))
	if (AttrConst{Attr: "Z", Op: OpEq, Val: relation.Int(1)}).Holds(s, tu) {
		t.Error("missing attribute cannot hold")
	}
	if (AttrAttr{Left: "Z", Op: OpEq, Right: "A"}).Holds(s, tu) {
		t.Error("missing left attribute cannot hold")
	}
	if (AttrAttr{Left: "A", Op: OpEq, Right: "Z"}).Holds(s, tu) {
		t.Error("missing right attribute cannot hold")
	}
}

func TestCondAttrs(t *testing.T) {
	c := And{
		Left:  Or{Left: Eq("B", "x"), Right: EqAttr("A", "C")},
		Right: Not{Inner: AttrConst{Attr: "D", Op: OpLt, Val: relation.Int(1)}},
	}
	got := CondAttrs(c)
	want := []relation.Attribute{"A", "B", "C", "D"}
	if len(got) != len(want) {
		t.Fatalf("CondAttrs=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CondAttrs=%v want %v", got, want)
		}
	}
	if len(CondAttrs(True{})) != 0 {
		t.Error("True references no attributes")
	}
}

func TestConjoinAll(t *testing.T) {
	if _, ok := ConjoinAll().(True); !ok {
		t.Error("empty conjunction is True")
	}
	single := Eq("A", "x")
	if !condEqual(ConjoinAll(single), single) {
		t.Error("singleton conjunction unchanged")
	}
	c := ConjoinAll(Eq("A", "x"), Eq("B", "y"), Eq("A", "z"))
	s := condSchema()
	tu := relation.StringTuple("x", "y")
	if c.Holds(s, tu) {
		t.Error("conflicting conjunction cannot hold")
	}
	c2 := ConjoinAll(Eq("A", "x"), Eq("B", "y"))
	if !c2.Holds(s, tu) {
		t.Error("satisfied conjunction should hold")
	}
}

func TestRenameCondAllShapes(t *testing.T) {
	theta := map[relation.Attribute]relation.Attribute{"A": "X"}
	c := And{
		Left:  Or{Left: Eq("A", "v"), Right: Not{Inner: EqAttr("A", "B")}},
		Right: True{},
	}
	r := renameCond(c, theta)
	attrs := CondAttrs(r)
	for _, a := range attrs {
		if a == "A" {
			t.Errorf("rename left A behind: %v", attrs)
		}
	}
	found := false
	for _, a := range attrs {
		if a == "X" {
			found = true
		}
	}
	if !found {
		t.Errorf("renamed attribute missing: %v", attrs)
	}
}

func TestCondString(t *testing.T) {
	c := And{Left: Eq("A", "x"), Right: Eq("B", "y")}
	if got := condString(c); got != "A = 'x' and B = 'y'" {
		t.Errorf("condString=%q", got)
	}
	if got := condString(Eq("A", "x")); got != "A = 'x'" {
		t.Errorf("condString=%q", got)
	}
}
