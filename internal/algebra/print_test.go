package algebra

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestFormatAllNodes(t *testing.T) {
	cases := []struct {
		q    Query
		want string
	}{
		{R("R"), "R"},
		{Sigma(Eq("A", "x"), R("R")), "select(A = 'x'; R)"},
		{Sigma(AttrConst{Attr: "A", Op: OpLt, Val: relation.Int(3)}, R("R")), "select(A < 3; R)"},
		{Pi([]relation.Attribute{"A", "B"}, R("R")), "project(A, B; R)"},
		{NatJoin(R("R"), R("S")), "join(R, S)"},
		{Un(R("R"), R("S")), "union(R, S)"},
		{Delta(map[relation.Attribute]relation.Attribute{"A": "X", "B": "Y"}, R("R")),
			"rename(A -> X, B -> Y; R)"},
		{Sigma(True{}, R("R")), "select(true; R)"},
		{Sigma(Not{Inner: EqAttr("A", "B")}, R("R")), "select(not A = B; R)"},
	}
	for _, c := range cases {
		if got := Format(c.q); got != c.want {
			t.Errorf("Format=%q want %q", got, c.want)
		}
	}
}

func TestFormatMathAllNodes(t *testing.T) {
	q := Un(
		Sigma(Eq("A", "x"), Delta(map[relation.Attribute]relation.Attribute{"B": "A"}, R("S"))),
		Pi([]relation.Attribute{"A"}, R("R")),
	)
	got := FormatMath(q)
	for _, want := range []string{"σ_{", "δ_{B→A}", "Π_{A}", "∪"} {
		if !strings.Contains(got, want) {
			t.Errorf("FormatMath=%q missing %q", got, want)
		}
	}
}

func TestFormatDeterministicThetaOrder(t *testing.T) {
	q := Delta(map[relation.Attribute]relation.Attribute{"Z": "Z1", "A": "A1", "M": "M1"}, R("R"))
	first := Format(q)
	for i := 0; i < 20; i++ {
		if Format(q) != first {
			t.Fatal("rename rendering is nondeterministic")
		}
	}
	if !strings.Contains(first, "A -> A1, M -> M1, Z -> Z1") {
		t.Errorf("theta keys not sorted: %q", first)
	}
}

// Property: Format → Parse is the identity (structural) on random valid
// queries, covering every operator and condition shape the generator
// emits.
func TestFormatParseRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomPrintableQuery(r, 1+r.Intn(4))
		src := Format(q)
		back, err := Parse(src)
		if err != nil {
			t.Logf("Parse(%q): %v", src, err)
			return false
		}
		if !Equal(q, back) {
			t.Logf("round trip changed %q -> %q", src, Format(back))
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// randomPrintableQuery emits random query trees; schemas need not be
// consistent since only syntax round-trips are checked.
func randomPrintableQuery(r *rand.Rand, depth int) Query {
	if depth <= 0 {
		return R([]string{"R", "S", "T1", "Emp"}[r.Intn(4)])
	}
	switch r.Intn(5) {
	case 0:
		return Sigma(randomPrintableCond(r, 2), randomPrintableQuery(r, depth-1))
	case 1:
		attrs := []relation.Attribute{"A", "B", "C"}[:1+r.Intn(3)]
		return Pi(attrs, randomPrintableQuery(r, depth-1))
	case 2:
		return NatJoin(randomPrintableQuery(r, depth-1), randomPrintableQuery(r, depth-1))
	case 3:
		return Un(randomPrintableQuery(r, depth-1), randomPrintableQuery(r, depth-1))
	default:
		return Delta(map[relation.Attribute]relation.Attribute{"A": "A1"}, randomPrintableQuery(r, depth-1))
	}
}

func randomPrintableCond(r *rand.Rand, depth int) Condition {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Eq("A", "v1")
		case 1:
			return AttrConst{Attr: "B", Op: CmpOp(r.Intn(6)), Val: relation.Int(int64(r.Intn(10) - 5))}
		case 2:
			return EqAttr("A", "B")
		default:
			return True{}
		}
	}
	switch r.Intn(3) {
	case 0:
		return And{Left: randomPrintableCond(r, depth-1), Right: randomPrintableCond(r, depth-1)}
	case 1:
		return Or{Left: randomPrintableCond(r, depth-1), Right: randomPrintableCond(r, depth-1)}
	default:
		return Not{Inner: randomPrintableCond(r, depth-1)}
	}
}
