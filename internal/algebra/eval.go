package algebra

import (
	"fmt"

	"repro/internal/relation"
)

// DefaultViewName is the relation name given to evaluation results when the
// caller does not specify one.
const DefaultViewName = "V"

// Eval evaluates q over db and returns the view Q(S) as a relation named
// DefaultViewName. The database is not modified.
func Eval(q Query, db *relation.Database) (*relation.Relation, error) {
	return EvalNamed(q, db, DefaultViewName)
}

// EvalNamed evaluates q over db, naming the result.
func EvalNamed(q Query, db *relation.Database, name string) (*relation.Relation, error) {
	if err := Validate(q, db); err != nil {
		return nil, err
	}
	out := evalNode(q, db)
	res := relation.New(name, out.Schema())
	out.Each(func(t relation.Tuple) bool {
		res.Insert(t)
		return true
	})
	return res, nil
}

// MustEval is Eval but panics on error; used in tests and generators where
// queries are known valid.
func MustEval(q Query, db *relation.Database) *relation.Relation {
	r, err := Eval(q, db)
	if err != nil {
		panic(err)
	}
	return r
}

// evalNode evaluates a validated query. Intermediate results carry
// synthetic names; only the schema and tuples matter. Base relations —
// which may be overlay versions of the source store — are read through
// Each, so evaluation never materializes a versioned relation.
func evalNode(q Query, db *relation.Database) *relation.Relation {
	switch q := q.(type) {
	case Scan:
		return db.Relation(q.Rel)
	case Select:
		child := evalNode(q.Child, db)
		out := relation.New("σ", child.Schema())
		child.Each(func(t relation.Tuple) bool {
			if q.Cond.Holds(child.Schema(), t) {
				out.Insert(t)
			}
			return true
		})
		return out
	case Project:
		child := evalNode(q.Child, db)
		schema, err := child.Schema().Project(q.Attrs)
		if err != nil {
			panic(err) // validated
		}
		positions := attrPositions(child.Schema(), q.Attrs)
		out := relation.New("π", schema)
		child.Each(func(t relation.Tuple) bool {
			out.Insert(t.Project(positions))
			return true
		})
		return out
	case Join:
		return evalJoin(evalNode(q.Left, db), evalNode(q.Right, db))
	case Union:
		left := evalNode(q.Left, db)
		right := evalNode(q.Right, db)
		out := relation.New("∪", left.Schema())
		left.Each(func(t relation.Tuple) bool {
			out.Insert(t)
			return true
		})
		positions := attrPositions(right.Schema(), left.Schema().Attrs())
		right.Each(func(t relation.Tuple) bool {
			out.Insert(t.Project(positions))
			return true
		})
		return out
	case Rename:
		child := evalNode(q.Child, db)
		schema, err := child.Schema().Rename(q.Theta)
		if err != nil {
			panic(err) // validated
		}
		out := relation.New("δ", schema)
		child.Each(func(t relation.Tuple) bool {
			out.Insert(t)
			return true
		})
		return out
	default:
		panic(fmt.Sprintf("algebra: evalNode: unknown node %T", q))
	}
}

// evalJoin computes the natural join with a hash join on the common
// attributes. When the schemas are disjoint it degenerates to the
// cross product, as in the paper's JU reductions.
func evalJoin(left, right *relation.Relation) *relation.Relation {
	ls, rs := left.Schema(), right.Schema()
	common := ls.Common(rs)
	outSchema := ls.Join(rs)
	out := relation.New("⋈", outSchema)

	// Positions of right-side attributes that are NOT common, in output
	// order after left's attributes.
	var rightExtra []int
	for _, a := range rs.Attrs() {
		if !ls.Has(a) {
			i, _ := rs.Index(a)
			rightExtra = append(rightExtra, i)
		}
	}

	leftKeyPos := attrPositions(ls, common)
	rightKeyPos := attrPositions(rs, common)

	// Build hash table on the smaller side conceptually; for determinism we
	// always build on the right and probe with the left.
	buckets := make(map[string][]relation.Tuple, right.Len())
	right.Each(func(rt relation.Tuple) bool {
		k := rt.Project(rightKeyPos).Key()
		//lint:ignore eachretain build-side buckets hold aliases into the immutable snapshot and are only probed, never written through
		buckets[k] = append(buckets[k], rt)
		return true
	})
	left.Each(func(lt relation.Tuple) bool {
		k := lt.Project(leftKeyPos).Key()
		for _, rt := range buckets[k] {
			joined := make(relation.Tuple, 0, outSchema.Len())
			joined = append(joined, lt...)
			for _, p := range rightExtra {
				joined = append(joined, rt[p])
			}
			out.Insert(joined)
		}
		return true
	})
	return out
}

// attrPositions maps attribute names to their positions in schema. The
// schema must contain every attribute (validated earlier).
func attrPositions(s relation.Schema, attrs []relation.Attribute) []int {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p, ok := s.Index(a)
		if !ok {
			panic("algebra: attribute " + a + " missing from schema " + s.String())
		}
		out[i] = p
	}
	return out
}

// JoinPair holds the left/right components of a joined tuple; exported for
// provenance computations that need to split join outputs.
type JoinPair struct {
	Left, Right relation.Tuple
}

// SplitJoinTuple recovers, for an output tuple t of left ⋈ right, its left
// component t.R1 and right component t.R2 (the notation of Theorems 2.4 and
// 2.9). The right component is reassembled in the right schema's order.
func SplitJoinTuple(ls, rs relation.Schema, t relation.Tuple) JoinPair {
	out := ls.Join(rs)
	lt := relation.ProjectAttrs(out, t, ls.Attrs())
	rt := relation.ProjectAttrs(out, t, rs.Attrs())
	return JoinPair{Left: lt, Right: rt}
}
