package algebra

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// CmpOp is a comparison operator in a selection condition.
type CmpOp uint8

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in the usual infix syntax.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

func (op CmpOp) apply(c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// Condition is a boolean predicate over a single tuple, used by Select.
// Selection with any tuple-local predicate is monotone, so arbitrary
// boolean structure is allowed. Concrete types: AttrConst, AttrAttr, And,
// Or, Not, True.
type Condition interface {
	// Holds evaluates the condition on tuple t laid out by schema s.
	Holds(s relation.Schema, t relation.Tuple) bool
	// validate checks attribute references against the child schema.
	validate(s relation.Schema) error
	// String renders the condition.
	String() string
}

// AttrConst compares an attribute against a constant: A op v.
type AttrConst struct {
	Attr relation.Attribute
	Op   CmpOp
	Val  relation.Value
}

// Holds implements Condition.
func (c AttrConst) Holds(s relation.Schema, t relation.Tuple) bool {
	i, ok := s.Index(c.Attr)
	if !ok {
		return false
	}
	return c.Op.apply(t[i].Compare(c.Val))
}

func (c AttrConst) validate(s relation.Schema) error {
	if !s.Has(c.Attr) {
		return fmt.Errorf("algebra: condition references missing attribute %q in %s", c.Attr, s)
	}
	return nil
}

// String implements Condition.
func (c AttrConst) String() string {
	return fmt.Sprintf("%s %s '%s'", c.Attr, c.Op, c.Val)
}

// AttrAttr compares two attributes of the same tuple: A op B.
type AttrAttr struct {
	Left  relation.Attribute
	Op    CmpOp
	Right relation.Attribute
}

// Holds implements Condition.
func (c AttrAttr) Holds(s relation.Schema, t relation.Tuple) bool {
	i, ok := s.Index(c.Left)
	if !ok {
		return false
	}
	j, ok := s.Index(c.Right)
	if !ok {
		return false
	}
	return c.Op.apply(t[i].Compare(t[j]))
}

func (c AttrAttr) validate(s relation.Schema) error {
	if !s.Has(c.Left) {
		return fmt.Errorf("algebra: condition references missing attribute %q in %s", c.Left, s)
	}
	if !s.Has(c.Right) {
		return fmt.Errorf("algebra: condition references missing attribute %q in %s", c.Right, s)
	}
	return nil
}

// String implements Condition.
func (c AttrAttr) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is conjunction.
type And struct{ Left, Right Condition }

// Holds implements Condition.
func (c And) Holds(s relation.Schema, t relation.Tuple) bool {
	return c.Left.Holds(s, t) && c.Right.Holds(s, t)
}

func (c And) validate(s relation.Schema) error {
	if err := c.Left.validate(s); err != nil {
		return err
	}
	return c.Right.validate(s)
}

// String implements Condition.
func (c And) String() string {
	return "(" + c.Left.String() + " and " + c.Right.String() + ")"
}

// Or is disjunction.
type Or struct{ Left, Right Condition }

// Holds implements Condition.
func (c Or) Holds(s relation.Schema, t relation.Tuple) bool {
	return c.Left.Holds(s, t) || c.Right.Holds(s, t)
}

func (c Or) validate(s relation.Schema) error {
	if err := c.Left.validate(s); err != nil {
		return err
	}
	return c.Right.validate(s)
}

// String implements Condition.
func (c Or) String() string {
	return "(" + c.Left.String() + " or " + c.Right.String() + ")"
}

// Not is negation of a tuple-local predicate (still a monotone query: the
// selected set only shrinks as a predicate, never consults other tuples).
type Not struct{ Inner Condition }

// Holds implements Condition.
func (c Not) Holds(s relation.Schema, t relation.Tuple) bool {
	return !c.Inner.Holds(s, t)
}

func (c Not) validate(s relation.Schema) error { return c.Inner.validate(s) }

// String implements Condition.
func (c Not) String() string { return "not " + c.Inner.String() }

// True accepts every tuple.
type True struct{}

// Holds implements Condition.
func (True) Holds(relation.Schema, relation.Tuple) bool { return true }

func (True) validate(relation.Schema) error { return nil }

// String implements Condition.
func (True) String() string { return "true" }

// Eq is shorthand for the equality comparison A = 'v' with a string
// constant, the most common condition in the paper's examples.
func Eq(attr relation.Attribute, val string) Condition {
	return AttrConst{Attr: attr, Op: OpEq, Val: relation.String(val)}
}

// EqAttr is shorthand for A = B.
func EqAttr(a, b relation.Attribute) Condition {
	return AttrAttr{Left: a, Op: OpEq, Right: b}
}

// ConjoinAll folds conditions into a right-leaning conjunction; an empty
// list yields True.
func ConjoinAll(cs ...Condition) Condition {
	if len(cs) == 0 {
		return True{}
	}
	out := cs[len(cs)-1]
	for i := len(cs) - 2; i >= 0; i-- {
		out = And{Left: cs[i], Right: out}
	}
	return out
}

// condAttrs collects the attributes a condition references.
func condAttrs(c Condition, into map[relation.Attribute]bool) {
	switch c := c.(type) {
	case AttrConst:
		into[c.Attr] = true
	case AttrAttr:
		into[c.Left] = true
		into[c.Right] = true
	case And:
		condAttrs(c.Left, into)
		condAttrs(c.Right, into)
	case Or:
		condAttrs(c.Left, into)
		condAttrs(c.Right, into)
	case Not:
		condAttrs(c.Inner, into)
	case True:
	}
}

// CondAttrs returns the sorted list of attributes referenced by c.
func CondAttrs(c Condition) []relation.Attribute {
	m := make(map[relation.Attribute]bool)
	condAttrs(c, m)
	out := make([]relation.Attribute, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sortAttrs(out)
	return out
}

func sortAttrs(as []relation.Attribute) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j] < as[j-1]; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// renameCond rewrites attribute references in c through θ; used when
// commuting Rename with Select during normalization.
func renameCond(c Condition, theta map[relation.Attribute]relation.Attribute) Condition {
	ren := func(a relation.Attribute) relation.Attribute {
		if b, ok := theta[a]; ok {
			return b
		}
		return a
	}
	switch c := c.(type) {
	case AttrConst:
		return AttrConst{Attr: ren(c.Attr), Op: c.Op, Val: c.Val}
	case AttrAttr:
		return AttrAttr{Left: ren(c.Left), Op: c.Op, Right: ren(c.Right)}
	case And:
		return And{Left: renameCond(c.Left, theta), Right: renameCond(c.Right, theta)}
	case Or:
		return Or{Left: renameCond(c.Left, theta), Right: renameCond(c.Right, theta)}
	case Not:
		return Not{Inner: renameCond(c.Inner, theta)}
	case True:
		return c
	default:
		panic(fmt.Sprintf("algebra: renameCond: unknown condition %T", c))
	}
}

// condString is used by the query printer; it strips the outermost parens
// for readability.
func condString(c Condition) string {
	s := c.String()
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		return s[1 : len(s)-1]
	}
	return s
}
