package algebra

import (
	"strings"
)

// Ops is a bit set of the relational operators appearing in a query. The
// dichotomy theorems of the paper are stated in terms of which operators a
// query class allows.
type Ops uint8

// Operator bits. Scan contributes nothing.
const (
	OpSelect Ops = 1 << iota
	OpProject
	OpJoin
	OpUnion
	OpRename
)

// Has reports whether every operator in mask is present.
func (o Ops) Has(mask Ops) bool { return o&mask == mask }

// HasAny reports whether any operator in mask is present.
func (o Ops) HasAny(mask Ops) bool { return o&mask != 0 }

// String renders the operator set in the paper's letter notation, e.g.
// "SPJU" or "PJ"; the empty set renders as "∅" (a bare scan).
func (o Ops) String() string {
	var b strings.Builder
	if o&OpSelect != 0 {
		b.WriteByte('S')
	}
	if o&OpProject != 0 {
		b.WriteByte('P')
	}
	if o&OpJoin != 0 {
		b.WriteByte('J')
	}
	if o&OpUnion != 0 {
		b.WriteByte('U')
	}
	if o&OpRename != 0 {
		b.WriteByte('R')
	}
	if b.Len() == 0 {
		return "∅"
	}
	return b.String()
}

// OperatorsOf computes the set of operators used anywhere in q.
func OperatorsOf(q Query) Ops {
	var o Ops
	var walk func(Query)
	walk = func(q Query) {
		switch q := q.(type) {
		case Select:
			// σ_true is still a selection syntactically, but it does not
			// make the query leave a smaller class semantically; we count
			// it, matching the paper's syntactic classes.
			o |= OpSelect
			_ = q
		case Project:
			o |= OpProject
		case Join:
			o |= OpJoin
		case Union:
			o |= OpUnion
		case Rename:
			o |= OpRename
		}
		for _, c := range Children(q) {
			walk(c)
		}
	}
	walk(q)
	return o
}

// Class is the coarse complexity class a query falls into for one of the
// paper's three problems.
type Class uint8

// The two sides of each dichotomy.
const (
	ClassPoly Class = iota
	ClassNPHard
)

// String renders the class.
func (c Class) String() string {
	if c == ClassPoly {
		return "P"
	}
	return "NP-hard"
}

// Problem identifies one of the paper's three optimization problems.
type Problem uint8

// The problems studied in the paper.
const (
	// ProblemViewSideEffect is §2.1: delete view tuple t minimizing
	// side-effects on the view (deciding side-effect-freeness).
	ProblemViewSideEffect Problem = iota
	// ProblemSourceSideEffect is §2.2: delete view tuple t with the
	// fewest source deletions.
	ProblemSourceSideEffect
	// ProblemAnnotationPlacement is §3.1: annotate a view location from a
	// source location with fewest side-effects.
	ProblemAnnotationPlacement
)

// String names the problem.
func (p Problem) String() string {
	switch p {
	case ProblemViewSideEffect:
		return "view side-effect"
	case ProblemSourceSideEffect:
		return "source side-effect"
	case ProblemAnnotationPlacement:
		return "annotation placement"
	}
	return "unknown"
}

// ClassifyOps applies the paper's dichotomy tables to an operator set.
//
// Deletion problems (§2.1 and §2.2 share the same split):
//
//	queries involving P and J  → NP-hard
//	queries involving J and U  → NP-hard
//	SPU queries                → P
//	SJ  queries                → P
//
// Annotation placement (§3.1):
//
//	queries involving P and J  → NP-hard
//	SJU queries                → P
//	SPU queries                → P
//
// Renaming does not affect the classification except that the JU source
// side-effect hardness proof (Theorem 2.7) uses it; renaming alone keeps a
// query in its class.
func ClassifyOps(o Ops, p Problem) Class {
	hasPJ := o.Has(OpProject | OpJoin)
	hasJU := o.Has(OpJoin | OpUnion)
	switch p {
	case ProblemViewSideEffect, ProblemSourceSideEffect:
		if hasPJ || hasJU {
			return ClassNPHard
		}
		return ClassPoly
	case ProblemAnnotationPlacement:
		if hasPJ {
			return ClassNPHard
		}
		// SJU and SPU are both polynomial; J+U without P is fine here,
		// unlike in the deletion problems.
		return ClassPoly
	}
	return ClassNPHard
}

// Classify computes the class of query q for problem p.
func Classify(q Query, p Problem) Class { return ClassifyOps(OperatorsOf(q), p) }

// Fragment describes the syntactic fragment of a query as a human-readable
// label: one of "SJ", "SPU", "SJU", "PJ", "JU", ... following the paper's
// naming (letters sorted S,P,J,U,R; scan-only queries report "scan").
func Fragment(q Query) string {
	s := OperatorsOf(q).String()
	if s == "∅" {
		return "scan"
	}
	return s
}
