// Package algebra implements the monotone fragment of the relational
// algebra studied in the paper: selection (S), projection (P), natural join
// (J), union (U) and renaming (R), over the set-semantics relational model
// of package relation.
//
// Queries are immutable expression trees. The package provides schema
// inference, evaluation, operator-class inference (the SJ / SPU / PJ / JU /
// SJU fragments of the dichotomy theorems), the normal form of Theorem 3.1,
// and a small text syntax for command-line tools.
package algebra

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Query is a node of a monotone relational-algebra expression. Concrete
// types are Scan, Select, Project, Join, Union and Rename.
type Query interface {
	// children returns the sub-queries in order.
	children() []Query
	// isQuery is a marker preventing foreign implementations, which lets
	// the package evolve the interface.
	isQuery()
}

// Scan reads a named base relation of the source database.
type Scan struct {
	Rel string
}

// Select filters tuples by a condition; the σ_C of the paper.
type Select struct {
	Child Query
	Cond  Condition
}

// Project restricts to the named attributes (the Π_B⃗ of the paper),
// with set semantics: duplicate projected tuples merge.
type Project struct {
	Child Query
	Attrs []relation.Attribute
}

// Join is the natural join of two sub-queries, equating all attributes the
// two schemas share.
type Join struct {
	Left, Right Query
}

// Union is the set union of two union-compatible sub-queries. The output
// schema (attribute order) is the left child's; the right child's columns
// are aligned by attribute name.
type Union struct {
	Left, Right Query
}

// Rename applies the attribute mapping θ (the δ_θ of the paper).
type Rename struct {
	Child Query
	Theta map[relation.Attribute]relation.Attribute
}

func (Scan) isQuery()    {}
func (Select) isQuery()  {}
func (Project) isQuery() {}
func (Join) isQuery()    {}
func (Union) isQuery()   {}
func (Rename) isQuery()  {}

func (Scan) children() []Query      { return nil }
func (q Select) children() []Query  { return []Query{q.Child} }
func (q Project) children() []Query { return []Query{q.Child} }
func (q Join) children() []Query    { return []Query{q.Left, q.Right} }
func (q Union) children() []Query   { return []Query{q.Left, q.Right} }
func (q Rename) children() []Query  { return []Query{q.Child} }

// Children exposes the sub-queries of q in order; leaves return nil.
func Children(q Query) []Query { return q.children() }

// Constructor helpers. These keep query-building code close to the paper's
// notation: Pi(attrs..., q), Sigma(cond, q), NatJoin(q1, q2, ...), Un(...),
// Delta(theta, q).

// R builds a Scan of the named relation.
func R(name string) Query { return Scan{Rel: name} }

// Sigma builds a selection.
func Sigma(cond Condition, child Query) Query { return Select{Child: child, Cond: cond} }

// Pi builds a projection onto attrs.
func Pi(attrs []relation.Attribute, child Query) Query {
	return Project{Child: child, Attrs: append([]relation.Attribute(nil), attrs...)}
}

// NatJoin builds the left-deep natural join of the given queries. It panics
// if fewer than one query is given; a single query is returned unchanged.
func NatJoin(qs ...Query) Query {
	if len(qs) == 0 {
		panic("algebra: NatJoin needs at least one operand")
	}
	out := qs[0]
	for _, q := range qs[1:] {
		out = Join{Left: out, Right: q}
	}
	return out
}

// Un builds the left-deep union of the given queries. A single operand is
// returned unchanged.
func Un(qs ...Query) Query {
	if len(qs) == 0 {
		panic("algebra: Un needs at least one operand")
	}
	out := qs[0]
	for _, q := range qs[1:] {
		out = Union{Left: out, Right: q}
	}
	return out
}

// Delta builds a renaming with the given attribute mapping.
func Delta(theta map[relation.Attribute]relation.Attribute, child Query) Query {
	m := make(map[relation.Attribute]relation.Attribute, len(theta))
	for k, v := range theta {
		m[k] = v
	}
	return Rename{Child: child, Theta: m}
}

// SchemaEnv supplies schemas of base relations for schema inference. A
// *relation.Database satisfies it.
type SchemaEnv interface {
	Relation(name string) *relation.Relation
}

// SchemaOf infers the output schema of q over the base schemas in env. It
// returns an error if q references a missing relation, projects a missing
// attribute, unions incompatible schemas, or renames onto a clash.
func SchemaOf(q Query, env SchemaEnv) (relation.Schema, error) {
	switch q := q.(type) {
	case Scan:
		r := env.Relation(q.Rel)
		if r == nil {
			return relation.Schema{}, fmt.Errorf("algebra: unknown relation %q", q.Rel)
		}
		return r.Schema(), nil
	case Select:
		s, err := SchemaOf(q.Child, env)
		if err != nil {
			return relation.Schema{}, err
		}
		if err := q.Cond.validate(s); err != nil {
			return relation.Schema{}, err
		}
		return s, nil
	case Project:
		s, err := SchemaOf(q.Child, env)
		if err != nil {
			return relation.Schema{}, err
		}
		return s.Project(q.Attrs)
	case Join:
		l, err := SchemaOf(q.Left, env)
		if err != nil {
			return relation.Schema{}, err
		}
		r, err := SchemaOf(q.Right, env)
		if err != nil {
			return relation.Schema{}, err
		}
		return l.Join(r), nil
	case Union:
		l, err := SchemaOf(q.Left, env)
		if err != nil {
			return relation.Schema{}, err
		}
		r, err := SchemaOf(q.Right, env)
		if err != nil {
			return relation.Schema{}, err
		}
		if !l.SameSet(r) {
			return relation.Schema{}, fmt.Errorf("algebra: union of incompatible schemas %s and %s", l, r)
		}
		return l, nil
	case Rename:
		s, err := SchemaOf(q.Child, env)
		if err != nil {
			return relation.Schema{}, err
		}
		for a := range q.Theta {
			if !s.Has(a) {
				return relation.Schema{}, fmt.Errorf("algebra: rename of missing attribute %q in %s", a, s)
			}
		}
		return s.Rename(q.Theta)
	default:
		return relation.Schema{}, fmt.Errorf("algebra: unknown query node %T", q)
	}
}

// Validate checks that q is well-formed over env.
func Validate(q Query, env SchemaEnv) error {
	_, err := SchemaOf(q, env)
	return err
}

// BaseRelations returns the distinct base relation names referenced by q,
// sorted. A relation scanned twice is reported once.
func BaseRelations(q Query) []string {
	seen := make(map[string]bool)
	var walk func(Query)
	walk = func(q Query) {
		if s, ok := q.(Scan); ok {
			seen[s.Rel] = true
		}
		for _, c := range q.children() {
			walk(c)
		}
	}
	walk(q)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of nodes in the query tree.
func Size(q Query) int {
	n := 1
	for _, c := range q.children() {
		n += Size(c)
	}
	return n
}

// thetaKeys returns the rename keys in sorted order (for deterministic
// printing and hashing).
func thetaKeys(theta map[relation.Attribute]relation.Attribute) []relation.Attribute {
	ks := make([]relation.Attribute, 0, len(theta))
	for k := range theta {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
