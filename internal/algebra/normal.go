package algebra

import (
	"fmt"

	"repro/internal/relation"
)

// This file implements the normal form of Theorem 3.1: every SPJRU query
// can be rewritten, by annotation-propagation-preserving steps, into a
// union of union-free terms in which selections sit below projections and
// renamings and adjacent identical operators are fused. The rewrites used
// are exactly the ones that preserve the relation R(Q,S) between source and
// view locations induced by the propagation rules of §3:
//
//	σ_c(Q1 ∪ Q2)   = σ_c(Q1) ∪ σ_c(Q2)
//	Π_B(Q1 ∪ Q2)   = Π_B(Q1) ∪ Π_B(Q2)
//	δ_θ(Q1 ∪ Q2)   = δ_θ(Q1) ∪ δ_θ(Q2)
//	(Q1 ∪ Q2) ⋈ Q3 = (Q1 ⋈ Q3) ∪ (Q2 ⋈ Q3)      (and symmetrically)
//	σ_c1(σ_c2(Q))  = σ_{c1 ∧ c2}(Q)
//	Π_A(Π_B(Q))    = Π_A(Q)
//	δ_θ1(δ_θ2(Q))  = δ_{θ1 ∘ θ2}(Q)
//	σ_c(Π_B(Q))    = Π_B(σ_c(Q))                (c only sees B, by typing)
//	σ_c(δ_θ(Q))    = δ_θ(σ_{θ⁻¹(c)}(Q))
//
// None of these rewrites introduces or removes explicit equality between
// differently named fields, which is the operation the paper identifies as
// breaking annotation propagation (its Π_ACD(σ_{A=B}(R ⋈ S)) example).

// Normalize rewrites q to the normal form, applying the rules above to a
// fixpoint. The result evaluates to the same view and induces the same
// source-to-view annotation propagation relation.
func Normalize(q Query) Query {
	for {
		next, changed := rewriteOnce(q)
		if !changed {
			return next
		}
		q = next
	}
}

// rewriteOnce applies one bottom-up pass of the rewrite rules, reporting
// whether anything changed.
func rewriteOnce(q Query) (Query, bool) {
	switch q := q.(type) {
	case Scan:
		return q, false

	case Select:
		child, changed := rewriteOnce(q.Child)
		switch c := child.(type) {
		case Union:
			return Union{
				Left:  Select{Child: c.Left, Cond: q.Cond},
				Right: Select{Child: c.Right, Cond: q.Cond},
			}, true
		case Select:
			return Select{Child: c.Child, Cond: And{Left: q.Cond, Right: c.Cond}}, true
		case Project:
			return Project{Child: Select{Child: c.Child, Cond: q.Cond}, Attrs: c.Attrs}, true
		case Rename:
			inv := invertTheta(c.Theta)
			return Rename{Child: Select{Child: c.Child, Cond: renameCond(q.Cond, inv)}, Theta: c.Theta}, true
		}
		return Select{Child: child, Cond: q.Cond}, changed

	case Project:
		child, changed := rewriteOnce(q.Child)
		switch c := child.(type) {
		case Union:
			return Union{
				Left:  Project{Child: c.Left, Attrs: q.Attrs},
				Right: Project{Child: c.Right, Attrs: q.Attrs},
			}, true
		case Project:
			return Project{Child: c.Child, Attrs: q.Attrs}, true
		}
		return Project{Child: child, Attrs: q.Attrs}, changed

	case Rename:
		child, changed := rewriteOnce(q.Child)
		switch c := child.(type) {
		case Union:
			return Union{
				Left:  Rename{Child: c.Left, Theta: q.Theta},
				Right: Rename{Child: c.Right, Theta: q.Theta},
			}, true
		case Rename:
			return Rename{Child: c.Child, Theta: composeTheta(q.Theta, c.Theta)}, true
		}
		return Rename{Child: child, Theta: q.Theta}, changed

	case Join:
		left, lc := rewriteOnce(q.Left)
		right, rc := rewriteOnce(q.Right)
		if u, ok := left.(Union); ok {
			return Union{
				Left:  Join{Left: u.Left, Right: right},
				Right: Join{Left: u.Right, Right: right},
			}, true
		}
		if u, ok := right.(Union); ok {
			return Union{
				Left:  Join{Left: left, Right: u.Left},
				Right: Join{Left: left, Right: u.Right},
			}, true
		}
		return Join{Left: left, Right: right}, lc || rc

	case Union:
		left, lc := rewriteOnce(q.Left)
		right, rc := rewriteOnce(q.Right)
		return Union{Left: left, Right: right}, lc || rc

	default:
		panic(fmt.Sprintf("algebra: rewriteOnce: unknown node %T", q))
	}
}

// invertTheta inverts an injective attribute mapping. θ maps old names to
// new; the inverse maps new back to old, which is what a condition written
// against the renamed schema needs when pushed below the rename.
func invertTheta(theta map[relation.Attribute]relation.Attribute) map[relation.Attribute]relation.Attribute {
	inv := make(map[relation.Attribute]relation.Attribute, len(theta))
	for k, v := range theta {
		inv[v] = k
	}
	return inv
}

// composeTheta returns the mapping that first applies inner, then outer:
// (outer ∘ inner)(a) = outer(inner(a)), with identity filling gaps.
func composeTheta(outer, inner map[relation.Attribute]relation.Attribute) map[relation.Attribute]relation.Attribute {
	out := make(map[relation.Attribute]relation.Attribute, len(outer)+len(inner))
	for a, b := range inner {
		c := b
		if d, ok := outer[b]; ok {
			c = d
		}
		if c != a {
			out[a] = c
		}
	}
	for a, b := range outer {
		if _, handled := inner[a]; handled {
			continue
		}
		// a was not renamed by inner; check it is not produced by inner
		// either (that case is covered above via inner's image).
		producedByInner := false
		for _, v := range inner {
			if v == a {
				producedByInner = true
				break
			}
		}
		if !producedByInner && b != a {
			out[a] = b
		}
	}
	return out
}

// UnionTerms splits a query into its top-level union operands, left to
// right. On a normalized query each term is union-free; the paper's "SJU
// query in normal form" is exactly such a list of SJ terms.
func UnionTerms(q Query) []Query {
	if u, ok := q.(Union); ok {
		return append(UnionTerms(u.Left), UnionTerms(u.Right)...)
	}
	return []Query{q}
}

// IsUnionFree reports whether no Union node occurs anywhere in q.
func IsUnionFree(q Query) bool {
	if _, ok := q.(Union); ok {
		return false
	}
	for _, c := range Children(q) {
		if !IsUnionFree(c) {
			return false
		}
	}
	return true
}

// IsNormalForm reports whether q already satisfies the normal form: unions
// only at the top, and within each term no select above a project or
// rename, no adjacent duplicate operators.
func IsNormalForm(q Query) bool {
	_, changed := rewriteOnce(q)
	return !changed
}

// Equal reports structural equality of two queries: same shape, same
// relation names, same projections in the same order, same conditions and
// renamings.
func Equal(a, b Query) bool {
	switch a := a.(type) {
	case Scan:
		b, ok := b.(Scan)
		return ok && a.Rel == b.Rel
	case Select:
		b, ok := b.(Select)
		return ok && condEqual(a.Cond, b.Cond) && Equal(a.Child, b.Child)
	case Project:
		b, ok := b.(Project)
		if !ok || len(a.Attrs) != len(b.Attrs) {
			return false
		}
		for i := range a.Attrs {
			if a.Attrs[i] != b.Attrs[i] {
				return false
			}
		}
		return Equal(a.Child, b.Child)
	case Join:
		b, ok := b.(Join)
		return ok && Equal(a.Left, b.Left) && Equal(a.Right, b.Right)
	case Union:
		b, ok := b.(Union)
		return ok && Equal(a.Left, b.Left) && Equal(a.Right, b.Right)
	case Rename:
		b, ok := b.(Rename)
		if !ok || len(a.Theta) != len(b.Theta) {
			return false
		}
		for k, v := range a.Theta {
			if b.Theta[k] != v {
				return false
			}
		}
		return Equal(a.Child, b.Child)
	}
	return false
}

func condEqual(a, b Condition) bool {
	switch a := a.(type) {
	case AttrConst:
		b, ok := b.(AttrConst)
		return ok && a == b
	case AttrAttr:
		b, ok := b.(AttrAttr)
		return ok && a == b
	case And:
		b, ok := b.(And)
		return ok && condEqual(a.Left, b.Left) && condEqual(a.Right, b.Right)
	case Or:
		b, ok := b.(Or)
		return ok && condEqual(a.Left, b.Left) && condEqual(a.Right, b.Right)
	case Not:
		b, ok := b.(Not)
		return ok && condEqual(a.Inner, b.Inner)
	case True:
		_, ok := b.(True)
		return ok
	}
	return false
}
