package algebra

import (
	"testing"

	"repro/internal/relation"
)

// userGroupDB builds the UserGroup/GroupFile example of §2.1.1 (taken from
// Cui–Widom [14]).
func userGroupDB() *relation.Database {
	db := relation.NewDatabase()
	ug := relation.New("UserGroup", relation.NewSchema("user", "group"))
	ug.InsertStrings("john", "staff")
	ug.InsertStrings("john", "admin")
	ug.InsertStrings("mary", "admin")
	db.MustAdd(ug)
	gf := relation.New("GroupFile", relation.NewSchema("group", "file"))
	gf.InsertStrings("staff", "f1")
	gf.InsertStrings("admin", "f1")
	gf.InsertStrings("admin", "f2")
	db.MustAdd(gf)
	return db
}

func TestEvalScan(t *testing.T) {
	db := userGroupDB()
	v := MustEval(R("UserGroup"), db)
	if v.Len() != 3 {
		t.Errorf("scan returned %d tuples", v.Len())
	}
	if v.Name() != DefaultViewName {
		t.Errorf("view name %q", v.Name())
	}
}

func TestEvalSelect(t *testing.T) {
	db := userGroupDB()
	v := MustEval(Sigma(Eq("group", "admin"), R("UserGroup")), db)
	if v.Len() != 2 {
		t.Errorf("select returned %d tuples, want 2", v.Len())
	}
	if !v.Contains(relation.StringTuple("john", "admin")) ||
		!v.Contains(relation.StringTuple("mary", "admin")) {
		t.Errorf("wrong selection result: %v", v)
	}
}

func TestEvalSelectAttrAttr(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	r.InsertStrings("x", "x")
	r.InsertStrings("x", "y")
	db.MustAdd(r)
	v := MustEval(Sigma(EqAttr("A", "B"), R("R")), db)
	if v.Len() != 1 || !v.Contains(relation.StringTuple("x", "x")) {
		t.Errorf("A=B selection wrong: %v", v)
	}
}

func TestEvalProjectMergesDuplicates(t *testing.T) {
	db := userGroupDB()
	v := MustEval(Pi([]relation.Attribute{"user"}, R("UserGroup")), db)
	if v.Len() != 2 {
		t.Errorf("projection returned %d tuples, want 2 (set semantics)", v.Len())
	}
}

func TestEvalJoin(t *testing.T) {
	db := userGroupDB()
	v := MustEval(NatJoin(R("UserGroup"), R("GroupFile")), db)
	// john-staff-f1, john-admin-f1, john-admin-f2, mary-admin-f1, mary-admin-f2
	if v.Len() != 5 {
		t.Errorf("join returned %d tuples, want 5: %v", v.Len(), v)
	}
	if !v.Schema().Equal(relation.NewSchema("user", "group", "file")) {
		t.Errorf("join schema %v", v.Schema())
	}
	if !v.Contains(relation.StringTuple("mary", "admin", "f2")) {
		t.Error("missing expected join tuple")
	}
}

func TestEvalJoinDisjointIsCrossProduct(t *testing.T) {
	db := relation.NewDatabase()
	a := relation.New("A", relation.NewSchema("X"))
	a.InsertStrings("1")
	a.InsertStrings("2")
	db.MustAdd(a)
	b := relation.New("B", relation.NewSchema("Y"))
	b.InsertStrings("p")
	b.InsertStrings("q")
	db.MustAdd(b)
	v := MustEval(NatJoin(R("A"), R("B")), db)
	if v.Len() != 4 {
		t.Errorf("cross product size %d, want 4", v.Len())
	}
}

// The paper's motivating example: Π_{user,file}(UserGroup ⋈ GroupFile).
func TestEvalUserFileView(t *testing.T) {
	db := userGroupDB()
	q := Pi([]relation.Attribute{"user", "file"}, NatJoin(R("UserGroup"), R("GroupFile")))
	v := MustEval(q, db)
	want := [][2]string{{"john", "f1"}, {"john", "f2"}, {"mary", "f1"}, {"mary", "f2"}}
	if v.Len() != len(want) {
		t.Fatalf("view has %d tuples, want %d: %v", v.Len(), len(want), v)
	}
	for _, w := range want {
		if !v.Contains(relation.StringTuple(w[0], w[1])) {
			t.Errorf("missing view tuple (%s, %s)", w[0], w[1])
		}
	}
}

func TestEvalUnionAlignsByName(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	r.InsertStrings("r1", "r2")
	db.MustAdd(r)
	s := relation.New("S", relation.NewSchema("B", "A")) // reordered schema
	s.InsertStrings("s2", "s1")
	db.MustAdd(s)
	v := MustEval(Un(R("R"), R("S")), db)
	if !v.Schema().Equal(relation.NewSchema("A", "B")) {
		t.Fatalf("union schema %v", v.Schema())
	}
	if !v.Contains(relation.StringTuple("r1", "r2")) || !v.Contains(relation.StringTuple("s1", "s2")) {
		t.Errorf("union misaligned: %v", v)
	}
}

func TestEvalUnionDeduplicates(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A"))
	r.InsertStrings("x")
	db.MustAdd(r)
	s := relation.New("S", relation.NewSchema("A"))
	s.InsertStrings("x")
	s.InsertStrings("y")
	db.MustAdd(s)
	v := MustEval(Un(R("R"), R("S")), db)
	if v.Len() != 2 {
		t.Errorf("union size %d, want 2", v.Len())
	}
}

func TestEvalRename(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A"))
	r.InsertStrings("x")
	db.MustAdd(r)
	v := MustEval(Delta(map[relation.Attribute]relation.Attribute{"A": "A1"}, R("R")), db)
	if !v.Schema().Equal(relation.NewSchema("A1")) {
		t.Errorf("rename schema %v", v.Schema())
	}
	if !v.Contains(relation.StringTuple("x")) {
		t.Error("rename lost tuple")
	}
}

func TestEvalRenameEnablesJoin(t *testing.T) {
	// δ_{A→A1}(R) ⋈ δ_{A→A2}(R): self cross product via renaming, as in
	// Theorem 2.7's construction.
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A"))
	r.InsertStrings("a")
	r.InsertStrings("b")
	db.MustAdd(r)
	q := NatJoin(
		Delta(map[relation.Attribute]relation.Attribute{"A": "A1"}, R("R")),
		Delta(map[relation.Attribute]relation.Attribute{"A": "A2"}, R("R")),
	)
	v := MustEval(q, db)
	if v.Len() != 4 {
		t.Errorf("renamed self-join size %d, want 4", v.Len())
	}
}

func TestEvalErrors(t *testing.T) {
	db := userGroupDB()
	cases := []Query{
		R("Nope"),
		Pi([]relation.Attribute{"missing"}, R("UserGroup")),
		Un(R("UserGroup"), R("GroupFile")),                                                // incompatible schemas
		Sigma(Eq("missing", "x"), R("UserGroup")),                                         // cond attr missing
		Delta(map[relation.Attribute]relation.Attribute{"user": "group"}, R("UserGroup")), // clash
		Delta(map[relation.Attribute]relation.Attribute{"zz": "yy"}, R("UserGroup")),      // missing source
	}
	for i, q := range cases {
		if _, err := Eval(q, db); err == nil {
			t.Errorf("case %d: expected evaluation error for %s", i, Format(q))
		}
	}
}

func TestSchemaOfJoin(t *testing.T) {
	db := userGroupDB()
	s, err := SchemaOf(NatJoin(R("UserGroup"), R("GroupFile")), db)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(relation.NewSchema("user", "group", "file")) {
		t.Errorf("schema %v", s)
	}
}

func TestBaseRelationsAndSize(t *testing.T) {
	q := Pi([]relation.Attribute{"user"}, NatJoin(R("UserGroup"), R("GroupFile")))
	rels := BaseRelations(q)
	if len(rels) != 2 || rels[0] != "GroupFile" || rels[1] != "UserGroup" {
		t.Errorf("BaseRelations=%v", rels)
	}
	if Size(q) != 4 {
		t.Errorf("Size=%d want 4", Size(q))
	}
}

func TestSplitJoinTuple(t *testing.T) {
	ls := relation.NewSchema("A", "B")
	rs := relation.NewSchema("B", "C")
	joined := relation.StringTuple("a", "b", "c") // over (A,B,C)
	p := SplitJoinTuple(ls, rs, joined)
	if !p.Left.Equal(relation.StringTuple("a", "b")) {
		t.Errorf("left component %v", p.Left)
	}
	if !p.Right.Equal(relation.StringTuple("b", "c")) {
		t.Errorf("right component %v", p.Right)
	}
}

// Monotonicity: removing source tuples never adds view tuples. This is the
// defining property of the paper's query fragment.
func TestMonotonicity(t *testing.T) {
	db := userGroupDB()
	queries := []Query{
		Pi([]relation.Attribute{"user", "file"}, NatJoin(R("UserGroup"), R("GroupFile"))),
		Un(Pi([]relation.Attribute{"group"}, R("UserGroup")), Pi([]relation.Attribute{"group"}, R("GroupFile"))),
		Sigma(Eq("group", "admin"), R("UserGroup")),
	}
	for _, q := range queries {
		full := MustEval(q, db)
		for _, st := range db.AllSourceTuples() {
			smaller := db.DeleteAll([]relation.SourceTuple{st})
			sub := MustEval(q, smaller)
			for _, tu := range sub.Tuples() {
				if !full.Contains(tu) {
					t.Errorf("query %s not monotone: %v appears after deleting %v",
						Format(q), tu, st)
				}
			}
		}
	}
}
