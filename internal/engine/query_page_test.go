package engine

import (
	"sort"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

// TestQueryPageBasics pins the pagination contract: lexicographic order,
// effective-offset clamping, limit slicing, totals, and the generation
// pairing.
func TestQueryPageBasics(t *testing.T) {
	e := mustEngine(t)
	page, err := e.QueryPage("access", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 4 || len(page.Tuples) != 4 {
		t.Fatalf("total %d, rows %d, want 4/4", page.Total, len(page.Tuples))
	}
	if !sort.SliceIsSorted(page.Tuples, func(i, j int) bool { return page.Tuples[i].Less(page.Tuples[j]) }) {
		t.Fatalf("page not lexicographically sorted: %v", page.Tuples)
	}
	if page.Generation != 0 {
		t.Fatalf("generation = %d, want 0", page.Generation)
	}

	mid, err := e.QueryPage("access", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Tuples) != 2 || mid.Offset != 1 {
		t.Fatalf("mid page: %d rows at offset %d, want 2 at 1", len(mid.Tuples), mid.Offset)
	}
	for i, tp := range mid.Tuples {
		if tp.Key() != page.Tuples[1+i].Key() {
			t.Fatalf("mid page row %d = %v, want %v", i, tp, page.Tuples[1+i])
		}
	}

	past, err := e.QueryPage("access", 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	if past.Offset != 4 || len(past.Tuples) != 0 {
		t.Fatalf("past-the-end page: offset %d rows %d, want 4/0", past.Offset, len(past.Tuples))
	}

	if _, err := e.QueryPage("nope", 0, 1); err == nil {
		t.Fatal("unknown view must fail")
	}
	if _, err := e.QueryPage("access", -1, 1); err == nil {
		t.Fatal("negative offset must fail")
	}
}

// TestQueryPageSortedCachePerSnapshot pins the bugfix itself: within one
// published generation every page is cut from the SAME cached sorted row
// slice (the sort runs once per snapshot, not once per request), and a
// commit — which publishes a fresh snapshot — invalidates it.
func TestQueryPageSortedCachePerSnapshot(t *testing.T) {
	e := mustEngine(t)
	p1, err := e.QueryPage("access", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.QueryPage("access", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Tuples) == 0 || &p1.Tuples[0] != &p2.Tuples[0] {
		t.Fatal("two pages of one generation did not share the cached sorted slice")
	}
	// A sub-page aliases the same backing array.
	sub, err := e.QueryPage("access", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Tuples) != 1 || &sub.Tuples[0] != &p1.Tuples[2] {
		t.Fatal("sub-page was not sliced from the cached sorted rows")
	}

	if _, err := e.Delete("access", p1.Tuples[0], core.MinimizeSourceDeletions, core.DeleteOptions{}); err != nil {
		t.Fatal(err)
	}
	p3, err := e.QueryPage("access", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Generation != p1.Generation+1 {
		t.Fatalf("post-commit generation = %d, want %d", p3.Generation, p1.Generation+1)
	}
	if p3.Total >= p1.Total {
		t.Fatalf("post-commit total = %d, want < %d", p3.Total, p1.Total)
	}
	for _, tp := range p3.Tuples {
		if tp.Key() == p1.Tuples[0].Key() {
			t.Fatal("deleted tuple served from a stale sorted cache")
		}
	}
}

// TestDeleteCommitStaysDeltaBounded is the regression test for the
// commit-lock flush bug: the old maintenance filtered only the basis root
// per delete and, past a 64-deletion backlog, rebuilt EVERY tree node
// inside ApplyDeletion — which runs on the engine's commit path, under
// the commit lock — so one unlucky delete (the threshold crossing)
// stalled the batcher for a full O(|tree|) pass. With the node overlays
// every delete propagates eagerly in O(|Δ|). The test drives a long
// single-delete stream well past the old threshold through a large
// prepared view and asserts the total maintenance work stays far under
// one tree scan — a single legacy flush already exceeded it — so no
// commit can have paid a full-tree rebuild.
func TestDeleteCommitStaysDeltaBounded(t *testing.T) {
	const rows = 3000
	const deletions = 100 // well past the old 64-deletion flush threshold
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	for i := 0; i < rows; i++ {
		r.InsertStrings("a"+strconv.Itoa(i), "b"+strconv.Itoa(i%7))
	}
	s := relation.New("S", relation.NewSchema("B", "C"))
	for i := 0; i < 7; i++ {
		s.InsertStrings("b"+strconv.Itoa(i), "c"+strconv.Itoa(i))
	}
	db.MustAdd(r)
	db.MustAdd(s)
	e := New(db)
	if err := e.PrepareText("v", "project(A, C; join(R, S))"); err != nil {
		t.Fatal(err)
	}
	treeSize := e.Stats().Views[0].Tree.NodeTuples
	if treeSize < 2*rows {
		t.Fatalf("tree unexpectedly small: %d node tuples", treeSize)
	}
	for i := 0; i < deletions; i++ {
		// Minimizing view side-effects forces the solver onto the R tuple
		// (deleting the S side would wipe ~rows/7 view tuples), so every
		// round deletes exactly one source tuple and one view tuple.
		target := relation.StringTuple("a"+strconv.Itoa(i), "c"+strconv.Itoa(i%7))
		if _, err := e.Delete("v", target, core.MinimizeViewSideEffects, core.DeleteOptions{}); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	st := e.Stats().Views[0]
	if st.Generation != deletions {
		t.Fatalf("generation %d, want %d", st.Generation, deletions)
	}
	if st.Tree.TouchedTuples >= int64(treeSize) {
		t.Fatalf("%d deletions touched %d node tuples — a commit paid full-tree work (tree size %d)",
			deletions, st.Tree.TouchedTuples, treeSize)
	}
	if st.Tree.Derives != deletions {
		t.Fatalf("tree derives %d, want %d", st.Tree.Derives, deletions)
	}
	if st.Tree.SharedNodes == 0 || st.Tree.RewrittenNodes == 0 {
		t.Fatalf("tree sharing counters did not move: %+v", st.Tree)
	}
}

// TestUntouchedViewCarriesCachesAcrossCommits pins the cross-view cache
// contract: a commit that cannot affect a view (its base relations are
// disjoint from the write) must NOT discard that view's per-snapshot
// caches — the sorted page rows keep their backing array and the
// where-provenance index stays built — while a commit that does touch
// the view starts its caches cold.
func TestUntouchedViewCarriesCachesAcrossCommits(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	for i := 0; i < 50; i++ {
		r.InsertStrings("a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	s := relation.New("S", relation.NewSchema("X", "Y"))
	for i := 0; i < 50; i++ {
		s.InsertStrings("x"+strconv.Itoa(i), "y"+strconv.Itoa(i))
	}
	db.MustAdd(r)
	db.MustAdd(s)
	e := New(db)
	if err := e.PrepareText("vr", "R"); err != nil {
		t.Fatal(err)
	}
	if err := e.PrepareText("vs", "S"); err != nil {
		t.Fatal(err)
	}

	before, err := e.QueryPage("vs", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// A write stream into R only: vs is provably unaffected each commit.
	for i := 0; i < 3; i++ {
		target := relation.StringTuple("a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
		rep, err := e.Delete("vr", target, core.MinimizeSourceDeletions, core.DeleteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Insert(rep.Result.T); err != nil {
			t.Fatal(err)
		}
	}
	after, err := e.QueryPage("vs", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if &after.Tuples[0] != &before.Tuples[0] {
		t.Fatal("commits disjoint from the view discarded its sorted cache")
	}
	if info, _ := e.Describe("vs"); !info.WhereReady {
		t.Fatal("commits disjoint from the view discarded its where index")
	}
	// The touched view's cache went cold and re-sorted per its own commits.
	vr, err := e.QueryPage("vr", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Generation != 6 {
		t.Fatalf("vr generation = %d, want 6", vr.Generation)
	}
	if vr.Total != 50 {
		t.Fatalf("vr total = %d, want 50 after three delete/restore round trips", vr.Total)
	}
}
