package engine

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/deletion"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestConcurrentServing interleaves Query/Witnesses/Annotate readers with
// Delete writers (and a late Prepare) on one engine. Run under -race; the
// assertions are secondary to the detector — readers must only ever observe
// internally-consistent snapshots, and every request must either succeed or
// fail with a domain error, never corrupt state.
func TestConcurrentServing(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	db, q := workload.UserGroupFile(r, 20, 8, 15, 2, 2)
	e := New(db)
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var (
		wg        sync.WaitGroup
		done      atomic.Bool
		readOK    atomic.Int64
		writeOK   atomic.Int64
		failures  atomic.Int64
		firstFail atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstFail.CompareAndSwap(nil, err)
	}

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				view, err := e.Query("v")
				if err != nil {
					fail(err)
					return
				}
				n := view.Len()
				if n == 0 {
					continue
				}
				tu := view.Tuple(n / 2)
				ws, err := e.Witnesses("v", tu)
				if err != nil {
					fail(err)
					return
				}
				if len(ws) == 0 {
					// Allowed only if a writer swapped the snapshot between
					// the two reads; the tuple must be gone from the current
					// view in that case.
					if cur, _ := e.Query("v"); cur.Contains(tu) {
						fail(errors.New("view tuple with empty witness basis in a stable snapshot"))
						return
					}
					continue
				}
				readOK.Add(1)
				if _, err := e.Annotate("v", tu, view.Schema().Attrs()[0]); err != nil {
					// A concurrent delete may have removed the tuple from
					// the generation Annotate resolved.
					if !errors.Is(err, annotation.ErrNoPlacement) {
						fail(err)
						return
					}
				}
			}
		}()
	}

	// One late Prepare races the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := e.PrepareText("groups", "project(user, group; UserGroup)"); err != nil {
			fail(err)
		}
	}()

	// Writer: keep deleting the first remaining view tuple. It waits for
	// the first successful read so the interleaving is guaranteed (the
	// solver is fast enough to finish all deletions before a reader's
	// first round otherwise).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for readOK.Load() == 0 && failures.Load() == 0 {
			runtime.Gosched()
		}
		for i := 0; i < 40; i++ {
			view, err := e.Query("v")
			if err != nil {
				fail(err)
				return
			}
			if view.Len() == 0 {
				return
			}
			obj := core.MinimizeViewSideEffects
			if i%2 == 1 {
				obj = core.MinimizeSourceDeletions
			}
			if _, err := e.Delete("v", view.Tuple(0), obj, core.DeleteOptions{}); err != nil {
				fail(err)
				return
			}
			writeOK.Add(1)
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d failures; first: %v", n, firstFail.Load())
	}
	if writeOK.Load() == 0 {
		t.Fatal("writer made no progress")
	}
	if readOK.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	if st := e.Stats(); st.Deletes != writeOK.Load() {
		t.Errorf("stats count %d deletes, writer did %d", st.Deletes, writeOK.Load())
	}
	// The late-prepared view must be coherent with the final source: a
	// Prepare racing the writers must never register a snapshot that missed
	// a deletion's maintenance pass.
	for _, name := range e.Views() {
		p, err := e.lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		view, err := e.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := algebra.Eval(p.plan, e.Database())
		if err != nil {
			t.Fatal(err)
		}
		if !view.Equal(fresh) {
			t.Errorf("view %q stale against final source:\n%s\nvs\n%s", name, view.Table(), fresh.Table())
		}
	}
}

// TestConcurrentCoalescedServing stresses the coalescing write pipeline
// under -race: many writers hammer the same view with single and group
// deletes (coalescing enabled with a small wait so batches really form),
// readers poll the materialized view, witnesses and stats throughout, and
// two late Prepares land mid-stream. The detector is the primary
// assertion; afterwards every view — including the late ones — must equal
// a fresh evaluation over the final source, and the early view's
// generation counter must equal the number of successful delete requests
// (coalescing must not lose generations).
func TestConcurrentCoalescedServing(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	db, q := workload.UserGroupFile(r, 24, 8, 18, 2, 2)
	e := New(db, Options{MaxBatchSize: 8, MaxCoalesceWait: 2 * time.Millisecond, Workers: 4})
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var (
		wg       sync.WaitGroup
		done     atomic.Bool
		writeOK  atomic.Int64
		writeBad atomic.Int64
	)

	// Readers: view, witnesses, stats.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				view, err := e.Query("v")
				if err != nil {
					t.Error(err)
					return
				}
				if n := view.Len(); n > 0 {
					if _, err := e.Witnesses("v", view.Tuple(n/2)); err != nil {
						t.Error(err)
						return
					}
				}
				_ = e.Stats()
			}
		}()
	}

	// Late prepares race the writers.
	for _, lp := range []struct{ name, q string }{
		{"groups", "project(user, group; UserGroup)"},
		{"files", "project(group, file; GroupFile)"},
	} {
		wg.Add(1)
		go func(name, query string) {
			defer wg.Done()
			runtime.Gosched()
			if err := e.PrepareText(name, query); err != nil {
				t.Errorf("late prepare %s: %v", name, err)
			}
		}(lp.name, lp.q)
	}

	// Writers: mixed single and group deletes against the shared shrinking
	// view. Races on vanished targets surface as ErrNotInView; anything
	// else is a failure.
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			rr := rand.New(rand.NewSource(int64(1000 + w)))
			for j := 0; j < 12; j++ {
				view, err := e.Query("v")
				if err != nil {
					t.Error(err)
					return
				}
				n := view.Len()
				if n == 0 {
					return
				}
				obj := core.MinimizeSourceDeletions
				if j%3 == 0 {
					obj = core.MinimizeViewSideEffects
				}
				if j%4 == 3 && n >= 2 {
					targets := []relation.Tuple{view.Tuple(rr.Intn(n)), view.Tuple(rr.Intn(n))}
					if _, err := e.DeleteGroup("v", targets, obj, core.DeleteOptions{Greedy: j%2 == 0}); err != nil {
						if !errors.Is(err, deletion.ErrNotInView) {
							t.Error(err)
							return
						}
						writeBad.Add(1)
					} else {
						writeOK.Add(1)
					}
					continue
				}
				if _, err := e.Delete("v", view.Tuple(rr.Intn(n)), obj, core.DeleteOptions{}); err != nil {
					if !errors.Is(err, deletion.ErrNotInView) {
						t.Error(err)
						return
					}
					writeBad.Add(1)
				} else {
					writeOK.Add(1)
				}
			}
		}(w)
	}
	writersWG.Wait()
	done.Store(true)
	wg.Wait()

	if writeOK.Load() == 0 {
		t.Fatal("no writer made progress")
	}
	st := e.Stats()
	if st.Deletes != writeOK.Load() {
		t.Errorf("stats count %d deletes, writers succeeded %d times", st.Deletes, writeOK.Load())
	}
	if st.CommitBatches > st.Deletes {
		t.Errorf("more batches (%d) than delete requests (%d)", st.CommitBatches, st.Deletes)
	}
	// Every view — early and late — must be coherent with the final source.
	for _, name := range e.Views() {
		p, err := e.lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		view, err := e.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := algebra.Eval(p.plan, e.Database())
		if err != nil {
			t.Fatal(err)
		}
		if !view.Equal(fresh) {
			t.Errorf("view %q stale against final source:\n%s\nvs\n%s", name, view.Table(), fresh.Table())
		}
	}
	// The early view saw every commit: its generation is the number of
	// successful requests.
	p, err := e.lookup("v")
	if err != nil {
		t.Fatal(err)
	}
	if g := p.gen.Load(); g != writeOK.Load() {
		t.Errorf("view %q generation %d, want %d (one per successful request)", "v", g, writeOK.Load())
	}
}

// TestConcurrentGroupDeletes stresses the batched path under -race: two
// writers issue group deletions against a shared shrinking view while a
// reader polls stats and the materialized view.
func TestConcurrentGroupDeletes(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	db, q := workload.UserGroupFile(r, 16, 6, 12, 2, 2)
	e := New(db)
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}

	var writers sync.WaitGroup
	for i := 0; i < 2; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < 10; j++ {
				view, err := e.Query("v")
				if err != nil {
					t.Error(err)
					return
				}
				if view.Len() < 2 {
					return
				}
				targets := []relation.Tuple{view.Tuple(0), view.Tuple(view.Len() - 1)}
				// Writers race on the same shrinking view; not-in-view
				// errors are expected, corruption is not.
				if _, err := e.DeleteGroup("v", targets, core.MinimizeSourceDeletions, core.DeleteOptions{Greedy: j%2 == 0}); err != nil && !errors.Is(err, deletion.ErrNotInView) {
					t.Error(err)
					return
				}
			}
		}()
	}

	var done atomic.Bool
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for !done.Load() {
			_ = e.Stats()
			if _, err := e.Query("v"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	writers.Wait()
	done.Store(true)
	reader.Wait()

	// Final state is coherent: the maintained view equals a fresh
	// evaluation over the engine's own source.
	view, err := e.Query("v")
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.lookup("v")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := algebra.Eval(p.plan, e.Database())
	if err != nil {
		t.Fatal(err)
	}
	if !view.Equal(fresh) {
		t.Fatalf("final maintained view diverged:\n%s\nvs\n%s", view.Table(), fresh.Table())
	}
}

// TestConcurrentPaginationServing stresses GET /query's serving path —
// QueryPage over the per-snapshot sorted cache — against committing
// writers, under -race. Readers paginate with random windows while a
// delete/restore writer churns commits (each commit publishes a fresh
// snapshot, invalidating the cache the readers share). The detector is
// the primary assertion; each page must additionally be internally
// consistent: lexicographically sorted, duplicate-free, within bounds,
// and attributed to a monotonically non-decreasing generation.
func TestConcurrentPaginationServing(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	db, q := workload.UserGroupFile(r, 20, 8, 15, 2, 2)
	e := New(db)
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var (
		wg        sync.WaitGroup
		done      atomic.Bool
		readOK    atomic.Int64
		writeOK   atomic.Int64
		failures  atomic.Int64
		firstFail atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstFail.CompareAndSwap(nil, err)
	}

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			lastGen := int64(-1)
			for !done.Load() {
				offset, limit := rr.Intn(30), 1+rr.Intn(10)
				page, err := e.QueryPage("v", offset, limit)
				if err != nil {
					fail(err)
					return
				}
				if len(page.Tuples) > limit || page.Offset+len(page.Tuples) > page.Total {
					fail(errors.New("page exceeds its window"))
					return
				}
				if page.Generation < lastGen {
					fail(errors.New("generation went backwards"))
					return
				}
				lastGen = page.Generation
				for j := 1; j < len(page.Tuples); j++ {
					if !page.Tuples[j-1].Less(page.Tuples[j]) {
						fail(errors.New("page not strictly sorted"))
						return
					}
				}
				readOK.Add(1)
			}
		}(int64(100 + i))
	}

	// Writer: delete the first remaining view tuple, then restore the
	// deleted source tuples — two commits per round, so the sorted cache
	// is invalidated continuously while totals keep moving both ways.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for readOK.Load() == 0 && failures.Load() == 0 {
			runtime.Gosched()
		}
		for i := 0; i < 30; i++ {
			page, err := e.QueryPage("v", 0, 1)
			if err != nil {
				fail(err)
				return
			}
			if len(page.Tuples) == 0 {
				return
			}
			rep, err := e.Delete("v", page.Tuples[0], core.MinimizeSourceDeletions, core.DeleteOptions{})
			if err != nil {
				fail(err)
				return
			}
			if _, err := e.Insert(rep.Result.T); err != nil {
				fail(err)
				return
			}
			writeOK.Add(1)
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d failures; first: %v", n, firstFail.Load())
	}
	if writeOK.Load() == 0 || readOK.Load() == 0 {
		t.Fatalf("no progress: %d writes, %d reads", writeOK.Load(), readOK.Load())
	}
	// After the churn the sorted cache must serve exactly the final view.
	page, err := e.QueryPage("v", 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	final, err := e.Query("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Tuples) != final.Len() {
		t.Fatalf("final page has %d rows, view has %d", len(page.Tuples), final.Len())
	}
	for _, tu := range page.Tuples {
		if !final.Contains(tu) {
			t.Fatalf("cached sorted row %v not in the final view", tu)
		}
	}
}
