package engine

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/deletion"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestConcurrentServing interleaves Query/Witnesses/Annotate readers with
// Delete writers (and a late Prepare) on one engine. Run under -race; the
// assertions are secondary to the detector — readers must only ever observe
// internally-consistent snapshots, and every request must either succeed or
// fail with a domain error, never corrupt state.
func TestConcurrentServing(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	db, q := workload.UserGroupFile(r, 20, 8, 15, 2, 2)
	e := New(db)
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var (
		wg        sync.WaitGroup
		done      atomic.Bool
		readOK    atomic.Int64
		writeOK   atomic.Int64
		failures  atomic.Int64
		firstFail atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstFail.CompareAndSwap(nil, err)
	}

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				view, err := e.Query("v")
				if err != nil {
					fail(err)
					return
				}
				n := view.Len()
				if n == 0 {
					continue
				}
				tu := view.Tuple(n / 2)
				ws, err := e.Witnesses("v", tu)
				if err != nil {
					fail(err)
					return
				}
				if len(ws) == 0 {
					// Allowed only if a writer swapped the snapshot between
					// the two reads; the tuple must be gone from the current
					// view in that case.
					if cur, _ := e.Query("v"); cur.Contains(tu) {
						fail(errors.New("view tuple with empty witness basis in a stable snapshot"))
						return
					}
					continue
				}
				readOK.Add(1)
				if _, err := e.Annotate("v", tu, view.Schema().Attrs()[0]); err != nil {
					// A concurrent delete may have removed the tuple from
					// the generation Annotate resolved.
					if !errors.Is(err, annotation.ErrNoPlacement) {
						fail(err)
						return
					}
				}
			}
		}()
	}

	// One late Prepare races the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := e.PrepareText("groups", "project(user, group; UserGroup)"); err != nil {
			fail(err)
		}
	}()

	// Writer: keep deleting the first remaining view tuple. It waits for
	// the first successful read so the interleaving is guaranteed (the
	// solver is fast enough to finish all deletions before a reader's
	// first round otherwise).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for readOK.Load() == 0 && failures.Load() == 0 {
			runtime.Gosched()
		}
		for i := 0; i < 40; i++ {
			view, err := e.Query("v")
			if err != nil {
				fail(err)
				return
			}
			if view.Len() == 0 {
				return
			}
			obj := core.MinimizeViewSideEffects
			if i%2 == 1 {
				obj = core.MinimizeSourceDeletions
			}
			if _, err := e.Delete("v", view.Tuple(0), obj, core.DeleteOptions{}); err != nil {
				fail(err)
				return
			}
			writeOK.Add(1)
		}
	}()

	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d failures; first: %v", n, firstFail.Load())
	}
	if writeOK.Load() == 0 {
		t.Fatal("writer made no progress")
	}
	if readOK.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	if st := e.Stats(); st.Deletes != writeOK.Load() {
		t.Errorf("stats count %d deletes, writer did %d", st.Deletes, writeOK.Load())
	}
	// The late-prepared view must be coherent with the final source: a
	// Prepare racing the writers must never register a snapshot that missed
	// a deletion's maintenance pass.
	for _, name := range e.Views() {
		p, err := e.lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		view, err := e.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := algebra.Eval(p.plan, e.Database())
		if err != nil {
			t.Fatal(err)
		}
		if !view.Equal(fresh) {
			t.Errorf("view %q stale against final source:\n%s\nvs\n%s", name, view.Table(), fresh.Table())
		}
	}
}

// TestConcurrentGroupDeletes stresses the batched path under -race: two
// writers issue group deletions against a shared shrinking view while a
// reader polls stats and the materialized view.
func TestConcurrentGroupDeletes(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	db, q := workload.UserGroupFile(r, 16, 6, 12, 2, 2)
	e := New(db)
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}

	var writers sync.WaitGroup
	for i := 0; i < 2; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < 10; j++ {
				view, err := e.Query("v")
				if err != nil {
					t.Error(err)
					return
				}
				if view.Len() < 2 {
					return
				}
				targets := []relation.Tuple{view.Tuple(0), view.Tuple(view.Len() - 1)}
				// Writers race on the same shrinking view; not-in-view
				// errors are expected, corruption is not.
				if _, err := e.DeleteGroup("v", targets, core.MinimizeSourceDeletions, core.DeleteOptions{Greedy: j%2 == 0}); err != nil && !errors.Is(err, deletion.ErrNotInView) {
					t.Error(err)
					return
				}
			}
		}()
	}

	var done atomic.Bool
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for !done.Load() {
			_ = e.Stats()
			if _, err := e.Query("v"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	writers.Wait()
	done.Store(true)
	reader.Wait()

	// Final state is coherent: the maintained view equals a fresh
	// evaluation over the engine's own source.
	view, err := e.Query("v")
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.lookup("v")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := algebra.Eval(p.plan, e.Database())
	if err != nil {
		t.Fatal(err)
	}
	if !view.Equal(fresh) {
		t.Fatalf("final maintained view diverged:\n%s\nvs\n%s", view.Table(), fresh.Table())
	}
}
