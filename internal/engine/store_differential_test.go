package engine

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/relation"
	"repro/internal/storetest"
)

// TestDifferentialCompactionCycles drives random Insert/Delete
// interleavings through a prepared engine long enough to force the
// versioned source store through multiple overlay compaction cycles (both
// folds and squashes), asserting after every step that the maintained
// view, witness basis, source database and per-view generation are
// byte-identical to a from-scratch algebra.Eval + provenance.Compute over
// a legacy flat mirror (storetest.Oracle). This is the proof that structure sharing and
// compaction are invisible to every consumer above the store.
func TestDifferentialCompactionCycles(t *testing.T) {
	for _, segments := range []int{0, 1, 4, 17} {
		segments := segments
		t.Run(fmt.Sprintf("segments=%d", segments), func(t *testing.T) {
			testDifferentialCompactionCycles(t, segments)
		})
	}
}

func testDifferentialCompactionCycles(t *testing.T, segments int) {
	// Segmented stores fold per segment, so those runs go longer and seed
	// more tuples per relation to drive every segment through its own
	// compaction cycles; one seed keeps the added configurations affordable.
	steps, seeds, nR, nS := 300, int64(2), 25, 20
	if segments > 0 {
		steps, seeds, nR, nS = 600, 1, 120, 90
	}
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))

		db := relation.NewDatabase()
		r := relation.New("R", relation.NewSchema("A", "B"))
		for i := 0; i < nR; i++ {
			r.InsertStrings("a"+strconv.Itoa(i), "b"+strconv.Itoa(i%6))
		}
		s := relation.New("S", relation.NewSchema("B", "C"))
		for i := 0; i < nS; i++ {
			s.InsertStrings("b"+strconv.Itoa(i%6), "c"+strconv.Itoa(i))
		}
		db.MustAdd(r)
		db.MustAdd(s)

		q, err := algebra.Parse("project(A, C; join(R, S))")
		if err != nil {
			t.Fatal(err)
		}
		e := New(db, Options{Segments: segments})
		if err := e.Prepare("v", q); err != nil {
			t.Fatal(err)
		}
		oracle := storetest.NewOracle(db)

		var wantGen int64
		var restorable []relation.SourceTuple // tuples past deletions removed
		fresh := 0

		for step := 0; step < steps; step++ {
			ctx := fmt.Sprintf("seed %d step %d", seed, step)
			switch {
			case rng.Intn(2) == 0:
				view, err := e.Query("v")
				if err != nil {
					t.Fatal(err)
				}
				if view.Len() == 0 {
					break
				}
				target := view.Tuple(rng.Intn(view.Len()))
				obj := core.MinimizeSourceDeletions
				if rng.Intn(2) == 0 {
					obj = core.MinimizeViewSideEffects
				}
				rep, err := e.Delete("v", target, obj, core.DeleteOptions{})
				if err != nil {
					t.Fatalf("%s: Delete: %v", ctx, err)
				}
				oracle.DeleteAll(rep.Result.T)
				restorable = append(restorable, rep.Result.T...)
				wantGen++
			default:
				var I []relation.SourceTuple
				for k := 0; k < 1+rng.Intn(3); k++ {
					switch {
					case len(restorable) > 0 && rng.Intn(2) == 0:
						// Restore a previously deleted tuple (exercises the
						// tombstone-then-reappend overlay path).
						i := rng.Intn(len(restorable))
						I = append(I, restorable[i])
						restorable = append(restorable[:i], restorable[i+1:]...)
					default:
						// A brand-new tuple grows the store, driving overlay
						// mentions toward the fold threshold.
						fresh++
						rel := []string{"R", "S"}[rng.Intn(2)]
						if rel == "R" {
							I = append(I, relation.SourceTuple{Rel: "R", Tuple: relation.StringTuple("z"+strconv.Itoa(fresh), "b"+strconv.Itoa(fresh%6))})
						} else {
							I = append(I, relation.SourceTuple{Rel: "S", Tuple: relation.StringTuple("b"+strconv.Itoa(fresh%6), "y"+strconv.Itoa(fresh))})
						}
					}
				}
				rep, err := e.Insert(I)
				if err != nil {
					t.Fatalf("%s: Insert: %v", ctx, err)
				}
				oracle.InsertAll(I)
				if len(rep.Inserted) > 0 {
					wantGen++
				}
			}

			// The from-scratch recompute dominates the test's cost, so it
			// runs densely while the overlay is young and on a sample (plus
			// the final step) afterwards; the write stream itself — which is
			// what churns the store through its compaction cycles — always
			// runs every step.
			if step >= 50 && step%10 != 0 && step != steps-1 {
				continue
			}
			mirror := oracle.Build()
			if got, want := relation.WriteDatabaseString(e.Database()), relation.WriteDatabaseString(mirror); got != want {
				t.Fatalf("%s: source diverged\n got:\n%s\nwant:\n%s", ctx, got, want)
			}
			scratchView, err := algebra.Eval(q, mirror)
			if err != nil {
				t.Fatal(err)
			}
			cur, err := e.Query("v")
			if err != nil {
				t.Fatal(err)
			}
			if got, want := cur.Table(), scratchView.Table(); got != want {
				t.Fatalf("%s: view diverged\n got:\n%s\nwant:\n%s", ctx, got, want)
			}
			scratchProv, err := provenance.Compute(q, mirror)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := basisFingerprint(enginePerViewBasis(t, e, "v")), basisFingerprint(scratchProv); got != want {
				t.Fatalf("%s: basis diverged\n got:\n%s\nwant:\n%s", ctx, got, want)
			}
			info, err := e.Describe("v")
			if err != nil {
				t.Fatal(err)
			}
			if info.Generation != wantGen {
				t.Fatalf("%s: generation %d, want %d", ctx, info.Generation, wantGen)
			}
		}

		st := e.Stats()
		if st.Store.Compactions < 2 {
			t.Fatalf("seed %d: %d steps produced %d overlay folds, want ≥ 2 compaction cycles (store %+v)",
				seed, steps, st.Store.Compactions, st.Store)
		}
		if st.Store.DerivedVersions == 0 || st.Store.SharedRelations == 0 || st.Store.RewrittenRelations == 0 {
			t.Fatalf("seed %d: store counters did not move: %+v", seed, st.Store)
		}
		if segments > 0 {
			if st.Store.Segmented.Relations != 2 || st.Store.Segmented.Segments != 2*segments {
				t.Fatalf("seed %d: segment stats %+v, want 2 relations × %d segments", seed, st.Store.Segmented, segments)
			}
			if segments > 1 && st.Store.Segmented.ParallelDerives == 0 {
				t.Fatalf("seed %d: no commit ever scattered across segments (stats %+v)", seed, st.Store.Segmented)
			}
		}
		// The view's provenance-tree store must have cycled its node
		// overlays too — every commit above ran through the O(Δ) tree
		// maintenance, and this workload is long enough to fold both the
		// node relations and the witness/bucket maps.
		tree := st.Views[0].Tree
		if tree.Derives == 0 || tree.RewrittenNodes == 0 || tree.TouchedTuples == 0 {
			t.Fatalf("seed %d: tree counters did not move: %+v", seed, tree)
		}
		if tree.RelFolds < 1 || tree.MapFolds < 1 {
			t.Fatalf("seed %d: node overlays never folded (rel %d, map %d; tree %+v)",
				seed, tree.RelFolds, tree.MapFolds, tree)
		}
		// The maintained tree never paid a full rebuild: total maintenance
		// work stays bounded by the write deltas, not by steps × tree size.
		if tree.TouchedTuples > int64(steps)*int64(tree.NodeTuples) {
			t.Fatalf("seed %d: tree maintenance touched %d tuples over %d steps (tree size %d) — not O(Δ)",
				seed, tree.TouchedTuples, steps, tree.NodeTuples)
		}
	}
}
