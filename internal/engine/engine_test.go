package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/relation"
	"repro/internal/workload"
)

const srcDB = `
relation UserGroup(user, group)
john, staff
john, admin
mary, admin

relation GroupFile(group, file)
staff, f1
admin, f1
admin, f2
`

const srcQuery = "project(user, file; join(UserGroup, GroupFile))"

func mustEngine(t *testing.T) *Engine {
	t.Helper()
	db, err := relation.ReadDatabaseString(srcDB)
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	if err := e.PrepareText("access", srcQuery); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPrepareAndQuery(t *testing.T) {
	e := mustEngine(t)
	view, err := e.Query("access")
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != 4 {
		t.Fatalf("view has %d tuples, want 4", view.Len())
	}
	for _, want := range [][]string{{"john", "f1"}, {"john", "f2"}, {"mary", "f1"}, {"mary", "f2"}} {
		if !view.Contains(relation.StringTuple(want...)) {
			t.Errorf("view missing %v", want)
		}
	}
	ws, err := e.Witnesses("access", relation.StringTuple("john", "f1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Errorf("(john,f1) has %d witnesses, want 2 (staff and admin routes)", len(ws))
	}
}

func TestPrepareConflicts(t *testing.T) {
	e := mustEngine(t)
	// Same (name, query) is idempotent.
	if err := e.PrepareText("access", srcQuery); err != nil {
		t.Fatalf("re-preparing same query: %v", err)
	}
	// Same name, different query conflicts.
	err := e.PrepareText("access", "project(user; UserGroup)")
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting prepare: got %v, want ErrConflict", err)
	}
	// Unknown relations are rejected.
	if err := e.PrepareText("bad", "project(x; Nope)"); err == nil {
		t.Fatal("prepare of a query over a missing relation must fail")
	}
	// Empty name is rejected.
	if err := e.PrepareText("", srcQuery); err == nil {
		t.Fatal("prepare with empty name must fail")
	}
}

func TestPrepareLimited(t *testing.T) {
	db, err := relation.ReadDatabaseString(srcDB)
	if err != nil {
		t.Fatal(err)
	}
	// (john, f1) has two witnesses (staff and admin routes), so a cap of 1
	// must refuse the prepare...
	e := New(db)
	if err := e.PrepareLimited("v", mustParse(t, srcQuery), provenance.Limit{MaxWitnesses: 1}); !errors.Is(err, provenance.ErrLimit) {
		t.Fatalf("got %v, want ErrLimit", err)
	}
	// ...and the failed prepare must not register the view.
	if _, err := e.Query("v"); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("failed prepare leaked a view: %v", err)
	}
	// A sufficient cap prepares and serves normally.
	if err := e.PrepareLimited("v", mustParse(t, srcQuery), provenance.Limit{MaxWitnesses: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete("v", relation.StringTuple("john", "f2"), core.MinimizeViewSideEffects, core.DeleteOptions{}); err != nil {
		t.Fatal(err)
	}
}

// A failing where-index computation must not fail Prepare: deletion-only
// deployments still serve (the package doc's promise), and the error
// surfaces only on Annotate. A later generation rebuilds the index lazily
// and can recover.
func TestPrepareServesWhenWhereIndexFails(t *testing.T) {
	injected := errors.New("injected where-index failure")
	orig := computeWhere
	computeWhere = func(q algebra.Query, db *relation.Database) (*annotation.WhereView, error) {
		return nil, injected
	}
	restored := false
	defer func() {
		if !restored {
			computeWhere = orig
		}
	}()

	db, err := relation.ReadDatabaseString(srcDB)
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	if err := e.PrepareText("access", srcQuery); err != nil {
		t.Fatalf("Prepare failed on a where-index error: %v", err)
	}
	// The index is not ready, and Annotate surfaces the stored error.
	vs, err := e.Describe("access")
	if err != nil {
		t.Fatal(err)
	}
	if vs.WhereReady {
		t.Error("WhereReady true for a failed where index")
	}
	if _, err := e.Annotate("access", relation.StringTuple("john", "f1"), "file"); !errors.Is(err, injected) {
		t.Fatalf("Annotate: got %v, want the stored where error", err)
	}
	// Deletion-only serving still works.
	if _, err := e.Delete("access", relation.StringTuple("john", "f2"), core.MinimizeViewSideEffects, core.DeleteOptions{}); err != nil {
		t.Fatalf("Delete after a where-index failure: %v", err)
	}
	// The post-deletion generation rebuilds the index lazily; with the
	// computation healthy again, Annotate recovers.
	computeWhere = orig
	restored = true
	view, err := e.Query("access")
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() == 0 {
		t.Skip("view emptied")
	}
	if _, err := e.Annotate("access", view.Tuple(0), "file"); err != nil {
		t.Fatalf("Annotate on the rebuilt index: %v", err)
	}
	if vs, err := e.Describe("access"); err != nil || !vs.WhereReady {
		t.Fatalf("where index not ready after recovery: %+v, %v", vs, err)
	}
}

func mustParse(t *testing.T, src string) algebra.Query {
	t.Helper()
	q, err := algebra.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestUnknownView(t *testing.T) {
	e := mustEngine(t)
	if _, err := e.Query("nope"); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("Query(nope): got %v, want ErrUnknownView", err)
	}
	if _, err := e.Delete("nope", relation.StringTuple("a"), core.MinimizeViewSideEffects, core.DeleteOptions{}); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("Delete(nope): got %v, want ErrUnknownView", err)
	}
	if _, err := e.Annotate("nope", relation.StringTuple("a"), "x"); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("Annotate(nope): got %v, want ErrUnknownView", err)
	}
}

func TestDeleteMaintainsView(t *testing.T) {
	e := mustEngine(t)
	target := relation.StringTuple("john", "f2")
	rep, err := e.Delete("access", target, core.MinimizeViewSideEffects, core.DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Result.T) == 0 {
		t.Fatal("no source deletions chosen")
	}
	view, err := e.Query("access")
	if err != nil {
		t.Fatal(err)
	}
	if view.Contains(target) {
		t.Fatal("target still in the maintained view")
	}
	// The maintained view must equal re-evaluating the query over the
	// engine's current source.
	q, err := algebra.Parse(srcQuery)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := algebra.Eval(q, e.Database())
	if err != nil {
		t.Fatal(err)
	}
	if !view.Equal(fresh) {
		t.Fatalf("maintained view %v != re-evaluated view %v", view, fresh)
	}
	// Deleting a tuple that is gone now fails cleanly, without state change.
	before := view.Len()
	if _, err := e.Delete("access", target, core.MinimizeViewSideEffects, core.DeleteOptions{}); err == nil {
		t.Fatal("deleting an absent view tuple must fail")
	}
	view, _ = e.Query("access")
	if view.Len() != before {
		t.Fatal("failed delete changed the view")
	}
}

// A deletion through one prepared view must maintain every other prepared
// view over the same source.
func TestDeleteMaintainsAllViews(t *testing.T) {
	e := mustEngine(t)
	if err := e.PrepareText("groups", "project(user, group; UserGroup)"); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Delete("access", relation.StringTuple("john", "f2"), core.MinimizeSourceDeletions, core.DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := e.Query("groups")
	if err != nil {
		t.Fatal(err)
	}
	q, err := algebra.Parse("project(user, group; UserGroup)")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := algebra.Eval(q, e.Database())
	if err != nil {
		t.Fatal(err)
	}
	if !groups.Equal(fresh) {
		t.Fatalf("sibling view not maintained after deleting %v", rep.Result.T)
	}
}

func TestAnnotateBeforeAndAfterDelete(t *testing.T) {
	e := mustEngine(t)
	rep, err := e.Annotate("access", relation.StringTuple("john", "f1"), "file")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placement == nil || rep.Placement.Source.Rel == "" {
		t.Fatal("placement missing a source location")
	}
	// After a deletion the where-provenance index is rebuilt lazily; the
	// answer must reflect the new source.
	if _, err := e.Delete("access", relation.StringTuple("john", "f2"), core.MinimizeViewSideEffects, core.DeleteOptions{}); err != nil {
		t.Fatal(err)
	}
	view, _ := e.Query("access")
	if view.Len() == 0 {
		t.Skip("view emptied")
	}
	again, err := e.Annotate("access", view.Tuple(0), "file")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Database().Contains(relation.SourceTuple{Rel: again.Placement.Source.Rel, Tuple: again.Placement.Source.Tuple}) {
		t.Fatalf("placement %v names a deleted source tuple", again.Placement.Source)
	}
}

// DeleteGroup removes every target with one solve and matches the one-shot
// group solver's optimum size.
func TestDeleteGroup(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	db, q := workload.UserGroupFile(r, 10, 5, 8, 2, 2)
	e := New(db)
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}
	view, _ := e.Query("v")
	if view.Len() < 3 {
		t.Skip("small view")
	}
	targets := []relation.Tuple{view.Tuple(0), view.Tuple(1), view.Tuple(2)}
	rep, err := e.DeleteGroup("v", targets, core.MinimizeSourceDeletions, core.DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := e.Query("v")
	for _, tg := range targets {
		if after.Contains(tg) {
			t.Errorf("target %v survived the group deletion", tg)
		}
	}
	if !rep.Exact {
		t.Error("exact group deletion not marked exact")
	}
	fresh, err := algebra.Eval(q, e.Database())
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(fresh) {
		t.Fatal("maintained view diverged from re-evaluation after group delete")
	}
}

func TestStats(t *testing.T) {
	e := mustEngine(t)
	if _, err := e.Query("access"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Annotate("access", relation.StringTuple("john", "f1"), "file"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete("access", relation.StringTuple("john", "f2"), core.MinimizeViewSideEffects, core.DeleteOptions{}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Prepares != 1 || st.Queries < 1 || st.Deletes != 1 || st.Annotates != 1 {
		t.Fatalf("unexpected counters: %+v", st)
	}
	if st.IncrementalMaintenances < 1 {
		t.Fatalf("no incremental maintenance recorded: %+v", st)
	}
	if len(st.Views) != 1 || st.Views[0].Name != "access" || st.Views[0].Generation != 1 {
		t.Fatalf("unexpected view stats: %+v", st.Views)
	}
	if !st.Views[0].WhereReady {
		t.Error("post-delete generation should carry an incrementally maintained where index")
	}
	if got := e.Views(); len(got) != 1 || got[0] != "access" {
		t.Fatalf("Views() = %v", got)
	}
}

// The engine's cached-basis answers must agree with the one-shot routed
// solvers on optimum sizes.
func TestEngineMatchesOneShot(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		db, q := workload.UserGroupFile(r, 8, 4, 6, 2, 2)
		target, ok := workload.PickViewTuple(r, q, db)
		if !ok {
			continue
		}
		for _, obj := range []core.Objective{core.MinimizeViewSideEffects, core.MinimizeSourceDeletions} {
			oneShot, err := core.Delete(q, db.Clone(), target, obj, core.DeleteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			e := New(db)
			if err := e.Prepare("v", q); err != nil {
				t.Fatal(err)
			}
			cached, err := e.Delete("v", target, obj, core.DeleteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if obj == core.MinimizeViewSideEffects && len(cached.Result.SideEffects) != len(oneShot.Result.SideEffects) {
				t.Errorf("seed %d view objective: cached %d side-effects, one-shot %d", seed, len(cached.Result.SideEffects), len(oneShot.Result.SideEffects))
			}
			if obj == core.MinimizeSourceDeletions && len(cached.Result.T) != len(oneShot.Result.T) {
				t.Errorf("seed %d source objective: cached |T|=%d, one-shot |T|=%d", seed, len(cached.Result.T), len(oneShot.Result.T))
			}
		}
	}
}
