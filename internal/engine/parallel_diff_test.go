package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestDifferentialMaintenanceWorkers drives identical group-delete /
// restore / annotate streams through three engines that differ only in
// MaintenanceWorkers (1 = serial per-view maintenance, the pre-parallel
// behavior; 2 and 8 = partitioned) and asserts the full engine state stays
// byte-identical after every commit: view table, witness basis, source
// database, generation counter, and annotation placements. Group deletes
// target a dozen view tuples at a time so the per-node candidate sets
// exceed parDeltaMin and the partitioned path actually runs.
func TestDifferentialMaintenanceWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	db, q := workload.UserGroupFile(r, 30, 10, 45, 3, 2)
	widths := []int{1, 2, 8}
	engines := make([]*Engine, len(widths))
	for i, w := range widths {
		engines[i] = New(db.Clone(), Options{Workers: 4, MaintenanceWorkers: w})
		if err := engines[i].Prepare("v", q); err != nil {
			t.Fatal(err)
		}
	}
	serial := engines[0]

	// compareAll asserts every engine's observable state equals the serial
	// engine's, byte for byte.
	compareAll := func(step int) {
		view, err := serial.Query("v")
		if err != nil {
			t.Fatal(err)
		}
		basis := basisFingerprint(enginePerViewBasis(t, serial, "v"))
		src := serial.Database().String()
		info, err := serial.Describe("v")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(engines); i++ {
			e := engines[i]
			v2, err := e.Query("v")
			if err != nil {
				t.Fatal(err)
			}
			if got, want := v2.Table(), view.Table(); got != want {
				t.Fatalf("step %d: width-%d view diverged from serial\n got:\n%s\nwant:\n%s", step, widths[i], got, want)
			}
			if got := basisFingerprint(enginePerViewBasis(t, e, "v")); got != basis {
				t.Fatalf("step %d: width-%d witness basis diverged from serial\n got:\n%s\nwant:\n%s", step, widths[i], got, basis)
			}
			if got := e.Database().String(); got != src {
				t.Fatalf("step %d: width-%d source diverged from serial\n got:\n%s\nwant:\n%s", step, widths[i], got, src)
			}
			info2, err := e.Describe("v")
			if err != nil {
				t.Fatal(err)
			}
			if info2.Generation != info.Generation {
				t.Fatalf("step %d: width-%d generation %d, serial %d", step, widths[i], info2.Generation, info.Generation)
			}
		}
	}

	// annotateAll builds (and, after deletions, incrementally maintains)
	// each engine's where index and demands identical placements — this is
	// the annotation.ApplyDeletionWorkers leg of the invariant.
	annotateAll := func(step int) {
		view, err := serial.Query("v")
		if err != nil {
			t.Fatal(err)
		}
		if view.Len() == 0 {
			return
		}
		target := view.Tuple(r.Intn(view.Len()))
		attr := view.Schema().Attrs()[r.Intn(view.Schema().Len())]
		want, wantErr := serial.Annotate("v", target, attr)
		for i := 1; i < len(engines); i++ {
			got, gotErr := engines[i].Annotate("v", target, attr)
			if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
				t.Fatalf("step %d: width-%d annotate error %v, serial %v", step, widths[i], gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			render := func(p *annotation.Placement) string {
				if p == nil {
					return "<nil>"
				}
				return fmt.Sprintf("src=%v affected=%v side=%d", p.Source, p.Affected.Sorted(), p.SideEffects)
			}
			if g, w := render(got.Placement), render(want.Placement); g != w {
				t.Fatalf("step %d: width-%d placement diverged\n got: %s\nwant: %s", step, widths[i], g, w)
			}
		}
	}

	annotateAll(-1) // build every where index up front so deletions maintain it
	var graveyard []relation.SourceTuple
	for step := 0; step < 10; step++ {
		if step%3 == 2 && len(graveyard) > 0 {
			// Restore a clutch of previously deleted source tuples.
			var I []relation.SourceTuple
			seen := make(map[string]bool)
			for k := 0; k < 8 && k < len(graveyard); k++ {
				st := graveyard[r.Intn(len(graveyard))]
				if !seen[st.Key()] {
					seen[st.Key()] = true
					I = append(I, st)
				}
			}
			for _, e := range engines {
				if _, err := e.Insert(I); err != nil {
					t.Fatalf("step %d: insert: %v", step, err)
				}
			}
		} else {
			view, err := serial.Query("v")
			if err != nil {
				t.Fatal(err)
			}
			if view.Len() < 2 {
				continue
			}
			var targets []relation.Tuple
			for k := 0; k < 12 && k < view.Len(); k++ {
				targets = append(targets, view.Tuple(r.Intn(view.Len())))
			}
			var firstT []relation.SourceTuple
			for i, e := range engines {
				rep, err := e.DeleteGroup("v", targets, core.MinimizeSourceDeletions, core.DeleteOptions{})
				if err != nil {
					t.Fatalf("step %d: width-%d delete: %v", step, widths[i], err)
				}
				if i == 0 {
					firstT = rep.Result.T
					graveyard = append(graveyard, rep.Result.T...)
				} else {
					keys := func(ts []relation.SourceTuple) string {
						s := ""
						for _, st := range ts {
							s += st.Key() + ";"
						}
						return s
					}
					if got, want := keys(rep.Result.T), keys(firstT); got != want {
						t.Fatalf("step %d: width-%d solver picked %v, serial picked %v", step, widths[i], got, want)
					}
				}
			}
		}
		compareAll(step)
		annotateAll(step)
	}

	// The non-serial engines must actually have exercised the partitioned
	// path at least once across the stream.
	for i := 1; i < len(engines); i++ {
		if st := engines[i].Stats(); st.MaintenanceWorkers != widths[i] {
			t.Fatalf("width-%d engine reports MaintenanceWorkers=%d", widths[i], st.MaintenanceWorkers)
		}
	}
}

// TestConcurrentParallelMaintenanceServing is the -race stress for the
// intra-view parallel maintenance path: paginating readers and an
// annotating reader run against an engine whose commits fan each view's
// delta across 4 intra-view workers (on top of 4 across-view workers),
// while a writer churns group deletes and restores. Run under -race; the
// assertions are secondary to the detector — readers must only ever
// observe internally-consistent snapshots.
func TestConcurrentParallelMaintenanceServing(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	db, q := workload.UserGroupFile(r, 24, 8, 20, 2, 2)
	e := New(db, Options{Workers: 4, MaintenanceWorkers: 4})
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}

	const readers = 3
	var (
		wg        sync.WaitGroup
		done      atomic.Bool
		readOK    atomic.Int64
		failures  atomic.Int64
		firstFail atomic.Value
	)
	fail := func(err error) {
		failures.Add(1)
		firstFail.CompareAndSwap(nil, err)
	}

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			lastGen := int64(-1)
			for !done.Load() {
				offset, limit := rr.Intn(30), 1+rr.Intn(10)
				page, err := e.QueryPage("v", offset, limit)
				if err != nil {
					fail(err)
					return
				}
				if len(page.Tuples) > limit || page.Offset+len(page.Tuples) > page.Total {
					fail(errors.New("page exceeds its window"))
					return
				}
				if page.Generation < lastGen {
					fail(errors.New("generation went backwards"))
					return
				}
				lastGen = page.Generation
				readOK.Add(1)
			}
		}(int64(200 + i))
	}

	// Annotating reader: forces the where index to exist (so deletion
	// commits take the annotation.ApplyDeletionWorkers path) and keeps
	// reading placements off live snapshots while commits churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rr := rand.New(rand.NewSource(300))
		for !done.Load() {
			view, err := e.Query("v")
			if err != nil {
				fail(err)
				return
			}
			if view.Len() == 0 {
				runtime.Gosched()
				continue
			}
			target := view.Tuple(rr.Intn(view.Len()))
			attr := view.Schema().Attrs()[rr.Intn(view.Schema().Len())]
			// The snapshot may have moved since Query, so a domain error
			// (target no longer in the view) is fine; the race detector is
			// the real assertion here.
			_, _ = e.Annotate("v", target, attr)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		rr := rand.New(rand.NewSource(400))
		for readOK.Load() == 0 && failures.Load() == 0 {
			runtime.Gosched()
		}
		for i := 0; i < 25; i++ {
			view, err := e.Query("v")
			if err != nil {
				fail(err)
				return
			}
			if view.Len() < 2 {
				return
			}
			var targets []relation.Tuple
			for k := 0; k < 10 && k < view.Len(); k++ {
				targets = append(targets, view.Tuple(rr.Intn(view.Len())))
			}
			rep, err := e.DeleteGroup("v", targets, core.MinimizeSourceDeletions, core.DeleteOptions{})
			if err != nil {
				fail(err)
				return
			}
			if _, err := e.Insert(rep.Result.T); err != nil {
				fail(err)
				return
			}
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failures; first: %v", failures.Load(), firstFail.Load())
	}
	if st := e.Stats(); st.MaintenanceWorkers != 4 {
		t.Fatalf("Stats.MaintenanceWorkers = %d, want 4", st.MaintenanceWorkers)
	}
}
