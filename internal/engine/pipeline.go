// The write pipeline: concurrent write requests coalesce into batches that
// commit under one lock. Delete/DeleteGroup requests against the same view
// coalesce into one cached-basis group solve; concurrent Insert requests
// coalesce into one source extension with one delta-maintenance sweep; and
// the per-view incremental maintenance of every commit fans out across a
// bounded worker pool. Both kinds flow through the same batcher/batch
// machinery and the same commit lock, so an arbitrary interleaving of
// deletions and insertions is just a sequence of serialized batch commits
// (differential_test.go proves the sequence equivalent to applying the
// requests one at a time).
//
// Life of a delete request:
//
//  1. join — the request enters the view's pending batch if one is open
//     and compatible (same objective and solver options, combined target
//     count within MaxBatchSize); otherwise it opens a new batch and
//     becomes its leader.
//  2. collect — the leader waits up to MaxCoalesceWait (or until the batch
//     is full) for followers, then blocks on the engine's commit lock.
//     Contention is the natural coalescing window: while an earlier batch
//     is committing, later requests pile into the pending batch for free,
//     so throughput under load no longer degrades to one solve per
//     request even with MaxCoalesceWait = 0.
//  3. commit — holding the commit lock, the leader freezes the batch,
//     validates each request's targets against the current snapshot
//     (requests with vanished targets fail individually; they never poison
//     the batch), runs ONE group solve over the union of surviving
//     targets (deletion.*GroupBasis), and applies the chosen source
//     deletions with one maintenance sweep: every prepared view's
//     ApplyDeletion runs on the worker pool, since each view's snapshot is
//     independent of the others.
//  4. publish — the new source generation and every view's new snapshot
//     are published atomically; each view's generation counter advances by
//     the number of coalesced requests, so for requests with distinct
//     targets the generation counts are identical to applying the requests
//     one at a time (see differential_test.go). Requests that target the
//     SAME tuple and coalesce all succeed — they were concurrent and the
//     tuple was present at the commit's snapshot — whereas a strict serial
//     order would fail all but the first with ErrNotInView; coalescing
//     linearizes such requests as simultaneous.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/deletion"
	"repro/internal/relation"
)

// Options tunes the engine's write pipeline. The zero value selects the
// defaults noted on each field.
type Options struct {
	// Workers bounds the worker pool that fans out per-view incremental
	// maintenance during a commit. Default: runtime.GOMAXPROCS(0).
	Workers int
	// MaxBatchSize caps the total number of target tuples coalesced into
	// one group solve. A single DeleteGroup larger than the cap is still
	// admitted, alone. Default: 32. Set to 1 to disable coalescing.
	MaxBatchSize int
	// MaxCoalesceWait is how long a batch leader waits for followers
	// before committing. Zero (the default) means no artificial wait:
	// batching then arises only from contention on the commit lock, which
	// keeps uncontended latency unchanged.
	MaxCoalesceWait time.Duration
	// Segments, when positive, stores the source database sharded into
	// that many hash-partitioned segments per relation
	// (relation.Database.Sharded): commit-time overlay derivation and
	// compaction scatter across segments and run in parallel, and folds
	// cost O(segment) instead of O(relation). Zero (the default) keeps the
	// unsegmented store. Worth turning on for large relations under write
	// load; a good starting point is a few segments per core.
	Segments int
	// MaintenanceWorkers bounds the INTRA-view parallelism of each view's
	// maintenance pass during a commit: sibling subtrees of the provenance
	// tree derive concurrently and per-node candidate work partitions by
	// key hash (provenance.Result.ApplyDeletionWorkers /
	// ApplyInsertionWorkers, annotation.WhereView.ApplyDeletionWorkers).
	// This is the second parallelism axis, orthogonal to Workers (which
	// fans out ACROSS views). Zero (the default) auto-budgets: each view's
	// pass gets Workers divided by the number of concurrently maintained
	// views, at least 1, so across-view × intra-view never exceeds
	// Workers. Set to 1 to force serial per-view maintenance (the pre-PR-9
	// behavior); set above 1 to pin an explicit intra-view width
	// regardless of view count.
	MaintenanceWorkers int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxBatchSize <= 0 {
		o.MaxBatchSize = 32
	}
	if o.MaxCoalesceWait < 0 {
		o.MaxCoalesceWait = 0
	}
	return o
}

// intraWorkers is the per-view maintenance width for a commit touching the
// given number of views. With MaintenanceWorkers unset it divides the
// across-view pool evenly: fanOut runs min(views, Workers) views at once,
// so each gets Workers/min(views, Workers) workers (at least 1) and the
// product never oversubscribes Workers. An explicit setting passes
// through unchanged — the operator has opted out of the budget.
func (o Options) intraWorkers(views int) int {
	if o.MaintenanceWorkers > 0 {
		return o.MaintenanceWorkers
	}
	if views < 1 {
		views = 1
	}
	active := views
	if o.Workers < active {
		active = o.Workers
	}
	w := o.Workers / active
	if w < 1 {
		w = 1
	}
	return w
}

// writeKind distinguishes the two write request types in the pipeline.
type writeKind uint8

const (
	writeDelete writeKind = iota
	writeInsert
)

// batchKey is the compatibility class of a write request: only requests of
// the same kind may share a batch, and deletions additionally must solve
// for the same objective with the same solver options to share a group
// solve. (Insertions have no solver knobs, so all concurrent inserts are
// compatible.)
type batchKey struct {
	kind          writeKind
	obj           core.Objective
	greedy        bool
	maxCandidates int
}

// writeReq is one caller's write inside a batch: a Delete/DeleteGroup
// (targets/group, answered in report) or an Insert (tuples, answered in
// ins). The leader fills the answer and err before closing the batch's
// done channel.
type writeReq struct {
	kind    writeKind
	targets []relation.Tuple       // delete: view tuples to remove
	group   bool                   // delete: DeleteGroup vs Delete
	tuples  []relation.SourceTuple // insert: source tuples to add

	report *core.DeleteReport
	ins    *InsertReport
	err    error
}

// size is the request's contribution to its batch's coalescing cap.
func (r *writeReq) size() int {
	if r.kind == writeInsert {
		return len(r.tuples)
	}
	return len(r.targets)
}

// batch is one coalesced unit of work: every request commits or fails
// together in a single group solve + maintenance sweep.
type batch struct {
	key  batchKey
	reqs []*writeReq
	size int           // total targets across reqs
	full chan struct{} // closed when size reaches MaxBatchSize
	done chan struct{} // closed after the leader commits
}

// batcher is a coalescing point — one per view for deletions, one per
// engine for insertions. Pending batches are keyed by compatibility class,
// so a mixed stream (e.g. alternating objectives) keeps one open batch per
// class instead of each incompatible arrival orphaning the previous batch
// and degrading coalescing to size 1.
type batcher struct {
	mu      sync.Mutex
	pending map[batchKey]*batch // guarded-by: mu (open batches accepting joiners)
}

// join adds req to the open batch of its compatibility class, or opens a
// new batch with req as leader. Returns the batch and whether the caller
// leads it.
func (bt *batcher) join(req *writeReq, key batchKey, maxSize int) (*batch, bool) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	if b := bt.pending[key]; b != nil && b.size+req.size() <= maxSize {
		b.reqs = append(b.reqs, req)
		b.size += req.size()
		if b.size >= maxSize {
			close(b.full)
			delete(bt.pending, key) // full: stop admitting joiners
		}
		return b, false
	}
	b := &batch{
		key:  key,
		reqs: []*writeReq{req},
		size: req.size(),
		full: make(chan struct{}),
		done: make(chan struct{}),
	}
	if b.size >= maxSize {
		// An oversized (or cap-1) request runs alone; don't register it so
		// nothing piles onto a batch that will never admit a joiner.
		close(b.full)
		return b, true
	}
	// A same-key batch at capacity was deleted above; a same-key batch
	// below capacity was joined. So the slot is free here.
	if bt.pending == nil {
		bt.pending = make(map[batchKey]*batch)
	}
	bt.pending[key] = b
	return b, true
}

// freeze closes the batch to new joiners; membership is final afterwards.
func (bt *batcher) freeze(b *batch) {
	bt.mu.Lock()
	if bt.pending[b.key] == b {
		delete(bt.pending, b.key)
	}
	bt.mu.Unlock()
}

// runBatch is the leader's path: collect followers, take the commit lock,
// freeze and commit (the kind-specific commit function does the work). The
// unlock and the done broadcast are deferred so a panicking solver cannot
// wedge the engine (commit lock held forever) or strand followers on
// b.done; followers of a panicked batch fail with an error while the panic
// itself propagates on the leader's goroutine.
func (e *Engine) runBatch(bt *batcher, b *batch, commit func(*batch)) {
	if e.opt.MaxCoalesceWait > 0 {
		timer := time.NewTimer(e.opt.MaxCoalesceWait)
		select {
		case <-b.full:
		case <-timer.C:
		}
		timer.Stop()
	}
	e.wmu.Lock()
	defer close(b.done)
	defer e.wmu.Unlock()
	bt.freeze(b)
	defer func() {
		if r := recover(); r != nil {
			for _, req := range b.reqs {
				if req.err == nil && req.report == nil && req.ins == nil {
					req.err = fmt.Errorf("engine: write batch panicked: %v", r)
				}
			}
			panic(r)
		}
	}()
	commit(b)
}

// validateTargets reports the first target absent from view, mirroring
// deletion.GroupTargets' per-target check so a vanished target fails its
// own request instead of the whole batch.
func validateTargets(view *relation.Relation, targets []relation.Tuple) error {
	_, err := deletion.GroupTargets(view, targets)
	return err
}

// commitDelete runs one group solve over every live delete request in the
// batch and applies the result. Callers hold wmu.
func (e *Engine) commitDelete(p *prepared, b *batch) {
	snap := p.snap.Load()

	// Per-request validation: a target that vanished between enqueue and
	// commit (typically deleted by the batch committed just before this
	// one) fails only its own request.
	live := b.reqs[:0:0]
	var merged []relation.Tuple
	for _, r := range b.reqs {
		if err := validateTargets(snap.prov.View, r.targets); err != nil {
			r.err = err
			continue
		}
		live = append(live, r)
		merged = append(merged, r.targets...)
	}
	if len(live) == 0 {
		return
	}

	report := &core.DeleteReport{Fragment: p.frag}
	vopt := deletion.ViewOptions{MaxCandidates: b.key.maxCandidates}
	var solveErr error
	switch {
	case b.key.obj == core.MinimizeViewSideEffects:
		report.Class = p.cls.view
		r, err := deletion.ViewExactGroupBasis(snap.prov, merged, vopt)
		if err != nil {
			solveErr = err
			break
		}
		report.Algorithm = "cached-basis exact hitting-set search"
		report.Result = &r.Result
		report.Exact = r.Exhausted
	case b.key.greedy:
		report.Class = p.cls.source
		r, err := deletion.SourceGreedyGroupBasis(snap.prov, merged)
		if err != nil {
			solveErr = err
			break
		}
		report.Algorithm = "cached-basis greedy hitting set (H_n-approx)"
		report.Result = &r.Result
		report.Exact = false
	default:
		report.Class = p.cls.source
		r, err := deletion.SourceExactGroupBasis(snap.prov, merged)
		if err != nil {
			solveErr = err
			break
		}
		report.Algorithm = "cached-basis exact minimum hitting set"
		report.Result = &r.Result
		report.Exact = true
	}
	if solveErr != nil {
		for _, r := range live {
			r.err = solveErr
		}
		return
	}
	if len(live) > 1 {
		report.Algorithm += " (batched, coalesced)"
	} else if live[0].group {
		report.Algorithm += " (batched)"
	}

	e.apply(report.Result.T, len(live))
	// The committed snapshot's view size and generation travel in the
	// report so servers never pair this commit's deletions with a LATER
	// generation's view size (we still hold wmu, so the values read here
	// are exactly what this commit published).
	report.ViewSize = p.snap.Load().prov.View.Len()
	report.Generation = p.gen.Load()
	e.nDeletes.Add(int64(len(live)))
	e.nDeleted.Add(int64(len(report.Result.T)))
	e.nBatches.Add(1)
	if len(live) > 1 {
		e.nCoalesced.Add(int64(len(live)))
	}
	for _, r := range live {
		r.report = report
	}
}

// commitInsert extends the source with every novel tuple of the batch and
// delta-maintains every prepared view. Duplicate tuples — already present,
// or claimed by an earlier request in the same batch — are idempotent
// no-ops, so a request whose tuples all exist succeeds without advancing
// any generation; generations advance by the number of requests that
// contributed at least one novel tuple, keeping the counts identical to
// applying the requests one at a time. The maintenance pass is two-phase:
// every view's next snapshot is computed (fanned out on the worker pool)
// before anything is published, so a failure — e.g. a grown basis tripping
// a PrepareLimited cap — publishes nothing. When a COALESCED batch fails,
// the requests are replayed one at a time (mirroring the delete path's
// per-request attribution of vanished targets): only the request whose
// tuples actually blow a cap fails, innocent concurrent inserts succeed
// exactly as they would have under any serial order. Callers hold wmu.
func (e *Engine) commitInsert(b *batch) {
	if err := e.insertGroup(b.reqs); err != nil {
		if len(b.reqs) == 1 {
			b.reqs[0].err = err
			return
		}
		for _, r := range b.reqs {
			if rerr := e.insertGroup([]*writeReq{r}); rerr != nil {
				r.err = rerr
			}
		}
	}
}

// insertGroup commits one set of insert requests as a unit: novel-tuple
// claiming in request order, one source extension, one fanned-out
// delta-maintenance sweep, one publish. On success every request receives
// the shared report; on failure nothing is published, no request is
// touched, and the error is returned for the caller to attribute. Callers
// hold wmu.
//
// propview:publish
func (e *Engine) insertGroup(reqs []*writeReq) error {
	e.mu.RLock()
	db := e.db
	ps := make([]*prepared, 0, len(e.views))
	for _, p := range e.views {
		ps = append(ps, p)
	}
	e.mu.RUnlock()

	seen := make(map[string]bool)
	var novel []relation.SourceTuple
	requested, contributing := 0, 0
	for _, r := range reqs {
		requested += len(r.tuples)
		claimed := false
		for _, st := range r.tuples {
			if seen[st.Key()] || db.Contains(st) {
				continue
			}
			seen[st.Key()] = true
			novel = append(novel, st)
			claimed = true
		}
		if claimed {
			contributing++
		}
	}

	report := &InsertReport{
		Requested:  requested,
		Inserted:   novel,
		Duplicates: requested - len(novel),
		Coalesced:  len(reqs) > 1,
	}
	finish := func() {
		report.SourceSize = e.database().Size()
		for _, p := range ps {
			report.Views = append(report.Views, InsertViewUpdate{
				Name:       p.name,
				ViewSize:   p.snap.Load().prov.View.Len(),
				Generation: p.gen.Load(),
			})
		}
		sort.Slice(report.Views, func(i, j int) bool { return report.Views[i].Name < report.Views[j].Name })
		e.nInserts.Add(int64(len(reqs)))
		if len(reqs) > 1 {
			e.nCoalescedIns.Add(int64(len(reqs)))
		}
		for _, r := range reqs {
			r.ins = report
		}
	}
	if len(novel) == 0 {
		finish() // pure duplicates: succeed without publishing a generation
		return nil
	}

	newDB, err := db.InsertAll(novel)
	if err != nil {
		// Unreachable for requests validated by Insert.
		return err
	}
	next := make([]*snapshot, len(ps))
	errs := make([]error, len(ps))
	intra := e.opt.intraWorkers(len(ps))
	e.fanOut(len(ps), func(i int) {
		old := ps[i].snap.Load()
		prov, ierr := old.prov.ApplyInsertionWorkers(newDB, novel, intra)
		if ierr != nil {
			errs[i] = fmt.Errorf("engine: maintaining view %q: %w", ps[i].name, ierr)
			return
		}
		next[i] = nextSnapshot(old, newDB, prov)
	})
	for _, ierr := range errs {
		if ierr != nil {
			return ierr
		}
	}

	e.mu.Lock()
	e.db = newDB
	for i, p := range ps {
		p.snap.Store(next[i])
		p.gen.Add(int64(contributing))
	}
	e.sgen.Add(1)
	e.mu.Unlock()
	e.nMaint.Add(int64(len(ps)))
	e.nInserted.Add(int64(len(novel)))
	e.nBatches.Add(1)
	finish()
	return nil
}

// fanOut runs fn(0..n-1) on up to e.opt.Workers concurrent workers and
// waits for all of them.
//
// propview:fanout
func (e *Engine) fanOut(n int, fn func(i int)) {
	workers := e.opt.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
