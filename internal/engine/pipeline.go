// The write pipeline: concurrent Delete/DeleteGroup requests against the
// same view coalesce into one cached-basis group solve and one commit, and
// the per-view incremental maintenance of a commit fans out across a
// bounded worker pool.
//
// Life of a delete request:
//
//  1. join — the request enters the view's pending batch if one is open
//     and compatible (same objective and solver options, combined target
//     count within MaxBatchSize); otherwise it opens a new batch and
//     becomes its leader.
//  2. collect — the leader waits up to MaxCoalesceWait (or until the batch
//     is full) for followers, then blocks on the engine's commit lock.
//     Contention is the natural coalescing window: while an earlier batch
//     is committing, later requests pile into the pending batch for free,
//     so throughput under load no longer degrades to one solve per
//     request even with MaxCoalesceWait = 0.
//  3. commit — holding the commit lock, the leader freezes the batch,
//     validates each request's targets against the current snapshot
//     (requests with vanished targets fail individually; they never poison
//     the batch), runs ONE group solve over the union of surviving
//     targets (deletion.*GroupBasis), and applies the chosen source
//     deletions with one maintenance sweep: every prepared view's
//     ApplyDeletion runs on the worker pool, since each view's snapshot is
//     independent of the others.
//  4. publish — the new source generation and every view's new snapshot
//     are published atomically; each view's generation counter advances by
//     the number of coalesced requests, so for requests with distinct
//     targets the generation counts are identical to applying the requests
//     one at a time (see differential_test.go). Requests that target the
//     SAME tuple and coalesce all succeed — they were concurrent and the
//     tuple was present at the commit's snapshot — whereas a strict serial
//     order would fail all but the first with ErrNotInView; coalescing
//     linearizes such requests as simultaneous.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/deletion"
	"repro/internal/relation"
)

// Options tunes the engine's write pipeline. The zero value selects the
// defaults noted on each field.
type Options struct {
	// Workers bounds the worker pool that fans out per-view incremental
	// maintenance during a commit. Default: runtime.GOMAXPROCS(0).
	Workers int
	// MaxBatchSize caps the total number of target tuples coalesced into
	// one group solve. A single DeleteGroup larger than the cap is still
	// admitted, alone. Default: 32. Set to 1 to disable coalescing.
	MaxBatchSize int
	// MaxCoalesceWait is how long a batch leader waits for followers
	// before committing. Zero (the default) means no artificial wait:
	// batching then arises only from contention on the commit lock, which
	// keeps uncontended latency unchanged.
	MaxCoalesceWait time.Duration
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxBatchSize <= 0 {
		o.MaxBatchSize = 32
	}
	if o.MaxCoalesceWait < 0 {
		o.MaxCoalesceWait = 0
	}
	return o
}

// batchKey is the compatibility class of a delete request: only requests
// solving for the same objective with the same solver options may share a
// group solve.
type batchKey struct {
	obj           core.Objective
	greedy        bool
	maxCandidates int
}

// deleteReq is one caller's Delete or DeleteGroup inside a batch. The
// leader fills report/err before closing the batch's done channel.
type deleteReq struct {
	targets []relation.Tuple
	group   bool

	report *core.DeleteReport
	err    error
}

// batch is one coalesced unit of work: every request commits or fails
// together in a single group solve + maintenance sweep.
type batch struct {
	key  batchKey
	reqs []*deleteReq
	size int           // total targets across reqs
	full chan struct{} // closed when size reaches MaxBatchSize
	done chan struct{} // closed after the leader commits
}

// batcher is the per-view coalescing point. Pending batches are keyed by
// compatibility class, so a mixed stream (e.g. alternating objectives)
// keeps one open batch per class instead of each incompatible arrival
// orphaning the previous batch and degrading coalescing to size 1.
type batcher struct {
	mu      sync.Mutex
	pending map[batchKey]*batch // open batches accepting joiners
}

// join adds req to the open batch of its compatibility class, or opens a
// new batch with req as leader. Returns the batch and whether the caller
// leads it.
func (bt *batcher) join(req *deleteReq, key batchKey, maxSize int) (*batch, bool) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	if b := bt.pending[key]; b != nil && b.size+len(req.targets) <= maxSize {
		b.reqs = append(b.reqs, req)
		b.size += len(req.targets)
		if b.size >= maxSize {
			close(b.full)
			delete(bt.pending, key) // full: stop admitting joiners
		}
		return b, false
	}
	b := &batch{
		key:  key,
		reqs: []*deleteReq{req},
		size: len(req.targets),
		full: make(chan struct{}),
		done: make(chan struct{}),
	}
	if b.size >= maxSize {
		// An oversized (or cap-1) request runs alone; don't register it so
		// nothing piles onto a batch that will never admit a joiner.
		close(b.full)
		return b, true
	}
	// A same-key batch at capacity was deleted above; a same-key batch
	// below capacity was joined. So the slot is free here.
	if bt.pending == nil {
		bt.pending = make(map[batchKey]*batch)
	}
	bt.pending[key] = b
	return b, true
}

// freeze closes the batch to new joiners; membership is final afterwards.
func (bt *batcher) freeze(b *batch) {
	bt.mu.Lock()
	if bt.pending[b.key] == b {
		delete(bt.pending, b.key)
	}
	bt.mu.Unlock()
}

// runBatch is the leader's path: collect followers, take the commit lock,
// freeze and commit. The unlock and the done broadcast are deferred so a
// panicking solver cannot wedge the engine (commit lock held forever) or
// strand followers on b.done; followers of a panicked batch fail with an
// error while the panic itself propagates on the leader's goroutine.
func (e *Engine) runBatch(p *prepared, b *batch) {
	if e.opt.MaxCoalesceWait > 0 {
		timer := time.NewTimer(e.opt.MaxCoalesceWait)
		select {
		case <-b.full:
		case <-timer.C:
		}
		timer.Stop()
	}
	e.wmu.Lock()
	defer close(b.done)
	defer e.wmu.Unlock()
	p.batcher.freeze(b)
	defer func() {
		if r := recover(); r != nil {
			for _, req := range b.reqs {
				if req.err == nil && req.report == nil {
					req.err = fmt.Errorf("engine: delete batch panicked: %v", r)
				}
			}
			panic(r)
		}
	}()
	e.commit(p, b)
}

// validateTargets reports the first target absent from view, mirroring
// deletion.GroupTargets' per-target check so a vanished target fails its
// own request instead of the whole batch.
func validateTargets(view *relation.Relation, targets []relation.Tuple) error {
	_, err := deletion.GroupTargets(view, targets)
	return err
}

// commit runs one group solve over every live request in the batch and
// applies the result. Callers hold wmu.
func (e *Engine) commit(p *prepared, b *batch) {
	snap := p.snap.Load()

	// Per-request validation: a target that vanished between enqueue and
	// commit (typically deleted by the batch committed just before this
	// one) fails only its own request.
	live := b.reqs[:0:0]
	var merged []relation.Tuple
	for _, r := range b.reqs {
		if err := validateTargets(snap.prov.View, r.targets); err != nil {
			r.err = err
			continue
		}
		live = append(live, r)
		merged = append(merged, r.targets...)
	}
	if len(live) == 0 {
		return
	}

	report := &core.DeleteReport{Fragment: p.frag}
	vopt := deletion.ViewOptions{MaxCandidates: b.key.maxCandidates}
	var solveErr error
	switch {
	case b.key.obj == core.MinimizeViewSideEffects:
		report.Class = p.cls.view
		r, err := deletion.ViewExactGroupBasis(snap.prov, merged, vopt)
		if err != nil {
			solveErr = err
			break
		}
		report.Algorithm = "cached-basis exact hitting-set search"
		report.Result = &r.Result
		report.Exact = r.Exhausted
	case b.key.greedy:
		report.Class = p.cls.source
		r, err := deletion.SourceGreedyGroupBasis(snap.prov, merged)
		if err != nil {
			solveErr = err
			break
		}
		report.Algorithm = "cached-basis greedy hitting set (H_n-approx)"
		report.Result = &r.Result
		report.Exact = false
	default:
		report.Class = p.cls.source
		r, err := deletion.SourceExactGroupBasis(snap.prov, merged)
		if err != nil {
			solveErr = err
			break
		}
		report.Algorithm = "cached-basis exact minimum hitting set"
		report.Result = &r.Result
		report.Exact = true
	}
	if solveErr != nil {
		for _, r := range live {
			r.err = solveErr
		}
		return
	}
	if len(live) > 1 {
		report.Algorithm += " (batched, coalesced)"
	} else if live[0].group {
		report.Algorithm += " (batched)"
	}

	e.apply(report.Result.T, len(live))
	e.nDeletes.Add(int64(len(live)))
	e.nDeleted.Add(int64(len(report.Result.T)))
	e.nBatches.Add(1)
	if len(live) > 1 {
		e.nCoalesced.Add(int64(len(live)))
	}
	for _, r := range live {
		r.report = report
	}
}

// fanOut runs fn(0..n-1) on up to e.opt.Workers concurrent workers and
// waits for all of them.
func (e *Engine) fanOut(n int, fn func(i int)) {
	workers := e.opt.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
