package engine

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deletion"
	"repro/internal/relation"
)

// pipelineDB is an identity-friendly source: every tuple of R is the sole
// witness of its own image under project(a, b; R), so any solver must
// delete exactly the targeted source tuple — which makes coalesced and
// sequential outcomes provably comparable.
const pipelineDB = `
relation R(a, b)
r1, x
r2, x
r3, y
r4, y
r5, z
r6, z

relation S(b, c)
x, c1
y, c2
z, c3
`

func pipelineEngine(t *testing.T, opts ...Options) *Engine {
	t.Helper()
	db, err := relation.ReadDatabaseString(pipelineDB)
	if err != nil {
		t.Fatal(err)
	}
	e := New(db, opts...)
	if err := e.PrepareText("id", "project(a, b; R)"); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers < 1 || o.MaxBatchSize != 32 || o.MaxCoalesceWait != 0 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	o = Options{Workers: 3, MaxBatchSize: 5, MaxCoalesceWait: -time.Second}.withDefaults()
	if o.Workers != 3 || o.MaxBatchSize != 5 || o.MaxCoalesceWait != 0 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
}

// join must coalesce compatible requests, split incompatible ones, and
// close a batch once it fills.
func TestBatcherJoin(t *testing.T) {
	var bt batcher
	key := batchKey{obj: core.MinimizeSourceDeletions}
	r1 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r1", "x")}}
	b1, leader := bt.join(r1, key, 3)
	if !leader {
		t.Fatal("first request must lead its batch")
	}
	// Compatible second request joins.
	r2 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r2", "x")}}
	if b2, leader := bt.join(r2, key, 3); leader || b2 != b1 {
		t.Fatal("compatible request did not join the pending batch")
	}
	// A third same-key request fills the batch to its cap.
	r3 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r3", "y")}}
	b3, leader := bt.join(r3, key, 3)
	if leader || b3 != b1 {
		t.Fatal("same-key request should have joined the pending batch")
	}
	if b1.size != 3 {
		t.Fatalf("batch size %d, want 3", b1.size)
	}
	// Cap reached exactly: full is signalled and joining stops.
	select {
	case <-b1.full:
	default:
		t.Fatal("batch at cap did not signal full")
	}
	bt.mu.Lock()
	open := bt.pending[key]
	bt.mu.Unlock()
	if open != nil {
		t.Fatal("full batch still accepting joiners")
	}
}

func TestBatcherJoinFullClosesBatch(t *testing.T) {
	var bt batcher
	key := batchKey{obj: core.MinimizeSourceDeletions}
	r1 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r1", "x")}}
	b, _ := bt.join(r1, key, 2)
	r2 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r2", "x")}}
	bt.join(r2, key, 2)
	select {
	case <-b.full:
	default:
		t.Fatal("batch at cap did not signal full")
	}
	// An incompatible key opens a fresh batch.
	other := batchKey{obj: core.MinimizeViewSideEffects}
	r3 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r3", "y")}}
	b3, leader := bt.join(r3, other, 2)
	if !leader || b3 == b {
		t.Fatal("incompatible request must lead a new batch")
	}
}

// Pending batches are per compatibility class: a mixed stream keeps one
// open batch per key, and an incompatible arrival neither joins nor
// orphans another class's batch.
func TestBatcherPendingPerKey(t *testing.T) {
	var bt batcher
	srcKey := batchKey{obj: core.MinimizeSourceDeletions}
	viewKey := batchKey{obj: core.MinimizeViewSideEffects}

	r1 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r1", "x")}}
	bSrc, leader := bt.join(r1, srcKey, 8)
	if !leader {
		t.Fatal("first source-objective request must lead")
	}
	r2 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r2", "x")}}
	bView, leader := bt.join(r2, viewKey, 8)
	if !leader || bView == bSrc {
		t.Fatal("first view-objective request must lead its own batch")
	}
	// Both classes stay open: later same-key arrivals still coalesce.
	r3 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r3", "y")}}
	if b, leader := bt.join(r3, srcKey, 8); leader || b != bSrc {
		t.Fatal("source-objective request did not rejoin its class's open batch")
	}
	r4 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r4", "y")}}
	if b, leader := bt.join(r4, viewKey, 8); leader || b != bView {
		t.Fatal("view-objective request did not rejoin its class's open batch")
	}
	// Freezing one class leaves the other open.
	bt.freeze(bSrc)
	r5 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r5", "z")}}
	if _, leader := bt.join(r5, srcKey, 8); !leader {
		t.Fatal("frozen class must start a new batch")
	}
	r6 := &writeReq{targets: []relation.Tuple{relation.StringTuple("r6", "z")}}
	if b, leader := bt.join(r6, viewKey, 8); leader || b != bView {
		t.Fatal("freezing one class closed another")
	}
}

// An oversized group request is admitted alone and never becomes a
// coalescing point.
func TestBatcherOversizedGroupRunsAlone(t *testing.T) {
	var bt batcher
	key := batchKey{obj: core.MinimizeSourceDeletions}
	big := &writeReq{targets: []relation.Tuple{
		relation.StringTuple("r1", "x"),
		relation.StringTuple("r2", "x"),
		relation.StringTuple("r3", "y"),
	}, group: true}
	b, leader := bt.join(big, key, 2)
	if !leader {
		t.Fatal("oversized group must lead")
	}
	bt.mu.Lock()
	nPending := len(bt.pending)
	bt.mu.Unlock()
	if nPending != 0 {
		t.Fatal("oversized batch left open for joiners")
	}
	select {
	case <-b.full:
	default:
		t.Fatal("oversized batch should be born full")
	}
}

// A target that vanished before its batch committed fails only its own
// request; valid requests in the same batch still commit.
func TestCommitAttribution(t *testing.T) {
	e := pipelineEngine(t)
	p, err := e.lookup("id")
	if err != nil {
		t.Fatal(err)
	}
	valid := &writeReq{targets: []relation.Tuple{relation.StringTuple("r1", "x")}}
	ghost := &writeReq{targets: []relation.Tuple{relation.StringTuple("ghost", "q")}}
	b := &batch{
		key:  batchKey{obj: core.MinimizeSourceDeletions},
		reqs: []*writeReq{valid, ghost},
		size: 2,
		full: make(chan struct{}),
		done: make(chan struct{}),
	}
	e.wmu.Lock()
	e.commitDelete(p, b)
	e.wmu.Unlock()

	if valid.err != nil {
		t.Fatalf("valid request failed: %v", valid.err)
	}
	if valid.report == nil || len(valid.report.Result.T) != 1 {
		t.Fatalf("valid request got report %+v", valid.report)
	}
	if !errors.Is(ghost.err, deletion.ErrNotInView) {
		t.Fatalf("ghost request: got %v, want ErrNotInView", ghost.err)
	}
	if ghost.report != nil {
		t.Fatal("failed request must not receive a report")
	}
	st := e.Stats()
	if st.Deletes != 1 || st.CommitBatches != 1 || st.CoalescedDeletes != 0 {
		t.Fatalf("counters after mixed batch: %+v", st)
	}
	if g := p.gen.Load(); g != 1 {
		t.Fatalf("generation %d after one live request, want 1", g)
	}
}

// Coalesced requests targeting the SAME tuple all succeed: they were
// concurrent, the tuple was present at the commit's snapshot, and
// GroupTargets dedups the merged target list before the solve. (A strict
// serial order would instead fail the second with ErrNotInView — see the
// linearization note in pipeline.go.)
func TestCoalescedOverlappingTargetsBothSucceed(t *testing.T) {
	e := pipelineEngine(t)
	p, err := e.lookup("id")
	if err != nil {
		t.Fatal(err)
	}
	tg := relation.StringTuple("r1", "x")
	r1 := &writeReq{targets: []relation.Tuple{tg}}
	r2 := &writeReq{targets: []relation.Tuple{tg}}
	b := &batch{key: batchKey{obj: core.MinimizeSourceDeletions}, reqs: []*writeReq{r1, r2}, size: 2,
		full: make(chan struct{}), done: make(chan struct{})}
	e.wmu.Lock()
	e.commitDelete(p, b)
	e.wmu.Unlock()
	if r1.err != nil || r2.err != nil {
		t.Fatalf("overlapping coalesced requests failed: %v / %v", r1.err, r2.err)
	}
	if r1.report != r2.report || len(r1.report.Result.T) != 1 {
		t.Fatalf("expected one shared report deleting one source tuple, got %+v", r1.report)
	}
	if g := p.gen.Load(); g != 2 {
		t.Fatalf("generation %d, want 2 (one per request, even when overlapping)", g)
	}
}

// The same tuple targeted twice within one DeleteGroup is deduplicated by
// the group solve: one source deletion, one generation, and a report whose
// deletions cover the tuple exactly once.
func TestDeleteGroupDuplicateTargets(t *testing.T) {
	e := pipelineEngine(t)
	tg := relation.StringTuple("r1", "x")
	rep, err := e.DeleteGroup("id", []relation.Tuple{tg, tg, tg}, core.MinimizeSourceDeletions, core.DeleteOptions{})
	if err != nil {
		t.Fatalf("duplicate-target group delete: %v", err)
	}
	if len(rep.Result.T) != 1 {
		t.Fatalf("deleted %d source tuples, want 1 (duplicates deduped)", len(rep.Result.T))
	}
	if rep.ViewSize != 5 {
		t.Errorf("report ViewSize %d, want 5", rep.ViewSize)
	}
	if rep.Generation != 1 {
		t.Errorf("report Generation %d, want 1 (one request)", rep.Generation)
	}
	p, _ := e.lookup("id")
	if g := p.gen.Load(); g != 1 {
		t.Fatalf("generation %d after one duplicate-target request, want 1", g)
	}
	view, _ := e.Query("id")
	if view.Contains(tg) || view.Len() != 5 {
		t.Fatalf("view after duplicate-target delete: %v", view)
	}
}

// The same tuple targeted by a Delete and a DeleteGroup that coalesce into
// one batch: both succeed (linearized as simultaneous), share the combined
// report, and the generation advances once per request — identical to the
// non-overlapping case, so duplicate targets can never double-count state.
func TestCoalescedDuplicateAcrossRequests(t *testing.T) {
	e := pipelineEngine(t)
	p, err := e.lookup("id")
	if err != nil {
		t.Fatal(err)
	}
	tg := relation.StringTuple("r3", "y")
	r1 := &writeReq{targets: []relation.Tuple{tg, relation.StringTuple("r1", "x")}, group: true}
	r2 := &writeReq{targets: []relation.Tuple{tg}}
	b := &batch{key: batchKey{obj: core.MinimizeSourceDeletions}, reqs: []*writeReq{r1, r2}, size: 3,
		full: make(chan struct{}), done: make(chan struct{})}
	e.wmu.Lock()
	e.commitDelete(p, b)
	e.wmu.Unlock()
	if r1.err != nil || r2.err != nil {
		t.Fatalf("coalesced duplicate requests failed: %v / %v", r1.err, r2.err)
	}
	if r1.report != r2.report {
		t.Fatal("coalesced requests got different reports")
	}
	if len(r1.report.Result.T) != 2 {
		t.Fatalf("combined solve deleted %d source tuples, want 2 (dup deduped)", len(r1.report.Result.T))
	}
	if g := p.gen.Load(); g != 2 {
		t.Fatalf("generation %d, want 2 (one per request, duplicates included)", g)
	}
	if r1.report.ViewSize != 4 || r1.report.Generation != 2 {
		t.Fatalf("report snapshot (size %d, gen %d), want (4, 2)", r1.report.ViewSize, r1.report.Generation)
	}
	st := e.Stats()
	if st.Deletes != 2 || st.DeletedSourceTuples != 2 || st.CoalescedDeletes != 2 {
		t.Fatalf("counters after overlapping batch: %+v", st)
	}
}

// A panicking commit must not wedge the engine: the commit lock is
// released, the batch's done channel is closed, followers get an error,
// and the panic still propagates on the leader's goroutine.
func TestRunBatchPanicReleasesLock(t *testing.T) {
	e := pipelineEngine(t)
	// A prepared view with no snapshot makes commit dereference nil —
	// standing in for any solver/maintenance panic.
	broken := &prepared{name: "broken"}
	req := &writeReq{targets: []relation.Tuple{relation.StringTuple("r1", "x")}}
	b := &batch{key: batchKey{obj: core.MinimizeSourceDeletions}, reqs: []*writeReq{req}, size: 1,
		full: make(chan struct{}), done: make(chan struct{})}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected the panic to propagate to the leader")
			}
		}()
		e.runBatch(&broken.batcher, b, func(b *batch) { e.commitDelete(broken, b) })
	}()
	select {
	case <-b.done:
	default:
		t.Fatal("done channel not closed after a panicked commit")
	}
	if req.err == nil || !strings.Contains(req.err.Error(), "panicked") {
		t.Fatalf("batch member's error after panic: %v", req.err)
	}
	// The commit lock is free again: a normal delete still serves.
	if _, err := e.Delete("id", relation.StringTuple("r1", "x"), core.MinimizeSourceDeletions, core.DeleteOptions{}); err != nil {
		t.Fatal(err)
	}
}

// A batch whose every request is stale commits nothing and publishes no
// generation.
func TestCommitAllStale(t *testing.T) {
	e := pipelineEngine(t)
	p, err := e.lookup("id")
	if err != nil {
		t.Fatal(err)
	}
	g1 := &writeReq{targets: []relation.Tuple{relation.StringTuple("nope", "1")}}
	g2 := &writeReq{targets: []relation.Tuple{relation.StringTuple("nope", "2")}}
	b := &batch{key: batchKey{obj: core.MinimizeSourceDeletions}, reqs: []*writeReq{g1, g2}, size: 2,
		full: make(chan struct{}), done: make(chan struct{})}
	e.wmu.Lock()
	e.commitDelete(p, b)
	e.wmu.Unlock()
	if g1.err == nil || g2.err == nil {
		t.Fatal("stale requests must fail")
	}
	if st := e.Stats(); st.Deletes != 0 || st.CommitBatches != 0 {
		t.Fatalf("all-stale batch moved counters: %+v", st)
	}
	if p.gen.Load() != 0 {
		t.Fatal("all-stale batch published a generation")
	}
}

// Concurrent deletes with a coalescing window must commit as one batch,
// every caller sharing the combined report.
func TestConcurrentDeletesCoalesce(t *testing.T) {
	const k = 4
	e := pipelineEngine(t, Options{MaxBatchSize: k, MaxCoalesceWait: 5 * time.Second, Workers: 2})
	targets := []relation.Tuple{
		relation.StringTuple("r1", "x"),
		relation.StringTuple("r2", "x"),
		relation.StringTuple("r3", "y"),
		relation.StringTuple("r4", "y"),
	}
	var wg sync.WaitGroup
	reports := make([]*core.DeleteReport, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = e.Delete("id", targets[i], core.MinimizeSourceDeletions, core.DeleteOptions{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.Deletes != k {
		t.Fatalf("Deletes = %d, want %d", st.Deletes, k)
	}
	if st.CommitBatches != 1 {
		t.Fatalf("CommitBatches = %d, want 1 (requests did not coalesce)", st.CommitBatches)
	}
	if st.CoalescedDeletes != k {
		t.Fatalf("CoalescedDeletes = %d, want %d", st.CoalescedDeletes, k)
	}
	// One shared report describing the union.
	for i := 1; i < k; i++ {
		if reports[i] != reports[0] {
			t.Fatal("coalesced callers received different reports")
		}
	}
	if len(reports[0].Result.T) != k {
		t.Fatalf("combined solve deleted %d source tuples, want %d", len(reports[0].Result.T), k)
	}
	if !strings.Contains(reports[0].Algorithm, "coalesced") {
		t.Errorf("algorithm %q not marked coalesced", reports[0].Algorithm)
	}
	view, err := e.Query("id")
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() != 2 {
		t.Fatalf("view has %d tuples after batch, want 2", view.Len())
	}
	p, _ := e.lookup("id")
	if g := p.gen.Load(); g != k {
		t.Fatalf("generation %d after %d coalesced requests, want %d", g, k, k)
	}
}

// An empty target list fails fast, before entering the pipeline.
func TestDeleteEmptyTargets(t *testing.T) {
	e := pipelineEngine(t)
	if _, err := e.DeleteGroup("id", nil, core.MinimizeSourceDeletions, core.DeleteOptions{}); err == nil {
		t.Fatal("empty DeleteGroup must fail")
	}
	if st := e.Stats(); st.Deletes != 0 {
		t.Fatalf("empty request counted as a delete: %+v", st)
	}
}

// fanOut must run every job exactly once regardless of worker bound.
func TestFanOut(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		e := &Engine{opt: Options{Workers: workers}.withDefaults()}
		e.opt.Workers = workers
		const n = 17
		var mu sync.Mutex
		seen := make(map[int]int)
		e.fanOut(n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		if len(seen) != n {
			t.Fatalf("workers=%d: %d jobs ran, want %d", workers, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}
