// Package engine is the prepared-view serving layer: the long-lived object
// a server process holds when the paper's one-shot solvers must answer
// sustained traffic against the same views.
//
// Prepare runs the algebra layer once per view — validation, Theorem 3.1
// normalization, join-order optimization — then materializes the view and
// computes the witness basis (why-provenance) and the where-provenance
// index. Query, Witnesses, Delete, DeleteGroup, Insert and Annotate
// requests are answered from that cached state:
//
//   - deletions solve on the cached basis (internal/deletion's *Basis
//     solvers) and maintain the materialized view and basis of every
//     prepared view incrementally via provenance.Result.ApplyDeletion,
//     instead of re-evaluating the query and rebuilding the basis per
//     request;
//   - DeleteGroup amortizes one basis pass and one hitting-set solve across
//     a whole batch of targets;
//   - insertions (Insert) extend the source and delta-maintain every view
//     and basis via provenance.Result.ApplyInsertion — new witnesses are
//     exactly the derivations using inserted tuples — so a curated
//     database can grow, and can undo a propagated deletion by restoring
//     exactly the deleted tuples, without a restart-and-re-Prepare;
//   - annotation placement scans the cached where-provenance index. A
//     deletion commit maintains the index incrementally: a source deletion
//     can shrink the where-set of a *surviving* view tuple (e.g. when a
//     projection pre-image dies with its join partner), so the index
//     retains its annotated operator tree and ApplyDeletion propagates the
//     delta through it in O(|Δ|) at commit time. An insert commit drops
//     the index — insertion can widen surviving where-sets beyond what the
//     retained tree covers — and it is rebuilt lazily on the first
//     Annotate after the insert.
//
// Concurrency: readers are lock-free on immutable copy-on-write snapshots.
// Writes — deletions and insertions — flow through a batching/coalescing
// pipeline (pipeline.go): concurrent Delete/DeleteGroup calls against the
// same view coalesce into a single cached-basis group solve, concurrent
// Insert calls coalesce into a single source extension, commits are
// serialized by a commit lock, and each commit's per-view incremental
// maintenance fans out across a bounded worker pool — so write latency
// does not scale with the number of prepared views, and throughput under
// write contention does not degrade to one solve per request. Prepare
// computes off the commit lock against a captured source generation and
// revalidates at registration, so an expensive prepare never stalls
// concurrent writes. The engine owns a private frozen snapshot of the
// source database and never mutates a published generation, so concurrent
// Query/Annotate readers and Delete/Insert writers are race-free by
// construction (see race_test.go). Options tunes the pipeline (worker count, batch cap,
// coalesce wait); the zero value keeps uncontended latency identical to a
// serial engine.
//
// Storage: source generations live in the persistent, structure-sharing
// versioned store (internal/relation, version.go). A commit derives the
// next generation in O(|Δ|) — untouched relations are shared by pointer,
// touched relations get an overlay version (tombstones + appends) over
// the same base arrays — instead of the old copy-the-world
// DeleteAll/InsertAll, so commit cost scales with the write, not with
// |S|, and retaining several generations (the serving one plus those
// pinned by view snapshots) costs overlays, not copies. Stats surfaces
// the store's sharing/compaction counters and the live version count.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// ErrUnknownView is returned (wrapped) when a request names a view that was
// never prepared.
var ErrUnknownView = fmt.Errorf("engine: unknown view")

// ErrConflict is returned (wrapped) when Prepare reuses a view name for a
// different query.
var ErrConflict = fmt.Errorf("engine: view already prepared with a different query")

// ErrUnknownRelation is returned (wrapped) when an Insert names a source
// relation the engine's database does not have.
var ErrUnknownRelation = fmt.Errorf("engine: unknown source relation")

// snapshot is one immutable generation of a prepared view: the source
// database generation it reflects, the materialized view with its witness
// basis, and the lazily-built where-provenance index. Snapshots are never
// mutated after publication; writers replace them wholesale.
type snapshot struct {
	db   *relation.Database // source generation this snapshot reflects
	prov *provenance.Result // materialized view + witness basis

	whereOnce  sync.Once
	whereBuilt atomic.Bool           // guarded-by: atomic
	where      *annotation.WhereView // guarded-by: whereOnce
	whereErr   error                 // guarded-by: whereOnce

	// sorted caches the lexicographically ordered view rows, built lazily
	// per published snapshot; QueryPage slices it, so a page costs
	// O(page) instead of the full-view sort GET /query used to pay per
	// request. Commits replace the snapshot wholesale, which is the
	// invalidation — except that a commit leaving a view's result
	// untouched carries the still-valid cache into the new snapshot
	// (nextSnapshot). An atomic pointer rather than a Once so the carry
	// can read a live snapshot's cache without racing its builders.
	sorted atomic.Pointer[[]relation.Tuple] // guarded-by: atomic
}

// sortedView returns the snapshot's lexicographically sorted rows,
// computing them at most once per generation (concurrent first readers
// may duplicate the sort; the results are identical, mirroring the
// relation-level flat cache).
func (s *snapshot) sortedView() []relation.Tuple {
	if p := s.sorted.Load(); p != nil {
		return *p
	}
	rows := s.prov.View.SortedTuples()
	s.sorted.Store(&rows)
	return rows
}

// nextSnapshot wraps a view's maintenance result for the new source
// generation. When the write left the result untouched — ApplyDeletion /
// ApplyInsertion returned the receiver because the write was disjoint
// from the view's base relations — the caches that remain valid carry
// over instead of being recomputed per commit: the sorted page rows
// (unchanged view) and the where-provenance index (a function of plan +
// base relations the write did not touch). A changed result starts
// cold, exactly as before.
func nextSnapshot(old *snapshot, newDB *relation.Database, prov *provenance.Result) *snapshot {
	s := &snapshot{db: newDB, prov: prov}
	if prov != old.prov {
		return s
	}
	if p := old.sorted.Load(); p != nil {
		s.sorted.Store(p)
	}
	if old.whereBuilt.Load() {
		// whereBuilt is set after the index is written (inside the old
		// snapshot's Once), so the read here is ordered; firing the new
		// snapshot's Once before publication makes whereView return the
		// carried index without recomputing.
		//lint:ignore lockguard old.whereBuilt.Load() orders the read of old.where (set-after-write inside old's Once)
		s.where = old.where
		s.whereBuilt.Store(true)
		s.whereOnce.Do(func() {})
	}
	return s
}

// computeWhere builds a where-provenance index; a package variable so
// engine tests can inject index-computation failures (the error paths are
// otherwise unreachable for a plan that already passed Prepare).
var computeWhere = annotation.ComputeWhere

// whereView returns the where-provenance index, computing it at most once
// per generation. The first Annotate after an insert commit (or on a view
// whose index was never built) pays one evaluation; deletion commits
// maintain the index incrementally at commit time (see apply), and
// subsequent calls on the same generation are free. A computation error is
// cached like a result: it is surfaced on every Annotate against this
// generation but never blocks Prepare or the deletion path.
func (s *snapshot) whereView(plan algebra.Query) (*annotation.WhereView, error) {
	s.whereOnce.Do(func() {
		s.where, s.whereErr = computeWhere(plan, s.db)
		if s.whereErr == nil {
			s.whereBuilt.Store(true)
		}
	})
	return s.where, s.whereErr
}

// prepared is one registered view: its plan (fixed at Prepare time) and the
// current snapshot generation.
type prepared struct {
	name string
	src  string        // canonical textual form of the original query
	plan algebra.Query // normalized + join-optimized
	frag string
	cls  struct {
		view, source, ann algebra.Class
	}

	snap atomic.Pointer[snapshot] // guarded-by: atomic
	// gen counts the write requests maintained through.
	// guarded-by: atomic
	// propview:generation
	gen atomic.Int64

	batcher batcher // coalescing point for this view's deletion writers
}

// Engine serves prepared views over a private copy of a source database.
type Engine struct {
	opt   Options
	mu    sync.RWMutex         // guards views map, db pointer and sgen
	wmu   sync.Mutex           // commit lock: one batch solves+publishes at a time
	db    *relation.Database   // guarded-by: mu
	views map[string]*prepared // guarded-by: mu
	// sgen is the source generation: committed write batches so far. The
	// atomic type makes bare reads safe; commits additionally publish it
	// under mu so (db, sgen) can be captured as a consistent pair.
	// guarded-by: atomic
	// propview:generation
	sgen atomic.Int64

	insBatcher batcher // coalescing point for Insert writers (engine-wide)

	// Request counters (atomic; Stats assembles them).
	nPrepares     atomic.Int64
	nQueries      atomic.Int64
	nDeletes      atomic.Int64
	nInserts      atomic.Int64
	nAnnotates    atomic.Int64
	nDeleted      atomic.Int64 // source tuples deleted
	nInserted     atomic.Int64 // novel source tuples inserted
	nMaint        atomic.Int64 // incremental basis maintenance passes
	nBatches      atomic.Int64 // committed write batches
	nCoalesced    atomic.Int64 // delete requests that shared a batch
	nCoalescedIns atomic.Int64 // insert requests that shared a batch
}

// New creates an engine over a private frozen snapshot of db
// (relation.Database.Freeze): O(#relations) instead of the deep O(|S|)
// Clone this used to cost, sharing the caller's tuple storage
// copy-on-write. Later mutations of the caller's database do not reach
// the engine — a mutated relation copies its storage away from the
// snapshot first — which is what makes the published generations
// immutable. An optional Options tunes the write pipeline; omitted or
// zero fields take the documented defaults. With Options.Segments > 0
// the snapshot is instead re-sharded into that many segments per
// relation (Database.Sharded, O(|S|) once), buying parallel commits at
// construction cost.
func New(db *relation.Database, opts ...Options) *Engine {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()
	store := db.Freeze()
	if o.Segments > 0 {
		store = db.Sharded(o.Segments)
	}
	return &Engine{opt: o, db: store, views: make(map[string]*prepared)}
}

// Prepare registers q under name: the query is validated, normalized
// (Theorem 3.1 — propagation-preserving, so cached provenance answers match
// the original query), join-order optimized, evaluated, and its witness
// basis and where-provenance index are computed and cached. The where
// index is computed eagerly (a second evaluation) so the first Annotate is
// as cheap as the rest; deletion-only deployments that mind the prepare
// cost can still serve — the index is rebuilt lazily on post-deletion
// generations. Preparing the same (name, query) pair again is a no-op;
// reusing a name for a different query returns ErrConflict.
func (e *Engine) Prepare(name string, q algebra.Query) error {
	return e.PrepareLimited(name, q, provenance.Limit{})
}

// maxPrepareRetries bounds how many times a prepare recomputes off-lock
// after losing a race with a commit before it gives up and computes while
// holding the commit lock (guaranteed progress under a hot write stream).
const maxPrepareRetries = 3

// PrepareLimited is Prepare with a cap on the witness basis, for
// adversarial queries whose basis is exponential (Corollary 3.1). The cap
// is enforced here and re-enforced by Insert's incremental maintenance, so
// every later write stays within it too.
//
// The expensive work — evaluation, witness-basis computation, the eager
// where-index — runs WITHOUT the commit lock, against a captured source
// generation; concurrent deletes and inserts commit freely underneath an
// in-flight prepare instead of stalling behind it. Registration then takes
// the commit lock and revalidates the captured generation: if a commit
// landed meanwhile, the prepare recomputes against the newer source (after
// maxPrepareRetries lost races it computes while holding the lock, which
// cannot lose). Holding the lock at registration time still guarantees a
// registered view never misses a maintenance pass.
func (e *Engine) PrepareLimited(name string, q algebra.Query, lim provenance.Limit) error {
	if name == "" {
		return fmt.Errorf("engine: empty view name")
	}
	src := algebra.Format(q)

	build := func(db *relation.Database) (*prepared, *snapshot, error) {
		if err := algebra.Validate(q, db); err != nil {
			return nil, nil, err
		}
		plan := algebra.OptimizeJoins(algebra.Normalize(q), db)
		prov, err := provenance.ComputeLimited(plan, db, lim)
		if err != nil {
			return nil, nil, err
		}
		p := &prepared{name: name, src: src, plan: plan, frag: algebra.Fragment(q)}
		p.cls.view = algebra.Classify(q, algebra.ProblemViewSideEffect)
		p.cls.source = algebra.Classify(q, algebra.ProblemSourceSideEffect)
		p.cls.ann = algebra.Classify(q, algebra.ProblemAnnotationPlacement)
		snap := &snapshot{db: db, prov: prov}
		// The where index is computed eagerly so the first Annotate is as
		// cheap as the rest, but a failure here must not fail the Prepare:
		// the deletion path never needs the index, and the package doc
		// promises deletion-only deployments still serve. The error is
		// cached in the snapshot and surfaced on Annotate.
		snap.whereView(plan)
		return p, snap, nil
	}

	for attempt := 0; ; attempt++ {
		// Capture (source, generation) atomically; both are published
		// together under mu by every commit.
		e.mu.RLock()
		existing := e.views[name]
		db := e.db
		gen := e.sgen.Load()
		e.mu.RUnlock()
		if existing != nil {
			if existing.src == src {
				return nil
			}
			return fmt.Errorf("%w: %q is %s, not %s", ErrConflict, name, existing.src, src)
		}

		p, snap, err := build(db)
		if err != nil {
			return err
		}

		e.wmu.Lock()
		if e.sgen.Load() != gen {
			// A commit landed while we computed: this snapshot reflects a
			// stale source. Recompute — off-lock again if retries remain,
			// else against the now-stable current source while holding wmu.
			if attempt < maxPrepareRetries {
				e.wmu.Unlock()
				continue
			}
			e.mu.RLock()
			db = e.db
			e.mu.RUnlock()
			if p, snap, err = build(db); err != nil {
				e.wmu.Unlock()
				return err
			}
		}
		e.mu.Lock()
		if other := e.views[name]; other != nil {
			// A concurrent prepare won the name while we computed.
			e.mu.Unlock()
			e.wmu.Unlock()
			if other.src == src {
				return nil
			}
			return fmt.Errorf("%w: %q is %s, not %s", ErrConflict, name, other.src, src)
		}
		p.snap.Store(snap)
		e.views[name] = p
		e.mu.Unlock()
		e.wmu.Unlock()
		e.nPrepares.Add(1)
		return nil
	}
}

// PrepareText is Prepare with a query in the textual syntax.
func (e *Engine) PrepareText(name, querySrc string) error {
	q, err := algebra.Parse(querySrc)
	if err != nil {
		return err
	}
	return e.Prepare(name, q)
}

// lookup resolves a prepared view by name.
func (e *Engine) lookup(name string) (*prepared, error) {
	e.mu.RLock()
	p := e.views[name]
	e.mu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownView, name)
	}
	return p, nil
}

// Views returns the prepared view names in lexicographic order.
//
// propview:deterministic
func (e *Engine) Views() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.views))
	for n := range e.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns metadata about one prepared view. Unlike Stats it does
// not walk witness lists (WitnessCount stays zero), and unlike Query it
// does not count toward the served-query statistics — it is the cheap
// accessor for servers composing responses.
//
// The snapshot and generation counter are read together under the read
// lock so they always describe the same published generation: commits
// publish both under the write lock, and monitoring relies on the pairing
// (same Generation ⇒ same snapshot, so WhereReady can only go false→true
// between two observations of one generation).
func (e *Engine) Describe(name string) (ViewStats, error) {
	p, err := e.lookup(name)
	if err != nil {
		return ViewStats{}, err
	}
	e.mu.RLock()
	snap := p.snap.Load()
	gen := p.gen.Load()
	e.mu.RUnlock()
	return ViewStats{
		Name:       p.name,
		Query:      p.src,
		Fragment:   p.frag,
		ViewSize:   snap.prov.View.Len(),
		Generation: gen,
		WhereReady: snap.whereBuilt.Load(),
	}, nil
}

// Schema returns the prepared view's output schema. Like Describe it does
// not count as a served query.
func (e *Engine) Schema(name string) (relation.Schema, error) {
	p, err := e.lookup(name)
	if err != nil {
		return relation.Schema{}, err
	}
	return p.snap.Load().prov.View.Schema(), nil
}

// Query returns the materialized view — no evaluation happens.
//
// Aliasing contract: the returned relation is a read-only view of the
// generation current when Query ran (relation.Relation.ReadOnly, O(1)).
// It shares the snapshot's tuple storage, so reads are free; it is NOT
// updated by later writes — re-Query for the current generation. A caller
// that mutates it gets a private copy-on-write clone rather than a race
// with the engine, so the snapshot cannot be corrupted from outside.
//
// propview:read-only
func (e *Engine) Query(name string) (*relation.Relation, error) {
	p, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	e.nQueries.Add(1)
	return p.snap.Load().prov.View.ReadOnly(), nil
}

// ViewPage is one page of a prepared view in lexicographic order, as
// served by QueryPage.
type ViewPage struct {
	// Schema is the view's output schema.
	Schema relation.Schema
	// Tuples holds rows [Offset, Offset+Limit) of the sorted view. The
	// slice aliases the snapshot's sorted cache and must not be modified.
	Tuples []relation.Tuple
	// Total is the full view cardinality, so Offset+len(Tuples) < Total
	// means more pages remain.
	Total int
	// Offset is the effective (end-clamped) offset of the page.
	Offset int
	// Limit echoes the requested limit.
	Limit int
	// Generation identifies the published snapshot the page was cut from;
	// two pages with equal Generation come from the same sorted row set.
	Generation int64
}

// QueryPage returns rows [offset, offset+limit) of the lexicographically
// sorted view — the serving path behind GET /query pagination. The sorted
// row slice is computed at most once per published snapshot generation
// (the next commit publishes a fresh snapshot, which is the
// invalidation), so after the first page of a generation a page costs
// O(page) slicing instead of the O(n log n) full-view sort the handler
// used to pay per request. offset and limit must be non-negative; an
// offset past the end yields an empty page. Counts as one served query.
func (e *Engine) QueryPage(name string, offset, limit int) (ViewPage, error) {
	p, err := e.lookup(name)
	if err != nil {
		return ViewPage{}, err
	}
	if offset < 0 || limit < 0 {
		return ViewPage{}, fmt.Errorf("engine: negative offset or limit")
	}
	// Snapshot and generation are read together under the read lock so the
	// page is attributable to one published generation (see Describe).
	e.mu.RLock()
	snap := p.snap.Load()
	gen := p.gen.Load()
	e.mu.RUnlock()
	rows := snap.sortedView()
	total := len(rows)
	if offset > total {
		offset = total
	}
	end := total
	if limit < total-offset {
		end = offset + limit
	}
	e.nQueries.Add(1)
	return ViewPage{
		Schema:     snap.prov.View.Schema(),
		Tuples:     rows[offset:end],
		Total:      total,
		Offset:     offset,
		Limit:      limit,
		Generation: gen,
	}, nil
}

// Witnesses returns the cached minimal witnesses of view tuple t (nil if t
// is not in the view).
//
// Aliasing contract: the slice is the caller's to keep — it is copied out
// of the snapshot — but the Witness values share the snapshot's immutable
// tuple data; they are values and cannot be mutated in place.
func (e *Engine) Witnesses(name string, t relation.Tuple) ([]provenance.Witness, error) {
	p, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	e.nQueries.Add(1)
	ws := p.snap.Load().prov.Witnesses(t)
	if ws == nil {
		return nil, nil
	}
	return append([]provenance.Witness(nil), ws...), nil
}

// Delete removes target from the named view by deleting source tuples,
// minimizing the requested objective. The solve runs on the cached witness
// basis; the chosen deletions are then applied to the engine's source and
// every prepared view's materialized state is maintained incrementally.
//
// Concurrent Delete/DeleteGroup calls against the same view with the same
// objective and options may coalesce into a single group solve (see
// pipeline.go); coalesced callers all receive the same report, which then
// describes the combined batch and must be treated as read-only.
//
// Of the options, MaxCandidates and Greedy apply; opts.MaxWitnesses has no
// effect here because the basis is fixed when the view is prepared — cap
// it with PrepareLimited instead.
func (e *Engine) Delete(name string, target relation.Tuple, obj core.Objective, opts core.DeleteOptions) (*core.DeleteReport, error) {
	return e.delete(name, []relation.Tuple{target}, obj, opts, false)
}

// DeleteGroup removes a whole batch of view tuples in one request: one
// basis pass and one hitting-set solve cover every target, and the
// incremental maintenance runs once for the combined deletion set. Like
// Delete, concurrent calls may coalesce into one larger group solve.
func (e *Engine) DeleteGroup(name string, targets []relation.Tuple, obj core.Objective, opts core.DeleteOptions) (*core.DeleteReport, error) {
	return e.delete(name, targets, obj, opts, true)
}

// delete routes a request through the write pipeline (pipeline.go): it
// joins or opens the view's pending batch, and either leads the batch
// through its commit or waits for the leader to finish. MaxWitnesses is
// not forwarded: the basis was capped (or not) at Prepare time and only
// shrinks under maintenance.
//
// Requests coalesced into the same batch share ONE group solve over the
// union of their targets; every participant receives the same (read-only)
// report describing the combined outcome.
func (e *Engine) delete(name string, targets []relation.Tuple, obj core.Objective, opts core.DeleteOptions, group bool) (*core.DeleteReport, error) {
	p, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("engine: empty target set")
	}

	req := &writeReq{kind: writeDelete, targets: targets, group: group}
	key := batchKey{kind: writeDelete, obj: obj, greedy: opts.Greedy, maxCandidates: opts.MaxCandidates}
	b, leader := p.batcher.join(req, key, e.opt.MaxBatchSize)
	if leader {
		e.runBatch(&p.batcher, b, func(b *batch) { e.commitDelete(p, b) })
	} else {
		<-b.done
	}
	return req.report, req.err
}

// Insert adds source tuples to the engine's database and incrementally
// extends every prepared view's materialized state and witness basis by a
// delta evaluation (provenance.Result.ApplyInsertion): new witnesses are
// exactly the derivations using at least one inserted tuple, so nothing is
// recomputed from scratch. Re-inserting exactly the tuples a previous
// Delete removed restores the pre-deletion view, basis and source —
// insertion is the undo the deletion-only engine lacked.
//
// Tuples already present are idempotent no-ops, reported in the report's
// Duplicates count. Inserts flow through the same coalescing pipeline as
// deletes: concurrent Insert calls may share one commit (one source
// extension, one delta-maintenance sweep), all receiving the same combined
// read-only report, and per-view generations advance once per request that
// contributed a novel tuple — exactly as if the requests ran one at a
// time. A view prepared under a PrepareLimited witness cap re-enforces the
// cap: an insertion that would grow some basis past it fails the whole
// batch (wrapped provenance.ErrLimit) and publishes nothing.
func (e *Engine) Insert(tuples []relation.SourceTuple) (*InsertReport, error) {
	if len(tuples) == 0 {
		return nil, fmt.Errorf("engine: empty insert set")
	}
	// Validate against the schema catalog up front: the relation set and
	// schemas are fixed at engine construction, so this cannot race with
	// commits.
	e.mu.RLock()
	db := e.db
	e.mu.RUnlock()
	for _, st := range tuples {
		r := db.Relation(st.Rel)
		if r == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, st.Rel)
		}
		if len(st.Tuple) != r.Schema().Len() {
			return nil, fmt.Errorf("engine: inserting arity-%d tuple into %s%s", len(st.Tuple), st.Rel, r.Schema())
		}
	}

	req := &writeReq{kind: writeInsert, tuples: tuples}
	b, leader := e.insBatcher.join(req, batchKey{kind: writeInsert}, e.opt.MaxBatchSize)
	if leader {
		e.runBatch(&e.insBatcher, b, e.commitInsert)
	} else {
		<-b.done
	}
	return req.ins, req.err
}

// apply publishes a new source generation with T removed and incrementally
// maintains every prepared view: the per-view ApplyDeletion passes are
// independent, so they fan out across the bounded worker pool instead of
// running serially. reqs is the number of coalesced delete requests this
// commit carries; each view's generation counter advances by it, keeping
// generation counts identical to applying the requests one at a time.
// Callers hold wmu.
//
// propview:publish
func (e *Engine) apply(T []relation.SourceTuple, reqs int) {
	if len(T) == 0 {
		return
	}
	e.mu.RLock()
	db := e.db
	ps := make([]*prepared, 0, len(e.views))
	for _, p := range e.views {
		ps = append(ps, p)
	}
	e.mu.RUnlock()

	newDB := db.DeleteAll(T)
	next := make([]*snapshot, len(ps))
	intra := e.opt.intraWorkers(len(ps))
	e.fanOut(len(ps), func(i int) {
		old := ps[i].snap.Load()
		// ApplyDeletionTo adopts newDB's relation versions at the scan
		// nodes, so the tree and the store share one version chain per
		// relation instead of deriving parallel ones.
		next[i] = nextSnapshot(old, newDB, old.prov.ApplyDeletionWorkers(newDB, T, intra))
		if s := next[i]; !s.whereBuilt.Load() && old.whereBuilt.Load() {
			// The old generation had a built where index and the commit is
			// a pure deletion: derive the new index from it in O(|Δ|)
			// (annotation.WhereView.ApplyDeletion) instead of leaving the
			// snapshot cold and paying a full recomputation on the next
			// Annotate. Insert commits still start cold — insertion can
			// widen surviving where-sets past what the retained tree's
			// static maps cover.
			//lint:ignore lockguard s is pre-publication (no reader sees it until snap.Store below); old.whereBuilt.Load() orders the read of old.where
			s.where = old.where.ApplyDeletionWorkers(T, intra)
			s.whereBuilt.Store(true)
			s.whereOnce.Do(func() {})
		}
		e.nMaint.Add(1)
	})

	e.mu.Lock()
	e.db = newDB
	for i, p := range ps {
		p.snap.Store(next[i])
		p.gen.Add(int64(reqs))
	}
	e.sgen.Add(1)
	e.mu.Unlock()
}

// Annotate places an annotation on view location (target, attr) with
// minimal side-effects, scanning the cached where-provenance index.
func (e *Engine) Annotate(name string, target relation.Tuple, attr relation.Attribute) (*core.AnnotateReport, error) {
	p, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	snap := p.snap.Load()
	wv, err := snap.whereView(p.plan)
	if err != nil {
		return nil, err
	}
	placement, err := annotation.PlaceOn(wv, target, attr)
	if err != nil {
		return nil, err
	}
	e.nAnnotates.Add(1)
	return &core.AnnotateReport{
		Class:     p.cls.ann,
		Fragment:  p.frag,
		Algorithm: "cached where-provenance candidate scan",
		Placement: placement,
	}, nil
}

// Database returns the current source generation as a read-only frozen
// snapshot (relation.Database.Freeze, O(#relations)): it shares the
// generation's tuple storage but is detached from later commits, and a
// caller mutating one of its relations gets a copy-on-write clone instead
// of reaching the engine's state.
func (e *Engine) Database() *relation.Database {
	return e.database().Freeze()
}

// database returns the live current generation; engine-internal readers
// use it directly (they never mutate a published generation).
func (e *Engine) database() *relation.Database {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db
}

// SourceSchema returns the schema of one source relation, or (wrapped)
// ErrUnknownRelation. The relation set and schemas are fixed at engine
// construction, so this is the cheap accessor request validators want —
// unlike Database it does not snapshot the whole store.
func (e *Engine) SourceSchema(rel string) (relation.Schema, error) {
	r := e.database().Relation(rel)
	if r == nil {
		return relation.Schema{}, fmt.Errorf("%w: %q", ErrUnknownRelation, rel)
	}
	return r.Schema(), nil
}

// ViewStats describes one prepared view's cached state.
type ViewStats struct {
	// Name is the prepared view's registered name.
	Name string `json:"name"`
	// Query is the canonical textual form of the original query.
	Query string `json:"query"`
	// Fragment is the operator fragment (e.g. "PJ", "SPU").
	Fragment string `json:"fragment"`
	// ViewSize is the current materialized-view cardinality.
	ViewSize int `json:"view_size"`
	// WitnessCount is the total number of cached minimal witnesses.
	WitnessCount int `json:"witness_count"`
	// Generation counts the write requests (deletions and insertions)
	// maintained through.
	Generation int64 `json:"generation"`
	// WhereReady reports whether the where-provenance index is built for
	// the current generation.
	WhereReady bool `json:"where_ready"`
	// Tree summarizes the view's provenance-tree store: node count and
	// overlay shape of the current generation plus the lifetime
	// sharing/compaction counters (provenance.Result.TreeStats). Like
	// WitnessCount it is filled by Stats, not by Describe.
	Tree provenance.TreeStats `json:"tree"`
}

// InsertReport is the outcome of a committed Insert. Coalesced requests
// share one report describing the combined batch; it must be treated as
// read-only.
type InsertReport struct {
	// Requested is the total number of tuples the batch asked to insert.
	Requested int `json:"requested"`
	// Inserted lists the novel source tuples actually added, in request
	// order. Empty when every requested tuple already existed.
	Inserted []relation.SourceTuple `json:"inserted"`
	// Duplicates counts requested tuples that were already present (or
	// repeated within the batch) and were skipped as idempotent no-ops.
	Duplicates int `json:"duplicates"`
	// SourceSize is the source tuple count after the commit.
	SourceSize int `json:"source_size"`
	// Coalesced reports whether this commit carried more than one request.
	Coalesced bool `json:"coalesced"`
	// Views carries each prepared view's post-commit size and generation,
	// sorted by name — the same committed-snapshot pairing DeleteReport
	// carries for its view.
	Views []InsertViewUpdate `json:"views"`
}

// InsertViewUpdate is one prepared view's state after an insert commit.
type InsertViewUpdate struct {
	Name       string `json:"name"`
	ViewSize   int    `json:"view_size"`
	Generation int64  `json:"generation"`
}

// Stats is a point-in-time summary of the engine's state and traffic.
type Stats struct {
	// SourceSize is the total tuple count of the current source generation.
	SourceSize int `json:"source_size"`
	// Views describes every prepared view, sorted by name.
	Views []ViewStats `json:"views"`
	// Request counters.
	Prepares  int64 `json:"prepares"`
	Queries   int64 `json:"queries"`
	Deletes   int64 `json:"deletes"`
	Inserts   int64 `json:"inserts"`
	Annotates int64 `json:"annotates"`
	// DeletedSourceTuples is the total number of source tuples removed.
	DeletedSourceTuples int64 `json:"deleted_source_tuples"`
	// InsertedSourceTuples is the total number of novel source tuples added
	// (duplicate inserts are idempotent and not counted).
	InsertedSourceTuples int64 `json:"inserted_source_tuples"`
	// IncrementalMaintenances counts per-view maintenance passes —
	// ApplyDeletion or ApplyInsertion, one per prepared view per committed
	// write batch.
	IncrementalMaintenances int64 `json:"incremental_maintenances"`
	// CommitBatches counts committed write batches of either kind;
	// (Deletes+Inserts)/CommitBatches is the average coalescing factor.
	CommitBatches int64 `json:"commit_batches"`
	// CoalescedDeletes counts delete requests that shared their batch with
	// at least one other request.
	CoalescedDeletes int64 `json:"coalesced_deletes"`
	// CoalescedInserts counts insert requests that shared their batch with
	// at least one other request.
	CoalescedInserts int64 `json:"coalesced_inserts"`
	// LiveSourceVersions counts the distinct source generations currently
	// retained: the serving generation plus any older generations still
	// referenced by view snapshots (e.g. a view whose maintenance a reader
	// captured before the latest publish). Structure sharing makes holding
	// several live versions cheap — they differ by overlays, not copies.
	LiveSourceVersions int `json:"live_source_versions"`
	// Store summarizes the versioned source store: current overlay shape
	// plus lifetime sharing and compaction counters.
	Store relation.StoreStats `json:"store"`
	// MaintenanceWorkers is the intra-view maintenance width in effect for
	// the current view count: the resolved Options.MaintenanceWorkers, or
	// the auto budget (Workers divided across concurrently maintained
	// views) when unset. 1 means per-view maintenance runs serially.
	MaintenanceWorkers int `json:"maintenance_workers"`
}

// Stats assembles the current counters and per-view summaries. Like
// Describe, each view's snapshot and generation are captured as a pair
// under the read lock; the witness walk happens afterwards, off-lock, on
// the captured immutable snapshots.
func (e *Engine) Stats() Stats {
	type viewCapture struct {
		p    *prepared
		snap *snapshot
		gen  int64
	}
	e.mu.RLock()
	db := e.db
	ps := make([]viewCapture, 0, len(e.views))
	for _, p := range e.views {
		ps = append(ps, viewCapture{p: p, snap: p.snap.Load(), gen: p.gen.Load()})
	}
	e.mu.RUnlock()

	live := map[*relation.Database]struct{}{db: {}}
	for _, c := range ps {
		live[c.snap.db] = struct{}{}
	}

	st := Stats{
		SourceSize:              db.Size(),
		LiveSourceVersions:      len(live),
		Store:                   db.StoreStats(),
		Prepares:                e.nPrepares.Load(),
		Queries:                 e.nQueries.Load(),
		Deletes:                 e.nDeletes.Load(),
		Inserts:                 e.nInserts.Load(),
		Annotates:               e.nAnnotates.Load(),
		DeletedSourceTuples:     e.nDeleted.Load(),
		InsertedSourceTuples:    e.nInserted.Load(),
		IncrementalMaintenances: e.nMaint.Load(),
		CommitBatches:           e.nBatches.Load(),
		CoalescedDeletes:        e.nCoalesced.Load(),
		CoalescedInserts:        e.nCoalescedIns.Load(),
		MaintenanceWorkers:      e.opt.intraWorkers(len(ps)),
	}
	for _, c := range ps {
		wit := 0
		for _, t := range c.snap.prov.View.Tuples() {
			wit += len(c.snap.prov.Witnesses(t))
		}
		st.Views = append(st.Views, ViewStats{
			Name:         c.p.name,
			Query:        c.p.src,
			Fragment:     c.p.frag,
			ViewSize:     c.snap.prov.View.Len(),
			WitnessCount: wit,
			Generation:   c.gen,
			WhereReady:   c.snap.whereBuilt.Load(),
			Tree:         c.snap.prov.TreeStats(),
		})
	}
	sort.Slice(st.Views, func(i, j int) bool { return st.Views[i].Name < st.Views[j].Name })
	return st
}
