// Package engine is the prepared-view serving layer: the long-lived object
// a server process holds when the paper's one-shot solvers must answer
// sustained traffic against the same views.
//
// Prepare runs the algebra layer once per view — validation, Theorem 3.1
// normalization, join-order optimization — then materializes the view and
// computes the witness basis (why-provenance) and the where-provenance
// index. Query, Witnesses, Delete, DeleteGroup and Annotate requests are
// answered from that cached state:
//
//   - deletions solve on the cached basis (internal/deletion's *Basis
//     solvers) and maintain the materialized view and basis of every
//     prepared view incrementally via provenance.Result.ApplyDeletion,
//     instead of re-evaluating the query and rebuilding the basis per
//     request;
//   - DeleteGroup amortizes one basis pass and one hitting-set solve across
//     a whole batch of targets;
//   - annotation placement scans the cached where-provenance index. The
//     index has no incremental maintenance rule (a source deletion can
//     shrink the where-set of a *surviving* view tuple, e.g. when a
//     projection pre-image dies with its join partner), so it is rebuilt
//     lazily on the first Annotate after a deletion.
//
// Concurrency: readers are lock-free on immutable copy-on-write snapshots.
// Writes flow through a batching/coalescing pipeline (pipeline.go):
// concurrent Delete/DeleteGroup calls against the same view coalesce into
// a single cached-basis group solve, commits are serialized by a commit
// lock, and each commit's per-view incremental maintenance fans out across
// a bounded worker pool — so delete latency does not scale with the number
// of prepared views, and throughput under write contention does not
// degrade to one solve per request. The engine owns a private clone of the
// source database and never mutates a published generation, so concurrent
// Query/Annotate readers and Delete writers are race-free by construction
// (see race_test.go). Options tunes the pipeline (worker count, batch cap,
// coalesce wait); the zero value keeps uncontended latency identical to a
// serial engine.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// ErrUnknownView is returned (wrapped) when a request names a view that was
// never prepared.
var ErrUnknownView = fmt.Errorf("engine: unknown view")

// ErrConflict is returned (wrapped) when Prepare reuses a view name for a
// different query.
var ErrConflict = fmt.Errorf("engine: view already prepared with a different query")

// snapshot is one immutable generation of a prepared view: the source
// database generation it reflects, the materialized view with its witness
// basis, and the lazily-built where-provenance index. Snapshots are never
// mutated after publication; writers replace them wholesale.
type snapshot struct {
	db   *relation.Database // source generation this snapshot reflects
	prov *provenance.Result // materialized view + witness basis

	whereOnce  sync.Once
	whereBuilt atomic.Bool
	where      *annotation.WhereView
	whereErr   error
}

// computeWhere builds a where-provenance index; a package variable so
// engine tests can inject index-computation failures (the error paths are
// otherwise unreachable for a plan that already passed Prepare).
var computeWhere = annotation.ComputeWhere

// whereView returns the where-provenance index, computing it at most once
// per generation. The first Annotate after a deletion pays one evaluation;
// subsequent ones on the same generation are free. A computation error is
// cached like a result: it is surfaced on every Annotate against this
// generation but never blocks Prepare or the deletion path.
func (s *snapshot) whereView(plan algebra.Query) (*annotation.WhereView, error) {
	s.whereOnce.Do(func() {
		s.where, s.whereErr = computeWhere(plan, s.db)
		if s.whereErr == nil {
			s.whereBuilt.Store(true)
		}
	})
	return s.where, s.whereErr
}

// prepared is one registered view: its plan (fixed at Prepare time) and the
// current snapshot generation.
type prepared struct {
	name string
	src  string        // canonical textual form of the original query
	plan algebra.Query // normalized + join-optimized
	frag string
	cls  struct {
		view, source, ann algebra.Class
	}

	snap atomic.Pointer[snapshot]
	gen  atomic.Int64 // delete requests maintained through

	batcher batcher // coalescing point for this view's writers
}

// Engine serves prepared views over a private copy of a source database.
type Engine struct {
	opt   Options
	mu    sync.RWMutex // guards views map and db pointer
	wmu   sync.Mutex   // commit lock: one batch solves+publishes at a time
	db    *relation.Database
	views map[string]*prepared

	// Request counters (atomic; Stats assembles them).
	nPrepares  atomic.Int64
	nQueries   atomic.Int64
	nDeletes   atomic.Int64
	nAnnotates atomic.Int64
	nDeleted   atomic.Int64 // source tuples deleted
	nMaint     atomic.Int64 // incremental basis maintenance passes
	nBatches   atomic.Int64 // committed write batches
	nCoalesced atomic.Int64 // delete requests that shared a batch
}

// New creates an engine over a private deep copy of db: later mutations of
// the caller's database do not reach the engine, which is what makes the
// published snapshots immutable. An optional Options tunes the write
// pipeline; omitted or zero fields take the documented defaults.
func New(db *relation.Database, opts ...Options) *Engine {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	return &Engine{opt: o.withDefaults(), db: db.Clone(), views: make(map[string]*prepared)}
}

// Prepare registers q under name: the query is validated, normalized
// (Theorem 3.1 — propagation-preserving, so cached provenance answers match
// the original query), join-order optimized, evaluated, and its witness
// basis and where-provenance index are computed and cached. The where
// index is computed eagerly (a second evaluation) so the first Annotate is
// as cheap as the rest; deletion-only deployments that mind the prepare
// cost can still serve — the index is rebuilt lazily on post-deletion
// generations. Preparing the same (name, query) pair again is a no-op;
// reusing a name for a different query returns ErrConflict.
func (e *Engine) Prepare(name string, q algebra.Query) error {
	return e.PrepareLimited(name, q, provenance.Limit{})
}

// PrepareLimited is Prepare with a cap on the witness basis, for
// adversarial queries whose basis is exponential (Corollary 3.1). The cap
// is enforced here — once a basis is prepared under it, incremental
// maintenance only ever shrinks it, so every later Delete stays within the
// cap too.
func (e *Engine) PrepareLimited(name string, q algebra.Query, lim provenance.Limit) error {
	if name == "" {
		return fmt.Errorf("engine: empty view name")
	}
	src := algebra.Format(q)

	// Prepare is a writer: holding wmu guarantees the source generation
	// read here is still current when the view is registered, so a
	// concurrent Delete can never publish a generation this view's
	// snapshot misses the maintenance pass for.
	e.wmu.Lock()
	defer e.wmu.Unlock()

	e.mu.RLock()
	existing := e.views[name]
	db := e.db
	e.mu.RUnlock()
	if existing != nil {
		if existing.src == src {
			return nil
		}
		return fmt.Errorf("%w: %q is %s, not %s", ErrConflict, name, existing.src, src)
	}

	if err := algebra.Validate(q, db); err != nil {
		return err
	}
	plan := algebra.OptimizeJoins(algebra.Normalize(q), db)
	prov, err := provenance.ComputeLimited(plan, db, lim)
	if err != nil {
		return err
	}
	p := &prepared{name: name, src: src, plan: plan, frag: algebra.Fragment(q)}
	p.cls.view = algebra.Classify(q, algebra.ProblemViewSideEffect)
	p.cls.source = algebra.Classify(q, algebra.ProblemSourceSideEffect)
	p.cls.ann = algebra.Classify(q, algebra.ProblemAnnotationPlacement)
	snap := &snapshot{db: db, prov: prov}
	// The where index is computed eagerly so the first Annotate is as cheap
	// as the rest, but a failure here must not fail the Prepare: the
	// deletion path never needs the index, and the package doc promises
	// deletion-only deployments still serve. The error is cached in the
	// snapshot and surfaced on Annotate.
	snap.whereView(plan)
	p.snap.Store(snap)

	e.mu.Lock()
	e.views[name] = p
	e.mu.Unlock()
	e.nPrepares.Add(1)
	return nil
}

// PrepareText is Prepare with a query in the textual syntax.
func (e *Engine) PrepareText(name, querySrc string) error {
	q, err := algebra.Parse(querySrc)
	if err != nil {
		return err
	}
	return e.Prepare(name, q)
}

// lookup resolves a prepared view by name.
func (e *Engine) lookup(name string) (*prepared, error) {
	e.mu.RLock()
	p := e.views[name]
	e.mu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownView, name)
	}
	return p, nil
}

// Views returns the prepared view names in lexicographic order.
func (e *Engine) Views() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.views))
	for n := range e.views {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns metadata about one prepared view. Unlike Stats it does
// not walk witness lists (WitnessCount stays zero), and unlike Query it
// does not count toward the served-query statistics — it is the cheap
// accessor for servers composing responses.
//
// The snapshot and generation counter are read together under the read
// lock so they always describe the same published generation: commits
// publish both under the write lock, and monitoring relies on the pairing
// (same Generation ⇒ same snapshot, so WhereReady can only go false→true
// between two observations of one generation).
func (e *Engine) Describe(name string) (ViewStats, error) {
	p, err := e.lookup(name)
	if err != nil {
		return ViewStats{}, err
	}
	e.mu.RLock()
	snap := p.snap.Load()
	gen := p.gen.Load()
	e.mu.RUnlock()
	return ViewStats{
		Name:       p.name,
		Query:      p.src,
		Fragment:   p.frag,
		ViewSize:   snap.prov.View.Len(),
		Generation: gen,
		WhereReady: snap.whereBuilt.Load(),
	}, nil
}

// Schema returns the prepared view's output schema. Like Describe it does
// not count as a served query.
func (e *Engine) Schema(name string) (relation.Schema, error) {
	p, err := e.lookup(name)
	if err != nil {
		return relation.Schema{}, err
	}
	return p.snap.Load().prov.View.Schema(), nil
}

// Query returns the materialized view — no evaluation happens. The returned
// relation is a live snapshot shared with other readers; callers must not
// modify it.
func (e *Engine) Query(name string) (*relation.Relation, error) {
	p, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	e.nQueries.Add(1)
	return p.snap.Load().prov.View, nil
}

// Witnesses returns the cached minimal witnesses of view tuple t (nil if t
// is not in the view).
func (e *Engine) Witnesses(name string, t relation.Tuple) ([]provenance.Witness, error) {
	p, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	e.nQueries.Add(1)
	return p.snap.Load().prov.Witnesses(t), nil
}

// Delete removes target from the named view by deleting source tuples,
// minimizing the requested objective. The solve runs on the cached witness
// basis; the chosen deletions are then applied to the engine's source and
// every prepared view's materialized state is maintained incrementally.
//
// Concurrent Delete/DeleteGroup calls against the same view with the same
// objective and options may coalesce into a single group solve (see
// pipeline.go); coalesced callers all receive the same report, which then
// describes the combined batch and must be treated as read-only.
//
// Of the options, MaxCandidates and Greedy apply; opts.MaxWitnesses has no
// effect here because the basis is fixed when the view is prepared — cap
// it with PrepareLimited instead.
func (e *Engine) Delete(name string, target relation.Tuple, obj core.Objective, opts core.DeleteOptions) (*core.DeleteReport, error) {
	return e.delete(name, []relation.Tuple{target}, obj, opts, false)
}

// DeleteGroup removes a whole batch of view tuples in one request: one
// basis pass and one hitting-set solve cover every target, and the
// incremental maintenance runs once for the combined deletion set. Like
// Delete, concurrent calls may coalesce into one larger group solve.
func (e *Engine) DeleteGroup(name string, targets []relation.Tuple, obj core.Objective, opts core.DeleteOptions) (*core.DeleteReport, error) {
	return e.delete(name, targets, obj, opts, true)
}

// delete routes a request through the write pipeline (pipeline.go): it
// joins or opens the view's pending batch, and either leads the batch
// through its commit or waits for the leader to finish. MaxWitnesses is
// not forwarded: the basis was capped (or not) at Prepare time and only
// shrinks under maintenance.
//
// Requests coalesced into the same batch share ONE group solve over the
// union of their targets; every participant receives the same (read-only)
// report describing the combined outcome.
func (e *Engine) delete(name string, targets []relation.Tuple, obj core.Objective, opts core.DeleteOptions, group bool) (*core.DeleteReport, error) {
	p, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("engine: empty target set")
	}

	req := &deleteReq{targets: targets, group: group}
	key := batchKey{obj: obj, greedy: opts.Greedy, maxCandidates: opts.MaxCandidates}
	b, leader := p.batcher.join(req, key, e.opt.MaxBatchSize)
	if leader {
		e.runBatch(p, b)
	} else {
		<-b.done
	}
	return req.report, req.err
}

// apply publishes a new source generation with T removed and incrementally
// maintains every prepared view: the per-view ApplyDeletion passes are
// independent, so they fan out across the bounded worker pool instead of
// running serially. reqs is the number of coalesced delete requests this
// commit carries; each view's generation counter advances by it, keeping
// generation counts identical to applying the requests one at a time.
// Callers hold wmu.
func (e *Engine) apply(T []relation.SourceTuple, reqs int) {
	if len(T) == 0 {
		return
	}
	e.mu.RLock()
	db := e.db
	ps := make([]*prepared, 0, len(e.views))
	for _, p := range e.views {
		ps = append(ps, p)
	}
	e.mu.RUnlock()

	newDB := db.DeleteAll(T)
	next := make([]*snapshot, len(ps))
	e.fanOut(len(ps), func(i int) {
		old := ps[i].snap.Load()
		next[i] = &snapshot{db: newDB, prov: old.prov.ApplyDeletion(T)}
		e.nMaint.Add(1)
	})

	e.mu.Lock()
	e.db = newDB
	for i, p := range ps {
		p.snap.Store(next[i])
		p.gen.Add(int64(reqs))
	}
	e.mu.Unlock()
}

// Annotate places an annotation on view location (target, attr) with
// minimal side-effects, scanning the cached where-provenance index.
func (e *Engine) Annotate(name string, target relation.Tuple, attr relation.Attribute) (*core.AnnotateReport, error) {
	p, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	snap := p.snap.Load()
	wv, err := snap.whereView(p.plan)
	if err != nil {
		return nil, err
	}
	placement, err := annotation.PlaceOn(wv, target, attr)
	if err != nil {
		return nil, err
	}
	e.nAnnotates.Add(1)
	return &core.AnnotateReport{
		Class:     p.cls.ann,
		Fragment:  p.frag,
		Algorithm: "cached where-provenance candidate scan",
		Placement: placement,
	}, nil
}

// Database returns the current source generation. The returned database is
// a live snapshot shared with readers; callers must not modify it.
func (e *Engine) Database() *relation.Database {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db
}

// ViewStats describes one prepared view's cached state.
type ViewStats struct {
	// Name is the prepared view's registered name.
	Name string `json:"name"`
	// Query is the canonical textual form of the original query.
	Query string `json:"query"`
	// Fragment is the operator fragment (e.g. "PJ", "SPU").
	Fragment string `json:"fragment"`
	// ViewSize is the current materialized-view cardinality.
	ViewSize int `json:"view_size"`
	// WitnessCount is the total number of cached minimal witnesses.
	WitnessCount int `json:"witness_count"`
	// Generation counts the deletion generations maintained through.
	Generation int64 `json:"generation"`
	// WhereReady reports whether the where-provenance index is built for
	// the current generation.
	WhereReady bool `json:"where_ready"`
}

// Stats is a point-in-time summary of the engine's state and traffic.
type Stats struct {
	// SourceSize is the total tuple count of the current source generation.
	SourceSize int `json:"source_size"`
	// Views describes every prepared view, sorted by name.
	Views []ViewStats `json:"views"`
	// Request counters.
	Prepares  int64 `json:"prepares"`
	Queries   int64 `json:"queries"`
	Deletes   int64 `json:"deletes"`
	Annotates int64 `json:"annotates"`
	// DeletedSourceTuples is the total number of source tuples removed.
	DeletedSourceTuples int64 `json:"deleted_source_tuples"`
	// IncrementalMaintenances counts per-view ApplyDeletion passes (one per
	// prepared view per committed write batch).
	IncrementalMaintenances int64 `json:"incremental_maintenances"`
	// CommitBatches counts committed write batches; Deletes/CommitBatches
	// is the average coalescing factor.
	CommitBatches int64 `json:"commit_batches"`
	// CoalescedDeletes counts delete requests that shared their batch with
	// at least one other request.
	CoalescedDeletes int64 `json:"coalesced_deletes"`
}

// Stats assembles the current counters and per-view summaries. Like
// Describe, each view's snapshot and generation are captured as a pair
// under the read lock; the witness walk happens afterwards, off-lock, on
// the captured immutable snapshots.
func (e *Engine) Stats() Stats {
	type viewCapture struct {
		p    *prepared
		snap *snapshot
		gen  int64
	}
	e.mu.RLock()
	db := e.db
	ps := make([]viewCapture, 0, len(e.views))
	for _, p := range e.views {
		ps = append(ps, viewCapture{p: p, snap: p.snap.Load(), gen: p.gen.Load()})
	}
	e.mu.RUnlock()

	st := Stats{
		SourceSize:              db.Size(),
		Prepares:                e.nPrepares.Load(),
		Queries:                 e.nQueries.Load(),
		Deletes:                 e.nDeletes.Load(),
		Annotates:               e.nAnnotates.Load(),
		DeletedSourceTuples:     e.nDeleted.Load(),
		IncrementalMaintenances: e.nMaint.Load(),
		CommitBatches:           e.nBatches.Load(),
		CoalescedDeletes:        e.nCoalesced.Load(),
	}
	for _, c := range ps {
		wit := 0
		for _, t := range c.snap.prov.View.Tuples() {
			wit += len(c.snap.prov.Witnesses(t))
		}
		st.Views = append(st.Views, ViewStats{
			Name:         c.p.name,
			Query:        c.p.src,
			Fragment:     c.p.frag,
			ViewSize:     c.snap.prov.View.Len(),
			WitnessCount: wit,
			Generation:   c.gen,
			WhereReady:   c.snap.whereBuilt.Load(),
		})
	}
	sort.Slice(st.Views, func(i, j int) bool { return st.Views[i].Name < st.Views[j].Name })
	return st
}
