package engine

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/deletion"
	"repro/internal/workload"
)

// TestStatsDescribeUnderBatchedWrites observes Stats and Describe
// concurrently with the batched/coalescing writers (run under -race) and
// checks the monitoring invariants the serving layer promises:
//
//   - a view's Generation is monotonically non-decreasing across
//     observations, even while commits land in coalesced batches;
//   - ViewSize never grows (the engine only deletes);
//   - within one generation, WhereReady only transitions false→true (the
//     where index is built at most once per snapshot and a new generation
//     resets it to lazy);
//   - the aggregate counters (Deletes, CommitBatches, DeletedSourceTuples,
//     IncrementalMaintenances) are each non-decreasing.
func TestStatsDescribeUnderBatchedWrites(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	db, q := workload.UserGroupFile(r, 20, 8, 15, 2, 2)
	e := New(db, Options{MaxBatchSize: 6, MaxCoalesceWait: time.Millisecond, Workers: 3})
	if err := e.Prepare("v", q); err != nil {
		t.Fatal(err)
	}

	var (
		wg   sync.WaitGroup
		done atomic.Bool
	)

	// Describe poller: per-view invariants.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastGen int64
		lastSize := -1
		lastReady := false
		for !done.Load() {
			vs, err := e.Describe("v")
			if err != nil {
				t.Error(err)
				return
			}
			if vs.Generation < lastGen {
				t.Errorf("generation went backwards: %d -> %d", lastGen, vs.Generation)
				return
			}
			if lastSize >= 0 && vs.ViewSize > lastSize {
				t.Errorf("view grew under a delete-only workload: %d -> %d", lastSize, vs.ViewSize)
				return
			}
			if vs.Generation == lastGen && lastReady && !vs.WhereReady {
				t.Errorf("WhereReady regressed true->false within generation %d", vs.Generation)
				return
			}
			lastGen, lastSize, lastReady = vs.Generation, vs.ViewSize, vs.WhereReady
		}
	}()

	// Stats poller: aggregate counters are monotone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Stats
		for !done.Load() {
			st := e.Stats()
			if st.Deletes < last.Deletes || st.CommitBatches < last.CommitBatches ||
				st.DeletedSourceTuples < last.DeletedSourceTuples ||
				st.IncrementalMaintenances < last.IncrementalMaintenances {
				t.Errorf("counters went backwards: %+v -> %+v", last, st)
				return
			}
			last = st
		}
	}()

	// Annotator: forces WhereReady false→true transitions between commits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			view, err := e.Query("v")
			if err != nil {
				t.Error(err)
				return
			}
			if view.Len() == 0 {
				return
			}
			if _, err := e.Annotate("v", view.Tuple(0), view.Schema().Attrs()[0]); err != nil {
				// The tuple may vanish between Query and Annotate.
				if !errors.Is(err, annotation.ErrNoPlacement) {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Two batched writers.
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rr := rand.New(rand.NewSource(int64(100 + w)))
			for j := 0; j < 15; j++ {
				view, err := e.Query("v")
				if err != nil {
					t.Error(err)
					return
				}
				n := view.Len()
				if n == 0 {
					return
				}
				if _, err := e.Delete("v", view.Tuple(rr.Intn(n)), core.MinimizeSourceDeletions, core.DeleteOptions{}); err != nil && !errors.Is(err, deletion.ErrNotInView) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	done.Store(true)
	wg.Wait()

	// Final sanity: one more Annotate builds the where index for the final
	// generation and Describe reflects it.
	if view, _ := e.Query("v"); view.Len() > 0 {
		if _, err := e.Annotate("v", view.Tuple(0), view.Schema().Attrs()[0]); err != nil && !errors.Is(err, annotation.ErrNoPlacement) {
			t.Fatal(err)
		}
		vs, err := e.Describe("v")
		if err != nil {
			t.Fatal(err)
		}
		if !vs.WhereReady {
			t.Error("where index not reported ready after a quiescent Annotate")
		}
	}
}
