package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/relation"
)

// A slow Prepare must not stall concurrent writes: the evaluation and the
// eager where-index run off the commit lock, so a Delete commits freely
// underneath. The prepare then detects the commit at registration time and
// recomputes, registering a snapshot coherent with the post-delete source.
//
// The where-index hook stands in for any expensive prepare-time work: the
// first computeWhere call (the in-flight slow prepare) blocks until the
// test's delete has committed; the recompute's call passes through.
func TestPrepareDoesNotBlockConcurrentDelete(t *testing.T) {
	e := mustEngine(t) // prepares "access" with the real computeWhere

	orig := computeWhere
	defer func() { computeWhere = orig }()
	var (
		first   sync.Once
		reached = make(chan struct{}) // slow prepare is inside computeWhere
		release = make(chan struct{}) // lets the slow prepare continue
	)
	computeWhere = func(q algebra.Query, db *relation.Database) (*annotation.WhereView, error) {
		blockMe := false
		first.Do(func() { blockMe = true })
		if blockMe {
			close(reached)
			<-release
		}
		return orig(q, db)
	}

	prepErr := make(chan error, 1)
	go func() {
		prepErr <- e.PrepareText("groups", "project(user, group; UserGroup)")
	}()
	<-reached

	// The prepare is mid-computation. A Delete must commit NOW, not after
	// the prepare finishes.
	delErr := make(chan error, 1)
	go func() {
		_, err := e.Delete("access", relation.StringTuple("john", "f2"), core.MinimizeViewSideEffects, core.DeleteOptions{})
		delErr <- err
	}()
	select {
	case err := <-delErr:
		if err != nil {
			t.Fatalf("concurrent delete: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Delete blocked behind an in-flight Prepare")
	}

	close(release)
	if err := <-prepErr; err != nil {
		t.Fatalf("slow prepare: %v", err)
	}

	// The registered view must reflect the source generation the delete
	// published — the prepare revalidated and recomputed, it did not
	// register its stale snapshot.
	p, err := e.lookup("groups")
	if err != nil {
		t.Fatal(err)
	}
	view, err := e.Query("groups")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := algebra.Eval(p.plan, e.Database())
	if err != nil {
		t.Fatal(err)
	}
	if !view.Equal(fresh) {
		t.Fatalf("late-prepared view stale against post-delete source:\n%s\nvs\n%s", view.Table(), fresh.Table())
	}
	// The delete removed UserGroup(john, admin); a stale registration would
	// still show it.
	if view.Contains(relation.StringTuple("john", "admin")) {
		t.Fatal("prepare registered a snapshot that missed the concurrent delete")
	}
}

// A prepare losing the revalidation race more than maxPrepareRetries times
// must still terminate: the final attempt computes while holding the
// commit lock. Simulated by committing a delete from inside the where-hook
// (i.e., during every off-lock computation) until the retries run out.
func TestPrepareRetriesExhaustedStillRegisters(t *testing.T) {
	e := mustEngine(t)

	orig := computeWhere
	defer func() { computeWhere = orig }()
	var mu sync.Mutex
	races := 0
	computeWhere = func(q algebra.Query, db *relation.Database) (*annotation.WhereView, error) {
		// Commit a delete during each off-lock prepare computation, forcing
		// the generation check to fail until the retries run out. The guard
		// stops exactly before the final attempt, which the engine runs
		// while holding the commit lock — a delete from inside that call
		// would deadlock, and the engine guarantees no commit can land
		// there anyway.
		mu.Lock()
		n := races
		races++
		mu.Unlock()
		if n < maxPrepareRetries+1 {
			view, err := e.Query("access")
			if err == nil && view.Len() > 0 {
				if _, derr := e.Delete("access", view.Tuple(0), core.MinimizeSourceDeletions, core.DeleteOptions{}); derr != nil {
					return nil, derr
				}
			}
		}
		return orig(q, db)
	}

	if err := e.PrepareText("groups", "project(user, group; UserGroup)"); err != nil {
		t.Fatalf("prepare under a hot write stream: %v", err)
	}
	p, err := e.lookup("groups")
	if err != nil {
		t.Fatal(err)
	}
	view, err := e.Query("groups")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := algebra.Eval(p.plan, e.Database())
	if err != nil {
		t.Fatal(err)
	}
	if !view.Equal(fresh) {
		t.Fatalf("view registered under retry exhaustion is stale:\n%s\nvs\n%s", view.Table(), fresh.Table())
	}
}

// Concurrent Prepare calls racing on one name: same query is idempotent,
// a different query loses with ErrConflict — and exactly one registration
// wins regardless of interleaving.
func TestConcurrentPrepareSameName(t *testing.T) {
	e := mustEngine(t)
	const k = 8
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := "project(user, group; UserGroup)"
			if i%2 == 1 {
				q = "project(group; UserGroup)"
			}
			errs[i] = e.PrepareText("dup", q)
		}(i)
	}
	wg.Wait()
	oks, conflicts := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			oks++
		case errors.Is(err, ErrConflict):
			conflicts++
		default:
			t.Fatalf("unexpected prepare error: %v", err)
		}
	}
	if oks == 0 || oks+conflicts != k {
		t.Fatalf("%d ok / %d conflicts of %d", oks, conflicts, k)
	}
	if _, err := e.Query("dup"); err != nil {
		t.Fatalf("winning registration not served: %v", err)
	}
}
