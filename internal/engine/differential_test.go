package engine

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/relation"
	"repro/internal/workload"
)

// basisFingerprint renders a witness basis canonically: one line per view
// tuple (sorted), each listing its witness keys in basis order.
func basisFingerprint(res *provenance.Result) string {
	var b strings.Builder
	for _, t := range res.View.SortedTuples() {
		b.WriteString(t.Key())
		b.WriteString(" => ")
		for i, w := range res.Witnesses(t) {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(w.Key())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDifferentialIncrementalMaintenance drives random deletion sequences
// through prepared engines over randomized workload databases and SPJU
// queries, and asserts after every step that the incrementally-maintained
// materialized view and witness basis are byte-identical to a from-scratch
// algebra.Eval + provenance.Compute over a mirrored database.
func TestDifferentialIncrementalMaintenance(t *testing.T) {
	type gen struct {
		name  string
		build func(r *rand.Rand) (*relation.Database, algebra.Query)
	}
	gens := []gen{
		{"UserGroupFile", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.UserGroupFile(r, 8, 4, 6, 2, 2)
		}},
		{"TwoRelationPJ", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.TwoRelationPJ(r, 12, 4)
		}},
		{"SPU", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.SPU(r, 3, 15, 5)
		}},
		{"SJ", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.SJ(r, 15, 5)
		}},
		{"SJU", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.SJU(r, 10, 4)
		}},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				r := rand.New(rand.NewSource(seed))
				db, q := g.build(r)
				e := New(db)
				if err := e.Prepare("v", q); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				mirror := db.Clone()

				for step := 0; step < 8; step++ {
					view, err := e.Query("v")
					if err != nil {
						t.Fatal(err)
					}
					if view.Len() == 0 {
						break
					}
					target := view.Tuple(r.Intn(view.Len()))
					obj := core.MinimizeViewSideEffects
					if step%2 == 1 {
						obj = core.MinimizeSourceDeletions
					}
					rep, err := e.Delete("v", target, obj, core.DeleteOptions{})
					if err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
					mirror = mirror.DeleteAll(rep.Result.T)

					// View: byte-identical table render against a from-
					// scratch evaluation of the ORIGINAL query.
					scratchView, err := algebra.Eval(q, mirror)
					if err != nil {
						t.Fatal(err)
					}
					cur, _ := e.Query("v")
					if got, want := cur.Table(), scratchView.Table(); got != want {
						t.Fatalf("seed %d step %d (%v): maintained view diverged\n got:\n%s\nwant:\n%s", seed, step, obj, got, want)
					}

					// Basis: byte-identical canonical fingerprint against a
					// from-scratch provenance computation.
					scratchProv, err := provenance.Compute(q, mirror)
					if err != nil {
						t.Fatal(err)
					}
					incr := basisFingerprint(enginePerViewBasis(t, e, "v"))
					full := basisFingerprint(scratchProv)
					if incr != full {
						t.Fatalf("seed %d step %d (%v): witness basis diverged\n got:\n%s\nwant:\n%s", seed, step, obj, incr, full)
					}

					// The engine's own source mirror must agree too.
					if got, want := relation.WriteDatabaseString(e.Database()), relation.WriteDatabaseString(mirror); got != want {
						t.Fatalf("seed %d step %d: source diverged\n got:\n%s\nwant:\n%s", seed, step, got, want)
					}
				}
			}
		})
	}
}

// TestDifferentialMixedInsertDelete drives random interleavings of Insert
// (fresh tuples and restores of previously deleted ones), Delete and
// DeleteGroup (with occasional duplicate targets) through prepared engines
// and asserts after every commit that the incrementally-maintained state —
// materialized view, witness basis, source database AND generation counter
// — is byte-identical to a from-scratch algebra.Eval + provenance.Compute
// over a mirrored database, with the generation advancing exactly once per
// state-changing request.
func TestDifferentialMixedInsertDelete(t *testing.T) {
	type gen struct {
		name  string
		build func(r *rand.Rand) (*relation.Database, algebra.Query)
	}
	gens := []gen{
		{"UserGroupFile", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.UserGroupFile(r, 8, 4, 6, 2, 2)
		}},
		{"TwoRelationPJ", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.TwoRelationPJ(r, 12, 4)
		}},
		{"SPU", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.SPU(r, 3, 15, 5)
		}},
		{"SJU", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.SJU(r, 10, 4)
		}},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				r := rand.New(rand.NewSource(seed))
				db, q := g.build(r)
				original := db.Clone() // domain pool for fresh inserts
				e := New(db)
				if err := e.Prepare("v", q); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				mirror := db.Clone()
				var graveyard []relation.SourceTuple
				var wantGen int64

				// freshTuple synthesizes a source tuple from the original
				// domain (sampling column values independently, so it is
				// often novel yet joinable).
				freshTuple := func() (relation.SourceTuple, bool) {
					rels := original.Relations()
					rel := rels[r.Intn(len(rels))]
					if rel.Len() == 0 {
						return relation.SourceTuple{}, false
					}
					tu := make(relation.Tuple, rel.Schema().Len())
					for i := range tu {
						tu[i] = rel.Tuple(r.Intn(rel.Len()))[i]
					}
					return relation.SourceTuple{Rel: rel.Name(), Tuple: tu}, true
				}

				for step := 0; step < 12; step++ {
					switch op := r.Intn(4); {
					case op == 0: // insert: restore and/or fresh
						var I []relation.SourceTuple
						if len(graveyard) > 0 && r.Intn(2) == 0 {
							I = append(I, graveyard[r.Intn(len(graveyard))])
						}
						if st, ok := freshTuple(); ok && r.Intn(2) == 0 {
							I = append(I, st)
						}
						if len(I) == 0 {
							continue
						}
						rep, err := e.Insert(I)
						if err != nil {
							t.Fatalf("seed %d step %d: insert: %v", seed, step, err)
						}
						// Novel = not present and not already claimed within
						// this batch (a graveyard restore and a synthesized
						// fresh tuple can coincide; the engine dedups them).
						var novel []relation.SourceTuple
						seen := make(map[string]bool)
						for _, st := range I {
							if !mirror.Contains(st) && !seen[st.Key()] {
								seen[st.Key()] = true
								novel = append(novel, st)
							}
						}
						if len(rep.Inserted) != len(novel) {
							t.Fatalf("seed %d step %d: engine inserted %d, mirror says %d novel", seed, step, len(rep.Inserted), len(novel))
						}
						if len(novel) > 0 {
							mirror, err = mirror.InsertAll(novel)
							if err != nil {
								t.Fatal(err)
							}
							wantGen++
						}
					default: // delete: single or group, sometimes duplicated targets
						view, err := e.Query("v")
						if err != nil {
							t.Fatal(err)
						}
						if view.Len() == 0 {
							continue
						}
						obj := core.MinimizeViewSideEffects
						if step%2 == 1 {
							obj = core.MinimizeSourceDeletions
						}
						var rep *core.DeleteReport
						if op == 1 && view.Len() >= 2 {
							targets := []relation.Tuple{view.Tuple(r.Intn(view.Len())), view.Tuple(r.Intn(view.Len()))}
							if r.Intn(2) == 0 {
								targets = append(targets, targets[0]) // duplicate target in one group
							}
							rep, err = e.DeleteGroup("v", targets, obj, core.DeleteOptions{})
						} else {
							rep, err = e.Delete("v", view.Tuple(r.Intn(view.Len())), obj, core.DeleteOptions{})
						}
						if err != nil {
							t.Fatalf("seed %d step %d: delete: %v", seed, step, err)
						}
						graveyard = append(graveyard, rep.Result.T...)
						mirror = mirror.DeleteAll(rep.Result.T)
						wantGen++
						if rep.Generation != wantGen {
							t.Fatalf("seed %d step %d: report generation %d, want %d", seed, step, rep.Generation, wantGen)
						}
					}

					// View, basis, source and generation must all match a
					// from-scratch computation over the mirror.
					scratchView, err := algebra.Eval(q, mirror)
					if err != nil {
						t.Fatal(err)
					}
					cur, _ := e.Query("v")
					if got, want := cur.Table(), scratchView.Table(); got != want {
						t.Fatalf("seed %d step %d: maintained view diverged\n got:\n%s\nwant:\n%s", seed, step, got, want)
					}
					scratchProv, err := provenance.Compute(q, mirror)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := basisFingerprint(enginePerViewBasis(t, e, "v")), basisFingerprint(scratchProv); got != want {
						t.Fatalf("seed %d step %d: witness basis diverged\n got:\n%s\nwant:\n%s", seed, step, got, want)
					}
					if got, want := e.Database().String(), mirror.String(); got != want {
						t.Fatalf("seed %d step %d: source diverged\n got:\n%s\nwant:\n%s", seed, step, got, want)
					}
					info, err := e.Describe("v")
					if err != nil {
						t.Fatal(err)
					}
					if info.Generation != wantGen {
						t.Fatalf("seed %d step %d: generation %d, want %d", seed, step, info.Generation, wantGen)
					}
				}
			}
		})
	}
}

// TestDifferentialCoalescedBatchIdentity proves the tentpole property of
// the write pipeline: a coalesced batch commit — one group solve, one
// parallel maintenance sweep, one published generation advance — leaves
// the engine byte-identical (every view's table, every witness basis, the
// source database, and every generation counter) to the same delete
// requests applied one at a time with coalescing disabled.
//
// The deleted view is an identity projection, so every view tuple's sole
// witness is its own source tuple and any solver is forced to pick exactly
// the targeted tuples — the coalesced group solve and the sequential
// singleton solves provably choose the same source deletions, making
// byte-level comparison of the downstream state meaningful. The sibling
// views (a join and a lossy projection with multi-witness tuples) exercise
// the fan-out maintenance on non-trivial bases.
func TestDifferentialCoalescedBatchIdentity(t *testing.T) {
	const batchDB = `
relation R(a, b)
r1, x
r2, x
r3, y
r4, y
r5, z
r6, z
r7, w
r8, w

relation S(b, c)
x, c1
x, c2
y, c2
z, c3
w, c1
`
	views := map[string]string{
		"id":   "project(a, b; R)",
		"join": "project(a, c; join(R, S))",
		"cs":   "project(c; S)",
	}
	mkEngine := func(opt Options) *Engine {
		db, err := relation.ReadDatabaseString(batchDB)
		if err != nil {
			t.Fatal(err)
		}
		e := New(db, opt)
		for name, q := range views {
			if err := e.PrepareText(name, q); err != nil {
				t.Fatalf("prepare %s: %v", name, err)
			}
		}
		return e
	}

	// The request mix: three singles and one group of two, all against the
	// identity view. 6 targets total, 4 requests.
	singles := []relation.Tuple{
		relation.StringTuple("r1", "x"),
		relation.StringTuple("r3", "y"),
		relation.StringTuple("r5", "z"),
	}
	groupTargets := []relation.Tuple{
		relation.StringTuple("r7", "w"),
		relation.StringTuple("r8", "w"),
	}
	const reqs = 4
	const targets = 5 // 3 singles + 1 group of 2; also the batch cap, so the batch fills exactly when the last request joins

	for _, obj := range []core.Objective{core.MinimizeSourceDeletions, core.MinimizeViewSideEffects} {
		// Coalescing engine: the batch admits exactly the full request mix,
		// and the generous wait guarantees all four requests meet in one
		// commit (the batch fills, waking the leader early).
		coalesced := mkEngine(Options{MaxBatchSize: targets, MaxCoalesceWait: 10 * time.Second, Workers: 4})
		var wg sync.WaitGroup
		errs := make([]error, reqs)
		for i, tg := range singles {
			wg.Add(1)
			go func(i int, tg relation.Tuple) {
				defer wg.Done()
				_, errs[i] = coalesced.Delete("id", tg, obj, core.DeleteOptions{})
			}(i, tg)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[reqs-1] = coalesced.DeleteGroup("id", groupTargets, obj, core.DeleteOptions{})
		}()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%v: coalesced request %d: %v", obj, i, err)
			}
		}
		cst := coalesced.Stats()
		if cst.CommitBatches != 1 || cst.Deletes != reqs || cst.CoalescedDeletes != reqs {
			t.Fatalf("%v: requests did not coalesce into one commit: %+v", obj, cst)
		}

		// Serial engine: same requests, one at a time, coalescing disabled.
		serial := mkEngine(Options{MaxBatchSize: 1, Workers: 1})
		for _, tg := range singles {
			if _, err := serial.Delete("id", tg, obj, core.DeleteOptions{}); err != nil {
				t.Fatalf("%v: serial delete: %v", obj, err)
			}
		}
		if _, err := serial.DeleteGroup("id", groupTargets, obj, core.DeleteOptions{}); err != nil {
			t.Fatalf("%v: serial group delete: %v", obj, err)
		}
		sst := serial.Stats()
		if sst.CommitBatches != reqs || sst.CoalescedDeletes != 0 {
			t.Fatalf("%v: serial engine coalesced: %+v", obj, sst)
		}

		// Byte-identical everything.
		if got, want := relation.WriteDatabaseString(coalesced.Database()), relation.WriteDatabaseString(serial.Database()); got != want {
			t.Fatalf("%v: source diverged\n got:\n%s\nwant:\n%s", obj, got, want)
		}
		for name := range views {
			cv, err := coalesced.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			sv, err := serial.Query(name)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := cv.Table(), sv.Table(); got != want {
				t.Fatalf("%v: view %q diverged\n got:\n%s\nwant:\n%s", obj, name, got, want)
			}
			if got, want := basisFingerprint(enginePerViewBasis(t, coalesced, name)), basisFingerprint(enginePerViewBasis(t, serial, name)); got != want {
				t.Fatalf("%v: basis of %q diverged\n got:\n%s\nwant:\n%s", obj, name, got, want)
			}
			cd, err := coalesced.Describe(name)
			if err != nil {
				t.Fatal(err)
			}
			sd, err := serial.Describe(name)
			if err != nil {
				t.Fatal(err)
			}
			if cd.Generation != sd.Generation {
				t.Fatalf("%v: view %q generation %d coalesced vs %d serial", obj, name, cd.Generation, sd.Generation)
			}
			if cd.Generation != reqs {
				t.Fatalf("%v: view %q generation %d, want %d (one per request)", obj, name, cd.Generation, reqs)
			}
		}
		if cst.DeletedSourceTuples != sst.DeletedSourceTuples {
			t.Fatalf("%v: deleted %d source tuples coalesced vs %d serial", obj, cst.DeletedSourceTuples, sst.DeletedSourceTuples)
		}
	}
}

// enginePerViewBasis exposes the current cached provenance result of a
// prepared view for fingerprinting.
func enginePerViewBasis(t *testing.T, e *Engine, name string) *provenance.Result {
	t.Helper()
	p, err := e.lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.snap.Load().prov
}
