package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/relation"
	"repro/internal/workload"
)

// basisFingerprint renders a witness basis canonically: one line per view
// tuple (sorted), each listing its witness keys in basis order.
func basisFingerprint(res *provenance.Result) string {
	var b strings.Builder
	for _, t := range res.View.SortedTuples() {
		b.WriteString(t.Key())
		b.WriteString(" => ")
		for i, w := range res.Witnesses(t) {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(w.Key())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDifferentialIncrementalMaintenance drives random deletion sequences
// through prepared engines over randomized workload databases and SPJU
// queries, and asserts after every step that the incrementally-maintained
// materialized view and witness basis are byte-identical to a from-scratch
// algebra.Eval + provenance.Compute over a mirrored database.
func TestDifferentialIncrementalMaintenance(t *testing.T) {
	type gen struct {
		name  string
		build func(r *rand.Rand) (*relation.Database, algebra.Query)
	}
	gens := []gen{
		{"UserGroupFile", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.UserGroupFile(r, 8, 4, 6, 2, 2)
		}},
		{"TwoRelationPJ", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.TwoRelationPJ(r, 12, 4)
		}},
		{"SPU", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.SPU(r, 3, 15, 5)
		}},
		{"SJ", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.SJ(r, 15, 5)
		}},
		{"SJU", func(r *rand.Rand) (*relation.Database, algebra.Query) {
			return workload.SJU(r, 10, 4)
		}},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				r := rand.New(rand.NewSource(seed))
				db, q := g.build(r)
				e := New(db)
				if err := e.Prepare("v", q); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				mirror := db.Clone()

				for step := 0; step < 8; step++ {
					view, err := e.Query("v")
					if err != nil {
						t.Fatal(err)
					}
					if view.Len() == 0 {
						break
					}
					target := view.Tuple(r.Intn(view.Len()))
					obj := core.MinimizeViewSideEffects
					if step%2 == 1 {
						obj = core.MinimizeSourceDeletions
					}
					rep, err := e.Delete("v", target, obj, core.DeleteOptions{})
					if err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
					mirror = mirror.DeleteAll(rep.Result.T)

					// View: byte-identical table render against a from-
					// scratch evaluation of the ORIGINAL query.
					scratchView, err := algebra.Eval(q, mirror)
					if err != nil {
						t.Fatal(err)
					}
					cur, _ := e.Query("v")
					if got, want := cur.Table(), scratchView.Table(); got != want {
						t.Fatalf("seed %d step %d (%v): maintained view diverged\n got:\n%s\nwant:\n%s", seed, step, obj, got, want)
					}

					// Basis: byte-identical canonical fingerprint against a
					// from-scratch provenance computation.
					scratchProv, err := provenance.Compute(q, mirror)
					if err != nil {
						t.Fatal(err)
					}
					incr := basisFingerprint(enginePerViewBasis(t, e, "v"))
					full := basisFingerprint(scratchProv)
					if incr != full {
						t.Fatalf("seed %d step %d (%v): witness basis diverged\n got:\n%s\nwant:\n%s", seed, step, obj, incr, full)
					}

					// The engine's own source mirror must agree too.
					if got, want := relation.WriteDatabaseString(e.Database()), relation.WriteDatabaseString(mirror); got != want {
						t.Fatalf("seed %d step %d: source diverged\n got:\n%s\nwant:\n%s", seed, step, got, want)
					}
				}
			}
		})
	}
}

// enginePerViewBasis exposes the current cached provenance result of a
// prepared view for fingerprinting.
func enginePerViewBasis(t *testing.T, e *Engine, name string) *provenance.Result {
	t.Helper()
	p, err := e.lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.snap.Load().prov
}
