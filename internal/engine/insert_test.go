package engine

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/relation"
)

func TestInsertMaintainsAllViews(t *testing.T) {
	e := mustEngine(t)
	if err := e.PrepareText("groups", "project(user, group; UserGroup)"); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Insert([]relation.SourceTuple{
		{Rel: "UserGroup", Tuple: relation.StringTuple("sue", "staff")},
		{Rel: "GroupFile", Tuple: relation.StringTuple("staff", "f3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inserted) != 2 || rep.Duplicates != 0 || rep.Requested != 2 {
		t.Fatalf("report %+v, want 2 inserted, 0 duplicates", rep)
	}
	// Every prepared view equals a fresh evaluation over the new source —
	// including the join view, which gains (sue,f1), (sue,f3), (john,f3).
	for _, name := range e.Views() {
		p, err := e.lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		view, err := e.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := algebra.Eval(p.plan, e.Database())
		if err != nil {
			t.Fatal(err)
		}
		if !view.Equal(fresh) {
			t.Errorf("view %q diverged after insert:\n%s\nvs\n%s", name, view.Table(), fresh.Table())
		}
	}
	access, _ := e.Query("access")
	if !access.Contains(relation.StringTuple("sue", "f3")) {
		t.Error("join view missing a tuple derived from two inserted sources")
	}
	// The report carries each view's committed size and generation.
	if len(rep.Views) != 2 || rep.Views[0].Name != "access" || rep.Views[0].Generation != 1 {
		t.Errorf("report views %+v", rep.Views)
	}
	st := e.Stats()
	if st.Inserts != 1 || st.InsertedSourceTuples != 2 || st.CommitBatches != 1 {
		t.Errorf("counters after insert: %+v", st)
	}
}

// The undo workload the insertion path exists for: re-inserting exactly
// the source tuples a Delete removed restores the source, every view and
// every witness basis byte-identically.
func TestInsertRestoresDeletion(t *testing.T) {
	e := mustEngine(t)
	if err := e.PrepareText("groups", "project(user, group; UserGroup)"); err != nil {
		t.Fatal(err)
	}
	pristineSource := e.Database().String()
	pristine := make(map[string]string)
	for _, name := range e.Views() {
		pristine[name] = basisFingerprint(enginePerViewBasis(t, e, name))
	}

	rep, err := e.Delete("access", relation.StringTuple("john", "f2"), core.MinimizeViewSideEffects, core.DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Result.T) == 0 {
		t.Fatal("no deletions to restore")
	}
	ins, err := e.Insert(rep.Result.T)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.Inserted) != len(rep.Result.T) || ins.Duplicates != 0 {
		t.Fatalf("restore report %+v, want all %d tuples novel", ins, len(rep.Result.T))
	}
	if got := e.Database().String(); got != pristineSource {
		t.Errorf("source not restored\n got:\n%s\nwant:\n%s", got, pristineSource)
	}
	for _, name := range e.Views() {
		if got := basisFingerprint(enginePerViewBasis(t, e, name)); got != pristine[name] {
			t.Errorf("view %q basis not restored\n got:\n%s\nwant:\n%s", name, got, pristine[name])
		}
		info, err := e.Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.Generation != 2 {
			t.Errorf("view %q generation %d after delete+restore, want 2", name, info.Generation)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	e := mustEngine(t)
	if _, err := e.Insert(nil); err == nil {
		t.Error("empty insert must fail")
	}
	if _, err := e.Insert([]relation.SourceTuple{{Rel: "Nope", Tuple: relation.StringTuple("x")}}); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation: got %v, want ErrUnknownRelation", err)
	}
	if _, err := e.Insert([]relation.SourceTuple{{Rel: "UserGroup", Tuple: relation.StringTuple("only-one")}}); err == nil {
		t.Error("arity mismatch must fail")
	}
	// Nothing committed, nothing counted.
	if st := e.Stats(); st.Inserts != 0 || st.CommitBatches != 0 {
		t.Errorf("failed inserts moved counters: %+v", st)
	}
}

// Inserting tuples that already exist is an idempotent no-op: the request
// succeeds, reports the duplicates, and publishes no generation.
func TestInsertDuplicateIdempotent(t *testing.T) {
	e := mustEngine(t)
	rep, err := e.Insert([]relation.SourceTuple{
		{Rel: "UserGroup", Tuple: relation.StringTuple("john", "staff")}, // exists
		{Rel: "UserGroup", Tuple: relation.StringTuple("john", "staff")}, // repeated in-batch
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inserted) != 0 || rep.Duplicates != 2 {
		t.Fatalf("report %+v, want 0 inserted / 2 duplicates", rep)
	}
	info, err := e.Describe("access")
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 0 {
		t.Errorf("pure-duplicate insert advanced the generation to %d", info.Generation)
	}
	st := e.Stats()
	if st.Inserts != 1 || st.InsertedSourceTuples != 0 || st.CommitBatches != 0 {
		t.Errorf("counters after duplicate insert: %+v", st)
	}
	// A mixed batch inserts the novel tuple and counts the duplicate.
	rep, err = e.Insert([]relation.SourceTuple{
		{Rel: "UserGroup", Tuple: relation.StringTuple("john", "staff")},
		{Rel: "UserGroup", Tuple: relation.StringTuple("sue", "staff")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Inserted) != 1 || rep.Duplicates != 1 {
		t.Fatalf("mixed report %+v", rep)
	}
	if info, _ := e.Describe("access"); info.Generation != 1 {
		t.Errorf("mixed insert generation %d, want 1", info.Generation)
	}
}

// An insertion that would grow a capped basis past its PrepareLimited
// limit fails the whole batch atomically: nothing is published.
func TestInsertRespectsPrepareLimit(t *testing.T) {
	db, err := relation.ReadDatabaseString(srcDB)
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	// (john,f1) has exactly 2 witnesses; cap at 2 so a third route trips it.
	if err := e.PrepareLimited("v", mustParse(t, srcQuery), provenance.Limit{MaxWitnesses: 2}); err != nil {
		t.Fatal(err)
	}
	before := e.Database().String()
	beforeBasis := basisFingerprint(enginePerViewBasis(t, e, "v"))
	_, err = e.Insert([]relation.SourceTuple{
		{Rel: "UserGroup", Tuple: relation.StringTuple("john", "devs")},
		{Rel: "GroupFile", Tuple: relation.StringTuple("devs", "f1")},
	})
	if !errors.Is(err, provenance.ErrLimit) {
		t.Fatalf("got %v, want ErrLimit", err)
	}
	if got := e.Database().String(); got != before {
		t.Error("failed insert mutated the source")
	}
	if got := basisFingerprint(enginePerViewBasis(t, e, "v")); got != beforeBasis {
		t.Error("failed insert mutated the basis")
	}
	if info, _ := e.Describe("v"); info.Generation != 0 {
		t.Error("failed insert published a generation")
	}
}

// A coalesced insert batch where ONE request blows a PrepareLimited cap is
// replayed per request: the innocent request succeeds exactly as it would
// have serially, only the poisonous one fails.
func TestCoalescedInsertFailureAttribution(t *testing.T) {
	db, err := relation.ReadDatabaseString(srcDB)
	if err != nil {
		t.Fatal(err)
	}
	e := New(db)
	if err := e.PrepareLimited("v", mustParse(t, srcQuery), provenance.Limit{MaxWitnesses: 2}); err != nil {
		t.Fatal(err)
	}
	innocent := &writeReq{kind: writeInsert, tuples: []relation.SourceTuple{
		{Rel: "UserGroup", Tuple: relation.StringTuple("sue", "staff")},
	}}
	poison := &writeReq{kind: writeInsert, tuples: []relation.SourceTuple{
		{Rel: "UserGroup", Tuple: relation.StringTuple("john", "devs")},
		{Rel: "GroupFile", Tuple: relation.StringTuple("devs", "f1")}, // 3rd route to (john,f1): cap is 2
	}}
	b := &batch{key: batchKey{kind: writeInsert}, reqs: []*writeReq{innocent, poison}, size: 3,
		full: make(chan struct{}), done: make(chan struct{})}
	e.wmu.Lock()
	e.commitInsert(b)
	e.wmu.Unlock()

	if innocent.err != nil || innocent.ins == nil {
		t.Fatalf("innocent coalesced insert failed: %v", innocent.err)
	}
	if !errors.Is(poison.err, provenance.ErrLimit) {
		t.Fatalf("poisonous request: got %v, want ErrLimit", poison.err)
	}
	view, err := e.Query("v")
	if err != nil {
		t.Fatal(err)
	}
	if !view.Contains(relation.StringTuple("sue", "f1")) {
		t.Error("innocent request's effect missing from the view")
	}
	if e.Database().Contains(relation.SourceTuple{Rel: "UserGroup", Tuple: relation.StringTuple("john", "devs")}) {
		t.Error("poisonous request's tuples reached the source")
	}
	if info, _ := e.Describe("v"); info.Generation != 1 {
		t.Errorf("generation %d, want 1 (only the innocent request committed)", info.Generation)
	}
}

// Concurrent Insert requests coalesce into one commit: one source
// extension, one delta-maintenance sweep, a shared report, and per-request
// generation advancement.
func TestConcurrentInsertsCoalesce(t *testing.T) {
	const k = 4
	e := pipelineEngine(t, Options{MaxBatchSize: k, MaxCoalesceWait: 5 * time.Second, Workers: 2})
	tuples := []relation.SourceTuple{
		{Rel: "R", Tuple: relation.StringTuple("n1", "x")},
		{Rel: "R", Tuple: relation.StringTuple("n2", "y")},
		{Rel: "S", Tuple: relation.StringTuple("w", "c9")},
		{Rel: "S", Tuple: relation.StringTuple("v", "c8")},
	}
	var wg sync.WaitGroup
	reports := make([]*InsertReport, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = e.Insert(tuples[i : i+1])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := e.Stats()
	if st.Inserts != k || st.CommitBatches != 1 || st.CoalescedInserts != k {
		t.Fatalf("requests did not coalesce into one commit: %+v", st)
	}
	for i := 1; i < k; i++ {
		if reports[i] != reports[0] {
			t.Fatal("coalesced callers received different reports")
		}
	}
	if len(reports[0].Inserted) != k || !reports[0].Coalesced {
		t.Fatalf("combined report %+v", reports[0])
	}
	// Each request contributed a novel tuple: the generation advanced once
	// per request, exactly as under serial application.
	p, err := e.lookup("id")
	if err != nil {
		t.Fatal(err)
	}
	if g := p.gen.Load(); g != k {
		t.Fatalf("generation %d after %d coalesced inserts, want %d", g, k, k)
	}
	view, err := e.Query("id")
	if err != nil {
		t.Fatal(err)
	}
	if !view.Contains(relation.StringTuple("n1", "x")) || !view.Contains(relation.StringTuple("n2", "y")) {
		t.Error("maintained view missing inserted tuples")
	}
}

// Mixed concurrent insert/delete writers against concurrent readers, for
// the race detector: deleters shrink the hot view while inserters restore
// every tuple the deleters removed, and every view must end coherent with
// the final source.
func TestConcurrentInsertDeleteServing(t *testing.T) {
	e := mustEngine(t)
	if err := e.PrepareText("groups", "project(user, group; UserGroup)"); err != nil {
		t.Fatal(err)
	}
	graveyard := make(chan []relation.SourceTuple, 64)

	var writers sync.WaitGroup
	var readers sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() { // reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			view, err := e.Query("access")
			if err != nil {
				t.Error(err)
				return
			}
			if n := view.Len(); n > 0 {
				_, _ = e.Witnesses("access", view.Tuple(n/2))
			}
			_ = e.Stats()
		}
	}()
	writers.Add(1)
	go func() { // deleter
		defer writers.Done()
		for i := 0; i < 12; i++ {
			view, err := e.Query("access")
			if err != nil {
				t.Error(err)
				return
			}
			if view.Len() == 0 {
				continue
			}
			rep, err := e.Delete("access", view.Tuple(0), core.MinimizeSourceDeletions, core.DeleteOptions{})
			if err != nil {
				if strings.Contains(err.Error(), "not in view") {
					continue
				}
				t.Error(err)
				return
			}
			select {
			case graveyard <- rep.Result.T:
			default:
			}
		}
	}()
	writers.Add(1)
	go func() { // inserter: restore whatever the deleter removed
		defer writers.Done()
		for i := 0; i < 12; i++ {
			select {
			case T := <-graveyard:
				if _, err := e.Insert(T); err != nil {
					t.Error(err)
					return
				}
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()

	for _, name := range e.Views() {
		p, err := e.lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		view, err := e.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := algebra.Eval(p.plan, e.Database())
		if err != nil {
			t.Fatal(err)
		}
		if !view.Equal(fresh) {
			t.Errorf("view %q stale against final source:\n%s\nvs\n%s", name, view.Table(), fresh.Table())
		}
	}
}
