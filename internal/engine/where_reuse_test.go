package engine

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/core"
	"repro/internal/relation"
)

// TestWhereIndexReuseAcrossDeletes pins the overlay-aware reuse contract:
// deletion commits derive the where-provenance index incrementally from
// the previous generation, so Annotate after any number of deletes never
// re-runs the full index computation — computeWhere fires exactly once,
// at Prepare. An insert commit is the path that legitimately drops the
// index and recomputes lazily.
func TestWhereIndexReuseAcrossDeletes(t *testing.T) {
	calls := 0
	orig := computeWhere
	computeWhere = func(q algebra.Query, db *relation.Database) (*annotation.WhereView, error) {
		calls++
		return orig(q, db)
	}
	defer func() { computeWhere = orig }()

	e := mustEngine(t)
	if calls != 1 {
		t.Fatalf("Prepare ran computeWhere %d times, want 1 (the eager build)", calls)
	}
	if _, err := e.Annotate("access", relation.StringTuple("john", "f1"), "file"); err != nil {
		t.Fatal(err)
	}

	// Two deletion commits: each must carry a maintained index forward.
	for _, target := range []relation.Tuple{
		relation.StringTuple("john", "f2"),
		relation.StringTuple("mary", "f1"),
	} {
		if _, err := e.Delete("access", target, core.MinimizeViewSideEffects, core.DeleteOptions{}); err != nil {
			t.Fatal(err)
		}
		vs, err := e.Describe("access")
		if err != nil {
			t.Fatal(err)
		}
		if !vs.WhereReady {
			t.Fatalf("WhereReady false after deleting %v — the commit did not maintain the index", target)
		}
	}

	view, err := e.Query("access")
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() == 0 {
		t.Fatal("view emptied; targets chosen above should leave survivors")
	}
	rep, err := e.Annotate("access", view.Tuple(0), "file")
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("computeWhere ran %d times after delete commits, want still 1 — the index was rebuilt instead of maintained", calls)
	}

	// The maintained index must answer exactly like a fresh engine built on
	// the post-deletion source (same plan pipeline, cold index).
	fresh := New(e.Database())
	if err := fresh.PrepareText("access", srcQuery); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Annotate("access", view.Tuple(0), "file")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placement.Source.Key() != want.Placement.Source.Key() ||
		rep.Placement.SideEffects != want.Placement.SideEffects {
		t.Fatalf("maintained index placed (%v, %d side-effects), fresh engine places (%v, %d)",
			rep.Placement.Source, rep.Placement.SideEffects, want.Placement.Source, want.Placement.SideEffects)
	}
	callsAfterFresh := calls // the fresh engine's own eager build

	// An insert commit drops the index (insertion can widen surviving
	// where-sets); the next Annotate rebuilds lazily.
	if _, err := e.Insert([]relation.SourceTuple{{Rel: "UserGroup", Tuple: relation.StringTuple("zoe", "staff")}}); err != nil {
		t.Fatal(err)
	}
	vs, err := e.Describe("access")
	if err != nil {
		t.Fatal(err)
	}
	if vs.WhereReady {
		t.Fatal("WhereReady true right after an insert commit — inserts must drop the index")
	}
	if _, err := e.Annotate("access", relation.StringTuple("zoe", "f1"), "file"); err != nil {
		t.Fatal(err)
	}
	if calls != callsAfterFresh+1 {
		t.Fatalf("computeWhere ran %d times after the insert (was %d) — want exactly one lazy rebuild", calls, callsAfterFresh)
	}
}
