package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
	"repro/internal/workload"
)

func TestDeleteRoutesSPU(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	db, q := workload.SPU(r, 2, 20, 5)
	target, ok := workload.PickViewTuple(r, q, db)
	if !ok {
		t.Fatal("empty view")
	}
	rep, err := Delete(q, db, target, MinimizeViewSideEffects, DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Algorithm, "SPU") {
		t.Errorf("algorithm %q, want SPU route", rep.Algorithm)
	}
	if rep.Class != algebra.ClassPoly {
		t.Errorf("class %v want P", rep.Class)
	}
	if !rep.Result.SideEffectFree() {
		t.Error("Theorem 2.3 guarantees side-effect-free for SPU")
	}
	if !rep.Exact {
		t.Error("SPU route is exact")
	}
}

func TestDeleteRoutesSJ(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	db, q := workload.SJ(r, 20, 4)
	target, ok := workload.PickViewTuple(r, q, db)
	if !ok {
		t.Fatal("empty view")
	}
	rep, err := Delete(q, db, target, MinimizeSourceDeletions, DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Algorithm, "SJ") {
		t.Errorf("algorithm %q, want SJ route", rep.Algorithm)
	}
	if len(rep.Result.T) != 1 {
		t.Errorf("Theorem 2.9: SJ needs one deletion, got %d", len(rep.Result.T))
	}
}

func TestDeleteRoutesChainMinCut(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	db, q := workload.Chain(r, 3, 8, 3)
	target, ok := workload.PickViewTuple(r, q, db)
	if !ok {
		t.Fatal("empty view")
	}
	rep, err := Delete(q, db, target, MinimizeSourceDeletions, DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Algorithm, "min cut") {
		t.Errorf("algorithm %q, want chain min-cut route", rep.Algorithm)
	}
	if rep.Class != algebra.ClassNPHard {
		t.Errorf("PJ fragment classifies NP-hard even though chains are tractable; got %v", rep.Class)
	}
	if !rep.Exact {
		t.Error("min cut is exact")
	}
}

func TestDeleteRoutesExactAndGreedy(t *testing.T) {
	// A triangle-sharing join (B common to all three relations) is NOT a
	// chain, so the router must fall through to the generic solvers.
	r := rand.New(rand.NewSource(4))
	db := relation.NewDatabase()
	mk := func(name string, a1, a2 relation.Attribute) {
		rel := relation.New(name, relation.NewSchema(a1, a2))
		for i := 0; i < 8; i++ {
			rel.Insert(relation.NewTuple(
				relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
		}
		db.MustAdd(rel)
	}
	mk("P", "A", "B")
	mk("Q", "B", "C")
	mk("W", "B", "D")
	q := algebra.Pi([]relation.Attribute{"A", "C"},
		algebra.NatJoin(algebra.R("P"), algebra.R("Q"), algebra.R("W")))
	target, ok := workload.PickViewTuple(r, q, db)
	if !ok {
		t.Fatal("empty view")
	}
	exact, err := Delete(q, db, target, MinimizeSourceDeletions, DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact || !strings.Contains(exact.Algorithm, "exact") {
		t.Errorf("expected exact route, got %q", exact.Algorithm)
	}
	greedy, err := Delete(q, db, target, MinimizeSourceDeletions, DeleteOptions{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Exact || !strings.Contains(greedy.Algorithm, "greedy") {
		t.Errorf("expected greedy route, got %q", greedy.Algorithm)
	}
	if len(greedy.Result.T) < len(exact.Result.T) {
		t.Error("greedy cannot beat exact")
	}

	view, err := Delete(q, db, target, MinimizeViewSideEffects, DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(view.Algorithm, "hitting-set search") {
		t.Errorf("view objective algorithm %q", view.Algorithm)
	}
}

func TestAnnotateRoutes(t *testing.T) {
	r := rand.New(rand.NewSource(5))

	// SPU route.
	dbSPU, qSPU := workload.SPU(r, 2, 15, 5)
	tSPU, _ := workload.PickViewTuple(r, qSPU, dbSPU)
	rep, err := Annotate(qSPU, dbSPU, tSPU, "A")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Algorithm, "SPU") || rep.Class != algebra.ClassPoly {
		t.Errorf("SPU annotate route wrong: %q %v", rep.Algorithm, rep.Class)
	}
	if !rep.Placement.SideEffectFree() {
		t.Error("Theorem 3.3: SPU placements are side-effect-free")
	}

	// SJU route.
	dbSJU, qSJU := workload.SJU(r, 10, 3)
	tSJU, ok := workload.PickViewTuple(r, qSJU, dbSJU)
	if !ok {
		t.Fatal("empty SJU view")
	}
	rep, err = Annotate(qSJU, dbSJU, tSJU, "B")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Algorithm, "SJU") || rep.Class != algebra.ClassPoly {
		t.Errorf("SJU annotate route wrong: %q %v", rep.Algorithm, rep.Class)
	}

	// PJ route.
	dbPJ, qPJ := workload.TwoRelationPJ(r, 10, 3)
	tPJ, ok := workload.PickViewTuple(r, qPJ, dbPJ)
	if !ok {
		t.Fatal("empty PJ view")
	}
	rep, err = Annotate(qPJ, dbPJ, tPJ, "A")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Class != algebra.ClassNPHard || !strings.Contains(rep.Algorithm, "exact") {
		t.Errorf("PJ annotate route wrong: %q %v", rep.Algorithm, rep.Class)
	}
}

// TestDichotomyTables pins the three tables to the paper's values.
func TestDichotomyTables(t *testing.T) {
	check := func(p algebra.Problem, want map[string]algebra.Class) {
		for _, row := range DichotomyTable(p) {
			if c, ok := want[row.Fragment]; ok && c != row.Class {
				t.Errorf("%s / %s: got %s want %s", p, row.Fragment, row.Class, c)
			}
		}
	}
	check(algebra.ProblemViewSideEffect, map[string]algebra.Class{
		"queries involving PJ": algebra.ClassNPHard,
		"queries involving JU": algebra.ClassNPHard,
		"SPU":                  algebra.ClassPoly,
		"SJ":                   algebra.ClassPoly,
	})
	check(algebra.ProblemSourceSideEffect, map[string]algebra.Class{
		"queries involving PJ": algebra.ClassNPHard,
		"queries involving JU": algebra.ClassNPHard,
		"SPU":                  algebra.ClassPoly,
		"SJ":                   algebra.ClassPoly,
	})
	check(algebra.ProblemAnnotationPlacement, map[string]algebra.Class{
		"queries involving PJ": algebra.ClassNPHard,
		"SJU":                  algebra.ClassPoly,
		"SPU":                  algebra.ClassPoly,
	})
}

func TestDeleteErrorPaths(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	db, q := workload.SPU(r, 2, 10, 4)
	missing := relation.StringTuple("99999")
	if _, err := Delete(q, db, missing, MinimizeViewSideEffects, DeleteOptions{}); err == nil {
		t.Error("missing target through SPU route must error")
	}
	dbSJ, qSJ := workload.SJ(r, 10, 3)
	missingSJ := relation.StringTuple("99", "99", "99")
	if _, err := Delete(qSJ, dbSJ, missingSJ, MinimizeSourceDeletions, DeleteOptions{}); err == nil {
		t.Error("missing target through SJ route must error")
	}
	dbPJ, qPJ := workload.TwoRelationPJ(r, 8, 3)
	missingPJ := relation.StringTuple("99", "99")
	if _, err := Delete(qPJ, dbPJ, missingPJ, MinimizeViewSideEffects, DeleteOptions{}); err == nil {
		t.Error("missing target through exact route must error")
	}
	if _, err := Delete(qPJ, dbPJ, missingPJ, MinimizeSourceDeletions, DeleteOptions{Greedy: true}); err == nil {
		t.Error("missing target through greedy route must error")
	}
	if _, err := Annotate(qPJ, dbPJ, missingPJ, "A"); err == nil {
		t.Error("missing target through annotate route must error")
	}
	// Invalid query.
	if _, err := Delete(algebra.R("Ghost"), db, missing, MinimizeViewSideEffects, DeleteOptions{}); err == nil {
		t.Error("invalid query must error")
	}
}

// The keyed fast path: a foreign-key join through the router reports the
// §2.1.1 algorithm.
func TestDeleteRoutesKeyJoin(t *testing.T) {
	db := relation.NewDatabase()
	emp := relation.New("Emp", relation.NewSchema("emp", "dept"))
	emp.InsertStrings("ann", "d1")
	emp.InsertStrings("bob", "d1")
	db.MustAdd(emp)
	dept := relation.New("Dept", relation.NewSchema("dept", "mgr"))
	dept.InsertStrings("d1", "mia")
	db.MustAdd(dept)
	q := algebra.Pi([]relation.Attribute{"emp", "mgr"},
		algebra.NatJoin(algebra.R("Emp"), algebra.R("Dept")))
	rep, err := Delete(q, db, relation.StringTuple("ann", "mia"), MinimizeViewSideEffects, DeleteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Algorithm, "key join") {
		t.Errorf("algorithm %q, want the §2.1.1 fast path", rep.Algorithm)
	}
	if !rep.Exact || !rep.Result.SideEffectFree() {
		t.Errorf("keyed deletion should be exact and free here: %+v", rep.Result)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(algebra.ProblemViewSideEffect)
	if !strings.Contains(out, "NP-hard") || !strings.Contains(out, "SPU") {
		t.Errorf("FormatTable output incomplete:\n%s", out)
	}
}

func TestObjectiveString(t *testing.T) {
	if MinimizeViewSideEffects.String() == MinimizeSourceDeletions.String() {
		t.Error("objective names must differ")
	}
}

func TestWorkloadGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db, q := workload.Curation(r, 10, 2)
	view, err := algebra.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() == 0 {
		t.Error("curation view empty")
	}
	if _, ok := workload.PickViewTuple(r, q, db); !ok {
		t.Error("PickViewTuple failed")
	}
	// Unknown relation: PickViewTuple reports not-ok.
	if _, ok := workload.PickViewTuple(r, algebra.R("Ghost"), db); ok {
		t.Error("PickViewTuple should fail on invalid query")
	}
	var _ relation.Tuple // keep import
}
