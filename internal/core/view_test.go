package core

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func viewFixture(t *testing.T) *View {
	t.Helper()
	db := relation.NewDatabase()
	ug := relation.New("UserGroup", relation.NewSchema("user", "group"))
	ug.InsertStrings("john", "staff")
	ug.InsertStrings("john", "admin")
	ug.InsertStrings("mary", "admin")
	db.MustAdd(ug)
	gf := relation.New("GroupFile", relation.NewSchema("group", "file"))
	gf.InsertStrings("staff", "f1")
	gf.InsertStrings("admin", "f1")
	gf.InsertStrings("admin", "f2")
	db.MustAdd(gf)
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	v, err := NewView(q, db)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewViewValidates(t *testing.T) {
	db := relation.NewDatabase()
	if _, err := NewView(algebra.R("Ghost"), db); err == nil {
		t.Error("invalid query must be rejected")
	}
}

func TestViewEvalAndCaches(t *testing.T) {
	v := viewFixture(t)
	if n, err := v.Len(); err != nil || n != 4 {
		t.Fatalf("Len=%d err=%v", n, err)
	}
	ok, err := v.Contains(relation.StringTuple("john", "f1"))
	if err != nil || !ok {
		t.Error("Contains(john,f1) should hold")
	}
	ws, err := v.Witnesses(relation.StringTuple("john", "f1"))
	if err != nil || len(ws) != 2 {
		t.Errorf("witnesses=%d err=%v", len(ws), err)
	}
	locs, err := v.WhereProvenance(relation.StringTuple("john", "f1"), "file")
	if err != nil || len(locs) != 2 {
		t.Errorf("where=%d err=%v", len(locs), err)
	}
	if v.Fragment() != "PJ" {
		t.Errorf("fragment %q", v.Fragment())
	}
}

func TestViewDeleteApply(t *testing.T) {
	v := viewFixture(t)
	target := relation.StringTuple("john", "f2")
	rep, err := v.Delete(target, MinimizeViewSideEffects, DeleteOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.SideEffectFree() {
		t.Errorf("expected free deletion: %v", rep.Result.SideEffects)
	}
	// The view must reflect the applied deletion.
	ok, err := v.Contains(target)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("target still visible after applied deletion")
	}
	if n, _ := v.Len(); n != 3 {
		t.Errorf("view size after deletion=%d want 3", n)
	}
	// Source actually changed.
	if v.Database().Relation("UserGroup").Len() != 2 {
		t.Error("source deletion not applied")
	}
}

func TestViewDeleteWithoutApply(t *testing.T) {
	v := viewFixture(t)
	target := relation.StringTuple("john", "f2")
	if _, err := v.Delete(target, MinimizeViewSideEffects, DeleteOptions{}, false); err != nil {
		t.Fatal(err)
	}
	if ok, _ := v.Contains(target); !ok {
		t.Error("without apply the view must be unchanged")
	}
}

func TestViewAnnotate(t *testing.T) {
	v := viewFixture(t)
	rep, err := v.Annotate(relation.StringTuple("john", "f2"), "file")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placement.Source.Rel != "GroupFile" {
		t.Errorf("placement %v", rep.Placement.Source)
	}
}

func TestViewExplain(t *testing.T) {
	v := viewFixture(t)
	target := relation.StringTuple("john", "f2")
	rep, err := v.Delete(target, MinimizeViewSideEffects, DeleteOptions{}, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := v.Explain(target, rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"witness", "source deletions", "no view side-effects"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestViewInvalidate(t *testing.T) {
	v := viewFixture(t)
	if _, err := v.Eval(); err != nil {
		t.Fatal(err)
	}
	// Mutate behind the wrapper's back, then invalidate manually.
	v.Database().Relation("GroupFile").InsertStrings("staff", "f9")
	v.Invalidate()
	if n, _ := v.Len(); n != 5 {
		t.Errorf("after invalidate Len=%d want 5", n)
	}
}
