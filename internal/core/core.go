// Package core is the top-level API of the reproduction: it routes each of
// the paper's three problems — view side-effect deletion, source
// side-effect deletion, annotation placement — to the right algorithm
// according to the dichotomy tables, and reports which complexity class
// and algorithm applied.
//
// The three dichotomies (§2.1, §2.2, §3.1):
//
//	problem            PJ        JU        SPU   SJ/SJU
//	view side-effect   NP-hard   NP-hard   P     P (SJ)
//	source side-effect NP-hard   NP-hard   P     P (SJ)
//	annotation         NP-hard   P (SJU)   P     P
//
// For NP-hard inputs the router falls back to exact solvers (worst-case
// exponential, with caps) or, for source minimization, an optional greedy
// H_n-approximation.
package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/deletion"
	"repro/internal/relation"
)

// Objective selects which quantity a deletion minimizes.
type Objective uint8

// The two objectives of §2.
const (
	// MinimizeViewSideEffects is the view side-effect problem (§2.1).
	MinimizeViewSideEffects Objective = iota
	// MinimizeSourceDeletions is the source side-effect problem (§2.2).
	MinimizeSourceDeletions
)

// String names the objective.
func (o Objective) String() string {
	if o == MinimizeViewSideEffects {
		return "minimize view side-effects"
	}
	return "minimize source deletions"
}

// DeleteOptions tunes the solvers used on NP-hard inputs.
type DeleteOptions struct {
	// MaxWitnesses caps the witness basis per view tuple (0 = unlimited).
	MaxWitnesses int
	// MaxCandidates caps the view-side exact search (0 = unlimited).
	MaxCandidates int
	// Greedy switches the source objective on NP-hard inputs to the
	// greedy hitting-set approximation instead of the exact solver.
	Greedy bool
}

// DeleteReport is the outcome of a routed deletion request.
type DeleteReport struct {
	// Class is the complexity class of the query for the problem.
	Class algebra.Class
	// Fragment is the query's operator fragment (e.g. "PJ", "SPU").
	Fragment string
	// Algorithm names the algorithm that ran.
	Algorithm string
	// Result is the computed deletion.
	Result *deletion.Result
	// Exact reports whether the result is certified optimal.
	Exact bool
	// ViewSize and Generation describe the committed snapshot of the view
	// the deletion was served against, captured inside the commit — so a
	// server composing a response never pairs this report with a LATER
	// generation's view size. Filled by the prepared-view engine
	// (internal/engine); zero for the one-shot router below, which has no
	// generation to report.
	ViewSize   int
	Generation int64
}

// Delete removes the target tuple from the view Q(S) by deleting source
// tuples, minimizing the requested objective. The algorithm is chosen by
// the dichotomy:
//
//   - SPU queries use the unique-solution algorithms of Theorems 2.3/2.8;
//   - SJ queries use the single-witness algorithms of Theorems 2.4/2.9;
//   - chain-join PJ queries minimizing source deletions use the min-cut
//     algorithm of Theorem 2.6;
//   - everything else uses the exact witness-based solvers (or greedy for
//     the source objective when opts.Greedy is set).
func Delete(q algebra.Query, db *relation.Database, target relation.Tuple, obj Objective, opts DeleteOptions) (*DeleteReport, error) {
	ops := algebra.OperatorsOf(q)
	var problem algebra.Problem
	if obj == MinimizeViewSideEffects {
		problem = algebra.ProblemViewSideEffect
	} else {
		problem = algebra.ProblemSourceSideEffect
	}
	report := &DeleteReport{
		Class:    algebra.ClassifyOps(ops, problem),
		Fragment: algebra.Fragment(q),
	}

	isSPU := !ops.HasAny(algebra.OpJoin | algebra.OpRename)
	isSJ := !ops.HasAny(algebra.OpProject | algebra.OpUnion | algebra.OpRename)

	switch {
	case isSPU:
		res, err := deletion.ViewSPU(q, db, target)
		if err != nil {
			return nil, err
		}
		report.Algorithm = "SPU unique solution (Thm 2.3/2.8)"
		report.Result = res
		report.Exact = true

	case isSJ:
		res, err := deletion.ViewSJ(q, db, target)
		if err != nil {
			return nil, err
		}
		report.Algorithm = "SJ single witness (Thm 2.4/2.9)"
		report.Result = res
		report.Exact = true

	case obj == MinimizeSourceDeletions:
		if _, err := deletion.DetectChain(q, db); err == nil {
			res, cerr := deletion.SourceChainMinCut(q, db, target)
			if cerr != nil {
				return nil, cerr
			}
			report.Algorithm = "chain-join min cut (Thm 2.6)"
			report.Result = res
			report.Exact = true
			break
		}
		if opts.Greedy {
			res, err := deletion.SourceGreedy(q, db, target, opts.MaxWitnesses)
			if err != nil {
				return nil, err
			}
			report.Algorithm = "greedy hitting set (H_n-approx)"
			report.Result = &res.Result
			report.Exact = false
		} else {
			res, err := deletion.SourceExact(q, db, target, opts.MaxWitnesses)
			if err != nil {
				return nil, err
			}
			report.Algorithm = "exact minimum hitting set"
			report.Result = &res.Result
			report.Exact = true
		}

	default: // view objective, NP-hard class
		// The §2.1.1 remark: PJ queries joining on keys have unique
		// witnesses and the side-effect decision is polynomial. Try that
		// fast path before the exponential search.
		if keyed, kerr := deletion.KeyJoinCheck(q, db); kerr == nil && keyed {
			res, uerr := deletion.ViewUniqueWitness(q, db, target)
			if uerr != nil {
				return nil, uerr // only ErrNotInView once uniqueness holds
			}
			report.Algorithm = "unique-witness key join (§2.1.1 remark)"
			report.Result = res
			report.Exact = true
			break
		}
		res, err := deletion.ViewExact(q, db, target, deletion.ViewOptions{
			MaxWitnesses:  opts.MaxWitnesses,
			MaxCandidates: opts.MaxCandidates,
		})
		if err != nil {
			return nil, err
		}
		report.Algorithm = "exact minimal-hitting-set search"
		report.Result = &res.Result
		report.Exact = res.Exhausted
	}
	return report, nil
}

// AnnotateReport is the outcome of a routed annotation placement request.
type AnnotateReport struct {
	Class     algebra.Class
	Fragment  string
	Algorithm string
	Placement *annotation.Placement
}

// Annotate places an annotation on view location (target, attr) with
// minimal side-effects, routing by the §3.1 dichotomy: SPU queries use the
// scan algorithm of Theorem 3.3, join queries without projection use the
// component enumeration of Theorem 3.4, and PJ queries fall back to the
// exact candidate scan (worst-case exponential in query size, per Theorem
// 3.2).
func Annotate(q algebra.Query, db *relation.Database, target relation.Tuple, attr relation.Attribute) (*AnnotateReport, error) {
	ops := algebra.OperatorsOf(q)
	report := &AnnotateReport{
		Class:    algebra.ClassifyOps(ops, algebra.ProblemAnnotationPlacement),
		Fragment: algebra.Fragment(q),
	}
	switch {
	case !ops.HasAny(algebra.OpJoin | algebra.OpRename):
		p, err := annotation.PlaceSPU(q, db, target, attr)
		if err != nil {
			return nil, err
		}
		report.Algorithm = "SPU scan (Thm 3.3)"
		report.Placement = p
	case !ops.HasAny(algebra.OpProject):
		p, err := annotation.PlaceSJU(q, db, target, attr)
		if err != nil {
			return nil, err
		}
		report.Algorithm = "SJU component enumeration (Thm 3.4)"
		report.Placement = p
	default:
		p, err := annotation.Place(q, db, target, attr)
		if err != nil {
			return nil, err
		}
		report.Algorithm = "exact candidate scan"
		report.Placement = p
	}
	return report, nil
}

// TableRow is one line of a dichotomy table.
type TableRow struct {
	Fragment string
	Class    algebra.Class
}

// DichotomyTable returns the paper's table for the given problem, computed
// from the live classifier (not hard-coded) over representative queries of
// each fragment.
func DichotomyTable(p algebra.Problem) []TableRow {
	fragments := []struct {
		name string
		ops  algebra.Ops
	}{
		{"queries involving PJ", algebra.OpProject | algebra.OpJoin},
		{"queries involving JU", algebra.OpJoin | algebra.OpUnion},
		{"SPU", algebra.OpSelect | algebra.OpProject | algebra.OpUnion},
		{"SJ", algebra.OpSelect | algebra.OpJoin},
		{"SJU", algebra.OpSelect | algebra.OpJoin | algebra.OpUnion},
	}
	rows := make([]TableRow, 0, len(fragments))
	for _, f := range fragments {
		rows = append(rows, TableRow{
			Fragment: f.name,
			Class:    algebra.ClassifyOps(f.ops, p),
		})
	}
	return rows
}

// FormatTable renders a dichotomy table in the paper's layout.
func FormatTable(p algebra.Problem) string {
	out := fmt.Sprintf("%-24s %s\n", "Query class", p)
	for _, row := range DichotomyTable(p) {
		out += fmt.Sprintf("%-24s %s\n", row.Fragment, row.Class)
	}
	return out
}
