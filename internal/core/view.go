package core

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// View is a stateful convenience wrapper pairing a query with a source
// database: the object a downstream application holds. It lazily caches
// the evaluated view, the witness basis and the where-provenance, and
// invalidates the caches when the source changes through it.
type View struct {
	q  algebra.Query
	db *relation.Database

	view  *relation.Relation
	wit   *provenance.Result
	where *annotation.WhereView
}

// NewView validates the query against the database and returns the
// wrapper. The database is shared, not copied: mutations must go through
// Apply so caches stay coherent.
func NewView(q algebra.Query, db *relation.Database) (*View, error) {
	if err := algebra.Validate(q, db); err != nil {
		return nil, err
	}
	return &View{q: q, db: db}, nil
}

// Query returns the view definition.
func (v *View) Query() algebra.Query { return v.q }

// Database returns the underlying source database.
func (v *View) Database() *relation.Database { return v.db }

// Fragment names the query's operator fragment.
func (v *View) Fragment() string { return algebra.Fragment(v.q) }

// Eval returns the materialized view, computing it on first use.
func (v *View) Eval() (*relation.Relation, error) {
	if v.view == nil {
		view, err := algebra.Eval(v.q, v.db)
		if err != nil {
			return nil, err
		}
		v.view = view
	}
	return v.view, nil
}

// Witnesses returns the minimal witnesses of a view tuple, computing the
// basis on first use.
func (v *View) Witnesses(t relation.Tuple) ([]provenance.Witness, error) {
	if v.wit == nil {
		res, err := provenance.Compute(v.q, v.db)
		if err != nil {
			return nil, err
		}
		v.wit = res
	}
	return v.wit.Witnesses(t), nil
}

// WhereProvenance returns the source locations propagating to a view cell.
func (v *View) WhereProvenance(t relation.Tuple, attr relation.Attribute) ([]relation.Location, error) {
	if v.where == nil {
		wv, err := annotation.ComputeWhere(v.q, v.db)
		if err != nil {
			return nil, err
		}
		v.where = wv
	}
	return v.where.WhereOf(t, attr), nil
}

// Delete routes a deletion request and, when apply is true, applies the
// resulting source deletions to the database and invalidates caches.
func (v *View) Delete(target relation.Tuple, obj Objective, opts DeleteOptions, apply bool) (*DeleteReport, error) {
	rep, err := Delete(v.q, v.db, target, obj, opts)
	if err != nil {
		return nil, err
	}
	if apply {
		v.Apply(rep.Result.T)
	}
	return rep, nil
}

// Annotate routes an annotation placement request against the view.
func (v *View) Annotate(target relation.Tuple, attr relation.Attribute) (*AnnotateReport, error) {
	return Annotate(v.q, v.db, target, attr)
}

// Apply deletes the given source tuples from the underlying database and
// invalidates all caches.
func (v *View) Apply(T []relation.SourceTuple) {
	for _, st := range T {
		if r := v.db.Relation(st.Rel); r != nil {
			r.Delete(st.Tuple)
		}
	}
	v.Invalidate()
}

// Invalidate drops the cached evaluation and provenance structures; the
// next access recomputes them.
func (v *View) Invalidate() {
	v.view = nil
	v.wit = nil
	v.where = nil
}

// Contains reports whether the view currently contains t.
func (v *View) Contains(t relation.Tuple) (bool, error) {
	view, err := v.Eval()
	if err != nil {
		return false, err
	}
	return view.Contains(t), nil
}

// Len returns the current view cardinality.
func (v *View) Len() (int, error) {
	view, err := v.Eval()
	if err != nil {
		return 0, err
	}
	return view.Len(), nil
}

// Explain renders a deletion report for humans: the chosen tuples, the
// algorithm and class, and the witnesses of the target it destroyed.
func (v *View) Explain(target relation.Tuple, rep *DeleteReport) (string, error) {
	ws, err := v.Witnesses(target)
	out := fmt.Sprintf("delete %v from the view (%s, %s)\n", target, rep.Fragment, rep.Class)
	out += fmt.Sprintf("algorithm: %s (exact: %v)\n", rep.Algorithm, rep.Exact)
	if err == nil && len(ws) > 0 {
		out += fmt.Sprintf("the target has %d witness(es); all are destroyed:\n", len(ws))
		for _, w := range ws {
			out += fmt.Sprintf("  %v\n", w)
		}
	}
	out += fmt.Sprintf("source deletions (%d):\n", len(rep.Result.T))
	for _, st := range rep.Result.T {
		out += fmt.Sprintf("  - %v\n", st)
	}
	if rep.Result.SideEffectFree() {
		out += "no view side-effects\n"
	} else {
		out += fmt.Sprintf("view side-effects (%d):\n", len(rep.Result.SideEffects))
		for _, t := range rep.Result.SideEffects {
			out += fmt.Sprintf("  - also lose %v\n", t)
		}
	}
	return out, nil
}
