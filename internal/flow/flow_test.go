package flow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMaxFlowLine(t *testing.T) {
	g := NewGraph()
	s := g.AddNode()
	a := g.AddNode()
	tt := g.AddNode()
	g.AddEdge(s, a, 3, 0)
	g.AddEdge(a, tt, 2, 1)
	if f := g.MaxFlow(s, tt); f != 2 {
		t.Errorf("MaxFlow=%d want 2", f)
	}
	cut := g.MinCut(s)
	if len(cut) != 1 || cut[0] != 1 {
		t.Errorf("MinCut=%v want [1]", cut)
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	g := NewGraph()
	s := g.AddNode()
	a := g.AddNode()
	b := g.AddNode()
	tt := g.AddNode()
	g.AddEdge(s, a, 1, 0)
	g.AddEdge(s, b, 1, 1)
	g.AddEdge(a, tt, 1, 2)
	g.AddEdge(b, tt, 1, 3)
	if f := g.MaxFlow(s, tt); f != 2 {
		t.Errorf("MaxFlow=%d want 2", f)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style example with a known value of 23... use a smaller known one:
	// s->a:10 s->b:10 a->b:2 a->t:4 b->t:9  => max flow 13.
	g := NewGraph()
	s := g.AddNode()
	a := g.AddNode()
	b := g.AddNode()
	tt := g.AddNode()
	g.AddEdge(s, a, 10, 0)
	g.AddEdge(s, b, 10, 1)
	g.AddEdge(a, b, 2, 2)
	g.AddEdge(a, tt, 4, 3)
	g.AddEdge(b, tt, 9, 4)
	if f := g.MaxFlow(s, tt); f != 13 {
		t.Errorf("MaxFlow=%d want 13", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph()
	s := g.AddNode()
	tt := g.AddNode()
	if f := g.MaxFlow(s, tt); f != 0 {
		t.Errorf("MaxFlow=%d want 0", f)
	}
	if cut := g.MinCut(s); len(cut) != 0 {
		t.Errorf("MinCut=%v want empty", cut)
	}
}

func TestMaxFlowSelfSourceSink(t *testing.T) {
	g := NewGraph()
	s := g.AddNode()
	if f := g.MaxFlow(s, s); f != 0 {
		t.Errorf("MaxFlow(s,s)=%d", f)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	g.AddNode()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range edge must panic")
		}
	}()
	g.AddEdge(0, 5, 1, 0)
}

func TestMinCutSeparates(t *testing.T) {
	// Two parallel 2-hop paths; cutting must pick one unit edge per path.
	g := NewGraph()
	s := g.AddNode()
	a := g.AddNode()
	b := g.AddNode()
	tt := g.AddNode()
	g.AddEdge(s, a, Inf, -1)
	g.AddEdge(s, b, Inf, -1)
	g.AddEdge(a, tt, 1, 10)
	g.AddEdge(b, tt, 1, 11)
	f := g.MaxFlow(s, tt)
	cut := g.MinCut(s)
	if f != 2 || len(cut) != 2 {
		t.Errorf("flow=%d cut=%v", f, cut)
	}
}

func TestVertexCutNetworkSinglePath(t *testing.T) {
	n := NewVertexCutNetwork()
	v0 := n.AddVertex()
	v1 := n.AddVertex()
	n.ConnectSource(v0)
	n.Connect(v0, v1)
	n.ConnectSink(v1)
	size, cut := n.Solve()
	if size != 1 || len(cut) != 1 {
		t.Errorf("size=%d cut=%v want single vertex", size, cut)
	}
}

func TestVertexCutNetworkTwoDisjointPaths(t *testing.T) {
	n := NewVertexCutNetwork()
	a0, a1 := n.AddVertex(), n.AddVertex()
	b0, b1 := n.AddVertex(), n.AddVertex()
	n.ConnectSource(a0)
	n.Connect(a0, a1)
	n.ConnectSink(a1)
	n.ConnectSource(b0)
	n.Connect(b0, b1)
	n.ConnectSink(b1)
	size, cut := n.Solve()
	if size != 2 || len(cut) != 2 {
		t.Errorf("size=%d cut=%v want 2 vertices", size, cut)
	}
}

func TestVertexCutNetworkSharedVertex(t *testing.T) {
	// Two paths share a middle vertex: cutting it alone suffices.
	n := NewVertexCutNetwork()
	a := n.AddVertex()
	mid := n.AddVertex()
	b := n.AddVertex()
	n.ConnectSource(a)
	n.ConnectSource(b)
	n.Connect(a, mid)
	n.Connect(b, mid)
	n.ConnectSink(mid)
	size, cut := n.Solve()
	if size != 1 || len(cut) != 1 || cut[0] != mid {
		t.Errorf("size=%d cut=%v want just the shared vertex %d", size, cut, mid)
	}
}

func TestAddNodes(t *testing.T) {
	g := NewGraph()
	first := g.AddNodes(5)
	if first != 0 || g.NumNodes() != 5 {
		t.Errorf("AddNodes: first=%d n=%d", first, g.NumNodes())
	}
	second := g.AddNodes(3)
	if second != 5 || g.NumNodes() != 8 {
		t.Errorf("AddNodes: second=%d n=%d", second, g.NumNodes())
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	g := NewGraph()
	g.AddNodes(2)
	defer func() {
		if recover() == nil {
			t.Error("negative capacity must panic")
		}
	}()
	g.AddEdge(0, 1, -1, 0)
}

func TestParallelEdgesAccumulate(t *testing.T) {
	g := NewGraph()
	s := g.AddNode()
	tt := g.AddNode()
	g.AddEdge(s, tt, 2, 0)
	g.AddEdge(s, tt, 3, 1)
	if f := g.MaxFlow(s, tt); f != 5 {
		t.Errorf("parallel edges: flow=%d want 5", f)
	}
}

func TestMaxFlowWithBackEdges(t *testing.T) {
	// Classic augmenting-path trap: flow must reroute through the middle
	// edge. s->a:1 s->b:1 a->b:1 a->t:1 b->t:1 — max flow 2.
	g := NewGraph()
	s := g.AddNode()
	a := g.AddNode()
	b := g.AddNode()
	tt := g.AddNode()
	g.AddEdge(s, a, 1, 0)
	g.AddEdge(s, b, 1, 1)
	g.AddEdge(a, b, 1, 2)
	g.AddEdge(a, tt, 1, 3)
	g.AddEdge(b, tt, 1, 4)
	if f := g.MaxFlow(s, tt); f != 2 {
		t.Errorf("flow=%d want 2", f)
	}
}

// bruteMinVertexCut finds the smallest vertex subset whose removal
// disconnects s from t in a layered DAG, by enumeration.
func bruteMinVertexCut(numV int, sources, sinks []int, edges [][2]int) int {
	isSource := make([]bool, numV)
	isSink := make([]bool, numV)
	for _, v := range sources {
		isSource[v] = true
	}
	for _, v := range sinks {
		isSink[v] = true
	}
	adj := make([][]int, numV)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	connected := func(removed int) bool {
		var stack []int
		seen := make([]bool, numV)
		for v := 0; v < numV; v++ {
			if isSource[v] && removed&(1<<v) == 0 {
				stack = append(stack, v)
				seen[v] = true
			}
		}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if isSink[u] {
				return true
			}
			for _, w := range adj[u] {
				if removed&(1<<w) == 0 && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return false
	}
	best := numV + 1
	for mask := 0; mask < 1<<numV; mask++ {
		k := 0
		for v := 0; v < numV; v++ {
			if mask&(1<<v) != 0 {
				k++
			}
		}
		if k < best && !connected(mask) {
			best = k
		}
	}
	return best
}

// Property: the vertex-cut network matches brute force on random small
// layered DAGs, and the reported cut really disconnects.
func TestVertexCutQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		layers := 2 + r.Intn(3)
		perLayer := 1 + r.Intn(3)
		numV := layers * perLayer
		n := NewVertexCutNetwork()
		for i := 0; i < numV; i++ {
			n.AddVertex()
		}
		var sources, sinks []int
		var edges [][2]int
		for v := 0; v < perLayer; v++ {
			sources = append(sources, v)
			n.ConnectSource(v)
		}
		for v := (layers - 1) * perLayer; v < numV; v++ {
			sinks = append(sinks, v)
			n.ConnectSink(v)
		}
		for l := 0; l+1 < layers; l++ {
			anyEdge := false
			for u := l * perLayer; u < (l+1)*perLayer; u++ {
				for v := (l + 1) * perLayer; v < (l+2)*perLayer; v++ {
					if r.Intn(2) == 0 {
						n.Connect(u, v)
						edges = append(edges, [2]int{u, v})
						anyEdge = true
					}
				}
			}
			if !anyEdge {
				// Keep the graph connected layer to layer so the brute
				// force and network agree on structure.
				u := l*perLayer + r.Intn(perLayer)
				v := (l+1)*perLayer + r.Intn(perLayer)
				n.Connect(u, v)
				edges = append(edges, [2]int{u, v})
			}
		}
		size, cut := n.Solve()
		want := bruteMinVertexCut(numV, sources, sinks, edges)
		if int(size) != want {
			t.Logf("network cut=%d brute=%d (layers=%d per=%d edges=%v)", size, want, layers, perLayer, edges)
			return false
		}
		if len(cut) != int(size) {
			t.Logf("cut size %d != flow %d", len(cut), size)
			return false
		}
		// Removing the cut must disconnect.
		removed := 0
		for _, v := range cut {
			removed |= 1 << v
		}
		adjCheck := func() bool {
			isSource := make([]bool, numV)
			isSink := make([]bool, numV)
			for _, v := range sources {
				isSource[v] = true
			}
			for _, v := range sinks {
				isSink[v] = true
			}
			adj := make([][]int, numV)
			for _, e := range edges {
				adj[e[0]] = append(adj[e[0]], e[1])
			}
			var stack []int
			seen := make([]bool, numV)
			for v := 0; v < numV; v++ {
				if isSource[v] && removed&(1<<v) == 0 {
					stack = append(stack, v)
					seen[v] = true
				}
			}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if isSink[u] {
					return true
				}
				for _, w := range adj[u] {
					if removed&(1<<w) == 0 && !seen[w] {
						seen[w] = true
						stack = append(stack, w)
					}
				}
			}
			return false
		}
		if adjCheck() {
			t.Logf("cut %v does not disconnect", cut)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
