// Package flow implements max-flow / min-cut on directed graphs with
// Dinic's algorithm, plus the node-split construction used by Theorem 2.6:
// the chain-join source side-effect problem reduces to a minimum vertex
// cut in a layered witness network, which node splitting turns into an
// edge min-cut.
package flow

import (
	"fmt"
	"math"
)

// Inf is the capacity used for uncuttable edges.
const Inf = int64(math.MaxInt64) / 4

// Graph is a directed graph with integer capacities, built once and then
// solved. Nodes are dense integers from AddNode.
type Graph struct {
	n     int
	edges []edge
	adj   [][]int // node -> indices into edges
}

type edge struct {
	to, rev int   // head node; index of reverse edge in adj[to]
	cap     int64 // residual capacity
	initial int64 // original capacity (for cut reporting)
	id      int   // user edge id (-1 for reverse edges)
}

// NewGraph creates an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode allocates a new node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddNodes allocates k nodes and returns the index of the first.
func (g *Graph) AddNodes(k int) int {
	first := g.n
	for i := 0; i < k; i++ {
		g.AddNode()
	}
	return first
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and user id,
// returning the id. Ids let callers map cut edges back to domain objects.
func (g *Graph) AddEdge(u, v int, capacity int64, id int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("flow: edge %d->%d outside graph of %d nodes", u, v, g.n))
	}
	if capacity < 0 {
		panic("flow: negative capacity")
	}
	g.adj[u] = append(g.adj[u], len(g.edges))
	g.edges = append(g.edges, edge{to: v, rev: len(g.adj[v]), cap: capacity, initial: capacity, id: id})
	g.adj[v] = append(g.adj[v], len(g.edges))
	g.edges = append(g.edges, edge{to: u, rev: len(g.adj[u]) - 1, cap: 0, initial: 0, id: -1})
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm. The graph
// is consumed: residual capacities reflect the flow afterwards, which is
// what MinCut reads.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, s)
		level[s] = 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, ei := range g.adj[u] {
				e := &g.edges[ei]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, f int64) int64
	dfs = func(u int, f int64) int64 {
		if u == t {
			return f
		}
		for ; iter[u] < len(g.adj[u]); iter[u]++ {
			ei := g.adj[u][iter[u]]
			e := &g.edges[ei]
			if e.cap <= 0 || level[e.to] != level[u]+1 {
				continue
			}
			pushed := f
			if e.cap < pushed {
				pushed = e.cap
			}
			got := dfs(e.to, pushed)
			if got > 0 {
				e.cap -= got
				g.reverse(ei).cap += got
				return got
			}
		}
		return 0
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, Inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

func (g *Graph) reverse(ei int) *edge {
	e := g.edges[ei]
	return &g.edges[g.adj[e.to][e.rev]]
}

// MinCut returns the user ids of the saturated edges crossing the minimum
// s-t cut, after MaxFlow has run: edges u→v with u reachable from s in the
// residual graph and v not. Reverse edges (id -1) never appear.
func (g *Graph) MinCut(s int) []int {
	reach := g.residualReachable(s)
	var ids []int
	for u := 0; u < g.n; u++ {
		if !reach[u] {
			continue
		}
		for _, ei := range g.adj[u] {
			e := g.edges[ei]
			if e.id >= 0 && !reach[e.to] && e.initial > 0 {
				ids = append(ids, e.id)
			}
		}
	}
	return ids
}

func (g *Graph) residualReachable(s int) []bool {
	reach := make([]bool, g.n)
	stack := []int{s}
	reach[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range g.adj[u] {
			e := g.edges[ei]
			if e.cap > 0 && !reach[e.to] {
				reach[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return reach
}

// VertexCutNetwork builds the node-split network of Theorem 2.6's proof: a
// layered graph whose internal vertices each carry unit capacity (split
// into v_in→v_out) while layer-to-layer edges are infinite. Use AddLayer,
// Connect, then Solve.
type VertexCutNetwork struct {
	g           *Graph
	s, t        int
	inNode      []int // per vertex
	outNode     []int
	numVertices int
}

// NewVertexCutNetwork creates a network with source and sink.
func NewVertexCutNetwork() *VertexCutNetwork {
	g := NewGraph()
	return &VertexCutNetwork{g: g, s: g.AddNode(), t: g.AddNode()}
}

// AddVertex adds a unit-capacity vertex and returns its index (also its
// cut id).
func (n *VertexCutNetwork) AddVertex() int {
	id := n.numVertices
	in := n.g.AddNode()
	out := n.g.AddNode()
	n.inNode = append(n.inNode, in)
	n.outNode = append(n.outNode, out)
	n.g.AddEdge(in, out, 1, id)
	n.numVertices++
	return id
}

// ConnectSource wires the source to vertex v.
func (n *VertexCutNetwork) ConnectSource(v int) { n.g.AddEdge(n.s, n.inNode[v], Inf, -1) }

// ConnectSink wires vertex v to the sink.
func (n *VertexCutNetwork) ConnectSink(v int) { n.g.AddEdge(n.outNode[v], n.t, Inf, -1) }

// Connect wires vertex u to vertex v (u's out to v's in, infinite
// capacity).
func (n *VertexCutNetwork) Connect(u, v int) { n.g.AddEdge(n.outNode[u], n.inNode[v], Inf, -1) }

// Solve returns the minimum vertex cut: its size and the vertex indices to
// remove so that no s-t path survives.
func (n *VertexCutNetwork) Solve() (int64, []int) {
	f := n.g.MaxFlow(n.s, n.t)
	return f, n.g.MinCut(n.s)
}
