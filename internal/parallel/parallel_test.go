package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]atomic.Int64, n)
		For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d ran %d times, want 1", n, i, got)
			}
		}
	}
}

func TestForInlinesOnSingleProc(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	// With one proc the loop must run on the calling goroutine in order —
	// observable as strictly ascending indexes without synchronization.
	var mu sync.Mutex
	var seen []int
	For(100, func(i int) { mu.Lock(); seen = append(seen, i); mu.Unlock() })
	for i, v := range seen {
		if v != i {
			t.Fatalf("inline order broken at %d: got %d", i, v)
		}
	}
}

func TestHashMatchesFNV1a(t *testing.T) {
	// Spot-check the FNV-1a constants: offset basis for "", and a couple of
	// published vectors.
	cases := map[string]uint32{
		"":  2166136261,
		"a": 0xe40c292c,
		"b": 0xe70c2de5,
	}
	for k, want := range cases {
		if got := Hash(k); got != want {
			t.Fatalf("Hash(%q) = %#x, want %#x", k, got, want)
		}
	}
}

func TestNewBudgetSerialIsNil(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if b := NewBudget(w); b != nil {
			t.Fatalf("NewBudget(%d) = %v, want nil", w, b)
		}
	}
	if b := NewBudget(4); b == nil || b.Width() != 4 {
		t.Fatalf("NewBudget(4).Width() = %d, want 4", b.Width())
	}
}

func TestNilBudgetInlines(t *testing.T) {
	var b *Budget
	var mu sync.Mutex
	var seen []int
	b.For(10, func(i int) { mu.Lock(); seen = append(seen, i); mu.Unlock() })
	for i, v := range seen {
		if v != i {
			t.Fatalf("nil budget must inline in order; index %d got %d", i, v)
		}
	}
	if b.Width() != 1 {
		t.Fatalf("nil budget Width = %d, want 1", b.Width())
	}
	seen = seen[:0]
	b.ForKeyed(10, 1, func(i int) string { return "k" }, func(i int) { mu.Lock(); seen = append(seen, i); mu.Unlock() })
	if len(seen) != 10 {
		t.Fatalf("nil budget ForKeyed covered %d indexes, want 10", len(seen))
	}
}

func TestBudgetForCoversAndRestoresTokens(t *testing.T) {
	b := NewBudget(8)
	hits := make([]atomic.Int64, 500)
	b.For(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
	if b.Width() != 8 {
		t.Fatalf("tokens not restored after For: Width = %d, want 8", b.Width())
	}
}

func TestBudgetBoundsNestedFanOut(t *testing.T) {
	// 3 workers = caller + 2 tokens. Nested For calls may only ever have 3
	// goroutines inside fn at once, however the outer/inner calls race for
	// tokens.
	b := NewBudget(3)
	var cur, peak atomic.Int64
	enter := func() {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
	}
	b.For(8, func(i int) {
		b.For(16, func(j int) {
			enter()
			cur.Add(-1)
		})
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("nested fan-out reached %d concurrent workers, budget allows 3", p)
	}
	if b.Width() != 3 {
		t.Fatalf("tokens leaked: Width = %d, want 3", b.Width())
	}
}

func TestForKeyedPartitionsByKeyAndCoversAll(t *testing.T) {
	b := NewBudget(4)
	n := 200
	keys := make([]string, n)
	for i := range keys {
		keys[i] = string(rune('a' + i%7))
	}
	hits := make([]atomic.Int64, n)
	// Stamp each index from a global counter: one partition goroutine runs
	// its indexes in ascending order, and same key ⇒ same partition, so
	// per-key stamps must increase with index.
	stamps := make([]int64, n)
	var clock atomic.Int64
	b.ForKeyed(n, 1, func(i int) string { return keys[i] }, func(i int) {
		hits[i].Add(1)
		stamps[i] = clock.Add(1)
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
	last := make(map[string]int64)
	for i := 0; i < n; i++ {
		if prev, ok := last[keys[i]]; ok && stamps[i] <= prev {
			t.Fatalf("key %q: index %d stamped %d, before its predecessor's %d — same-key indexes must run in order on one goroutine", keys[i], i, stamps[i], prev)
		}
		last[keys[i]] = stamps[i]
	}
}

func TestForKeyedInlinesBelowMin(t *testing.T) {
	b := NewBudget(8)
	var mu sync.Mutex
	var seen []int // appended in call order; the assertions below need inline execution
	b.ForKeyed(9, 10, func(i int) string { return "x" }, func(i int) { mu.Lock(); seen = append(seen, i); mu.Unlock() })
	for i, v := range seen {
		if v != i {
			t.Fatalf("ForKeyed below min must inline in order; index %d got %d", i, v)
		}
	}
	if len(seen) != 9 {
		t.Fatalf("covered %d indexes, want 9", len(seen))
	}
}
