// Package parallel is the shared intra-process worker-pool primitive the
// store and the view-maintenance layers fan out on. It grew out of
// relation's private parallelFor when PR 9 parallelized per-view
// maintenance: the provenance tree and the where-index needed the same
// work-stealing loop the segmented source store already used, and
// importing relation sideways from provenance would have inverted the
// layering. The package has three pieces:
//
//   - For: the unbudgeted work-stealing loop (the promoted parallelFor),
//     bounded by GOMAXPROCS. The segmented store's scatter paths use it
//     directly.
//   - Budget: a token pool bounding TOTAL extra goroutines across nested
//     fan-outs. View maintenance nests (sibling subtrees each partitioning
//     their candidate lists), and the engine already fans out across
//     views, so a per-call GOMAXPROCS bound would oversubscribe
//     multiplicatively; a Budget is acquired once per maintenance pass and
//     threaded through the tree walk, so across-view × intra-view never
//     exceeds the configured worker count.
//   - Hash: the 32-bit FNV-1a key hash the store partitions segments by,
//     exported so delta partitioning uses the SAME function — a tuple's
//     maintenance partition matches its storage segment.
//
// Determinism contract: For/Budget.For/ForKeyed run fn over a fixed index
// range with results landing in caller-owned per-index slots, so the
// outcome is independent of worker count and schedule; only the execution
// interleaving varies. Callers that need ordered output gather the slots
// serially afterwards.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Hash is 32-bit FNV-1a — the partition function shared by the segmented
// source store and the maintenance delta partitioning. Inlined rather than
// hash/fnv to avoid a Writer allocation per key on the hot path.
//
// propview:deterministic
func Hash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// For runs fn over 0..n-1 across min(n, GOMAXPROCS) goroutines pulling
// indexes from a shared work-stealing counter, so uneven per-index cost
// (one segment folding while its neighbors derive a one-key layer)
// balances itself. GOMAXPROCS is read at call time, not process start, so
// benchmark -cpu sweeps change the fan-out. Inlines when a single worker
// would run — the scatter/gather paths cost nothing extra on GOMAXPROCS=1.
//
// propview:fanout
// propview:deterministic
func For(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	run(n, workers, fn)
}

// run executes the work-stealing loop: workers-1 spawned goroutines plus
// the calling goroutine all pull indexes from one atomic counter, and the
// caller Waits for the spawned ones before returning (the join proof —
// no goroutine outlives the call).
func run(n, workers int, fn func(int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	// The caller participates too: a Budget.For with zero free tokens
	// degrades to this inline loop, costing nothing over serial code.
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}

// Budget is a token pool bounding the total number of EXTRA goroutines a
// tree of nested fan-outs may hold live at once. Each For call tries to
// acquire up to n-1 tokens, spawns that many workers (the caller is always
// the +1), and returns the tokens when the call joins; a call finding the
// pool empty runs inline. So a Budget of w-1 tokens never has more than w
// goroutines working, no matter how the fan-outs nest — the engine hands
// each view's maintenance pass a budget sized so that across-view ×
// intra-view stays within Options.Workers.
//
// A nil *Budget is valid and means "serial": every method inlines. That is
// the workers<=1 representation, so maintenance code threads one pointer
// unconditionally instead of branching on a worker count.
type Budget struct {
	// tokens is the number of extra goroutines still available.
	// guarded-by: atomic
	tokens atomic.Int64
	limit  int64 // tokens at construction, for Width
}

// NewBudget returns a pool admitting workers-1 extra goroutines, or nil
// (the serial budget) when workers <= 1.
func NewBudget(workers int) *Budget {
	if workers <= 1 {
		return nil
	}
	b := &Budget{limit: int64(workers - 1)}
	b.tokens.Store(b.limit)
	return b
}

// Width is the advisory current parallel width: 1 (the caller) plus the
// free tokens. Partition counts are sized by it; correctness never
// depends on it (slot-array gathers are width-independent).
func (b *Budget) Width() int {
	if b == nil {
		return 1
	}
	return 1 + int(b.tokens.Load())
}

// acquire takes up to want tokens, returning how many it got (possibly 0).
func (b *Budget) acquire(want int64) int64 {
	for {
		free := b.tokens.Load()
		if free <= 0 {
			return 0
		}
		got := want
		if got > free {
			got = free
		}
		if b.tokens.CompareAndSwap(free, free-got) {
			return got
		}
	}
}

// release returns tokens to the pool.
func (b *Budget) release(got int64) {
	if got > 0 {
		b.tokens.Add(got)
	}
}

// For runs fn over 0..n-1 on the caller plus up to n-1 borrowed workers,
// joining them all (and returning the tokens) before it returns. With a
// nil receiver, or when the pool is empty, it is exactly the inline loop —
// same calls, same order.
//
// propview:fanout
// propview:deterministic
func (b *Budget) For(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if b == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	got := b.acquire(int64(n - 1))
	defer b.release(got)
	run(n, 1+int(got), fn)
}

// ForKeyed runs eval over 0..n-1 with indexes partitioned by Hash(key(i)):
// one partition is one work unit, so all indexes sharing a partition run
// on one goroutine in ascending order, and min is the delta size below
// which the call inlines (partitioning overhead isn't worth it for tiny
// deltas). eval must write only per-index state (slot arrays); the gather
// runs serially in the caller afterwards, which is what makes results
// byte-identical at any width. Keyed partitioning rather than plain For
// keeps every index of one key's partition on one goroutine — the same
// discipline the segmented store uses, with the same hash, so a tuple's
// maintenance partition matches its storage segment.
//
// propview:fanout
// propview:deterministic
func (b *Budget) ForKeyed(n, min int, key func(int) string, eval func(int)) {
	p := b.Width()
	if n < min || p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			eval(i)
		}
		return
	}
	if p > n {
		p = n
	}
	parts := make([][]int, p)
	for i := 0; i < n; i++ {
		s := int(Hash(key(i)) % uint32(p))
		parts[s] = append(parts[s], i)
	}
	b.For(p, func(s int) {
		for _, i := range parts[s] {
			eval(i)
		}
	})
}
