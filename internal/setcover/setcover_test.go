package setcover

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(3, []int{0, 3}); err == nil {
		t.Error("out-of-universe element must error")
	}
	in, err := NewInstance(3, []int{0, 1, 1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Sets[0]) != 2 {
		t.Error("duplicate elements must dedup")
	}
}

func TestCoverable(t *testing.T) {
	if !MustInstance(2, []int{0}, []int{1}).Coverable() {
		t.Error("coverable instance misreported")
	}
	if MustInstance(2, []int{0}).Coverable() {
		t.Error("uncoverable instance misreported")
	}
}

func TestIsCoverIsHittingSet(t *testing.T) {
	in := MustInstance(3, []int{0, 1}, []int{1, 2}, []int{2})
	if !in.IsCover([]int{0, 1}) {
		t.Error("{S0,S1} covers {0,1,2}")
	}
	if in.IsCover([]int{0}) {
		t.Error("{S0} does not cover")
	}
	if in.IsCover([]int{99}) {
		t.Error("invalid index must not count as cover")
	}
	if !in.IsHittingSet([]int{1, 2}) {
		t.Error("{1,2} hits all sets")
	}
	if in.IsHittingSet([]int{0}) {
		t.Error("{0} misses S2 and S1... wait S1={1,2}; {0} misses it")
	}
}

func TestGreedyCoverSimple(t *testing.T) {
	in := MustInstance(4, []int{0, 1, 2}, []int{0}, []int{3})
	chosen, err := GreedyCover(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(chosen) {
		t.Errorf("greedy result %v is not a cover", chosen)
	}
	if len(chosen) != 2 {
		t.Errorf("greedy picked %d sets, want 2", len(chosen))
	}
}

func TestGreedyCoverInfeasible(t *testing.T) {
	in := MustInstance(2, []int{0})
	if _, err := GreedyCover(in); err == nil {
		t.Error("uncoverable instance must error")
	}
}

func TestExactCoverOptimal(t *testing.T) {
	// Classic greedy-trap: greedy takes the big set then needs 2 more;
	// optimum is the two disjoint sets.
	in := MustInstance(6,
		[]int{0, 1, 2, 3}, // greedy bait
		[]int{0, 1, 4},
		[]int{2, 3, 5},
	)
	exact, err := ExactCover(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 2 || !in.IsCover(exact) {
		t.Errorf("exact=%v want the two 3-element sets", exact)
	}
}

func TestHittingSetDuality(t *testing.T) {
	// Sets {0,1}, {1,2}: element 1 hits both.
	in := MustInstance(3, []int{0, 1}, []int{1, 2})
	hs, err := ExactHittingSet(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 || hs[0] != 1 {
		t.Errorf("ExactHittingSet=%v want [1]", hs)
	}
	ghs, err := GreedyHittingSet(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsHittingSet(ghs) {
		t.Errorf("greedy hitting set %v invalid", ghs)
	}
}

func TestHittingSetEmptySetInfeasible(t *testing.T) {
	in := MustInstance(2, []int{0}, nil)
	if _, err := GreedyHittingSet(in); err == nil {
		t.Error("empty set cannot be hit")
	}
	if _, err := ExactHittingSet(in); err == nil {
		t.Error("empty set cannot be hit (exact)")
	}
}

func TestHarmonicBound(t *testing.T) {
	if h := HarmonicBound(1); h != 1 {
		t.Errorf("H(1)=%v", h)
	}
	if h := HarmonicBound(3); h < 1.83 || h > 1.84 {
		t.Errorf("H(3)=%v want ~1.833", h)
	}
	if LogThreshold(1) != 0 {
		t.Error("LogThreshold(1) should be 0")
	}
}

// exactBrute is the oracle: smallest cover by subset enumeration.
func exactBrute(in *Instance) int {
	m := len(in.Sets)
	best := m + 1
	for mask := 0; mask < 1<<m; mask++ {
		var chosen []int
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				chosen = append(chosen, i)
			}
		}
		if len(chosen) < best && in.IsCover(chosen) {
			best = len(chosen)
		}
	}
	return best
}

// Property: on random coverable instances, ExactCover is optimal (matches
// brute force) and GreedyCover is within the H(n) bound of it.
func TestCoverQualityQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(6)
		sets := make([][]int, 0, m+n)
		for i := 0; i < m; i++ {
			var s []int
			for e := 0; e < n; e++ {
				if r.Intn(2) == 0 {
					s = append(s, e)
				}
			}
			sets = append(sets, s)
		}
		// Guarantee coverability with singletons.
		for e := 0; e < n; e++ {
			sets = append(sets, []int{e})
		}
		in := MustInstance(n, sets...)
		exact, err := ExactCover(in)
		if err != nil {
			return false
		}
		if !in.IsCover(exact) {
			return false
		}
		if len(exact) != exactBrute(in) {
			t.Logf("exact=%d brute=%d", len(exact), exactBrute(in))
			return false
		}
		greedy, err := GreedyCover(in)
		if err != nil || !in.IsCover(greedy) {
			return false
		}
		if float64(len(greedy)) > HarmonicBound(n)*float64(len(exact))+1e-9 {
			t.Logf("greedy=%d exceeds H(%d)*opt=%v", len(greedy), n, HarmonicBound(n)*float64(len(exact)))
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: hitting sets produced via the dual really hit, and the exact
// one is no larger than the greedy one.
func TestHittingSetQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(6)
		sets := make([][]int, m)
		for i := range sets {
			sets[i] = []int{r.Intn(n)} // non-empty guaranteed
			for e := 0; e < n; e++ {
				if r.Intn(3) == 0 {
					sets[i] = append(sets[i], e)
				}
			}
		}
		in := MustInstance(n, sets...)
		exact, err := ExactHittingSet(in)
		if err != nil {
			return false
		}
		greedy, err := GreedyHittingSet(in)
		if err != nil {
			return false
		}
		return in.IsHittingSet(exact) && in.IsHittingSet(greedy) && len(exact) <= len(greedy)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
