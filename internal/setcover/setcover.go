// Package setcover implements the set cover and hitting set problems: the
// greedy H_n-approximation and an exact branch-and-bound solver. The
// paper's source side-effect hardness results (Theorems 2.5 and 2.7) are
// approximation-preserving reductions from hitting set, which is the dual
// of set cover and shares its Θ(log n) approximability threshold (Feige).
package setcover

import (
	"fmt"
	"math"
	"sort"
)

// Instance is a set system: Sets[i] lists the elements (0-based) of the
// i-th set; Universe is the number of elements.
type Instance struct {
	Universe int
	Sets     [][]int
}

// NewInstance builds and validates an instance.
func NewInstance(universe int, sets ...[]int) (*Instance, error) {
	in := &Instance{Universe: universe}
	for i, s := range sets {
		for _, e := range s {
			if e < 0 || e >= universe {
				return nil, fmt.Errorf("setcover: set %d has element %d outside universe [0,%d)", i, e, universe)
			}
		}
		in.Sets = append(in.Sets, dedupInts(s))
	}
	return in, nil
}

// MustInstance is NewInstance but panics on invalid input.
func MustInstance(universe int, sets ...[]int) *Instance {
	in, err := NewInstance(universe, sets...)
	if err != nil {
		panic(err)
	}
	return in
}

func dedupInts(s []int) []int {
	m := make(map[int]bool, len(s))
	var out []int
	for _, e := range s {
		if !m[e] {
			m[e] = true
			out = append(out, e)
		}
	}
	sort.Ints(out)
	return out
}

// Coverable reports whether the union of all sets is the whole universe
// (a prerequisite for set cover feasibility).
func (in *Instance) Coverable() bool {
	covered := make([]bool, in.Universe)
	for _, s := range in.Sets {
		for _, e := range s {
			covered[e] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// IsCover reports whether the chosen set indices cover the universe.
func (in *Instance) IsCover(chosen []int) bool {
	covered := make([]bool, in.Universe)
	for _, i := range chosen {
		if i < 0 || i >= len(in.Sets) {
			return false
		}
		for _, e := range in.Sets[i] {
			covered[e] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// IsHittingSet reports whether the chosen elements intersect every set.
func (in *Instance) IsHittingSet(elements []int) bool {
	chosen := make(map[int]bool, len(elements))
	for _, e := range elements {
		chosen[e] = true
	}
	for _, s := range in.Sets {
		hit := false
		for _, e := range s {
			if chosen[e] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// GreedyCover runs the classical greedy algorithm: repeatedly pick the set
// covering the most uncovered elements. It guarantees a cover of cost at
// most H(n) · OPT and returns the chosen set indices in pick order, or an
// error if the instance is not coverable.
func GreedyCover(in *Instance) ([]int, error) {
	if !in.Coverable() {
		return nil, fmt.Errorf("setcover: instance not coverable")
	}
	covered := make([]bool, in.Universe)
	remaining := in.Universe
	var chosen []int
	used := make([]bool, len(in.Sets))
	for remaining > 0 {
		best, bestGain := -1, 0
		for i, s := range in.Sets {
			if used[i] {
				continue
			}
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("setcover: greedy stalled with %d uncovered", remaining)
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	return chosen, nil
}

// ExactCover finds a minimum set cover by branch and bound on the
// lowest-indexed uncovered element. Exponential in the worst case; meant
// for instances with tens of sets.
func ExactCover(in *Instance) ([]int, error) {
	if !in.Coverable() {
		return nil, fmt.Errorf("setcover: instance not coverable")
	}
	// coverers[e] lists sets containing element e.
	coverers := make([][]int, in.Universe)
	for i, s := range in.Sets {
		for _, e := range s {
			coverers[e] = append(coverers[e], i)
		}
	}
	greedy, err := GreedyCover(in)
	if err != nil {
		return nil, err
	}
	best := append([]int(nil), greedy...)
	var cur []int
	covered := make([]int, in.Universe) // coverage count
	remaining := in.Universe

	var take func(i int)
	var untake func(i int)
	take = func(i int) {
		cur = append(cur, i)
		for _, e := range in.Sets[i] {
			if covered[e] == 0 {
				remaining--
			}
			covered[e]++
		}
	}
	untake = func(i int) {
		cur = cur[:len(cur)-1]
		for _, e := range in.Sets[i] {
			covered[e]--
			if covered[e] == 0 {
				remaining++
			}
		}
	}

	var rec func()
	rec = func() {
		if len(cur) >= len(best) {
			return // cannot improve
		}
		if remaining == 0 {
			best = append([]int(nil), cur...)
			return
		}
		// Branch on the first uncovered element.
		e := -1
		for i := 0; i < in.Universe; i++ {
			if covered[i] == 0 {
				e = i
				break
			}
		}
		for _, i := range coverers[e] {
			take(i)
			rec()
			untake(i)
		}
	}
	rec()
	sort.Ints(best)
	return best, nil
}

// Dual converts between hitting set and set cover: the hitting set problem
// on in equals the set cover problem on the dual instance whose "sets" are
// the element-membership lists. Element e of in becomes dual set e; set i
// of in becomes dual element i.
func (in *Instance) Dual() *Instance {
	dual := &Instance{Universe: len(in.Sets)}
	member := make([][]int, in.Universe)
	for i, s := range in.Sets {
		for _, e := range s {
			member[e] = append(member[e], i)
		}
	}
	dual.Sets = member
	return dual
}

// GreedyHittingSet approximates minimum hitting set by running greedy
// cover on the dual. Returns chosen element indices.
func GreedyHittingSet(in *Instance) ([]int, error) {
	chosen, err := GreedyCover(in.Dual())
	if err != nil {
		return nil, fmt.Errorf("setcover: hitting set infeasible (some set is empty): %w", err)
	}
	sort.Ints(chosen)
	return chosen, nil
}

// ExactHittingSet finds a minimum hitting set via the dual.
func ExactHittingSet(in *Instance) ([]int, error) {
	chosen, err := ExactCover(in.Dual())
	if err != nil {
		return nil, fmt.Errorf("setcover: hitting set infeasible (some set is empty): %w", err)
	}
	sort.Ints(chosen)
	return chosen, nil
}

// HarmonicBound returns H(n) = 1 + 1/2 + ... + 1/n, the greedy
// approximation guarantee for a universe of size n.
func HarmonicBound(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1.0 / float64(i)
	}
	return h
}

// LogThreshold returns ln n, the Feige inapproximability threshold
// referenced in the paper (no polynomial algorithm achieves o(log n)
// unless NP ⊆ DTIME(n^{log log n})).
func LogThreshold(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log(float64(n))
}
