package deletion_test

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/deletion"
	"repro/internal/relation"
)

func exampleDB() *relation.Database {
	db := relation.NewDatabase()
	ug := relation.New("UserGroup", relation.NewSchema("user", "group"))
	ug.InsertStrings("john", "staff")
	ug.InsertStrings("john", "admin")
	ug.InsertStrings("mary", "admin")
	db.MustAdd(ug)
	gf := relation.New("GroupFile", relation.NewSchema("group", "file"))
	gf.InsertStrings("staff", "f1")
	gf.InsertStrings("admin", "f1")
	gf.InsertStrings("admin", "f2")
	db.MustAdd(gf)
	return db
}

// Deleting (john, f2) from Π_{user,file}(UserGroup ⋈ GroupFile): the
// exact solver finds the side-effect-free choice — drop john's admin
// membership; (john, f1) survives via staff.
func ExampleViewExact() {
	db := exampleDB()
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	res, _ := deletion.ViewExact(q, db, relation.StringTuple("john", "f2"), deletion.ViewOptions{})
	fmt.Println("delete:", res.T[0])
	fmt.Println("side-effect-free:", res.SideEffectFree())
	// Output:
	// delete: UserGroup(john, admin)
	// side-effect-free: true
}

// (john, f1) has two independent derivations, so the minimum source
// deletion needs two tuples — one per witness.
func ExampleSourceExact() {
	db := exampleDB()
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	res, _ := deletion.SourceExact(q, db, relation.StringTuple("john", "f1"), 0)
	fmt.Println("witnesses:", res.Witnesses)
	fmt.Println("deletions:", len(res.T))
	// Output:
	// witnesses: 2
	// deletions: 2
}
