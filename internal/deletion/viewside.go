package deletion

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// ViewSPU implements Theorem 2.3: for SPU queries the deletion problem has
// a unique minimal solution — delete every source tuple that satisfies a
// branch's selection and projects onto the target — and that solution is
// always side-effect-free. Linear passes over the source relations.
func ViewSPU(q algebra.Query, db *relation.Database, target relation.Tuple) (*Result, error) {
	ops := algebra.OperatorsOf(q)
	if ops.HasAny(algebra.OpJoin | algebra.OpRename) {
		return nil, &ErrClass{Want: "SPU", Got: ops}
	}
	// For SPU queries the lineage of the target is exactly the set of
	// tuples that individually (re)produce it, so all must go.
	lin, err := provenance.LineageOf(q, db, target)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotInView, err)
	}
	T := lin.Tuples()
	effects, gone, err := SideEffectsOf(q, db, T, target)
	if err != nil {
		return nil, err
	}
	if !gone {
		return nil, fmt.Errorf("deletion: ViewSPU failed to remove target %v", target)
	}
	return finishResult(T, effects), nil
}

// ViewSJ implements Theorem 2.4: for SJ queries every output tuple has a
// single witness with one component per joined relation; deleting the
// component with the fewest co-occurrences in other output tuples is
// optimal, and a side-effect-free deletion exists iff some component
// appears in no other output tuple. Polynomial time.
func ViewSJ(q algebra.Query, db *relation.Database, target relation.Tuple) (*Result, error) {
	ops := algebra.OperatorsOf(q)
	if ops.HasAny(algebra.OpProject | algebra.OpUnion) {
		return nil, &ErrClass{Want: "SJ", Got: ops}
	}
	res, err := provenance.Compute(q, db)
	if err != nil {
		return nil, err
	}
	ws := res.Witnesses(target)
	if len(ws) == 0 {
		return nil, ErrNotInView
	}
	if len(ws) != 1 {
		return nil, fmt.Errorf("deletion: SJ query has %d witnesses for %v, want 1", len(ws), target)
	}
	// For each component t.Ri, the side-effect of deleting it is the set
	// of other output tuples whose witness contains it.
	best := -1
	var bestComp relation.SourceTuple
	var bestEffects []relation.Tuple
	for _, comp := range ws[0].Tuples() {
		var effects []relation.Tuple
		for _, vt := range res.View.Tuples() {
			if vt.Equal(target) {
				continue
			}
			vws := res.Witnesses(vt)
			if len(vws) > 0 && vws[0].Contains(comp) {
				effects = append(effects, vt)
			}
		}
		if best < 0 || len(effects) < best {
			best = len(effects)
			bestComp = comp
			bestEffects = effects
		}
		if best == 0 {
			break
		}
	}
	return finishResult([]relation.SourceTuple{bestComp}, bestEffects), nil
}

// ViewOptions tunes the exact solver for the NP-hard classes.
type ViewOptions struct {
	// MaxWitnesses caps the per-tuple witness basis (0 = unlimited).
	MaxWitnesses int
	// MaxCandidates caps the number of minimal hitting sets explored
	// (0 = unlimited). When the cap is hit the result is the best found
	// so far and Result is still valid, but optimality is not guaranteed;
	// Exhausted on the result reports this.
	MaxCandidates int
}

// ViewExactResult extends Result with solver metadata.
type ViewExactResult struct {
	Result
	// Candidates is the number of minimal witness-hitting sets examined.
	Candidates int
	// Exhausted reports whether the search space was fully explored; if
	// false the result is the best found within the candidate cap.
	Exhausted bool
}

// ViewExact solves the view side-effect problem exactly for any monotone
// query, by enumerating the minimal hitting sets of the target's witness
// basis and scoring each by the view tuples it destroys. Monotonicity
// makes the optimum a minimal hitting set (deleting more source tuples
// never removes fewer view tuples), so the enumeration is complete.
// Worst-case exponential — Theorem 2.1/2.2 show this is unavoidable.
func ViewExact(q algebra.Query, db *relation.Database, target relation.Tuple, opt ViewOptions) (*ViewExactResult, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: opt.MaxWitnesses})
	if err != nil {
		return nil, err
	}
	return ViewExactBasis(res, target, opt)
}

// HasSideEffectFreeDeletion decides the §2.1 decision problem: is there a
// source deletion removing the target and nothing else from the view?
func HasSideEffectFreeDeletion(q algebra.Query, db *relation.Database, target relation.Tuple, opt ViewOptions) (bool, *ViewExactResult, error) {
	r, err := ViewExact(q, db, target, opt)
	if err != nil {
		return false, nil, err
	}
	return r.SideEffectFree(), r, nil
}

// enumerateMinimalHittingSets visits every minimal hitting set of the
// witness list (as sets of source tuples), calling consider for each; if
// consider returns false enumeration stops early and the function returns
// false. Duplicates are suppressed.
func enumerateMinimalHittingSets(ws []provenance.Witness, consider func([]relation.SourceTuple) bool) bool {
	seen := make(map[string]bool)
	var cur []relation.SourceTuple
	curKeys := make(map[string]bool)

	// isMinimal: every chosen element is the sole hitter of some witness.
	isMinimal := func() bool {
		for _, e := range cur {
			soleSomewhere := false
			for _, w := range ws {
				if !w.Contains(e) {
					continue
				}
				sole := true
				for _, f := range cur {
					if f.Key() != e.Key() && w.Contains(f) {
						sole = false
						break
					}
				}
				if sole {
					soleSomewhere = true
					break
				}
			}
			if !soleSomewhere {
				return false
			}
		}
		return true
	}

	canonical := func() string {
		keys := make([]string, len(cur))
		for i, e := range cur {
			keys[i] = e.Key()
		}
		sortStrings(keys)
		return joinStrings(keys)
	}

	var rec func() bool
	rec = func() bool {
		// Find the first witness not yet hit.
		var pending *provenance.Witness
		for i := range ws {
			hit := false
			for _, st := range ws[i].Tuples() {
				if curKeys[st.Key()] {
					hit = true
					break
				}
			}
			if !hit {
				pending = &ws[i]
				break
			}
		}
		if pending == nil {
			if !isMinimal() {
				return true
			}
			key := canonical()
			if seen[key] {
				return true
			}
			seen[key] = true
			return consider(cur)
		}
		for _, st := range pending.Tuples() {
			if curKeys[st.Key()] {
				continue
			}
			cur = append(cur, st)
			curKeys[st.Key()] = true
			ok := rec()
			cur = cur[:len(cur)-1]
			delete(curKeys, st.Key())
			if !ok {
				return false
			}
		}
		return true
	}
	return rec()
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func joinStrings(ss []string) string {
	n := 0
	for _, s := range ss {
		n += len(s) + 1
	}
	b := make([]byte, 0, n)
	for _, s := range ss {
		b = append(b, s...)
		b = append(b, 1)
	}
	return string(b)
}
