package deletion

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// chainDB builds a k-relation chain R1(A0,A1), R2(A1,A2), ..., Rk(Ak-1,Ak)
// with the given tuples per relation drawn from small domains.
func chainDB(r *rand.Rand, k, rows, domain int) (*relation.Database, algebra.Query) {
	db := relation.NewDatabase()
	var qs []algebra.Query
	for i := 1; i <= k; i++ {
		schema := relation.NewSchema("A"+strconv.Itoa(i-1), "A"+strconv.Itoa(i))
		rel := relation.New("R"+strconv.Itoa(i), schema)
		for j := 0; j < rows; j++ {
			rel.Insert(relation.NewTuple(
				relation.Int(int64(r.Intn(domain))),
				relation.Int(int64(r.Intn(domain)))))
		}
		db.MustAdd(rel)
		qs = append(qs, algebra.R(rel.Name()))
	}
	q := algebra.Pi([]relation.Attribute{"A0", "A" + strconv.Itoa(k)}, algebra.NatJoin(qs...))
	return db, q
}

func TestDetectChain(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db, q := chainDB(r, 3, 4, 3)
	info, err := DetectChain(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Relations) != 3 {
		t.Fatalf("chain length %d", len(info.Relations))
	}
	// Order must be R1,R2,R3 or reversed.
	if !(info.Relations[0] == "R1" && info.Relations[2] == "R3") &&
		!(info.Relations[0] == "R3" && info.Relations[2] == "R1") {
		t.Errorf("chain order %v", info.Relations)
	}
}

func TestDetectChainRejectsNonChain(t *testing.T) {
	db := relation.NewDatabase()
	db.MustAdd(relation.New("P", relation.NewSchema("A", "B")))
	db.MustAdd(relation.New("Q", relation.NewSchema("B", "C")))
	db.MustAdd(relation.New("S", relation.NewSchema("A", "C"))) // closes a cycle
	q := algebra.NatJoin(algebra.R("P"), algebra.R("Q"), algebra.R("S"))
	if _, err := DetectChain(q, db); err == nil {
		t.Error("triangle sharing graph must be rejected")
	}
	// Repeated relation.
	q2 := algebra.NatJoin(algebra.R("P"), algebra.R("P"))
	if _, err := DetectChain(q2, db); err == nil {
		t.Error("repeated relation must be rejected")
	}
	// Disconnected sharing graph (cross product in the middle).
	db2 := relation.NewDatabase()
	db2.MustAdd(relation.New("X", relation.NewSchema("A")))
	db2.MustAdd(relation.New("Y", relation.NewSchema("B")))
	db2.MustAdd(relation.New("Z", relation.NewSchema("C")))
	q3 := algebra.NatJoin(algebra.R("X"), algebra.R("Y"), algebra.R("Z"))
	if _, err := DetectChain(q3, db2); err == nil {
		t.Error("disconnected sharing graph must be rejected")
	}
}

func TestSourceChainMinCutSimple(t *testing.T) {
	db := relation.NewDatabase()
	r1 := relation.New("R1", relation.NewSchema("A0", "A1"))
	r1.InsertStrings("a", "m1")
	r1.InsertStrings("a", "m2")
	db.MustAdd(r1)
	r2 := relation.New("R2", relation.NewSchema("A1", "A2"))
	r2.InsertStrings("m1", "z")
	r2.InsertStrings("m2", "z")
	db.MustAdd(r2)
	q := algebra.Pi([]relation.Attribute{"A0", "A2"}, algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	// Two parallel paths a→m1→z and a→m2→z: the cut needs 2 deletions.
	res, err := SourceChainMinCut(q, db, relation.StringTuple("a", "z"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 2 {
		t.Errorf("cut size %d want 2: %v", len(res.T), res.T)
	}
}

func TestSourceChainMinCutBottleneck(t *testing.T) {
	db := relation.NewDatabase()
	r1 := relation.New("R1", relation.NewSchema("A0", "A1"))
	r1.InsertStrings("a", "m1")
	r1.InsertStrings("a", "m2")
	db.MustAdd(r1)
	r2 := relation.New("R2", relation.NewSchema("A1", "A2"))
	r2.InsertStrings("m1", "w")
	r2.InsertStrings("m2", "w")
	db.MustAdd(r2)
	r3 := relation.New("R3", relation.NewSchema("A2", "A3"))
	r3.InsertStrings("w", "z")
	db.MustAdd(r3)
	q := algebra.Pi([]relation.Attribute{"A0", "A3"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2"), algebra.R("R3")))
	// All paths go through R3(w,z): the min cut is that single tuple.
	res, err := SourceChainMinCut(q, db, relation.StringTuple("a", "z"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 1 || res.T[0].Rel != "R3" {
		t.Errorf("cut=%v want the R3 bottleneck", res.T)
	}
}

func TestSourceChainSingleRelation(t *testing.T) {
	db := relation.NewDatabase()
	r1 := relation.New("R1", relation.NewSchema("A", "B"))
	r1.InsertStrings("a", "b1")
	r1.InsertStrings("a", "b2")
	r1.InsertStrings("c", "b1")
	db.MustAdd(r1)
	q := algebra.Pi([]relation.Attribute{"A"}, algebra.R("R1"))
	res, err := SourceChainMinCut(q, db, relation.StringTuple("a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 2 {
		t.Errorf("single-relation chain must delete all pre-images: %v", res.T)
	}
}

func TestSourceChainMissingTarget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	db, q := chainDB(r, 2, 3, 2)
	if _, err := SourceChainMinCut(q, db, relation.StringTuple("99", "99")); err == nil {
		t.Error("missing target must error")
	}
}

// Property (Theorem 2.6): the min-cut solution is optimal — it matches the
// generic exact hitting-set solver on random chains of length 2..4.
func TestChainMinCutOptimalQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		db, q := chainDB(r, k, 3+r.Intn(3), 2)
		view := algebra.MustEval(q, db)
		if view.Len() == 0 {
			return true
		}
		target := view.Tuples()[r.Intn(view.Len())]
		cut, err := SourceChainMinCut(q, db, target)
		if err != nil {
			t.Log(err)
			return false
		}
		exact, err := SourceExact(q, db, target, 0)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(cut.T) != len(exact.T) {
			t.Logf("min-cut=%d exact=%d (k=%d)\n%s", len(cut.T), len(exact.T), k, relation.WriteDatabaseString(db))
			return false
		}
		// And the cut must actually delete the target (checked inside
		// SourceChainMinCut, asserted again for paranoia).
		_, gone, err := SideEffectsOf(q, db, cut.T, target)
		return err == nil && gone
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
