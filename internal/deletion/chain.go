package deletion

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/flow"
	"repro/internal/relation"
)

// ChainInfo describes a recognized chain join: Π_B(R1 ⋈ R2 ⋈ ... ⋈ Rk)
// over distinct base relations where only consecutive relations share
// attributes (the definition before Theorem 2.6).
type ChainInfo struct {
	// Relations in chain order.
	Relations []string
	// ProjAttrs is the projection list (the view schema).
	ProjAttrs []relation.Attribute
}

// DetectChain checks whether q is a PJ chain-join query in normal form and
// returns the chain ordering. It returns an error otherwise.
func DetectChain(q algebra.Query, db *relation.Database) (*ChainInfo, error) {
	n := algebra.Normalize(q)
	var projAttrs []relation.Attribute
	body := n
	if p, ok := n.(algebra.Project); ok {
		projAttrs = p.Attrs
		body = p.Child
	}
	scans, err := flattenJoinScans(body)
	if err != nil {
		return nil, err
	}
	if projAttrs == nil {
		s, err := algebra.SchemaOf(body, db)
		if err != nil {
			return nil, err
		}
		projAttrs = s.Attrs()
	}
	// Distinct relations.
	seen := make(map[string]bool)
	schemas := make([]relation.Schema, len(scans))
	for i, name := range scans {
		if seen[name] {
			return nil, fmt.Errorf("deletion: chain join requires distinct relations; %q repeats", name)
		}
		seen[name] = true
		r := db.Relation(name)
		if r == nil {
			return nil, fmt.Errorf("deletion: unknown relation %q", name)
		}
		schemas[i] = r.Schema()
	}
	if len(scans) == 1 {
		return &ChainInfo{Relations: scans, ProjAttrs: projAttrs}, nil
	}
	// Build the sharing graph and find a Hamiltonian path that must be the
	// chain: a valid chain's sharing graph is exactly a path, so degrees
	// are ≤ 2 with exactly two degree-1 endpoints, and non-consecutive
	// relations are disjoint.
	adj := make([][]int, len(scans))
	for i := range scans {
		for j := i + 1; j < len(scans); j++ {
			if !schemas[i].Disjoint(schemas[j]) {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	var endpoints []int
	for i, a := range adj {
		switch len(a) {
		case 1:
			endpoints = append(endpoints, i)
		case 2:
		default:
			return nil, fmt.Errorf("deletion: %q shares attributes with %d relations; not a chain", scans[i], len(a))
		}
	}
	if len(endpoints) != 2 {
		return nil, fmt.Errorf("deletion: sharing graph is not a path (%d endpoints)", len(endpoints))
	}
	order := make([]int, 0, len(scans))
	visited := make([]bool, len(scans))
	cur := endpoints[0]
	for {
		order = append(order, cur)
		visited[cur] = true
		next := -1
		for _, nb := range adj[cur] {
			if !visited[nb] {
				next = nb
				break
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	if len(order) != len(scans) {
		return nil, fmt.Errorf("deletion: sharing graph is disconnected; not a chain")
	}
	ordered := make([]string, len(order))
	for i, idx := range order {
		ordered[i] = scans[idx]
	}
	return &ChainInfo{Relations: ordered, ProjAttrs: projAttrs}, nil
}

func flattenJoinScans(q algebra.Query) ([]string, error) {
	switch q := q.(type) {
	case algebra.Scan:
		return []string{q.Rel}, nil
	case algebra.Join:
		l, err := flattenJoinScans(q.Left)
		if err != nil {
			return nil, err
		}
		r, err := flattenJoinScans(q.Right)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	default:
		return nil, fmt.Errorf("deletion: chain body must be a join of scans, found %T", q)
	}
}

// SourceChainMinCut implements Theorem 2.6: for a chain-join PJ query, the
// minimum source deletion removing the target equals a minimum s-t vertex
// cut in the layered witness network — layer i holds the tuples of Ri that
// agree with the target, edges join consecutive-layer tuples that agree on
// shared attributes. Solved optimally in polynomial time by max-flow after
// node splitting.
func SourceChainMinCut(q algebra.Query, db *relation.Database, target relation.Tuple) (*Result, error) {
	info, err := DetectChain(q, db)
	if err != nil {
		return nil, err
	}
	view, err := algebra.Eval(q, db)
	if err != nil {
		return nil, err
	}
	if !view.Contains(target) {
		return nil, ErrNotInView
	}
	viewSchema := view.Schema()

	// Layer construction: keep tuples agreeing with the target on the
	// projected attributes their relation carries.
	type vertex struct {
		st relation.SourceTuple
	}
	var vertices []vertex
	layers := make([][]int, len(info.Relations)) // vertex ids per layer
	net := flow.NewVertexCutNetwork()
	for li, name := range info.Relations {
		r := db.Relation(name)
		shared := r.Schema().Common(viewSchema)
		for _, tu := range r.Tuples() {
			if !relation.AgreeOn(r.Schema(), tu, viewSchema, target, shared) {
				continue
			}
			id := net.AddVertex()
			if id != len(vertices) {
				return nil, fmt.Errorf("deletion: vertex id mismatch")
			}
			vertices = append(vertices, vertex{st: relation.SourceTuple{Rel: name, Tuple: tu}})
			layers[li] = append(layers[li], id)
		}
	}
	for _, v := range layers[0] {
		net.ConnectSource(v)
	}
	for _, v := range layers[len(layers)-1] {
		net.ConnectSink(v)
	}
	for li := 0; li+1 < len(layers); li++ {
		ra := db.Relation(info.Relations[li])
		rb := db.Relation(info.Relations[li+1])
		common := ra.Schema().Common(rb.Schema())
		for _, u := range layers[li] {
			for _, v := range layers[li+1] {
				if relation.AgreeOn(ra.Schema(), vertices[u].st.Tuple, rb.Schema(), vertices[v].st.Tuple, common) {
					net.Connect(u, v)
				}
			}
		}
	}
	// Single-relation chain: every surviving tuple yields the target on
	// its own; all must be deleted (matches the SPU argument).
	var T []relation.SourceTuple
	if len(info.Relations) == 1 {
		for _, v := range layers[0] {
			T = append(T, vertices[v].st)
		}
	} else {
		_, cut := net.Solve()
		for _, v := range cut {
			T = append(T, vertices[v].st)
		}
	}
	effects, gone, err := SideEffectsOf(q, db, T, target)
	if err != nil {
		return nil, err
	}
	if !gone {
		return nil, fmt.Errorf("deletion: min cut %v failed to remove target %v", T, target)
	}
	return finishResult(T, effects), nil
}
