package deletion

import (
	"errors"
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func TestViewExactGroup(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	targets := []relation.Tuple{
		relation.StringTuple("john", "f1"),
		relation.StringTuple("john", "f2"),
	}
	res, err := ViewExactGroup(q, db, targets, ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Deleting john's two memberships removes both targets and nothing
	// else (mary's pairs survive via her own membership).
	if !res.SideEffectFree() {
		t.Errorf("expected free group deletion, got %v (T=%v)", res.SideEffects, res.T)
	}
	// Verify by re-evaluation: both targets gone, mary intact.
	after := algebra.MustEval(q, db.DeleteAll(res.T))
	for _, target := range targets {
		if after.Contains(target) {
			t.Errorf("target %v survived", target)
		}
	}
	if !after.Contains(relation.StringTuple("mary", "f1")) || !after.Contains(relation.StringTuple("mary", "f2")) {
		t.Errorf("mary's rows must survive: %v", after)
	}
}

func TestViewExactGroupDedupsTargets(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	res, err := ViewExactGroup(q, db, []relation.Tuple{
		relation.StringTuple("john", "f2"),
		relation.StringTuple("john", "f2"),
	}, ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffectFree() {
		t.Errorf("single-target group must match single-target result: %v", res.SideEffects)
	}
}

func TestGroupMissingTarget(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	_, err := ViewExactGroup(q, db, []relation.Tuple{relation.StringTuple("no", "pe")}, ViewOptions{})
	if !errors.Is(err, ErrNotInView) {
		t.Errorf("expected ErrNotInView, got %v", err)
	}
	_, err = SourceExactGroup(q, db, []relation.Tuple{relation.StringTuple("no", "pe")}, 0)
	if !errors.Is(err, ErrNotInView) {
		t.Errorf("expected ErrNotInView, got %v", err)
	}
}

func TestSourceExactGroup(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	targets := []relation.Tuple{
		relation.StringTuple("john", "f1"),
		relation.StringTuple("john", "f2"),
	}
	res, err := SourceExactGroup(q, db, targets, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both john memberships must go: (john,f1) has disjoint witnesses via
	// staff and admin, so 2 deletions minimum; those two also kill
	// (john,f2).
	if len(res.T) != 2 {
		t.Errorf("group min deletion=%d want 2 (T=%v)", len(res.T), res.T)
	}
	after := algebra.MustEval(q, db.DeleteAll(res.T))
	for _, target := range targets {
		if after.Contains(target) {
			t.Errorf("target %v survived", target)
		}
	}
}

// Group of size 1 must agree with the single-target solvers.
func TestGroupDegeneratesToSingle(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	target := relation.StringTuple("john", "f1")

	g, err := SourceExactGroup(q, db, []relation.Tuple{target}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SourceExact(q, db, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.T) != len(s.T) {
		t.Errorf("group=%d single=%d", len(g.T), len(s.T))
	}

	gv, err := ViewExactGroup(q, db, []relation.Tuple{target}, ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := ViewExact(q, db, target, ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gv.SideEffects) != len(sv.SideEffects) {
		t.Errorf("group effects=%d single=%d", len(gv.SideEffects), len(sv.SideEffects))
	}
}

// Deleting the whole view is always possible and has zero side-effects by
// definition (no non-target tuples remain to protect).
func TestGroupWholeView(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	view := algebra.MustEval(q, db)
	res, err := ViewExactGroup(q, db, view.Tuples(), ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffectFree() {
		t.Error("whole-view deletion has no possible side-effects")
	}
	after := algebra.MustEval(q, db.DeleteAll(res.T))
	if after.Len() != 0 {
		t.Errorf("view must be empty after whole-view deletion, has %d", after.Len())
	}
}
