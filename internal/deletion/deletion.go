// Package deletion implements the paper's two view-deletion problems over
// monotone SPJRU queries:
//
//   - the view side-effect problem (§2.1): find source deletions that
//     remove a given view tuple while deleting as few other view tuples as
//     possible (and decide whether a side-effect-free deletion exists);
//   - the source side-effect problem (§2.2): remove the view tuple with as
//     few source deletions as possible.
//
// For the polynomial classes the package provides the algorithms of
// Theorems 2.3, 2.4, 2.8 and 2.9, plus the chain-join min-cut algorithm of
// Theorem 2.6. For the NP-hard classes (PJ, JU) it provides exact solvers
// built on the witness basis and a greedy O(log n) approximation matching
// the set-cover structure of Theorems 2.5 and 2.7, and the Cui–Widom
// lineage-enumeration baseline the paper compares against.
package deletion

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// Result is a solved deletion-propagation instance.
type Result struct {
	// T is the set of source tuples to delete, sorted.
	T []relation.SourceTuple
	// SideEffects lists the view tuples other than the target that
	// disappear when T is deleted, sorted.
	SideEffects []relation.Tuple
}

// SideEffectFree reports whether only the target view tuple is removed.
func (r *Result) SideEffectFree() bool { return len(r.SideEffects) == 0 }

// String renders the result compactly.
func (r *Result) String() string {
	return fmt.Sprintf("delete %d source tuple(s), %d view side-effect(s)", len(r.T), len(r.SideEffects))
}

// ErrNotInView is returned when the target tuple is not in Q(S).
var ErrNotInView = fmt.Errorf("deletion: target tuple not in view")

// ErrClass is returned by class-specific algorithms when the query is
// outside their fragment.
type ErrClass struct {
	Want string
	Got  algebra.Ops
}

func (e *ErrClass) Error() string {
	return fmt.Sprintf("deletion: algorithm requires a %s query, got %s", e.Want, e.Got)
}

// SideEffectsOf computes, by direct re-evaluation, the view tuples other
// than target that are lost when T is deleted from db. It also reports
// whether the target itself was removed. This is the ground-truth checker
// used by tests and by solvers that do not track witnesses.
func SideEffectsOf(q algebra.Query, db *relation.Database, T []relation.SourceTuple, target relation.Tuple) (effects []relation.Tuple, targetGone bool, err error) {
	before, err := algebra.Eval(q, db)
	if err != nil {
		return nil, false, err
	}
	after, err := algebra.Eval(q, db.DeleteAll(T))
	if err != nil {
		return nil, false, err
	}
	for _, t := range before.Minus(after) {
		if t.Equal(target) {
			targetGone = true
			continue
		}
		effects = append(effects, t)
	}
	sortTuples(effects)
	return effects, targetGone, nil
}

func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}

func finishResult(T []relation.SourceTuple, effects []relation.Tuple) *Result {
	relation.SortSourceTuples(T)
	sortTuples(effects)
	return &Result{T: T, SideEffects: effects}
}

// destroyedBy reports whether deleting the tuples in hit (a key set)
// destroys every witness of a view tuple.
func destroyedBy(witnesses []provenance.Witness, hit map[string]bool) bool {
	for _, w := range witnesses {
		intersects := false
		for _, st := range w.Tuples() {
			if hit[st.Key()] {
				intersects = true
				break
			}
		}
		if !intersects {
			return false
		}
	}
	return true
}

// sideEffectsFromBasis computes the view side-effects of deleting delSet
// using the witness basis of every view tuple: a view tuple dies iff every
// one of its witnesses is hit. Equivalent to SideEffectsOf but without
// re-evaluating the query.
func sideEffectsFromBasis(res *provenance.Result, delSet map[string]bool, target relation.Tuple) []relation.Tuple {
	return sideEffectsFromBasisGroup(res, delSet, map[string]bool{target.Key(): true})
}

// sideEffectsFromBasisGroup is sideEffectsFromBasis for a set of targets:
// a view tuple dies iff every one of its witnesses is hit, and tuples in
// the target set are not side-effects.
func sideEffectsFromBasisGroup(res *provenance.Result, delSet, isTarget map[string]bool) []relation.Tuple {
	var out []relation.Tuple
	for _, vt := range res.View.Tuples() {
		if isTarget[vt.Key()] {
			continue
		}
		if destroyedBy(res.Witnesses(vt), delSet) {
			out = append(out, vt)
		}
	}
	return out
}

func keySet(ts []relation.SourceTuple) map[string]bool {
	m := make(map[string]bool, len(ts))
	for _, t := range ts {
		m[t.Key()] = true
	}
	return m
}
