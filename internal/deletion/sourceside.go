package deletion

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
	"repro/internal/setcover"
)

// SourceSPU implements Theorem 2.8: for SPU queries there is a unique set
// of source tuples whose deletion removes the target — every tuple that
// selects and projects onto it — so it is trivially minimum. Linear time.
func SourceSPU(q algebra.Query, db *relation.Database, target relation.Tuple) (*Result, error) {
	// Identical tuple set to the view-side problem; Theorems 2.3 and 2.8
	// share the argument.
	return ViewSPU(q, db, target)
}

// SourceSJ implements Theorem 2.9: for SJ queries deleting any single
// component t.R of the target's unique witness removes it, so the minimum
// source deletion has size one. We pick the component with the fewest view
// side-effects among the size-1 options (the theorem allows any).
func SourceSJ(q algebra.Query, db *relation.Database, target relation.Tuple) (*Result, error) {
	// The SJ view-side algorithm already scans exactly the size-1
	// candidates, so its answer is also a minimum source deletion.
	return ViewSJ(q, db, target)
}

// SourceExactResult extends Result with the optimum certificate.
type SourceExactResult struct {
	Result
	// Witnesses is the number of witnesses of the target that had to be
	// hit.
	Witnesses int
}

// SourceExact solves the source side-effect problem exactly for any
// monotone query: the minimum source deletion is precisely a minimum
// hitting set of the target's witness basis, solved by branch and bound.
// Worst-case exponential (Theorems 2.5/2.7: set-cover hard).
func SourceExact(q algebra.Query, db *relation.Database, target relation.Tuple, maxWitnesses int) (*SourceExactResult, error) {
	in, elems, ws, err := hittingSetInstance(q, db, target, maxWitnesses)
	if err != nil {
		return nil, err
	}
	chosen, err := setcover.ExactHittingSet(in)
	if err != nil {
		return nil, fmt.Errorf("deletion: %v", err)
	}
	return packSourceResult(q, db, target, chosen, elems, ws)
}

// SourceGreedy approximates the source side-effect problem with the greedy
// hitting-set algorithm, guaranteeing a deletion of size at most
// H(#witnesses) times the optimum — the approximation the paper's
// set-cover connection (Theorems 2.5, 2.7 and the Feige threshold) shows
// is essentially best possible for the NP-hard classes.
func SourceGreedy(q algebra.Query, db *relation.Database, target relation.Tuple, maxWitnesses int) (*SourceExactResult, error) {
	in, elems, ws, err := hittingSetInstance(q, db, target, maxWitnesses)
	if err != nil {
		return nil, err
	}
	chosen, err := setcover.GreedyHittingSet(in)
	if err != nil {
		return nil, fmt.Errorf("deletion: %v", err)
	}
	return packSourceResult(q, db, target, chosen, elems, ws)
}

// hittingSetInstance builds the set system whose hitting sets are exactly
// the source deletions removing the target: universe = lineage of the
// target, sets = its witnesses.
func hittingSetInstance(q algebra.Query, db *relation.Database, target relation.Tuple, maxWitnesses int) (*setcover.Instance, []relation.SourceTuple, []provenance.Witness, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: maxWitnesses})
	if err != nil {
		return nil, nil, nil, err
	}
	ws := res.Witnesses(target)
	if len(ws) == 0 {
		return nil, nil, nil, ErrNotInView
	}
	in, elems, err := witnessesToInstance(ws)
	if err != nil {
		return nil, nil, nil, err
	}
	return in, elems, ws, nil
}

// witnessesToInstance converts a witness list into a hitting-set instance:
// elements are the distinct source tuples, sets the witnesses.
func witnessesToInstance(ws []provenance.Witness) (*setcover.Instance, []relation.SourceTuple, error) {
	index := make(map[string]int)
	var elems []relation.SourceTuple
	sets := make([][]int, len(ws))
	for i, w := range ws {
		for _, st := range w.Tuples() {
			k := st.Key()
			id, ok := index[k]
			if !ok {
				id = len(elems)
				index[k] = id
				elems = append(elems, st)
			}
			sets[i] = append(sets[i], id)
		}
	}
	in, err := setcover.NewInstance(len(elems), sets...)
	if err != nil {
		return nil, nil, err
	}
	return in, elems, nil
}

// exactHittingSetIndices is a thin wrapper naming the solver for the group
// deletion code path.
func exactHittingSetIndices(in *setcover.Instance) ([]int, error) {
	return setcover.ExactHittingSet(in)
}

// greedyHittingSetIndices names the greedy solver for the group path.
func greedyHittingSetIndices(in *setcover.Instance) ([]int, error) {
	return setcover.GreedyHittingSet(in)
}

func packSourceResult(q algebra.Query, db *relation.Database, target relation.Tuple, chosen []int, elems []relation.SourceTuple, ws []provenance.Witness) (*SourceExactResult, error) {
	T := make([]relation.SourceTuple, len(chosen))
	for i, e := range chosen {
		T[i] = elems[e]
	}
	effects, gone, err := SideEffectsOf(q, db, T, target)
	if err != nil {
		return nil, err
	}
	if !gone {
		return nil, fmt.Errorf("deletion: hitting set %v failed to remove target %v", T, target)
	}
	return &SourceExactResult{
		Result:    *finishResult(T, effects),
		Witnesses: len(ws),
	}, nil
}
