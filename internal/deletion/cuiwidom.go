package deletion

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// CuiWidomResult reports the outcome of the lineage-enumeration baseline.
type CuiWidomResult struct {
	Result
	// Evaluations counts how many times the query was re-evaluated — the
	// cost driver of the baseline.
	Evaluations int
	// Found reports whether any translation within the caps removed the
	// target.
	Found bool
}

// CuiWidomOptions bounds the baseline's search.
type CuiWidomOptions struct {
	// MaxSubsetSize caps the size of candidate deletion sets
	// (0 = up to the full lineage).
	MaxSubsetSize int
	// MaxEvaluations caps query re-evaluations (0 = unlimited).
	MaxEvaluations int
}

// CuiWidom is the baseline deletion translator after Cui and Widom [14,15]:
// it computes the lineage of the target (their per-relation "lineage
// tables") and then enumerates candidate source deletions drawn from it in
// increasing size, re-evaluating the view for each candidate, until it
// finds a side-effect-free translation; failing that, it returns the
// candidate with the fewest side-effects among those that remove the
// target. The paper (§1, Related Work) points out the intrinsic cost of
// this scheme: enumerating all witnesses is NP-hard, which surfaces here
// as the exponential candidate enumeration.
func CuiWidom(q algebra.Query, db *relation.Database, target relation.Tuple, opt CuiWidomOptions) (*CuiWidomResult, error) {
	lin, err := provenance.LineageOf(q, db, target)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotInView, err)
	}
	cand := lin.Tuples()
	maxSize := opt.MaxSubsetSize
	if maxSize <= 0 || maxSize > len(cand) {
		maxSize = len(cand)
	}
	out := &CuiWidomResult{}
	bestEffects := -1

	evalCandidate := func(T []relation.SourceTuple) (stop bool, err error) {
		out.Evaluations++
		effects, gone, err := SideEffectsOf(q, db, T, target)
		if err != nil {
			return true, err
		}
		if gone {
			if bestEffects < 0 || len(effects) < bestEffects ||
				(len(effects) == bestEffects && len(T) < len(out.T)) {
				bestEffects = len(effects)
				cp := append([]relation.SourceTuple(nil), T...)
				out.Result = *finishResult(cp, effects)
				out.Found = true
			}
			if bestEffects == 0 {
				return true, nil
			}
		}
		if opt.MaxEvaluations > 0 && out.Evaluations >= opt.MaxEvaluations {
			return true, nil
		}
		return false, nil
	}

	// Enumerate subsets of the lineage in increasing size.
	idx := make([]int, 0, maxSize)
	var rec func(start, size int) (bool, error)
	rec = func(start, size int) (bool, error) {
		if len(idx) == size {
			T := make([]relation.SourceTuple, size)
			for i, j := range idx {
				T[i] = cand[j]
			}
			return evalCandidate(T)
		}
		for j := start; j < len(cand); j++ {
			idx = append(idx, j)
			stop, err := rec(j+1, size)
			idx = idx[:len(idx)-1]
			if err != nil || stop {
				return stop, err
			}
		}
		return false, nil
	}
	for size := 1; size <= maxSize; size++ {
		stop, err := rec(0, size)
		if err != nil {
			return nil, err
		}
		if stop {
			break
		}
	}
	if !out.Found {
		return out, fmt.Errorf("deletion: Cui–Widom search found no translation within caps (evaluations=%d)", out.Evaluations)
	}
	return out, nil
}
