package deletion

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func TestViewHeuristicRemovesTarget(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	target := relation.StringTuple("john", "f1")
	res, err := ViewHeuristic(q, db, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	effects, gone, err := SideEffectsOf(q, db, res.T, target)
	if err != nil || !gone {
		t.Fatalf("heuristic deletion invalid: gone=%v err=%v", gone, err)
	}
	if len(effects) != len(res.SideEffects) {
		t.Errorf("reported effects %d, actual %d", len(res.SideEffects), len(effects))
	}
}

func TestViewHeuristicFindsFreeDeletion(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	// (john,f2) has the single witness; its UG component is a free pick,
	// and the damage tie-break should find it.
	res, err := ViewHeuristic(q, db, relation.StringTuple("john", "f2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffectFree() {
		t.Errorf("heuristic missed the free deletion: %v deleting %v", res.SideEffects, res.T)
	}
}

func TestViewHeuristicMissingTarget(t *testing.T) {
	db := userGroupDB()
	if _, err := ViewHeuristic(userFileQuery(), db, relation.StringTuple("no", "pe"), 0); !errors.Is(err, ErrNotInView) {
		t.Errorf("expected ErrNotInView, got %v", err)
	}
}

// Property: the heuristic always produces a valid deletion, and never
// beats the exact optimum.
func TestViewHeuristicValidQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	q := algebra.Pi([]relation.Attribute{"A", "C"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		r1 := relation.New("R1", relation.NewSchema("A", "B"))
		r2 := relation.New("R2", relation.NewSchema("B", "C"))
		for i := 0; i < 2+r.Intn(4); i++ {
			r1.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
			r2.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
		}
		db.MustAdd(r1)
		db.MustAdd(r2)
		view := algebra.MustEval(q, db)
		if view.Len() == 0 {
			return true
		}
		target := view.Tuples()[r.Intn(view.Len())]
		h, err := ViewHeuristic(q, db, target, 0)
		if err != nil {
			return false
		}
		_, gone, err := SideEffectsOf(q, db, h.T, target)
		if err != nil || !gone {
			t.Logf("heuristic failed to delete %v", target)
			return false
		}
		exact, err := ViewExact(q, db, target, ViewOptions{})
		if err != nil {
			return false
		}
		if len(h.SideEffects) < len(exact.SideEffects) {
			t.Logf("heuristic %d beat exact %d — impossible", len(h.SideEffects), len(exact.SideEffects))
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestSourceGreedyGroup(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	targets := []relation.Tuple{
		relation.StringTuple("john", "f1"),
		relation.StringTuple("john", "f2"),
	}
	g, err := SourceGreedyGroup(q, db, targets, 0)
	if err != nil {
		t.Fatal(err)
	}
	after := algebra.MustEval(q, db.DeleteAll(g.T))
	for _, target := range targets {
		if after.Contains(target) {
			t.Errorf("greedy group left %v alive", target)
		}
	}
	exact, err := SourceExactGroup(q, db, targets, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.T) < len(exact.T) {
		t.Error("greedy cannot beat exact")
	}
}
