package deletion

import (
	"fmt"

	"repro/internal/provenance"
	"repro/internal/relation"
	"repro/internal/setcover"
)

// Basis-driven entry points: the same solvers as ViewExact, SourceExact and
// the group variants, but taking a precomputed *provenance.Result instead of
// recomputing the witness basis from (q, db). Side-effects are derived from
// the basis as well (a view tuple dies iff every witness is hit), so no call
// here re-evaluates the query. The prepared-view engine (internal/engine)
// maintains its basis incrementally across deletions and answers every
// request through these.

// ViewExactBasis solves the view side-effect problem exactly on a
// precomputed witness basis, enumerating the minimal hitting sets of the
// target's witnesses and scoring each by the view tuples it destroys.
func ViewExactBasis(res *provenance.Result, target relation.Tuple, opt ViewOptions) (*ViewExactResult, error) {
	return ViewExactGroupBasis(res, []relation.Tuple{target}, opt)
}

// ViewExactGroupBasis is ViewExactGroup on a precomputed basis: one
// enumeration over the union of all targets' witnesses, amortizing a single
// basis pass across the whole batch.
func ViewExactGroupBasis(res *provenance.Result, targets []relation.Tuple, opt ViewOptions) (*ViewExactResult, error) {
	targets, err := GroupTargets(res.View, targets)
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	var allWitnesses []provenance.Witness
	for _, t := range targets {
		isTarget[t.Key()] = true
		allWitnesses = append(allWitnesses, res.Witnesses(t)...)
	}

	out := &ViewExactResult{Exhausted: true}
	bestScore := -1
	consider := func(hs []relation.SourceTuple) bool {
		out.Candidates++
		effects := sideEffectsFromBasisGroup(res, keySet(hs), isTarget)
		if bestScore < 0 || len(effects) < bestScore {
			bestScore = len(effects)
			cp := append([]relation.SourceTuple(nil), hs...)
			out.Result = *finishResult(cp, effects)
		}
		if bestScore == 0 {
			return false
		}
		return opt.MaxCandidates == 0 || out.Candidates < opt.MaxCandidates
	}
	if !enumerateMinimalHittingSets(allWitnesses, consider) {
		out.Exhausted = bestScore == 0
	}
	if bestScore < 0 {
		return nil, fmt.Errorf("deletion: no hitting set for group of %d targets", len(targets))
	}
	return out, nil
}

// SourceExactGroupBasis is SourceExactGroup on a precomputed basis.
func SourceExactGroupBasis(res *provenance.Result, targets []relation.Tuple) (*SourceExactResult, error) {
	return sourceBasis(res, targets, exactHittingSetIndices)
}

// SourceGreedyGroupBasis is the greedy-approximate batched source deletion
// on a precomputed basis.
func SourceGreedyGroupBasis(res *provenance.Result, targets []relation.Tuple) (*SourceExactResult, error) {
	return sourceBasis(res, targets, greedyHittingSetIndices)
}

// sourceBasis hits every witness of every target with the given hitting-set
// solver and reads side-effects off the basis.
func sourceBasis(res *provenance.Result, targets []relation.Tuple, solve func(*setcover.Instance) ([]int, error)) (*SourceExactResult, error) {
	targets, err := GroupTargets(res.View, targets)
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	var allWitnesses []provenance.Witness
	for _, t := range targets {
		isTarget[t.Key()] = true
		allWitnesses = append(allWitnesses, res.Witnesses(t)...)
	}
	in, elems, err := witnessesToInstance(allWitnesses)
	if err != nil {
		return nil, err
	}
	chosen, err := solve(in)
	if err != nil {
		return nil, fmt.Errorf("deletion: %w", err)
	}
	T := make([]relation.SourceTuple, len(chosen))
	for i, e := range chosen {
		T[i] = elems[e]
	}
	effects := sideEffectsFromBasisGroup(res, keySet(T), isTarget)
	return &SourceExactResult{
		Result:    *finishResult(T, effects),
		Witnesses: len(allWitnesses),
	}, nil
}
