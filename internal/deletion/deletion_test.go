package deletion

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

func TestResultString(t *testing.T) {
	r := &Result{
		T:           []relation.SourceTuple{{Rel: "R", Tuple: relation.StringTuple("a")}},
		SideEffects: []relation.Tuple{relation.StringTuple("x")},
	}
	if r.SideEffectFree() {
		t.Error("result with effects is not free")
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
	if !(&Result{}).SideEffectFree() {
		t.Error("empty result is free")
	}
}

func TestErrClassMessage(t *testing.T) {
	e := &ErrClass{Want: "SPU", Got: algebra.OpJoin}
	if e.Error() == "" {
		t.Error("empty error message")
	}
}

// Property: side-effects computed from the witness basis equal those from
// direct re-evaluation, for random deletions on random PJ instances. This
// ties the two side-effect oracles together — the exact solvers rely on
// the basis version being truthful.
func TestBasisSideEffectsMatchEvaluationQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	q := algebra.Pi([]relation.Attribute{"A", "C"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		r1 := relation.New("R1", relation.NewSchema("A", "B"))
		r2 := relation.New("R2", relation.NewSchema("B", "C"))
		for i := 0; i < 2+r.Intn(4); i++ {
			r1.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
			r2.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
		}
		db.MustAdd(r1)
		db.MustAdd(r2)
		res, err := provenance.Compute(q, db)
		if err != nil {
			return false
		}
		if res.View.Len() == 0 {
			return true
		}
		target := res.View.Tuples()[r.Intn(res.View.Len())]
		// Random deletion set.
		var T []relation.SourceTuple
		for _, st := range db.AllSourceTuples() {
			if r.Intn(2) == 0 {
				T = append(T, st)
			}
		}
		fromBasis := sideEffectsFromBasis(res, keySet(T), target)
		fromEval, _, err := SideEffectsOf(q, db, T, target)
		if err != nil {
			return false
		}
		if len(fromBasis) != len(fromEval) {
			t.Logf("basis=%v eval=%v (T=%v target=%v)", fromBasis, fromEval, T, target)
			return false
		}
		evalSet := make(map[string]bool, len(fromEval))
		for _, tu := range fromEval {
			evalSet[tu.Key()] = true
		}
		for _, tu := range fromBasis {
			if !evalSet[tu.Key()] {
				t.Logf("basis effect %v missing from eval", tu)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestEnumerateMinimalHittingSetsExhaustive(t *testing.T) {
	// Witnesses {a,b}, {b,c}: minimal hitting sets are {b}, {a,c}.
	ws := []provenance.Witness{
		provenance.NewWitness(st("R", "a"), st("R", "b")),
		provenance.NewWitness(st("R", "b"), st("R", "c")),
	}
	var got [][]relation.SourceTuple
	enumerateMinimalHittingSets(ws, func(hs []relation.SourceTuple) bool {
		cp := append([]relation.SourceTuple(nil), hs...)
		got = append(got, cp)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("enumerated %d minimal hitting sets, want 2: %v", len(got), got)
	}
	sizes := map[int]int{}
	for _, hs := range got {
		sizes[len(hs)]++
	}
	if sizes[1] != 1 || sizes[2] != 1 {
		t.Errorf("expected one singleton and one pair: %v", got)
	}
}

func TestEnumerateMinimalHittingSetsEarlyStop(t *testing.T) {
	ws := []provenance.Witness{
		provenance.NewWitness(st("R", "a"), st("R", "b"), st("R", "c")),
	}
	count := 0
	completed := enumerateMinimalHittingSets(ws, func([]relation.SourceTuple) bool {
		count++
		return count < 2 // stop after the second candidate
	})
	if completed {
		t.Error("early stop must report incomplete enumeration")
	}
	if count != 2 {
		t.Errorf("visited %d candidates, want 2", count)
	}
}

func st(rel string, vals ...string) relation.SourceTuple {
	return relation.SourceTuple{Rel: rel, Tuple: relation.StringTuple(vals...)}
}
