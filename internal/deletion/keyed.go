package deletion

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// This file implements the remark after Theorem 2.1: "most joins are
// performed on foreign keys. It is easy to show that project join queries
// based on key constraints (e.g. lossless joins with respect to a set of
// functional dependencies) allow us to decide whether there is a
// side-effect-free deletion in polynomial time."
//
// The mechanism: when every join step matches on a key of one side, every
// view tuple has a unique witness (the join is lossless and projection
// cannot merge distinct derivations into one output tuple more than once
// per witness), so the SJ-style component analysis of Theorem 2.4 applies
// and everything is polynomial.

// KeyJoinCheck reports whether every view tuple of q over db has a unique
// witness, which holds in particular for PJ queries whose joins follow
// key/foreign-key constraints. It is the precondition of ViewUniqueWitness.
//
// The check itself runs in polynomial time for key joins because the
// witness basis stays linear; on adversarial non-key inputs it degrades
// with the basis size, so callers can bound it with maxWitnesses (2 is
// enough to disprove uniqueness).
func KeyJoinCheck(q algebra.Query, db *relation.Database) (bool, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: 2})
	if err != nil {
		if provenanceLimitErr(err) {
			return false, nil
		}
		return false, err
	}
	for _, vt := range res.View.Tuples() {
		if len(res.Witnesses(vt)) != 1 {
			return false, nil
		}
	}
	return true, nil
}

func provenanceLimitErr(err error) bool {
	type unwrapper interface{ Unwrap() error }
	for err != nil {
		if err == provenance.ErrLimit {
			return true
		}
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// JoinsOnKeys verifies syntactically that a normalized PJ query joins on
// keys: for every Join node, the shared attributes contain a key of at
// least one operand (checked against the current instance). This is the
// foreign-key shape of the paper's remark; it implies unique witnesses.
func JoinsOnKeys(q algebra.Query, db *relation.Database) (bool, error) {
	n := algebra.Normalize(q)
	var check func(algebra.Query) (bool, error)
	check = func(q algebra.Query) (bool, error) {
		switch q := q.(type) {
		case algebra.Join:
			lok, err := check(q.Left)
			if err != nil || !lok {
				return false, err
			}
			rok, err := check(q.Right)
			if err != nil || !rok {
				return false, err
			}
			ls, err := algebra.SchemaOf(q.Left, db)
			if err != nil {
				return false, err
			}
			rs, err := algebra.SchemaOf(q.Right, db)
			if err != nil {
				return false, err
			}
			common := ls.Common(rs)
			if len(common) == 0 {
				return false, nil // cross product: never key-joined
			}
			lrel, err := algebra.EvalNamed(q.Left, db, "side")
			if err != nil {
				return false, err
			}
			rrel, err := algebra.EvalNamed(q.Right, db, "side")
			if err != nil {
				return false, err
			}
			return lrel.IsKey(common) || rrel.IsKey(common), nil
		default:
			for _, c := range algebra.Children(q) {
				ok, err := check(c)
				if err != nil || !ok {
					return ok, err
				}
			}
			return true, nil
		}
	}
	return check(n)
}

// ViewUniqueWitness solves the view side-effect problem in polynomial time
// for queries where every view tuple has a unique witness — PJ queries
// joining on keys, per the paper's remark. It returns ErrNotKeyJoin when
// uniqueness fails, in which case the caller must fall back to ViewExact.
func ViewUniqueWitness(q algebra.Query, db *relation.Database, target relation.Tuple) (*Result, error) {
	res, err := provenance.Compute(q, db)
	if err != nil {
		return nil, err
	}
	ws := res.Witnesses(target)
	if len(ws) == 0 {
		return nil, ErrNotInView
	}
	if len(ws) != 1 {
		return nil, fmt.Errorf("%w: target has %d witnesses", ErrNotKeyJoin, len(ws))
	}
	for _, vt := range res.View.Tuples() {
		if len(res.Witnesses(vt)) != 1 {
			return nil, fmt.Errorf("%w: view tuple %v has %d witnesses", ErrNotKeyJoin, vt, len(res.Witnesses(vt)))
		}
	}
	// Unique witnesses: exactly the SJ analysis of Theorem 2.4 — delete
	// the component shared with fewest other view tuples.
	best := -1
	var bestComp relation.SourceTuple
	var bestEffects []relation.Tuple
	for _, comp := range ws[0].Tuples() {
		var effects []relation.Tuple
		for _, vt := range res.View.Tuples() {
			if vt.Equal(target) {
				continue
			}
			if res.Witnesses(vt)[0].Contains(comp) {
				effects = append(effects, vt)
			}
		}
		if best < 0 || len(effects) < best {
			best = len(effects)
			bestComp = comp
			bestEffects = effects
		}
		if best == 0 {
			break
		}
	}
	return finishResult([]relation.SourceTuple{bestComp}, bestEffects), nil
}

// ErrNotKeyJoin reports that the unique-witness precondition fails.
var ErrNotKeyJoin = fmt.Errorf("deletion: query is not a key join (witnesses are not unique)")
