package deletion

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// Group deletion: remove a SET of view tuples at once. Cui–Widom's system
// translates batches of view deletions; the witness machinery generalizes
// directly — every witness of every target must be hit, and side-effects
// are the non-target view tuples destroyed.

// GroupTargets dedups and validates a target list against the view.
func GroupTargets(view *relation.Relation, targets []relation.Tuple) ([]relation.Tuple, error) {
	seen := make(map[string]bool, len(targets))
	var out []relation.Tuple
	for _, t := range targets {
		if !view.Contains(t) {
			return nil, fmt.Errorf("%w: %v", ErrNotInView, t)
		}
		if !seen[t.Key()] {
			seen[t.Key()] = true
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("deletion: empty target set")
	}
	return out, nil
}

// ViewExactGroup minimizes view side-effects while deleting every target
// tuple: it enumerates minimal hitting sets of the union of the targets'
// witness bases and scores each by the non-target view tuples destroyed.
func ViewExactGroup(q algebra.Query, db *relation.Database, targets []relation.Tuple, opt ViewOptions) (*ViewExactResult, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: opt.MaxWitnesses})
	if err != nil {
		return nil, err
	}
	return ViewExactGroupBasis(res, targets, opt)
}

// SourceExactGroup minimizes the number of source deletions removing every
// target: a minimum hitting set of the combined witness bases.
func SourceExactGroup(q algebra.Query, db *relation.Database, targets []relation.Tuple, maxWitnesses int) (*SourceExactResult, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: maxWitnesses})
	if err != nil {
		return nil, err
	}
	return SourceExactGroupBasis(res, targets)
}
