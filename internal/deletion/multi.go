package deletion

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// Group deletion: remove a SET of view tuples at once. Cui–Widom's system
// translates batches of view deletions; the witness machinery generalizes
// directly — every witness of every target must be hit, and side-effects
// are the non-target view tuples destroyed.

// GroupTargets dedups and validates a target list against the view.
func GroupTargets(view *relation.Relation, targets []relation.Tuple) ([]relation.Tuple, error) {
	seen := make(map[string]bool, len(targets))
	var out []relation.Tuple
	for _, t := range targets {
		if !view.Contains(t) {
			return nil, fmt.Errorf("%w: %v", ErrNotInView, t)
		}
		if !seen[t.Key()] {
			seen[t.Key()] = true
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("deletion: empty target set")
	}
	return out, nil
}

// ViewExactGroup minimizes view side-effects while deleting every target
// tuple: it enumerates minimal hitting sets of the union of the targets'
// witness bases and scores each by the non-target view tuples destroyed.
func ViewExactGroup(q algebra.Query, db *relation.Database, targets []relation.Tuple, opt ViewOptions) (*ViewExactResult, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: opt.MaxWitnesses})
	if err != nil {
		return nil, err
	}
	targets, err = GroupTargets(res.View, targets)
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	var allWitnesses []provenance.Witness
	for _, t := range targets {
		isTarget[t.Key()] = true
		allWitnesses = append(allWitnesses, res.Witnesses(t)...)
	}

	out := &ViewExactResult{Exhausted: true}
	bestScore := -1
	consider := func(hs []relation.SourceTuple) bool {
		out.Candidates++
		delSet := keySet(hs)
		var effects []relation.Tuple
		for _, vt := range res.View.Tuples() {
			if isTarget[vt.Key()] {
				continue
			}
			if destroyedBy(res.Witnesses(vt), delSet) {
				effects = append(effects, vt)
			}
		}
		if bestScore < 0 || len(effects) < bestScore {
			bestScore = len(effects)
			cp := append([]relation.SourceTuple(nil), hs...)
			out.Result = *finishResult(cp, effects)
		}
		if bestScore == 0 {
			return false
		}
		return opt.MaxCandidates == 0 || out.Candidates < opt.MaxCandidates
	}
	if !enumerateMinimalHittingSets(allWitnesses, consider) {
		out.Exhausted = bestScore == 0
	}
	if bestScore < 0 {
		return nil, fmt.Errorf("deletion: no hitting set for group of %d targets", len(targets))
	}
	return out, nil
}

// SourceExactGroup minimizes the number of source deletions removing every
// target: a minimum hitting set of the combined witness bases.
func SourceExactGroup(q algebra.Query, db *relation.Database, targets []relation.Tuple, maxWitnesses int) (*SourceExactResult, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: maxWitnesses})
	if err != nil {
		return nil, err
	}
	targets, err = GroupTargets(res.View, targets)
	if err != nil {
		return nil, err
	}
	var allWitnesses []provenance.Witness
	for _, t := range targets {
		allWitnesses = append(allWitnesses, res.Witnesses(t)...)
	}
	in, elems, err := witnessesToInstance(allWitnesses)
	if err != nil {
		return nil, err
	}
	chosen, err := exactHittingSetIndices(in)
	if err != nil {
		return nil, err
	}
	T := make([]relation.SourceTuple, len(chosen))
	for i, e := range chosen {
		T[i] = elems[e]
	}
	// Side effects: destroyed non-target view tuples.
	delSet := keySet(T)
	isTarget := make(map[string]bool, len(targets))
	for _, t := range targets {
		isTarget[t.Key()] = true
	}
	var effects []relation.Tuple
	for _, vt := range res.View.Tuples() {
		if isTarget[vt.Key()] {
			continue
		}
		if destroyedBy(res.Witnesses(vt), delSet) {
			effects = append(effects, vt)
		}
	}
	return &SourceExactResult{
		Result:    *finishResult(T, effects),
		Witnesses: len(allWitnesses),
	}, nil
}
