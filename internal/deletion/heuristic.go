package deletion

import (
	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

// ViewHeuristic is a best-effort polynomial heuristic for the view
// side-effect problem on NP-hard inputs: it builds a hitting set of the
// target's witnesses greedily, at each step choosing the source tuple that
// hits the most remaining witnesses while (tie-break) destroying the
// fewest additional view tuples.
//
// No quality guarantee is possible — the paper shows even deciding
// side-effect-freeness is NP-hard, so the problem is inapproximable — but
// the heuristic is a practical fallback when ViewExact's search space
// explodes, and the ablation bench quantifies the quality gap.
func ViewHeuristic(q algebra.Query, db *relation.Database, target relation.Tuple, maxWitnesses int) (*Result, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: maxWitnesses})
	if err != nil {
		return nil, err
	}
	ws := res.Witnesses(target)
	if len(ws) == 0 {
		return nil, ErrNotInView
	}
	remaining := make([]provenance.Witness, len(ws))
	copy(remaining, ws)
	chosen := make(map[string]relation.SourceTuple)

	for len(remaining) > 0 {
		// Candidate tuples: anything in a remaining witness.
		hitCount := make(map[string]int)
		byKey := make(map[string]relation.SourceTuple)
		for _, w := range remaining {
			for _, st := range w.Tuples() {
				k := st.Key()
				hitCount[k]++
				byKey[k] = st
			}
		}
		// Pick max hits; tie-break on marginal view damage, then key.
		bestKey := ""
		bestHits := -1
		bestDamage := -1
		for k, hits := range hitCount {
			if hits < bestHits {
				continue
			}
			damage := marginalDamage(res, chosen, byKey[k], target)
			if hits > bestHits ||
				(hits == bestHits && (damage < bestDamage || (damage == bestDamage && k < bestKey))) {
				bestKey, bestHits, bestDamage = k, hits, damage
			}
		}
		chosen[bestKey] = byKey[bestKey]
		// Drop hit witnesses.
		var next []provenance.Witness
		for _, w := range remaining {
			if !w.Contains(byKey[bestKey]) {
				next = append(next, w)
			}
		}
		remaining = next
	}

	T := make([]relation.SourceTuple, 0, len(chosen))
	for _, st := range chosen {
		T = append(T, st)
	}
	effects := sideEffectsFromBasis(res, keySet(T), target)
	return finishResult(T, effects), nil
}

// marginalDamage counts the view tuples (other than the target) destroyed
// by chosen ∪ {cand} using the witness basis.
func marginalDamage(res *provenance.Result, chosen map[string]relation.SourceTuple, cand relation.SourceTuple, target relation.Tuple) int {
	hit := make(map[string]bool, len(chosen)+1)
	for k := range chosen {
		hit[k] = true
	}
	hit[cand.Key()] = true
	n := 0
	for _, vt := range res.View.Tuples() {
		if vt.Equal(target) {
			continue
		}
		if destroyedBy(res.Witnesses(vt), hit) {
			n++
		}
	}
	return n
}

// SourceGreedyGroup approximates the minimum source deletion removing a
// whole set of view tuples: greedy hitting set over their combined
// witness bases.
func SourceGreedyGroup(q algebra.Query, db *relation.Database, targets []relation.Tuple, maxWitnesses int) (*SourceExactResult, error) {
	res, err := provenance.ComputeLimited(q, db, provenance.Limit{MaxWitnesses: maxWitnesses})
	if err != nil {
		return nil, err
	}
	targets, err = GroupTargets(res.View, targets)
	if err != nil {
		return nil, err
	}
	var allWitnesses []provenance.Witness
	isTarget := make(map[string]bool, len(targets))
	for _, t := range targets {
		isTarget[t.Key()] = true
		allWitnesses = append(allWitnesses, res.Witnesses(t)...)
	}
	in, elems, err := witnessesToInstance(allWitnesses)
	if err != nil {
		return nil, err
	}
	chosen, err := greedyHittingSetIndices(in)
	if err != nil {
		return nil, err
	}
	T := make([]relation.SourceTuple, len(chosen))
	for i, e := range chosen {
		T[i] = elems[e]
	}
	delSet := keySet(T)
	var effects []relation.Tuple
	for _, vt := range res.View.Tuples() {
		if isTarget[vt.Key()] {
			continue
		}
		if destroyedBy(res.Witnesses(vt), delSet) {
			effects = append(effects, vt)
		}
	}
	return &SourceExactResult{
		Result:    *finishResult(T, effects),
		Witnesses: len(allWitnesses),
	}, nil
}
