package deletion

import (
	"errors"
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// keyedDB: Emp(emp, dept) joining Dept(dept, mgr) where dept is a key of
// Dept — the foreign-key shape of the §2.1.1 remark.
func keyedDB() *relation.Database {
	db := relation.NewDatabase()
	emp := relation.New("Emp", relation.NewSchema("emp", "dept"))
	emp.InsertStrings("ann", "d1")
	emp.InsertStrings("bob", "d1")
	emp.InsertStrings("carol", "d2")
	db.MustAdd(emp)
	dept := relation.New("Dept", relation.NewSchema("dept", "mgr"))
	dept.InsertStrings("d1", "mia")
	dept.InsertStrings("d2", "noa")
	db.MustAdd(dept)
	return db
}

func keyedQuery() algebra.Query {
	return algebra.Pi([]relation.Attribute{"emp", "mgr"},
		algebra.NatJoin(algebra.R("Emp"), algebra.R("Dept")))
}

func TestFDHolds(t *testing.T) {
	db := keyedDB()
	fd := relation.FD{Rel: "Dept", Determinant: []relation.Attribute{"dept"}, Dependent: []relation.Attribute{"mgr"}}
	ok, err := fd.Holds(db)
	if err != nil || !ok {
		t.Errorf("dept -> mgr should hold: ok=%v err=%v", ok, err)
	}
	// Violate it.
	db.Relation("Dept").InsertStrings("d1", "zoe")
	ok, err = fd.Holds(db)
	if err != nil || ok {
		t.Errorf("violated FD misreported: ok=%v err=%v", ok, err)
	}
	// Bad references.
	if _, err := (relation.FD{Rel: "Nope"}).Holds(db); err == nil {
		t.Error("unknown relation must error")
	}
	if _, err := (relation.FD{Rel: "Dept", Determinant: []relation.Attribute{"zz"}}).Holds(db); err == nil {
		t.Error("unknown determinant must error")
	}
	if _, err := (relation.FD{Rel: "Dept", Determinant: []relation.Attribute{"dept"}, Dependent: []relation.Attribute{"zz"}}).Holds(db); err == nil {
		t.Error("unknown dependent must error")
	}
}

func TestIsKey(t *testing.T) {
	db := keyedDB()
	if !db.Relation("Dept").IsKey([]relation.Attribute{"dept"}) {
		t.Error("dept is a key of Dept")
	}
	if db.Relation("Emp").IsKey([]relation.Attribute{"dept"}) {
		t.Error("dept is not a key of Emp (two d1 rows)")
	}
	if db.Relation("Dept").IsKey([]relation.Attribute{"ghost"}) {
		t.Error("missing attribute is not a key")
	}
}

func TestKeyDeclaration(t *testing.T) {
	db := keyedDB()
	fd := relation.Key("Dept", db.Relation("Dept").Schema(), "dept")
	ok, err := fd.Holds(db)
	if err != nil || !ok {
		t.Errorf("key FD should hold: %v %v", ok, err)
	}
	if fd.String() == "" {
		t.Error("empty FD rendering")
	}
}

func TestJoinsOnKeys(t *testing.T) {
	db := keyedDB()
	ok, err := JoinsOnKeys(keyedQuery(), db)
	if err != nil || !ok {
		t.Errorf("Emp ⋈ Dept joins on Dept's key: ok=%v err=%v", ok, err)
	}
	// The UserGroup query is NOT a key join: groups repeat on both sides.
	ug := userGroupDB()
	ok, err = JoinsOnKeys(userFileQuery(), ug)
	if err != nil || ok {
		t.Errorf("UserGroup join misclassified as key join: ok=%v err=%v", ok, err)
	}
	// Cross products never count.
	db2 := relation.NewDatabase()
	a := relation.New("A", relation.NewSchema("X"))
	a.InsertStrings("1")
	db2.MustAdd(a)
	bRel := relation.New("B", relation.NewSchema("Y"))
	bRel.InsertStrings("2")
	db2.MustAdd(bRel)
	ok, err = JoinsOnKeys(algebra.NatJoin(algebra.R("A"), algebra.R("B")), db2)
	if err != nil || ok {
		t.Errorf("cross product misclassified: ok=%v err=%v", ok, err)
	}
}

func TestKeyJoinCheck(t *testing.T) {
	db := keyedDB()
	ok, err := KeyJoinCheck(keyedQuery(), db)
	if err != nil || !ok {
		t.Errorf("key join has unique witnesses: ok=%v err=%v", ok, err)
	}
	ug := userGroupDB()
	ok, err = KeyJoinCheck(userFileQuery(), ug)
	if err != nil || ok {
		t.Errorf("(john,f1) has two witnesses; check must fail: ok=%v err=%v", ok, err)
	}
}

func TestViewUniqueWitness(t *testing.T) {
	db := keyedDB()
	q := keyedQuery()
	// (carol, noa): its Dept component (d2, noa) feeds only carol; its
	// Emp component likewise — side-effect-free either way.
	res, err := ViewUniqueWitness(q, db, relation.StringTuple("carol", "noa"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffectFree() {
		t.Errorf("expected free deletion, got %v", res.SideEffects)
	}
	// (ann, mia): Dept(d1,mia) also feeds bob; Emp(ann,d1) feeds only ann.
	res, err = ViewUniqueWitness(q, db, relation.StringTuple("ann", "mia"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffectFree() || res.T[0].Rel != "Emp" {
		t.Errorf("should delete the Emp row for a free deletion: %v (effects %v)", res.T, res.SideEffects)
	}
	// Agreement with the general exact solver.
	exact, err := ViewExact(q, db, relation.StringTuple("ann", "mia"), ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.SideEffects) != len(res.SideEffects) {
		t.Errorf("keyed=%d exact=%d side-effects", len(res.SideEffects), len(exact.SideEffects))
	}
}

func TestViewUniqueWitnessRejectsNonKey(t *testing.T) {
	ug := userGroupDB()
	_, err := ViewUniqueWitness(userFileQuery(), ug, relation.StringTuple("john", "f1"))
	if !errors.Is(err, ErrNotKeyJoin) {
		t.Errorf("expected ErrNotKeyJoin, got %v", err)
	}
}

func TestViewUniqueWitnessMissingTarget(t *testing.T) {
	db := keyedDB()
	_, err := ViewUniqueWitness(keyedQuery(), db, relation.StringTuple("no", "pe"))
	if !errors.Is(err, ErrNotInView) {
		t.Errorf("expected ErrNotInView, got %v", err)
	}
}
