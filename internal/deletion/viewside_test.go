package deletion

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func userGroupDB() *relation.Database {
	db := relation.NewDatabase()
	ug := relation.New("UserGroup", relation.NewSchema("user", "group"))
	ug.InsertStrings("john", "staff")
	ug.InsertStrings("john", "admin")
	ug.InsertStrings("mary", "admin")
	db.MustAdd(ug)
	gf := relation.New("GroupFile", relation.NewSchema("group", "file"))
	gf.InsertStrings("staff", "f1")
	gf.InsertStrings("admin", "f1")
	gf.InsertStrings("admin", "f2")
	db.MustAdd(gf)
	return db
}

func userFileQuery() algebra.Query {
	return algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
}

func TestSideEffectsOf(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	// Deleting UG(john,admin) and UG(john,staff) removes john entirely:
	// (john,f1) and (john,f2) both disappear.
	T := []relation.SourceTuple{
		{Rel: "UserGroup", Tuple: relation.StringTuple("john", "admin")},
		{Rel: "UserGroup", Tuple: relation.StringTuple("john", "staff")},
	}
	effects, gone, err := SideEffectsOf(q, db, T, relation.StringTuple("john", "f2"))
	if err != nil {
		t.Fatal(err)
	}
	if !gone {
		t.Error("target should be gone")
	}
	if len(effects) != 1 || !effects[0].Equal(relation.StringTuple("john", "f1")) {
		t.Errorf("effects=%v want [(john,f1)]", effects)
	}
}

func TestViewSPU(t *testing.T) {
	db := userGroupDB()
	q := algebra.Un(
		algebra.Pi([]relation.Attribute{"group"}, algebra.R("UserGroup")),
		algebra.Pi([]relation.Attribute{"group"}, algebra.R("GroupFile")),
	)
	res, err := ViewSPU(q, db, relation.StringTuple("admin"))
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 2.3: always side-effect-free.
	if !res.SideEffectFree() {
		t.Errorf("SPU deletion has side-effects: %v", res.SideEffects)
	}
	// Removing "admin" needs all four admin tuples (2 in UserGroup, 2 in
	// GroupFile).
	if len(res.T) != 4 {
		t.Errorf("T=%v want 4 tuples", res.T)
	}
	effects, gone, err := SideEffectsOf(q, db, res.T, relation.StringTuple("admin"))
	if err != nil || !gone || len(effects) != 0 {
		t.Errorf("verification failed: gone=%v effects=%v err=%v", gone, effects, err)
	}
}

func TestViewSPURejectsJoin(t *testing.T) {
	db := userGroupDB()
	var ce *ErrClass
	_, err := ViewSPU(userFileQuery(), db, relation.StringTuple("john", "f1"))
	if !errors.As(err, &ce) {
		t.Errorf("expected ErrClass, got %v", err)
	}
}

func TestViewSPUMissingTuple(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"group"}, algebra.R("UserGroup"))
	if _, err := ViewSPU(q, db, relation.StringTuple("nope")); !errors.Is(err, ErrNotInView) {
		t.Errorf("expected ErrNotInView, got %v", err)
	}
}

func TestViewSJ(t *testing.T) {
	db := userGroupDB()
	q := algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile"))
	// (mary, admin, f2): components UG(mary,admin) and GF(admin,f2).
	// UG(mary,admin) also witnesses (mary,admin,f1); GF(admin,f2) also
	// witnesses (john,admin,f2). Either way 1 side-effect; no free lunch.
	res, err := ViewSJ(q, db, relation.StringTuple("mary", "admin", "f2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 1 {
		t.Fatalf("SJ deletes one component, got %v", res.T)
	}
	if len(res.SideEffects) != 1 {
		t.Errorf("side-effects=%v want exactly 1", res.SideEffects)
	}
}

func TestViewSJSideEffectFree(t *testing.T) {
	db := userGroupDB()
	// Add a tuple participating in exactly one join result.
	db.Relation("UserGroup").InsertStrings("zoe", "guests")
	db.Relation("GroupFile").InsertStrings("guests", "f9")
	q := algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile"))
	res, err := ViewSJ(q, db, relation.StringTuple("zoe", "guests", "f9"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffectFree() {
		t.Errorf("unique join partner must allow side-effect-free deletion: %v", res.SideEffects)
	}
}

func TestViewSJRejectsProject(t *testing.T) {
	db := userGroupDB()
	var ce *ErrClass
	if _, err := ViewSJ(userFileQuery(), db, relation.StringTuple("john", "f1")); !errors.As(err, &ce) {
		t.Errorf("expected ErrClass, got %v", err)
	}
}

func TestViewExactUserFile(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	// Delete (john, f2): witnesses {UG(john,admin), GF(admin,f2)}.
	// Deleting GF(admin,f2) also kills (mary,f2); deleting UG(john,admin)
	// also kills (john,f1)? No — (john,f1) also derives via staff, so it
	// survives! Deleting UG(john,admin) is side-effect-free.
	res, err := ViewExact(q, db, relation.StringTuple("john", "f2"), ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffectFree() {
		t.Fatalf("expected side-effect-free deletion, got %v deleting %v", res.SideEffects, res.T)
	}
	if len(res.T) != 1 || res.T[0].Rel != "UserGroup" {
		t.Errorf("T=%v want [UserGroup(john,admin)]", res.T)
	}
	if !res.Exhausted {
		t.Error("small instance should be fully explored")
	}
	// Ground truth re-check.
	effects, gone, err := SideEffectsOf(q, db, res.T, relation.StringTuple("john", "f2"))
	if err != nil || !gone || len(effects) != 0 {
		t.Errorf("verification: gone=%v effects=%v err=%v", gone, effects, err)
	}
}

func TestViewExactUnavoidableSideEffect(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	r.InsertStrings("a", "x")
	db.MustAdd(r)
	s := relation.New("S", relation.NewSchema("B", "C"))
	s.InsertStrings("x", "c1")
	s.InsertStrings("x", "c2")
	db.MustAdd(s)
	q := algebra.Pi([]relation.Attribute{"A", "C"}, algebra.NatJoin(algebra.R("R"), algebra.R("S")))
	// Deleting (a,c1) forces either R(a,x) (killing (a,c2)) or S(x,c1)
	// (side-effect-free!). S(x,c1) only feeds (a,c1).
	res, err := ViewExact(q, db, relation.StringTuple("a", "c1"), ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SideEffectFree() {
		t.Errorf("S(x,c1) deletion should be free: got %v", res.SideEffects)
	}
	// Now make it unavoidable: target (a,c1) where S(x,c1) also feeds
	// another output.
	db2 := relation.NewDatabase()
	r2 := relation.New("R", relation.NewSchema("A", "B"))
	r2.InsertStrings("a", "x")
	r2.InsertStrings("b", "x")
	db2.MustAdd(r2)
	s2 := relation.New("S", relation.NewSchema("B", "C"))
	s2.InsertStrings("x", "c1")
	s2.InsertStrings("x", "c2")
	db2.MustAdd(s2)
	// View: (a,c1),(a,c2),(b,c1),(b,c2). Deleting (a,c1): R(a,x) kills
	// (a,c2) too; S(x,c1) kills (b,c1) too. Min side-effects = 1.
	res, err = ViewExact(q, db2, relation.StringTuple("a", "c1"), ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SideEffects) != 1 {
		t.Errorf("side-effects=%v want exactly 1", res.SideEffects)
	}
	free, _, err := HasSideEffectFreeDeletion(q, db2, relation.StringTuple("a", "c1"), ViewOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Error("no side-effect-free deletion exists here")
	}
}

func TestViewExactMissingTarget(t *testing.T) {
	db := userGroupDB()
	if _, err := ViewExact(userFileQuery(), db, relation.StringTuple("no", "pe"), ViewOptions{}); !errors.Is(err, ErrNotInView) {
		t.Errorf("expected ErrNotInView, got %v", err)
	}
}

func TestViewExactCandidateCap(t *testing.T) {
	db := userGroupDB()
	res, err := ViewExact(userFileQuery(), db, relation.StringTuple("john", "f1"), ViewOptions{MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates > 1 && !res.SideEffectFree() {
		t.Errorf("cap not respected: %d candidates", res.Candidates)
	}
}

// bruteForceViewOptimum finds the true minimum view side-effects over all
// subsets of source tuples that remove the target.
func bruteForceViewOptimum(q algebra.Query, db *relation.Database, target relation.Tuple) (int, bool) {
	all := db.AllSourceTuples()
	best := -1
	for mask := 1; mask < 1<<len(all); mask++ {
		var T []relation.SourceTuple
		for i, st := range all {
			if mask&(1<<i) != 0 {
				T = append(T, st)
			}
		}
		effects, gone, err := SideEffectsOf(q, db, T, target)
		if err != nil || !gone {
			continue
		}
		if best < 0 || len(effects) < best {
			best = len(effects)
		}
	}
	return best, best >= 0
}

// Property: ViewExact matches brute force on random small PJ instances.
func TestViewExactOptimalQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	q := algebra.Pi([]relation.Attribute{"A", "C"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		r1 := relation.New("R1", relation.NewSchema("A", "B"))
		r2 := relation.New("R2", relation.NewSchema("B", "C"))
		for i := 0; i < 2+r.Intn(3); i++ {
			r1.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
		}
		for i := 0; i < 2+r.Intn(3); i++ {
			r2.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
		}
		db.MustAdd(r1)
		db.MustAdd(r2)
		view := algebra.MustEval(q, db)
		if view.Len() == 0 {
			return true
		}
		target := view.Tuples()[r.Intn(view.Len())]
		res, err := ViewExact(q, db, target, ViewOptions{})
		if err != nil {
			t.Log(err)
			return false
		}
		want, feasible := bruteForceViewOptimum(q, db, target)
		if !feasible {
			t.Log("brute force found no deletion (impossible for monotone queries)")
			return false
		}
		if len(res.SideEffects) != want {
			t.Logf("exact=%d brute=%d on %s", len(res.SideEffects), want, relation.WriteDatabaseString(db))
			return false
		}
		// The reported deletion must actually achieve the reported effects.
		effects, gone, err := SideEffectsOf(q, db, res.T, target)
		if err != nil || !gone || len(effects) != len(res.SideEffects) {
			t.Logf("reported effects mismatch: %v vs %v", effects, res.SideEffects)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: for SJ queries the dedicated algorithm agrees with the generic
// exact solver.
func TestViewSJAgreesWithExactQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	q := algebra.NatJoin(algebra.R("R1"), algebra.R("R2"))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		r1 := relation.New("R1", relation.NewSchema("A", "B"))
		r2 := relation.New("R2", relation.NewSchema("B", "C"))
		for i := 0; i < 2+r.Intn(4); i++ {
			r1.Insert(relation.NewTuple(relation.Int(int64(r.Intn(3))), relation.Int(int64(r.Intn(2)))))
		}
		for i := 0; i < 2+r.Intn(4); i++ {
			r2.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(3)))))
		}
		db.MustAdd(r1)
		db.MustAdd(r2)
		view := algebra.MustEval(q, db)
		if view.Len() == 0 {
			return true
		}
		target := view.Tuples()[r.Intn(view.Len())]
		sj, err := ViewSJ(q, db, target)
		if err != nil {
			t.Log(err)
			return false
		}
		exact, err := ViewExact(q, db, target, ViewOptions{})
		if err != nil {
			t.Log(err)
			return false
		}
		if len(sj.SideEffects) != len(exact.SideEffects) {
			t.Logf("SJ=%d exact=%d", len(sj.SideEffects), len(exact.SideEffects))
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
