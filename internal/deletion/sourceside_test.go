package deletion

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func TestSourceSPU(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"group"}, algebra.R("UserGroup"))
	res, err := SourceSPU(q, db, relation.StringTuple("admin"))
	if err != nil {
		t.Fatal(err)
	}
	// john-admin and mary-admin both project to admin: both must go —
	// the unique solution of Theorem 2.8.
	if len(res.T) != 2 {
		t.Errorf("T=%v want 2 tuples", res.T)
	}
}

func TestSourceSJDeletesOneTuple(t *testing.T) {
	db := userGroupDB()
	q := algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile"))
	res, err := SourceSJ(q, db, relation.StringTuple("john", "staff", "f1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 1 {
		t.Errorf("Theorem 2.9: one deletion suffices, got %v", res.T)
	}
	_, gone, err := SideEffectsOf(q, db, res.T, relation.StringTuple("john", "staff", "f1"))
	if err != nil || !gone {
		t.Errorf("target not removed: %v", err)
	}
}

func TestSourceExactUserFile(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	// (john,f1) has two witnesses (staff and admin paths); the minimum
	// hitting set has size... witnesses: {UG(j,s),GF(s,f1)} and
	// {UG(j,a),GF(a,f1)}: disjoint, so 2 deletions minimum.
	res, err := SourceExact(q, db, relation.StringTuple("john", "f1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 2 {
		t.Errorf("minimum source deletion=%d want 2 (T=%v)", len(res.T), res.T)
	}
	if res.Witnesses != 2 {
		t.Errorf("witness count=%d want 2", res.Witnesses)
	}
	// (john,f2) has a single witness: 1 deletion suffices.
	res, err = SourceExact(q, db, relation.StringTuple("john", "f2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 1 {
		t.Errorf("minimum source deletion=%d want 1", len(res.T))
	}
}

func TestSourceGreedyValid(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	res, err := SourceGreedy(q, db, relation.StringTuple("john", "f1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, gone, err := SideEffectsOf(q, db, res.T, relation.StringTuple("john", "f1"))
	if err != nil || !gone {
		t.Errorf("greedy deletion invalid: gone=%v err=%v", gone, err)
	}
}

func TestSourceExactMissingTarget(t *testing.T) {
	db := userGroupDB()
	if _, err := SourceExact(userFileQuery(), db, relation.StringTuple("no", "pe"), 0); !errors.Is(err, ErrNotInView) {
		t.Errorf("expected ErrNotInView, got %v", err)
	}
}

// bruteForceSourceOptimum finds the true minimum |T| removing the target.
func bruteForceSourceOptimum(q algebra.Query, db *relation.Database, target relation.Tuple) int {
	all := db.AllSourceTuples()
	best := len(all) + 1
	for mask := 1; mask < 1<<len(all); mask++ {
		size := 0
		var T []relation.SourceTuple
		for i, st := range all {
			if mask&(1<<i) != 0 {
				T = append(T, st)
				size++
			}
		}
		if size >= best {
			continue
		}
		_, gone, err := SideEffectsOf(q, db, T, target)
		if err == nil && gone {
			best = size
		}
	}
	return best
}

// Property: SourceExact is optimal and SourceGreedy feasible on random
// small PJ instances; greedy never beats exact.
func TestSourceExactOptimalQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	q := algebra.Pi([]relation.Attribute{"A", "C"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		r1 := relation.New("R1", relation.NewSchema("A", "B"))
		r2 := relation.New("R2", relation.NewSchema("B", "C"))
		for i := 0; i < 2+r.Intn(3); i++ {
			r1.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
		}
		for i := 0; i < 2+r.Intn(3); i++ {
			r2.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
		}
		db.MustAdd(r1)
		db.MustAdd(r2)
		view := algebra.MustEval(q, db)
		if view.Len() == 0 {
			return true
		}
		target := view.Tuples()[r.Intn(view.Len())]
		exact, err := SourceExact(q, db, target, 0)
		if err != nil {
			t.Log(err)
			return false
		}
		want := bruteForceSourceOptimum(q, db, target)
		if len(exact.T) != want {
			t.Logf("exact=%d brute=%d", len(exact.T), want)
			return false
		}
		greedy, err := SourceGreedy(q, db, target, 0)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(greedy.T) < len(exact.T) {
			t.Logf("greedy %d beat exact %d — impossible", len(greedy.T), len(exact.T))
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestCuiWidomFindsFreeTranslation(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	res, err := CuiWidom(q, db, relation.StringTuple("john", "f2"), CuiWidomOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.SideEffectFree() {
		t.Errorf("baseline should find the side-effect-free deletion: %+v", res)
	}
	if res.Evaluations == 0 {
		t.Error("baseline must count evaluations")
	}
}

func TestCuiWidomBestEffort(t *testing.T) {
	// No side-effect-free deletion exists (see TestViewExactUnavoidable).
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	r.InsertStrings("a", "x")
	r.InsertStrings("b", "x")
	db.MustAdd(r)
	s := relation.New("S", relation.NewSchema("B", "C"))
	s.InsertStrings("x", "c1")
	s.InsertStrings("x", "c2")
	db.MustAdd(s)
	q := algebra.Pi([]relation.Attribute{"A", "C"}, algebra.NatJoin(algebra.R("R"), algebra.R("S")))
	res, err := CuiWidom(q, db, relation.StringTuple("a", "c1"), CuiWidomOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("baseline should find some translation")
	}
	if len(res.SideEffects) != 1 {
		t.Errorf("best-effort side-effects=%d want 1", len(res.SideEffects))
	}
}

func TestCuiWidomEvaluationCap(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	res, err := CuiWidom(q, db, relation.StringTuple("john", "f1"), CuiWidomOptions{MaxEvaluations: 2})
	// With only 2 evaluations the search may or may not find a
	// translation; either way the cap must be respected.
	if res != nil && res.Evaluations > 2 {
		t.Errorf("evaluations=%d exceeds cap", res.Evaluations)
	}
	_ = err
}

func TestCuiWidomMissingTarget(t *testing.T) {
	db := userGroupDB()
	if _, err := CuiWidom(userFileQuery(), db, relation.StringTuple("no", "pe"), CuiWidomOptions{}); !errors.Is(err, ErrNotInView) {
		t.Errorf("expected ErrNotInView, got %v", err)
	}
}
