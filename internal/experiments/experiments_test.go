package experiments

import (
	"strings"
	"testing"
)

func TestTable1PolySeriesShape(t *testing.T) {
	s, err := Table1PolySeries(1, []int{50, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points=%d", len(s.Points))
	}
	// Work grows with data but polynomially: doubling rows must not
	// square the work (allow generous slack for hash effects).
	for i := 1; i < len(s.Points); i++ {
		prev := s.Points[i-1].Metrics["spu_work"]
		cur := s.Points[i].Metrics["spu_work"]
		if cur <= prev {
			t.Errorf("SPU work must grow: %v -> %v", prev, cur)
		}
		if cur > prev*prev {
			t.Errorf("SPU work grew super-polynomially: %v -> %v", prev, cur)
		}
	}
}

func TestTable1HardSeriesAgreement(t *testing.T) {
	s, err := Table1HardSeries(2, []int{4, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Metrics["agreement"] != 1.0 {
			t.Errorf("vars=%d: reduction disagreed with DPLL", p.X)
		}
		if p.Metrics["pj_candidates"] < 1 {
			t.Errorf("vars=%d: no candidates explored", p.X)
		}
	}
}

func TestTable2ApproxSeries(t *testing.T) {
	s, err := Table2ApproxSeries(3, []int{4, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Metrics["agreement"] != 1.0 {
			t.Errorf("universe=%d: Theorem 2.7 equivalence violated", p.X)
		}
		if p.Metrics["ratio"] > p.Metrics["hn_bound"]+1e-9 {
			t.Errorf("universe=%d: greedy ratio %v exceeds H(n)=%v",
				p.X, p.Metrics["ratio"], p.Metrics["hn_bound"])
		}
	}
}

func TestTheorem25WorkSeriesBlowsUp(t *testing.T) {
	s, err := Theorem25WorkSeries([]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Metrics["view_rows"] != 1 {
			t.Errorf("universe=%d: view rows %v want 1", p.X, p.Metrics["view_rows"])
		}
	}
	// max_intermediate is n^n exactly for the singleton-set family.
	want := map[int]float64{2: 4, 3: 27, 4: 256}
	for _, p := range s.Points {
		if p.Metrics["max_intermediate"] != want[p.X] {
			t.Errorf("universe=%d: max intermediate %v want %v (n^n)",
				p.X, p.Metrics["max_intermediate"], want[p.X])
		}
	}
}

func TestChainSeriesOptimal(t *testing.T) {
	s, err := ChainSeries(4, []int{2, 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Metrics["optimal"] != 1.0 {
			t.Errorf("k=%d: min-cut not optimal (%v vs %v)",
				p.X, p.Metrics["cut_size"], p.Metrics["exact_size"])
		}
	}
}

func TestTable3Series(t *testing.T) {
	s, err := Table3Series(5, []int{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Metrics["pj_agreement"] != 1.0 {
			t.Errorf("clauses=%d: Theorem 3.2 decision disagreed with DPLL", p.X)
		}
		if p.Metrics["spu_free"] != 1.0 {
			t.Errorf("clauses=%d: Theorem 3.3 guarantee violated", p.X)
		}
	}
}

func TestAllAndRender(t *testing.T) {
	series, err := All(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series=%d want 6", len(series))
	}
	for _, s := range series {
		out := s.Render()
		if !strings.Contains(out, s.XLabel) || len(s.Points) == 0 {
			t.Errorf("series %q renders badly:\n%s", s.Name, out)
		}
	}
}
