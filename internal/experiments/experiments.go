// Package experiments runs the deterministic, machine-independent
// experiment series behind EXPERIMENTS.md: instead of wall-clock times it
// reports certified quantities — work counters from the instrumented
// evaluator, solver candidate counts, solution sizes and agreement flags —
// so the complexity shapes of the paper's tables reproduce exactly on any
// machine. The wall-clock companions live in bench_test.go.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/deletion"
	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/setcover"
	"repro/internal/workload"
)

// Point is one measurement in a series.
type Point struct {
	// X is the scale parameter (rows, variables, clauses, universe...).
	X int
	// Metrics maps metric names to values.
	Metrics map[string]float64
}

// Series is a named sequence of measurements.
type Series struct {
	Name    string
	XLabel  string
	Columns []string
	Points  []Point
}

// Render draws the series as an aligned text table.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	fmt.Fprintf(&b, "%-10s", s.XLabel)
	for _, c := range s.Columns {
		fmt.Fprintf(&b, " %16s", c)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-10d", p.X)
		for _, c := range s.Columns {
			fmt.Fprintf(&b, " %16.3f", p.Metrics[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// add appends a point, keeping column order stable.
func (s *Series) add(x int, metrics map[string]float64) {
	s.Points = append(s.Points, Point{X: x, Metrics: metrics})
}

// Table1PolySeries measures the §2.1 polynomial rows: evaluation work for
// SPU and SJ deletion at growing data sizes. Work grows polynomially
// (near-linearly) with rows.
func Table1PolySeries(seed int64, sizes []int) (*Series, error) {
	s := &Series{
		Name:    "Table 1 (view side-effect, P rows): evaluation work vs data size",
		XLabel:  "rows",
		Columns: []string{"spu_work", "sj_work"},
	}
	for _, rows := range sizes {
		r := rand.New(rand.NewSource(seed))
		dbSPU, qSPU := workload.SPU(r, 3, rows, rows/4+1)
		spuStats, err := algebra.EvalWithStats(qSPU, dbSPU)
		if err != nil {
			return nil, err
		}
		dbSJ, qSJ := workload.SJ(r, rows, rows/4+1)
		sjStats, err := algebra.EvalWithStats(qSJ, dbSJ)
		if err != nil {
			return nil, err
		}
		s.add(rows, map[string]float64{
			"spu_work": float64(spuStats.TotalWork()),
			"sj_work":  float64(sjStats.TotalWork()),
		})
	}
	return s, nil
}

// Table1HardSeries measures the §2.1 NP-hard rows on Theorem 2.1/2.2
// instances: candidates explored by the exact side-effect-free decision,
// averaged over instances, plus agreement with DPLL (must be 1.0).
func Table1HardSeries(seed int64, varSizes []int, perSize int) (*Series, error) {
	s := &Series{
		Name:    "Table 1 (view side-effect, NP-hard rows): exact-search candidates vs variables",
		XLabel:  "vars",
		Columns: []string{"pj_candidates", "ju_candidates", "agreement"},
	}
	r := rand.New(rand.NewSource(seed))
	for _, vars := range varSizes {
		var pjC, juC float64
		agree := true
		for k := 0; k < perSize; k++ {
			f := sat.RandomMonotone3SAT(r, vars, 2*vars)
			want := sat.Satisfiable(f)

			pj, err := reduction.EncodeViewPJ(f)
			if err != nil {
				return nil, err
			}
			free, res, err := deletion.HasSideEffectFreeDeletion(pj.Query, pj.DB, pj.Target, deletion.ViewOptions{})
			if err != nil {
				return nil, err
			}
			agree = agree && free == want
			pjC += float64(res.Candidates)

			ju, err := reduction.EncodeViewJU(f)
			if err != nil {
				return nil, err
			}
			free, res, err = deletion.HasSideEffectFreeDeletion(ju.Query, ju.DB, ju.Target, deletion.ViewOptions{})
			if err != nil {
				return nil, err
			}
			agree = agree && free == want
			juC += float64(res.Candidates)
		}
		a := 0.0
		if agree {
			a = 1.0
		}
		s.add(vars, map[string]float64{
			"pj_candidates": pjC / float64(perSize),
			"ju_candidates": juC / float64(perSize),
			"agreement":     a,
		})
	}
	return s, nil
}

// Table2ApproxSeries measures the §2.2 approximation landscape on Theorem
// 2.7 families: greedy vs exact hitting-set cost and the H(n) bound.
func Table2ApproxSeries(seed int64, universes []int, perSize int) (*Series, error) {
	s := &Series{
		Name:    "Table 2 (source side-effect): greedy/exact ratio vs universe (bound H(n))",
		XLabel:  "universe",
		Columns: []string{"ratio", "hn_bound", "agreement"},
	}
	r := rand.New(rand.NewSource(seed))
	for _, n := range universes {
		worst := 1.0
		agree := true
		for k := 0; k < perSize; k++ {
			sets := make([][]int, n-1)
			for i := range sets {
				sets[i] = []int{r.Intn(n)}
				for e := 0; e < n; e++ {
					if r.Intn(3) == 0 {
						sets[i] = append(sets[i], e)
					}
				}
			}
			sys := setcover.MustInstance(n, sets...)
			in, err := reduction.EncodeSourceJU(sys)
			if err != nil {
				return nil, err
			}
			exact, err := deletion.SourceExact(in.Query, in.DB, in.Target, 0)
			if err != nil {
				return nil, err
			}
			greedy, err := deletion.SourceGreedy(in.Query, in.DB, in.Target, 0)
			if err != nil {
				return nil, err
			}
			ratio := float64(len(greedy.T)) / float64(len(exact.T))
			if ratio > worst {
				worst = ratio
			}
			agree = agree && in.VerifyAgainstHittingSet(len(exact.T)) == nil
		}
		a := 0.0
		if agree {
			a = 1.0
		}
		s.add(n, map[string]float64{
			"ratio":     worst,
			"hn_bound":  setcover.HarmonicBound(n),
			"agreement": a,
		})
	}
	return s, nil
}

// Theorem25WorkSeries measures the intermediate-work blow-up of the
// Figure 3 construction: view stays one tuple while join work explodes.
func Theorem25WorkSeries(universes []int) (*Series, error) {
	s := &Series{
		Name:    "Theorem 2.5 (Figure 3): join work vs universe (view is always 1 tuple)",
		XLabel:  "universe",
		Columns: []string{"join_work", "max_intermediate", "view_rows"},
	}
	for _, n := range universes {
		sets := make([][]int, n)
		for i := range sets {
			sets[i] = []int{i}
		}
		in, err := reduction.EncodeSourcePJ(setcover.MustInstance(n, sets...))
		if err != nil {
			return nil, err
		}
		stats, err := algebra.EvalWithStats(in.Query, in.DB)
		if err != nil {
			return nil, err
		}
		s.add(n, map[string]float64{
			"join_work":        float64(stats.TotalWork()),
			"max_intermediate": float64(stats.MaxIntermediate()),
			"view_rows":        float64(stats.View.Len()),
		})
	}
	return s, nil
}

// ChainSeries measures Theorem 2.6: min-cut size equals the exact optimum
// at every chain length (optimal flag 1.0) with polynomial network sizes.
func ChainSeries(seed int64, lengths []int, rows int) (*Series, error) {
	s := &Series{
		Name:    "Theorem 2.6 (chain joins): min-cut vs exact optimum",
		XLabel:  "k",
		Columns: []string{"cut_size", "exact_size", "optimal"},
	}
	for _, k := range lengths {
		r := rand.New(rand.NewSource(seed))
		db, q := workload.Chain(r, k, rows, 3)
		target, ok := workload.PickViewTuple(r, q, db)
		if !ok {
			continue
		}
		cut, err := deletion.SourceChainMinCut(q, db, target)
		if err != nil {
			return nil, err
		}
		exact, err := deletion.SourceExact(q, db, target, 0)
		if err != nil {
			return nil, err
		}
		opt := 0.0
		if len(cut.T) == len(exact.T) {
			opt = 1.0
		}
		s.add(k, map[string]float64{
			"cut_size":   float64(len(cut.T)),
			"exact_size": float64(len(exact.T)),
			"optimal":    opt,
		})
	}
	return s, nil
}

// Table3Series measures §3.1: SPU placements are always side-effect-free
// (Theorem 3.3) and PJ placement agreement with DPLL on Theorem 3.2
// instances.
func Table3Series(seed int64, clauseSizes []int, perSize int) (*Series, error) {
	s := &Series{
		Name:    "Table 3 (annotation placement): PJ decision agreement and SPU guarantee",
		XLabel:  "clauses",
		Columns: []string{"pj_agreement", "spu_free"},
	}
	r := rand.New(rand.NewSource(seed))
	for _, m := range clauseSizes {
		agree := true
		for k := 0; k < perSize; k++ {
			f := sat.RandomConnected3SAT(r, m+2, m)
			in, err := reduction.EncodeAnnPJ(f)
			if err != nil {
				return nil, err
			}
			p, err := annotation.Place(in.Query, in.DB, in.TargetTuple, in.TargetAttr)
			if err != nil {
				return nil, err
			}
			agree = agree && p.SideEffectFree() == sat.Satisfiable(f)
		}
		// SPU guarantee on a fresh instance of comparable size.
		db, q := workload.SPU(r, 3, 50*m, 10)
		target, ok := workload.PickViewTuple(r, q, db)
		spuFree := 0.0
		if ok {
			p, err := annotation.PlaceSPU(q, db, target, "A")
			if err != nil {
				return nil, err
			}
			if p.SideEffectFree() {
				spuFree = 1.0
			}
		}
		a := 0.0
		if agree {
			a = 1.0
		}
		s.add(m, map[string]float64{"pj_agreement": a, "spu_free": spuFree})
	}
	return s, nil
}

// All runs every series with default parameters sized for seconds, not
// minutes.
func All(seed int64) ([]*Series, error) {
	var out []*Series
	t1p, err := Table1PolySeries(seed, []int{100, 200, 400, 800})
	if err != nil {
		return nil, err
	}
	out = append(out, t1p)
	t1h, err := Table1HardSeries(seed, []int{4, 6, 8, 10}, 3)
	if err != nil {
		return nil, err
	}
	out = append(out, t1h)
	t2, err := Table2ApproxSeries(seed, []int{4, 6, 8}, 3)
	if err != nil {
		return nil, err
	}
	out = append(out, t2)
	t25, err := Theorem25WorkSeries([]int{2, 3, 4, 5})
	if err != nil {
		return nil, err
	}
	out = append(out, t25)
	chain, err := ChainSeries(seed, []int{2, 3, 4}, 8)
	if err != nil {
		return nil, err
	}
	out = append(out, chain)
	t3, err := Table3Series(seed, []int{2, 3, 4}, 3)
	if err != nil {
		return nil, err
	}
	out = append(out, t3)
	return out, nil
}
