package workload

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/deletion"
	"repro/internal/relation"
)

func TestUserGroupFileShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	db, q := UserGroupFile(r, 10, 4, 8, 2, 2)
	if db.Relation("UserGroup") == nil || db.Relation("GroupFile") == nil {
		t.Fatal("missing relations")
	}
	if algebra.Fragment(q) != "PJ" {
		t.Errorf("fragment %q want PJ", algebra.Fragment(q))
	}
	view, err := algebra.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if view.Len() == 0 {
		t.Error("view should be non-empty with these parameters")
	}
	if !view.Schema().Equal(relation.NewSchema("user", "file")) {
		t.Errorf("view schema %v", view.Schema())
	}
}

func TestTwoRelationPJShape(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	db, q := TwoRelationPJ(r, 20, 4)
	if algebra.Fragment(q) != "PJ" {
		t.Errorf("fragment %q", algebra.Fragment(q))
	}
	if db.Relation("R1").Len() == 0 || db.Relation("R2").Len() == 0 {
		t.Error("empty relations")
	}
	if _, err := algebra.Eval(q, db); err != nil {
		t.Fatal(err)
	}
}

func TestChainShape(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	db, q := Chain(r, 4, 10, 3)
	if len(db.Names()) != 4 {
		t.Errorf("relations=%d want 4", len(db.Names()))
	}
	info, err := deletion.DetectChain(q, db)
	if err != nil {
		t.Fatalf("generated chain not detected: %v", err)
	}
	if len(info.Relations) != 4 {
		t.Errorf("chain length %d", len(info.Relations))
	}
}

func TestSPUShape(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	db, q := SPU(r, 3, 15, 4)
	if algebra.Fragment(q) != "SPU" {
		t.Errorf("fragment %q want SPU", algebra.Fragment(q))
	}
	if _, err := algebra.Eval(q, db); err != nil {
		t.Fatal(err)
	}
}

func TestSJShape(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	db, q := SJ(r, 15, 4)
	if algebra.Fragment(q) != "SJ" {
		t.Errorf("fragment %q want SJ", algebra.Fragment(q))
	}
	if _, err := algebra.Eval(q, db); err != nil {
		t.Fatal(err)
	}
}

func TestSJUShape(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	db, q := SJU(r, 15, 3)
	if algebra.Fragment(q) != "JU" && algebra.Fragment(q) != "SJU" {
		t.Errorf("fragment %q want (S)JU", algebra.Fragment(q))
	}
	if algebra.OperatorsOf(q).HasAny(algebra.OpProject) {
		t.Error("SJU workload must not project")
	}
	if _, err := algebra.Eval(q, db); err != nil {
		t.Fatal(err)
	}
}

func TestCurationShape(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db, q := Curation(r, 12, 2)
	view, err := algebra.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Every protein row joins its gene: view rows == protein rows.
	if view.Len() != db.Relation("Protein").Len() {
		t.Errorf("view=%d proteins=%d", view.Len(), db.Relation("Protein").Len())
	}
}

func TestDeterminism(t *testing.T) {
	a1, q1 := UserGroupFile(rand.New(rand.NewSource(9)), 8, 3, 6, 2, 2)
	a2, q2 := UserGroupFile(rand.New(rand.NewSource(9)), 8, 3, 6, 2, 2)
	if !algebra.Equal(q1, q2) {
		t.Error("queries differ across same-seed runs")
	}
	for _, name := range a1.Names() {
		if !a1.Relation(name).Equal(a2.Relation(name)) {
			t.Errorf("relation %s differs across same-seed runs", name)
		}
	}
}

func TestPickViewTuple(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	db, q := SJ(r, 10, 3)
	if tu, ok := PickViewTuple(r, q, db); ok {
		view, _ := algebra.Eval(q, db)
		if !view.Contains(tu) {
			t.Error("picked tuple not in view")
		}
	}
}
