// Package workload generates the synthetic databases and queries used by
// the examples and the benchmark harness: the UserGroup/GroupFile scenario
// of §2.1.1 (after Cui–Widom), random two-relation PJ instances, chain
// joins for Theorem 2.6, SPU/SJU instances for the polynomial rows of the
// dichotomy tables, and a curated-annotation scenario standing in for the
// biological annotation services (BioDAS) the paper motivates annotations
// with.
//
// All generators take an explicit *rand.Rand so benches are deterministic.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// UserGroupFile builds the paper's motivating scenario: UserGroup(user,
// group) and GroupFile(group, file) with the query Π_{user,file}(UserGroup
// ⋈ GroupFile). Each user joins 1..maxGroups groups; each file is shared
// by 1..maxShares groups.
func UserGroupFile(r *rand.Rand, users, groups, files, maxGroups, maxShares int) (*relation.Database, algebra.Query) {
	db := relation.NewDatabase()
	ug := relation.New("UserGroup", relation.NewSchema("user", "group"))
	for u := 0; u < users; u++ {
		k := 1 + r.Intn(maxGroups)
		for i := 0; i < k; i++ {
			ug.InsertStrings("u"+strconv.Itoa(u), "g"+strconv.Itoa(r.Intn(groups)))
		}
	}
	db.MustAdd(ug)
	gf := relation.New("GroupFile", relation.NewSchema("group", "file"))
	for f := 0; f < files; f++ {
		k := 1 + r.Intn(maxShares)
		for i := 0; i < k; i++ {
			gf.InsertStrings("g"+strconv.Itoa(r.Intn(groups)), "f"+strconv.Itoa(f))
		}
	}
	db.MustAdd(gf)
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	return db, q
}

// TwoRelationPJ builds a random Π_{A,C}(R1(A,B) ⋈ R2(B,C)) instance with
// the given rows per relation and attribute domain sizes.
func TwoRelationPJ(r *rand.Rand, rows, domain int) (*relation.Database, algebra.Query) {
	db := relation.NewDatabase()
	r1 := relation.New("R1", relation.NewSchema("A", "B"))
	r2 := relation.New("R2", relation.NewSchema("B", "C"))
	for i := 0; i < rows; i++ {
		r1.Insert(relation.NewTuple(
			relation.Int(int64(r.Intn(domain))), relation.Int(int64(r.Intn(domain)))))
		r2.Insert(relation.NewTuple(
			relation.Int(int64(r.Intn(domain))), relation.Int(int64(r.Intn(domain)))))
	}
	db.MustAdd(r1)
	db.MustAdd(r2)
	q := algebra.Pi([]relation.Attribute{"A", "C"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	return db, q
}

// Chain builds a k-relation chain R1(A0,A1) ⋈ ... ⋈ Rk(Ak-1,Ak) projected
// onto (A0, Ak) — the family of Theorem 2.6 — with rows tuples per
// relation over the given per-attribute domain.
func Chain(r *rand.Rand, k, rows, domain int) (*relation.Database, algebra.Query) {
	db := relation.NewDatabase()
	var qs []algebra.Query
	for i := 1; i <= k; i++ {
		schema := relation.NewSchema("A"+strconv.Itoa(i-1), "A"+strconv.Itoa(i))
		rel := relation.New("R"+strconv.Itoa(i), schema)
		for j := 0; j < rows; j++ {
			rel.Insert(relation.NewTuple(
				relation.Int(int64(r.Intn(domain))), relation.Int(int64(r.Intn(domain)))))
		}
		db.MustAdd(rel)
		qs = append(qs, algebra.R(rel.Name()))
	}
	q := algebra.Pi([]relation.Attribute{"A0", "A" + strconv.Itoa(k)}, algebra.NatJoin(qs...))
	return db, q
}

// SPU builds a random SPU instance: k base relations with a common schema
// (A, B), the query being the union of a selection+projection per
// relation — the polynomial row of both deletion tables.
func SPU(r *rand.Rand, k, rows, domain int) (*relation.Database, algebra.Query) {
	db := relation.NewDatabase()
	var qs []algebra.Query
	for i := 1; i <= k; i++ {
		rel := relation.New("R"+strconv.Itoa(i), relation.NewSchema("A", "B"))
		for j := 0; j < rows; j++ {
			rel.Insert(relation.NewTuple(
				relation.Int(int64(r.Intn(domain))), relation.Int(int64(r.Intn(domain)))))
		}
		db.MustAdd(rel)
		qs = append(qs, algebra.Pi([]relation.Attribute{"A"},
			algebra.Sigma(algebra.AttrConst{Attr: "B", Op: algebra.OpGe, Val: relation.Int(0)},
				algebra.R(rel.Name()))))
	}
	return db, algebra.Un(qs...)
}

// SJ builds a random SJ instance: R1(A,B) ⋈ R2(B,C) with a selection, no
// projection — the other polynomial row.
func SJ(r *rand.Rand, rows, domain int) (*relation.Database, algebra.Query) {
	db := relation.NewDatabase()
	r1 := relation.New("R1", relation.NewSchema("A", "B"))
	r2 := relation.New("R2", relation.NewSchema("B", "C"))
	for i := 0; i < rows; i++ {
		r1.Insert(relation.NewTuple(
			relation.Int(int64(r.Intn(domain))), relation.Int(int64(r.Intn(domain)))))
		r2.Insert(relation.NewTuple(
			relation.Int(int64(r.Intn(domain))), relation.Int(int64(r.Intn(domain)))))
	}
	db.MustAdd(r1)
	db.MustAdd(r2)
	q := algebra.Sigma(algebra.AttrConst{Attr: "A", Op: algebra.OpGe, Val: relation.Int(0)},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	return db, q
}

// SJU builds a union of two SJ queries over disjoint relation pairs with a
// shared output schema — the polynomial row of the annotation table that
// is NP-hard for deletions.
func SJU(r *rand.Rand, rows, domain int) (*relation.Database, algebra.Query) {
	db := relation.NewDatabase()
	mk := func(name string, a1, a2 relation.Attribute) {
		rel := relation.New(name, relation.NewSchema(a1, a2))
		for i := 0; i < rows; i++ {
			rel.Insert(relation.NewTuple(
				relation.Int(int64(r.Intn(domain))), relation.Int(int64(r.Intn(domain)))))
		}
		db.MustAdd(rel)
	}
	mk("R1", "A", "B")
	mk("R2", "B", "C")
	mk("S1", "A", "B")
	mk("S2", "B", "C")
	q := algebra.Un(
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")),
		algebra.NatJoin(algebra.R("S1"), algebra.R("S2")),
	)
	return db, q
}

// Curation builds the annotation-curation scenario standing in for the
// biological annotation servers of [9]: a Gene table, a Protein table
// keyed by gene, and the published view joining them. Curators annotate
// view cells and the system must find source cells to hold the annotation.
func Curation(r *rand.Rand, genes, proteinsPerGene int) (*relation.Database, algebra.Query) {
	db := relation.NewDatabase()
	g := relation.New("Gene", relation.NewSchema("gene", "organism", "chromosome"))
	organisms := []string{"human", "mouse", "fly", "yeast"}
	for i := 0; i < genes; i++ {
		g.InsertStrings(
			fmt.Sprintf("G%04d", i),
			organisms[r.Intn(len(organisms))],
			"chr"+strconv.Itoa(1+r.Intn(22)))
	}
	db.MustAdd(g)
	p := relation.New("Protein", relation.NewSchema("gene", "protein", "function"))
	functions := []string{"kinase", "ligase", "receptor", "transport", "unknown"}
	for i := 0; i < genes; i++ {
		k := 1 + r.Intn(proteinsPerGene)
		for j := 0; j < k; j++ {
			p.InsertStrings(
				fmt.Sprintf("G%04d", i),
				fmt.Sprintf("P%04d_%d", i, j),
				functions[r.Intn(len(functions))])
		}
	}
	db.MustAdd(p)
	q := algebra.Pi([]relation.Attribute{"gene", "organism", "protein", "function"},
		algebra.NatJoin(algebra.R("Gene"), algebra.R("Protein")))
	return db, q
}

// PickViewTuple evaluates q and returns a pseudo-random view tuple, or ok
// = false when the view is empty.
func PickViewTuple(r *rand.Rand, q algebra.Query, db *relation.Database) (relation.Tuple, bool) {
	view, err := algebra.Eval(q, db)
	if err != nil || view.Len() == 0 {
		return nil, false
	}
	return view.Tuple(r.Intn(view.Len())), true
}
