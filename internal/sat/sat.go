// Package sat implements CNF formulas and a DPLL satisfiability solver.
// The paper's NP-hardness reductions (Theorems 2.1, 2.2 and 3.2) start
// from 3SAT and monotone 3SAT; this package makes those reductions
// executable and independently checkable: the reduction output is solved
// by the view-update machinery and the answer compared against DPLL.
package sat

import (
	"fmt"
	"sort"
	"strings"
)

// Literal is a signed variable reference: +v is the positive literal of
// variable v, -v the negated one. Variables are numbered from 1.
type Literal int

// Var returns the variable of the literal.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is unnegated.
func (l Literal) Positive() bool { return l > 0 }

// Neg returns the complementary literal.
func (l Literal) Neg() Literal { return -l }

// String renders the literal as x3 or ¬x3.
func (l Literal) String() string {
	if l < 0 {
		return fmt.Sprintf("¬x%d", -l)
	}
	return fmt.Sprintf("x%d", l)
}

// Clause is a disjunction of literals.
type Clause []Literal

// String renders the clause as (x1 ∨ ¬x2 ∨ x3).
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// AllPositive reports whether every literal is positive.
func (c Clause) AllPositive() bool {
	for _, l := range c {
		if !l.Positive() {
			return false
		}
	}
	return true
}

// AllNegative reports whether every literal is negated.
func (c Clause) AllNegative() bool {
	for _, l := range c {
		if l.Positive() {
			return false
		}
	}
	return true
}

// Formula is a CNF formula: a conjunction of clauses over variables
// 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// New creates a formula with n variables and the given clauses. It panics
// if a clause references a variable outside 1..n (programmer error in
// instance construction).
func New(n int, clauses ...Clause) *Formula {
	f := &Formula{NumVars: n}
	for _, c := range clauses {
		f.AddClause(c...)
	}
	return f
}

// AddClause appends a clause, validating variable bounds.
func (f *Formula) AddClause(lits ...Literal) {
	for _, l := range lits {
		if l == 0 || l.Var() > f.NumVars {
			panic(fmt.Sprintf("sat: literal %d out of range 1..%d", l, f.NumVars))
		}
	}
	f.Clauses = append(f.Clauses, append(Clause(nil), lits...))
}

// IsMonotone reports whether every clause is all-positive or all-negative —
// the "monotone" 3SAT variant of Gold used by Theorems 2.1 and 2.2.
func (f *Formula) IsMonotone() bool {
	for _, c := range f.Clauses {
		if !c.AllPositive() && !c.AllNegative() {
			return false
		}
	}
	return true
}

// Is3CNF reports whether every clause has at most three literals.
func (f *Formula) Is3CNF() bool {
	for _, c := range f.Clauses {
		if len(c) > 3 {
			return false
		}
	}
	return true
}

// String renders the formula as a conjunction of clauses.
func (f *Formula) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Assignment maps variables 1..n to truth values. Index 0 is unused.
type Assignment []bool

// Satisfies reports whether the assignment makes every clause true.
func (a Assignment) Satisfies(f *Formula) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v := l.Var()
			if v < len(a) && a[v] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders the assignment as x1=T x2=F ...
func (a Assignment) String() string {
	var parts []string
	for v := 1; v < len(a); v++ {
		tv := "F"
		if a[v] {
			tv = "T"
		}
		parts = append(parts, fmt.Sprintf("x%d=%s", v, tv))
	}
	return strings.Join(parts, " ")
}

// Solve decides satisfiability with DPLL (unit propagation, pure-literal
// elimination, most-frequent-variable branching). It returns a satisfying
// assignment when one exists.
func Solve(f *Formula) (Assignment, bool) {
	s := solver{n: f.NumVars}
	clauses := make([]Clause, len(f.Clauses))
	copy(clauses, f.Clauses)
	asg := make([]int8, f.NumVars+1) // 0 unassigned, +1 true, -1 false
	if !s.dpll(clauses, asg) {
		return nil, false
	}
	out := make(Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = asg[v] > 0 // unassigned variables default to false
	}
	return out, true
}

type solver struct {
	n int
}

// simplify applies the partial assignment: satisfied clauses drop, false
// literals vanish. It reports false on an empty clause.
func simplify(clauses []Clause, asg []int8) ([]Clause, bool) {
	out := make([]Clause, 0, len(clauses))
	for _, c := range clauses {
		var kept Clause
		satisfied := false
		for _, l := range c {
			switch {
			case asg[l.Var()] == 0:
				kept = append(kept, l)
			case (asg[l.Var()] > 0) == l.Positive():
				satisfied = true
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		if len(kept) == 0 {
			return nil, false
		}
		out = append(out, kept)
	}
	return out, true
}

func (s *solver) dpll(clauses []Clause, asg []int8) bool {
	for {
		var ok bool
		clauses, ok = simplify(clauses, asg)
		if !ok {
			return false
		}
		if len(clauses) == 0 {
			return true
		}
		// Unit propagation.
		progress := false
		for _, c := range clauses {
			if len(c) == 1 {
				l := c[0]
				if asg[l.Var()] != 0 {
					continue
				}
				if l.Positive() {
					asg[l.Var()] = 1
				} else {
					asg[l.Var()] = -1
				}
				progress = true
			}
		}
		if progress {
			continue
		}
		// Pure literal elimination.
		polarity := make(map[int]int8)
		for _, c := range clauses {
			for _, l := range c {
				v := l.Var()
				var p int8 = -1
				if l.Positive() {
					p = 1
				}
				if cur, seen := polarity[v]; !seen {
					polarity[v] = p
				} else if cur != p {
					polarity[v] = 0
				}
			}
		}
		pure := false
		for v, p := range polarity {
			if p != 0 && asg[v] == 0 {
				asg[v] = p
				pure = true
			}
		}
		if pure {
			continue
		}
		// Branch on the most frequent unassigned variable.
		counts := make(map[int]int)
		for _, c := range clauses {
			for _, l := range c {
				counts[l.Var()]++
			}
		}
		best, bestCount := 0, -1
		vars := make([]int, 0, len(counts))
		for v := range counts {
			vars = append(vars, v)
		}
		sort.Ints(vars) // deterministic branching
		for _, v := range vars {
			if counts[v] > bestCount {
				best, bestCount = v, counts[v]
			}
		}
		for _, val := range []int8{1, -1} {
			cp := make([]int8, len(asg))
			copy(cp, asg)
			cp[best] = val
			if s.dpll(clauses, cp) {
				copy(asg, cp)
				return true
			}
		}
		return false
	}
}

// Satisfiable is Solve discarding the assignment.
func Satisfiable(f *Formula) bool {
	_, ok := Solve(f)
	return ok
}
