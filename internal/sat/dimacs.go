package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS parses a CNF formula in DIMACS format:
//
//	c a comment
//	p cnf 3 2
//	1 -2 3 0
//	-1 2 0
//
// Clauses may span lines; each ends with 0. The declared counts are
// validated against the content.
func ReadDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var f *Formula
	declaredClauses := -1
	var current Clause
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if f != nil {
				return nil, fmt.Errorf("sat: line %d: duplicate problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: line %d: malformed problem line %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sat: line %d: bad variable count %q", lineNo, fields[2])
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("sat: line %d: bad clause count %q", lineNo, fields[3])
			}
			f = &Formula{NumVars: n}
			declaredClauses = m
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("sat: line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: line %d: bad literal %q", lineNo, tok)
			}
			if v == 0 {
				f.Clauses = append(f.Clauses, current)
				current = nil
				continue
			}
			if l := Literal(v); l.Var() > f.NumVars {
				return nil, fmt.Errorf("sat: line %d: literal %d exceeds declared %d variables", lineNo, v, f.NumVars)
			}
			current = append(current, Literal(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("sat: no problem line")
	}
	if len(current) > 0 {
		return nil, fmt.Errorf("sat: unterminated final clause (missing 0)")
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("sat: declared %d clauses, found %d", declaredClauses, len(f.Clauses))
	}
	return f, nil
}

// ReadDIMACSString parses DIMACS from a string.
func ReadDIMACSString(s string) (*Formula, error) {
	return ReadDIMACS(strings.NewReader(s))
}

// WriteDIMACS emits the formula in DIMACS format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		parts := make([]string, 0, len(c)+1)
		for _, l := range c {
			parts = append(parts, strconv.Itoa(int(l)))
		}
		parts = append(parts, "0")
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteDIMACSString renders the formula in DIMACS format.
func WriteDIMACSString(f *Formula) string {
	var b strings.Builder
	_ = WriteDIMACS(&b, f)
	return b.String()
}
