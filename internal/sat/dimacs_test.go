package sat

import (
	"math/rand"
	"strings"
	"testing"
)

func TestReadDIMACSBasic(t *testing.T) {
	f, err := ReadDIMACSString(`c example
p cnf 3 2
1 -2 3 0
-1 2 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[0][1] != Literal(-2) {
		t.Errorf("clause 0: %v", f.Clauses[0])
	}
}

func TestReadDIMACSMultilineClause(t *testing.T) {
	f, err := ReadDIMACSString("p cnf 3 1\n1 2\n3 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 3 {
		t.Errorf("clauses=%v", f.Clauses)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                            // no problem line
		"1 2 0\n",                     // clause before header
		"p cnf 3\n",                   // short header
		"p dnf 3 1\n1 0\n",            // wrong format tag
		"p cnf x 1\n1 0\n",            // bad var count
		"p cnf 3 y\n1 0\n",            // bad clause count
		"p cnf 3 1\n1 z 0\n",          // bad literal
		"p cnf 2 1\n3 0\n",            // literal out of range
		"p cnf 2 1\n1\n",              // unterminated clause
		"p cnf 2 2\n1 0\n",            // count mismatch
		"p cnf 2 1\n1 0\np cnf 2 1\n", // duplicate header
	}
	for _, c := range cases {
		if _, err := ReadDIMACSString(c); err == nil {
			t.Errorf("ReadDIMACS(%q) should fail", c)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		f := Random3SAT(r, 3+r.Intn(6), 1+r.Intn(8))
		out := WriteDIMACSString(f)
		back, err := ReadDIMACSString(out)
		if err != nil {
			t.Fatalf("re-parse: %v\n%s", err, out)
		}
		if back.NumVars != f.NumVars || len(back.Clauses) != len(f.Clauses) {
			t.Fatalf("round trip changed shape")
		}
		for i, c := range f.Clauses {
			for j, l := range c {
				if back.Clauses[i][j] != l {
					t.Fatalf("clause %d literal %d changed", i, j)
				}
			}
		}
		// Same satisfiability either way.
		if Satisfiable(f) != Satisfiable(back) {
			t.Fatal("round trip changed satisfiability")
		}
	}
}

func TestWriteDIMACSHeader(t *testing.T) {
	f := New(2, Clause{1, -2})
	out := WriteDIMACSString(f)
	if !strings.HasPrefix(out, "p cnf 2 1\n") {
		t.Errorf("header wrong: %q", out)
	}
	if !strings.Contains(out, "1 -2 0") {
		t.Errorf("clause line wrong: %q", out)
	}
}
