package sat

import (
	"math/rand"
)

// RandomMonotone3SAT generates a random monotone 3-CNF formula with n
// variables and m clauses: each clause is all-positive or all-negative
// with equal probability, variables drawn without replacement. This is the
// input family for the reductions of Theorems 2.1 and 2.2.
func RandomMonotone3SAT(r *rand.Rand, n, m int) *Formula {
	if n < 3 {
		panic("sat: RandomMonotone3SAT needs at least 3 variables")
	}
	f := &Formula{NumVars: n}
	for i := 0; i < m; i++ {
		vars := sampleDistinct(r, n, 3)
		neg := r.Intn(2) == 1
		c := make(Clause, 3)
		for j, v := range vars {
			if neg {
				c[j] = Literal(-v)
			} else {
				c[j] = Literal(v)
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// Random3SAT generates a random 3-CNF formula with independent literal
// signs — the input family for Theorem 3.2's annotation reduction.
func Random3SAT(r *rand.Rand, n, m int) *Formula {
	if n < 3 {
		panic("sat: Random3SAT needs at least 3 variables")
	}
	f := &Formula{NumVars: n}
	for i := 0; i < m; i++ {
		vars := sampleDistinct(r, n, 3)
		c := make(Clause, 3)
		for j, v := range vars {
			if r.Intn(2) == 1 {
				c[j] = Literal(-v)
			} else {
				c[j] = Literal(v)
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// RandomConnected3SAT generates a random 3-CNF formula whose clause graph
// (clauses adjacent when they share a variable) is connected: every clause
// after the first reuses a variable from an earlier clause. Required by
// the Theorem 3.2 reduction.
func RandomConnected3SAT(r *rand.Rand, n, m int) *Formula {
	if n < 3 {
		panic("sat: RandomConnected3SAT needs at least 3 variables")
	}
	f := &Formula{NumVars: n}
	var usedVars []int
	seen := make(map[int]bool)
	noteVar := func(v int) {
		if !seen[v] {
			seen[v] = true
			usedVars = append(usedVars, v)
		}
	}
	for i := 0; i < m; i++ {
		var vars []int
		if i == 0 {
			vars = sampleDistinct(r, n, 3)
		} else {
			anchor := usedVars[r.Intn(len(usedVars))]
			vars = []int{anchor}
			for len(vars) < 3 {
				v := 1 + r.Intn(n)
				dup := false
				for _, w := range vars {
					if w == v {
						dup = true
						break
					}
				}
				if !dup {
					vars = append(vars, v)
				}
			}
		}
		c := make(Clause, 3)
		for j, v := range vars {
			noteVar(v)
			if r.Intn(2) == 1 {
				c[j] = Literal(-v)
			} else {
				c[j] = Literal(v)
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// sampleDistinct draws k distinct integers from 1..n.
func sampleDistinct(r *rand.Rand, n, k int) []int {
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := 1 + r.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// PaperFormula returns the monotone 3SAT instance used in Figures 1 and 2
// of the paper: (x̄1 + x̄2 + x̄3)(x2 + x4 + x5)(x̄4 + x̄1 + x̄3).
//
// The polarity bars are not visible in plain-text copies of the paper, but
// the figures determine them: in Figure 1, R1 holds "a2" rows over
// {x2,x4,x5} (so clause 2 is the all-positive one) and R2 holds "c1" rows
// over {x1,x2,x3} and "c3" rows over {x4,x1,x3} (so clauses 1 and 3 are
// all-negative); Figure 2 wires R′1,R′2,R′3 to S′1, R2,R4,R5 to S2, and
// R′4,R′1,R′3 to S′3, confirming the same polarities and literal order.
func PaperFormula() *Formula {
	return New(5,
		Clause{-1, -2, -3},
		Clause{2, 4, 5},
		Clause{-4, -1, -3},
	)
}
