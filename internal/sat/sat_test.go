package sat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLiteral(t *testing.T) {
	l := Literal(3)
	if l.Var() != 3 || !l.Positive() || l.Neg() != Literal(-3) {
		t.Error("positive literal ops wrong")
	}
	n := Literal(-7)
	if n.Var() != 7 || n.Positive() || n.Neg() != Literal(7) {
		t.Error("negative literal ops wrong")
	}
	if l.String() != "x3" || n.String() != "¬x7" {
		t.Errorf("String: %s %s", l, n)
	}
}

func TestClausePolarity(t *testing.T) {
	if !(Clause{1, 2}).AllPositive() || (Clause{1, -2}).AllPositive() {
		t.Error("AllPositive wrong")
	}
	if !(Clause{-1, -2}).AllNegative() || (Clause{1, -2}).AllNegative() {
		t.Error("AllNegative wrong")
	}
}

func TestFormulaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range literal must panic")
		}
	}()
	New(2, Clause{3})
}

func TestIsMonotoneIs3CNF(t *testing.T) {
	m := New(3, Clause{1, 2, 3}, Clause{-1, -2, -3})
	if !m.IsMonotone() || !m.Is3CNF() {
		t.Error("monotone 3CNF misclassified")
	}
	mixed := New(3, Clause{1, -2, 3})
	if mixed.IsMonotone() {
		t.Error("mixed clause is not monotone")
	}
	wide := New(4, Clause{1, 2, 3, 4})
	if wide.Is3CNF() {
		t.Error("4-literal clause is not 3CNF")
	}
}

func TestSolveTrivial(t *testing.T) {
	f := New(1, Clause{1})
	a, ok := Solve(f)
	if !ok || !a[1] {
		t.Errorf("Solve(x1)=%v,%v", a, ok)
	}
	f = New(1, Clause{1}, Clause{-1})
	if _, ok := Solve(f); ok {
		t.Error("x1 ∧ ¬x1 must be UNSAT")
	}
}

func TestSolveKnownSat(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (¬x2 ∨ ¬x3)
	f := New(3, Clause{1, 2}, Clause{-1, 3}, Clause{-2, -3})
	a, ok := Solve(f)
	if !ok {
		t.Fatal("formula is satisfiable")
	}
	if !a.Satisfies(f) {
		t.Errorf("returned assignment %v does not satisfy formula", a)
	}
}

func TestSolveKnownUnsat(t *testing.T) {
	// All four clauses over two variables: UNSAT.
	f := New(2, Clause{1, 2}, Clause{1, -2}, Clause{-1, 2}, Clause{-1, -2})
	if _, ok := Solve(f); ok {
		t.Error("complete 2-variable formula must be UNSAT")
	}
}

func TestPaperFormula(t *testing.T) {
	f := PaperFormula()
	if !f.IsMonotone() || !f.Is3CNF() || f.NumVars != 5 || len(f.Clauses) != 3 {
		t.Fatalf("paper formula malformed: %v", f)
	}
	a, ok := Solve(f)
	if !ok {
		t.Fatal("paper formula is satisfiable (e.g. all false + x2)")
	}
	if !a.Satisfies(f) {
		t.Error("solver returned bad assignment")
	}
}

// bruteForceSat is the oracle for the property test.
func bruteForceSat(f *Formula) bool {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		a := make(Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if a.Satisfies(f) {
			return true
		}
	}
	return false
}

// Property: DPLL agrees with brute force on random small formulas, and any
// returned assignment satisfies the formula.
func TestSolveAgainstBruteForceQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		m := 1 + r.Intn(12)
		var f *Formula
		if r.Intn(2) == 0 {
			f = RandomMonotone3SAT(r, n, m)
		} else {
			f = Random3SAT(r, n, m)
		}
		want := bruteForceSat(f)
		a, got := Solve(f)
		if got != want {
			t.Logf("disagreement on %v: dpll=%v brute=%v", f, got, want)
			return false
		}
		if got && !a.Satisfies(f) {
			t.Logf("bad assignment for %v", f)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestGenerators(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := RandomMonotone3SAT(r, 10, 20)
	if !f.IsMonotone() {
		t.Error("RandomMonotone3SAT produced non-monotone formula")
	}
	if len(f.Clauses) != 20 || f.NumVars != 10 {
		t.Error("wrong instance shape")
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause width %d", len(c))
		}
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Fatalf("repeated variable in clause %v", c)
			}
			seen[l.Var()] = true
		}
	}
	g := Random3SAT(r, 10, 20)
	if len(g.Clauses) != 20 {
		t.Error("Random3SAT wrong clause count")
	}
}

// pigeonhole builds PHP(n): n+1 pigeons into n holes — classically UNSAT
// and a stress case forcing the solver through real search.
func pigeonhole(n int) *Formula {
	// Variable v(p,h) = (p-1)*n + h for pigeon p ∈ [1,n+1], hole h ∈ [1,n].
	v := func(p, h int) Literal { return Literal((p-1)*n + h) }
	f := &Formula{NumVars: (n + 1) * n}
	// Every pigeon sits somewhere.
	for p := 1; p <= n+1; p++ {
		var c Clause
		for h := 1; h <= n; h++ {
			c = append(c, v(p, h))
		}
		f.Clauses = append(f.Clauses, c)
	}
	// No two pigeons share a hole.
	for h := 1; h <= n; h++ {
		for p1 := 1; p1 <= n+1; p1++ {
			for p2 := p1 + 1; p2 <= n+1; p2++ {
				f.Clauses = append(f.Clauses, Clause{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return f
}

func TestSolvePigeonhole(t *testing.T) {
	for n := 2; n <= 4; n++ {
		if Satisfiable(pigeonhole(n)) {
			t.Errorf("PHP(%d) must be UNSAT", n)
		}
	}
	// Sanity: PHP with enough holes (n pigeons, n holes) is satisfiable —
	// drop the last pigeon's clauses by building a square instance.
	f := pigeonhole(3)
	// Removing the "every pigeon sits" clause of pigeon 4 makes it SAT.
	var kept []Clause
	for _, c := range f.Clauses {
		if len(c) == 3 && c[0].Var() > 9 { // pigeon 4's placement clause
			continue
		}
		kept = append(kept, c)
	}
	sq := &Formula{NumVars: f.NumVars, Clauses: kept}
	if !Satisfiable(sq) {
		t.Error("square pigeonhole variant should be satisfiable")
	}
}

func TestSolveLargerRandomSatisfiable(t *testing.T) {
	// Low clause density → almost surely satisfiable; checks the solver
	// scales past toy sizes and returns valid assignments.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		f := Random3SAT(r, 30, 60)
		if a, ok := Solve(f); ok {
			if !a.Satisfies(f) {
				t.Fatal("invalid assignment on large instance")
			}
		}
	}
}

func TestRandomConnected3SATIsConnected(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		f := RandomConnected3SAT(r, 4+r.Intn(5), 2+r.Intn(5))
		// Union-find over clauses via shared variables.
		m := len(f.Clauses)
		parent := make([]int, m)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		varsOf := func(c Clause) map[int]bool {
			s := map[int]bool{}
			for _, l := range c {
				s[l.Var()] = true
			}
			return s
		}
		for i := 0; i < m; i++ {
			vi := varsOf(f.Clauses[i])
			for j := i + 1; j < m; j++ {
				shared := false
				for _, l := range f.Clauses[j] {
					if vi[l.Var()] {
						shared = true
						break
					}
				}
				if shared {
					parent[find(i)] = find(j)
				}
			}
		}
		root := find(0)
		for i := 1; i < m; i++ {
			if find(i) != root {
				t.Fatalf("trial %d: clause graph disconnected: %v", trial, f)
			}
		}
	}
}

func TestAssignmentString(t *testing.T) {
	a := Assignment{false, true, false}
	if a.String() != "x1=T x2=F" {
		t.Errorf("Assignment.String=%q", a.String())
	}
}
