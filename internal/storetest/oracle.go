// Package storetest provides the copy-the-world reference model the
// versioned source store's differential tests compare against. The Oracle
// reimplements the legacy Database.DeleteAll/InsertAll semantics on plain
// tuple lists — deletions filter in place, insertions append novel tuples
// at the end — and rebuilds a flat database on demand, independently of
// the structure-sharing representation under test, so a store bug cannot
// hide by infecting both sides of a comparison. Shared by the relation-
// and engine-level differential suites: the reference semantics live in
// exactly one place.
package storetest

import "repro/internal/relation"

// Oracle mirrors a database with the legacy rebuild semantics.
type Oracle struct {
	order   []string
	schemas map[string]relation.Schema
	rows    map[string][]relation.Tuple
}

// NewOracle captures db's relations as plain tuple lists.
func NewOracle(db *relation.Database) *Oracle {
	o := &Oracle{schemas: make(map[string]relation.Schema), rows: make(map[string][]relation.Tuple)}
	for _, r := range db.Relations() {
		o.order = append(o.order, r.Name())
		o.schemas[r.Name()] = r.Schema()
		o.rows[r.Name()] = append([]relation.Tuple(nil), r.Tuples()...)
	}
	return o
}

// Relations returns the relation names in insertion order.
func (o *Oracle) Relations() []string { return o.order }

// Has reports whether the oracle holds the given source tuple.
func (o *Oracle) Has(st relation.SourceTuple) bool {
	for _, t := range o.rows[st.Rel] {
		if t.Key() == st.Tuple.Key() {
			return true
		}
	}
	return false
}

// DeleteAll removes the given tuples in place, ignoring misses — the
// legacy S \ T.
func (o *Oracle) DeleteAll(T []relation.SourceTuple) {
	drop := make(map[string]map[string]bool)
	for _, st := range T {
		if drop[st.Rel] == nil {
			drop[st.Rel] = make(map[string]bool)
		}
		drop[st.Rel][st.Tuple.Key()] = true
	}
	for rel, keys := range drop {
		var kept []relation.Tuple
		for _, t := range o.rows[rel] {
			if !keys[t.Key()] {
				kept = append(kept, t)
			}
		}
		o.rows[rel] = kept
	}
}

// InsertAll appends the novel tuples in request order, skipping
// duplicates — the legacy S ∪ I, including its re-insert-at-the-end
// ordering.
func (o *Oracle) InsertAll(I []relation.SourceTuple) {
	for _, st := range I {
		if !o.Has(st) {
			o.rows[st.Rel] = append(o.rows[st.Rel], st.Tuple)
		}
	}
}

// Build materializes the oracle's current state as a fresh flat database.
func (o *Oracle) Build() *relation.Database {
	db := relation.NewDatabase()
	for _, n := range o.order {
		r := relation.New(n, o.schemas[n])
		for _, t := range o.rows[n] {
			r.Insert(t)
		}
		db.MustAdd(r)
	}
	return db
}
