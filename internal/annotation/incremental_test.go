package annotation

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// whereFingerprint renders the full index — every view tuple, every
// position, every source location — in canonical order, so two indexes
// are equal iff their fingerprints are.
func whereFingerprint(wv *WhereView) string {
	attrs := wv.View.Schema().Attrs()
	var lines []string
	for _, t := range wv.View.Tuples() {
		sets := wv.setsOf(t.Key())
		for pos, set := range sets {
			keys := make([]string, len(set))
			for i, id := range set {
				keys[i] = wv.in.locs[id].Key()
			}
			sort.Strings(keys)
			lines = append(lines, fmt.Sprintf("%s.%s={%s}", t.Key(), attrs[pos], strings.Join(keys, ",")))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// incrTestQuery exercises every operator the maintenance rules cover:
// a select-join-project branch unioned with a renamed projection.
func incrTestQuery() algebra.Query {
	branch1 := algebra.Pi([]relation.Attribute{"A", "D"},
		algebra.Sigma(algebra.AttrConst{Attr: "A", Op: algebra.OpNe, Val: relation.String("poison")},
			algebra.NatJoin(algebra.R("R1"),
				algebra.Delta(map[relation.Attribute]relation.Attribute{"C": "B"}, algebra.R("R2")))))
	branch2 := algebra.Delta(map[relation.Attribute]relation.Attribute{"X": "A", "Y": "D"},
		algebra.Pi([]relation.Attribute{"X", "Y"}, algebra.R("R3")))
	return algebra.Un(branch1, branch2)
}

func incrTestDB(rng *rand.Rand, n int) *relation.Database {
	db := relation.NewDatabase()
	r1 := relation.New("R1", relation.NewSchema("A", "B"))
	for i := 0; i < n; i++ {
		r1.InsertStrings(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", rng.Intn(n/3+1)))
	}
	db.MustAdd(r1)
	r2 := relation.New("R2", relation.NewSchema("C", "D"))
	for i := 0; i < n/2+1; i++ {
		r2.InsertStrings(fmt.Sprintf("b%d", rng.Intn(n/3+1)), fmt.Sprintf("d%d", rng.Intn(4)))
	}
	db.MustAdd(r2)
	r3 := relation.New("R3", relation.NewSchema("X", "Y"))
	for i := 0; i < n/3+1; i++ {
		r3.InsertStrings(fmt.Sprintf("a%d", rng.Intn(n)), fmt.Sprintf("d%d", rng.Intn(4)))
	}
	db.MustAdd(r3)
	return db
}

// TestApplyDeletionMatchesRecompute drives the maintained index through a
// random deletion sequence, checking after every step that it is
// byte-identical to a from-scratch ComputeWhere on the reduced source.
// Deletions hit overlapping join keys (so surviving tuples' where-sets
// shrink — the case with no view delta), plus tuples absent from the
// query or the database (must be no-ops).
func TestApplyDeletionMatchesRecompute(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db := incrTestDB(rng, 30)
			q := incrTestQuery()
			wv, err := ComputeWhere(q, db)
			if err != nil {
				t.Fatal(err)
			}
			cur := db
			for step := 0; step < 25; step++ {
				var T []relation.SourceTuple
				pick := func(rel string) {
					r := cur.Relation(rel)
					if r.Len() == 0 {
						return
					}
					T = append(T, relation.SourceTuple{Rel: rel, Tuple: r.Tuple(rng.Intn(r.Len()))})
				}
				switch step % 5 {
				case 0, 1:
					pick("R1")
				case 2:
					pick("R2")
					pick("R1")
				case 3:
					pick("R3")
				case 4:
					// A tuple that is not in the source: must change nothing.
					T = append(T, relation.SourceTuple{Rel: "R1", Tuple: relation.StringTuple("ghost", "ghost")})
				}
				if len(T) == 0 {
					continue
				}
				cur = cur.DeleteAll(T)
				wv = wv.ApplyDeletion(T)

				fresh, err := ComputeWhere(q, cur)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := whereFingerprint(wv), whereFingerprint(fresh); got != want {
					t.Fatalf("step %d: maintained index diverged from recompute after deleting %v\n got:\n%s\nwant:\n%s",
						step, T, got, want)
				}
				if got, want := wv.View.Len(), fresh.View.Len(); got != want {
					t.Fatalf("step %d: maintained view has %d tuples, recompute %d", step, got, want)
				}
			}
		})
	}
}

// TestApplyDeletionDisjointIsFree asserts a deletion over relations the
// query never reads returns the receiver untouched.
func TestApplyDeletionDisjointIsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := incrTestDB(rng, 12)
	other := relation.New("Other", relation.NewSchema("Z"))
	other.InsertStrings("z1")
	db.MustAdd(other)
	wv, err := ComputeWhere(incrTestQuery(), db)
	if err != nil {
		t.Fatal(err)
	}
	got := wv.ApplyDeletion([]relation.SourceTuple{{Rel: "Other", Tuple: relation.StringTuple("z1")}})
	if got != wv {
		t.Fatal("disjoint deletion derived a new index instead of returning the receiver")
	}
}

// TestApplyDeletionWorkIsDeltaBounded pins the O(|Δ|) contract the
// incremental rebuild exists for: deleting k tuples from a large source
// must touch work proportional to k times the deleted tuples' fan-out —
// NOT the view size. The old behavior (recompute the index per deletion)
// would touch every view and intermediate tuple per step and blow through
// the bound by orders of magnitude.
func TestApplyDeletionWorkIsDeltaBounded(t *testing.T) {
	const n = 4000
	db := relation.NewDatabase()
	r1 := relation.New("R1", relation.NewSchema("A", "B"))
	for i := 0; i < n; i++ {
		// Unique join keys: each deleted tuple's fan-out is exactly one
		// partner, so the per-step reachable set is a handful of entries.
		r1.InsertStrings(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	db.MustAdd(r1)
	r2 := relation.New("R2", relation.NewSchema("B", "D"))
	for i := 0; i < n; i++ {
		r2.InsertStrings(fmt.Sprintf("b%d", i), fmt.Sprintf("d%d", i))
	}
	db.MustAdd(r2)
	q := algebra.Pi([]relation.Attribute{"A", "D"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))

	wv, err := ComputeWhere(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if wv.View.Len() != n {
		t.Fatalf("view size %d, want %d", wv.View.Len(), n)
	}
	if wv.MaintenanceTouched() != 0 {
		t.Fatalf("full computation counted %d touched entries, want 0", wv.MaintenanceTouched())
	}

	const steps = 20
	for i := 0; i < steps; i++ {
		T := []relation.SourceTuple{{Rel: "R1", Tuple: relation.StringTuple(fmt.Sprintf("a%d", i*7), fmt.Sprintf("b%d", i*7))}}
		wv = wv.ApplyDeletion(T)
	}
	if got, want := wv.View.Len(), n-steps; got != want {
		t.Fatalf("view size after deletions %d, want %d", got, want)
	}
	// Each single-tuple deletion reaches one scan entry, one join output
	// and one projected tuple, plus constant-size probes; 32 per step is
	// generous. The view-sized alternative is ≥ n per step.
	limit := int64(steps * 32)
	if got := wv.MaintenanceTouched(); got > limit {
		t.Fatalf("maintenance touched %d entries for %d single-tuple deletions (limit %d) — rebuild work is not O(Δ)",
			got, steps, limit)
	}
	if got, view := wv.MaintenanceTouched(), int64(n); got >= view {
		t.Fatalf("maintenance touched %d entries, at least the view size %d — that is a full rebuild", got, view)
	}
}
