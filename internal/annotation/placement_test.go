package annotation

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func TestPlaceOnScan(t *testing.T) {
	db := userGroupDB()
	p, err := Place(algebra.R("UserGroup"), db, relation.StringTuple("john", "staff"), "user")
	if err != nil {
		t.Fatal(err)
	}
	if !p.SideEffectFree() {
		t.Errorf("scan placement has side-effects: %v", p.Affected.Sorted())
	}
	if p.Source.Rel != "UserGroup" || p.Source.Attr != "user" {
		t.Errorf("source %v", p.Source)
	}
}

func TestPlaceUserFileView(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	// Target: annotate file attribute of (john, f2). Only GroupFile(admin,f2).file
	// propagates there... but that location also reaches (mary, f2).
	p, err := Place(q, db, relation.StringTuple("john", "f2"), "file")
	if err != nil {
		t.Fatal(err)
	}
	if p.Source.Rel != "GroupFile" || p.Source.Attr != "file" {
		t.Errorf("source %v", p.Source)
	}
	if p.SideEffects != 1 {
		t.Errorf("side-effects=%d want 1 (mary,f2 also annotated): %v", p.SideEffects, p.Affected.Sorted())
	}
	// Target: user attribute of (john, f2): UserGroup(john,admin).user also
	// reaches (john,f1) — 1 side-effect and it is unavoidable.
	p, err = Place(q, db, relation.StringTuple("john", "f2"), "user")
	if err != nil {
		t.Fatal(err)
	}
	if p.SideEffects != 1 {
		t.Errorf("user side-effects=%d want 1: %v", p.SideEffects, p.Affected.Sorted())
	}
}

func TestPlacePicksMinimum(t *testing.T) {
	// Two ways to reach (x).A: R(x) scans through both branches of a
	// union; S(x) reaches only one view location, R(x) reaches two (the
	// second branch adds (y) for R only). Place must pick S's location.
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	r.InsertStrings("x", "b")
	db.MustAdd(r)
	s := relation.New("S", relation.NewSchema("A", "B"))
	s.InsertStrings("x", "b")
	db.MustAdd(s)
	// Branch 1: Π_A(R) ∪ Π_A(S) — both produce (x).
	// Branch 2: Π_B(R) renamed to A — produces (b) from R only.
	q := algebra.Un(
		algebra.Pi([]relation.Attribute{"A"}, algebra.R("R")),
		algebra.Pi([]relation.Attribute{"A"}, algebra.R("S")),
	)
	p, err := Place(q, db, relation.StringTuple("x"), "A")
	if err != nil {
		t.Fatal(err)
	}
	if !p.SideEffectFree() {
		t.Errorf("expected side-effect-free placement, got %d", p.SideEffects)
	}
}

func TestPlaceErrors(t *testing.T) {
	db := userGroupDB()
	q := algebra.R("UserGroup")
	if _, err := Place(q, db, relation.StringTuple("ghost", "none"), "user"); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("missing tuple: %v", err)
	}
	if _, err := Place(q, db, relation.StringTuple("john", "staff"), "nope"); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("missing attr: %v", err)
	}
	if _, err := Place(algebra.R("Ghost"), db, relation.StringTuple("x"), "A"); err == nil {
		t.Error("unknown relation must error")
	}
}

func TestPlaceSPU(t *testing.T) {
	db := userGroupDB()
	q := algebra.Un(
		algebra.Pi([]relation.Attribute{"group"}, algebra.R("UserGroup")),
		algebra.Pi([]relation.Attribute{"group"}, algebra.R("GroupFile")),
	)
	p, err := PlaceSPU(q, db, relation.StringTuple("admin"), "group")
	if err != nil {
		t.Fatal(err)
	}
	if !p.SideEffectFree() {
		t.Error("Theorem 3.3: SPU placement must be side-effect-free")
	}
	// Cross-check against the exact algorithm.
	exact, err := Place(q, db, relation.StringTuple("admin"), "group")
	if err != nil {
		t.Fatal(err)
	}
	if !exact.SideEffectFree() {
		t.Error("exact placement should also find a side-effect-free location")
	}
}

func TestPlaceSPUWithSelection(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user"},
		algebra.Sigma(algebra.Eq("group", "admin"), algebra.R("UserGroup")))
	p, err := PlaceSPU(q, db, relation.StringTuple("mary"), "user")
	if err != nil {
		t.Fatal(err)
	}
	if p.Source.Rel != "UserGroup" || !p.Source.Tuple.Equal(relation.StringTuple("mary", "admin")) {
		t.Errorf("source %v", p.Source)
	}
	if !p.SideEffectFree() {
		t.Error("must be side-effect-free")
	}
}

func TestPlaceSPURejectsJoins(t *testing.T) {
	db := userGroupDB()
	q := algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile"))
	if _, err := PlaceSPU(q, db, relation.StringTuple("john", "staff", "f1"), "user"); err == nil {
		t.Error("PlaceSPU must reject SJ queries")
	}
}

func TestPlaceSPUNoBranch(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user"}, algebra.R("UserGroup"))
	if _, err := PlaceSPU(q, db, relation.StringTuple("ghost"), "user"); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("expected ErrNoPlacement, got %v", err)
	}
}

func TestPlaceSJU(t *testing.T) {
	db := userGroupDB()
	q := algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile"))
	p, err := PlaceSJU(q, db, relation.StringTuple("john", "staff", "f1"), "group")
	if err != nil {
		t.Fatal(err)
	}
	// group occurs in both relations; UserGroup(john,staff).group feeds
	// only this join tuple, GroupFile(staff,f1).group likewise — both are
	// side-effect-free here.
	if !p.SideEffectFree() {
		t.Errorf("side-effects=%d, affected=%v", p.SideEffects, p.Affected.Sorted())
	}
}

func TestPlaceSJUMinimizesAcrossComponents(t *testing.T) {
	// john is in two groups; (john, admin, f2): annotating user from
	// UserGroup(john,admin) also reaches (john,admin,f1); there is no
	// better option, so side-effects must be exactly 1.
	db := userGroupDB()
	q := algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile"))
	p, err := PlaceSJU(q, db, relation.StringTuple("john", "admin", "f2"), "user")
	if err != nil {
		t.Fatal(err)
	}
	if p.SideEffects != 1 {
		t.Errorf("side-effects=%d want 1: %v", p.SideEffects, p.Affected.Sorted())
	}
}

func TestPlaceSJURejectsProjection(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user"}, algebra.R("UserGroup"))
	if _, err := PlaceSJU(q, db, relation.StringTuple("john"), "user"); err == nil {
		t.Error("PlaceSJU must reject queries with projection")
	}
}

func TestPlaceAll(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	cells, err := PlaceAll(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// 4 view tuples × 2 attributes, all reachable.
	if len(cells) != 8 {
		t.Fatalf("cells=%d want 8", len(cells))
	}
	// Every batch answer must agree with the single-cell solver.
	for _, c := range cells {
		single, err := Place(q, db, c.ViewTuple, c.Attr)
		if err != nil {
			t.Fatalf("Place(%v,%s): %v", c.ViewTuple, c.Attr, err)
		}
		if single.SideEffects != c.Placement.SideEffects {
			t.Errorf("(%v).%s: batch=%d single=%d side-effects",
				c.ViewTuple, c.Attr, c.Placement.SideEffects, single.SideEffects)
		}
	}
}

func TestPlaceAllSkipsUnreachableCells(t *testing.T) {
	// A view over an empty relation: no cells at all.
	db := relation.NewDatabase()
	db.MustAdd(relation.New("R", relation.NewSchema("A")))
	cells, err := PlaceAll(algebra.R("R"), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Errorf("cells=%v want none", cells)
	}
}

// Property: the exact placement really is optimal — no other source
// location reaching the target has fewer side-effects — verified by brute
// force over all source locations on random small instances.
func TestPlaceOptimalQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	q := algebra.Pi([]relation.Attribute{"A", "C"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		r1 := relation.New("R1", relation.NewSchema("A", "B"))
		r2 := relation.New("R2", relation.NewSchema("B", "C"))
		for i := 0; i < 2+r.Intn(5); i++ {
			r1.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(3)))))
		}
		for i := 0; i < 2+r.Intn(5); i++ {
			r2.Insert(relation.NewTuple(relation.Int(int64(r.Intn(3))), relation.Int(int64(r.Intn(2)))))
		}
		db.MustAdd(r1)
		db.MustAdd(r2)
		wv, err := ComputeWhere(q, db)
		if err != nil {
			return false
		}
		if wv.View.Len() == 0 {
			return true
		}
		target := wv.View.Tuples()[r.Intn(wv.View.Len())]
		attr := wv.View.Schema().Attrs()[r.Intn(2)]
		p, err := Place(q, db, target, attr)
		if err != nil {
			return errors.Is(err, ErrNoPlacement)
		}
		// Brute force: every source location that reaches the target.
		tloc := relation.Loc(algebra.DefaultViewName, target, attr)
		for _, src := range db.AllLocations() {
			aff := wv.Affected(src)
			if !aff.Has(tloc) {
				continue
			}
			if aff.Len()-1 < p.SideEffects {
				t.Logf("suboptimal: chose %v (%d), but %v gives %d",
					p.Source, p.SideEffects, src, aff.Len()-1)
				return false
			}
		}
		// Consistency: Affected must contain the target.
		if !p.Affected.Has(tloc) {
			t.Logf("placement does not reach target")
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
