package annotation

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// Placement is the solution to an annotation placement problem: the chosen
// source location, the full set of view locations its annotation reaches,
// and the side-effect count (reached locations other than the target).
type Placement struct {
	// Source is the location to annotate in the source database.
	Source relation.Location
	// Affected is every view location receiving the annotation, target
	// included.
	Affected *relation.LocationSet
	// SideEffects = Affected.Len() - 1.
	SideEffects int
}

// SideEffectFree reports whether only the target view location is
// annotated.
func (p *Placement) SideEffectFree() bool { return p.SideEffects == 0 }

// ErrNoPlacement is returned when no source location propagates to the
// requested view location (e.g. the view tuple does not exist, or the
// column is a view-defined constant — see the remark after Theorem 3.1).
var ErrNoPlacement = fmt.Errorf("annotation: no source location propagates to the target")

// Place solves the annotation placement problem exactly for any monotone
// SPJRU query: among all source locations whose annotation reaches the
// target view location (t, attr), it returns one minimizing the number of
// other view locations annotated.
//
// The optimum is always a single source location (§3.1: "the optimal
// solution is always a single location"). Complexity: polynomial in the
// size of the source, the view and all intermediate join results; for PJ
// queries the intermediate results — and hence the running time — can be
// exponential in the query size, which is consistent with Theorem 3.2's
// NP-hardness (the query is part of the input).
func Place(q algebra.Query, db *relation.Database, t relation.Tuple, attr relation.Attribute) (*Placement, error) {
	wv, err := ComputeWhere(q, db)
	if err != nil {
		return nil, err
	}
	return placeOn(wv, t, attr)
}

// PlaceOn solves the placement problem against a precomputed
// where-provenance view, skipping the ComputeWhere evaluation Place pays on
// every call. The prepared-view engine (internal/engine) caches a WhereView
// per prepared query and serves all placement requests through this.
func PlaceOn(wv *WhereView, t relation.Tuple, attr relation.Attribute) (*Placement, error) {
	return placeOn(wv, t, attr)
}

// placeOn runs the candidate scan on a precomputed where-provenance view.
func placeOn(wv *WhereView, t relation.Tuple, attr relation.Attribute) (*Placement, error) {
	if !wv.View.Contains(t) {
		return nil, fmt.Errorf("%w: tuple %v not in view", ErrNoPlacement, t)
	}
	candidates := wv.WhereOf(t, attr)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: view location (%v, %s)", ErrNoPlacement, t, attr)
	}
	// One pass over the view counts, for every source location id, how
	// many view locations it reaches; candidates then compare by count.
	counts := make(map[int32]int, len(wv.in.locs))
	for _, tu := range wv.View.Tuples() {
		for _, set := range wv.setsOf(tu.Key()) {
			for _, id := range set {
				counts[id]++
			}
		}
	}
	best := candidates[0]
	bestCount := -1
	for _, cand := range candidates {
		id, _ := wv.in.lookup(cand)
		c := counts[id]
		if bestCount < 0 || c < bestCount || (c == bestCount && cand.Less(best)) {
			best, bestCount = cand, c
		}
	}
	return &Placement{
		Source:      best,
		Affected:    wv.Affected(best),
		SideEffects: bestCount - 1,
	}, nil
}

// CellPlacement pairs a view location with its optimal placement.
type CellPlacement struct {
	ViewTuple relation.Tuple
	Attr      relation.Attribute
	Placement *Placement
}

// PlaceAll solves the placement problem for every cell of the view in one
// where-provenance pass — the batch a curation front-end wants when
// pre-computing "annotate here" affordances. Cells with no propagating
// source location (view constants) are skipped.
func PlaceAll(q algebra.Query, db *relation.Database) ([]CellPlacement, error) {
	wv, err := ComputeWhere(q, db)
	if err != nil {
		return nil, err
	}
	// Shared counts: how many view locations each source location reaches.
	counts := make(map[int32]int, len(wv.in.locs))
	for _, tu := range wv.View.Tuples() {
		for _, set := range wv.setsOf(tu.Key()) {
			for _, id := range set {
				counts[id]++
			}
		}
	}
	attrs := wv.View.Schema().Attrs()
	var out []CellPlacement
	for _, tu := range wv.View.Tuples() {
		sets := wv.setsOf(tu.Key())
		for pos, set := range sets {
			if len(set) == 0 {
				continue
			}
			best := wv.in.locs[set[0]]
			bestCount := counts[set[0]]
			for _, id := range set[1:] {
				if c := counts[id]; c < bestCount || (c == bestCount && wv.in.locs[id].Less(best)) {
					best, bestCount = wv.in.locs[id], c
				}
			}
			out = append(out, CellPlacement{
				ViewTuple: tu,
				Attr:      attrs[pos],
				Placement: &Placement{
					Source:      best,
					Affected:    wv.Affected(best),
					SideEffects: bestCount - 1,
				},
			})
		}
	}
	return out, nil
}

// PlaceSPU is the linear-time algorithm of Theorem 3.3 for SPU queries: it
// scans the base relation of each select-project branch for a tuple that
// satisfies the branch's selection and projects onto the target view
// tuple, and annotates the matching attribute of the first such tuple.
// The result is always side-effect-free.
//
// It returns an error if q is not an SPU query (use Place for the general
// case).
func PlaceSPU(q algebra.Query, db *relation.Database, t relation.Tuple, attr relation.Attribute) (*Placement, error) {
	ops := algebra.OperatorsOf(q)
	if ops.HasAny(algebra.OpJoin | algebra.OpRename) {
		return nil, fmt.Errorf("annotation: PlaceSPU requires an SPU query, got %s", ops)
	}
	viewSchema, err := algebra.SchemaOf(q, db)
	if err != nil {
		return nil, err
	}
	if !viewSchema.Has(attr) {
		return nil, fmt.Errorf("annotation: attribute %q not in view schema %s", attr, viewSchema)
	}
	for _, branch := range algebra.UnionTerms(algebra.Normalize(q)) {
		src, found, err := spBranchSource(branch, db, t, attr, viewSchema)
		if err != nil {
			return nil, err
		}
		if found {
			return &Placement{
				Source:      src,
				Affected:    relation.NewLocationSet(relation.Loc(algebra.DefaultViewName, t, attr)),
				SideEffects: 0,
			}, nil
		}
	}
	return nil, fmt.Errorf("%w: no SPU branch produces %v", ErrNoPlacement, t)
}

// spBranchSource scans one select-project branch for a source tuple that
// satisfies the selection and projects onto t, returning the location of
// attr in that tuple.
func spBranchSource(branch algebra.Query, db *relation.Database, t relation.Tuple, attr relation.Attribute, viewSchema relation.Schema) (relation.Location, bool, error) {
	// A normalized SPU branch is Project*(Select*(Scan)) — peel it.
	var conds []algebra.Condition
	q := branch
	projAttrs := viewSchema.Attrs()
peel:
	for {
		switch n := q.(type) {
		case algebra.Project:
			projAttrs = n.Attrs
			q = n.Child
		case algebra.Select:
			conds = append(conds, n.Cond)
			q = n.Child
		case algebra.Scan:
			break peel
		default:
			return relation.Location{}, false, fmt.Errorf("annotation: branch %s is not select-project-scan", algebra.Format(branch))
		}
	}
	scan := q.(algebra.Scan)
	base := db.Relation(scan.Rel)
	if base == nil {
		return relation.Location{}, false, fmt.Errorf("annotation: unknown relation %q", scan.Rel)
	}
	// Align the target tuple to the branch's projection order.
	aligned := relation.ProjectAttrs(viewSchema, t, projAttrs)
	for _, cand := range base.Tuples() {
		ok := true
		for _, c := range conds {
			if !c.Holds(base.Schema(), cand) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if !relation.ProjectAttrs(base.Schema(), cand, projAttrs).Equal(aligned) {
			continue
		}
		return relation.Loc(scan.Rel, cand, attr), true, nil
	}
	return relation.Location{}, false, nil
}

// PlaceSJU is the polynomial algorithm of Theorem 3.4 for SJU queries in
// normal form: for each SJ subquery in which the target attribute occurs,
// it considers annotating the attribute on the component tuple t.Rij of
// each participating relation, counting the side-effects that location
// causes through every subquery of the union; it returns the minimum.
//
// Implementation note: the side-effect counting for a candidate location
// is exactly the Affected set of the where-provenance view, so this shares
// the propagation engine with Place; the SJU structure guarantees the
// engine runs in polynomial time (joins of distinct relations do not merge
// derivations). The dedicated entry point validates the query class and
// restricts candidates to the component locations the theorem enumerates.
func PlaceSJU(q algebra.Query, db *relation.Database, t relation.Tuple, attr relation.Attribute) (*Placement, error) {
	ops := algebra.OperatorsOf(q)
	if ops.HasAny(algebra.OpProject) {
		return nil, fmt.Errorf("annotation: PlaceSJU requires an SJU query, got %s", ops)
	}
	return Place(q, db, t, attr)
}
