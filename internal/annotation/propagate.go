// Package annotation implements the annotation model of §3 of the paper:
// annotations live on locations (R, t, A), are carried from source to view
// by the forward propagation rules (one per monotone operator), and the
// annotation placement problem asks for a source location whose annotation
// reaches a given view location with the fewest side-effects.
//
// The central computation is where-provenance: for every view location,
// the set of source locations whose annotation would propagate there. The
// propagation rules are implemented exactly as stated:
//
//	Selection:  (R,t',A) → (σ_C(R),t,A)        if t = t'
//	Projection: (R,t',A) → (Π_B(R),t,A)        if A ∈ B and t'.B = t
//	Join:       (R1,t1,A) → (R1⋈R2,t,A)        if t.R1 = t1   (symm. R2)
//	Union:      (R1,t1,A) → (R1∪R2,t,A)        if t = t1      (symm. R2)
//	Renaming:   (R,t,A)  → (δ_θ(R),t',θ(A))    if t' = t
//
// "Equality of similarly named fields" is the propagation reason; explicit
// equality in selection conditions does NOT transport annotations across
// attributes, which is why σ_{A=B} does not copy A's annotations to B.
package annotation

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/overlay"
	"repro/internal/relation"
)

// locSet is a small set of source-location ids (dense ints), kept sorted.
// Where-provenance sets are typically tiny; sorted slices beat maps here
// and give canonical forms for free.
type locSet []int32

func (s locSet) has(id int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == id
}

// union merges two sorted sets.
func (s locSet) union(t locSet) locSet {
	if len(t) == 0 {
		return s
	}
	if len(s) == 0 {
		return t
	}
	out := make(locSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// interner assigns dense ids to source locations.
type interner struct {
	ids  map[string]int32
	locs []relation.Location
}

func newInterner() *interner { return &interner{ids: make(map[string]int32)} }

func (in *interner) id(l relation.Location) int32 {
	k := l.Key()
	if id, ok := in.ids[k]; ok {
		return id
	}
	id := int32(len(in.locs))
	in.ids[k] = id
	in.locs = append(in.locs, l)
	return id
}

func (in *interner) lookup(l relation.Location) (int32, bool) {
	id, ok := in.ids[l.Key()]
	return id, ok
}

// WhereView is a view evaluated with where-provenance: every (tuple,
// attribute) position carries the set of source locations that propagate
// to it under the forward rules. The view keeps the full annotated
// operator tree it was computed from, so a source deletion derives the
// next generation of the index incrementally (ApplyDeletion) instead of
// forcing a recomputation.
type WhereView struct {
	// View is Q(S), named algebra.DefaultViewName.
	View *relation.Relation
	// root is the retained annotated operator tree; its ann map keys view
	// tuple keys to per-position source location sets.
	root *annNode
	in   *interner
	met  *whereMetrics
}

// setsOf returns the per-position where sets of the view tuple with key k,
// nil when the tuple is not in the view.
func (wv *WhereView) setsOf(k string) []locSet {
	if e, ok := wv.root.ann.Get(k); ok {
		return e.sets
	}
	return nil
}

// ComputeWhere evaluates q over db with full where-provenance tracking.
// Polynomial in the total size of all intermediate results.
func ComputeWhere(q algebra.Query, db *relation.Database) (*WhereView, error) {
	if err := algebra.Validate(q, db); err != nil {
		return nil, err
	}
	in := newInterner()
	ar, err := annEval(q, db, in)
	if err != nil {
		return nil, err
	}
	view := relation.New(algebra.DefaultViewName, ar.rel.Schema())
	ar.rel.Each(func(t relation.Tuple) bool {
		view.Insert(t)
		return true
	})
	return &WhereView{View: view, root: ar.node, in: in, met: &whereMetrics{}}, nil
}

// WhereOf returns the source locations whose annotation propagates to view
// location (t, attr): the where-provenance of that location. Nil if the
// tuple or attribute is absent.
func (wv *WhereView) WhereOf(t relation.Tuple, attr relation.Attribute) []relation.Location {
	sets := wv.setsOf(t.Key())
	if sets == nil {
		return nil
	}
	pos, ok := wv.View.Schema().Index(attr)
	if !ok {
		return nil
	}
	set := sets[pos]
	out := make([]relation.Location, len(set))
	for i, id := range set {
		out[i] = wv.in.locs[id]
	}
	return out
}

// PropagatesTo reports whether annotating source location src would
// annotate view location (t, attr).
func (wv *WhereView) PropagatesTo(src relation.Location, t relation.Tuple, attr relation.Attribute) bool {
	id, ok := wv.in.lookup(src)
	if !ok {
		return false
	}
	sets := wv.setsOf(t.Key())
	if sets == nil {
		return false
	}
	pos, ok := wv.View.Schema().Index(attr)
	if !ok {
		return false
	}
	return sets[pos].has(id)
}

// Affected returns every view location annotated by placing an annotation
// at source location src — the forward image of src, including the target
// itself when it propagates.
func (wv *WhereView) Affected(src relation.Location) *relation.LocationSet {
	out := relation.NewLocationSet()
	id, ok := wv.in.lookup(src)
	if !ok {
		return out
	}
	attrs := wv.View.Schema().Attrs()
	for _, t := range wv.View.Tuples() {
		for pos, set := range wv.setsOf(t.Key()) {
			if set.has(id) {
				out.Add(relation.Loc(wv.View.Name(), t, attrs[pos]))
			}
		}
	}
	return out
}

// SourceLocations returns every source location that reaches at least one
// view location (the union of all where-sets), in interning order.
func (wv *WhereView) SourceLocations() []relation.Location {
	seen := make([]bool, len(wv.in.locs))
	wv.root.ann.Each(func(_ string, e annEntry) bool {
		for _, set := range e.sets {
			for _, id := range set {
				seen[id] = true
			}
		}
		return true
	})
	var out []relation.Location
	for i, ok := range seen {
		if ok {
			out = append(out, wv.in.locs[i])
		}
	}
	return out
}

// annRel is an intermediate result of the annotated evaluation: the
// operator's output relation (driving the parent's iteration during the
// full computation) and its retained tree node. The relations of inner
// nodes are transient — only the node survives into the WhereView.
type annRel struct {
	rel  *relation.Relation
	node *annNode
}

// get resolves one build-time entry of this node (always present for a
// tuple the operator just produced).
func (ar *annRel) get(t relation.Tuple) annEntry {
	e, _ := ar.node.ann.Get(t.Key())
	return e
}

func annEval(q algebra.Query, db *relation.Database, in *interner) (*annRel, error) {
	switch q := q.(type) {
	case algebra.Scan:
		base := db.Relation(q.Rel)
		attrs := base.Schema().Attrs()
		m := make(map[string]annEntry, base.Len())
		base.Each(func(t relation.Tuple) bool {
			sets := make([]locSet, len(attrs))
			for i, a := range attrs {
				sets[i] = locSet{in.id(relation.Loc(q.Rel, t, a))}
			}
			m[t.Key()] = annEntry{t: t, sets: sets}
			return true
		})
		node := &annNode{kind: nodeScan, relName: q.Rel, ann: overlay.NewMap(m)}
		return &annRel{rel: base, node: node}, nil

	case algebra.Select:
		child, err := annEval(q.Child, db, in)
		if err != nil {
			return nil, err
		}
		rel := relation.New("σ", child.rel.Schema())
		m := make(map[string]annEntry)
		child.rel.Each(func(t relation.Tuple) bool {
			if q.Cond.Holds(child.rel.Schema(), t) {
				rel.Insert(t)
				m[t.Key()] = child.get(t)
			}
			return true
		})
		node := &annNode{kind: nodeSelect, kids: []*annNode{child.node}, ann: overlay.NewMap(m)}
		return &annRel{rel: rel, node: node}, nil

	case algebra.Project:
		child, err := annEval(q.Child, db, in)
		if err != nil {
			return nil, err
		}
		schema, perr := child.rel.Schema().Project(q.Attrs)
		if perr != nil {
			return nil, perr
		}
		positions := make([]int, len(q.Attrs))
		for i, a := range q.Attrs {
			positions[i], _ = child.rel.Schema().Index(a)
		}
		rel := relation.New("π", schema)
		m := make(map[string]annEntry)
		pre := make(map[string][]string)
		child.rel.Each(func(t relation.Tuple) bool {
			pt := t.Project(positions)
			rel.Insert(pt)
			k := pt.Key()
			e, ok := m[k]
			if !ok {
				e = annEntry{t: pt, sets: make([]locSet, len(positions))}
			}
			// Projection merges all pre-images: every child tuple with
			// t'.B = t contributes its sets (rule 2).
			childSets := child.get(t).sets
			for i, p := range positions {
				e.sets[i] = e.sets[i].union(childSets[p])
			}
			m[k] = e
			pre[k] = append(pre[k], t.Key())
			return true
		})
		node := &annNode{kind: nodeProject, kids: []*annNode{child.node},
			ann: overlay.NewMap(m), positions: positions, preimages: pre}
		return &annRel{rel: rel, node: node}, nil

	case algebra.Join:
		left, err := annEval(q.Left, db, in)
		if err != nil {
			return nil, err
		}
		right, err := annEval(q.Right, db, in)
		if err != nil {
			return nil, err
		}
		ls, rs := left.rel.Schema(), right.rel.Schema()
		outSchema := ls.Join(rs)
		rel := relation.New("⋈", outSchema)
		common := ls.Common(rs)
		lbuck := make(map[string][]relation.Tuple)
		left.rel.Each(func(lt relation.Tuple) bool {
			k := relation.ProjectAttrs(ls, lt, common).Key()
			//lint:ignore eachretain join buckets alias the immutable annotated snapshot and are only probed, never written through
			lbuck[k] = append(lbuck[k], lt)
			return true
		})
		rbuck := make(map[string][]relation.Tuple)
		right.rel.Each(func(rt relation.Tuple) bool {
			k := relation.ProjectAttrs(rs, rt, common).Key()
			//lint:ignore eachretain join buckets alias the immutable annotated snapshot and are only probed, never written through
			rbuck[k] = append(rbuck[k], rt)
			return true
		})
		// Output position → (left position, right position); -1 if absent
		// on that side. Common attributes pull from both (rules for R1 and
		// R2 both apply). rpos/ronly record where each right position lands
		// in the output (the output is the left tuple plus the right side's
		// non-common attributes, in right-schema order).
		mapping := make([]srcPos, outSchema.Len())
		for i, a := range outSchema.Attrs() {
			lp, lok := ls.Index(a)
			rp, rok := rs.Index(a)
			sp := srcPos{l: -1, r: -1}
			if lok {
				sp.l = lp
			}
			if rok {
				sp.r = rp
			}
			mapping[i] = sp
		}
		rpos := make([]int, rs.Len())
		var ronly []int
		for j, a := range rs.Attrs() {
			if lp, ok := ls.Index(a); ok {
				rpos[j] = lp
			} else {
				rpos[j] = ls.Len() + len(ronly)
				ronly = append(ronly, j)
			}
		}
		node := &annNode{kind: nodeJoin, kids: []*annNode{left.node, right.node},
			ls: ls, rs: rs, common: common, ronly: ronly,
			lbuck: lbuck, rbuck: rbuck, mapping: mapping, rpos: rpos}
		m := make(map[string]annEntry)
		left.rel.Each(func(lt relation.Tuple) bool {
			k := relation.ProjectAttrs(ls, lt, common).Key()
			lsets := left.get(lt).sets
			for _, rt := range rbuck[k] {
				rsets := right.get(rt).sets
				joined := node.joined(lt, rt)
				rel.Insert(joined)
				sets := make([]locSet, len(mapping))
				for i, sp := range mapping {
					var s locSet
					if sp.l >= 0 {
						s = s.union(lsets[sp.l])
					}
					if sp.r >= 0 {
						s = s.union(rsets[sp.r])
					}
					sets[i] = s
				}
				m[joined.Key()] = annEntry{t: joined, sets: sets}
			}
			return true
		})
		node.ann = overlay.NewMap(m)
		return &annRel{rel: rel, node: node}, nil

	case algebra.Union:
		left, err := annEval(q.Left, db, in)
		if err != nil {
			return nil, err
		}
		right, err := annEval(q.Right, db, in)
		if err != nil {
			return nil, err
		}
		rel := relation.New("∪", left.rel.Schema())
		m := make(map[string]annEntry)
		left.rel.Each(func(t relation.Tuple) bool {
			rel.Insert(t)
			le := left.get(t)
			sets := make([]locSet, len(le.sets))
			copy(sets, le.sets)
			m[t.Key()] = annEntry{t: t, sets: sets}
			return true
		})
		attrs := left.rel.Schema().Attrs()
		positions := make([]int, len(attrs))
		for i, a := range attrs {
			positions[i], _ = right.rel.Schema().Index(a)
		}
		inv := make([]int, len(positions))
		for i, p := range positions {
			inv[p] = i
		}
		right.rel.Each(func(t relation.Tuple) bool {
			aligned := t.Project(positions)
			rel.Insert(aligned)
			rsets := right.get(t).sets
			k := aligned.Key()
			e, ok := m[k]
			if !ok {
				e = annEntry{t: aligned, sets: make([]locSet, len(attrs))}
			}
			for i, p := range positions {
				e.sets[i] = e.sets[i].union(rsets[p])
			}
			m[k] = e
			return true
		})
		node := &annNode{kind: nodeUnion, kids: []*annNode{left.node, right.node},
			ann: overlay.NewMap(m), positions: positions, inv: inv}
		return &annRel{rel: rel, node: node}, nil

	case algebra.Rename:
		child, err := annEval(q.Child, db, in)
		if err != nil {
			return nil, err
		}
		schema, rerr := child.rel.Schema().Rename(q.Theta)
		if rerr != nil {
			return nil, rerr
		}
		rel := relation.New("δ", schema)
		m := make(map[string]annEntry)
		child.rel.Each(func(t relation.Tuple) bool {
			rel.Insert(t)
			m[t.Key()] = child.get(t)
			return true
		})
		node := &annNode{kind: nodeRename, kids: []*annNode{child.node}, ann: overlay.NewMap(m)}
		return &annRel{rel: rel, node: node}, nil

	default:
		return nil, fmt.Errorf("annotation: unknown query node %T", q)
	}
}

// ForwardPropagate computes the view locations annotated by a single
// annotation placed at src, by evaluating the query once with full
// where-provenance. The Mark variant below avoids the full computation.
func ForwardPropagate(q algebra.Query, db *relation.Database, src relation.Location) (*relation.LocationSet, error) {
	wv, err := ComputeWhere(q, db)
	if err != nil {
		return nil, err
	}
	return wv.Affected(src), nil
}

// PropagationRelation materializes the relation R(Q,S) of Theorem 3.1
// between source locations and view locations, as a sorted list of pairs.
// Used by the normal-form preservation tests.
func PropagationRelation(q algebra.Query, db *relation.Database) ([][2]relation.Location, error) {
	wv, err := ComputeWhere(q, db)
	if err != nil {
		return nil, err
	}
	var out [][2]relation.Location
	attrs := wv.View.Schema().Attrs()
	for _, t := range wv.View.Tuples() {
		sets := wv.setsOf(t.Key())
		for pos, set := range sets {
			vloc := relation.Loc(wv.View.Name(), t, attrs[pos])
			for _, id := range set {
				out = append(out, [2]relation.Location{wv.in.locs[id], vloc})
			}
		}
	}
	sortPairs(out)
	return out, nil
}

func sortPairs(ps [][2]relation.Location) {
	sort.Slice(ps, func(i, j int) bool {
		a, b := ps[i], ps[j]
		if a[0].Key() != b[0].Key() {
			return a[0].Less(b[0])
		}
		return a[1].Less(b[1])
	})
}
