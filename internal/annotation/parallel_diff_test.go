package annotation

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestApplyDeletionWorkersWidthInvariant drives the same random deletion
// stream through three maintained where-indexes at worker widths 1, 2, and
// 8 and demands their fingerprints stay byte-identical after every step —
// and equal to a from-scratch recompute periodically. parDeltaMin is
// lowered so the small per-step candidate sets take the hash-partitioned
// path instead of inlining.
func TestApplyDeletionWorkersWidthInvariant(t *testing.T) {
	defer func(old int) { parDeltaMin = old }(parDeltaMin)
	parDeltaMin = 2

	rng := rand.New(rand.NewSource(11))
	db := incrTestDB(rng, 36)
	q := incrTestQuery()

	compute := func() *WhereView {
		wv, err := ComputeWhere(q, db)
		if err != nil {
			t.Fatal(err)
		}
		return wv
	}
	w1, w2, w8 := compute(), compute(), compute()

	cur := db
	for step := 0; step < 40; step++ {
		var T []relation.SourceTuple
		for _, rel := range []string{"R1", "R2", "R3"} {
			r := cur.Relation(rel)
			for i := 0; i < r.Len(); i++ {
				if rng.Intn(12) == 0 {
					T = append(T, relation.SourceTuple{Rel: rel, Tuple: r.Tuple(i)})
				}
			}
		}
		if len(T) == 0 {
			continue
		}
		cur = cur.DeleteAll(T)
		w1 = w1.ApplyDeletion(T)
		w2 = w2.ApplyDeletionWorkers(T, 2)
		w8 = w8.ApplyDeletionWorkers(T, 8)

		f1 := whereFingerprint(w1)
		if f2 := whereFingerprint(w2); f2 != f1 {
			t.Fatalf("step %d: width-2 index diverged from serial\n serial:\n%s\n width 2:\n%s", step, f1, f2)
		}
		if f8 := whereFingerprint(w8); f8 != f1 {
			t.Fatalf("step %d: width-8 index diverged from serial\n serial:\n%s\n width 8:\n%s", step, f1, f8)
		}
		if step%8 == 7 {
			fresh, err := ComputeWhere(q, cur)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := f1, whereFingerprint(fresh); got != want {
				t.Fatalf("step %d: maintained index diverged from recompute\n got:\n%s\nwant:\n%s", step, got, want)
			}
		}
	}
}
