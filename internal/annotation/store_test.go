package annotation

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/relation"
)

func userFileQuery() algebra.Query {
	return algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
}

func TestStoreAnnotateAndAt(t *testing.T) {
	s := NewStore()
	loc := relation.Loc("R", relation.StringTuple("a"), "A")
	id := s.Annotate(loc, "check this", "ann")
	if id != 1 || s.Len() != 1 {
		t.Fatalf("id=%d len=%d", id, s.Len())
	}
	got := s.At(loc)
	if len(got) != 1 || got[0].Text != "check this" || got[0].Author != "ann" {
		t.Errorf("At=%v", got)
	}
	if _, ok := s.Get(1); !ok {
		t.Error("Get(1) failed")
	}
	if _, ok := s.Get(99); ok {
		t.Error("Get(99) should fail")
	}
}

func TestStoreReplyThreads(t *testing.T) {
	s := NewStore()
	loc := relation.Loc("R", relation.StringTuple("a"), "A")
	root := s.Annotate(loc, "suspicious value", "ann")
	r1, err := s.Reply(root, "agreed", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reply(r1, "fixed upstream", "carol"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reply(999, "orphan", "eve"); err == nil {
		t.Error("reply to missing annotation must fail")
	}
	thread := s.Thread(root)
	if len(thread) != 3 {
		t.Fatalf("thread length %d want 3", len(thread))
	}
	if thread[1].Parent != root || thread[2].Parent != r1 {
		t.Errorf("thread structure wrong: %v", thread)
	}
	// Replies inherit the location and therefore propagate together.
	if len(s.At(loc)) != 3 {
		t.Errorf("all thread annotations share the location: %v", s.At(loc))
	}
	if !strings.Contains(thread[1].String(), "(on #1)") {
		t.Errorf("rendering misses parent: %s", thread[1])
	}
}

func TestMaterializeAnnotatedView(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	s := NewStore()
	// Annotate the file value of GroupFile(admin, f2): surfaces on
	// (john,f2).file and (mary,f2).file.
	s.Annotate(relation.Loc("GroupFile", relation.StringTuple("admin", "f2"), "file"), "deprecated file", "ann")
	av, err := s.Materialize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	cells := av.AnnotatedCells()
	if len(cells) != 2 {
		t.Fatalf("annotated cells=%d want 2: %v", len(cells), cells)
	}
	got := av.Cell(relation.StringTuple("john", "f2"), "file")
	if len(got) != 1 || got[0].Text != "deprecated file" {
		t.Errorf("Cell=%v", got)
	}
	if len(av.Cell(relation.StringTuple("john", "f1"), "file")) != 0 {
		t.Error("annotation leaked to (john,f1)")
	}
	if !strings.Contains(av.Render(), "deprecated file") {
		t.Error("Render misses annotation")
	}
}

func TestMaterializeMergesThroughProjection(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user"}, algebra.R("UserGroup"))
	s := NewStore()
	s.Annotate(relation.Loc("UserGroup", relation.StringTuple("john", "staff"), "user"), "a", "x")
	s.Annotate(relation.Loc("UserGroup", relation.StringTuple("john", "admin"), "user"), "b", "y")
	av, err := s.Materialize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got := av.Cell(relation.StringTuple("john"), "user")
	if len(got) != 2 {
		t.Fatalf("projection must merge both annotations: %v", got)
	}
	if got[0].ID > got[1].ID {
		t.Error("annotations must sort by id")
	}
}

func TestPlaceAndStore(t *testing.T) {
	db := userGroupDB()
	q := userFileQuery()
	s := NewStore()
	p, id, err := s.PlaceAndStore(q, db, relation.StringTuple("john", "f2"), "user", "wrong person?", "ann")
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 || s.Len() != 1 {
		t.Fatalf("id=%d len=%d", id, s.Len())
	}
	// Materializing must show the annotation exactly on the Affected set.
	av, err := s.Materialize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(av.AnnotatedCells()) != p.Affected.Len() {
		t.Errorf("materialized %d cells, placement affected %d",
			len(av.AnnotatedCells()), p.Affected.Len())
	}
	for _, c := range av.AnnotatedCells() {
		if !p.Affected.Has(c.Location) {
			t.Errorf("cell %v not in Affected", c.Location)
		}
	}
}

func TestPlaceAndStoreError(t *testing.T) {
	db := userGroupDB()
	s := NewStore()
	if _, _, err := s.PlaceAndStore(userFileQuery(), db, relation.StringTuple("no", "pe"), "user", "x", "y"); err == nil {
		t.Error("missing tuple must fail")
	}
	if s.Len() != 0 {
		t.Error("failed placement must not store anything")
	}
}
