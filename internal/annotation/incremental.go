// Incremental maintenance of the where-provenance index under source
// deletions.
//
// A source deletion can change the where-set of a *surviving* view tuple —
// e.g. when one pre-image of a projected tuple dies, the tuple survives
// via its other pre-images but its merged set shrinks — so the delta of
// the index is not the delta of the view, and the old engine rebuilt the
// whole index on the first Annotate after every deletion. ComputeWhere now
// retains the full annotated operator tree (one annNode per operator, its
// per-tuple sets in a persistent overlay map, plus the static pre-image /
// join-partner maps the propagation rules invert), and ApplyDeletion
// derives the next generation of the index by propagating (died, changed)
// entry deltas up the tree: each node recomputes exactly the output
// entries its children's delta can reach, prunes propagation where the
// recomputed sets are unchanged, and derives its overlay map in O(|Δ|).
//
// The static maps are built once per full computation and never grow:
// under deletion-only maintenance no operator ever gains an output tuple,
// so build-time pre-image lists and join buckets stay complete, and
// entries that died in earlier generations are skipped by an ann.Has
// check. Insertions would invalidate that (and can widen surviving sets
// just like deletions can shrink them), so an insert commit drops the
// index and the next Annotate rebuilds it from scratch — exactly the old
// behavior, now paid only on the write kind that needs it.
package annotation

import (
	"sort"
	"sync/atomic"

	"repro/internal/overlay"
	"repro/internal/parallel"
	"repro/internal/relation"
)

// parDeltaMin is the per-node candidate count below which a parallel
// maintenance pass recomputes entries inline instead of partitioning them
// — mirroring the provenance tree's threshold. A package var so the
// differential tests can force the parallel path on small streams.
var parDeltaMin = 16

// annEntry is one output tuple of an operator with its per-position
// where-provenance sets. The tuple rides along so a parent can compute the
// entry's image (projection, union alignment, join keys) from the entry
// alone when it arrives in a delta.
type annEntry struct {
	t    relation.Tuple
	sets []locSet
}

type nodeKind uint8

const (
	nodeScan nodeKind = iota
	nodeSelect
	nodeProject
	nodeJoin
	nodeUnion
	nodeRename
)

// srcPos maps one join-output position to its operand positions (-1 when
// the attribute is absent on that side; common attributes pull from both).
type srcPos struct{ l, r int }

// annNode is one operator of the retained where-provenance tree. The ann
// map is a persistent overlay generation; everything else is immutable
// after the full computation and shared by every derived generation.
type annNode struct {
	kind nodeKind
	kids []*annNode
	ann  *overlay.Map[annEntry]

	// nodeScan
	relName string

	// nodeProject: positions[i] is the child position of output position
	// i; preimages lists the build-time child keys projecting onto each
	// output key (rule 2 merges them, so a recompute unions the survivors).
	// nodeUnion reuses positions for the right→left alignment permutation
	// and inv for its inverse (out tuple → right pre-image).
	positions []int
	preimages map[string][]string
	inv       []int

	// nodeJoin
	ls, rs relation.Schema      // operand schemas (output = ls ⋈ rs, left-prefixed)
	common []relation.Attribute // join attributes
	ronly  []int                // right positions appended after the left prefix
	// lbuck/rbuck: join key → build-time partner tuples of that side.
	lbuck, rbuck map[string][]relation.Tuple
	mapping      []srcPos
	rpos         []int // right position → output position
}

// whereMetrics is shared along a WhereView generation chain, like the
// provenance tree's treeMetrics: work counters for the O(|Δ|) contract
// plus the overlay/version compaction metrics of the maintained state.
type whereMetrics struct {
	touched atomic.Int64 // candidate entries + partner probes examined
	derives atomic.Int64 // incremental generations derived
	om      overlay.Metrics
	vm      relation.VersionMetrics
}

// MaintenanceTouched reports the cumulative number of entries and partner
// probes the incremental maintenance examined across this index's
// generation chain. The regression tests pin it to O(|Δ| · fan-out): a
// full-index rebuild per deletion would scale it with the view instead.
func (wv *WhereView) MaintenanceTouched() int64 { return wv.met.touched.Load() }

// delta is what one node's generation step hands its parent: the entries
// it removed (with their pre-deletion tuples, so the parent can compute
// their images) and the surviving entries whose sets changed (with the
// new sets).
type delta struct {
	died    []annEntry
	changed []annEntry
}

func (d *delta) empty() bool { return len(d.died) == 0 && len(d.changed) == 0 }

// setsEq reports whether two per-position set lists are identical.
// Where-sets are canonical (sorted), so equality is positional.
func setsEq(a, b []locSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// ApplyDeletion derives the where-provenance index of the generation with
// the source tuples T removed, reusing the receiver's index: the retained
// operator tree propagates T upward touching only the entries T can
// reach, so the cost is O(|Δ| · fan-out) instead of the O(view + all
// intermediates) full recomputation. The receiver is unchanged and both
// generations share all untouched state. A deletion disjoint from the
// query's base relations returns the receiver.
func (wv *WhereView) ApplyDeletion(T []relation.SourceTuple) *WhereView {
	return wv.ApplyDeletionWorkers(T, 1)
}

// ApplyDeletionWorkers is ApplyDeletion with an intra-view parallelism
// budget, the where-index side of the provenance tree's
// ApplyDeletionWorkers: sibling subtrees of join/union nodes propagate
// concurrently, and each node's candidate recomputation partitions by the
// store's FNV-1a key hash into per-index slots gathered serially. The
// (died, changed) propagation is order-free state — set/dead maps feeding
// overlay derivations — so the derived index is identical at any worker
// count; the fingerprint differential test pins that byte-for-byte.
// workers <= 1 is exactly ApplyDeletion.
//
// propview:deterministic
func (wv *WhereView) ApplyDeletionWorkers(T []relation.SourceTuple, workers int) *WhereView {
	if len(T) == 0 || wv.root == nil {
		return wv
	}
	byRel := make(map[string][]relation.Tuple, 1)
	for _, st := range T {
		byRel[st.Rel] = append(byRel[st.Rel], st.Tuple)
	}
	root, d := wv.root.applyDel(byRel, wv.met, parallel.NewBudget(workers))
	if root == wv.root {
		return wv
	}
	wv.met.derives.Add(1)
	view := wv.View
	if len(d.died) > 0 {
		dead := make(map[string]struct{}, len(d.died))
		for _, e := range d.died {
			dead[e.t.Key()] = struct{}{}
		}
		view = view.DeleteVersion(dead, &wv.met.vm)
	}
	return &WhereView{View: view, root: root, in: wv.in, met: wv.met}
}

// applyDel propagates a source deletion through this node: children first,
// then the node maps their deltas to candidate output entries, recomputes
// each candidate from the children's new generation, and derives its own
// ann map. Returns the receiver untouched (and an empty delta) when the
// deletion cannot reach this subtree.
//
// par is the intra-view worker budget (nil = serial): two-child nodes
// recurse into their subtrees concurrently, and the candidate recomputes
// of project/join/union nodes — the fan-out-heavy passes — partition by
// key hash into per-index slots, gathered serially. Scan and
// select/rename passes stay inline: their per-entry work is one overlay
// probe, below any sensible partitioning threshold. Reads against the
// children's new generations and the static build-time maps are safe
// concurrently (immutable after construction); the touched counter is
// atomic.
//
// propview:deterministic
func (n *annNode) applyDel(byRel map[string][]relation.Tuple, met *whereMetrics, par *parallel.Budget) (*annNode, delta) {
	switch n.kind {
	case nodeScan:
		ts := byRel[n.relName]
		if len(ts) == 0 {
			return n, delta{}
		}
		var d delta
		var dead map[string]struct{}
		for _, t := range ts {
			k := t.Key()
			met.touched.Add(1)
			if e, ok := n.ann.Get(k); ok {
				d.died = append(d.died, e)
				if dead == nil {
					dead = make(map[string]struct{}, len(ts))
				}
				dead[k] = struct{}{}
			}
		}
		if d.empty() {
			return n, delta{}
		}
		return n.derive(nil, nil, dead, &d, met), d

	case nodeSelect, nodeRename:
		// Both share the child's tuples and sets: an output entry dies
		// exactly when the child entry died (it passed the filter /
		// carried through the renaming), and set changes pass through.
		nk, kd := n.kids[0].applyDel(byRel, met, par)
		if nk == n.kids[0] {
			return n, delta{}
		}
		var d delta
		set := make(map[string]annEntry)
		dead := make(map[string]struct{})
		for _, e := range kd.died {
			met.touched.Add(1)
			if old, ok := n.ann.Get(e.t.Key()); ok {
				d.died = append(d.died, old)
				dead[e.t.Key()] = struct{}{}
			}
		}
		for _, e := range kd.changed {
			met.touched.Add(1)
			if _, ok := n.ann.Get(e.t.Key()); ok {
				d.changed = append(d.changed, e)
				set[e.t.Key()] = e
			}
		}
		return n.derive([]*annNode{nk}, set, dead, &d, met), d

	case nodeProject:
		nk, kd := n.kids[0].applyDel(byRel, met, par)
		if nk == n.kids[0] {
			return n, delta{}
		}
		// Candidates: the images of every died or changed pre-image.
		cands := make(map[string]struct{}, len(kd.died)+len(kd.changed))
		for _, e := range kd.died {
			cands[e.t.Project(n.positions).Key()] = struct{}{}
		}
		for _, e := range kd.changed {
			cands[e.t.Project(n.positions).Key()] = struct{}{}
		}
		keys := make([]string, 0, len(cands))
		for k := range cands {
			keys = append(keys, k)
		}
		// Sorted for the same reason as candSlices: the serial gather below
		// appends died/changed in keys order.
		sort.Strings(keys)
		// Recomputing one candidate reads only the child's new generation
		// and the static pre-image lists: independent per candidate, so
		// each index writes its own slot and the set/dead assembly gathers
		// serially below.
		slots := make([]projSlot, len(keys))
		par.ForKeyed(len(keys), parDeltaMin, func(i int) string { return keys[i] }, func(i int) {
			k := keys[i]
			old, ok := n.ann.Get(k)
			if !ok {
				return
			}
			met.touched.Add(1)
			sets := make([]locSet, len(n.positions))
			live := false
			for _, ck := range n.preimages[k] {
				met.touched.Add(1)
				ce, ok := nk.ann.Get(ck)
				if !ok {
					continue // pre-image dead (this commit or an earlier one)
				}
				live = true
				for j, p := range n.positions {
					sets[j] = sets[j].union(ce.sets[p])
				}
			}
			switch {
			case !live:
				slots[i] = projSlot{e: old, died: true}
			case !setsEq(old.sets, sets):
				slots[i] = projSlot{e: annEntry{t: old.t, sets: sets}, changed: true}
			}
		})
		var d delta
		set := make(map[string]annEntry)
		dead := make(map[string]struct{})
		for i, k := range keys {
			s := slots[i]
			switch {
			case s.died:
				d.died = append(d.died, s.e)
				dead[k] = struct{}{}
			case s.changed:
				d.changed = append(d.changed, s.e)
				set[k] = s.e
			}
		}
		return n.derive([]*annNode{nk}, set, dead, &d, met), d

	case nodeJoin:
		nl, ld, nr, rd := n.applyDelKids(byRel, met, par)
		if nl == n.kids[0] && nr == n.kids[1] {
			return n, delta{}
		}
		// Candidates: every output tuple pairing a delta entry of one side
		// with a pre-commit-live partner of the other. Partner liveness is
		// probed against the OLD opposite generation — a partner dying in
		// this same commit still paired before it, and its output tuples
		// must be re-examined (they die), not silently skipped. Each delta
		// entry's probe writes its own slot of output tuples; the dedup
		// into cands gathers serially (candidate state is order-free — the
		// map below is iterated in whatever order either way).
		cands := make(map[string]relation.Tuple, len(ld.died)+len(rd.died))
		addSide := func(es []annEntry, mySchema relation.Schema, oppBuck map[string][]relation.Tuple, opp *annNode, leftSide bool) {
			outs := make([][]relation.Tuple, len(es))
			par.ForKeyed(len(es), parDeltaMin, func(i int) string { return es[i].t.Key() }, func(i int) {
				e := es[i]
				jk := relation.ProjectAttrs(mySchema, e.t, n.common).Key()
				var o []relation.Tuple
				for _, pt := range oppBuck[jk] {
					met.touched.Add(1)
					if !opp.ann.Has(pt.Key()) {
						continue
					}
					if leftSide {
						o = append(o, n.joined(e.t, pt))
					} else {
						o = append(o, n.joined(pt, e.t))
					}
				}
				outs[i] = o
			})
			for _, ts := range outs {
				for _, t := range ts {
					cands[t.Key()] = t
				}
			}
		}
		addSide(ld.died, n.ls, n.rbuck, n.kids[1], true)
		addSide(ld.changed, n.ls, n.rbuck, n.kids[1], true)
		addSide(rd.died, n.rs, n.lbuck, n.kids[0], false)
		addSide(rd.changed, n.rs, n.lbuck, n.kids[0], false)
		keys, outs := candSlices(cands)
		slots := make([]projSlot, len(keys))
		par.ForKeyed(len(keys), parDeltaMin, func(i int) string { return keys[i] }, func(i int) {
			k, out := keys[i], outs[i]
			old, ok := n.ann.Get(k)
			if !ok {
				return
			}
			met.touched.Add(1)
			// The (left, right) pair is recoverable from the output tuple:
			// the left operand is the prefix, the right re-projects.
			lt := out[:n.ls.Len()]
			rt := out.Project(n.rpos)
			le, lok := nl.ann.Get(lt.Key())
			re, rok := nr.ann.Get(rt.Key())
			if !lok || !rok {
				slots[i] = projSlot{e: old, died: true}
				return
			}
			sets := make([]locSet, len(n.mapping))
			for j, sp := range n.mapping {
				var s locSet
				if sp.l >= 0 {
					s = s.union(le.sets[sp.l])
				}
				if sp.r >= 0 {
					s = s.union(re.sets[sp.r])
				}
				sets[j] = s
			}
			if !setsEq(old.sets, sets) {
				slots[i] = projSlot{e: annEntry{t: old.t, sets: sets}, changed: true}
			}
		})
		d, set, dead := gatherSlots(keys, slots)
		return n.derive([]*annNode{nl, nr}, set, dead, &d, met), d

	case nodeUnion:
		nl, ld, nr, rd := n.applyDelKids(byRel, met, par)
		if nl == n.kids[0] && nr == n.kids[1] {
			return n, delta{}
		}
		cands := make(map[string]relation.Tuple, len(ld.died)+len(rd.died))
		for _, e := range ld.died {
			cands[e.t.Key()] = e.t
		}
		for _, e := range ld.changed {
			cands[e.t.Key()] = e.t
		}
		for _, e := range rd.died {
			a := e.t.Project(n.positions)
			cands[a.Key()] = a
		}
		for _, e := range rd.changed {
			a := e.t.Project(n.positions)
			cands[a.Key()] = a
		}
		keys, outs := candSlices(cands)
		slots := make([]projSlot, len(keys))
		par.ForKeyed(len(keys), parDeltaMin, func(i int) string { return keys[i] }, func(i int) {
			k, out := keys[i], outs[i]
			old, ok := n.ann.Get(k)
			if !ok {
				return
			}
			met.touched.Add(1)
			le, lok := nl.ann.Get(k)
			// The alignment is a permutation, so the right pre-image is
			// the inverse projection of the output tuple.
			re, rok := nr.ann.Get(out.Project(n.inv).Key())
			if !lok && !rok {
				slots[i] = projSlot{e: old, died: true}
				return
			}
			sets := make([]locSet, len(old.sets))
			for j := range sets {
				var s locSet
				if lok {
					s = s.union(le.sets[j])
				}
				if rok {
					s = s.union(re.sets[n.positions[j]])
				}
				sets[j] = s
			}
			if !setsEq(old.sets, sets) {
				slots[i] = projSlot{e: annEntry{t: old.t, sets: sets}, changed: true}
			}
		})
		d, set, dead := gatherSlots(keys, slots)
		return n.derive([]*annNode{nl, nr}, set, dead, &d, met), d
	}
	return n, delta{}
}

// projSlot is one candidate's recompute outcome in a partitioned pass:
// died (e is the old entry), changed (e is the new one), or neither.
type projSlot struct {
	e       annEntry
	died    bool
	changed bool
}

// candSlices materializes a candidate map into parallel key/tuple slices
// so a partitioned pass can index it; candidate state is order-free, so
// the map's iteration order is as good as any.
//
// propview:deterministic
func candSlices(cands map[string]relation.Tuple) ([]string, []relation.Tuple) {
	// Sorted, not map order: the slots these keys index are gathered into
	// the delta's died/changed lists positionally, so the key order here IS
	// the delta order — a map range would make it vary run to run.
	keys := make([]string, 0, len(cands))
	for k := range cands {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	outs := make([]relation.Tuple, len(keys))
	for i, k := range keys {
		outs[i] = cands[k]
	}
	return keys, outs
}

// gatherSlots assembles a partitioned recompute's slots into the node's
// delta and overlay derivation inputs, serially.
//
// propview:deterministic
func gatherSlots(keys []string, slots []projSlot) (delta, map[string]annEntry, map[string]struct{}) {
	var d delta
	set := make(map[string]annEntry)
	dead := make(map[string]struct{})
	for i, k := range keys {
		s := slots[i]
		switch {
		case s.died:
			d.died = append(d.died, s.e)
			dead[k] = struct{}{}
		case s.changed:
			d.changed = append(d.changed, s.e)
			set[k] = s.e
		}
	}
	return d, set, dead
}

// applyDelKids recurses into a two-child node's subtrees — concurrently
// with a budget (the sibling-subtree axis; Budget.For is the join
// barrier), inline without one.
//
// propview:deterministic
func (n *annNode) applyDelKids(byRel map[string][]relation.Tuple, met *whereMetrics, par *parallel.Budget) (nl *annNode, ld delta, nr *annNode, rd delta) {
	var nodes [2]*annNode
	var deltas [2]delta
	run := func(i int) {
		nodes[i], deltas[i] = n.kids[i].applyDel(byRel, met, par)
	}
	if par != nil {
		par.For(2, run)
	} else {
		run(0)
		run(1)
	}
	return nodes[0], deltas[0], nodes[1], deltas[1]
}

// derive publishes this node's next generation: same statics, new kids
// (when given) and the ann overlay derived with the step's delta. Empty
// maps fall through to overlay.Map.Derive's no-op path, so a node whose
// entries all survived unchanged still re-links its updated children.
func (n *annNode) derive(kids []*annNode, set map[string]annEntry, dead map[string]struct{}, d *delta, met *whereMetrics) *annNode {
	node := *n
	if kids != nil {
		node.kids = kids
	}
	if len(set) > 0 || len(dead) > 0 {
		node.ann = n.ann.Derive(set, dead, &met.om)
	}
	return &node
}

// joined builds the join output tuple for a (left, right) pair: the left
// tuple followed by the right side's non-common attributes, matching the
// build-time construction byte for byte.
func (n *annNode) joined(lt, rt relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, 0, n.ls.Len()+len(n.ronly))
	out = append(out, lt...)
	for _, p := range n.ronly {
		out = append(out, rt[p])
	}
	return out
}
