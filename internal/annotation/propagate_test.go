package annotation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/provenance"
	"repro/internal/relation"
)

func userGroupDB() *relation.Database {
	db := relation.NewDatabase()
	ug := relation.New("UserGroup", relation.NewSchema("user", "group"))
	ug.InsertStrings("john", "staff")
	ug.InsertStrings("john", "admin")
	ug.InsertStrings("mary", "admin")
	db.MustAdd(ug)
	gf := relation.New("GroupFile", relation.NewSchema("group", "file"))
	gf.InsertStrings("staff", "f1")
	gf.InsertStrings("admin", "f1")
	gf.InsertStrings("admin", "f2")
	db.MustAdd(gf)
	return db
}

func TestLocSet(t *testing.T) {
	var s locSet
	s = s.union(locSet{3})
	s = s.union(locSet{1, 5})
	s = s.union(locSet{3, 5})
	want := locSet{1, 3, 5}
	if len(s) != 3 {
		t.Fatalf("union=%v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("union=%v want %v", s, want)
		}
	}
	if !s.has(3) || s.has(2) || s.has(0) || s.has(9) {
		t.Error("has wrong")
	}
}

func TestScanPropagation(t *testing.T) {
	db := userGroupDB()
	wv, err := ComputeWhere(algebra.R("UserGroup"), db)
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.StringTuple("john", "staff")
	srcs := wv.WhereOf(tu, "user")
	if len(srcs) != 1 {
		t.Fatalf("scan where-set size %d", len(srcs))
	}
	want := relation.Loc("UserGroup", tu, "user")
	if srcs[0].Key() != want.Key() {
		t.Errorf("got %v want %v", srcs[0], want)
	}
}

func TestSelectionKeepsPropagation(t *testing.T) {
	db := userGroupDB()
	q := algebra.Sigma(algebra.Eq("group", "admin"), algebra.R("UserGroup"))
	wv, err := ComputeWhere(q, db)
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.StringTuple("mary", "admin")
	srcs := wv.WhereOf(tu, "group")
	if len(srcs) != 1 || srcs[0].Rel != "UserGroup" {
		t.Errorf("selection where-set %v", srcs)
	}
	// Filtered-out tuples have no view locations at all.
	if wv.View.Contains(relation.StringTuple("john", "staff")) {
		t.Error("selection let a non-matching tuple through")
	}
}

// σ_{A=B} must NOT copy annotations between A and B (the paper's "explicit
// equality is not used" remark).
func TestSelectionEqualityDoesNotTransport(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	r.InsertStrings("x", "x")
	db.MustAdd(r)
	q := algebra.Sigma(algebra.EqAttr("A", "B"), algebra.R("R"))
	wv, err := ComputeWhere(q, db)
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.StringTuple("x", "x")
	aSrc := wv.WhereOf(tu, "A")
	if len(aSrc) != 1 || aSrc[0].Attr != "A" {
		t.Errorf("A's annotation sources %v must be exactly (R,t,A)", aSrc)
	}
	bSrc := wv.WhereOf(tu, "B")
	if len(bSrc) != 1 || bSrc[0].Attr != "B" {
		t.Errorf("B's annotation sources %v must be exactly (R,t,B)", bSrc)
	}
}

// Projection merges pre-images: both (john,staff) and (john,admin)
// propagate their user-attribute annotation to the single view tuple
// (john).
func TestProjectionMergesPreimages(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user"}, algebra.R("UserGroup"))
	wv, err := ComputeWhere(q, db)
	if err != nil {
		t.Fatal(err)
	}
	srcs := wv.WhereOf(relation.StringTuple("john"), "user")
	if len(srcs) != 2 {
		t.Fatalf("projection pre-image merge: got %d sources, want 2: %v", len(srcs), srcs)
	}
}

// Join: common attribute receives annotations from both operands; private
// attributes from their own side only.
func TestJoinPropagation(t *testing.T) {
	db := userGroupDB()
	q := algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile"))
	wv, err := ComputeWhere(q, db)
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.StringTuple("john", "staff", "f1")
	groupSrcs := wv.WhereOf(tu, "group")
	if len(groupSrcs) != 2 {
		t.Fatalf("common attribute should have 2 sources, got %v", groupSrcs)
	}
	rels := map[string]bool{}
	for _, s := range groupSrcs {
		rels[s.Rel] = true
	}
	if !rels["UserGroup"] || !rels["GroupFile"] {
		t.Errorf("common attribute sources from wrong relations: %v", groupSrcs)
	}
	userSrcs := wv.WhereOf(tu, "user")
	if len(userSrcs) != 1 || userSrcs[0].Rel != "UserGroup" {
		t.Errorf("left-private attribute sources %v", userSrcs)
	}
	fileSrcs := wv.WhereOf(tu, "file")
	if len(fileSrcs) != 1 || fileSrcs[0].Rel != "GroupFile" {
		t.Errorf("right-private attribute sources %v", fileSrcs)
	}
}

func TestUnionMergesBothSides(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A"))
	r.InsertStrings("x")
	db.MustAdd(r)
	s := relation.New("S", relation.NewSchema("A"))
	s.InsertStrings("x")
	db.MustAdd(s)
	wv, err := ComputeWhere(algebra.Un(algebra.R("R"), algebra.R("S")), db)
	if err != nil {
		t.Fatal(err)
	}
	srcs := wv.WhereOf(relation.StringTuple("x"), "A")
	if len(srcs) != 2 {
		t.Fatalf("union should merge both sides: %v", srcs)
	}
}

func TestRenamePropagation(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A"))
	r.InsertStrings("x")
	db.MustAdd(r)
	q := algebra.Delta(map[relation.Attribute]relation.Attribute{"A": "A1"}, algebra.R("R"))
	wv, err := ComputeWhere(q, db)
	if err != nil {
		t.Fatal(err)
	}
	srcs := wv.WhereOf(relation.StringTuple("x"), "A1")
	if len(srcs) != 1 || srcs[0].Attr != "A" {
		t.Errorf("rename must map θ(A) back to source A: %v", srcs)
	}
}

func TestAffectedAndPropagatesTo(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	wv, err := ComputeWhere(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Annotating user of UG(john,staff) reaches only (john,f1).user —
	// (john,f1) also derives via admin but the user attribute of the
	// staff tuple reaches only tuples whose user component came from it.
	src := relation.Loc("UserGroup", relation.StringTuple("john", "staff"), "user")
	aff := wv.Affected(src)
	if aff.Len() != 1 {
		t.Fatalf("Affected=%v want 1 location", aff.Sorted())
	}
	if !wv.PropagatesTo(src, relation.StringTuple("john", "f1"), "user") {
		t.Error("PropagatesTo misses the expected view location")
	}
	if wv.PropagatesTo(src, relation.StringTuple("john", "f2"), "user") {
		t.Error("annotation must not reach (john,f2): staff grants no f2")
	}
	// Unknown source location: affects nothing.
	ghost := relation.Loc("UserGroup", relation.StringTuple("zz", "zz"), "user")
	if wv.Affected(ghost).Len() != 0 {
		t.Error("unknown location should affect nothing")
	}
}

func TestForwardPropagate(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	// The admin membership of john feeds (john,f1) and (john,f2).
	src := relation.Loc("UserGroup", relation.StringTuple("john", "admin"), "user")
	got, err := ForwardPropagate(q, db, src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("ForwardPropagate=%v want 2 locations", got.Sorted())
	}
}

// View-defined constants carry no annotation (remark after Theorem 3.1) —
// modelled here by a projection dropping the annotated column: annotations
// on dropped columns reach nothing.
func TestDroppedColumnCarriesNothing(t *testing.T) {
	db := userGroupDB()
	q := algebra.Pi([]relation.Attribute{"user"}, algebra.R("UserGroup"))
	src := relation.Loc("UserGroup", relation.StringTuple("john", "staff"), "group")
	got, err := ForwardPropagate(q, db, src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("annotation on projected-away column must vanish: %v", got.Sorted())
	}
}

// Cross-engine property: every where-provenance source of a view cell
// belongs to the lineage of that view tuple — the §3 location-level rules
// never invent sources outside the tuple-level derivations.
func TestWhereSourcesSubsetOfLineageQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	q := algebra.Pi([]relation.Attribute{"A", "C"},
		algebra.NatJoin(algebra.R("R1"), algebra.R("R2")))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		r1 := relation.New("R1", relation.NewSchema("A", "B"))
		r2 := relation.New("R2", relation.NewSchema("B", "C"))
		for i := 0; i < 2+r.Intn(4); i++ {
			r1.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
			r2.Insert(relation.NewTuple(relation.Int(int64(r.Intn(2))), relation.Int(int64(r.Intn(2)))))
		}
		db.MustAdd(r1)
		db.MustAdd(r2)
		wv, err := ComputeWhere(q, db)
		if err != nil {
			return false
		}
		lres, err := provenance.ComputeLineage(q, db)
		if err != nil {
			return false
		}
		for _, vt := range wv.View.Tuples() {
			lin := lres.Lineage(vt)
			for _, attr := range wv.View.Schema().Attrs() {
				for _, src := range wv.WhereOf(vt, attr) {
					if !lin.Contains(relation.SourceTuple{Rel: src.Rel, Tuple: src.Tuple}) {
						t.Logf("where source %v of (%v).%s outside lineage %v", src, vt, attr, lin)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Theorem 3.1: normalization preserves the propagation relation R(Q,S), on
// random queries and databases.
func TestNormalFormPreservesPropagationQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 250,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		mk := func(name string, attrs ...relation.Attribute) {
			rel := relation.New(name, relation.NewSchema(attrs...))
			for i := 0; i < 2+r.Intn(5); i++ {
				tu := make(relation.Tuple, len(attrs))
				for j := range tu {
					tu[j] = relation.Int(int64(r.Intn(3)))
				}
				rel.Insert(tu)
			}
			db.MustAdd(rel)
		}
		mk("R", "A", "B")
		mk("S", "B", "C")
		mk("T", "A", "B")
		q := randomAnnQuery(r, 1+r.Intn(3))
		if algebra.Validate(q, db) != nil {
			return true
		}
		before, err := PropagationRelation(q, db)
		if err != nil {
			return true
		}
		after, err := PropagationRelation(algebra.Normalize(q), db)
		if err != nil {
			t.Logf("normalized query fails: %s: %v", algebra.Format(algebra.Normalize(q)), err)
			return false
		}
		if len(before) != len(after) {
			t.Logf("propagation relation size changed %d -> %d for %s => %s",
				len(before), len(after), algebra.Format(q), algebra.Format(algebra.Normalize(q)))
			return false
		}
		for i := range before {
			if before[i][0].Key() != after[i][0].Key() || before[i][1].Key() != after[i][1].Key() {
				t.Logf("propagation pair %d differs for %s", i, algebra.Format(q))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Join reordering preserves the propagation relation: the §3 join rule is
// symmetric in the operands, so OptimizeJoins must not change R(Q,S).
func TestOptimizeJoinsPreservesPropagationQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 120,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := relation.NewDatabase()
		k := 2 + r.Intn(3)
		var operands []algebra.Query
		for i := 1; i <= k; i++ {
			a1 := "A" + string(rune('0'+i-1))
			a2 := "A" + string(rune('0'+i))
			rel := relation.New("C"+string(rune('0'+i)), relation.NewSchema(a1, a2))
			for j := 0; j < 1+r.Intn(6); j++ {
				rel.Insert(relation.NewTuple(
					relation.Int(int64(r.Intn(3))), relation.Int(int64(r.Intn(3)))))
			}
			db.MustAdd(rel)
			operands = append(operands, algebra.Scan{Rel: rel.Name()})
		}
		r.Shuffle(len(operands), func(i, j int) {
			operands[i], operands[j] = operands[j], operands[i]
		})
		q := algebra.NatJoin(operands...)
		opt := algebra.OptimizeJoins(q, db)
		before, err := PropagationRelation(q, db)
		if err != nil {
			return true
		}
		after, err := PropagationRelation(opt, db)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(before) != len(after) {
			t.Logf("propagation size changed %d -> %d", len(before), len(after))
			return false
		}
		// View schemas may have reordered attributes; compare as sets of
		// (source, view tuple values + attr) with tuples aligned by name.
		key := func(p [2]relation.Location, schema relation.Schema, ref relation.Schema) string {
			aligned := relation.ProjectAttrs(schema, p[1].Tuple, ref.Attrs())
			return p[0].Key() + "→" + aligned.Key() + "/" + p[1].Attr
		}
		sBefore, err := algebra.SchemaOf(q, db)
		if err != nil {
			return true
		}
		sAfter, err := algebra.SchemaOf(opt, db)
		if err != nil {
			return false
		}
		beforeSet := make(map[string]bool, len(before))
		for _, p := range before {
			beforeSet[key(p, sBefore, sBefore)] = true
		}
		for _, p := range after {
			if !beforeSet[key(p, sAfter, sBefore)] {
				t.Logf("propagation pair appeared: %v", p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// randomAnnQuery builds random queries over R(A,B), S(B,C), T(A,B)
// including renames, unions, joins, selects and projects.
func randomAnnQuery(r *rand.Rand, depth int) algebra.Query {
	if depth <= 0 {
		return ab(r, 0)
	}
	switch r.Intn(5) {
	case 0:
		return algebra.Union{Left: ab(r, depth-1), Right: ab(r, depth-1)}
	case 1:
		return algebra.Select{Child: randomAnnQuery(r, depth-1), Cond: algebra.True{}}
	case 2:
		return algebra.Project{Child: algebra.Join{Left: ab(r, depth-1), Right: algebra.Scan{Rel: "S"}},
			Attrs: []relation.Attribute{"A", "C"}}
	case 3:
		return algebra.Rename{Child: ab(r, depth-1),
			Theta: map[relation.Attribute]relation.Attribute{"A": "Z"}}
	default:
		return ab(r, depth-1)
	}
}

// ab builds a random query with schema exactly (A,B).
func ab(r *rand.Rand, depth int) algebra.Query {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return algebra.Scan{Rel: "R"}
		}
		return algebra.Scan{Rel: "T"}
	}
	switch r.Intn(4) {
	case 0:
		return algebra.Union{Left: ab(r, depth-1), Right: ab(r, depth-1)}
	case 1:
		return algebra.Select{Child: ab(r, depth-1),
			Cond: algebra.AttrConst{Attr: "B", Op: algebra.OpNe, Val: relation.Int(int64(r.Intn(3)))}}
	case 2:
		return algebra.Project{Child: algebra.Join{Left: ab(r, depth-1), Right: algebra.Scan{Rel: "S"}},
			Attrs: []relation.Attribute{"A", "B"}}
	default:
		return ab(r, depth-1)
	}
}
