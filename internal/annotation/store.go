package annotation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/relation"
)

// The paper's introduction describes the deployment model this file
// implements: annotators "may not have update privileges to the database
// so that annotations have to be stored in a separate database", and the
// loose form of annotation "may allow annotations on annotations". A
// Store is that separate database — annotation values keyed by source
// location, each with an id so later annotations can target earlier ones
// — plus the machinery to materialize an annotated view: evaluate a query
// and report which annotations surface on which view cells under the §3
// propagation rules.

// Annotation is one stored annotation.
type Annotation struct {
	// ID is the store-assigned identity (1-based).
	ID int
	// Target is the annotated source location.
	Target relation.Location
	// Text is the annotation content.
	Text string
	// Parent is the ID of the annotation this one annotates (0 = none):
	// the "annotations on annotations" of §1.
	Parent int
	// Author is free-form attribution.
	Author string
}

// String renders the annotation compactly.
func (a Annotation) String() string {
	s := fmt.Sprintf("#%d %v: %q", a.ID, a.Target, a.Text)
	if a.Parent != 0 {
		s += fmt.Sprintf(" (on #%d)", a.Parent)
	}
	if a.Author != "" {
		s += " — " + a.Author
	}
	return s
}

// Store holds annotations separately from the data, keyed by location.
type Store struct {
	byID  map[int]Annotation
	byLoc map[string][]int
	next  int
}

// NewStore creates an empty annotation store.
func NewStore() *Store {
	return &Store{byID: make(map[int]Annotation), byLoc: make(map[string][]int), next: 1}
}

// Len returns the number of stored annotations.
func (s *Store) Len() int { return len(s.byID) }

// Annotate records an annotation on a source location and returns its id.
func (s *Store) Annotate(target relation.Location, text, author string) int {
	a := Annotation{ID: s.next, Target: target, Text: text, Author: author}
	s.next++
	s.byID[a.ID] = a
	s.byLoc[target.Key()] = append(s.byLoc[target.Key()], a.ID)
	return a.ID
}

// Reply records an annotation on an existing annotation (it inherits the
// parent's location so it propagates with it).
func (s *Store) Reply(parent int, text, author string) (int, error) {
	p, ok := s.byID[parent]
	if !ok {
		return 0, fmt.Errorf("annotation: no annotation #%d", parent)
	}
	a := Annotation{ID: s.next, Target: p.Target, Text: text, Parent: parent, Author: author}
	s.next++
	s.byID[a.ID] = a
	s.byLoc[a.Target.Key()] = append(s.byLoc[a.Target.Key()], a.ID)
	return a.ID, nil
}

// Get retrieves an annotation by id.
func (s *Store) Get(id int) (Annotation, bool) {
	a, ok := s.byID[id]
	return a, ok
}

// At returns the annotations stored on a location, in id order.
func (s *Store) At(loc relation.Location) []Annotation {
	ids := s.byLoc[loc.Key()]
	out := make([]Annotation, len(ids))
	for i, id := range ids {
		out[i] = s.byID[id]
	}
	return out
}

// Thread returns an annotation and its transitive replies, depth-first in
// id order.
func (s *Store) Thread(root int) []Annotation {
	children := make(map[int][]int)
	for _, a := range s.byID {
		if a.Parent != 0 {
			children[a.Parent] = append(children[a.Parent], a.ID)
		}
	}
	for _, c := range children {
		sort.Ints(c)
	}
	var out []Annotation
	var walk func(int)
	walk = func(id int) {
		a, ok := s.byID[id]
		if !ok {
			return
		}
		out = append(out, a)
		for _, c := range children[id] {
			walk(c)
		}
	}
	walk(root)
	return out
}

// AnnotatedCell is one view cell with the annotations that surfaced on it.
type AnnotatedCell struct {
	Location    relation.Location
	Annotations []Annotation
}

// AnnotatedView is a materialized view with annotations propagated from
// the store under the §3 forward rules.
type AnnotatedView struct {
	View *relation.Relation
	// cells maps view location keys to surfaced annotations.
	cells map[string]*AnnotatedCell
}

// Cell returns the annotations visible at view location (t, attr).
func (av *AnnotatedView) Cell(t relation.Tuple, attr relation.Attribute) []Annotation {
	c := av.cells[relation.Loc(av.View.Name(), t, attr).Key()]
	if c == nil {
		return nil
	}
	return c.Annotations
}

// AnnotatedCells returns every view cell that carries at least one
// annotation, in deterministic order.
func (av *AnnotatedView) AnnotatedCells() []AnnotatedCell {
	keys := make([]string, 0, len(av.cells))
	for k := range av.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]AnnotatedCell, 0, len(keys))
	for _, k := range keys {
		out = append(out, *av.cells[k])
	}
	return out
}

// Render draws the annotated view: the table followed by one line per
// annotated cell.
func (av *AnnotatedView) Render() string {
	var b strings.Builder
	b.WriteString(av.View.Table())
	for _, c := range av.AnnotatedCells() {
		fmt.Fprintf(&b, "  %v:\n", c.Location)
		for _, a := range c.Annotations {
			fmt.Fprintf(&b, "    %v\n", a)
		}
	}
	return b.String()
}

// Materialize evaluates q over db and propagates every stored annotation
// to the view, using one where-provenance pass.
func (s *Store) Materialize(q algebra.Query, db *relation.Database) (*AnnotatedView, error) {
	wv, err := ComputeWhere(q, db)
	if err != nil {
		return nil, err
	}
	av := &AnnotatedView{View: wv.View, cells: make(map[string]*AnnotatedCell)}
	attrs := wv.View.Schema().Attrs()
	for _, t := range wv.View.Tuples() {
		sets := wv.setsOf(t.Key())
		for pos, set := range sets {
			var anns []Annotation
			for _, id := range set {
				srcLoc := wv.in.locs[id]
				for _, aid := range s.byLoc[srcLoc.Key()] {
					anns = append(anns, s.byID[aid])
				}
			}
			if len(anns) == 0 {
				continue
			}
			sort.Slice(anns, func(i, j int) bool { return anns[i].ID < anns[j].ID })
			loc := relation.Loc(wv.View.Name(), t, attrs[pos])
			av.cells[loc.Key()] = &AnnotatedCell{Location: loc, Annotations: anns}
		}
	}
	return av, nil
}

// PlaceAndStore runs the placement optimizer for a view location and, on
// success, records the annotation at the chosen source location. It
// returns the placement and the new annotation id.
func (s *Store) PlaceAndStore(q algebra.Query, db *relation.Database, t relation.Tuple, attr relation.Attribute, text, author string) (*Placement, int, error) {
	p, err := Place(q, db, t, attr)
	if err != nil {
		return nil, 0, err
	}
	id := s.Annotate(p.Source, text, author)
	return p, id, nil
}
