package annotation_test

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/annotation"
	"repro/internal/relation"
)

func exampleDB() *relation.Database {
	db := relation.NewDatabase()
	ug := relation.New("UserGroup", relation.NewSchema("user", "group"))
	ug.InsertStrings("john", "staff")
	ug.InsertStrings("john", "admin")
	ug.InsertStrings("mary", "admin")
	db.MustAdd(ug)
	gf := relation.New("GroupFile", relation.NewSchema("group", "file"))
	gf.InsertStrings("staff", "f1")
	gf.InsertStrings("admin", "f1")
	gf.InsertStrings("admin", "f2")
	db.MustAdd(gf)
	return db
}

// Annotating the file cell of (john, f2): the only source is
// GroupFile(admin, f2).file, and it unavoidably also annotates
// (mary, f2).file — one side-effect, certified minimal.
func ExamplePlace() {
	db := exampleDB()
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	p, _ := annotation.Place(q, db, relation.StringTuple("john", "f2"), "file")
	fmt.Println("place on:", p.Source)
	fmt.Println("side-effects:", p.SideEffects)
	// Output:
	// place on: (GroupFile, (admin, f2), file)
	// side-effects: 1
}

// Forward propagation (§3 rules): where does an annotation on john's
// admin membership surface?
func ExampleForwardPropagate() {
	db := exampleDB()
	q := algebra.Pi([]relation.Attribute{"user", "file"},
		algebra.NatJoin(algebra.R("UserGroup"), algebra.R("GroupFile")))
	src := relation.Loc("UserGroup", relation.StringTuple("john", "admin"), "user")
	reached, _ := annotation.ForwardPropagate(q, db, src)
	for _, l := range reached.Sorted() {
		fmt.Println(l)
	}
	// Output:
	// (V, (john, f1), user)
	// (V, (john, f2), user)
}
