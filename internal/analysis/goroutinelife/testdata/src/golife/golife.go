// Package golife exercises every join proof goroutinelife accepts — and
// seeds the leaks it must catch.
package golife

import "sync"

func work() {}

// waitgroupJoin: Done in the goroutine, Wait in the launcher.
func waitgroupJoin() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// channelJoin: the goroutine's result is received by the launcher.
func channelJoin() error {
	errc := make(chan error, 1)
	go func() { errc <- nil }()
	return <-errc
}

// closeJoin: the goroutine signals completion by closing a channel the
// launcher blocks on.
func closeJoin() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

func leakLiteral() {
	go func() { work() }() // want "goroutine launched in leakLiteral has no provable join"
}

func leakNamed() {
	go work() // want "goroutine running work launched in leakNamed has no provable join"
}

// server drains on a classifiable channel: run closes s.drained, and
// Close — elsewhere in the package — waits on it. That drain
// registration is the third accepted proof.
type server struct {
	drained chan struct{}
}

func newServer() *server {
	s := &server{drained: make(chan struct{})}
	go s.run()
	return s
}

func (s *server) run() {
	defer close(s.drained)
	work()
}

func (s *server) Close() {
	<-s.drained
}

// leaky signals on a channel nothing in the package ever receives.
type leaky struct {
	done chan struct{}
}

func newLeaky() *leaky {
	l := &leaky{done: make(chan struct{})}
	go l.run() // want "goroutine running leaky.run launched in newLeaky has no provable join"
	return l
}

func (l *leaky) run() {
	defer close(l.done)
}
