package goroutinelife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutinelife"
)

func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, "testdata", goroutinelife.Analyzer, "golife")
}
