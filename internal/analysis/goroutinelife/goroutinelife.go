// Package goroutinelife checks that every `go` statement has a provable
// join or termination edge — an unmatched launch is a goroutine leak (or a
// worker that can outlive the state it reads).
//
// Three proofs are accepted, in the order they are tried:
//
//   - WaitGroup balance: the launched literal calls Done on a WaitGroup the
//     launching function Waits on (the parallel.For / fan-out
//     worker shape).
//   - Channel hand-off: the literal sends on or closes a channel the
//     launching function receives from (the propviewd serve-error and
//     shutdown-timeout shapes).
//   - Drain registration: the launched code (a named function, or through
//     its callees) signals on a classifiable channel or WaitGroup — a
//     struct field or package-level var — that some other function
//     receives from or waits on, possibly in another package. This is the
//     graceful-shutdown pattern: `go s.runAsyncCommits()` closes s.drained
//     when it returns, and Close blocks on <-s.drained.
//
// The first two are read off the launch site; the third comes from the
// concurrency summaries, which is what makes join evidence spanning
// functions (or packages) visible at all.
package goroutinelife

import (
	"repro/internal/analysis"
	"repro/internal/analysis/summary"
)

// Analyzer is the goroutinelife analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "goroutinelife",
	Doc:      "checks every go statement for a provable join or termination edge (WaitGroup balance, channel hand-off, or shutdown-drain registration)",
	Requires: []*analysis.Analyzer{summary.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	res := pass.ResultOf[summary.Analyzer].(*summary.Result)
	if len(res.Launches) == 0 {
		return nil, nil
	}

	// Classes some function provably receives from or waits on — in this
	// package, or in any package whose facts we can see.
	joined := make(map[string]bool)
	for c := range res.Joins {
		joined[c] = true
	}
	for _, pf := range pass.AllPackageFacts(&summary.PkgFact{}) {
		for _, c := range pf.Fact.(*summary.PkgFact).Joins {
			joined[c] = true
		}
	}

	for _, l := range res.Launches {
		if l.Proof != "" {
			continue // joined at the launch site itself
		}
		drained := false
		for _, c := range l.JoinClasses {
			if joined[c] {
				drained = true
				break
			}
		}
		if drained {
			continue
		}
		what := "goroutine"
		if l.Callee != "" {
			what = "goroutine running " + l.Callee
		}
		pass.Reportf(l.Pos, "%s launched in %s has no provable join: no WaitGroup Done/Wait balance, channel hand-off received by the launcher, or drain signal another function waits on",
			what, l.FuncName)
	}
	return nil, nil
}
