// Package lockfix exercises the lockguard analyzer across the mutex,
// RWMutex, Once, and atomic guard forms.
package lockfix

import (
	"sync"
	"sync/atomic"
)

type Eng struct {
	mu    sync.Mutex
	views map[string]int // guarded-by: mu
	gen   atomic.Int64   // guarded-by: atomic
}

func (e *Eng) good() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.views["a"]
}

func (e *Eng) badRead() int {
	return e.views["a"] // want `read e.views without holding e.mu`
}

func (e *Eng) badWriteAfterUnlock() {
	e.mu.Lock()
	e.views["a"] = 1 // ok
	e.mu.Unlock()
	e.views["b"] = 2 // want `write to e.views without holding e.mu`
}

func (e *Eng) earlyReturn() int {
	e.mu.Lock()
	if len(e.views) == 0 { // ok: checked under the lock
		e.mu.Unlock()
		return 0
	}
	v := e.views["a"] // ok: the unlocking branch returned
	e.mu.Unlock()
	return v
}

func (e *Eng) conditionalLock(b bool) {
	if b {
		e.mu.Lock()
	}
	e.views["a"] = 1 // want `write to e.views without holding e.mu`
}

// lockedViews reads views with e.mu held by the caller.
//
// propview:holds mu
func (e *Eng) lockedViews() int { return e.views["a"] }

func (e *Eng) goroutineLeak() {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		_ = e.views["a"] // want `read e.views without holding e.mu`
	}()
}

func (e *Eng) atomicOK() int64 {
	return e.gen.Load() // ok: the type carries the guarantee
}

func fresh() *Eng {
	e := &Eng{}
	e.views = map[string]int{} // ok: e is not shared yet
	return e
}

type RW struct {
	mu sync.RWMutex
	db int // guarded-by: mu
}

func (r *RW) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.db // ok
}

func (r *RW) badWriteUnderRead() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.db = 1 // want `write to r.db while holding only the read lock r.mu`
}

type Snap struct {
	once  sync.Once
	where int // guarded-by: once
}

func (s *Snap) Where() int {
	s.once.Do(func() { s.where = 42 }) // ok: built inside Do
	return s.where                     // ok: Do completed on this path
}

func (s *Snap) badWrite() {
	s.where = 1 // want `write to s.where outside its s.once.Do closure`
}

func (s *Snap) badEarlyRead() int {
	return s.where // want `read of s.where before s.once.Do on this path`
}

type BadAtomic struct {
	// guarded-by: atomic
	n int // want `marked guarded-by: atomic but its type int is not from sync/atomic`
}

type BadGuard struct {
	// guarded-by: missing
	v int // want `guarded-by: missing names no sibling field`
}

func (e *Eng) suppressed() int {
	//lint:ignore lockguard fixture exercises the suppression path
	return e.views["a"] // ok: suppressed with justification
}
