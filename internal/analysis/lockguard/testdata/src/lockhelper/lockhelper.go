// Package lockhelper exercises lockguard's summary-aware half: guarded
// accesses whose lock is taken and released through helper methods, which
// the intra-procedural analyzer used to be blind to.
package lockhelper

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded-by: mu
}

func (c *counter) lock() {
	c.mu.Lock()
}

func (c *counter) unlock() {
	c.mu.Unlock()
}

// inc is correct: the helpers acquire and release c.mu around the access.
func (c *counter) inc() {
	c.lock()
	c.n++
	c.unlock()
}

// deferred is correct: the deferred helper releases at return, so the
// lock is held for the read.
func (c *counter) deferred() int {
	c.lock()
	defer c.unlock()
	return c.n
}

// after touches the guarded field once the helper has already released.
func (c *counter) after() {
	c.lock()
	c.unlock()
	c.n++ // want "write to c.n without holding c.mu"
}
