package lockguard_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockguard"
)

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "lockfix", "lockhelper")
}

// TestRevertedLockFails proves the analyzer is load-bearing: the scratch
// fixture passes as written, and deleting its lock acquisition makes
// lockguard report the now-unprotected access.
func TestRevertedLockFails(t *testing.T) {
	const guarded = `package scratch

import "sync"

type Eng struct {
	mu    sync.Mutex
	views map[string]int // guarded-by: mu
}

func (e *Eng) Get(k string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.views[k]
}
`
	if got := analysistest.RunFiles(t, lockguard.Analyzer, "scratch", map[string]string{"scratch.go": guarded}); len(got) != 0 {
		t.Fatalf("guarded fixture should be clean, got %v", got)
	}

	reverted := strings.Replace(guarded, "\te.mu.Lock()\n\tdefer e.mu.Unlock()\n", "", 1)
	if reverted == guarded {
		t.Fatal("revert edit did not apply")
	}
	got := analysistest.RunFiles(t, lockguard.Analyzer, "scratch", map[string]string{"scratch.go": reverted})
	if len(got) != 1 || !strings.Contains(got[0].Message, "read e.views without holding e.mu") {
		t.Fatalf("reverting the lock acquisition should produce exactly the unguarded-read finding, got %v", got)
	}
}
