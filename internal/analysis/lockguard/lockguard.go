// Package lockguard checks `guarded-by:` field annotations: a field
// annotated `// guarded-by: mu` may only be read or written while the
// sibling mutex mu is held on an enclosing path. The walk is sequential
// with a terminator heuristic (a branch ending in return/panic/continue/
// break does not leak its lock-state changes), so the common
// lock/check/unlock-and-return shape needs no annotations.
//
// Guard forms (see the internal/analysis package doc):
//
//   - a sibling sync.Mutex or sync.RWMutex field: Lock/RLock acquire,
//     Unlock/RUnlock release; deferred unlocks keep the lock held to the
//     end of the function; writes need the write lock, reads either.
//   - a sibling sync.Once field: writes must happen inside a closure
//     passed to that Once's Do; after a Do call on the same path, reads
//     are allowed (Do's happens-before edge).
//   - the word "atomic": the field's type must come from sync/atomic,
//     which makes every access safe by construction.
//
// Functions whose contract is "caller holds the lock" carry a
// `propview:holds mu` marker. Accesses through values freshly allocated
// in the current function are exempt (not yet shared). Function literals
// start with no locks held (they may run on another goroutine) except
// Once.Do closures, which hold their Once.
//
// Calls are no longer a blind spot: the walk consumes the concurrency
// summaries (see internal/analysis/summary), so a callee that returns
// with the receiver's mutex held — a lock helper — extends the held set,
// and one that releases it on the caller's behalf shrinks it, across
// package boundaries.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/markers"
	"repro/internal/analysis/summary"
)

// Analyzer is the lockguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "lockguard",
	Doc:      "checks that guarded-by: annotated fields are accessed only with their lock held (see internal/analysis)",
	Requires: []*analysis.Analyzer{summary.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	guards := markers.FieldGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	st := &state{pass: pass, guards: guards}
	if r, ok := pass.ResultOf[summary.Analyzer].(*summary.Result); ok {
		st.sums = r
	}
	st.validate()
	holds := make(map[*types.Func][]string)
	for obj, info := range markers.Funcs(pass) {
		if len(info.Holds) > 0 {
			holds[obj] = info.Holds
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fs := &funcState{st: st, held: make(map[string]level), fresh: make(map[types.Object]bool)}
			if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
				if names := holds[obj]; len(names) > 0 {
					recv := receiverName(fd)
					for _, name := range names {
						key := name
						if recv != "" {
							key = recv + "." + name
						}
						fs.held[key] = write
					}
				}
			}
			fs.stmt(fd.Body)
		}
	}
	return nil, nil
}

type state struct {
	pass   *analysis.Pass
	guards map[*types.Var]markers.Guard
	sums   *summary.Result
}

// sumOf resolves a callee's concurrency summary: same-package functions
// from the summary pass's result, imported ones from their fact.
func (st *state) sumOf(f *types.Func) *summary.FuncSummary {
	if st.sums != nil {
		if s, ok := st.sums.Funcs[f]; ok {
			return s
		}
	}
	var ff summary.FuncFact
	if st.pass.ImportObjectFact(f, &ff) {
		return &ff.S
	}
	return nil
}

// validate reports annotations whose guard cannot work: an "atomic" guard
// on a non-atomic type, or a named guard with no sibling field of a lock
// type.
func (st *state) validate() {
	for field, g := range st.guards {
		if g.Name == "atomic" {
			if !atomicType(field.Type()) {
				st.pass.Reportf(g.Pos, "field %s is marked guarded-by: atomic but its type %s is not from sync/atomic",
					field.Name(), field.Type())
			}
			continue
		}
		sib := markers.SiblingField(st.pass, g.Struct, g.Name)
		if sib == nil {
			st.pass.Reportf(g.Pos, "guarded-by: %s names no sibling field of this struct", g.Name)
			continue
		}
		if !lockType(sib.Type()) && !onceType(sib.Type()) {
			st.pass.Reportf(g.Pos, "guard field %s has type %s; want sync.Mutex, sync.RWMutex, or sync.Once",
				g.Name, sib.Type())
		}
	}
}

// level is how strongly a lock is held on the current path.
type level int

const (
	read  level = iota + 1 // RLock, or a completed Once.Do
	write                  // Lock, or inside a Once.Do closure
)

type funcState struct {
	st *state
	// held maps a lock key ("e.mu": base expression + guard field) to how
	// it is held on the current path.
	held map[string]level
	// fresh marks locals bound to objects allocated in this function; their
	// guarded fields are exempt (the object is not shared yet).
	fresh map[types.Object]bool
}

func (fs *funcState) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			fs.stmt(sub)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			fs.expr(r, false)
		}
		for _, l := range s.Lhs {
			fs.writeTarget(l)
		}
		fs.trackFresh(s)
	case *ast.IncDecStmt:
		fs.writeTarget(s.X)
	case *ast.ExprStmt:
		fs.expr(s.X, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fs.expr(r, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		fs.expr(s.Cond, false)
		fs.branch(s.Body, s.Else)
	case *ast.ForStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		if s.Cond != nil {
			fs.expr(s.Cond, false)
		}
		if s.Post != nil {
			fs.stmt(s.Post)
		}
		fs.branch(s.Body, nil)
	case *ast.RangeStmt:
		fs.expr(s.X, false)
		fs.branch(s.Body, nil)
	case *ast.SwitchStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		if s.Tag != nil {
			fs.expr(s.Tag, false)
		}
		fs.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		fs.stmt(s.Assign)
		fs.caseBodies(s.Body)
	case *ast.SelectStmt:
		fs.caseBodies(s.Body)
	case *ast.DeferStmt:
		// A deferred unlock releases at return: the lock stays held for the
		// rest of the walk, so only non-unlock defers are inspected. A
		// deferred call to a helper that releases locks (per its summary)
		// behaves the same way.
		if lockCall(fs.st.pass.TypesInfo, s.Call) == "" && !fs.deferredRelease(s.Call) {
			fs.expr(s.Call, false)
		}
	case *ast.GoStmt:
		fs.expr(s.Call, false)
	case *ast.SendStmt:
		fs.expr(s.Chan, false)
		fs.expr(s.Value, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fs.expr(v, false)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		fs.stmt(s.Stmt)
	}
}

// branch walks a conditional body (and optional else) and merges lock
// state conservatively: changes made in a branch that ends in a
// terminator are discarded; otherwise a lock survives the branch only if
// every non-terminating path holds it.
func (fs *funcState) branch(body *ast.BlockStmt, els ast.Stmt) {
	entry := fs.snapshot()
	fs.stmt(body)
	after := fs.snapshot()
	if terminates(body) {
		after = entry
	}
	if els != nil {
		fs.restore(entry)
		fs.stmt(els)
		if !terminatesStmt(els) {
			after = intersect(after, fs.snapshot())
		}
	} else {
		after = intersect(after, entry)
	}
	fs.restore(after)
}

func (fs *funcState) caseBodies(body *ast.BlockStmt) {
	entry := fs.snapshot()
	after := entry
	for _, cs := range body.List {
		fs.restore(entry)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				fs.expr(e, false)
			}
			for _, sub := range cs.Body {
				fs.stmt(sub)
			}
			if !terminatesList(cs.Body) {
				after = intersect(after, fs.snapshot())
			}
		case *ast.CommClause:
			if cs.Comm != nil {
				fs.stmt(cs.Comm)
			}
			for _, sub := range cs.Body {
				fs.stmt(sub)
			}
			if !terminatesList(cs.Body) {
				after = intersect(after, fs.snapshot())
			}
		}
	}
	fs.restore(after)
}

func (fs *funcState) snapshot() map[string]level {
	cp := make(map[string]level, len(fs.held))
	for k, v := range fs.held {
		cp[k] = v
	}
	return cp
}

func (fs *funcState) restore(m map[string]level) {
	fs.held = make(map[string]level, len(m))
	for k, v := range m {
		fs.held[k] = v
	}
}

func intersect(a, b map[string]level) map[string]level {
	out := make(map[string]level)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				va = vb
			}
			out[k] = va
		}
	}
	return out
}

// expr walks an expression; stmtPos marks a bare expression statement,
// where Lock/Unlock calls mutate lock state.
func (fs *funcState) expr(e ast.Expr, stmtPos bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		if stmtPos {
			if key := lockCall(fs.st.pass.TypesInfo, e); key != "" {
				fs.applyLockCall(e)
				return
			}
		}
		if fs.onceDo(e) {
			return
		}
		fs.expr(e.Fun, false)
		for _, a := range e.Args {
			fs.expr(a, false)
		}
		fs.applySummary(e)
	case *ast.SelectorExpr:
		fs.checkAccess(e, read)
		fs.expr(e.X, false)
	case *ast.FuncLit:
		// May run on another goroutine: no inherited locks, and locals of
		// the enclosing function are no longer provably unshared.
		inner := &funcState{st: fs.st, held: make(map[string]level), fresh: make(map[types.Object]bool)}
		inner.stmt(e.Body)
	case *ast.BinaryExpr:
		fs.expr(e.X, false)
		fs.expr(e.Y, false)
	case *ast.UnaryExpr:
		fs.expr(e.X, false)
	case *ast.StarExpr:
		fs.expr(e.X, false)
	case *ast.ParenExpr:
		fs.expr(e.X, stmtPos)
	case *ast.IndexExpr:
		fs.expr(e.X, false)
		fs.expr(e.Index, false)
	case *ast.SliceExpr:
		fs.expr(e.X, false)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				fs.expr(idx, false)
			}
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fs.expr(kv.Value, false)
			} else {
				fs.expr(el, false)
			}
		}
	case *ast.TypeAssertExpr:
		fs.expr(e.X, false)
	case *ast.KeyValueExpr:
		fs.expr(e.Key, false)
		fs.expr(e.Value, false)
	}
}

// applyLockCall updates held for a Lock/Unlock-family call statement.
func (fs *funcState) applyLockCall(call *ast.CallExpr) {
	sel := call.Fun.(*ast.SelectorExpr)
	key := types.ExprString(analysis.Unparen(sel.X))
	switch sel.Sel.Name {
	case "Lock":
		fs.held[key] = write
	case "RLock":
		if fs.held[key] < read {
			fs.held[key] = read
		}
	case "Unlock", "RUnlock":
		delete(fs.held, key)
	case "TryLock":
		// Conservative: a TryLock statement whose result is discarded does
		// not prove the lock held.
	}
}

// applySummary folds a callee's summary into the held set after the call:
// locks the callee returns holding join it (rebased from the callee's
// receiver onto the call-site receiver expression), locks it releases on
// the caller's behalf leave it.
func (fs *funcState) applySummary(call *ast.CallExpr) {
	callee := summary.CalleeOf(fs.st.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	sum := fs.st.sumOf(callee)
	if sum == nil {
		return
	}
	sel, _ := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	for _, nh := range sum.NetHeld {
		key := callSiteKey(sel, nh.Field)
		if key == "" {
			continue
		}
		lvl := write
		if nh.Level == "read" {
			lvl = read
		}
		if fs.held[key] < lvl {
			fs.held[key] = lvl
		}
	}
	for _, rel := range sum.Releases {
		if key := callSiteKey(sel, rel.Field); key != "" {
			delete(fs.held, key)
		}
	}
}

// deferredRelease reports whether a deferred call releases locks per its
// summary — those stay held to the end of the function, like a deferred
// unlock.
func (fs *funcState) deferredRelease(call *ast.CallExpr) bool {
	callee := summary.CalleeOf(fs.st.pass.TypesInfo, call)
	if callee == nil {
		return false
	}
	sum := fs.st.sumOf(callee)
	return sum != nil && len(sum.Releases) > 0
}

// callSiteKey rebases a callee's receiver-relative lock field onto the
// call-site receiver expression: e.helper() whose summary names field "mu"
// yields the held-set key "e.mu".
func callSiteKey(sel *ast.SelectorExpr, field string) string {
	if field == "" || sel == nil {
		return ""
	}
	return types.ExprString(analysis.Unparen(sel.X)) + "." + field
}

// onceDo handles base.once.Do(f): the closure runs with the Once
// write-held, and after the call the Once is read-held on this path.
func (fs *funcState) onceDo(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" || len(call.Args) != 1 {
		return false
	}
	recv, ok := analysis.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, _ := fs.st.pass.TypesInfo.Uses[recv.Sel].(*types.Var)
	if obj == nil || !onceType(obj.Type()) {
		return false
	}
	key := types.ExprString(analysis.Unparen(sel.X))
	if lit, ok := analysis.Unparen(call.Args[0]).(*ast.FuncLit); ok {
		inner := &funcState{st: fs.st, held: map[string]level{key: write}, fresh: make(map[types.Object]bool)}
		inner.stmt(lit.Body)
	} else {
		fs.expr(call.Args[0], false)
	}
	if fs.held[key] < read {
		fs.held[key] = read
	}
	return true
}

// writeTarget checks an assignment target for guarded-field writes, then
// walks its subexpressions as reads.
func (fs *funcState) writeTarget(l ast.Expr) {
	switch l := l.(type) {
	case *ast.SelectorExpr:
		fs.checkAccess(l, write)
		fs.expr(l.X, false)
	case *ast.IndexExpr:
		// Writing an element of a guarded map/slice is a read of the field
		// itself plus a mutation: require the write lock on the field.
		if sel, ok := analysis.Unparen(l.X).(*ast.SelectorExpr); ok {
			fs.checkAccess(sel, write)
			fs.expr(sel.X, false)
		} else {
			fs.expr(l.X, false)
		}
		fs.expr(l.Index, false)
	case *ast.StarExpr:
		fs.expr(l.X, false)
	default:
		fs.expr(l, false)
	}
}

// checkAccess reports a guarded-field access without its lock.
func (fs *funcState) checkAccess(sel *ast.SelectorExpr, need level) {
	field, ok := fs.st.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() {
		return
	}
	g, ok := fs.st.guards[field]
	if !ok || g.Name == "atomic" {
		return
	}
	base := analysis.Unparen(sel.X)
	if id, ok := base.(*ast.Ident); ok && fs.fresh[fs.st.pass.TypesInfo.Uses[id]] {
		return
	}
	key := types.ExprString(base) + "." + g.Name
	got := fs.held[key]
	if got >= need || got == write {
		return
	}
	sib := markers.SiblingField(fs.st.pass, g.Struct, g.Name)
	verb := "read"
	if need == write {
		verb = "write to"
	}
	switch {
	case sib != nil && onceType(sib.Type()) && need == write:
		fs.st.pass.Reportf(sel.Pos(), "%s %s outside its %s.Do closure (guarded-by: %s)",
			verb, types.ExprString(sel), key, g.Name)
	case sib != nil && onceType(sib.Type()):
		fs.st.pass.Reportf(sel.Pos(), "%s of %s before %s.Do on this path (guarded-by: %s)",
			verb, types.ExprString(sel), key, g.Name)
	case need == write && got == read:
		fs.st.pass.Reportf(sel.Pos(), "%s %s while holding only the read lock %s (guarded-by: %s)",
			verb, types.ExprString(sel), key, g.Name)
	default:
		fs.st.pass.Reportf(sel.Pos(), "%s %s without holding %s (guarded-by: %s)",
			verb, types.ExprString(sel), key, g.Name)
	}
}

// trackFresh records locals bound to values allocated by this assignment
// (&T{...}, new(T), or a call named new*/make*), whose guarded fields need
// no lock yet.
func (fs *funcState) trackFresh(s *ast.AssignStmt) {
	if s.Tok != token.DEFINE && s.Tok != token.ASSIGN {
		return
	}
	for i, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || i >= len(s.Rhs) {
			continue
		}
		obj := fs.st.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = fs.st.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if freshExpr(s.Rhs[i]) {
			fs.fresh[obj] = true
		} else {
			delete(fs.fresh, obj)
		}
	}
}

func freshExpr(e ast.Expr) bool {
	switch e := analysis.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, lit := analysis.Unparen(e.X).(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := analysis.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// lockCall returns the receiver key of a sync lock-state call ("e.mu" for
// e.mu.Lock()), or "" when call is not one.
func lockCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok || !lockType(tv.Type) {
		return ""
	}
	return types.ExprString(analysis.Unparen(sel.X))
}

func lockType(t types.Type) bool {
	return namedFrom(t, "sync", "Mutex") || namedFrom(t, "sync", "RWMutex")
}

func onceType(t types.Type) bool {
	return namedFrom(t, "sync", "Once")
}

func atomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

func namedFrom(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// terminates reports whether a block always leaves the enclosing statement
// (return, panic, break, continue, goto) on its final statement.
func terminates(b *ast.BlockStmt) bool {
	return terminatesList(b.List)
}

func terminatesList(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return terminatesStmt(list[len(list)-1])
}

func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminatesStmt(s.Else)
	}
	return false
}
