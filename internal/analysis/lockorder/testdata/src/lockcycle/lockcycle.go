// Package lockcycle seeds lock-order violations: two package-level
// mutexes acquired in opposite orders directly, and a second pair where
// one side of the inversion hides behind a helper call.
package lockcycle

import "sync"

var a, b, c, d sync.Mutex

func ab() {
	a.Lock()
	b.Lock() // want "potential deadlock: lock-order cycle"
	b.Unlock()
	a.Unlock()
}

func ba() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

// cd nests the d acquisition through a helper; the summary splice makes
// the c -> d edge visible at the call site.
func cd() {
	c.Lock()
	lockD() // want "potential deadlock: lock-order cycle"
	d.Unlock()
	c.Unlock()
}

func lockD() {
	d.Lock()
}

func dc() {
	d.Lock()
	c.Lock()
	c.Unlock()
	d.Unlock()
}

// consistent nests in the same order everywhere and must stay silent.
func consistent() {
	a.Lock()
	c.Lock()
	c.Unlock()
	a.Unlock()
}
