// Package lockorder derives the global lock-acquisition partial order from
// the concurrency summaries and diagnoses cycles — potential deadlocks.
//
// Every summary edge "A was held when B was acquired" (including edges
// spliced through calls, so a nesting spanning several functions or
// packages still counts) is a constraint A < B on the global order. A
// cycle A < B < ... < A means two executions can acquire the same locks in
// opposite orders and deadlock. The diagnostic carries the full
// acquisition path of the edge that closes the cycle plus the reverse
// path's steps, so the report reads as a reproduction recipe.
//
// A cycle is reported in the package contributing one of its edges, at
// that edge's acquisition site, once per distinct lock set. Edges flow
// along import edges only (the vettool protocol's fact model): a cycle
// whose edges live in two packages neither of which imports the other is
// out of reach for both drivers, by design.
package lockorder

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/summary"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      "derives the global lock-acquisition order from concurrency summaries and reports cycles (potential deadlocks)",
	Requires: []*analysis.Analyzer{summary.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	res := pass.ResultOf[summary.Analyzer].(*summary.Result)
	if len(res.Edges) == 0 {
		return nil, nil
	}

	// The known order: this package's edges plus everything the imports
	// exported. First edge per (From, To) pair wins; facts arrive sorted
	// by package path and local edges are sorted, so this is deterministic.
	adj := make(map[string][]summary.Edge)
	seen := make(map[string]bool)
	add := func(e summary.Edge) {
		key := e.From + "\x00" + e.To
		if seen[key] {
			return
		}
		seen[key] = true
		adj[e.From] = append(adj[e.From], e)
	}
	for _, le := range res.Edges {
		add(le.Edge)
	}
	for _, pf := range pass.AllPackageFacts(&summary.PkgFact{}) {
		for _, e := range pf.Fact.(*summary.PkgFact).Edges {
			add(e)
		}
	}

	// A local edge A -> B closes a cycle iff B already reaches A. Only
	// local edges anchor reports: the package that completes a cycle is
	// the one that diagnoses it, so a cycle is never reported twice
	// downstream.
	reported := make(map[string]bool)
	for _, le := range res.Edges {
		back := findPath(adj, le.To, le.From)
		if back == nil {
			continue
		}
		cycle := []string{le.From, le.To}
		for _, e := range back {
			cycle = append(cycle, e.To)
		}
		sig := cycleSig(cycle)
		if reported[sig] {
			continue
		}
		reported[sig] = true

		var rev []string
		for _, e := range back {
			rev = append(rev, strings.Join(e.Path, "; "))
		}
		pass.Reportf(le.Pos, "potential deadlock: lock-order cycle %s: here %s is acquired with %s held (%s), but elsewhere the order is reversed (%s)",
			strings.Join(cycle, " -> "), le.To, le.From,
			strings.Join(le.Path, "; "), strings.Join(rev, " | "))
	}
	return nil, nil
}

// findPath BFSes from start to goal, returning the edges of a shortest
// path, or nil.
func findPath(adj map[string][]summary.Edge, start, goal string) []summary.Edge {
	type visit struct {
		class string
		via   []summary.Edge
	}
	queue := []visit{{class: start}}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range adj[v.class] {
			if visited[e.To] {
				continue
			}
			path := append(append([]summary.Edge{}, v.via...), e)
			if e.To == goal {
				return path
			}
			visited[e.To] = true
			queue = append(queue, visit{class: e.To, via: path})
		}
	}
	return nil
}

// cycleSig canonicalizes a cycle's lock set: rotation- and
// direction-insensitive enough to deduplicate reports of one cycle found
// from different edges.
func cycleSig(cycle []string) string {
	set := make(map[string]bool)
	for _, c := range cycle {
		set[c] = true
	}
	classes := make([]string, 0, len(set))
	for c := range set {
		classes = append(classes, c)
	}
	// Insertion-sort the small set for a stable signature.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	return strings.Join(classes, "\x00")
}
