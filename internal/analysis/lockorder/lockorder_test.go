package lockorder_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockcycle")
}

const orderBase = `package base

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
)

// LockBoth acquires the module's lock order: A, then B.
func LockBoth() {
	MuA.Lock()
	MuB.Lock()
}

// UnlockBoth releases in reverse.
func UnlockBoth() {
	MuB.Unlock()
	MuA.Unlock()
}
`

const orderClient = `package client

import "order/base"

func Transfer() {
	base.MuA.Lock()
	base.MuB.Lock()
	base.MuB.Unlock()
	base.MuA.Unlock()
}
`

// TestSwappedLocksCycle proves the analyzer re-derives a cross-package
// deadlock from a mutation: a two-package fixture that is clean when the
// client follows the base package's A-then-B order, and reports a cycle
// when the client's two Lock calls are swapped. The inverted edge is
// local to the client; the A -> B edge arrives as an imported summary
// fact from base.
func TestSwappedLocksCycle(t *testing.T) {
	files := map[string]string{
		"order/base/base.go":     orderBase,
		"order/client/client.go": orderClient,
	}
	if got := analysistest.RunFiles(t, lockorder.Analyzer, "order/client", files); len(got) != 0 {
		t.Fatalf("well-ordered fixture should be clean, got %v", got)
	}

	swapped := strings.Replace(orderClient,
		"base.MuA.Lock()\n\tbase.MuB.Lock()",
		"base.MuB.Lock()\n\tbase.MuA.Lock()", 1)
	if swapped == orderClient {
		t.Fatal("mutation did not apply")
	}
	files["order/client/client.go"] = swapped
	got := analysistest.RunFiles(t, lockorder.Analyzer, "order/client", files)
	if len(got) != 1 {
		t.Fatalf("swapped locks should yield exactly one finding, got %v", got)
	}
	msg := got[0].Message
	for _, frag := range []string{"lock-order cycle", "order/base.MuA", "order/base.MuB"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("diagnostic %q missing %q", msg, frag)
		}
	}
}
