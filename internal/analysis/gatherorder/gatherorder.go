// Package gatherorder closes the determinism loop that parslot opens: the
// slot arrays that parallel workers fill index-disjointly are only
// deterministic if the serial gather that follows reads them in index
// order. Gathering a slot array under a map range (or a range over an
// already map-ordered sequence) re-introduces the nondeterminism the slots
// were bought to remove, and is reported here. The analyzer also enforces
// the propview:deterministic contract transitively: a marked function must
// reach no wall-clock or randomness source (time.Now, math/rand, ...),
// directly or through callees, unless the callee is itself marked
// deterministic (it is then checked at its own definition). The analysis
// lives in summary.Order; this analyzer reports its gather findings under
// its own name.
package gatherorder

import (
	"repro/internal/analysis"
	"repro/internal/analysis/summary"
)

// Analyzer reports slot arrays gathered in nondeterministic order and
// propview:deterministic functions that transitively reach nondeterminism.
var Analyzer = &analysis.Analyzer{
	Name:     "gatherorder",
	Doc:      "checks that slot-array gathers run in deterministic index order and that propview:deterministic functions transitively avoid nondeterminism sources",
	Requires: []*analysis.Analyzer{summary.Order},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	res := pass.ResultOf[summary.Order].(*summary.OrderResult)
	for _, v := range res.Gather {
		pass.Reportf(v.Pos, "%s", v.Message)
	}
	return nil, nil
}
