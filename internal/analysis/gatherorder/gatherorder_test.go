package gatherorder_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/gatherorder"
)

func TestGatherOrder(t *testing.T) {
	analysistest.Run(t, "testdata", gatherorder.Analyzer, "gather/app")
}

const gatherPar = `package par

// For runs fn(i) for every i in [0, n), concurrently.
//
// propview:fanout
func For(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`

const gatherApp = `package app

import "g/par"

// Pick evaluates the selected keys in parallel and gathers the slots
// serially in index order.
func Pick(sel map[int]bool, keys []string) []string {
	slots := make([]string, len(keys))
	par.For(len(keys), func(i int) {
		if sel[i] {
			slots[i] = keys[i]
		}
	})
	var out []string
	for i := range slots {
		out = append(out, slots[i])
	}
	return out
}
`

// TestDeletedSerialGather proves the analyzer re-derives the diagnostic
// from a mutation: replacing the serial index-order gather of a
// known-good fixture with a gather under the selection map's range makes
// the output order the map's iteration order.
func TestDeletedSerialGather(t *testing.T) {
	files := map[string]string{
		"g/par/par.go": gatherPar,
		"g/app/app.go": gatherApp,
	}
	if got := analysistest.RunFiles(t, gatherorder.Analyzer, "g/app", files); len(got) != 0 {
		t.Fatalf("serial-gather fixture should be clean, got %v", got)
	}

	mutated := strings.Replace(gatherApp,
		"for i := range slots {\n\t\tout = append(out, slots[i])\n\t}",
		"for k := range sel {\n\t\tout = append(out, slots[k])\n\t}", 1)
	if mutated == gatherApp {
		t.Fatal("mutation did not apply")
	}
	files["g/app/app.go"] = mutated
	got := analysistest.RunFiles(t, gatherorder.Analyzer, "g/app", files)
	if len(got) != 1 {
		t.Fatalf("map-range gather should yield exactly one finding, got %v", got)
	}
	for _, frag := range []string{"slot array slots", "index order"} {
		if !strings.Contains(got[0].Message, frag) {
			t.Errorf("diagnostic %q missing %q", got[0].Message, frag)
		}
	}
}
