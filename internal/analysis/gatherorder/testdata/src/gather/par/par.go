// Package par is a fixture stand-in for internal/parallel; see the
// parslot fixture of the same shape.
package par

// For runs fn(i) for every i in [0, n), concurrently.
//
// propview:fanout
func For(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
