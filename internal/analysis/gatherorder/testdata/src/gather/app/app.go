// Package app exercises the gather-order rules: slot arrays must be
// consumed in deterministic index order, and propview:deterministic
// functions must transitively avoid wall-clock and randomness.
package app

import (
	"time"

	"gather/par"
)

// Process fills slots in parallel and gathers serially in index order:
// the canonical width-invariant pipeline.
//
// propview:deterministic
func Process(keys []string) []string {
	slots := make([]string, len(keys))
	par.For(len(keys), func(i int) {
		slots[i] = keys[i] + "!"
	})
	out := make([]string, 0, len(slots))
	for i := range slots {
		out = append(out, slots[i])
	}
	return out
}

// BadGather throws the slot discipline away at the last step: the gather
// runs under a map range, so the output order is the map's.
func BadGather(sel map[int]bool, keys []string) []string {
	slots := make([]string, len(keys))
	par.For(len(keys), func(i int) {
		slots[i] = keys[i]
	})
	var out []string
	for k := range sel {
		out = append(out, slots[k]) // want `slot array slots gathered under a loop ordered by range over map`
	}
	return out
}

// BadClock stamps output from a function that promised determinism.
//
// propview:deterministic
func BadClock() string {
	return time.Now().String() // want `reaches nondeterminism: time.Now`
}

// stamp is unmarked: free to read the clock, but its summary records it.
func stamp() string {
	return time.Now().String()
}

// BadIndirect reaches the clock through a helper call.
//
// propview:deterministic
func BadIndirect() string {
	return stamp() // want `reaches nondeterminism: time.Now`
}

// seed is deterministic and says so; callers may rely on the promise
// without re-deriving it.
//
// propview:deterministic
func seed() int { return 42 }

// GoodCall relies on seed's own checked promise: propagation stops at
// marked callees.
//
// propview:deterministic
func GoodCall() int { return seed() }
