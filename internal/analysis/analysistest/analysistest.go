// Package analysistest runs an analyzer over GOPATH-style fixture trees
// (testdata/src/<pkg>/...) and compares its diagnostics against
// `// want "regexp"` comments in the fixture source, in the style of
// x/tools' analysistest but built on the repo's own loader and driver.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+((?:(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `)\s*)+)`)
var quoteRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run loads the fixture packages from testdata/src and checks the
// analyzer's findings against the fixtures' want comments. Fact flow is
// exercised naturally: dependency fixtures are analyzed first.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	loader := &load.Loader{SrcDirs: []string{filepath.Join(testdata, "src")}}
	pkgs, err := loader.Load(pkgpaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := driver.Run([]*analysis.Analyzer{a}, loader.Fset, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, collectDirs(pkgs), findings)
}

// RunFiles materializes an in-memory fixture (path -> source), runs the
// analyzer over it, and returns the findings — for scratch fixtures a test
// mutates programmatically (e.g. deleting a Lock call to prove the
// analyzer notices). A bare file name lands in pkgpath's directory; a name
// containing a slash is a path under the source root, so one call can
// materialize several packages (cross-package fact flow included).
func RunFiles(t *testing.T, a *analysis.Analyzer, pkgpath string, files map[string]string) []driver.Finding {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(pkgpath), name)
		if strings.Contains(name, "/") {
			path = filepath.Join(root, filepath.FromSlash(name))
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	loader := &load.Loader{SrcDirs: []string{root}}
	pkgs, err := loader.Load(pkgpath)
	if err != nil {
		t.Fatalf("loading scratch fixture: %v", err)
	}
	findings, err := driver.Run([]*analysis.Analyzer{a}, loader.Fset, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return findings
}

func collectDirs(pkgs []*load.Package) map[string]bool {
	dirs := make(map[string]bool)
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if dirs[p.Dir] {
			return
		}
		dirs[p.Dir] = true
		for _, dep := range p.Imports {
			visit(dep)
		}
	}
	for _, p := range pkgs {
		visit(p)
	}
	return dirs
}

// checkWants compares findings against the want comments of every fixture
// file in dirs: each want must be matched by a finding on its line, and
// each finding must be covered by a want.
func checkWants(t *testing.T, dirs map[string]bool, findings []driver.Finding) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if filepath.Ext(e.Name()) != ".go" {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d", path, i+1)
				for _, q := range quoteRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		covered := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("unexpected finding at %s: %s", key, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no finding at %s matching %q", key, w.re)
			}
		}
	}
}
