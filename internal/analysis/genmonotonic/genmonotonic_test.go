package genmonotonic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/genmonotonic"
)

func TestGenMonotonic(t *testing.T) {
	analysistest.Run(t, "testdata", genmonotonic.Analyzer, "genfix")
}
