// Package genfix exercises the genmonotonic analyzer: generation fields
// move only forward, and only from propview:publish paths.
package genfix

import "sync/atomic"

type DB struct {
	version int64 // propview:generation
}

type Eng struct {
	sgen atomic.Int64 // propview:generation
}

// commit carries the version forward.
//
// propview:publish
func commit(db *DB) *DB {
	return &DB{version: db.version + 1} // ok: carry + increment
}

// bumpInPlace increments under the commit lock.
//
// propview:publish
func bumpInPlace(db *DB) {
	db.version++    // ok
	db.version += 2 // ok: += reads the old value by construction
}

func freshDB() *DB {
	return &DB{version: 0} // ok: fresh object at a constant generation
}

func rogueWrite(db *DB) {
	db.version = 5 // want `write to generation field version outside a propview:publish function`
}

func rogueBump(db *DB) {
	db.version++ // want `write to generation field version outside a propview:publish function`
}

func decrement(db *DB) {
	db.version-- // want `generation field version decremented`
}

// reset is published but assigns a non-generation value.
//
// propview:publish
func reset(db *DB) {
	db.version = 0 // want `generation field version assigned a value not derived from a generation`
}

func copyGen(src *DB) *DB {
	return &DB{version: src.version} // want `generation field version initialized from a non-constant outside a propview:publish function`
}

// derive carries across objects inside a publish path.
//
// propview:publish
func derive(src *DB) *DB {
	return &DB{version: src.version + 1} // ok
}

// publishTime stamps a non-generation value even though it is published.
//
// propview:publish
func publishTime(db *DB, now int64) *DB {
	return &DB{version: now} // want `generation field version initialized from a non-generation value`
}

func anyoneMayAdd(e *Eng) {
	e.sgen.Add(1) // ok: non-negative constant delta
}

func negAdd(e *Eng) {
	e.sgen.Add(-1) // want `generation field sgen.Add with a negative constant`
}

func rogueVarAdd(e *Eng, n int64) {
	e.sgen.Add(n) // want `generation field sgen.Add with a non-constant delta outside a propview:publish function`
}

// batchAdd is allowed a variable delta on the publish path.
//
// propview:publish
func batchAdd(e *Eng, n int64) {
	e.sgen.Add(n) // ok
}

func rogueStore(e *Eng) {
	e.sgen.Store(0) // want `Store on generation field sgen outside a propview:publish function`
}

// carryStore forwards one counter into another at publish time.
//
// propview:publish
func carryStore(dst, src *Eng) {
	dst.sgen.Store(src.sgen.Load()) // ok: carry-forward
}

// localCarry routes the old counter through a local before publishing,
// like a store rebuild that renumbers from the previous sequence.
//
// propview:publish
func localCarry(db *DB, extra int64) *DB {
	v := db.version + 1 // local now carries the generation
	v += extra
	return &DB{version: v} // ok: carry-forward through a tainted local
}

// localReset rebinds the local away from the generation before using it.
//
// propview:publish
func localReset(db *DB) *DB {
	v := db.version
	v = 7                  // rebound: taint dropped
	return &DB{version: v} // want `generation field version initialized from a non-generation value`
}

// badStore stores an arbitrary value even on the publish path.
//
// propview:publish
func badStore(e *Eng, v int64) {
	e.sgen.Store(v) // want `generation field sgen stored a value not derived from a generation`
}

func escape(db *DB) *int64 {
	return &db.version // want `address of generation field version taken`
}

func reads(db *DB, e *Eng) int64 {
	return db.version + e.sgen.Load() // ok: reads are unrestricted
}

func suppressed(db *DB) {
	//lint:ignore genmonotonic fixture exercises the suppression path
	db.version = 7 // ok: suppressed with justification
}
