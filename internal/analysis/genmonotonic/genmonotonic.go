// Package genmonotonic checks that generation counters only move forward
// and only from commit paths. A field annotated `propview:generation`
// (Engine.sgen, prepared.gen, Database.version, segStore.nextSeq) is the
// repo's ordering spine: readers compare generations to decide staleness,
// so a counter that jumps backwards or is bumped outside the publish path
// breaks snapshot validation silently.
//
// Rules (see the internal/analysis package doc):
//
//   - x.gen.Add(c) with a non-negative constant c is allowed anywhere —
//     an atomic non-negative Add cannot regress the counter.
//   - Store/Swap/CompareAndSwap on an atomic generation field, and plain
//     writes (=, ++, +=) to a non-atomic one, are allowed only inside a
//     function marked `propview:publish`, and a plain write must be
//     increment or carry-forward: the new value derives from reading a
//     generation field.
//   - a composite literal may initialize a generation field to a
//     constant (fresh object) anywhere, or carry a generation forward
//     (`version: db.version + 1`) inside a publish function.
package genmonotonic

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/markers"
)

// Analyzer is the genmonotonic analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "genmonotonic",
	Doc:  "checks that propview:generation counters are written only by propview:publish paths, monotonically (see internal/analysis)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	gens := markers.GenerationFields(pass)
	if len(gens) == 0 {
		return nil, nil
	}
	st := &state{pass: pass, gens: gens, publish: make(map[*types.Func]bool)}
	for obj, info := range markers.Funcs(pass) {
		if info.Publish {
			st.publish[obj] = true
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			st.checkFunc(fd, obj != nil && st.publish[obj])
		}
	}
	return nil, nil
}

type state struct {
	pass    *analysis.Pass
	gens    map[*types.Var]token.Pos
	publish map[*types.Func]bool
}

// genField returns the generation field a selector resolves to, or nil.
func (st *state) genField(e ast.Expr) *types.Var {
	sel, ok := analysis.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, _ := st.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if v != nil {
		if _, ok := st.gens[v]; ok {
			return v
		}
	}
	return nil
}

// genDerived reports whether evaluating e reads a generation field
// (directly, via .Load(), or through a local the function derived from
// one — see localTaints): the carry-forward test for a new generation
// value.
func (st *state) genDerived(e ast.Expr, taint map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if taint[st.pass.TypesInfo.Uses[n]] {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if st.genField(n) != nil {
				found = true
				return false
			}
			// x.gen.Load(): the field selector is the receiver of the call.
			if v, ok := st.pass.TypesInfo.Uses[n.Sel].(*types.Func); ok && v != nil {
				if inner, ok := analysis.Unparen(n.X).(*ast.SelectorExpr); ok && st.genField(inner) != nil {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// localTaints collects locals bound to generation-derived values (e.g.
// `seq := st.nextSeq`), one sequential pass in source order; a local that
// carries a generation may itself initialize a generation field.
func (st *state) localTaints(fd *ast.FuncDecl) map[types.Object]bool {
	taint := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i, l := range a.Lhs {
			id, ok := analysis.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			obj := st.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = st.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if st.genDerived(a.Rhs[i], taint) {
				taint[obj] = true
			} else if a.Tok == token.ASSIGN || a.Tok == token.DEFINE {
				delete(taint, obj) // rebound to something else
			}
		}
		return true
	})
	return taint
}

func (st *state) checkFunc(fd *ast.FuncDecl, publish bool) {
	taint := st.localTaints(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				field := st.genField(l)
				if field == nil {
					continue
				}
				if !publish {
					st.pass.Reportf(l.Pos(), "write to generation field %s outside a propview:publish function (see internal/analysis)",
						field.Name())
					continue
				}
				switch n.Tok {
				case token.ADD_ASSIGN:
					// x.gen += n reads the old value by construction.
				case token.ASSIGN, token.DEFINE:
					if i < len(n.Rhs) && !st.genDerived(n.Rhs[i], taint) {
						st.pass.Reportf(l.Pos(), "generation field %s assigned a value not derived from a generation (want increment or carry-forward; see internal/analysis)",
							field.Name())
					}
				default:
					st.pass.Reportf(l.Pos(), "generation field %s written with %s; only increment or carry-forward moves a generation (see internal/analysis)",
						field.Name(), n.Tok)
				}
			}
		case *ast.IncDecStmt:
			if field := st.genField(n.X); field != nil {
				if n.Tok == token.DEC {
					st.pass.Reportf(n.X.Pos(), "generation field %s decremented; generations only move forward (see internal/analysis)", field.Name())
				} else if !publish {
					st.pass.Reportf(n.X.Pos(), "write to generation field %s outside a propview:publish function (see internal/analysis)", field.Name())
				}
			}
		case *ast.CallExpr:
			st.checkAtomicCall(n, publish, taint)
		case *ast.CompositeLit:
			st.checkCompositeLit(n, publish, taint)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if field := st.genField(n.X); field != nil {
					st.pass.Reportf(n.Pos(), "address of generation field %s taken; writes through the pointer would bypass genmonotonic (see internal/analysis)", field.Name())
				}
			}
		}
		return true
	})
}

// checkAtomicCall vets method calls on atomic generation fields.
func (st *state) checkAtomicCall(call *ast.CallExpr, publish bool, taint map[types.Object]bool) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := st.genField(sel.X)
	if field == nil {
		return
	}
	switch sel.Sel.Name {
	case "Load":
		return
	case "Add":
		if len(call.Args) == 1 {
			if tv, ok := st.pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
				if v, ok := constant.Int64Val(tv.Value); ok && v >= 0 {
					return // non-negative constant delta cannot regress
				}
				st.pass.Reportf(call.Pos(), "generation field %s.Add with a negative constant; generations only move forward (see internal/analysis)", field.Name())
				return
			}
		}
		if !publish {
			st.pass.Reportf(call.Pos(), "generation field %s.Add with a non-constant delta outside a propview:publish function (see internal/analysis)", field.Name())
		}
	case "Store", "Swap", "CompareAndSwap":
		if !publish {
			st.pass.Reportf(call.Pos(), "%s on generation field %s outside a propview:publish function (see internal/analysis)", sel.Sel.Name, field.Name())
			return
		}
		if sel.Sel.Name != "CompareAndSwap" && len(call.Args) == 1 && !st.genDerived(call.Args[0], taint) && !isConst(st.pass.TypesInfo, call.Args[0]) {
			st.pass.Reportf(call.Pos(), "generation field %s stored a value not derived from a generation (want carry-forward; see internal/analysis)", field.Name())
		}
	}
}

// checkCompositeLit vets generation fields named in struct literals.
func (st *state) checkCompositeLit(lit *ast.CompositeLit, publish bool, taint map[types.Object]bool) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		v, _ := st.pass.TypesInfo.Uses[key].(*types.Var)
		if v == nil {
			continue
		}
		if _, isGen := st.gens[v]; !isGen {
			continue
		}
		if isConst(st.pass.TypesInfo, kv.Value) {
			continue // fresh object starting at a fixed generation
		}
		if !publish {
			st.pass.Reportf(kv.Pos(), "generation field %s initialized from a non-constant outside a propview:publish function (see internal/analysis)", v.Name())
		} else if !st.genDerived(kv.Value, taint) {
			st.pass.Reportf(kv.Pos(), "generation field %s initialized from a non-generation value (want carry-forward like old.version + 1; see internal/analysis)", v.Name())
		}
	}
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
