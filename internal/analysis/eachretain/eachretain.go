// Package eachretain checks the cursor-reuse contract of the iteration
// API: a callback passed to a `propview:no-retain` function
// (Relation.Each and the overlay/segment cursors behind it) receives
// values whose backing storage the iterator may reuse or that alias
// internal state, so the callback must not let a yielded value escape
// the call — no appending it to an outer slice, no assigning it to an
// outer variable or field, no sending it on a channel. Escaping a copy
// is fine: `append(out, t.Clone())` or the spread-copy
// `append(Tuple(nil), t...)` both pass; `append(out, t)` does not.
//
// The no-retain property crosses package boundaries as a fact, so engine
// code iterating a relation is checked against the same contract.
package eachretain

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/markers"
)

// NoRetainFact marks a function whose callback arguments must not retain
// the values yielded to them.
type NoRetainFact struct{}

func (*NoRetainFact) AFact() {}

// Analyzer is the eachretain analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "eachretain",
	Doc:       "checks that callbacks passed to propview:no-retain iterators do not let yielded values escape uncopied (see internal/analysis)",
	FactTypes: []analysis.Fact{(*NoRetainFact)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	noRetain := make(map[*types.Func]bool)
	for obj, info := range markers.Funcs(pass) {
		if info.NoRetain {
			noRetain[obj] = true
			pass.ExportObjectFact(obj, &NoRetainFact{})
		}
	}
	isNoRetain := func(fn *types.Func) bool {
		if fn == nil {
			return false
		}
		if noRetain[fn] {
			return true
		}
		return fn.Pkg() != nil && fn.Pkg() != pass.Pkg &&
			pass.ImportObjectFact(fn, &NoRetainFact{})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isNoRetain(callee(pass.TypesInfo, call)) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := analysis.Unparen(arg).(*ast.FuncLit); ok {
					checkCallback(pass, lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkCallback flags escapes of lit's reference-typed parameters to
// outside the literal.
func checkCallback(pass *analysis.Pass, lit *ast.FuncLit) {
	params := make(map[types.Object]bool)
	for _, field := range lit.Type.Params.List {
		for _, id := range field.Names {
			if obj := pass.TypesInfo.Defs[id]; obj != nil && referenceType(obj.Type()) {
				params[obj] = true
			}
		}
	}
	if len(params) == 0 {
		return
	}
	isParam := func(e ast.Expr) types.Object {
		if id, ok := analysis.Unparen(e).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; params[obj] {
				return obj
			}
		}
		return nil
	}
	// outer reports whether the expression's base object lives outside the
	// literal (position test: declared outside [lit.Pos, lit.End)).
	var outer func(e ast.Expr) bool
	outer = func(e ast.Expr) bool {
		switch e := analysis.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			if obj == nil || obj.Pos() == 0 {
				return true // package-level or imported: outside
			}
			return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
		case *ast.SelectorExpr:
			return outer(e.X)
		case *ast.IndexExpr:
			return outer(e.X)
		case *ast.StarExpr:
			return outer(e.X)
		}
		return false
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				obj := isParam(r)
				if obj == nil || i >= len(n.Lhs) {
					continue
				}
				l := n.Lhs[i]
				if id, ok := analysis.Unparen(l).(*ast.Ident); ok {
					target := pass.TypesInfo.Uses[id]
					if target == nil {
						target = pass.TypesInfo.Defs[id]
					}
					if target != nil && !outer(l) {
						continue // rebinding to a local of the callback is fine
					}
				}
				if outer(l) || isOuterLvalue(l, outer) {
					pass.Reportf(r.Pos(), "yielded value %s escapes the no-retain callback via assignment to %s; copy it first (see internal/analysis)",
						obj.Name(), types.ExprString(l))
				}
			}
			// append(outer, param) assigned anywhere still retains the
			// param's backing array; catch it via the call below.
		case *ast.CallExpr:
			if isBuiltinAppend(pass.TypesInfo, n) {
				for i, arg := range n.Args[1:] {
					if n.Ellipsis.IsValid() && i == len(n.Args)-2 {
						continue // append(dst, t...) copies the elements out
					}
					if obj := isParam(arg); obj != nil {
						pass.Reportf(arg.Pos(), "yielded value %s is appended uncopied inside a no-retain callback; append a copy instead (see internal/analysis)",
							obj.Name())
					}
				}
			}
		case *ast.SendStmt:
			if obj := isParam(n.Value); obj != nil {
				pass.Reportf(n.Value.Pos(), "yielded value %s is sent on a channel from a no-retain callback; send a copy instead (see internal/analysis)",
					obj.Name())
			}
		}
		return true
	})
}

// isOuterLvalue reports whether l stores into memory reachable from
// outside the callback: an element or field of an outer base.
func isOuterLvalue(l ast.Expr, outer func(ast.Expr) bool) bool {
	switch l := analysis.Unparen(l).(type) {
	case *ast.IndexExpr:
		return outer(l.X)
	case *ast.SelectorExpr:
		return outer(l.X)
	case *ast.StarExpr:
		return outer(l.X)
	}
	return false
}

func referenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface:
		return true
	}
	return false
}

func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
