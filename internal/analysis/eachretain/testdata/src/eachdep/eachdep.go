// Package eachdep is the exporting side of the cross-package fact test
// for eachretain.
package eachdep

type Row []byte

type Cursor struct{ rows []Row }

// Scan yields each row; the cursor reuses the row buffer between calls.
//
// propview:no-retain
func (c *Cursor) Scan(yield func(Row) bool) {
	for _, r := range c.rows {
		if !yield(r) {
			return
		}
	}
}
