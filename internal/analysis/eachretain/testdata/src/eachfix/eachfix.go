// Package eachfix exercises the eachretain analyzer: callbacks handed to
// propview:no-retain iterators must not let yielded values escape.
package eachfix

type Tuple []int

type Rel struct{ ts []Tuple }

// Each yields every tuple; the iterator may reuse the yielded storage, so
// the callback must copy anything it keeps.
//
// propview:no-retain
func (r *Rel) Each(yield func(Tuple) bool) {
	for _, t := range r.ts {
		if !yield(t) {
			return
		}
	}
}

func badAppend(r *Rel) []Tuple {
	var out []Tuple
	r.Each(func(t Tuple) bool {
		out = append(out, t) // want `yielded value t is appended uncopied`
		return true
	})
	return out
}

func badAssign(r *Rel) Tuple {
	var last Tuple
	r.Each(func(t Tuple) bool {
		last = t // want `yielded value t escapes the no-retain callback via assignment to last`
		return true
	})
	return last
}

func badFieldStore(r *Rel, sink *struct{ keep Tuple }) {
	r.Each(func(t Tuple) bool {
		sink.keep = t // want `yielded value t escapes the no-retain callback via assignment to sink.keep`
		return true
	})
}

func badSend(r *Rel, ch chan Tuple) {
	r.Each(func(t Tuple) bool {
		ch <- t // want `yielded value t is sent on a channel`
		return true
	})
}

func goodCopy(r *Rel) []Tuple {
	var out []Tuple
	r.Each(func(t Tuple) bool {
		cp := append(Tuple(nil), t...) // ok: the spread copies the elements
		out = append(out, cp)
		return true
	})
	return out
}

func goodLocal(r *Rel) int {
	n := 0
	r.Each(func(t Tuple) bool {
		u := t // ok: rebinding to a callback-local
		n += len(u)
		return true
	})
	return n
}

func goodRead(r *Rel) int {
	sum := 0
	r.Each(func(t Tuple) bool {
		for _, v := range t {
			sum += v // ok: reading does not retain
		}
		return true
	})
	return sum
}

func suppressed(r *Rel) []Tuple {
	var out []Tuple
	r.Each(func(t Tuple) bool {
		//lint:ignore eachretain fixture exercises the suppression path
		out = append(out, t) // ok: suppressed with justification
		return true
	})
	return out
}
