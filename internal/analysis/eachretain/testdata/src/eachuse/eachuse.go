// Package eachuse retains rows from eachdep's cursor; the violation is
// only visible through the imported NoRetainFact.
package eachuse

import "eachdep"

func keepAll(c *eachdep.Cursor) []eachdep.Row {
	var out []eachdep.Row
	c.Scan(func(r eachdep.Row) bool {
		out = append(out, r) // want `yielded value r is appended uncopied`
		return true
	})
	return out
}

func copyAll(c *eachdep.Cursor) []eachdep.Row {
	var out []eachdep.Row
	c.Scan(func(r eachdep.Row) bool {
		out = append(out, append(eachdep.Row(nil), r...)) // ok: copied
		return true
	})
	return out
}
