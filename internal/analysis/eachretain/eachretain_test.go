package eachretain_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/eachretain"
)

func TestEachRetain(t *testing.T) {
	analysistest.Run(t, "testdata", eachretain.Analyzer, "eachfix")
}

// TestCrossPackageFacts checks that the no-retain contract reaches
// importing packages as a fact.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, "testdata", eachretain.Analyzer, "eachuse")
}
