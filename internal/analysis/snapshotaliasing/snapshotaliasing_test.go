package snapshotaliasing_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/snapshotaliasing"
)

func TestAliasing(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotaliasing.Analyzer, "aliasfix")
}

// TestCrossPackageFacts checks that the read-only contract (declared and
// fixpoint-derived) reaches importing packages as a fact.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotaliasing.Analyzer, "aliasclient")
}
