// Package aliasclient mutates values from aliasdep's accessors; the
// violations are only visible through imported facts.
package aliasclient

import "aliasdep"

func direct(s *aliasdep.Store) {
	rows := s.Freeze()
	rows[0] = nil // want `write to rows\[0\], which aliases a read-only snapshot`
}

func derived(s *aliasdep.Store) {
	rows := aliasdep.Snapshot(s)
	rows = append(rows, aliasdep.Row{"x"}) // want `append to rows, which aliases a read-only snapshot`
	_ = rows
}

func clean(s *aliasdep.Store) []aliasdep.Row {
	rows := s.Freeze()
	cp := make([]aliasdep.Row, len(rows))
	copy(cp, rows)
	cp[0] = aliasdep.Row{"owned"} // ok
	return cp
}
