// Package aliasdep is the exporting side of the cross-package fact test:
// aliasclient imports it and must inherit the read-only contract.
package aliasdep

type Row []string

type Store struct {
	rows []Row
}

// Freeze returns the store's rows for reading only.
//
// propview:read-only
func (s *Store) Freeze() []Row { return s.rows }

// Snapshot forwards Freeze; the derived contract must also cross the
// package boundary as a fact.
func Snapshot(s *Store) []Row { return s.Freeze() }
