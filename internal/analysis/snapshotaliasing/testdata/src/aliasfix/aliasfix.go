// Package aliasfix exercises the snapshotaliasing analyzer: writes
// through read-only accessor results are flagged; copies are not.
package aliasfix

type Tuple []int

type Rel struct {
	tuples []Tuple
}

// Tuples returns the live tuple slice; callers must not modify it.
//
// propview:read-only
func (r *Rel) Tuples() []Tuple { return r.tuples }

// All forwards a read-only result without its own marker: the analyzer
// derives the contract through the fixpoint.
func All(r *Rel) []Tuple { return r.Tuples() }

func writes(r *Rel) {
	ts := r.Tuples()
	ts[0] = Tuple{1}        // want `write to ts\[0\], which aliases a read-only snapshot`
	ts[1][0] = 2            // want `write to ts\[1\]\[0\], which aliases a read-only snapshot`
	ts = append(ts, Tuple{}) // want `append to ts, which aliases a read-only snapshot`
	_ = ts
}

func viaFacade(r *Rel) {
	ts := All(r)
	ts[0] = nil // want `write to ts\[0\], which aliases a read-only snapshot`
}

func viaRange(r *Rel) {
	for _, t := range r.Tuples() {
		t[0] = 9 // want `write to t\[0\], which aliases a read-only snapshot`
	}
}

func viaSlice(r *Rel) {
	head := r.Tuples()[:1]
	head[0] = nil // want `write to head\[0\], which aliases a read-only snapshot`
}

func inClosure(r *Rel) func() {
	ts := r.Tuples()
	return func() {
		ts[0] = nil // want `write to ts\[0\], which aliases a read-only snapshot`
	}
}

func copies(r *Rel) {
	ts := r.Tuples()
	cp := make([]Tuple, len(ts))
	copy(cp, ts)
	cp[0] = nil               // ok: cp owns its backing array
	cp = append(cp, Tuple{1}) // ok
	var local []Tuple
	local = append(local, ts...) // ok: appending into an owned slice
	_, _ = cp, local
}

func rebound(r *Rel) {
	ts := r.Tuples()
	ts = make([]Tuple, 1) // rebinding clears the taint
	ts[0] = Tuple{1}      // ok
}

func reads(r *Rel) int {
	n := 0
	for _, t := range r.Tuples() {
		n += len(t) // ok: reading is the point of the accessor
	}
	return n
}

func suppressed(r *Rel) {
	ts := r.Tuples()
	//lint:ignore snapshotaliasing fixture exercises the suppression path
	ts[0] = nil // ok: suppressed with justification
}
