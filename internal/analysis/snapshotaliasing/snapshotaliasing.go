// Package snapshotaliasing flags mutations of values obtained from
// read-only accessors — the engine's aliasing contract. A function marked
// `propview:read-only` (Relation.ReadOnly, Relation.Tuples,
// Database.Freeze, Engine.Query, ...) returns values that alias published
// copy-on-write snapshot storage; callers may read them freely but must
// never write through them: no element assignment, no field assignment,
// no append. The contract propagates across packages via facts, and a
// function that merely forwards a read-only result (the propview facade)
// inherits it without its own marker.
package snapshotaliasing

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/markers"
)

// ReadOnlyResultFact marks a function whose results alias callee-owned
// snapshot state; exported so the contract crosses package boundaries.
type ReadOnlyResultFact struct{}

func (*ReadOnlyResultFact) AFact() {}

// Analyzer is the snapshotaliasing analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "snapshotaliasing",
	Doc:       "flags writes through values returned by propview:read-only accessors (the engine's aliasing contract; see internal/analysis)",
	FactTypes: []analysis.Fact{(*ReadOnlyResultFact)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	st := &state{
		pass:     pass,
		readonly: make(map[*types.Func]bool),
	}
	for obj, info := range markers.Funcs(pass) {
		if info.ReadOnly {
			st.readonly[obj] = true
		}
	}

	// Fixpoint: a function returning a read-only-derived value is itself a
	// read-only accessor (covers facade wrappers, iterated for chains).
	for {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil || st.readonly[obj] {
					continue
				}
				if st.analyze(fd, false) {
					st.readonly[obj] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for obj := range st.readonly {
		pass.ExportObjectFact(obj, &ReadOnlyResultFact{})
	}

	// Reporting pass, with the read-only set complete.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				st.analyze(fd, true)
			}
		}
	}
	return nil, nil
}

type state struct {
	pass     *analysis.Pass
	readonly map[*types.Func]bool
}

// isReadOnly reports whether calling obj yields read-only-aliasing results,
// from this package's marker/derived set or an imported fact.
func (st *state) isReadOnly(obj *types.Func) bool {
	if obj == nil {
		return false
	}
	if st.readonly[obj] {
		return true
	}
	if obj.Pkg() != nil && obj.Pkg() != st.pass.Pkg &&
		st.pass.ImportObjectFact(obj, &ReadOnlyResultFact{}) {
		st.readonly[obj] = true
		return true
	}
	return false
}

// fnState is the per-function taint walk: which local objects currently
// hold values aliasing a read-only result.
type fnState struct {
	st           *state
	report       bool
	tainted      map[types.Object]bool
	returnsTaint bool
}

// analyze walks one function in source order; it reports whether the
// function returns a read-only-derived value of a reference type.
func (st *state) analyze(fd *ast.FuncDecl, report bool) bool {
	fs := &fnState{st: st, report: report, tainted: make(map[types.Object]bool)}
	fs.stmt(fd.Body)
	return fs.returnsTaint
}

// taintedExpr reports whether evaluating e yields a value aliasing
// read-only snapshot storage.
func (fs *fnState) taintedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return fs.tainted[fs.st.pass.TypesInfo.Uses[e]]
	case *ast.CallExpr:
		if fn := calleeFunc(fs.st.pass.TypesInfo, e); fn != nil && fs.st.isReadOnly(fn) {
			return true
		}
		// A conversion preserves aliasing: Tuple(v) of a tainted v.
		if len(e.Args) == 1 && isConversion(fs.st.pass.TypesInfo, e) {
			return fs.taintedExpr(e.Args[0])
		}
		return false
	case *ast.IndexExpr:
		return fs.taintedExpr(e.X) // element of a tainted container aliases it
	case *ast.SliceExpr:
		return fs.taintedExpr(e.X)
	case *ast.SelectorExpr:
		return fs.taintedExpr(e.X)
	case *ast.ParenExpr:
		return fs.taintedExpr(e.X)
	case *ast.StarExpr:
		return fs.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fs.taintedExpr(e.X)
		}
		return false
	case *ast.TypeAssertExpr:
		return fs.taintedExpr(e.X)
	default:
		return false
	}
}

// referenceType reports whether t can alias underlying storage when copied.
func referenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// stmt walks one statement in source order, updating taint and reporting
// violations.
func (fs *fnState) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			fs.stmt(sub)
		}
	case *ast.AssignStmt:
		fs.assign(s)
	case *ast.IncDecStmt:
		fs.checkWrite(s.X, "increment of")
	case *ast.ExprStmt:
		fs.expr(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fs.expr(r)
			if fs.taintedExpr(r) {
				if t := fs.st.pass.TypesInfo.Types[r].Type; t != nil && referenceType(t) {
					fs.returnsTaint = true
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		fs.expr(s.Cond)
		fs.stmt(s.Body)
		if s.Else != nil {
			fs.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		if s.Cond != nil {
			fs.expr(s.Cond)
		}
		if s.Post != nil {
			fs.stmt(s.Post)
		}
		fs.stmt(s.Body)
	case *ast.RangeStmt:
		fs.expr(s.X)
		if fs.taintedExpr(s.X) {
			// Ranging over a tainted container taints the element variable
			// (not the index).
			if id, ok := s.Value.(*ast.Ident); ok {
				if obj := fs.st.pass.TypesInfo.Defs[id]; obj != nil {
					fs.tainted[obj] = true
				} else if obj := fs.st.pass.TypesInfo.Uses[id]; obj != nil {
					fs.tainted[obj] = true
				}
			}
		}
		fs.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		if s.Tag != nil {
			fs.expr(s.Tag)
		}
		fs.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			fs.stmt(s.Init)
		}
		fs.stmt(s.Assign)
		fs.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			fs.expr(e)
		}
		for _, sub := range s.Body {
			fs.stmt(sub)
		}
	case *ast.SelectStmt:
		fs.stmt(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			fs.stmt(s.Comm)
		}
		for _, sub := range s.Body {
			fs.stmt(sub)
		}
	case *ast.DeferStmt:
		fs.expr(s.Call)
	case *ast.GoStmt:
		fs.expr(s.Call)
	case *ast.SendStmt:
		fs.expr(s.Chan)
		fs.expr(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					fs.expr(v)
				}
				fs.bindNames(vs.Names, vs.Values)
			}
		}
	case *ast.LabeledStmt:
		fs.stmt(s.Stmt)
	}
}

// assign updates taint for an assignment and checks its left-hand sides
// for writes through read-only values.
func (fs *fnState) assign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		fs.expr(r)
	}
	for _, l := range s.Lhs {
		switch l.(type) {
		case *ast.Ident:
			// plain rebinding: taint handled below
		default:
			fs.checkWrite(l, "write to")
			fs.expr(l)
		}
	}
	if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
		idents := make([]*ast.Ident, len(s.Lhs))
		for i, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				idents[i] = id
			}
		}
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			// multi-value: a read-only call taints every bound name
			t := fs.taintedExpr(s.Rhs[0])
			for _, id := range idents {
				fs.setTaint(id, t)
			}
			return
		}
		for i, id := range idents {
			if id == nil || i >= len(s.Rhs) {
				continue
			}
			fs.setTaint(id, fs.taintedExpr(s.Rhs[i]))
		}
	}
}

func (fs *fnState) bindNames(names []*ast.Ident, values []ast.Expr) {
	for i, id := range names {
		if i < len(values) {
			fs.setTaint(id, fs.taintedExpr(values[i]))
		}
	}
}

func (fs *fnState) setTaint(id *ast.Ident, t bool) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := fs.st.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = fs.st.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if t {
		fs.tainted[obj] = true
	} else {
		delete(fs.tainted, obj)
	}
}

// checkWrite reports a violation when the written location's base aliases
// a read-only result.
func (fs *fnState) checkWrite(l ast.Expr, verb string) {
	var base ast.Expr
	switch l := l.(type) {
	case *ast.IndexExpr:
		base = l.X
	case *ast.SelectorExpr:
		base = l.X
	case *ast.StarExpr:
		base = l.X
	default:
		return
	}
	if fs.taintedExpr(base) {
		fs.reportf(l.Pos(), "%s %s, which aliases a read-only snapshot (propview:read-only contract; copy before mutating — see internal/analysis)",
			verb, types.ExprString(l))
	}
}

// expr walks an expression for violations nested in it (calls, function
// literals, append).
func (fs *fnState) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(fs.st.pass.TypesInfo, n) && len(n.Args) > 0 && fs.taintedExpr(n.Args[0]) {
				fs.reportf(n.Pos(), "append to %s, which aliases a read-only snapshot (propview:read-only contract; copy before appending — see internal/analysis)",
					types.ExprString(n.Args[0]))
			}
		case *ast.FuncLit:
			// Closures share the enclosing taint state (captured variables
			// keep their aliasing), and are walked in place.
			fs.stmt(n.Body)
			return false
		}
		return true
	})
}

func (fs *fnState) reportf(pos token.Pos, format string, args ...any) {
	if fs.report {
		fs.st.pass.Reportf(pos, format, args...)
	}
}

// calleeFunc resolves a call's target as a *types.Func (methods included),
// or nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
