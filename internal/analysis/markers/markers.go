// Package markers parses the propviewlint annotation vocabulary out of
// doc and line comments (see the internal/analysis package doc for what
// each marker means). All four analyzers share this one parser so the
// vocabulary cannot drift between them.
package markers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// FuncInfo is the marker set of one function declaration.
type FuncInfo struct {
	// ReadOnly: results alias callee-owned snapshot state (propview:read-only).
	ReadOnly bool
	// NoRetain: callback arguments must not retain yielded values
	// (propview:no-retain).
	NoRetain bool
	// Publish: the function is a commit/publish path allowed to write
	// generation fields (propview:publish).
	Publish bool
	// Holds lists lock field names the caller guarantees are held
	// (propview:holds a, b).
	Holds []string
	// Deterministic: the function promises output independent of map
	// iteration order, wall-clock and randomness; gatherorder checks the
	// promise transitively (propview:deterministic).
	Deterministic bool
	// OrderInsensitive: the function's consumers tolerate any element
	// order, so map-range-ordered values may flow out of it
	// (propview:order-insensitive).
	OrderInsensitive bool
	// Fanout: closures passed to this function run concurrently, one
	// invocation per index; parslot holds their captured writes to the
	// per-index-slot discipline (propview:fanout).
	Fanout bool
}

// any reports whether the info carries at least one marker.
func (info FuncInfo) any() bool {
	return info.ReadOnly || info.NoRetain || info.Publish || len(info.Holds) > 0 ||
		info.Deterministic || info.OrderInsensitive || info.Fanout
}

// Funcs collects the function markers of the package under analysis.
func Funcs(pass *analysis.Pass) map[*types.Func]FuncInfo {
	out := make(map[*types.Func]FuncInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				info := parseFuncMarkers(fd.Doc)
				if !info.any() {
					continue
				}
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[obj] = info
				}
			}
		}
	}
	return out
}

func parseFuncMarkers(doc *ast.CommentGroup) FuncInfo {
	var info FuncInfo
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		switch {
		case text == "propview:read-only":
			info.ReadOnly = true
		case text == "propview:no-retain":
			info.NoRetain = true
		case text == "propview:publish":
			info.Publish = true
		case text == "propview:deterministic":
			info.Deterministic = true
		case text == "propview:order-insensitive":
			info.OrderInsensitive = true
		case text == "propview:fanout":
			info.Fanout = true
		default:
			if rest, ok := strings.CutPrefix(text, "propview:holds "); ok {
				for _, name := range strings.Split(rest, ",") {
					if name = strings.TrimSpace(name); name != "" {
						info.Holds = append(info.Holds, name)
					}
				}
			}
		}
	}
	return info
}

// Guard describes one guarded-by annotation on a struct field.
type Guard struct {
	// Name is the guard: a sibling field name, or "atomic".
	Name string
	// Struct is the syntax of the owning struct type, for sibling lookup.
	Struct *ast.StructType
	// Pos anchors bad-annotation diagnostics.
	Pos token.Pos
}

// FieldGuards collects `guarded-by:` annotations, keyed by field object.
func FieldGuards(pass *analysis.Pass) map[*types.Var]Guard {
	out := make(map[*types.Var]Guard)
	eachAnnotatedField(pass, "guarded-by:", func(field *ast.Field, st *ast.StructType, arg string, pos token.Pos) {
		name, _, _ := strings.Cut(arg, " ")
		if name == "" {
			return
		}
		for _, id := range field.Names {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				out[v] = Guard{Name: name, Struct: st, Pos: pos}
			}
		}
	})
	return out
}

// GenerationFields collects `propview:generation` annotations, keyed by
// field object, valued by the annotation position.
func GenerationFields(pass *analysis.Pass) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos)
	eachAnnotatedField(pass, "propview:generation", func(field *ast.Field, _ *ast.StructType, _ string, pos token.Pos) {
		for _, id := range field.Names {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				out[v] = pos
			}
		}
	})
	return out
}

// eachAnnotatedField calls fn for every struct field whose doc or trailing
// comment contains a line starting with the given marker; arg is the rest
// of that line.
func eachAnnotatedField(pass *analysis.Pass, marker string, fn func(field *ast.Field, st *ast.StructType, arg string, pos token.Pos)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
						if rest, ok := strings.CutPrefix(text, marker); ok {
							// Anchor diagnostics at the field, not the comment
							// (a doc-comment marker sits on the line above).
							fn(field, st, strings.TrimSpace(rest), field.Pos())
						}
					}
				}
			}
			return true
		})
	}
}

// SiblingField resolves name to a field object of the given struct syntax,
// or nil.
func SiblingField(pass *analysis.Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				v, _ := pass.TypesInfo.Defs[id].(*types.Var)
				return v
			}
		}
	}
	return nil
}
