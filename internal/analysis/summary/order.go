// Ordering/effect summaries: the second analyzer of this package. Where
// summary.Analyzer models locks and goroutine lifetimes, Order models
// DETERMINISM — the properties that make the parallel maintenance paths
// width-invariant:
//
//   - Which results of a function are ordered by a Go map `range`
//     (MapOrdered)? Map iteration order varies run to run, so such a value
//     must be sorted or gathered into keyed slots before it reaches
//     order-sensitive output.
//   - Which nondeterminism sources (wall clock, randomness) does a function
//     reach, transitively through calls (Nondet)? A function marked
//     propview:deterministic must reach none.
//   - Which functions are fan-out points (propview:fanout), whose closure
//     arguments run concurrently and may only write captured state through
//     per-index slots?
//
// The summaries are exported as gob OrderFacts, so both drivers see them
// across package boundaries, and the walk doubles as the checking engine
// for the three thin reporting analyzers parslot, maporder and gatherorder
// (each reads its slice of OrderResult and reports under its own name, so
// //lint:ignore and the suppression budget keep per-analyzer granularity).
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/markers"
)

// Order computes the ordering/effect summaries. Like Analyzer it reports
// nothing itself; parslot, maporder and gatherorder report its findings.
var Order = &analysis.Analyzer{
	Name:      "ordersummary",
	Doc:       "computes per-function ordering/effect summaries (map-range-ordered results, nondeterminism sources, fan-out points) for the determinism analyzers",
	Requires:  []*analysis.Analyzer{Analyzer},
	FactTypes: []analysis.Fact{(*OrderFact)(nil)},
	Run:       runOrder,
}

// OrderSummary is the determinism-relevant behavior of one function.
type OrderSummary struct {
	// MapOrdered flags each result whose element order derives from a map
	// range (nil when none do): callers assigning such a result hold a
	// map-ordered value.
	MapOrdered []bool
	// Nondet lists root nondeterminism sources the function reaches,
	// transitively: "time.Now at file.go:12". Propagation stops at callees
	// marked propview:deterministic — they are checked at their own
	// definition instead.
	Nondet []string
	// Deterministic, OrderInsensitive and Fanout export the function's
	// markers, so client packages see the contract without the source.
	Deterministic    bool
	OrderInsensitive bool
	Fanout           bool
}

func (s *OrderSummary) empty() bool {
	if len(s.Nondet) > 0 || s.Deterministic || s.OrderInsensitive || s.Fanout {
		return false
	}
	for _, b := range s.MapOrdered {
		if b {
			return false
		}
	}
	return true
}

// OrderFact exports an OrderSummary across package boundaries.
type OrderFact struct{ S OrderSummary }

func (*OrderFact) AFact() {}

// Violation is one determinism finding, ready for a thin analyzer to
// report under its own name.
type Violation struct {
	Pos     token.Pos
	Message string
}

// OrderResult is the in-memory view parslot, maporder and gatherorder read
// via Pass.ResultOf[summary.Order].
type OrderResult struct {
	// Funcs maps this package's functions to their ordering summaries.
	Funcs map[*types.Func]*OrderSummary
	// Parslot: captured-state writes in fan-out workers outside the
	// per-index-slot discipline.
	Parslot []Violation
	// Maporder: map-range-ordered values reaching order-sensitive sinks.
	Maporder []Violation
	// Gather: slot arrays gathered in nondeterministic order, and
	// propview:deterministic functions reaching nondeterminism.
	Gather []Violation
}

// orderWork is the per-package fixpoint state.
type orderWork struct {
	pass    *analysis.Pass
	sumRes  *Result // concurrency summaries (Mutates), for the worker checks
	decls   []*ast.FuncDecl
	objs    map[*ast.FuncDecl]*types.Func
	local   map[*types.Func]bool
	markers map[*types.Func]markers.FuncInfo
	sums    map[*types.Func]*OrderSummary // previous round (read)
}

// lookupOrder resolves a callee's ordering summary: local functions from
// the previous fixpoint round, imported ones from their exported fact.
func (ow *orderWork) lookupOrder(f *types.Func) *OrderSummary {
	if ow.local[f] {
		return ow.sums[f]
	}
	var of OrderFact
	if ow.pass.ImportObjectFact(f, &of) {
		return &of.S
	}
	return nil
}

// lookupMutates resolves a callee's concurrency summary for its Mutates
// effect list.
func (ow *orderWork) lookupMutates(f *types.Func) *FuncSummary {
	if s, ok := ow.sumRes.Funcs[f]; ok {
		return s
	}
	var ff FuncFact
	if ow.pass.ImportObjectFact(f, &ff) {
		return &ff.S
	}
	return nil
}

// isFanout reports whether calling f fans its closure arguments out over
// concurrent workers (propview:fanout, locally or via fact).
func (ow *orderWork) isFanout(f *types.Func) bool {
	if ow.local[f] {
		return ow.markers[f].Fanout
	}
	var of OrderFact
	return ow.pass.ImportObjectFact(f, &of) && of.S.Fanout
}

// calleeDeterministic reports whether f carries propview:deterministic.
func (ow *orderWork) calleeDeterministic(f *types.Func) bool {
	if ow.local[f] {
		return ow.markers[f].Deterministic
	}
	var of OrderFact
	return ow.pass.ImportObjectFact(f, &of) && of.S.Deterministic
}

func runOrder(pass *analysis.Pass) (any, error) {
	ow := &orderWork{
		pass:    pass,
		sumRes:  pass.ResultOf[Analyzer].(*Result),
		objs:    make(map[*ast.FuncDecl]*types.Func),
		local:   make(map[*types.Func]bool),
		markers: markers.Funcs(pass),
		sums:    make(map[*types.Func]*OrderSummary),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			ow.decls = append(ow.decls, fd)
			ow.objs[fd] = obj
			ow.local[obj] = true
		}
	}

	// Fixpoint over MapOrdered and Nondet: both grow monotonically (Nondet
	// carries root reasons only, so recursion cycles converge).
	prev := ""
	for iter := 0; iter <= len(ow.decls)+1; iter++ {
		next := make(map[*types.Func]*OrderSummary)
		for _, d := range ow.decls {
			of := ow.walk(d, nil, nil)
			next[ow.objs[d]] = of.sum
		}
		ow.sums = next
		sig := orderSignature(ow.sums)
		if sig == prev {
			break
		}
		prev = sig
	}

	res := &OrderResult{Funcs: ow.sums}

	// Fan-out discovery and the per-worker slot-discipline checks; the
	// slot arrays and worker extents feed the gather checks below.
	fanByDecl := make(map[*ast.FuncDecl]*fanInfo)
	for _, d := range ow.decls {
		fanByDecl[d] = ow.checkFanouts(d, res)
	}

	// Reporting walk: same taint engine, now recording sink violations and
	// checking marked functions against their collected nondeterminism.
	for _, d := range ow.decls {
		fn := ow.objs[d]
		of := ow.walk(d, res, fanByDecl[d])
		if ow.markers[fn].Deterministic {
			for _, v := range of.nondet {
				res.Gather = append(res.Gather, Violation{Pos: v.Pos,
					Message: fmt.Sprintf("propview:deterministic function %s reaches nondeterminism: %s", fn.Name(), v.Message)})
			}
		}
	}

	for f, s := range ow.sums {
		if !s.empty() {
			pass.ExportObjectFact(f, &OrderFact{S: *s})
		}
	}
	return res, nil
}

func orderSignature(sums map[*types.Func]*OrderSummary) string {
	keys := make([]*types.Func, 0, len(sums))
	for f := range sums {
		keys = append(keys, f)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].FullName() < keys[j].FullName() })
	var sb []byte
	for _, f := range keys {
		sb = fmt.Appendf(sb, "%s: %+v\n", f.FullName(), *sums[f])
	}
	return string(sb)
}

// ---- the taint walk -------------------------------------------------------

// taintSrc says why a value's element order is nondeterministic.
type taintSrc struct {
	reason string
	pos    token.Pos
}

// rangeFrame is one enclosing loop whose iteration order matters: a map
// range, or a range over an already-tainted sequence. Appends inside such
// a frame inherit its order.
type rangeFrame struct {
	src *taintSrc // nil for order-safe loops
	// isMap: the loop IS a map range, so even its index sequence is
	// nondeterministic. A range over a tainted slice still visits indexes
	// 0..n-1 — slot reads there are order-safe; only the values carry
	// taint.
	isMap  bool
	keyObj types.Object // map-range key variable (keyed writes are exempt)
	valObj types.Object
}

// span is a worker literal's extent; gather checks skip positions inside.
type span struct{ lo, hi token.Pos }

// fanInfo is what the fan-out scan learned about one function: the slot
// arrays its workers write and the worker literals' extents.
type fanInfo struct {
	slots   map[types.Object]bool
	workers []span
}

func (fi *fanInfo) insideWorker(p token.Pos) bool {
	if fi == nil {
		return false
	}
	for _, s := range fi.workers {
		if p >= s.lo && p < s.hi {
			return true
		}
	}
	return false
}

// ordFunc walks one function, tracking order taint in statement order.
type ordFunc struct {
	ow       *orderWork
	fn       *types.Func
	info     markers.FuncInfo
	sum      *OrderSummary
	taint    map[types.Object]*taintSrc
	frames   []rangeFrame
	results  []types.Object // named result objects, nil entries when unnamed
	litDepth int            // >0 inside a func literal: returns are the literal's
	rep      *OrderResult   // nil during the fixpoint rounds
	fan      *fanInfo
	nondet   []Violation // local positions matching sum.Nondet
}

func (ow *orderWork) walk(fd *ast.FuncDecl, rep *OrderResult, fan *fanInfo) *ordFunc {
	fn := ow.objs[fd]
	of := &ordFunc{
		ow:    ow,
		fn:    fn,
		info:  ow.markers[fn],
		sum:   &OrderSummary{},
		taint: make(map[types.Object]*taintSrc),
		rep:   rep,
		fan:   fan,
	}
	of.sum.Deterministic = of.info.Deterministic
	of.sum.OrderInsensitive = of.info.OrderInsensitive
	of.sum.Fanout = of.info.Fanout
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Results() != nil {
		of.sum.MapOrdered = make([]bool, sig.Results().Len())
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if len(field.Names) == 0 {
				of.results = append(of.results, nil)
				continue
			}
			for _, id := range field.Names {
				of.results = append(of.results, ow.pass.TypesInfo.Defs[id])
			}
		}
	}
	of.stmts(fd.Body.List)
	// Marked functions never export map-ordered results: order-insensitive
	// means callers tolerate any order, deterministic means the return was
	// (or should have been — see the maporder diagnostic) sorted.
	if of.info.OrderInsensitive || of.info.Deterministic {
		for i := range of.sum.MapOrdered {
			of.sum.MapOrdered[i] = false
		}
	}
	return of
}

func (of *ordFunc) stmts(list []ast.Stmt) {
	for _, s := range list {
		of.stmt(s)
	}
}

func (of *ordFunc) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		of.stmts(s.List)
	case *ast.AssignStmt:
		of.assign(s)
	case *ast.ExprStmt:
		of.expr(s.X)
	case *ast.IncDecStmt:
		of.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					of.expr(v)
					if i < len(vs.Names) {
						of.setTaint(of.defOf(vs.Names[i]), of.taintOf(v))
					}
				}
			}
		}
	case *ast.ReturnStmt:
		of.ret(s)
	case *ast.IfStmt:
		if s.Init != nil {
			of.stmt(s.Init)
		}
		of.expr(s.Cond)
		of.stmt(s.Body)
		if s.Else != nil {
			of.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			of.stmt(s.Init)
		}
		if s.Cond != nil {
			of.expr(s.Cond)
		}
		if s.Post != nil {
			of.stmt(s.Post)
		}
		of.frames = append(of.frames, rangeFrame{})
		of.stmt(s.Body)
		of.frames = of.frames[:len(of.frames)-1]
	case *ast.RangeStmt:
		of.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			of.stmt(s.Init)
		}
		if s.Tag != nil {
			of.expr(s.Tag)
		}
		of.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			of.stmt(s.Init)
		}
		of.stmt(s.Assign)
		of.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			of.expr(e)
		}
		of.stmts(s.Body)
	case *ast.SelectStmt:
		of.stmt(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			of.stmt(s.Comm)
		}
		of.stmts(s.Body)
	case *ast.GoStmt:
		of.expr(s.Call)
	case *ast.DeferStmt:
		of.expr(s.Call)
	case *ast.SendStmt:
		of.expr(s.Chan)
		of.expr(s.Value)
	case *ast.LabeledStmt:
		of.stmt(s.Stmt)
	}
}

// rangeStmt pushes a frame describing the loop's order: map ranges and
// ranges over tainted sequences poison appends inside their bodies.
func (of *ordFunc) rangeStmt(s *ast.RangeStmt) {
	of.expr(s.X)
	frame := rangeFrame{}
	if tv, ok := of.ow.pass.TypesInfo.Types[s.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			frame.isMap = true
			frame.src = &taintSrc{
				reason: fmt.Sprintf("ordered by range over map at %s", posStr(of.ow.pass.Fset, s.Range)),
				pos:    s.Range,
			}
			if id, ok := s.Key.(*ast.Ident); ok {
				frame.keyObj = of.defOf(id)
			}
			if id, ok := s.Value.(*ast.Ident); ok {
				frame.valObj = of.defOf(id)
			}
		}
	}
	if frame.src == nil {
		if src := of.taintOf(s.X); src != nil {
			frame.src = src
		}
	}
	of.frames = append(of.frames, frame)
	of.stmt(s.Body)
	of.frames = of.frames[:len(of.frames)-1]
}

// orderedFrame returns the innermost enclosing frame whose iteration order
// is nondeterministic, or nil.
func (of *ordFunc) orderedFrame() *rangeFrame {
	for i := len(of.frames) - 1; i >= 0; i-- {
		if of.frames[i].src != nil {
			return &of.frames[i]
		}
	}
	return nil
}

func (of *ordFunc) assign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		of.expr(r)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			of.assignOne(s.Lhs[i], s.Rhs[i])
			of.expr(s.Lhs[i])
		}
		return
	}
	// Tuple assignment from one call: taint per MapOrdered result bit.
	if len(s.Rhs) == 1 {
		var ordered []bool
		if call, ok := analysis.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if callee := calleeOf(of.ow.pass.TypesInfo, call); callee != nil {
				if cs := of.ow.lookupOrder(callee); cs != nil {
					ordered = cs.MapOrdered
				}
			}
		}
		for i, l := range s.Lhs {
			var src *taintSrc
			if i < len(ordered) && ordered[i] {
				src = &taintSrc{reason: "result ordered by a map range in the callee", pos: s.Rhs[0].Pos()}
			}
			of.setTaint(of.objOf(l), src)
			of.expr(l)
		}
	}
}

// assignOne transfers taint for one lhs = rhs pair, applying the append
// and keyed-write rules.
func (of *ordFunc) assignOne(lhs, rhs ast.Expr) {
	info := of.ow.pass.TypesInfo
	target := of.objOf(lhs)

	// Appends inside an order-tainted loop are positional: the element
	// sequence mirrors the iteration order, whatever is appended.
	if call, ok := analysis.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
		if frame := of.orderedFrame(); frame != nil && target != nil {
			of.setTaint(target, frame.src)
			return
		}
	}

	// Indexed writes: a slice write positioned by something other than the
	// map key is as iteration-ordered as an append; keyed writes (the
	// keyed-slot gather) and map writes are order-free.
	if idx, ok := analysis.Unparen(lhs).(*ast.IndexExpr); ok {
		if frame := of.orderedFrame(); frame != nil {
			if tv, ok := info.Types[idx.X]; ok {
				if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice &&
					!mentionsObj(info, idx.Index, frame.keyObj) && !mentionsObj(info, idx.Index, frame.valObj) {
					if root, _ := lvalueRoot(info, idx.X); root != nil {
						of.setTaint(root, frame.src)
					}
				}
			}
		}
		return
	}

	if target == nil {
		return
	}
	of.setTaint(target, of.taintOf(rhs))
}

func (of *ordFunc) setTaint(obj types.Object, src *taintSrc) {
	if obj == nil {
		return
	}
	if src == nil {
		delete(of.taint, obj)
		return
	}
	of.taint[obj] = src
}

// taintOf computes the order taint of an expression's value.
func (of *ordFunc) taintOf(e ast.Expr) *taintSrc {
	info := of.ow.pass.TypesInfo
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return nil
		}
		return of.taint[obj]
	case *ast.SliceExpr:
		return of.taintOf(e.X)
	case *ast.CallExpr:
		if isBuiltinAppend(info, e) {
			for _, a := range e.Args {
				if src := of.taintOf(a); src != nil {
					return src
				}
			}
			return nil
		}
		callee := calleeOf(info, e)
		if callee == nil {
			return nil
		}
		if isSortingCall(callee) {
			return nil
		}
		if cs := of.ow.lookupOrder(callee); cs != nil && len(cs.MapOrdered) > 0 && cs.MapOrdered[0] {
			return &taintSrc{reason: fmt.Sprintf("result of %s, ordered by a map range in the callee", callee.Name()), pos: e.Pos()}
		}
		return nil
	}
	return nil
}

// ret applies the return-position rules: a map-ordered result is the
// function's contract (exported via MapOrdered), and a contract violation
// when the function promised determinism.
func (of *ordFunc) ret(s *ast.ReturnStmt) {
	for _, r := range s.Results {
		of.expr(r)
	}
	if of.litDepth > 0 {
		return // a literal's returns are not the enclosing function's
	}
	mark := func(i int, src *taintSrc) {
		if src == nil {
			return
		}
		if of.rep != nil && of.info.Deterministic && !of.info.OrderInsensitive {
			of.rep.Maporder = append(of.rep.Maporder, Violation{Pos: s.Pos(),
				Message: fmt.Sprintf("propview:deterministic function %s returns a map-ordered value (%s); sort it or gather into keyed slots", of.fn.Name(), src.reason)})
		}
		if i < len(of.sum.MapOrdered) {
			of.sum.MapOrdered[i] = true
		}
	}
	if len(s.Results) == 0 {
		for i, robj := range of.results {
			if robj != nil {
				mark(i, of.taint[robj])
			}
		}
		return
	}
	for i, r := range s.Results {
		mark(i, of.taintOf(r))
	}
}

// expr scans an expression for calls (nondeterminism, sorting, sinks),
// literals, and — in the reporting pass — order-sensitive uses of slot
// arrays.
func (of *ordFunc) expr(e ast.Expr) {
	info := of.ow.pass.TypesInfo
	switch e := e.(type) {
	case *ast.CallExpr:
		of.callExpr(e)
	case *ast.FuncLit:
		of.litDepth++
		of.stmts(e.Body.List)
		of.litDepth--
	case *ast.Ident:
		// Gather-order check: consuming a slot array under a map range
		// loses the deterministic index order the fan-out's slot
		// discipline just bought. (A range over a tainted slice is exempt:
		// its index sequence is still 0..n-1, and any value-order leak is
		// maporder's append taint.)
		if of.rep != nil && of.fan != nil && of.fan.slots != nil {
			if obj := info.Uses[e]; obj != nil && of.fan.slots[obj] && !of.fan.insideWorker(e.Pos()) {
				if frame := of.orderedFrame(); frame != nil && frame.isMap {
					of.rep.Gather = append(of.rep.Gather, Violation{Pos: e.Pos(),
						Message: fmt.Sprintf("slot array %s gathered under a loop %s; gather serially in index order (for i := range %s)", e.Name, frame.src.reason, e.Name)})
				}
			}
		}
	case *ast.ParenExpr:
		of.expr(e.X)
	case *ast.SelectorExpr:
		of.expr(e.X)
	case *ast.StarExpr:
		of.expr(e.X)
	case *ast.UnaryExpr:
		of.expr(e.X)
	case *ast.BinaryExpr:
		of.expr(e.X)
		of.expr(e.Y)
	case *ast.IndexExpr:
		of.expr(e.X)
		of.expr(e.Index)
	case *ast.SliceExpr:
		of.expr(e.X)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				of.expr(idx)
			}
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			of.expr(el)
		}
	case *ast.KeyValueExpr:
		of.expr(e.Key)
		of.expr(e.Value)
	case *ast.TypeAssertExpr:
		of.expr(e.X)
	}
}

func (of *ordFunc) callExpr(call *ast.CallExpr) {
	info := of.ow.pass.TypesInfo
	callee := calleeOf(info, call)
	if callee != nil {
		switch {
		case isSortingCall(callee):
			// Sorting re-establishes a deterministic order: clear the
			// argument's taint (sort.Slice(v, less), slices.Sort(v), ...).
			if len(call.Args) > 0 {
				if root, _ := lvalueRoot(info, analysis.Unparen(call.Args[0])); root != nil {
					delete(of.taint, root)
				}
			}
		case isJSONEncodeCall(callee):
			if of.rep != nil && !of.info.OrderInsensitive {
				for _, a := range call.Args {
					if src := of.taintOf(a); src != nil {
						of.rep.Maporder = append(of.rep.Maporder, Violation{Pos: a.Pos(),
							Message: fmt.Sprintf("map-ordered value flows into JSON encoding (%s); sort it first or mark the function propview:order-insensitive", src.reason)})
					}
				}
			}
		}
		if reason := nondetRoot(callee); reason != "" {
			of.addNondet(call.Pos(), fmt.Sprintf("%s at %s", reason, posStr(of.ow.pass.Fset, call.Pos())))
		} else if !of.ow.calleeDeterministic(callee) {
			if cs := of.ow.lookupOrder(callee); cs != nil {
				for _, root := range cs.Nondet {
					of.addNondet(call.Pos(), root)
				}
			}
		}
	}
	of.expr(call.Fun)
	for _, a := range call.Args {
		of.expr(a)
	}
}

// maxNondet caps the root reasons carried per function; one is enough to
// fail a propview:deterministic promise, a handful aids triage.
const maxNondet = 4

func (of *ordFunc) addNondet(pos token.Pos, root string) {
	for _, r := range of.sum.Nondet {
		if r == root {
			return
		}
	}
	if len(of.sum.Nondet) >= maxNondet {
		return
	}
	of.sum.Nondet = append(of.sum.Nondet, root)
	of.nondet = append(of.nondet, Violation{Pos: pos, Message: root})
}

// ---- fan-out discovery and the worker slot checks -------------------------

// checkFanouts finds calls to propview:fanout functions in fd, checks each
// resolvable worker closure against the per-index-slot write discipline,
// and returns the slot arrays and worker extents for the gather checks.
func (ow *orderWork) checkFanouts(fd *ast.FuncDecl, res *OrderResult) *fanInfo {
	info := ow.pass.TypesInfo
	fi := &fanInfo{slots: make(map[types.Object]bool)}

	// Local closure bindings: `work := func(i int) {...}` passed by name.
	litBinds := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if lit, ok := analysis.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
					if id, ok := l.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							litBinds[obj] = lit
						}
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						if lit, ok := analysis.Unparen(v).(*ast.FuncLit); ok && i < len(vs.Names) {
							if obj := info.Defs[vs.Names[i]]; obj != nil {
								litBinds[obj] = lit
							}
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil || !ow.isFanout(callee) {
			return true
		}
		for _, arg := range call.Args {
			tv, ok := info.Types[arg]
			if !ok {
				continue
			}
			if _, isFunc := tv.Type.Underlying().(*types.Signature); !isFunc {
				continue
			}
			lit, _ := analysis.Unparen(arg).(*ast.FuncLit)
			if lit == nil {
				if id, ok := analysis.Unparen(arg).(*ast.Ident); ok {
					lit = litBinds[info.Uses[id]]
				}
			}
			if lit == nil {
				// A named function or method value: its summary tells us
				// whether it writes anything a caller can see — in a
				// fan-out that is a cross-worker race by construction.
				if wf := calleeOf(info, &ast.CallExpr{Fun: arg}); wf != nil {
					if s := ow.lookupMutates(wf); s != nil && len(s.Mutates) > 0 {
						res.Parslot = append(res.Parslot, Violation{Pos: arg.Pos(),
							Message: fmt.Sprintf("worker %s passed to %s mutates shared state through its parameters or receiver; parallel workers may only write per-index slots", wf.Name(), callee.Name())})
					}
				}
				continue
			}
			fi.workers = append(fi.workers, span{lo: lit.Pos(), hi: lit.End()})
			ww := &workerWalk{ow: ow, res: res, lit: lit, fanName: callee.Name(),
				slots: fi.slots, derived: make(map[types.Object]bool)}
			ww.idx = firstIntParam(info, lit)
			ww.stmts(lit.Body.List)
		}
		return true
	})
	return fi
}

// firstIntParam returns the object of the worker's first integer
// parameter — the per-invocation index that defines its slot.
func firstIntParam(info *types.Info, lit *ast.FuncLit) types.Object {
	if lit.Type.Params == nil {
		return nil
	}
	for _, field := range lit.Type.Params.List {
		for _, id := range field.Names {
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return obj
			}
		}
	}
	return nil
}

// workerWalk checks one fan-out worker literal: captured state may be
// written only through per-index slots or under a mutex, directly or
// through callees (resolved via the Mutates effect summaries).
type workerWalk struct {
	ow      *orderWork
	res     *OrderResult
	lit     *ast.FuncLit
	fanName string
	idx     types.Object // the worker's index parameter, possibly nil
	slots   map[types.Object]bool
	// derived tracks worker-locals computed from the index (i :=
	// affected[j]): writes positioned by them count as slot writes. The
	// checker proves the position is a function of the worker index;
	// injectivity of the derivation (affected holding no duplicates) stays
	// the author's obligation, exactly as with slots[i] itself.
	derived   map[types.Object]bool
	lockDepth int
}

func (ww *workerWalk) held() bool { return ww.lockDepth > 0 }

// outer reports whether obj is declared outside the worker literal —
// captured (or package-level) state shared across workers.
func (ww *workerWalk) outer(obj types.Object) bool {
	return obj.Pos() < ww.lit.Pos() || obj.Pos() >= ww.lit.End()
}

func (ww *workerWalk) stmts(list []ast.Stmt) {
	for _, s := range list {
		ww.stmt(s)
	}
}

func (ww *workerWalk) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		ww.stmts(s.List)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ww.exprCalls(r)
		}
		for i, l := range s.Lhs {
			ww.checkWrite(l)
			ww.exprCalls(l)
			if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) {
				ww.trackDerived(l, s.Rhs[i])
			}
		}
	case *ast.IncDecStmt:
		// i++ on a derived local keeps it derived: the strided-slot idiom
		// (i := j*stride; ...; i++) stays a function of the worker index.
		ww.checkWrite(s.X)
		ww.exprCalls(s.X)
	case *ast.ExprStmt:
		if call, ok := analysis.Unparen(s.X).(*ast.CallExpr); ok {
			if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := ww.ow.pass.TypesInfo.Types[sel.X]; ok && lockType(tv.Type) {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						ww.lockDepth++
						return
					case "Unlock", "RUnlock":
						ww.lockDepth--
						return
					}
				}
			}
		}
		ww.exprCalls(s.X)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` releases at worker exit: the lock stays held
		// for the rest of the walk, so nothing to do — the matching Lock
		// already raised the depth. Other deferred calls are scanned.
		if sel, ok := analysis.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := ww.ow.pass.TypesInfo.Types[sel.X]; ok && lockType(tv.Type) {
				return
			}
		}
		ww.exprCalls(s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ww.exprCalls(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ww.stmt(s.Init)
		}
		ww.exprCalls(s.Cond)
		ww.stmt(s.Body)
		if s.Else != nil {
			ww.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ww.stmt(s.Init)
		}
		if s.Cond != nil {
			ww.exprCalls(s.Cond)
		}
		if s.Post != nil {
			ww.stmt(s.Post)
		}
		ww.stmt(s.Body)
	case *ast.RangeStmt:
		ww.exprCalls(s.X)
		ww.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			ww.stmt(s.Init)
		}
		if s.Tag != nil {
			ww.exprCalls(s.Tag)
		}
		ww.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ww.stmt(s.Init)
		}
		ww.stmt(s.Assign)
		ww.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			ww.exprCalls(e)
		}
		ww.stmts(s.Body)
	case *ast.SelectStmt:
		ww.stmt(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			ww.stmt(s.Comm)
		}
		ww.stmts(s.Body)
	case *ast.SendStmt:
		ww.exprCalls(s.Chan)
		ww.exprCalls(s.Value)
	case *ast.GoStmt:
		ww.exprCalls(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ww.exprCalls(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		ww.stmt(s.Stmt)
	}
}

// trackDerived updates the derived set after lhs = rhs: a worker-local
// assigned an index-derived expression becomes derived, one assigned
// anything else stops being derived (sequential walk order, so a later
// rebinding to a constant is seen before writes it positions).
func (ww *workerWalk) trackDerived(lhs, rhs ast.Expr) {
	id, ok := analysis.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	info := ww.ow.pass.TypesInfo
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || ww.outer(obj) {
		return
	}
	if ww.mentionsIdx(rhs) {
		ww.derived[obj] = true
	} else {
		delete(ww.derived, obj)
	}
}

// mentionsIdx reports whether e references the worker's index parameter or
// a local derived from it.
func (ww *workerWalk) mentionsIdx(e ast.Expr) bool {
	if ww.idx == nil {
		return false
	}
	info := ww.ow.pass.TypesInfo
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && (obj == ww.idx || ww.derived[obj]) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkWrite enforces the slot discipline on one lvalue.
func (ww *workerWalk) checkWrite(lhs ast.Expr) {
	info := ww.ow.pass.TypesInfo
	if id, ok := analysis.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}

	// Walk the access chain looking for the slot pattern: an index into a
	// slice or array positioned by the worker's index parameter.
	isSlot := false
	var mapWrite *ast.IndexExpr
	for e := lhs; ; {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer:
					if ww.mentionsIdx(x.Index) {
						isSlot = true
					}
				case *types.Map:
					mapWrite = x
				}
			}
			e = x.X
			continue
		}
		break
	}

	root, _ := lvalueRoot(info, lhs)
	if root == nil || !ww.outer(root) {
		return // a worker-local variable: sequential within one invocation
	}
	if isSlot {
		ww.slots[root] = true
		return
	}
	if ww.held() {
		return
	}
	pos := lhs.Pos()
	if mapWrite != nil {
		ww.violation(pos, fmt.Sprintf("parallel worker writes captured map %s; maps are not per-index slots — gather into a slice indexed by the worker index, or hold a mutex", types.ExprString(mapWrite.X)))
		return
	}
	ww.violation(pos, fmt.Sprintf("parallel worker passed to %s writes captured variable %s outside a per-index slot; write %s[i] (i the worker index) or hold a mutex", ww.fanName, root.Name(), root.Name()))
}

// exprCalls scans an expression for calls whose effect summaries mutate
// captured state, and for nested literals (which run within this worker's
// invocation and share its capture boundary).
func (ww *workerWalk) exprCalls(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ww.stmts(n.Body.List)
			return false
		case *ast.CallExpr:
			ww.checkCallEffects(n)
		}
		return true
	})
}

func (ww *workerWalk) checkCallEffects(call *ast.CallExpr) {
	if ww.held() {
		return
	}
	info := ww.ow.pass.TypesInfo
	callee := calleeOf(info, call)
	if callee == nil {
		return
	}
	s := ww.ow.lookupMutates(callee)
	if s == nil || len(s.Mutates) == 0 {
		return
	}
	for _, j := range s.Mutates {
		var arg ast.Expr
		if j == -1 {
			if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				arg = sel.X
			}
		} else if j >= 0 && j < len(call.Args) {
			arg = call.Args[j]
		}
		if arg == nil {
			continue
		}
		// Mutating &slots[i] (or slots[i].field) through a helper is the
		// slot discipline by another spelling.
		if ww.indexedByIdx(arg) {
			if root, _ := lvalueRoot(info, stripAddr(arg)); root != nil && ww.outer(root) {
				ww.slots[root] = true
			}
			continue
		}
		// The frame boundary here is the worker literal, not the enclosing
		// function: `&x` hands the callee the variable itself, so if x is
		// captured the mutation lands in shared state even though — for the
		// purposes of the enclosing function's own summary — it would not
		// escape the frame.
		var root types.Object
		var shared bool
		if u, ok := analysis.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			root, _ = lvalueRoot(info, u.X)
			shared = root != nil
		} else {
			root, shared = argMutationRoot(info, arg)
		}
		if !shared || root == nil || !ww.outer(root) {
			continue
		}
		ww.violation(arg.Pos(), fmt.Sprintf("call to %s mutates captured %s from a parallel worker passed to %s; mutate only per-index slots or hold a mutex", callee.Name(), root.Name(), ww.fanName))
	}
}

func (ww *workerWalk) violation(pos token.Pos, msg string) {
	ww.res.Parslot = append(ww.res.Parslot, Violation{Pos: pos, Message: msg})
}

// defOf resolves an identifier's defined object (short declarations,
// range variables).
func (of *ordFunc) defOf(id *ast.Ident) types.Object {
	return of.ow.pass.TypesInfo.Defs[id]
}

// objOf resolves an assignment target to its root object: the identifier
// itself for plain assigns and short declarations, the chain root for
// indexed/selector targets (which carry their container's taint).
func (of *ordFunc) objOf(e ast.Expr) types.Object {
	info := of.ow.pass.TypesInfo
	if id, ok := analysis.Unparen(e).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	root, _ := lvalueRoot(info, e)
	return root
}

// ---- small classification helpers -----------------------------------------

// mentionsObj reports whether e references obj.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// indexedByIdx reports whether e's access chain contains an index
// expression positioned by the worker index or a local derived from it
// (slots[i], &slots[i], slots[i].err, ...).
func (ww *workerWalk) indexedByIdx(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if idx, ok := n.(*ast.IndexExpr); ok && ww.mentionsIdx(idx.Index) {
			found = true
		}
		return !found
	})
	return found
}

func stripAddr(e ast.Expr) ast.Expr {
	e = analysis.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return analysis.Unparen(u.X)
	}
	return e
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isSortingCall recognizes the sort and slices functions that establish a
// deterministic element order.
func isSortingCall(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sort":
		return true // every sort.* entry point orders its argument
	case "slices":
		return strings.HasPrefix(f.Name(), "Sort")
	}
	return false
}

// isJSONEncodeCall recognizes the encoding/json entry points that
// serialize their argument — an order-sensitive sink (propviewd responses).
func isJSONEncodeCall(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil || pkg.Path() != "encoding/json" {
		return false
	}
	switch f.Name() {
	case "Marshal", "MarshalIndent", "Encode":
		return true
	}
	return false
}

// nondetRoot classifies direct nondeterminism sources: wall clock and
// randomness. Map iteration is handled by the taint walk (it is only
// nondeterministic as an ORDER), and scheduling nondeterminism is parslot's
// domain.
func nondetRoot(f *types.Func) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until", "After", "Tick", "NewTimer", "NewTicker":
			return "time." + f.Name()
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		return pkg.Path() + "." + f.Name()
	}
	return ""
}
