package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/markers"
)

// maxPath bounds the human-readable acquisition paths carried in facts.
const maxPath = 6

// heldLock is one entry of the path-sensitive held set.
type heldLock struct {
	class string
	level string // "read" or "write"
	must  bool   // held on every merged path (vs. some)
	field string // receiver-relative selector path, "" if none
	at    string // the step that acquired it, for edge paths
}

// work is the per-package state shared by all function walks of one
// fixpoint round.
type work struct {
	pass     *analysis.Pass
	decls    []*ast.FuncDecl
	objs     map[*ast.FuncDecl]*types.Func
	local    map[*types.Func]bool
	holds    map[*types.Func]markers.FuncInfo
	sums     map[*types.Func]*FuncSummary // previous round (read)
	next     map[*types.Func]*FuncSummary // current round (write)
	edges    []LocalEdge
	edgeSeen map[string]bool
	launches []LocalLaunch
}

func newWork(pass *analysis.Pass) *work {
	w := &work{
		pass:  pass,
		objs:  make(map[*ast.FuncDecl]*types.Func),
		local: make(map[*types.Func]bool),
		holds: make(map[*types.Func]markers.FuncInfo),
		sums:  make(map[*types.Func]*FuncSummary),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			w.decls = append(w.decls, fd)
			w.objs[fd] = obj
			w.local[obj] = true
		}
	}
	for obj, info := range markers.Funcs(pass) {
		if len(info.Holds) > 0 {
			w.holds[obj] = info
		}
	}
	return w
}

func (w *work) reset() {
	w.next = make(map[*types.Func]*FuncSummary)
	w.edges = nil
	w.edgeSeen = make(map[string]bool)
	w.launches = nil
}

// lookup resolves a callee's summary: same-package functions from the
// previous fixpoint round, imported ones from their exported fact.
func (w *work) lookup(f *types.Func) *FuncSummary {
	if w.local[f] {
		return w.sums[f]
	}
	var ff FuncFact
	if w.pass.ImportObjectFact(f, &ff) {
		return &ff.S
	}
	return nil
}

// edge records a From-held-while-acquiring-To observation, first one per
// (From, To) pair wins within a round.
func (w *work) edge(from heldLock, to string, path []string, pos token.Pos) {
	if from.class == to {
		return
	}
	key := from.class + "\x00" + to
	if w.edgeSeen[key] {
		return
	}
	w.edgeSeen[key] = true
	full := append([]string{from.at}, path...)
	if len(full) > maxPath {
		full = append(full[:maxPath:maxPath], "...")
	}
	w.edges = append(w.edges, LocalEdge{Edge: Edge{From: from.class, To: to, Path: full}, Pos: pos})
}

func (w *work) walkFunc(fd *ast.FuncDecl) {
	obj := w.objs[fd]
	fw := &funcWalker{
		w:        w,
		name:     displayName(obj),
		sum:      &FuncSummary{},
		root:     fd.Body,
		held:     make(map[string]heldLock),
		deferred: make(map[string]bool),
		entry:    make(map[string]bool),
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		fw.recv = w.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				fw.params = append(fw.params, nil) // unnamed: keep indices aligned
				continue
			}
			for _, id := range field.Names {
				fw.params = append(fw.params, w.pass.TypesInfo.Defs[id])
			}
		}
	}
	if info, ok := w.holds[obj]; ok {
		for _, name := range info.Holds {
			class := w.holdClass(obj, name)
			if class == "" {
				continue
			}
			fw.held[class] = heldLock{class: class, level: "write", must: true, field: name,
				at: fmt.Sprintf("%s: %s requires %s held (propview:holds)", posStr(w.pass.Fset, fd.Pos()), fw.name, class)}
			fw.entry[class] = true
		}
	}
	fw.stmts(fd.Body.List)

	var classes []string
	for c := range fw.held {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		h := fw.held[c]
		if h.must && !fw.deferred[c] && !fw.entry[c] {
			fw.sum.NetHeld = append(fw.sum.NetHeld, HeldLock{Class: h.class, Field: h.field, Level: h.level})
		}
	}
	w.next[obj] = fw.sum
}

// holdClass resolves a propview:holds name against the receiver's type (a
// field lock) or the package scope (a package-level lock); "" when the
// name matches no lock-typed declaration, so a phantom annotation never
// seeds the held set.
func (w *work) holdClass(obj *types.Func, name string) string {
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		named, ok := derefNamed(sig.Recv().Type())
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == name && lockType(f.Type()) {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + name
			}
		}
		return ""
	}
	if v, ok := w.pass.Pkg.Scope().Lookup(name).(*types.Var); ok && lockType(v.Type()) {
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// ResolveHoldClass resolves a propview:holds name for obj to its lock
// class the same way the summary walk seeds its entry held set; "" when
// the name matches neither a receiver field nor a package-level var.
func ResolveHoldClass(pass *analysis.Pass, obj *types.Func, name string) string {
	w := &work{pass: pass}
	return w.holdClass(obj, name)
}

type funcWalker struct {
	w        *work
	name     string
	recv     types.Object   // receiver var, or nil
	params   []types.Object // declared parameters, in signature order
	root     *ast.BlockStmt
	sum      *FuncSummary
	held     map[string]heldLock
	deferred map[string]bool // classes released by a deferred unlock
	entry    map[string]bool // classes held on entry (propview:holds)
}

// ---- statement walk -------------------------------------------------------

func (fw *funcWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		fw.stmt(s)
	}
}

func (fw *funcWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		fw.stmts(s.List)
	case *ast.ExprStmt:
		fw.expr(s.X, true)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			fw.expr(r, false)
		}
		for _, l := range s.Lhs {
			fw.mutateLhs(l)
			fw.expr(l, false)
		}
	case *ast.IncDecStmt:
		fw.mutateLhs(s.X)
		fw.expr(s.X, false)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fw.expr(r, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			fw.stmt(s.Init)
		}
		fw.expr(s.Cond, false)
		fw.branch(s.Body, s.Else)
	case *ast.ForStmt:
		if s.Init != nil {
			fw.stmt(s.Init)
		}
		if s.Cond != nil {
			fw.expr(s.Cond, false)
		}
		if s.Post != nil {
			fw.stmt(s.Post)
		}
		fw.branch(s.Body, nil)
	case *ast.RangeStmt:
		fw.expr(s.X, false)
		if tv, ok := fw.w.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				fw.chanOp(s.X, "recv")
			}
		}
		fw.branch(s.Body, nil)
	case *ast.SwitchStmt:
		if s.Init != nil {
			fw.stmt(s.Init)
		}
		if s.Tag != nil {
			fw.expr(s.Tag, false)
		}
		fw.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			fw.stmt(s.Init)
		}
		fw.stmt(s.Assign)
		fw.caseBodies(s.Body)
	case *ast.SelectStmt:
		fw.caseBodies(s.Body)
	case *ast.DeferStmt:
		fw.deferCall(s.Call)
	case *ast.GoStmt:
		fw.goStmt(s)
	case *ast.SendStmt:
		fw.chanOp(s.Chan, "send")
		fw.expr(s.Value, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fw.expr(v, false)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		fw.stmt(s.Stmt)
	}
}

// branch walks a conditional body (and optional else) and union-merges the
// held set: a lock held on only one path stays in the set as may-held
// (must=false) — conservative for edge emission — while must-held needs
// every path. Terminating branches discard their changes, as in lockguard.
func (fw *funcWalker) branch(body *ast.BlockStmt, els ast.Stmt) {
	entry := fw.snapshot()
	fw.stmts(body.List)
	after := fw.snapshot()
	if terminates(body) {
		after = entry
	}
	if els != nil {
		fw.restore(entry)
		fw.stmt(els)
		if !terminatesStmt(els) {
			after = mergeHeld(after, fw.snapshot())
		}
	} else {
		after = mergeHeld(after, entry)
	}
	fw.restore(after)
}

func (fw *funcWalker) caseBodies(body *ast.BlockStmt) {
	entry := fw.snapshot()
	after := entry
	for _, cs := range body.List {
		fw.restore(entry)
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				fw.expr(e, false)
			}
			fw.stmts(cs.Body)
			if !terminatesList(cs.Body) {
				after = mergeHeld(after, fw.snapshot())
			}
		case *ast.CommClause:
			if cs.Comm != nil {
				fw.stmt(cs.Comm)
			}
			fw.stmts(cs.Body)
			if !terminatesList(cs.Body) {
				after = mergeHeld(after, fw.snapshot())
			}
		}
	}
	fw.restore(after)
}

func (fw *funcWalker) snapshot() map[string]heldLock {
	cp := make(map[string]heldLock, len(fw.held))
	for k, v := range fw.held {
		cp[k] = v
	}
	return cp
}

func (fw *funcWalker) restore(m map[string]heldLock) {
	fw.held = make(map[string]heldLock, len(m))
	for k, v := range m {
		fw.held[k] = v
	}
}

func mergeHeld(a, b map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(a)+len(b))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			va.must = va.must && vb.must
			if vb.level == "read" {
				va.level = "read"
			}
		} else {
			va.must = false
		}
		out[k] = va
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			vb.must = false
			out[k] = vb
		}
	}
	return out
}

// ---- expression walk ------------------------------------------------------

func (fw *funcWalker) expr(e ast.Expr, stmtPos bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		fw.call(e, stmtPos)
	case *ast.FuncLit:
		fw.anon(e)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			fw.chanOp(e.X, "recv")
		}
		fw.expr(e.X, false)
	case *ast.ParenExpr:
		fw.expr(e.X, stmtPos)
	case *ast.SelectorExpr:
		fw.expr(e.X, false)
	case *ast.BinaryExpr:
		fw.expr(e.X, false)
		fw.expr(e.Y, false)
	case *ast.StarExpr:
		fw.expr(e.X, false)
	case *ast.IndexExpr:
		fw.expr(e.X, false)
		fw.expr(e.Index, false)
	case *ast.SliceExpr:
		fw.expr(e.X, false)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				fw.expr(idx, false)
			}
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fw.expr(kv.Value, false)
			} else {
				fw.expr(el, false)
			}
		}
	case *ast.TypeAssertExpr:
		fw.expr(e.X, false)
	case *ast.KeyValueExpr:
		fw.expr(e.Key, false)
		fw.expr(e.Value, false)
	}
}

// anon walks a function literal as its own anonymous function: empty held
// set (it may run on another goroutine), edges shared with the package,
// summary discarded.
func (fw *funcWalker) anon(lit *ast.FuncLit) {
	fw.anonSum(lit)
}

func (fw *funcWalker) anonSum(lit *ast.FuncLit) *FuncSummary {
	inner := &funcWalker{
		w:        fw.w,
		name:     fw.name + ".func",
		root:     lit.Body,
		sum:      &FuncSummary{},
		held:     make(map[string]heldLock),
		deferred: make(map[string]bool),
		entry:    make(map[string]bool),
	}
	inner.stmts(lit.Body.List)
	return inner.sum
}

func (fw *funcWalker) call(call *ast.CallExpr, stmtPos bool) {
	info := fw.w.pass.TypesInfo
	fun := analysis.Unparen(call.Fun)

	if id, ok := fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			fw.chanOp(call.Args[0], "close")
			fw.expr(call.Args[0], false)
			return
		}
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok {
			if isLockMethod(sel.Sel.Name) && lockType(tv.Type) {
				// A lock call in value position (`if mu.TryLock()`) proves
				// nothing; only statement-position calls mutate held state.
				if stmtPos {
					fw.lockOp(sel)
				}
				fw.expr(sel.X, false)
				return
			}
			if isWgMethod(sel.Sel.Name) && wgType(tv.Type) {
				fw.wgOp(sel.X, strings.ToLower(sel.Sel.Name))
				fw.expr(sel.X, false)
				for _, a := range call.Args {
					fw.expr(a, false)
				}
				return
			}
		}
	}

	if callee := calleeOf(info, call); callee != nil {
		fw.splice(call, callee)
	}
	fw.expr(call.Fun, false)
	for _, a := range call.Args {
		fw.expr(a, false)
	}
}

// lockOp applies a statement-position Lock/Unlock-family call.
func (fw *funcWalker) lockOp(sel *ast.SelectorExpr) {
	class, field := fw.classOf(sel.X)
	if class == "" {
		return // local lock: instance-scoped, no class
	}
	pos := posStr(fw.w.pass.Fset, sel.Pos())
	switch sel.Sel.Name {
	case "Lock", "RLock":
		level := "write"
		if sel.Sel.Name == "RLock" {
			level = "read"
		}
		step := fmt.Sprintf("%s: %s acquires %s", pos, fw.name, class)
		for _, h := range sortedHeld(fw.held) {
			fw.w.edge(h, class, []string{step}, sel.Pos())
			fw.markEntryUsed(h.class)
		}
		fw.held[class] = heldLock{class: class, level: level, must: true, field: field, at: step}
		fw.addAcquire(class, []string{step})
	case "Unlock", "RUnlock":
		if h, ok := fw.held[class]; ok {
			fw.markEntryUsed(class)
			delete(fw.held, class)
			if fw.entry[class] {
				// Releasing a caller-held lock IS the function's contract:
				// export it so callers inherit the entry requirement.
				fw.addRelease(HeldLock{Class: class, Field: field, Level: h.level})
			}
			return
		}
		level := "write"
		if sel.Sel.Name == "RUnlock" {
			level = "read"
		}
		fw.addRelease(HeldLock{Class: class, Field: field, Level: level})
	}
}

// deferCall handles defer statements: a deferred unlock releases at
// return (the lock stays held for the rest of the walk), a deferred call
// contributes its releases and join events, a deferred literal is scanned
// for the same.
func (fw *funcWalker) deferCall(call *ast.CallExpr) {
	info := fw.w.pass.TypesInfo
	fun := analysis.Unparen(call.Fun)

	if id, ok := fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			fw.chanOp(call.Args[0], "close")
			return
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok {
			if isLockMethod(sel.Sel.Name) && lockType(tv.Type) {
				if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
					fw.deferRelease(sel)
				}
				return
			}
			if isWgMethod(sel.Sel.Name) && wgType(tv.Type) {
				fw.wgOp(sel.X, strings.ToLower(sel.Sel.Name))
				return
			}
		}
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		fw.deferLit(lit)
		return
	}
	if callee := calleeOf(info, call); callee != nil {
		if calleeSum := fw.w.lookup(callee); calleeSum != nil {
			for _, rel := range calleeSum.Releases {
				if _, ok := fw.held[rel.Class]; ok {
					fw.deferred[rel.Class] = true
				} else {
					fw.addRelease(HeldLock{Class: rel.Class, Field: fw.rebase(call, callee, rel.Field), Level: rel.Level})
				}
			}
			fw.mergeOps(calleeSum)
		}
	}
	for _, a := range call.Args {
		fw.expr(a, false)
	}
}

func (fw *funcWalker) deferRelease(sel *ast.SelectorExpr) {
	class, field := fw.classOf(sel.X)
	if class == "" {
		return
	}
	if h, ok := fw.held[class]; ok {
		fw.markEntryUsed(class)
		fw.deferred[class] = true
		if fw.entry[class] {
			fw.addRelease(HeldLock{Class: class, Field: field, Level: h.level})
		}
		return
	}
	level := "write"
	if sel.Sel.Name == "RUnlock" {
		level = "read"
	}
	fw.addRelease(HeldLock{Class: class, Field: field, Level: level})
}

// deferLit scans a deferred func literal for unlocks and channel signals
// (the common `defer func() { mu.Unlock(); close(done) }()` shapes).
func (fw *funcWalker) deferLit(lit *ast.FuncLit) {
	info := fw.w.pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit
		case *ast.CallExpr:
			fun := analysis.Unparen(n.Fun)
			if id, ok := fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					fw.chanOp(n.Args[0], "close")
				}
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && lockType(tv.Type) &&
					(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
					fw.deferRelease(sel)
				}
			}
		case *ast.SendStmt:
			fw.chanOp(n.Chan, "send")
		}
		return true
	})
}

// splice folds a callee's summary into the walk at a call site: its
// possible acquisitions extend ours (and order against everything held
// here), its net-held locks join the held set, its releases leave it.
func (fw *funcWalker) splice(call *ast.CallExpr, callee *types.Func) {
	calleeSum := fw.w.lookup(callee)
	if calleeSum == nil {
		return
	}
	fw.spliceMutates(call, calleeSum)
	callStep := fmt.Sprintf("%s: %s calls %s", posStr(fw.w.pass.Fset, call.Pos()), fw.name, callee.Name())

	for _, acq := range calleeSum.Acquires {
		path := append([]string{callStep}, acq.Path...)
		for _, h := range sortedHeld(fw.held) {
			fw.w.edge(h, acq.Class, path, call.Pos())
			fw.markEntryUsed(h.class)
		}
		fw.addAcquire(acq.Class, path)
	}
	for _, nh := range calleeSum.NetHeld {
		if _, ok := fw.held[nh.Class]; !ok {
			fw.held[nh.Class] = heldLock{class: nh.Class, level: nh.Level, must: true,
				field: fw.rebase(call, callee, nh.Field), at: callStep}
		}
	}
	for _, rel := range calleeSum.Releases {
		if _, ok := fw.held[rel.Class]; ok {
			fw.markEntryUsed(rel.Class)
			delete(fw.held, rel.Class)
		} else {
			fw.addRelease(HeldLock{Class: rel.Class, Field: fw.rebase(call, callee, rel.Field), Level: rel.Level})
		}
	}
	for _, need := range calleeSum.NeedsHeld {
		if _, ok := fw.held[need.Class]; !ok {
			fw.addNeed(HeldLock{Class: need.Class, Field: fw.rebase(call, callee, need.Field), Level: need.Level})
		} else {
			fw.markEntryUsed(need.Class)
		}
	}
	fw.mergeOps(calleeSum)
}

// rebase translates a callee's receiver-relative lock field onto this
// function's receiver: calling e.bt.helper() whose NetHeld field is "mu"
// yields "bt.mu" when e is our receiver. Empty when the chain does not
// root at our receiver.
func (fw *funcWalker) rebase(call *ast.CallExpr, callee *types.Func, field string) string {
	if field == "" || fw.recv == nil {
		return ""
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	rp, ok := relPath(fw.w.pass.TypesInfo, sel.X, fw.recv)
	if !ok {
		return ""
	}
	if rp == "" {
		return field
	}
	return rp + "." + field
}

func (fw *funcWalker) mergeOps(calleeSum *FuncSummary) {
	for _, c := range calleeSum.ChanOps {
		fw.addChanOp(c.Class, c.Op)
	}
	for _, g := range calleeSum.WgOps {
		fw.addWgOp(g.Class, g.Op)
	}
}

// ---- go statements --------------------------------------------------------

func (fw *funcWalker) goStmt(s *ast.GoStmt) {
	call := s.Call
	info := fw.w.pass.TypesInfo
	l := Launch{Pos: posStr(fw.w.pass.Fset, s.Pos())}
	joins := make(map[string]bool)

	if lit, ok := analysis.Unparen(call.Fun).(*ast.FuncLit); ok {
		litSum := fw.anonSum(lit)
		collectSignals(litSum, joins)
		l.Proof = fw.joinProof(lit)
	} else if callee := calleeOf(info, call); callee != nil {
		l.Callee = displayName(callee)
		if calleeSum := fw.w.lookup(callee); calleeSum != nil {
			collectSignals(calleeSum, joins)
		}
		fw.expr(call.Fun, false)
	} else {
		fw.expr(call.Fun, false)
	}
	for _, a := range call.Args {
		fw.expr(a, false)
	}

	for c := range joins {
		l.JoinClasses = append(l.JoinClasses, c)
	}
	sort.Strings(l.JoinClasses)
	fw.sum.Launches = append(fw.sum.Launches, l)
	fw.w.launches = append(fw.w.launches, LocalLaunch{Launch: l, Pos: s.Pos(), FuncName: fw.name})
}

// collectSignals gathers the join classes launched code signals on: channel
// sends/closes and WaitGroup Dones.
func collectSignals(sum *FuncSummary, into map[string]bool) {
	for _, c := range sum.ChanOps {
		if c.Op == "send" || c.Op == "close" {
			into[c.Class] = true
		}
	}
	for _, g := range sum.WgOps {
		if g.Op == "done" {
			into[g.Class] = true
		}
	}
}

// joinProof looks for launch-site join evidence: the literal signals on a
// WaitGroup or channel expression the enclosing function waits on or
// receives from.
func (fw *funcWalker) joinProof(lit *ast.FuncLit) string {
	info := fw.w.pass.TypesInfo
	wgSignals := make(map[string]bool)
	chSignals := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := analysis.Unparen(n.Fun)
			if id, ok := fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					chSignals[types.ExprString(analysis.Unparen(n.Args[0]))] = true
				}
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if tv, ok := info.Types[sel.X]; ok && wgType(tv.Type) {
					wgSignals[types.ExprString(analysis.Unparen(sel.X))] = true
				}
			}
		case *ast.SendStmt:
			chSignals[types.ExprString(analysis.Unparen(n.Chan))] = true
		}
		return true
	})
	if len(wgSignals) == 0 && len(chSignals) == 0 {
		return ""
	}
	proof := ""
	ast.Inspect(fw.root, func(n ast.Node) bool {
		if proof != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := analysis.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if tv, ok := info.Types[sel.X]; ok && wgType(tv.Type) &&
					wgSignals[types.ExprString(analysis.Unparen(sel.X))] {
					proof = "waitgroup"
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chSignals[types.ExprString(analysis.Unparen(n.X))] {
				proof = "channel"
			}
		case *ast.RangeStmt:
			if chSignals[types.ExprString(analysis.Unparen(n.X))] {
				proof = "channel"
			}
		}
		return true
	})
	return proof
}

// ---- channel / waitgroup events -------------------------------------------

func (fw *funcWalker) chanOp(e ast.Expr, op string) {
	if class, _ := fw.classOf(e); class != "" {
		fw.addChanOp(class, op)
	}
}

func (fw *funcWalker) wgOp(e ast.Expr, op string) {
	if class, _ := fw.classOf(e); class != "" {
		fw.addWgOp(class, op)
	}
}

// ---- effect (mutation) tracking -------------------------------------------

// mutateLhs records a caller-visible unsynchronized store: the lvalue roots
// at a parameter or the receiver and its access chain crosses a reference
// (pointer deref, slice/map index, or selector through a pointer), so the
// write lands in memory the caller can observe. Writes while any lock is
// held count as synchronized and are skipped — whether the lock is the
// RIGHT one is lockguard's question, not the effect summary's.
func (fw *funcWalker) mutateLhs(e ast.Expr) {
	if len(fw.held) > 0 {
		return
	}
	if root, escapes := lvalueRoot(fw.w.pass.TypesInfo, e); escapes {
		fw.mutateObj(root)
	}
}

func (fw *funcWalker) mutateObj(root types.Object) {
	if root == nil {
		return
	}
	if fw.recv != nil && root == fw.recv {
		fw.addMutates(-1)
		return
	}
	for i, p := range fw.params {
		if p != nil && root == p {
			fw.addMutates(i)
			return
		}
	}
}

func (fw *funcWalker) addMutates(i int) {
	for _, m := range fw.sum.Mutates {
		if m == i {
			return
		}
	}
	fw.sum.Mutates = append(fw.sum.Mutates, i)
}

// spliceMutates propagates a callee's mutation effects to this function's
// summary: callee writes through argument j (receiver for -1), and that
// argument reaches back to one of our parameters or our receiver, so the
// effect is ours too. Mutations of locals stay confined and vanish here.
func (fw *funcWalker) spliceMutates(call *ast.CallExpr, calleeSum *FuncSummary) {
	if len(fw.held) > 0 || len(calleeSum.Mutates) == 0 {
		return
	}
	for _, j := range calleeSum.Mutates {
		var arg ast.Expr
		if j == -1 {
			if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				arg = sel.X
			}
		} else if j >= 0 && j < len(call.Args) {
			arg = call.Args[j]
		}
		if arg == nil {
			continue
		}
		if root, escapes := argMutationRoot(fw.w.pass.TypesInfo, arg); escapes {
			fw.mutateObj(root)
		}
	}
}

// lvalueRoot unwraps an lvalue to its root object and reports whether the
// access chain crosses a reference — a pointer dereference, a slice or map
// index, or a selector through a pointer — meaning a store through the
// chain is visible beyond the root variable itself. A bare identifier
// never escapes: `p = v` rebinds the local copy.
func lvalueRoot(info *types.Info, e ast.Expr) (types.Object, bool) {
	escapes := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			escapes = true
			e = x.X
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					escapes = true
				}
			}
			e = x.X
		case *ast.SelectorExpr:
			if obj := info.Uses[x.Sel]; obj != nil {
				if v, ok := obj.(*types.Var); ok && !v.IsField() {
					return v, escapes // qualified package-level var
				}
			}
			if tv, ok := info.Types[x.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					escapes = true
				}
			}
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj, escapes
		default:
			return nil, false
		}
	}
}

// argMutationRoot resolves the root of an argument a callee writes
// through. `&x` mutates the lvalue x (the lvalue rule applies); a
// reference-typed argument shares its pointee with the caller, so a bare
// `p` of pointer/slice/map type escapes as-is; a value-typed expression
// (an implicitly addressed method receiver) falls back to the lvalue rule.
func argMutationRoot(info *types.Info, e ast.Expr) (types.Object, bool) {
	e = analysis.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		return lvalueRoot(info, u.X)
	}
	root, chainEscapes := lvalueRoot(info, e)
	if tv, ok := info.Types[e]; ok {
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
			return root, true
		}
	}
	return root, chainEscapes
}

// ---- summary accumulation (deduplicated, walk order) ----------------------

func (fw *funcWalker) addAcquire(class string, path []string) {
	for _, a := range fw.sum.Acquires {
		if a.Class == class {
			return
		}
	}
	if len(path) > maxPath {
		path = append(path[:maxPath:maxPath], "...")
	}
	fw.sum.Acquires = append(fw.sum.Acquires, Acquire{Class: class, Path: path})
}

func (fw *funcWalker) addRelease(h HeldLock) {
	fw.addNeed(h)
	for _, r := range fw.sum.Releases {
		if r.Class == h.Class {
			return
		}
	}
	fw.sum.Releases = append(fw.sum.Releases, h)
}

func (fw *funcWalker) addNeed(h HeldLock) {
	for _, n := range fw.sum.NeedsHeld {
		if n.Class == h.Class {
			return
		}
	}
	fw.sum.NeedsHeld = append(fw.sum.NeedsHeld, h)
}

func (fw *funcWalker) markEntryUsed(class string) {
	if !fw.entry[class] {
		return
	}
	for _, c := range fw.sum.UsedEntry {
		if c == class {
			return
		}
	}
	fw.sum.UsedEntry = append(fw.sum.UsedEntry, class)
}

func (fw *funcWalker) addChanOp(class, op string) {
	for _, c := range fw.sum.ChanOps {
		if c.Class == class && c.Op == op {
			return
		}
	}
	fw.sum.ChanOps = append(fw.sum.ChanOps, ChanOp{Class: class, Op: op})
}

func (fw *funcWalker) addWgOp(class, op string) {
	for _, g := range fw.sum.WgOps {
		if g.Class == class && g.Op == op {
			return
		}
	}
	fw.sum.WgOps = append(fw.sum.WgOps, WgOp{Class: class, Op: op})
}

// ---- classification helpers -----------------------------------------------

// classOf abstracts a lock/chan/WaitGroup expression to its global class:
// pkgpath.Type.field for struct fields, pkgpath.name for package-level
// vars, "" for locals. The second result is the receiver-relative selector
// path when the expression roots at the current function's receiver.
func (fw *funcWalker) classOf(e ast.Expr) (string, string) {
	info := fw.w.pass.TypesInfo
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), ""
		}
	case *ast.SelectorExpr:
		fobj, ok := info.Uses[e.Sel].(*types.Var)
		if !ok {
			return "", ""
		}
		if !fobj.IsField() {
			// pkg.Var: a package-level lock reached through a qualifier.
			if fobj.Pkg() != nil && fobj.Parent() == fobj.Pkg().Scope() {
				return fobj.Pkg().Path() + "." + fobj.Name(), ""
			}
			return "", ""
		}
		tv, ok := info.Types[e.X]
		if !ok {
			return "", ""
		}
		named, ok := derefNamed(tv.Type)
		if !ok || named.Obj().Pkg() == nil {
			return "", ""
		}
		class := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
		field := ""
		if rp, ok := relPath(info, e, fw.recv); ok {
			field = rp
		}
		return class, field
	}
	return "", ""
}

// relPath returns the selector path from recv to e ("" when e is recv
// itself), or ok=false when e does not root at recv.
func relPath(info *types.Info, e ast.Expr, recv types.Object) (string, bool) {
	if recv == nil {
		return "", false
	}
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		if info.Uses[e] == recv {
			return "", true
		}
	case *ast.SelectorExpr:
		if p, ok := relPath(info, e.X, recv); ok {
			if p == "" {
				return e.Sel.Name, true
			}
			return p + "." + e.Sel.Name, true
		}
	}
	return "", false
}

func sortedHeld(held map[string]heldLock) []heldLock {
	out := make([]heldLock, 0, len(held))
	for _, h := range held {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].class < out[j].class })
	return out
}

// CalleeOf resolves the statically-known callee of a call expression, or
// nil (builtin, conversion, or dynamic call). Shared by the summary
// consumers (lockguard, holdinfer).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	return calleeOf(info, call)
}

func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := analysis.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func isLockMethod(name string) bool {
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

func isWgMethod(name string) bool {
	switch name {
	case "Add", "Done", "Wait":
		return true
	}
	return false
}

func lockType(t types.Type) bool {
	return namedFrom(t, "sync", "Mutex") || namedFrom(t, "sync", "RWMutex")
}

func wgType(t types.Type) bool {
	return namedFrom(t, "sync", "WaitGroup")
}

func namedFrom(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

func displayName(obj *types.Func) string {
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := derefNamed(sig.Recv().Type()); ok {
			return named.Obj().Name() + "." + obj.Name()
		}
	}
	return obj.Name()
}

func posStr(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// terminates reports whether a block always leaves the enclosing statement
// on its final statement (shared shape with lockguard's walk).
func terminates(b *ast.BlockStmt) bool {
	return terminatesList(b.List)
}

func terminatesList(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return terminatesStmt(list[len(list)-1])
}

func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminatesStmt(s.Else)
	}
	return false
}
