// Package summary computes per-function concurrency summaries: which lock
// classes a function may acquire (transitively, through calls), which locks
// it returns still holding or releases on behalf of its caller, which
// goroutines it launches, and which channel/WaitGroup join edges it
// participates in. The summaries are exported as gob facts, so both drivers
// — the standalone loader and the `go vet -vettool` unitchecker — see them
// across package boundaries; the lockorder, goroutinelife and holdinfer
// analyzers, and the summary-aware half of lockguard, are layered on top.
//
// # The model
//
// Locks are abstracted to classes: `pkgpath.Type.field` for a mutex field
// (whatever expression it is reached through) and `pkgpath.name` for a
// package-level mutex. Locks held in local variables have no class and are
// invisible — they are instance-scoped and cannot participate in a global
// order. Mutexes embedded anonymously (promoted Lock methods) are likewise
// not classified, matching lockguard.
//
// Within one function the walk tracks the held set path-sensitively the
// same way lockguard does (branch merge, terminator heuristic, deferred
// unlocks releasing at return). Every acquisition while other classes are
// held emits a lock-order edge; every call site splices the callee's
// summary — its possible acquisitions extend the caller's, with the call
// step prepended to the acquisition path, and its net-held and released
// locks update the caller's held set. A `go` statement deliberately does
// NOT splice: the launched code runs concurrently, so its acquisitions
// order against nothing in the launcher (they still produce edges of their
// own, from the goroutine's internal nesting).
package summary

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer computes the summaries. It reports no diagnostics itself; it
// exists for its facts and its Result.
var Analyzer = &analysis.Analyzer{
	Name:      "summary",
	Doc:       "computes per-function concurrency summaries (lock classes, goroutine launches, join edges) for the interprocedural analyzers",
	FactTypes: []analysis.Fact{(*FuncFact)(nil), (*PkgFact)(nil)},
	Run:       run,
}

// Acquire is one lock class a function may (transitively) acquire, with a
// human-readable acquisition path from the function's entry.
type Acquire struct {
	Class string
	// Path lists the steps from the function's entry to the acquisition,
	// each "file:line: who does what"; capped, with "..." marking truncation.
	Path []string
}

// HeldLock names a lock class with the receiver-relative selector path to
// reach it (empty when the lock is not a field of the receiver) and how
// strongly it is held ("read" or "write").
type HeldLock struct {
	Class string
	// Field is the selector path from the function's receiver ("mu",
	// "bt.mu"), letting a caller rebase the lock onto its own expression
	// for the callee's receiver; empty for package-level locks or locks
	// not reached through the receiver.
	Field string
	Level string
}

// Launch is one `go` statement in a function.
type Launch struct {
	Pos    string // "file:line" of the go statement
	Callee string // launched named function, "" for a func literal
	// Proof is the join evidence found at the launch site itself:
	// "waitgroup" (Done inside, Wait in the launcher), "channel" (send or
	// close inside, receive in the launcher), or "" when the site alone
	// proves nothing.
	Proof string
	// JoinClasses lists the chan/WaitGroup classes the launched code
	// signals on (send, close, or Done); goroutinelife matches them against
	// receivers elsewhere — the graceful-shutdown drain pattern.
	JoinClasses []string
}

// ChanOp is a send/close/recv on a classifiable channel (a struct field or
// package-level var).
type ChanOp struct {
	Class string
	Op    string // "send", "close", "recv"
}

// WgOp is an Add/Done/Wait on a classifiable sync.WaitGroup.
type WgOp struct {
	Class string
	Op    string // "add", "done", "wait"
}

// FuncSummary is the concurrency behavior of one function, as visible to
// its callers.
type FuncSummary struct {
	// Acquires lists every lock class the function may acquire, directly
	// or through calls.
	Acquires []Acquire
	// NetHeld lists locks held on return that were not held on entry
	// (a lock-and-return helper).
	NetHeld []HeldLock
	// Releases lists locks the function unlocks without acquiring — it
	// releases them on behalf of the caller.
	Releases []HeldLock
	// NeedsHeld lists locks inferred to be required on entry (from
	// Releases and from propagated callee needs); holdinfer compares them
	// against propview:holds annotations.
	NeedsHeld []HeldLock
	// UsedEntry lists propview:holds classes the body demonstrably relies
	// on: it unlocks them, acquires other locks under them, or passes them
	// to callees that need them. A holds annotation whose class never
	// appears here (and guards no accessed field) is stale.
	UsedEntry []string
	// Launches lists the function's go statements.
	Launches []Launch
	// ChanOps and WgOps record join-protocol events on classifiable
	// channels and WaitGroups, including those of callees.
	ChanOps []ChanOp
	WgOps   []WgOp
	// Mutates lists the parameter indices the function writes through
	// without synchronization — a caller-visible effect: stores through a
	// pointer/slice/map parameter (directly or via callees), with -1 for
	// the receiver. Writes under a held lock and atomic operations are
	// excluded, so a mutex- or atomics-protected helper stays effect-free.
	// parslot uses this to catch captured-state mutation smuggled into a
	// parallel worker through a helper call.
	Mutates []int
}

func (s *FuncSummary) empty() bool {
	return len(s.Acquires) == 0 && len(s.NetHeld) == 0 && len(s.Releases) == 0 &&
		len(s.NeedsHeld) == 0 && len(s.UsedEntry) == 0 && len(s.Launches) == 0 &&
		len(s.ChanOps) == 0 && len(s.WgOps) == 0 && len(s.Mutates) == 0
}

// FuncFact exports a function's summary across package boundaries.
type FuncFact struct{ S FuncSummary }

func (*FuncFact) AFact() {}

// Edge is one lock-order observation: From was held when To was acquired.
type Edge struct {
	From, To string
	// Path is the acquisition path: where From was taken, then the steps
	// (calls and acquisitions) leading to To.
	Path []string
}

// PkgFact aggregates a package's contribution to the global concurrency
// picture: its lock-order edges and the join classes its functions receive
// from or wait on (the other half of a cross-function drain edge).
type PkgFact struct {
	Edges []Edge
	Joins []string
}

func (*PkgFact) AFact() {}

// LocalEdge is an Edge with a live position for reporting.
type LocalEdge struct {
	Edge
	Pos token.Pos
}

// LocalLaunch is a Launch with a live position and its enclosing function.
type LocalLaunch struct {
	Launch
	Pos      token.Pos
	FuncName string
}

// Result is the in-memory view dependent analyzers read via Pass.ResultOf.
type Result struct {
	// Funcs maps this package's functions to their summaries.
	Funcs map[*types.Func]*FuncSummary
	// Edges are the lock-order edges observed in this package (including
	// edges spliced through calls into other packages).
	Edges []LocalEdge
	// Launches are this package's go statements.
	Launches []LocalLaunch
	// Joins are the chan/WaitGroup classes some function in this package
	// receives from or waits on.
	Joins map[string]bool
}

func run(pass *analysis.Pass) (any, error) {
	w := newWork(pass)

	// Summaries of mutually-recursive or forward-referenced functions feed
	// each other, so iterate Jacobi-style to a fixpoint: each round reads
	// the previous round's summaries and rebuilds everything from scratch
	// (edges and launches included, so nothing is double-counted).
	prev := ""
	for iter := 0; iter <= len(w.decls)+1; iter++ {
		w.reset()
		for _, d := range w.decls {
			w.walkFunc(d)
		}
		w.sums = w.next
		sig := signature(w.sums)
		if sig == prev {
			break
		}
		prev = sig
	}

	sort.Slice(w.edges, func(i, j int) bool {
		a, b := w.edges[i], w.edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})

	joins := make(map[string]bool)
	for _, sum := range w.sums {
		for _, c := range sum.ChanOps {
			if c.Op == "recv" {
				joins[c.Class] = true
			}
		}
		for _, g := range sum.WgOps {
			if g.Op == "wait" {
				joins[g.Class] = true
			}
		}
	}

	for obj, sum := range w.sums {
		if !sum.empty() {
			pass.ExportObjectFact(obj, &FuncFact{S: *sum})
		}
	}
	pkgEdges := make([]Edge, len(w.edges))
	for i, e := range w.edges {
		pkgEdges[i] = e.Edge
	}
	joinList := make([]string, 0, len(joins))
	for c := range joins {
		joinList = append(joinList, c)
	}
	sort.Strings(joinList)
	if len(pkgEdges) > 0 || len(joinList) > 0 {
		pass.ExportPackageFact(&PkgFact{Edges: pkgEdges, Joins: joinList})
	}

	return &Result{Funcs: w.sums, Edges: w.edges, Launches: w.launches, Joins: joins}, nil
}

// signature renders the summary map deterministically, for fixpoint
// comparison. Within one round every slice is appended in walk order, so
// equal behavior yields equal strings.
func signature(sums map[*types.Func]*FuncSummary) string {
	keys := make([]*types.Func, 0, len(sums))
	for f := range sums {
		keys = append(keys, f)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].FullName() < keys[j].FullName() })
	var sb []byte
	for _, f := range keys {
		sb = fmt.Appendf(sb, "%s: %+v\n", f.FullName(), *sums[f])
	}
	return string(sb)
}
