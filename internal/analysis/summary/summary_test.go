package summary_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/summary"
)

const probeSrc = `package probe

import "sync"

type T struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

var gate sync.Mutex

// lockIt returns holding the receiver's mutex.
func (t *T) lockIt() {
	t.mu.Lock()
}

// unlockIt releases on the caller's behalf.
func (t *T) unlockIt() {
	t.mu.Unlock()
}

// nested acquires gate under t.mu, all through helpers.
func (t *T) nested() {
	t.lockIt()
	gate.Lock()
	gate.Unlock()
	t.unlockIt()
}

// launch starts a worker the WaitGroup joins.
func (t *T) launch() {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
	}()
	t.wg.Wait()
}
`

// TestSummaryContents pins down the summary model on a probe package: a
// lock-and-return helper has NetHeld, its inverse has Releases and
// NeedsHeld, a caller composing the two acquires both locks with a
// nesting edge, and a go statement gets a waitgroup proof.
func TestSummaryContents(t *testing.T) {
	var res *summary.Result
	probe := &analysis.Analyzer{
		Name:     "probe",
		Doc:      "captures the summary result for inspection",
		Requires: []*analysis.Analyzer{summary.Analyzer},
		Run: func(pass *analysis.Pass) (any, error) {
			res = pass.ResultOf[summary.Analyzer].(*summary.Result)
			return nil, nil
		},
	}
	analysistest.RunFiles(t, probe, "probe", map[string]string{"probe.go": probeSrc})
	if res == nil {
		t.Fatal("probe analyzer never ran")
	}

	sums := make(map[string]*summary.FuncSummary)
	for obj, sum := range res.Funcs {
		sums[obj.Name()] = sum
	}

	lockIt := sums["lockIt"]
	if len(lockIt.NetHeld) != 1 || lockIt.NetHeld[0].Class != "probe.T.mu" ||
		lockIt.NetHeld[0].Field != "mu" || lockIt.NetHeld[0].Level != "write" {
		t.Errorf("lockIt.NetHeld = %+v, want one write-held probe.T.mu via field mu", lockIt.NetHeld)
	}

	unlockIt := sums["unlockIt"]
	if len(unlockIt.Releases) != 1 || unlockIt.Releases[0].Class != "probe.T.mu" {
		t.Errorf("unlockIt.Releases = %+v, want probe.T.mu", unlockIt.Releases)
	}
	if len(unlockIt.NeedsHeld) != 1 || unlockIt.NeedsHeld[0].Class != "probe.T.mu" {
		t.Errorf("unlockIt.NeedsHeld = %+v, want probe.T.mu", unlockIt.NeedsHeld)
	}

	nested := sums["nested"]
	acq := make(map[string]bool)
	for _, a := range nested.Acquires {
		acq[a.Class] = true
	}
	if !acq["probe.T.mu"] || !acq["probe.gate"] {
		t.Errorf("nested.Acquires = %+v, want both probe.T.mu and probe.gate (spliced through helpers)", nested.Acquires)
	}
	if len(nested.NetHeld) != 0 {
		t.Errorf("nested.NetHeld = %+v, want empty (balanced through helpers)", nested.NetHeld)
	}

	foundEdge := false
	for _, e := range res.Edges {
		if e.From == "probe.T.mu" && e.To == "probe.gate" {
			foundEdge = true
			if len(e.Path) == 0 {
				t.Error("edge probe.T.mu -> probe.gate has no acquisition path")
			}
		}
	}
	if !foundEdge {
		t.Errorf("edges %+v missing probe.T.mu -> probe.gate", res.Edges)
	}

	launch := sums["launch"]
	if len(launch.Launches) != 1 || launch.Launches[0].Proof != "waitgroup" {
		t.Errorf("launch.Launches = %+v, want one launch with waitgroup proof", launch.Launches)
	}
}
