package driver

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// testlint flags every function whose name starts with Bad — a minimal
// diagnostic source for exercising the //lint:ignore machinery.
var testlint = &analysis.Analyzer{
	Name: "testlint",
	Doc:  "reports functions named Bad* (test helper)",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
					pass.Reportf(fd.Pos(), "bad function %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

const directiveSrc = `package dirs

//lint:ignore testlint justified suppression
func Bad1() {}

//lint:ignore testlint
func Bad2() {}

//lint:ignore nosuch the analyzer name is wrong
func Bad3() {}

//lint:ignore
func Bad4() {}

//lint:ignore testlint parked on its own, nothing adjacent

func Good() {}
`

func loadDirs(t *testing.T) ([]Finding, []Finding) {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "dirs")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dirs.go"), []byte(directiveSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	loader := &load.Loader{SrcDirs: []string{root}}
	pkgs, err := loader.Load("dirs")
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := RunStats([]*analysis.Analyzer{testlint}, loader.Fset, pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var active, suppressed []Finding
	for _, f := range all {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		} else {
			active = append(active, f)
		}
	}
	return active, suppressed
}

// TestDirectiveEdgeCases covers the //lint:ignore failure modes: a missing
// justification, an unknown analyzer name, a bare directive, and a
// directive parked on its own line away from any diagnostic. Each is
// reported under the lintdirective name, never silently accepted, and none
// of them suppress the diagnostic they sit near.
func TestDirectiveEdgeCases(t *testing.T) {
	active, suppressed := loadDirs(t)

	// Bad1's diagnostic is the only suppressed one: its directive is
	// well-formed, names the right analyzer, and sits on the line above.
	if len(suppressed) != 1 || !strings.Contains(suppressed[0].Message, "Bad1") {
		t.Fatalf("want exactly Bad1 suppressed, got %v", suppressed)
	}

	want := []struct{ analyzer, substr string }{
		{"testlint", "bad function Bad2"}, // missing justification: not suppressed
		{"testlint", "bad function Bad3"}, // unknown analyzer: not suppressed
		{"testlint", "bad function Bad4"}, // bare directive: not suppressed
		{DirectiveAnalyzer, "missing justification"},
		{DirectiveAnalyzer, `unknown analyzer "nosuch"`},
		{DirectiveAnalyzer, "missing analyzer name and justification"},
		{DirectiveAnalyzer, "unused //lint:ignore directive for testlint"},
	}
	for _, w := range want {
		found := false
		for _, f := range active {
			if f.Analyzer == w.analyzer && strings.Contains(f.Message, w.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing active finding %q (%s); got %v", w.substr, w.analyzer, active)
		}
	}
	if len(active) != len(want) {
		t.Errorf("want %d active findings, got %d: %v", len(want), len(active), active)
	}
}

// TestRunFiltersSuppressed pins the Run/RunStats split: Run drops
// suppressed findings (the analysistest contract), RunStats keeps them
// flagged for the -json printers.
func TestRunFiltersSuppressed(t *testing.T) {
	active, suppressed := loadDirs(t)
	if len(suppressed) == 0 {
		t.Fatal("fixture produced no suppressed findings")
	}
	for _, f := range active {
		if f.Suppressed {
			t.Errorf("active set contains suppressed finding %v", f)
		}
	}
}
