package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// StandaloneOptions carries the whole-module extras of standalone mode;
// both are opt-in and inert when empty.
type StandaloneOptions struct {
	// BudgetPath names a suppression-budget file; when set, per-analyzer
	// //lint:ignore counts over the analyzed module are compared against it
	// and growth beyond the checked-in ceiling fails the run.
	BudgetPath string
	// StatsPath names a JSON file to write per-analyzer wall-clock,
	// diagnostic and suppression counts to (the BENCH_PR.json `analysis`
	// record; see cmd/benchjson -analysis).
	StatsPath string
	// Workers bounds per-package parallelism; 0 means GOMAXPROCS. Mostly
	// for measuring the parallel driver against -workers=1.
	Workers int
	// JSON switches the finding printer to one JSON object per line
	// (analyzer, file, line, col, message, suppressed). Suppressed findings
	// are included — flagged, not dropped — so CI can render the full
	// picture; the exit code still considers active findings only.
	JSON bool
}

// jsonFinding is the -json wire form: one object per output line.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func printJSON(w io.Writer, findings []Finding) {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		// Encode never fails on this shape; ignore the error to keep the
		// printer total.
		enc.Encode(jsonFinding{
			Analyzer:   f.Analyzer,
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
	}
}

// AnalyzerStat is one analyzer's row in the stats record.
type AnalyzerStat struct {
	Name         string  `json:"name"`
	WallMS       float64 `json:"wall_ms"`
	Diagnostics  int     `json:"diagnostics"`
	Suppressions int     `json:"suppressions"`
}

// Stats is the `analysis` record emitted by -stats: what the run cost and
// what it found, tracked in CI alongside the perf benchmarks.
type Stats struct {
	Packages  int            `json:"packages"`
	WallMS    float64        `json:"wall_ms"`
	Findings  int            `json:"findings"`
	Analyzers []AnalyzerStat `json:"analyzers"`
}

// Standalone runs the analyzers over the module containing the working
// directory, type-checking from source. Patterns default to ./... .
// Returns the process exit code (0 clean, 1 error or budget violation,
// 2 findings).
func Standalone(patterns []string, analyzers []*analysis.Analyzer, opt StandaloneOptions) int {
	wd, err := os.Getwd()
	if err != nil {
		return errExit(err)
	}
	modDir, modPath, goVersion, err := findModule(wd)
	if err != nil {
		return errExit(err)
	}
	loader := &load.Loader{ModulePath: modPath, ModuleDir: modDir, GoVersion: goVersion}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return errExit(err)
	}
	if opt.Workers > 0 {
		Workers = opt.Workers
	}
	durations := NewDurations()
	start := time.Now()
	findings, npkgs, err := RunStats(analyzers, loader.Fset, pkgs, durations)
	wall := time.Since(start)
	if err != nil {
		return errExit(err)
	}
	var active []Finding
	for _, f := range findings {
		if !f.Suppressed {
			active = append(active, f)
		}
	}
	if opt.JSON {
		printJSON(os.Stdout, findings)
	} else {
		for _, f := range active {
			fmt.Println(f)
		}
	}

	code := 0
	if len(active) > 0 {
		code = 2
	}

	counts := CountSuppressions(loader.Fset, pkgs)
	if opt.BudgetPath != "" {
		budget, err := ParseBudget(opt.BudgetPath)
		if err != nil {
			return errExit(err)
		}
		over, under := CheckBudget(counts, budget)
		for _, msg := range under {
			fmt.Fprintf(os.Stderr, "note: %s\n", msg)
		}
		if len(over) > 0 {
			for _, msg := range over {
				fmt.Fprintf(os.Stderr, "suppression budget exceeded: %s\n", msg)
			}
			fmt.Fprintf(os.Stderr, "either remove the new //lint:ignore sites or raise %s with a justification\n", opt.BudgetPath)
			if code == 0 {
				code = 1
			}
		}
	}

	if opt.StatsPath != "" {
		if err := writeStats(opt.StatsPath, analyzers, durations, active, counts, npkgs, wall); err != nil {
			return errExit(err)
		}
	}
	return code
}

func writeStats(path string, analyzers []*analysis.Analyzer, durations *Durations,
	findings []Finding, suppressions map[string]int, npkgs int, wall time.Duration) error {
	perAnalyzer := make(map[string]int)
	for _, f := range findings {
		perAnalyzer[f.Analyzer]++
	}
	stats := Stats{
		Packages: npkgs,
		WallMS:   float64(wall.Microseconds()) / 1000,
		Findings: len(findings),
	}
	for _, a := range Expand(analyzers) {
		stats.Analyzers = append(stats.Analyzers, AnalyzerStat{
			Name:         a.Name,
			WallMS:       float64(durations.Get(a.Name).Microseconds()) / 1000,
			Diagnostics:  perAnalyzer[a.Name],
			Suppressions: suppressions[a.Name],
		})
	}
	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// ParseBudget reads a suppression-budget file: one `analyzer count` pair
// per line, # comments and blank lines ignored. An analyzer absent from
// the file has budget zero.
func ParseBudget(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	budget := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var n int
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want `analyzer count`, got %q", path, i+1, line)
		}
		if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, i+1, fields[1])
		}
		budget[fields[0]] = n
	}
	return budget, nil
}

// CheckBudget compares per-analyzer suppression counts against the budget.
// over lists analyzers past their ceiling (a failure); under lists
// analyzers whose actual count dropped below it (an invitation to ratchet
// the budget down, not a failure).
func CheckBudget(counts, budget map[string]int) (over, under []string) {
	names := make([]string, 0, len(counts)+len(budget))
	seen := make(map[string]bool)
	for n := range counts {
		names = append(names, n)
		seen[n] = true
	}
	for n := range budget {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		switch c, b := counts[n], budget[n]; {
		case c > b:
			over = append(over, fmt.Sprintf("%s: %d //lint:ignore sites, budget %d", n, c, b))
		case c < b:
			under = append(under, fmt.Sprintf("%s: %d //lint:ignore sites, budget %d — the budget can be lowered", n, c, b))
		}
	}
	return over, under
}

// findModule locates the enclosing go.mod and reads its module path and
// language version.
func findModule(dir string) (modDir, modPath, goVersion string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					modPath = strings.TrimSpace(rest)
				} else if rest, ok := strings.CutPrefix(line, "go "); ok {
					goVersion = "go" + strings.TrimSpace(rest)
				}
			}
			if modPath == "" {
				return "", "", "", fmt.Errorf("driver: %s/go.mod has no module line", d)
			}
			return d, modPath, goVersion, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", "", fmt.Errorf("driver: no go.mod at or above %s", dir)
		}
		d = parent
	}
}
