package driver

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Standalone runs the analyzers over the module containing the working
// directory, type-checking from source. Patterns default to ./... .
// Returns the process exit code (0 clean, 1 error, 2 findings).
func Standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	wd, err := os.Getwd()
	if err != nil {
		return errExit(err)
	}
	modDir, modPath, goVersion, err := findModule(wd)
	if err != nil {
		return errExit(err)
	}
	loader := &load.Loader{ModulePath: modPath, ModuleDir: modDir, GoVersion: goVersion}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return errExit(err)
	}
	findings, err := Run(analyzers, loader.Fset, pkgs)
	if err != nil {
		return errExit(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// findModule locates the enclosing go.mod and reads its module path and
// language version.
func findModule(dir string) (modDir, modPath, goVersion string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					modPath = strings.TrimSpace(rest)
				} else if rest, ok := strings.CutPrefix(line, "go "); ok {
					goVersion = "go" + strings.TrimSpace(rest)
				}
			}
			if modPath == "" {
				return "", "", "", fmt.Errorf("driver: %s/go.mod has no module line", d)
			}
			return d, modPath, goVersion, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", "", fmt.Errorf("driver: no go.mod at or above %s", dir)
		}
		d = parent
	}
}
