package driver

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/summary"
)

// TestVetxRoundTrip proves summary facts — the nested-slice gob payload
// the interprocedural analyzers depend on — survive the .vetx
// serialization boundary intact.
func TestVetxRoundTrip(t *testing.T) {
	funcFact := &summary.FuncFact{S: summary.FuncSummary{
		Acquires: []summary.Acquire{{Class: "p.T.mu", Path: []string{"p.go:3: lockIt acquires p.T.mu"}}},
		NetHeld:  []summary.HeldLock{{Class: "p.T.mu", Field: "mu", Level: "write"}},
		Releases: []summary.HeldLock{{Class: "p.gate", Level: "read"}},
		Launches: []summary.Launch{{Pos: "p.go:9", Callee: "T.run", Proof: "channel", JoinClasses: []string{"p.T.done"}}},
		ChanOps:  []summary.ChanOp{{Class: "p.T.done", Op: "close"}},
		WgOps:    []summary.WgOp{{Class: "p.T.wg", Op: "wait"}},
		Mutates:  []int{-1, 1},
	}}
	orderFact := &summary.OrderFact{S: summary.OrderSummary{
		MapOrdered:    []bool{true, false},
		Nondet:        []string{"time.Now at p.go:12"},
		Deterministic: true,
		Fanout:        true,
	}}
	pkgFact := &summary.PkgFact{
		Edges: []summary.Edge{{From: "p.T.mu", To: "p.gate", Path: []string{"p.go:3: nested acquires p.gate"}}},
		Joins: []string{"p.T.done"},
	}

	out := NewFacts()
	out.m["p\x00T.lockIt\x00*summary.FuncFact"] = funcFact
	out.m["p\x00\x00*summary.PkgFact"] = pkgFact
	out.m["p\x00Spread\x00*summary.OrderFact"] = orderFact

	path := filepath.Join(t.TempDir(), "p.vetx")
	if err := out.writeVetx(path); err != nil {
		t.Fatalf("writeVetx: %v", err)
	}

	in := NewFacts()
	if err := in.readVetx(path, factRegistry([]*analysis.Analyzer{summary.Analyzer, summary.Order})); err != nil {
		t.Fatalf("readVetx: %v", err)
	}
	if len(in.m) != 3 {
		t.Fatalf("round-tripped %d facts, want 3", len(in.m))
	}
	got := in.m["p\x00T.lockIt\x00*summary.FuncFact"]
	if !reflect.DeepEqual(got, funcFact) {
		t.Errorf("FuncFact round trip:\n got %+v\nwant %+v", got, funcFact)
	}
	gotPkg := in.m["p\x00\x00*summary.PkgFact"]
	if !reflect.DeepEqual(gotPkg, pkgFact) {
		t.Errorf("PkgFact round trip:\n got %+v\nwant %+v", gotPkg, pkgFact)
	}
	gotOrder := in.m["p\x00Spread\x00*summary.OrderFact"]
	if !reflect.DeepEqual(gotOrder, orderFact) {
		t.Errorf("OrderFact round trip:\n got %+v\nwant %+v", gotOrder, orderFact)
	}
}

// TestVettoolFactFlow is the end-to-end half: build propviewlint, run it
// under a real `go vet -vettool` over a two-package scratch module whose
// client inverts the base package's lock order, and require the
// cross-package cycle diagnostic. The inversion is only visible if base's
// summary facts reach the client's separate vet invocation through the
// gob .vetx files — exactly the boundary this test pins.
func TestVettoolFactFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "propviewlint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/propviewlint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building propviewlint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module order\n\ngo 1.21\n")
	write("base/base.go", `package base

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
)

func LockBoth() {
	MuA.Lock()
	MuB.Lock()
}

func UnlockBoth() {
	MuB.Unlock()
	MuA.Unlock()
}

// For runs fn over 0..n-1.
//
// propview:fanout
func For(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`)
	write("client/client.go", `package client

import "order/base"

func Transfer() {
	base.MuB.Lock()
	base.MuA.Lock()
	base.MuA.Unlock()
	base.MuB.Unlock()
}

func Gather() []int {
	var out []int
	base.For(4, func(i int) {
		out = append(out, i)
	})
	return out
}
`)

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet should fail on the inverted lock order; output:\n%s", out)
	}
	text := string(out)
	// The lock-order cycle needs base's FuncFact/PkgFact in the client's
	// invocation; the parslot diagnostic needs base's OrderFact (the
	// propview:fanout marker on For). Both cross only via .vetx files.
	for _, frag := range []string{"lock-order cycle", "order/base.MuA", "order/base.MuB", "client.go",
		"writes captured variable out outside a per-index slot"} {
		if !strings.Contains(text, frag) {
			t.Errorf("vet output missing %q:\n%s", frag, text)
		}
	}
}
