// The `go vet -vettool` side of the driver: a reimplementation of
// x/tools' unitchecker protocol on the standard library. cmd/go invokes
// the tool once per package with a JSON config naming the package's files,
// the export-data file of every import, and the .vetx fact files of every
// dependency; the tool type-checks that one unit, runs the analyzers,
// writes its own facts to VetxOutput, and exits 2 when it found anything.
package driver

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"repro/internal/analysis"
)

// vetConfig is the JSON unit description cmd/go hands a -vettool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the propviewlint entry point, dispatching between the vettool
// protocol (-V=full handshake, then one .cfg per package) and standalone
// whole-module source mode (import paths or ./... patterns). The
// -suppression-budget and -stats flags apply to standalone mode only —
// both need the whole-module view a per-package vet invocation lacks.
// -json works in both modes: one JSON object per finding line, suppressed
// findings included and flagged.
func Main(analyzers ...*analysis.Analyzer) {
	analyzers = Expand(analyzers)
	progname := filepath.Base(os.Args[0])
	var patterns []string
	var opt StandaloneOptions
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "-V":
			// The go command's tool-ID handshake: with "devel" in the
			// version slot, cmd/go requires the last field to be
			// buildID=<content-id>, which it uses to invalidate vet
			// caches when the tool binary changes.
			fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
			return
		case arg == "-flags":
			fmt.Println("[]") // no tool-specific flags to offer go vet
			return
		case arg == "-help" || arg == "--help" || arg == "-h":
			usage(progname, analyzers)
			return
		case strings.HasSuffix(arg, ".cfg"):
			os.Exit(unit(arg, analyzers, opt.JSON))
		case arg == "-json":
			opt.JSON = true
		case strings.HasPrefix(arg, "-suppression-budget="):
			opt.BudgetPath = strings.TrimPrefix(arg, "-suppression-budget=")
		case strings.HasPrefix(arg, "-stats="):
			opt.StatsPath = strings.TrimPrefix(arg, "-stats=")
		case strings.HasPrefix(arg, "-workers="):
			fmt.Sscanf(strings.TrimPrefix(arg, "-workers="), "%d", &opt.Workers)
		case strings.HasPrefix(arg, "-"):
			// Tolerate unknown flags passed through by go vet.
		default:
			patterns = append(patterns, arg)
		}
	}
	os.Exit(Standalone(patterns, analyzers, opt))
}

// selfID hashes the running executable so cmd/go's vet cache keys on the
// tool's content: rebuild propviewlint and stale results are discarded.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Printf("%s: machine-checks propview's concurrency and aliasing invariants.\n\n", progname)
	fmt.Printf("usage:\n  %s [packages]            standalone over the module's source\n", progname)
	fmt.Printf("  go vet -vettool=$(which %s) ./...   as a vet tool\n\nanalyzers:\n", progname)
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Printf("  %-18s %s\n", a.Name, doc)
	}
}

// unit runs one vettool invocation; the returned value is the process exit
// code (0 clean, 1 error, 2 findings). Only active (unsuppressed) findings
// drive the exit code; with jsonOut set, suppressed ones are printed
// alongside them, flagged.
func unit(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return errExit(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return errExit(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	findings, err := runUnit(&cfg, analyzers)
	if err != nil {
		if err == errTypecheckTolerated {
			return 0
		}
		return errExit(err)
	}
	var active []Finding
	for _, f := range findings {
		if !f.Suppressed {
			active = append(active, f)
		}
	}
	if cfg.VetxOnly || len(active) == 0 {
		return 0
	}
	if jsonOut {
		printJSON(os.Stderr, findings)
	} else {
		for _, f := range active {
			fmt.Fprintf(os.Stderr, "%s\n", f)
		}
	}
	return 2
}

// errTypecheckTolerated marks a parse/type-check failure the config told
// us to swallow (SucceedOnTypecheckFailure).
var errTypecheckTolerated = fmt.Errorf("type-check failure tolerated by config")

// runUnit is the testable core of one vettool invocation: parse and
// type-check the unit from its config, import dependency facts from the
// .vetx files cmd/go listed, run the analyzers, write this unit's facts to
// VetxOutput, and return the findings.
func runUnit(cfg *vetConfig, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, errTypecheckTolerated
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErr error
	conf := types.Config{
		Importer:  imp,
		GoVersion: langVersion(cfg.GoVersion),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, errTypecheckTolerated
		}
		return nil, typeErr
	}

	facts := NewFacts()
	registry := factRegistry(analyzers)
	for _, vetx := range cfg.PackageVetx {
		if err := facts.readVetx(vetx, registry); err != nil {
			return nil, err
		}
	}

	// visible = nil: the store holds exactly the dependency facts cmd/go
	// handed us, which is the whole visible world of this unit.
	findings, err := RunPackage(analyzers, fset, files, pkg, info, facts, nil, nil)
	if err != nil {
		return nil, err
	}

	if cfg.VetxOutput != "" {
		if err := facts.writeVetx(cfg.VetxOutput); err != nil {
			return nil, err
		}
	}
	return findings, nil
}

func errExit(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}

// langVersion trims a toolchain version like go1.24.0 to the language
// version form go/types accepts.
func langVersion(v string) string {
	if parts := strings.Split(v, "."); len(parts) > 2 {
		return strings.Join(parts[:2], ".")
	}
	return v
}

// importerFunc is shared with the source loader's shape; redeclared here so
// the driver does not depend on load for the vettool path.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// factRecord is the serialized form of one fact in a .vetx file.
type factRecord struct {
	Key  string // the store key (package, object path, fact type)
	Type string // concrete fact type, resolved against the registry
	Data []byte // gob-encoded fact value
}

func factRegistry(analyzers []*analysis.Analyzer) map[string]reflect.Type {
	reg := make(map[string]reflect.Type)
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			reg[t.String()] = t
		}
	}
	return reg
}

func (fs *Facts) writeVetx(path string) error {
	recs := make([]factRecord, 0, len(fs.m))
	for k, fact := range fs.m {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
			return fmt.Errorf("encoding fact %T: %v", fact, err)
		}
		recs = append(recs, factRecord{Key: k, Type: reflect.TypeOf(fact).String(), Data: buf.Bytes()})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o666)
}

func (fs *Facts) readVetx(path string, registry map[string]reflect.Type) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var recs []factRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("decoding %s: %v", path, err)
	}
	for _, rec := range recs {
		t, ok := registry[rec.Type]
		if !ok {
			continue // fact from an analyzer not in this binary
		}
		fact := reflect.New(t.Elem()).Interface().(analysis.Fact)
		if err := gob.NewDecoder(bytes.NewReader(rec.Data)).Decode(fact); err != nil {
			return fmt.Errorf("decoding fact %s: %v", rec.Type, err)
		}
		fs.m[rec.Key] = fact
	}
	return nil
}
