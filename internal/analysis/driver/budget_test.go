package driver

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), ".lintbudget")
	const src = `# ceiling per analyzer
eachretain 8

lockguard 2
holdinfer 0
`
	if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	got, err := ParseBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"eachretain": 8, "lockguard": 2, "holdinfer": 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseBudget = %v, want %v", got, want)
	}

	for _, bad := range []string{"eachretain", "eachretain eight", "eachretain -1", "eachretain 1 2"} {
		if err := os.WriteFile(path, []byte(bad+"\n"), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseBudget(path); err == nil {
			t.Errorf("ParseBudget accepted malformed line %q", bad)
		}
	}
}

func TestCheckBudget(t *testing.T) {
	counts := map[string]int{"eachretain": 9, "lockguard": 1, "genmonotonic": 1}
	budget := map[string]int{"eachretain": 8, "lockguard": 2, "genmonotonic": 1}
	over, under := CheckBudget(counts, budget)
	if len(over) != 1 || !strings.Contains(over[0], "eachretain: 9 //lint:ignore sites, budget 8") {
		t.Errorf("over = %v, want the eachretain growth", over)
	}
	if len(under) != 1 || !strings.Contains(under[0], "lockguard") {
		t.Errorf("under = %v, want the lockguard ratchet note", under)
	}

	// An analyzer absent from the budget has ceiling zero: any new
	// suppression for it is growth.
	over, _ = CheckBudget(map[string]int{"lockorder": 1}, map[string]int{})
	if len(over) != 1 {
		t.Errorf("unbudgeted analyzer should be over on first suppression, got %v", over)
	}
}
