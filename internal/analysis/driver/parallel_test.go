package driver

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockorder"
)

// TestParallelMatchesSerial runs the scheduled driver over a fan of
// packages that all invert a base package's lock order, at one worker and
// at eight, and requires identical findings: the pool must preserve
// fact-dependency order and the output sort regardless of completion
// interleaving.
func TestParallelMatchesSerial(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("fan/base/base.go", `package base

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
)

func LockBoth() {
	MuA.Lock()
	MuB.Lock()
}

func UnlockBoth() {
	MuB.Unlock()
	MuA.Unlock()
}
`)
	var pkgpaths []string
	for i := 0; i < 8; i++ {
		write(fmt.Sprintf("fan/leaf%d/leaf.go", i), fmt.Sprintf(`package leaf%d

import "fan/base"

func Inverted() {
	base.MuB.Lock()
	base.MuA.Lock()
	base.MuA.Unlock()
	base.MuB.Unlock()
}
`, i))
		pkgpaths = append(pkgpaths, fmt.Sprintf("fan/leaf%d", i))
	}

	run := func(workers int) []Finding {
		t.Helper()
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		loader := &load.Loader{SrcDirs: []string{root}}
		pkgs, err := loader.Load(pkgpaths...)
		if err != nil {
			t.Fatal(err)
		}
		findings, err := Run([]*analysis.Analyzer{lockorder.Analyzer}, loader.Fset, pkgs)
		if err != nil {
			t.Fatal(err)
		}
		return findings
	}

	serial := run(1)
	parallel := run(8)
	if len(serial) != 8 {
		t.Fatalf("each of the 8 leaves should report its inverted order once, got %d: %v", len(serial), serial)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("parallel found %d findings, serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i].String() != parallel[i].String() {
			t.Errorf("finding %d differs:\n serial   %s\n parallel %s", i, serial[i], parallel[i])
		}
	}
}
