// Package driver runs propviewlint's analyzers. Two modes share the fact
// store and the suppression filter: Run type-checks from source and walks
// the dependency graph bottom-up (the standalone binary and the
// analysistest harness), while unitchecker.go speaks the `go vet -vettool`
// protocol, one package per process with facts carried in .vetx files.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Finding is one diagnostic. Suppressed findings (matched by a
// //lint:ignore directive) are carried rather than dropped, so the -json
// output can show them; the text printers and exit codes consider only
// active ones.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed: a well-formed //lint:ignore directive on the finding's
	// line or the line above names this analyzer.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// DirectiveAnalyzer is the synthetic analyzer name under which problems
// with //lint:ignore directives themselves are reported: malformed
// directives, unknown analyzer names, and directives that suppress
// nothing. Directive findings are not themselves suppressible.
const DirectiveAnalyzer = "lintdirective"

// Facts is the cross-package fact store. Facts are keyed by the owning
// package path, a stable object path within it (empty for package-level
// facts), and the fact's concrete type, so the same key works whether the
// fact was produced live (source mode) or decoded from a dependency's
// .vetx file (vettool mode). Safe for concurrent use: the standalone
// driver analyzes independent packages in parallel.
type Facts struct {
	mu sync.RWMutex
	m  map[string]analysis.Fact
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: make(map[string]analysis.Fact)} }

// objPath returns a stable intra-package path for the objects facts attach
// to: package-level declarations ("Name") and methods ("Type.Name").
func objPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + o.Name(), true
		}
		return o.Name(), true
	case *types.Var:
		if o.IsField() {
			return "", false // field facts stay package-local
		}
		return o.Name(), true
	default:
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Name(), true
		}
		return "", false
	}
}

func factKey(obj types.Object, fact analysis.Fact) (string, bool) {
	path, ok := objPath(obj)
	if !ok {
		return "", false
	}
	return obj.Pkg().Path() + "\x00" + path + "\x00" + reflect.TypeOf(fact).String(), true
}

// pkgFactKey keys a package-level fact: the object-path slot is empty,
// which no object fact can produce.
func pkgFactKey(pkgPath string, fact analysis.Fact) string {
	return pkgPath + "\x00\x00" + reflect.TypeOf(fact).String()
}

// copyInto copies src's pointee into dst (both pointers of one type).
func copyInto(dst, src analysis.Fact) {
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
}

// Get copies the stored fact for obj of fact's concrete type into fact.
func (fs *Facts) Get(obj types.Object, fact analysis.Fact) bool {
	k, ok := factKey(obj, fact)
	if !ok {
		return false
	}
	fs.mu.RLock()
	stored, ok := fs.m[k]
	fs.mu.RUnlock()
	if !ok {
		return false
	}
	copyInto(fact, stored)
	return true
}

// Set records fact for obj; facts on local or field objects are dropped
// (they never cross a package boundary).
func (fs *Facts) Set(obj types.Object, fact analysis.Fact) {
	if k, ok := factKey(obj, fact); ok {
		fs.mu.Lock()
		fs.m[k] = fact
		fs.mu.Unlock()
	}
}

// GetPkg copies the stored package fact for pkgPath into fact.
func (fs *Facts) GetPkg(pkgPath string, fact analysis.Fact) bool {
	fs.mu.RLock()
	stored, ok := fs.m[pkgFactKey(pkgPath, fact)]
	fs.mu.RUnlock()
	if !ok {
		return false
	}
	copyInto(fact, stored)
	return true
}

// SetPkg records a package-level fact for pkgPath.
func (fs *Facts) SetPkg(pkgPath string, fact analysis.Fact) {
	fs.mu.Lock()
	fs.m[pkgFactKey(pkgPath, fact)] = fact
	fs.mu.Unlock()
}

// AllPkg returns the stored package facts of fact's concrete type. When
// visible is non-nil only packages in it are consulted (the standalone
// driver passes each package's transitive import closure, mirroring the
// import-edge-only fact flow of the vettool protocol); a nil visible set
// means everything in the store (the vettool driver, whose store holds
// exactly the dependencies' facts). The package named by exclude — the one
// under analysis — is always omitted.
func (fs *Facts) AllPkg(fact analysis.Fact, visible map[string]bool, exclude string) []analysis.PackageFact {
	suffix := "\x00\x00" + reflect.TypeOf(fact).String()
	var out []analysis.PackageFact
	fs.mu.RLock()
	for k, stored := range fs.m {
		path, ok := strings.CutSuffix(k, suffix)
		if !ok || path == exclude {
			continue
		}
		if visible != nil && !visible[path] {
			continue
		}
		out = append(out, analysis.PackageFact{Path: path, Fact: stored})
	}
	fs.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// directive is one parsed //lint:ignore comment. A well-formed directive
// reads `//lint:ignore <analyzer>[,<analyzer>] <justification>`; malformed
// ones are no longer silently dropped — they surface as DirectiveAnalyzer
// findings, as do directives whose names never match a diagnostic (a
// directive parked on a blank line not adjacent to the offending
// statement suppresses nothing and is reported as unused).
type directive struct {
	pos       token.Position
	names     []string
	malformed string          // why the directive is invalid; empty when well-formed
	used      map[string]bool // analyzer names that suppressed at least one diagnostic
}

// suppressions indexes the //lint:ignore directives of one package.
type suppressions struct {
	byLine map[string][]*directive // "file:line" -> directives anchored there
	list   []*directive            // source order, for directive findings
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	sup := &suppressions{byLine: make(map[string][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue // not the directive (e.g. //lint:ignored)
				}
				d := &directive{pos: fset.Position(c.Pos()), used: make(map[string]bool)}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.malformed = "missing analyzer name and justification"
				case len(fields) == 1:
					d.malformed = "missing justification"
				}
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							d.names = append(d.names, name)
						}
					}
				}
				sup.list = append(sup.list, d)
				key := fmt.Sprintf("%s:%d", d.pos.Filename, d.pos.Line)
				sup.byLine[key] = append(sup.byLine[key], d)
			}
		}
	}
	return sup
}

// match reports whether a diagnostic at pos from the named analyzer is
// suppressed: a well-formed directive on the same line or the line above
// names the analyzer. Matching marks the directive used.
func (s *suppressions) match(pos token.Position, analyzer string) bool {
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range s.byLine[fmt.Sprintf("%s:%d", pos.Filename, line)] {
			if d.malformed != "" {
				continue
			}
			for _, n := range d.names {
				if n == analyzer {
					d.used[analyzer] = true
					hit = true
				}
			}
		}
	}
	return hit
}

// findings reports the directives that are themselves wrong: malformed
// ones, names not in the known analyzer set, and well-formed directives
// that suppressed nothing.
func (s *suppressions) findings(known map[string]bool) []Finding {
	var out []Finding
	for _, d := range s.list {
		if d.malformed != "" {
			out = append(out, Finding{Pos: d.pos, Analyzer: DirectiveAnalyzer,
				Message: fmt.Sprintf("malformed //lint:ignore directive: %s (want //lint:ignore <analyzer>[,<analyzer>] <justification>)", d.malformed)})
			continue
		}
		for _, n := range d.names {
			switch {
			case !known[n]:
				out = append(out, Finding{Pos: d.pos, Analyzer: DirectiveAnalyzer,
					Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q", n)})
			case !d.used[n]:
				out = append(out, Finding{Pos: d.pos, Analyzer: DirectiveAnalyzer,
					Message: fmt.Sprintf("unused //lint:ignore directive for %s: no diagnostic on this line or the next; directives must sit on or immediately above the offending statement", n)})
			}
		}
	}
	return out
}

// Expand returns analyzers with every transitive requirement inserted
// before its dependents, deduplicated, preserving the request order
// otherwise. An analyzer requirement cycle is a programming error and
// panics.
func Expand(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	state := make(map[*analysis.Analyzer]int) // 1 = visiting, 2 = done
	var visit func(a *analysis.Analyzer)
	visit = func(a *analysis.Analyzer) {
		switch state[a] {
		case 1:
			panic(fmt.Sprintf("driver: analyzer requirement cycle through %s", a.Name))
		case 2:
			return
		}
		state[a] = 1
		for _, req := range a.Requires {
			visit(req)
		}
		state[a] = 2
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// RunPackage runs every analyzer (with requirements expanded, in
// dependency order) over one type-checked package, exchanging facts
// through fs, and returns every finding — suppressed ones flagged rather
// than dropped — plus DirectiveAnalyzer findings for //lint:ignore
// directives that are malformed, name unknown analyzers, or suppress
// nothing. visible restricts
// AllPackageFacts to the given package paths; nil means the whole store
// (vettool mode, where the store holds exactly the dependency facts).
// durations, when non-nil, accumulates per-analyzer wall-clock.
func RunPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, fs *Facts, visible map[string]bool,
	durations *Durations) ([]Finding, error) {
	sup := collectSuppressions(fset, files)
	var findings []Finding
	results := make(map[*analysis.Analyzer]any)
	expanded := Expand(analyzers)
	known := make(map[string]bool, len(expanded))
	for _, a := range expanded {
		known[a.Name] = true
	}
	for _, a := range expanded {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			ResultOf:  results,
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				return fs.Get(obj, fact)
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				fs.Set(obj, fact)
			},
			ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
				if p == nil {
					return false
				}
				return fs.GetPkg(p.Path(), fact)
			},
			ExportPackageFact: func(fact analysis.Fact) {
				fs.SetPkg(pkg.Path(), fact)
			},
			AllPackageFacts: func(fact analysis.Fact) []analysis.PackageFact {
				return fs.AllPkg(fact, visible, pkg.Path())
			},
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			findings = append(findings, Finding{
				Pos: pos, Analyzer: name, Message: d.Message,
				Suppressed: sup.match(pos, name),
			})
		}
		start := time.Now()
		res, err := a.Run(pass)
		if durations != nil {
			durations.add(name, time.Since(start))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path(), err)
		}
		results[a] = res
	}
	findings = append(findings, sup.findings(known)...)
	return findings, nil
}

// Durations accumulates per-analyzer wall-clock across packages,
// concurrently updated by the parallel driver.
type Durations struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

// NewDurations returns an empty accumulator.
func NewDurations() *Durations { return &Durations{d: make(map[string]time.Duration)} }

func (d *Durations) add(name string, dt time.Duration) {
	d.mu.Lock()
	d.d[name] += dt
	d.mu.Unlock()
}

// Get returns the accumulated wall-clock for one analyzer.
func (d *Durations) Get(name string) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.d[name]
}

// Workers bounds the standalone driver's per-package analysis parallelism;
// 0 (the default) means GOMAXPROCS. A package is scheduled only once every
// package it imports has been analyzed, so fact flow is identical to the
// old sequential bottom-up walk.
var Workers = 0

// Run analyzes pkgs and their transitive source dependencies in
// dependency order — packages whose imports are all analyzed run
// concurrently on a bounded worker pool — and returns every active
// (unsuppressed) finding sorted by position. Fact visibility per package
// is its transitive import closure, exactly what the vettool protocol
// provides. Callers that want suppressed findings too (the -json
// printers) use RunStats.
func Run(analyzers []*analysis.Analyzer, fset *token.FileSet, pkgs []*load.Package) ([]Finding, error) {
	findings, _, err := RunStats(analyzers, fset, pkgs, nil)
	if err != nil {
		return nil, err
	}
	var active []Finding
	for _, f := range findings {
		if !f.Suppressed {
			active = append(active, f)
		}
	}
	return active, nil
}

// RunStats is Run with per-analyzer wall-clock accumulation (durations may
// be nil) and a count of analyzed packages. Unlike Run it returns
// suppressed findings too, flagged via Finding.Suppressed.
func RunStats(analyzers []*analysis.Analyzer, fset *token.FileSet, pkgs []*load.Package,
	durations *Durations) ([]Finding, int, error) {
	type node struct {
		p          *load.Package
		visible    map[string]bool // transitive import closure (source pkgs)
		waiting    int             // unanalyzed imports
		dependents []*node
	}
	nodes := make(map[string]*node)
	var order []*node // dependency order, for deterministic visibility setup
	var visit func(p *load.Package) *node
	visit = func(p *load.Package) *node {
		if n, ok := nodes[p.Path]; ok {
			return n
		}
		n := &node{p: p, visible: make(map[string]bool)}
		nodes[p.Path] = n // before recursing: load rejects cycles, this is belt
		for _, dep := range p.Imports {
			d := visit(dep)
			d.dependents = append(d.dependents, n)
			n.waiting++
			n.visible[dep.Path] = true
			for path := range d.visible {
				n.visible[path] = true
			}
		}
		order = append(order, n)
		return n
	}
	for _, p := range pkgs {
		visit(p)
	}

	workers := Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = len(order)
	}

	fs := NewFacts()
	ready := make(chan *node, len(order))
	for _, n := range order {
		if n.waiting == 0 {
			ready <- n
		}
	}

	var (
		mu       sync.Mutex
		findings []Finding
		firstErr error
		done     int
		wg       sync.WaitGroup
	)
	finish := func(n *node, fnd []Finding, err error) {
		mu.Lock()
		defer mu.Unlock()
		findings = append(findings, fnd...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for _, dep := range n.dependents {
			dep.waiting--
			if dep.waiting == 0 {
				ready <- dep
			}
		}
		done++
		if done == len(order) {
			close(ready)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := range ready {
				fnd, err := RunPackage(analyzers, fset, n.p.Files, n.p.Types, n.p.Info, fs, n.visible, durations)
				finish(n, fnd, err)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, done, firstErr
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, done, nil
}

// CountSuppressions tallies //lint:ignore comments per analyzer name
// across pkgs and their transitive source dependencies (each file counted
// once). The suppression-budget ratchet compares these against a
// checked-in ceiling.
func CountSuppressions(fset *token.FileSet, pkgs []*load.Package) map[string]int {
	counts := make(map[string]int)
	seenPkg := make(map[string]bool)
	seenFile := make(map[string]bool)
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if seenPkg[p.Path] {
			return
		}
		seenPkg[p.Path] = true
		for _, dep := range p.Imports {
			visit(dep)
		}
		for _, f := range p.Files {
			name := fset.Position(f.Pos()).Filename
			if seenFile[name] {
				continue
			}
			seenFile[name] = true
			for _, d := range collectSuppressions(fset, []*ast.File{f}).list {
				if d.malformed != "" {
					continue // malformed directives are findings, not budget entries
				}
				for _, n := range d.names {
					counts[n]++
				}
			}
		}
	}
	for _, p := range pkgs {
		visit(p)
	}
	return counts
}
