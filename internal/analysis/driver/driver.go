// Package driver runs propviewlint's analyzers. Two modes share the fact
// store and the suppression filter: Run type-checks from source and walks
// the dependency graph bottom-up (the standalone binary and the
// analysistest harness), while unitchecker.go speaks the `go vet -vettool`
// protocol, one package per process with facts carried in .vetx files.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Finding is one post-suppression diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Facts is the cross-package fact store. Facts are keyed by the owning
// package path, a stable object path within it, and the fact's concrete
// type, so the same key works whether the fact was produced live (source
// mode) or decoded from a dependency's .vetx file (vettool mode).
type Facts struct {
	m map[string]analysis.Fact
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: make(map[string]analysis.Fact)} }

// objPath returns a stable intra-package path for the objects facts attach
// to: package-level declarations ("Name") and methods ("Type.Name").
func objPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		if sig, ok := o.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + o.Name(), true
		}
		return o.Name(), true
	case *types.Var:
		if o.IsField() {
			return "", false // field facts stay package-local
		}
		return o.Name(), true
	default:
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Name(), true
		}
		return "", false
	}
}

func factKey(obj types.Object, fact analysis.Fact) (string, bool) {
	path, ok := objPath(obj)
	if !ok {
		return "", false
	}
	return obj.Pkg().Path() + "\x00" + path + "\x00" + reflect.TypeOf(fact).String(), true
}

// Get copies the stored fact for obj of fact's concrete type into fact.
func (fs *Facts) Get(obj types.Object, fact analysis.Fact) bool {
	k, ok := factKey(obj, fact)
	if !ok {
		return false
	}
	stored, ok := fs.m[k]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// Set records fact for obj; facts on local or field objects are dropped
// (they never cross a package boundary).
func (fs *Facts) Set(obj types.Object, fact analysis.Fact) {
	if k, ok := factKey(obj, fact); ok {
		fs.m[k] = fact
	}
}

// suppressions maps "file:line" to the analyzer names suppressed there by
// a //lint:ignore comment.
type suppressions map[string]map[string]bool

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // a justification is mandatory; ignore malformed
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if sup[key] == nil {
					sup[key] = make(map[string]bool)
				}
				for _, name := range strings.Split(fields[0], ",") {
					sup[key][name] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) match(pos token.Position, analyzer string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := s[fmt.Sprintf("%s:%d", pos.Filename, line)]; names[analyzer] {
			return true
		}
	}
	return false
}

// RunPackage runs every analyzer over one type-checked package, exchanging
// facts through fs, and returns the unsuppressed findings.
func RunPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, fs *Facts) ([]Finding, error) {
	sup := collectSuppressions(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				return fs.Get(obj, fact)
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				fs.Set(obj, fact)
			},
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if sup.match(pos, name) {
				return
			}
			findings = append(findings, Finding{Pos: pos, Analyzer: name, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path(), err)
		}
	}
	return findings, nil
}

// Run analyzes pkgs and their transitive source dependencies bottom-up, so
// facts exported by a dependency are visible to its importers, and returns
// every unsuppressed finding sorted by position.
func Run(analyzers []*analysis.Analyzer, fset *token.FileSet, pkgs []*load.Package) ([]Finding, error) {
	fs := NewFacts()
	var order []*load.Package
	seen := make(map[string]bool)
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if seen[p.Path] {
			return
		}
		seen[p.Path] = true
		for _, dep := range p.Imports {
			visit(dep)
		}
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}

	var findings []Finding
	for _, p := range order {
		fnd, err := RunPackage(analyzers, fset, p.Files, p.Types, p.Info, fs)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fnd...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return findings, nil
}
