// Package load builds type-checked packages for the propviewlint drivers
// without golang.org/x/tools: packages inside the module under analysis
// (or under a GOPATH-style fixture root) are parsed and type-checked from
// source, while every external dependency — the standard library — is
// imported from the toolchain's compiled export data, located with one
// `go list -export` invocation against the local build cache. No network,
// no third-party code.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one source-loaded, type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package's files were read from.
	Dir string
	// Files holds the parsed syntax trees, file-name ordered.
	Files []*ast.File
	// Types and Info are the type-checker outputs.
	Types *types.Package
	Info  *types.Info
	// Imports are the source-loaded dependencies (module-local or fixture
	// packages); export-data imports are not listed.
	Imports []*Package
}

// Loader resolves import paths to packages: source-loaded under the
// module (or fixture roots), export-data otherwise.
type Loader struct {
	// Fset is the shared file set; a zero Loader allocates one on first use.
	Fset *token.FileSet
	// ModulePath/ModuleDir describe the module whose packages load from
	// source: import path ModulePath/x/y maps to ModuleDir/x/y.
	ModulePath string
	ModuleDir  string
	// SrcDirs are GOPATH-style roots (e.g. an analyzer's testdata/src):
	// import path p maps to the first root whose subdirectory p exists.
	SrcDirs []string
	// GoVersion, when set (e.g. "go1.21"), is passed to the type checker
	// for source packages.
	GoVersion string

	pkgs    map[string]*Package
	loading map[string]bool
	exports map[string]string // import path -> export data file
	gcImp   types.Importer
	listDir string
}

func (l *Loader) init() {
	if l.Fset == nil {
		l.Fset = token.NewFileSet()
	}
	if l.pkgs == nil {
		l.pkgs = make(map[string]*Package)
		l.loading = make(map[string]bool)
	}
	if l.gcImp == nil {
		l.gcImp = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
		l.listDir = l.ModuleDir
		if l.listDir == "" {
			l.listDir = os.TempDir() // std listing needs no module context
		}
	}
}

// Load loads the given import paths (or "./..."-style patterns against the
// module root) from source, with their transitive source dependencies.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	var paths []string
	for _, p := range patterns {
		switch {
		case p == "./..." || p == l.ModulePath+"/...":
			expanded, err := l.expandModule()
			if err != nil {
				return nil, err
			}
			paths = append(paths, expanded...)
		case strings.HasPrefix(p, "./"):
			rel := strings.TrimPrefix(p, "./")
			if rel == "" || rel == "." {
				paths = append(paths, l.ModulePath)
			} else {
				paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
			}
		default:
			paths = append(paths, p)
		}
	}
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// expandModule walks the module tree for package directories.
func (l *Loader) expandModule() ([]string, error) {
	if l.ModuleDir == "" {
		return nil, fmt.Errorf("load: pattern requires ModuleDir")
	}
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				rel, _ := filepath.Rel(l.ModuleDir, path)
				if rel == "." {
					paths = append(paths, l.ModulePath)
				} else {
					paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	sort.Strings(paths)
	return paths, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".")
}

// dirFor maps a source import path to its directory, or "" when the path
// is external (export data).
func (l *Loader) dirFor(path string) string {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
		}
	}
	for _, root := range l.SrcDirs {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
	}
	return ""
}

// load parses and type-checks one source package (memoized).
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("load: %q is not under the module or a source root", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files}
	// Load source dependencies first so the type-checker's Import below
	// finds them memoized (and so analysis runs can order by dependency).
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[ipath] {
				continue
			}
			seen[ipath] = true
			if l.dirFor(ipath) == "" {
				continue // external: resolved via export data during checking
			}
			dep, err := l.load(ipath)
			if err != nil {
				return nil, err
			}
			pkg.Imports = append(pkg.Imports, dep)
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  importerFunc(l.importPath),
		GoVersion: l.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, typeErrs[0])
	}
	pkg.Types, pkg.Info = tpkg, info
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPath is the type-checker's importer: source packages come from this
// loader, anything else from compiled export data.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.dirFor(path) != "" {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.gcImp.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// lookupExport opens the compiled export data of an external package,
// batch-resolving the whole standard library on first miss via
// `go list -export` (local build cache only — no network).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	if f, ok := l.exports[path]; ok {
		return os.Open(f)
	}
	if l.exports == nil {
		// One batched listing covers std and its vendored dependencies.
		if err := l.listExports("std"); err != nil {
			return nil, err
		}
		if f, ok := l.exports[path]; ok {
			return os.Open(f)
		}
	}
	// Not part of the std batch (e.g. a module dependency): list it alone.
	if err := l.listExports(path); err != nil {
		return nil, err
	}
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(f)
}

func (l *Loader) listExports(pattern string) error {
	cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", pattern)
	cmd.Dir = l.listDir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("load: go list -export %s: %v\n%s", pattern, err, errb.String())
	}
	if l.exports == nil {
		l.exports = make(map[string]string)
	}
	dec := json.NewDecoder(&out)
	for dec.More() {
		var rec struct{ ImportPath, Export string }
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("load: decoding go list output: %v", err)
		}
		if rec.Export != "" {
			l.exports[rec.ImportPath] = rec.Export
		}
	}
	return nil
}
