// Package analysis is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis core on the standard library alone: the
// Analyzer/Pass/Diagnostic/Fact vocabulary — including Requires/ResultOf
// chaining, object and package facts — enough of it for propviewlint's
// invariant checkers and their drivers (driver: whole-module source
// mode with a dependency-ordered worker pool, and the `go vet -vettool`
// unitchecker protocol). The container this repo builds in has no module
// proxy access, so depending on x/tools is not an option; the API mirrors
// it closely enough that swapping the real package in later is a
// find-and-replace.
//
// # The invariant vocabulary
//
// This package is also the one documented home of the source-level
// contracts the analyzers enforce. Diagnostics reference the markers below;
// the markers are ordinary comments attached to declarations.
//
//   - `propview:read-only` (doc comment of a function or method): every
//     value the function returns aliases snapshot storage owned by the
//     callee and MUST NOT be mutated by the caller — no element writes, no
//     field writes, no append, however many assignments removed from the
//     call. This is the engine's aliasing contract: Relation.ReadOnly,
//     Relation.Tuples, Database.Freeze and Engine.Query all return views of
//     published copy-on-write snapshots whose safety depends on readers
//     staying readers. Functions that merely forward such a result (the
//     propview facade) inherit the contract automatically via facts.
//     Enforced by the snapshotaliasing analyzer.
//
//   - `guarded-by: <field>` (comment on a struct field): the field may be
//     read only while the named sibling lock is held (RLock or Lock for a
//     sync.RWMutex) and written only while it is held exclusively, on an
//     enclosing path of the accessing function. Two special guard names are
//     recognized: `guarded-by: atomic` asserts the field is itself a
//     sync/atomic type (the analyzer verifies the type and requires no
//     lock), and a sibling sync.Once field names the once-initialization
//     discipline — accesses are legal inside the Once.Do callback.
//     Functions whose callers hold the lock declare it with
//     `propview:holds <field>` in their doc comment. Accesses to objects
//     freshly allocated in the same function (not yet published) are
//     exempt. Enforced by the lockguard analyzer.
//
//   - `propview:no-retain` (doc comment of a function or method taking a
//     callback): values yielded to the callback are only valid for the
//     duration of the call — the iterator may reuse cursor or buffer state
//     — so the callback must not let a yielded value escape (no append to
//     an outer slice, no assignment to an outer variable or field, no
//     channel send) without an explicit copy. Relation.Each and the
//     segment-store k-way merge carry this contract. Enforced by the
//     eachretain analyzer.
//
//   - `propview:generation` (comment on a field): the field is a monotone
//     generation or sequence counter. It may only be advanced — atomic
//     .Add, or a write whose value derives from a generation field
//     (carry-forward or carry+1) — and only reset or arbitrarily stored by
//     functions marked `propview:publish` in their doc comment (the
//     commit/publish path). Reader code must never write it. Enforced by
//     the genmonotonic analyzer.
//
//   - `propview:holds <lock>` (doc comment of a function or method): the
//     caller holds the named lock — a mutex field of the receiver's
//     struct, or a package-level mutex — for the duration of the call.
//     lockguard uses it to seed the held set; holdinfer cross-checks the
//     annotations against what the concurrency summaries infer, reporting
//     a missing contract (the function releases, or passes to a callee
//     needing, a lock it never acquired), a stale one (the named lock is
//     never unlocked, never nested under, needed by no callee, and guards
//     no accessed field — or does not exist at all), and a contradicted
//     one (the function acquires the annotated lock itself, which
//     self-deadlocks under the contract).
//
//   - `propview:fanout` (doc comment of a function or method): the
//     function runs its func(int) argument once per index in [0, n),
//     possibly concurrently on several goroutines (parallel.For, the
//     engine's fanOut). Closures passed to a fanout runner may write
//     captured state only through per-index slots — an index expression
//     mentioning the worker's index parameter or a local derived from it
//     — or while holding a mutex; captured maps are never slots.
//     Enforced by the parslot analyzer, including mutations reached
//     through helper calls via the summaries. (Injectivity of a derived
//     index — distinct workers hitting distinct slots — remains the
//     author's obligation; the analyzer checks the shape.)
//
//   - `propview:deterministic` (doc comment of a function or method):
//     the function's observable results are a pure function of its
//     inputs — the width-invariance contract of the parallel maintenance
//     paths. Checked by maporder (no returned value whose element order
//     derives from a range over a map, unless sorted or gathered into
//     keyed slots first) and gatherorder (slot arrays are gathered
//     serially in index order, and no clock/RNG root — time.Now,
//     math/rand — is reachable transitively; callees carrying the marker
//     are trusted here and checked at their own definition).
//
//   - `propview:order-insensitive` (doc comment of a function or
//     method): callers do not depend on the element order of the
//     function's results, so map-iteration order may reach them; the
//     maporder taint is silenced. The marker is exported as a fact, so
//     cross-package callers inherit the exemption.
//
// A worked maporder diagnostic:
//
//	incremental.go:305: map-ordered value flows into JSON encoding
//	  (cands); sort it first or mark the function
//	  propview:order-insensitive
//
// — `cands` was appended under a `for k, v := range candidates` loop, so
// its element order is the map's randomized iteration order. Sorting the
// keys and gathering by keyed lookup clears the taint.
//
// # Concurrency summaries
//
// The summary analyzer (internal/analysis/summary) computes a
// per-function concurrency summary: the lock classes the function may
// acquire, directly or transitively through calls, each with a
// human-readable acquisition path; the locks it returns still holding
// (lock helpers) or releases on the caller's behalf (unlock helpers); the
// goroutines it launches with the join evidence found at the launch site;
// and the channel/WaitGroup operations that form join edges. Locks are
// abstracted to classes — `pkgpath.Type.field` for a mutex field,
// `pkgpath.name` for a package-level mutex; locks in local variables are
// instance-scoped and deliberately unclassified. Summaries are exported
// as gob facts, so both drivers see them across package boundaries, and
// three analyzers consume them:
//
//   - lockorder folds every "A held while acquiring B" edge, local and
//     imported, into a global acquisition order and reports any cycle as
//     a potential deadlock, with the full acquisition path of the edge
//     closing the cycle and of the reverse path. Edges flow along import
//     edges only (the vettool fact model), so a cycle split between two
//     packages neither of which imports the other is out of reach by
//     design — in this codebase all shared locks sit below the packages
//     acquiring them.
//   - goroutinelife requires every `go` statement to have a provable
//     join: a WaitGroup Done/Wait balance, a channel hand-off the
//     launcher receives, or a drain registration — the launched code
//     signals on a classifiable channel/WaitGroup some function
//     (anywhere in the fact-visible world) receives from or waits on.
//   - holdinfer performs the propview:holds cross-check described above.
//
// lockguard also consumes the summaries: a callee that acquires or
// releases a guard's mutex (a lock()/unlock() helper) updates the held
// set at the call site, so guarded accesses bracketed by helpers are no
// longer a blind spot.
//
// # Ordering summaries
//
// A second analyzer in the same package, ordersummary, computes the
// determinism-relevant behavior of each function: which results carry
// map-iteration order, which nondeterminism roots (clock, RNG) the
// function reaches transitively, and the fanout / deterministic /
// order-insensitive markers. These are exported as gob facts alongside
// the concurrency summaries, and the determinism trio — parslot,
// maporder, gatherorder — reports from them, each under its own name so
// suppression and budgeting stay per-analyzer.
//
// A finding that is intentional is suppressed in place with
//
//	//lint:ignore <analyzer> <one-line justification>
//
// on the flagged line or the line above it; the justification is
// mandatory. Suppressions are handled uniformly by the drivers: a
// malformed directive (missing justification), an unknown analyzer
// name, and a directive that suppresses nothing (for instance parked on
// a blank line away from the offending statement) are each reported
// under the synthetic lintdirective name, never silently accepted.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: its name (as used in
// diagnostics and //lint:ignore), documentation, the fact types it
// exchanges across packages, and the per-package Run function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Requires lists analyzers whose Run must complete on the same package
	// first; their facts are then in the store and their results available
	// through Pass.ResultOf. The drivers expand a requested analyzer set to
	// include requirements transitively, in dependency order.
	Requires []*Analyzer
	// FactTypes lists the concrete types of facts this analyzer produces
	// and consumes; each must be gob-encodable for the vettool driver.
	FactTypes []Fact
	// Run analyzes one package and reports diagnostics via pass.Report.
	Run func(*Pass) (any, error)
}

// Fact is a serializable observation about a package-level object,
// exported by the analysis of the declaring package and imported by the
// analyses of its dependents — how a contract like "this method's result
// is read-only" crosses package boundaries. Implementations must be
// pointer types registered in FactTypes.
type Fact interface{ AFact() }

// PackageFact pairs a package path with one of its package-level facts,
// as returned by Pass.AllPackageFacts.
type PackageFact struct {
	// Path is the import path of the package the fact describes.
	Path string
	// Fact is the stored fact; its concrete type is the queried type.
	Fact Fact
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries the per-package inputs and sinks of one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ResultOf holds the Run results of this analyzer's Requires, computed
	// earlier in the same per-package pass — in-memory values (with live
	// token.Pos and types.Object references), unlike facts, which must
	// survive gob serialization.
	ResultOf map[*Analyzer]any

	// Report records one diagnostic; the driver filters suppressions.
	Report func(Diagnostic)

	// ImportObjectFact copies the fact of the given type previously
	// exported for obj into fact, reporting whether one existed.
	ImportObjectFact func(obj types.Object, fact Fact) bool
	// ExportObjectFact records a fact about obj, visible to this pass and
	// to later analyses of packages importing this one.
	ExportObjectFact func(obj types.Object, fact Fact)

	// ImportPackageFact copies the package-level fact of the given type
	// previously exported for pkg into fact, reporting whether one existed.
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
	// ExportPackageFact records a package-level fact about the package
	// under analysis, visible to later analyses of importing packages.
	ExportPackageFact func(fact Fact)
	// AllPackageFacts returns every stored package fact with the same
	// concrete type as fact, from the packages this one transitively
	// imports (never the package under analysis itself). The visible set
	// is deliberately identical in both drivers — the vettool protocol
	// only carries facts along import edges, so the standalone driver
	// restricts itself the same way; a property spanning two packages
	// neither of which imports the other is out of reach for both.
	AllPackageFacts func(fact Fact) []PackageFact
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
