package maporder_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "mapord")
}

const sortedKeys = `package keys

import "sort"

// Keys returns m's keys sorted.
//
// propview:deterministic
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`

// TestRemovedSort proves the analyzer re-derives the diagnostic from a
// mutation: deleting the sort from a known-good deterministic function
// leaks map iteration order into its return.
func TestRemovedSort(t *testing.T) {
	files := map[string]string{"keys/keys.go": sortedKeys}
	if got := analysistest.RunFiles(t, maporder.Analyzer, "keys", files); len(got) != 0 {
		t.Fatalf("sorted fixture should be clean, got %v", got)
	}

	unsorted := strings.Replace(sortedKeys, "\tsort.Strings(out)\n", "", 1)
	unsorted = strings.Replace(unsorted, "import \"sort\"\n", "", 1)
	if unsorted == sortedKeys {
		t.Fatal("mutation did not apply")
	}
	files["keys/keys.go"] = unsorted
	got := analysistest.RunFiles(t, maporder.Analyzer, "keys", files)
	if len(got) != 1 {
		t.Fatalf("removed sort should yield exactly one finding, got %v", got)
	}
	for _, frag := range []string{"map-ordered", "Keys"} {
		if !strings.Contains(got[0].Message, frag) {
			t.Errorf("diagnostic %q missing %q", got[0].Message, frag)
		}
	}
}
