// Package maporder is an iteration-order taint analysis: Go map `range`
// order varies run to run, so a value whose element order derives from one
// (an append inside a map-range body, a slice write positioned by a loop
// counter rather than the map key, a call returning a map-ordered result —
// tracked across packages via ordering facts) must not reach an
// order-sensitive sink. Sinks are the returns of propview:deterministic
// functions and JSON encoding (the propviewd response path); sorting the
// value (sort.*, slices.Sort*) or gathering it into keyed slots clears the
// taint, and propview:order-insensitive marks functions whose consumers
// tolerate any order. The taint walk lives in summary.Order; this analyzer
// reports its maporder findings under its own name.
package maporder

import (
	"repro/internal/analysis"
	"repro/internal/analysis/summary"
)

// Analyzer reports map-range-ordered values flowing into order-sensitive
// sinks without an intervening sort or keyed-slot gather.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "checks that map-iteration-ordered values do not reach order-sensitive sinks without a sort or keyed-slot gather",
	Requires: []*analysis.Analyzer{summary.Order},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	res := pass.ResultOf[summary.Order].(*summary.OrderResult)
	for _, v := range res.Maporder {
		pass.Reportf(v.Pos, "%s", v.Message)
	}
	return nil, nil
}
