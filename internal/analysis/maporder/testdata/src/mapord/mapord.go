// Package mapord exercises the iteration-order taint rules: appends under
// a map range, cross-function flow through ordering facts, sort clearing,
// JSON sinks, and the two markers.
package mapord

import (
	"encoding/json"
	"sort"
)

// Keys returns m's keys in sorted order: the sort clears the map-range
// taint before the deterministic return.
//
// propview:deterministic
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BadKeys promises determinism but returns the keys in map order.
//
// propview:deterministic
func BadKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out // want `returns a map-ordered value`
}

// KeyedSlots gathers under the map range into key-positioned slots: the
// element order comes from the index space, not the iteration.
//
// propview:deterministic
func KeyedSlots(m map[int]string, n int) []string {
	out := make([]string, n)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// BadCounterSlots fills slots positioned by an advancing counter: the
// counter mirrors the iteration order, so the slots do too.
//
// propview:deterministic
func BadCounterSlots(m map[int]string) []string {
	out := make([]string, len(m))
	j := 0
	for _, v := range m {
		out[j] = v
		j++
	}
	return out // want `returns a map-ordered value`
}

// AnyOrder is marked order-insensitive: its consumers tolerate any
// element order, so the map-ordered return is fine.
//
// propview:order-insensitive
func AnyOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// rawKeys is unmarked: no violation here, but its result is flagged
// map-ordered in the exported ordering summary.
func rawKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// BadCaller returns rawKeys' map-ordered result under a determinism
// promise; the taint arrives through rawKeys' summary.
//
// propview:deterministic
func BadCaller(m map[string]int) []string {
	ks := rawKeys(m)
	return ks // want `returns a map-ordered value`
}

// GoodCaller sorts the inherited taint away.
//
// propview:deterministic
func GoodCaller(m map[string]int) []string {
	ks := rawKeys(m)
	sort.Strings(ks)
	return ks
}

// Encode serializes map-ordered data: the propviewd-response sink.
func Encode(m map[string]int) ([]byte, error) {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	return json.Marshal(names) // want `map-ordered value flows into JSON encoding`
}

// EncodeSorted sorts before encoding.
func EncodeSorted(m map[string]int) ([]byte, error) {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return json.Marshal(names)
}
