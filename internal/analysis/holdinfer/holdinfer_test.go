package holdinfer_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/holdinfer"
)

func TestHoldInfer(t *testing.T) {
	analysistest.Run(t, "testdata", holdinfer.Analyzer, "holdfix")
}
