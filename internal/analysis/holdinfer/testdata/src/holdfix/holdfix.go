// Package holdfix seeds each holdinfer diagnostic: a missing
// propview:holds contract (direct and through a helper), a contradicted
// one (self-deadlock), and two flavors of stale annotation.
package holdfix

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded-by: mu
}

// bump touches a mu-guarded field under the caller's lock: the
// annotation is justified by guarded access alone.
//
// propview:holds mu
func (b *box) bump() {
	b.n++
}

// finish releases the lock the caller acquired — the canonical holds
// contract.
//
// propview:holds mu
func (b *box) finish() {
	b.mu.Unlock()
}

// leakRelease has finish's shape but no annotation.
func (b *box) leakRelease() { // want "leakRelease requires holdfix.box.mu held on entry"
	b.mu.Unlock()
}

// indirect inherits finish's entry requirement through the call but
// declares nothing.
func (b *box) indirect() { // want "indirect requires holdfix.box.mu held on entry"
	b.finish()
}

// relock acquires the very lock its contract says the caller already
// holds.
//
// propview:holds mu
func (b *box) relock() { // want "propview:holds mu on relock is contradicted"
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// pointless declares a contract its body never relies on.
//
// propview:holds mu
func (b *box) pointless() { // want "stale propview:holds mu on pointless"
}

// phantom names a lock that does not exist.
//
// propview:holds nosuch
func (b *box) phantom() { // want "stale propview:holds nosuch on phantom: names no receiver lock field or package-level mutex"
}

// ok is annotation-free and lock-free: no diagnostics.
func (b *box) ok() int {
	return 0
}
