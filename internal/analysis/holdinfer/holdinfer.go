// Package holdinfer infers `propview:holds` caller contracts from the
// concurrency summaries and diagnoses where the manual annotations are
// missing, stale, or contradicted.
//
//   - missing: the summary shows the function requires a lock held on
//     entry — it releases a lock it never acquired, or calls something
//     that does — but no propview:holds annotation declares the contract.
//   - stale: the annotation names no lock (no such receiver field or
//     package-level mutex), or names one the body demonstrably never
//     relies on — it is neither released, nor nested under, nor needed by
//     a callee, and no field guarded by it is accessed.
//   - contradicted: the annotated lock is one the function (or a callee)
//     acquires itself; with the caller already holding it, that is a
//     self-deadlock.
package holdinfer

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/markers"
	"repro/internal/analysis/summary"
)

// Analyzer is the holdinfer analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "holdinfer",
	Doc:      "infers propview:holds contracts from concurrency summaries and reports missing, stale, or contradicted annotations",
	Requires: []*analysis.Analyzer{summary.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	res := pass.ResultOf[summary.Analyzer].(*summary.Result)
	infos := markers.Funcs(pass)
	guards := markers.FieldGuards(pass)

	// Bodies by object, for the guarded-access half of the stale check.
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					bodies[obj] = fd
				}
			}
		}
	}

	objs := make([]*types.Func, 0, len(res.Funcs))
	for obj := range res.Funcs {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].FullName() < objs[j].FullName() })

	for _, obj := range objs {
		sum := res.Funcs[obj]
		info := infos[obj]

		annotated := make(map[string]string) // class -> annotation name
		declared := make(map[string]bool)    // every class an annotation resolved to
		for _, name := range info.Holds {
			class := summary.ResolveHoldClass(pass, obj, name)
			if class == "" {
				pass.Reportf(obj.Pos(), "stale propview:holds %s on %s: names no receiver lock field or package-level mutex", name, obj.Name())
				continue
			}
			annotated[class] = name
			declared[class] = true
		}

		// contradicted: holding it on entry and acquiring it again deadlocks.
		for _, acq := range sum.Acquires {
			if name, ok := annotated[acq.Class]; ok {
				pass.Reportf(obj.Pos(), "propview:holds %s on %s is contradicted: the function acquires %s itself (%s) — with the caller already holding it this self-deadlocks",
					name, obj.Name(), acq.Class, strings.Join(acq.Path, "; "))
				delete(annotated, acq.Class) // suppress the stale check for it
			}
		}

		// missing: an inferred entry requirement with no annotation. A
		// contradicted annotation still counts as declared — one report is
		// enough.
		for _, need := range sum.NeedsHeld {
			if declared[need.Class] || !expressible(pass, obj, need) {
				continue
			}
			if need.Field != "" {
				pass.Reportf(obj.Pos(), "%s requires %s held on entry (it releases or passes down a lock it never acquired) but has no propview:holds %s annotation",
					obj.Name(), need.Class, need.Field)
			} else {
				pass.Reportf(obj.Pos(), "%s requires %s held on entry but declares no propview:holds contract for it",
					obj.Name(), need.Class)
			}
		}

		// stale: annotated but the body never relies on it.
		used := make(map[string]bool)
		for _, c := range sum.UsedEntry {
			used[c] = true
		}
		for _, class := range sortedKeys(annotated) {
			name := annotated[class]
			if used[class] || guardedAccess(pass, bodies[obj], guards, name) {
				continue
			}
			pass.Reportf(obj.Pos(), "stale propview:holds %s on %s: the body never unlocks it, nests no acquisition under it, and accesses no field it guards",
				name, obj.Name())
		}
	}
	return nil, nil
}

// expressible reports whether a propview:holds annotation on obj could
// name need's class at all: the lock must be a field of obj's receiver
// type or a package-level mutex of obj's own package. Entry requirements
// inherited from another package's internals (testing.benchmarkLock
// reached through b.Run, say) are real but unnameable here — the
// contract belongs inside that package, so no annotation is demanded.
func expressible(pass *analysis.Pass, obj *types.Func, need summary.HeldLock) bool {
	if need.Field != "" {
		last := need.Field[strings.LastIndex(need.Field, ".")+1:]
		if summary.ResolveHoldClass(pass, obj, last) == need.Class {
			return true
		}
	}
	i := strings.LastIndex(need.Class, ".")
	if i < 0 {
		return false
	}
	pkg, name := need.Class[:i], need.Class[i+1:]
	return pkg == pass.Pkg.Path() && summary.ResolveHoldClass(pass, obj, name) == need.Class
}

// guardedAccess reports whether fd's body accesses a field whose
// guarded-by annotation names guardName — the lockguard-facing reason a
// holds annotation exists.
func guardedAccess(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]markers.Guard, guardName string) bool {
	if fd == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok {
			if g, ok := guards[v]; ok && g.Name == guardName {
				found = true
			}
		}
		return true
	})
	return found
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
