package analysis

import "go/ast"

// Unparen strips any enclosing parentheses from e. Local stand-in for
// go1.22's ast.Unparen while the module language version is go1.21.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
