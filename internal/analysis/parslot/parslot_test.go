package parslot_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/parslot"
)

func TestParslot(t *testing.T) {
	analysistest.Run(t, "testdata", parslot.Analyzer, "parwork/work")
}

const slotPar = `package par

// For runs fn(i) for every i in [0, n), concurrently.
//
// propview:fanout
func For(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`

const slotWork = `package work

import "slot/par"

// Square fills slots index-disjointly.
func Square(n int) []int {
	slots := make([]int, n)
	par.For(n, func(i int) {
		slots[i] = i * i
	})
	return slots
}
`

// TestSwappedSlotIndex proves the analyzer re-derives the diagnostic from
// a mutation: the known-good fixture is clean, and redirecting the
// worker's write from its own slot to a fixed one — the archetypal racy
// "accumulate into slot 0" bug — is reported.
func TestSwappedSlotIndex(t *testing.T) {
	files := map[string]string{
		"slot/par/par.go":   slotPar,
		"slot/work/work.go": slotWork,
	}
	if got := analysistest.RunFiles(t, parslot.Analyzer, "slot/work", files); len(got) != 0 {
		t.Fatalf("slot-disciplined fixture should be clean, got %v", got)
	}

	swapped := strings.Replace(slotWork, "slots[i] = i * i", "slots[0] += i * i", 1)
	if swapped == slotWork {
		t.Fatal("mutation did not apply")
	}
	files["slot/work/work.go"] = swapped
	got := analysistest.RunFiles(t, parslot.Analyzer, "slot/work", files)
	if len(got) != 1 {
		t.Fatalf("swapped slot index should yield exactly one finding, got %v", got)
	}
	for _, frag := range []string{"captured variable slots", "per-index slot"} {
		if !strings.Contains(got[0].Message, frag) {
			t.Errorf("diagnostic %q missing %q", got[0].Message, frag)
		}
	}
}

// TestAppendInsteadOfSlot mutates the gather the other way: replacing the
// per-index slot write with an append to a captured slice.
func TestAppendInsteadOfSlot(t *testing.T) {
	files := map[string]string{
		"slot/par/par.go": slotPar,
		"slot/work/work.go": strings.Replace(slotWork,
			"slots[i] = i * i", "slots = append(slots, i*i)", 1),
	}
	got := analysistest.RunFiles(t, parslot.Analyzer, "slot/work", files)
	if len(got) != 1 {
		t.Fatalf("append from a worker should yield exactly one finding, got %v", got)
	}
	if !strings.Contains(got[0].Message, "captured variable slots") {
		t.Errorf("diagnostic %q missing capture mention", got[0].Message)
	}
}
