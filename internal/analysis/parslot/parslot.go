// Package parslot holds fan-out workers to the per-index-slot write
// discipline: a closure passed to a propview:fanout function (parallel.For,
// Budget.For, Budget.ForKeyed) runs once per index, concurrently with its
// siblings, so the only captured state it may write is a slot positioned by
// its own index (`slots[i] = ...`, `&slots[i]` through a helper) or state
// behind a mutex it holds. Any other captured mutation — a plain captured
// variable, a shared map, a helper whose effect summary mutates a captured
// argument — is a cross-worker race that surfaces as width-dependent
// output, exactly what the differential width tests can only catch
// probabilistically. The checking itself lives in summary.Order (it needs
// the ordering summaries and the Mutates effect facts); this analyzer
// reports the parslot slice of that result under its own name so
// suppression and budgeting stay per-analyzer.
package parslot

import (
	"repro/internal/analysis"
	"repro/internal/analysis/summary"
)

// Analyzer reports captured-state writes in parallel workers that bypass
// the per-index-slot discipline.
var Analyzer = &analysis.Analyzer{
	Name:     "parslot",
	Doc:      "checks that closures passed to parallel fan-outs write captured state only through per-index slots or under a mutex",
	Requires: []*analysis.Analyzer{summary.Order},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	res := pass.ResultOf[summary.Order].(*summary.OrderResult)
	for _, v := range res.Parslot {
		pass.Reportf(v.Pos, "%s", v.Message)
	}
	return nil, nil
}
