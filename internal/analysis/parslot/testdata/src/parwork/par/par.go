// Package par is a fixture stand-in for internal/parallel: its For fans a
// closure out over concurrent workers, declared via propview:fanout so the
// marker travels to importers as an ordering fact.
package par

// For runs fn(i) for every i in [0, n), concurrently.
//
// propview:fanout
func For(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
