// Package work exercises the per-index-slot write discipline for closures
// passed to a fan-out imported from another package.
package work

import (
	"sync"

	"parwork/par"
)

// Good writes captured state only through its own index's slot.
func Good(n int) []int {
	slots := make([]int, n)
	par.For(n, func(i int) {
		slots[i] = i * i
	})
	return slots
}

// GoodLocal mutates only worker-local state.
func GoodLocal(n int) {
	par.For(n, func(i int) {
		acc := 0
		for j := 0; j < i; j++ {
			acc += j
		}
		_ = acc
	})
}

// Bad appends to a captured slice from concurrent workers: both a race on
// the slice header and an ordering leak.
func Bad(n int) []int {
	var out []int
	par.For(n, func(i int) {
		out = append(out, i) // want `writes captured variable out outside a per-index slot`
	})
	return out
}

// BadCounter increments a captured scalar without synchronization.
func BadCounter(n int) int {
	total := 0
	par.For(n, func(i int) {
		total++ // want `writes captured variable total outside a per-index slot`
	})
	return total
}

// BadMap writes a captured map: map writes are never per-index-disjoint.
func BadMap(n int) map[int]int {
	out := make(map[int]int)
	par.For(n, func(i int) {
		out[i] = i // want `writes captured map out`
	})
	return out
}

// Locked accumulates under a mutex: synchronized, allowed.
func Locked(n int) int {
	var mu sync.Mutex
	total := 0
	par.For(n, func(i int) {
		mu.Lock()
		total += i
		mu.Unlock()
	})
	return total
}

// LockedDefer holds the mutex to worker exit via defer.
func LockedDefer(n int) int {
	var mu sync.Mutex
	total := 0
	par.For(n, func(i int) {
		mu.Lock()
		defer mu.Unlock()
		total += i
	})
	return total
}

// push appends v through dst — a caller-visible mutation of *dst.
func push(dst *[]int, v int) {
	*dst = append(*dst, v)
}

// BadHelper smuggles the captured write through a helper call; the helper's
// effect summary carries the mutation back to the worker.
func BadHelper(n int) []int {
	var out []int
	par.For(n, func(i int) {
		push(&out, i) // want `call to push mutates captured out`
	})
	return out
}

// GoodHelperSlot routes the same helper at the worker's own slot: the
// mutation stays per-index-disjoint.
func GoodHelperSlot(n int) [][]int {
	slots := make([][]int, n)
	par.For(n, func(i int) {
		push(&slots[i], i)
	})
	return slots
}

// GoodDerivedIndex indexes slots by a local derived from the worker index
// (the segment-partition idiom: each worker owns the slots its index maps
// to). The derivation's injectivity is the author's obligation; the shape
// — index traceable to the worker parameter — is what the analyzer
// accepts.
func GoodDerivedIndex(n int, affected []int) []int {
	slots := make([]int, len(affected))
	par.For(n, func(j int) {
		i := affected[j]
		slots[i] = i * i
	})
	return slots
}

// BadUnrelatedIndex indexes by a local with no tie to the worker index:
// every worker hits slot 0.
func BadUnrelatedIndex(n int) []int {
	slots := make([]int, n)
	par.For(n, func(i int) {
		k := 0
		slots[k] += i // want `writes captured variable slots outside a per-index slot`
	})
	return slots
}
