package overlay

// Join-bucket chains: the persistent hash indexes the provenance tree
// keeps on the children of every join node, mapping a join-key to the
// chain of partner tuples. Moved here from package provenance so the
// annotation layer's incremental where-index can reuse them.

import "repro/internal/relation"

// Bucket is a persistent chain of one join key's partner tuples: appends
// cons a fresh chunk onto the chain in O(|chunk|), sharing every earlier
// chunk — a hub key's history is never copied per write. Iteration is
// oldest-chunk-first, preserving append order.
type Bucket struct {
	prev   *Bucket
	tuples []relation.Tuple
}

// Each walks the chain in append order; stale tuples (lazily removed, see
// BucketVal) are included — callers skip them by liveness lookups.
// Iterative, not recursive: a hub key gaining one chunk per commit grows
// its chain linearly in write count (chunks only merge at the half-stale
// compaction), and probe stack depth must not grow with it. The chunk walk
// is O(chunks) ≤ O(tuples), which a probe pays anyway.
func (b *Bucket) Each(yield func(relation.Tuple) bool) bool {
	var arr [32]*Bucket
	chunks := arr[:0] // heap-free for shallow chains
	for c := b; c != nil; c = c.prev {
		chunks = append(chunks, c)
	}
	for i := len(chunks) - 1; i >= 0; i-- {
		for _, t := range chunks[i].tuples {
			if !yield(t) {
				return false
			}
		}
	}
	return true
}

// BucketVal is one key's entry in a join node's bucket index: the chunk
// chain plus bookkeeping for lazy removal. A removed tuple stays in the
// chain and only the stale count advances, in O(1); the live count is what
// probes spend. Once stale entries reach half the chain the bucket is
// compacted against the child's live map, so the chain length stays within
// 2× of the live fan-out and removal is amortized O(1).
type BucketVal struct {
	chain *Bucket
	n     int // tuples across the chain, stale included
	dead  int // stale (removed) tuples across the chain
}

// Live returns the number of live tuples in the bucket — the exact join
// fan-out of its key. O(1).
func (bv BucketVal) Live() int { return bv.n - bv.dead }

// Each walks every chain entry in append order, stale ones included;
// callers that need only the live fan-out should use EachLive.
func (bv BucketVal) Each(yield func(relation.Tuple) bool) bool { return bv.chain.Each(yield) }

// EachLive walks the chain in append order yielding each live tuple
// exactly once, using alive to recognize stale entries and the live count
// to stop as soon as every live tuple has been emitted — a probe never
// walks the stale tail of a churned bucket, and an all-stale bucket costs
// O(1). Entries before the last live one are still visited (their
// positions are unknown), so the worst-case walk is the chain prefix
// holding the live entries, itself bounded at 2× the live fan-out by the
// half-stale compaction.
//
// A key removed and later re-added appears in the chain twice with only
// the net copy counted live; the seen set makes the walk yield it once.
func (bv BucketVal) EachLive(alive func(key string) bool, yield func(relation.Tuple) bool) bool {
	remaining := bv.Live()
	if remaining <= 0 {
		return true
	}
	var seen map[string]bool
	bv.chain.Each(func(t relation.Tuple) bool {
		k := t.Key()
		if seen[k] || !alive(k) {
			return true
		}
		if !yield(t) {
			remaining = -1
			return false
		}
		remaining--
		if remaining == 0 {
			return false
		}
		if seen == nil {
			seen = make(map[string]bool, remaining+1)
		}
		seen[k] = true
		return true
	})
	return remaining >= 0
}

// BucketBase hashes a relation on the join key — the flat base of a join
// node's persistent bucket index.
func BucketBase(r *relation.Relation, key func(relation.Tuple) string) *Map[BucketVal] {
	groups := make(map[string][]relation.Tuple)
	r.Each(func(t relation.Tuple) bool {
		k := key(t)
		//lint:ignore eachretain bucket chains adopt aliases into the immutable base relation; Bucket nodes are persistent and never written through
		groups[k] = append(groups[k], t)
		return true
	})
	base := make(map[string]BucketVal, len(groups))
	for k, ts := range groups {
		base[k] = BucketVal{chain: &Bucket{tuples: ts}, n: len(ts)}
	}
	return NewMap(base)
}

// BucketsAdd derives the bucket index with the novel tuples appended to
// their key groups, in O(|novel|).
func BucketsAdd(b *Map[BucketVal], novel []relation.Tuple, key func(relation.Tuple) string, met *Metrics) *Map[BucketVal] {
	if len(novel) == 0 {
		return b
	}
	byKey := make(map[string][]relation.Tuple)
	for _, t := range novel {
		k := key(t)
		byKey[k] = append(byKey[k], t)
	}
	set := make(map[string]BucketVal, len(byKey))
	for k, add := range byKey {
		old, _ := b.Get(k)
		set[k] = BucketVal{chain: &Bucket{prev: old.chain, tuples: add}, n: old.n + len(add), dead: old.dead}
	}
	return b.Derive(set, nil, met)
}

// BucketsRemove derives the bucket index with the died tuples lazily
// removed from their key groups: the stale count advances in O(1) per key.
// A bucket whose live count reaches zero is dropped immediately — also
// O(1), without walking the chain — and a bucket whose chain has become
// half stale is compacted, rebuilt from the live tuples (those alive still
// recognizes, deduplicated), amortizing the rebuild over the removals that
// provoked it.
func BucketsRemove(b *Map[BucketVal], died []relation.Tuple, key func(relation.Tuple) string, alive func(string) bool, met *Metrics) *Map[BucketVal] {
	if len(died) == 0 {
		return b
	}
	byKey := make(map[string]int)
	for _, t := range died {
		byKey[key(t)]++
	}
	set := make(map[string]BucketVal, len(byKey))
	dead := make(map[string]struct{})
	for k, removed := range byKey {
		old, ok := b.Get(k)
		if !ok {
			continue
		}
		nv := BucketVal{chain: old.chain, n: old.n, dead: old.dead + removed}
		if nv.Live() <= 0 {
			dead[k] = struct{}{}
			continue
		}
		if nv.dead*2 >= nv.n {
			seen := make(map[string]bool, nv.Live())
			var kept []relation.Tuple
			nv.chain.Each(func(t relation.Tuple) bool {
				tk := t.Key()
				if !seen[tk] && alive(tk) {
					seen[tk] = true
					kept = append(kept, t)
				}
				return true
			})
			if len(kept) == 0 {
				dead[k] = struct{}{}
				continue
			}
			nv = BucketVal{chain: &Bucket{tuples: kept}, n: len(kept)}
		}
		set[k] = nv
	}
	return b.Derive(set, dead, met)
}
