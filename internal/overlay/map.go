// Package overlay provides the persistent, structure-sharing containers
// shared by the provenance tree's per-node state and the annotation
// layer's where-provenance index: a string-keyed map with an immutable
// base plus layered deltas, and the join-bucket chains used by the
// incremental maintenance passes. Both follow the representation relation
// versions use (internal/relation/version.go), with the same compaction
// thresholds (relation.OverlayFoldLimit / relation.OverlayMaxDepth), so
// deriving the next generation of a node's state costs O(|Δ|) — the base
// and all earlier layers are shared by pointer — instead of an O(|node|)
// wholesale copy per write.
//
// Resolution rule: the topmost layer mentioning a key decides it (set ⇒
// that value, dead ⇒ absent); an unmentioned key falls through to the
// base. Values are treated as immutable once stored — a derive that
// changes a key's value stores a freshly built value, never mutates the
// old one — which is what makes generations safe to read concurrently.
package overlay

import (
	"sync/atomic"

	"repro/internal/relation"
)

// Metrics counts overlay-map compaction over the lifetime of a generation
// chain (or a family of chains, e.g. every map of one provenance tree);
// the counters are cumulative and safe for concurrent use. A nil *Metrics
// disables counting.
type Metrics struct {
	folds    atomic.Int64
	squashes atomic.Int64
}

// Folds reports overlays folded into a fresh flat base.
func (m *Metrics) Folds() int64 {
	if m == nil {
		return 0
	}
	return m.folds.Load()
}

// Squashes reports overlay chains merged into a single layer.
func (m *Metrics) Squashes() int64 {
	if m == nil {
		return 0
	}
	return m.squashes.Load()
}

// mapLayer is one immutable overlay generation of a Map.
type mapLayer[V any] struct {
	below    *mapLayer[V]
	set      map[string]V        // keys (re)bound at this layer
	dead     map[string]struct{} // keys removed at this layer
	depth    int                 // layers in the chain, this one included
	mentions int                 // cumulative len(set)+len(dead) across the chain
}

// Map is a persistent string-keyed map: an immutable base shared across
// every version derived from it, plus a chain of overlay layers.
type Map[V any] struct {
	base map[string]V
	top  *mapLayer[V]
	live int // current entry count
}

// NewMap wraps an eagerly built map as a flat base version. The map is
// owned by the Map afterwards and must not be mutated.
func NewMap[V any](base map[string]V) *Map[V] {
	return &Map[V]{base: base, live: len(base)}
}

// Get resolves key k through the overlay.
func (m *Map[V]) Get(k string) (V, bool) {
	for l := m.top; l != nil; l = l.below {
		if v, ok := l.set[k]; ok {
			return v, true
		}
		if _, ok := l.dead[k]; ok {
			var zero V
			return zero, false
		}
	}
	v, ok := m.base[k]
	return v, ok
}

// Has reports whether k is bound.
func (m *Map[V]) Has(k string) bool {
	_, ok := m.Get(k)
	return ok
}

// Size returns the current entry count. O(1).
func (m *Map[V]) Size() int { return m.live }

// decisions resolves every key the overlay mentions to its deciding layer
// (nil when the topmost mention is a removal). Keys absent from the result
// fall through to the base.
func (m *Map[V]) decisions() map[string]*mapLayer[V] {
	if m.top == nil {
		return nil
	}
	d := make(map[string]*mapLayer[V], m.top.mentions)
	for l := m.top; l != nil; l = l.below {
		for k := range l.set {
			if _, ok := d[k]; !ok {
				d[k] = l
			}
		}
		for k := range l.dead {
			if _, ok := d[k]; !ok {
				d[k] = nil
			}
		}
	}
	return d
}

// Each calls yield for every live entry, in no particular order, stopping
// early if yield returns false.
func (m *Map[V]) Each(yield func(k string, v V) bool) {
	d := m.decisions()
	for k, v := range m.base {
		if l, mentioned := d[k]; mentioned {
			if l == nil {
				continue
			}
			if !yield(k, l.set[k]) {
				return
			}
			delete(d, k) // yielded; don't emit again below
			continue
		}
		if !yield(k, v) {
			return
		}
	}
	for k, l := range d {
		if l == nil {
			continue
		}
		if _, inBase := m.base[k]; inBase {
			continue // already yielded above
		}
		if !yield(k, l.set[k]) {
			return
		}
	}
}

// Flatten materializes the current entries into a fresh map.
func (m *Map[V]) Flatten() map[string]V {
	out := make(map[string]V, m.live)
	m.Each(func(k string, v V) bool {
		out[k] = v
		return true
	})
	return out
}

// Derive publishes the version of m with the keys of set (re)bound and the
// keys of dead removed, folding or squashing when the overlay trips the
// shared thresholds. set and dead must be disjoint and are owned by the
// new version afterwards; passing both empty returns the receiver. The
// receiver is unchanged. O(|Δ|) plus amortized compaction.
func (m *Map[V]) Derive(set map[string]V, dead map[string]struct{}, met *Metrics) *Map[V] {
	if len(set) == 0 && len(dead) == 0 {
		return m
	}
	live := m.live
	for k := range set {
		if !m.Has(k) {
			live++
		}
	}
	for k := range dead {
		if m.Has(k) {
			live--
		}
	}
	l := &mapLayer[V]{
		below:    m.top,
		set:      set,
		dead:     dead,
		depth:    1,
		mentions: len(set) + len(dead),
	}
	if m.top != nil {
		l.depth += m.top.depth
		l.mentions += m.top.mentions
	}
	v := &Map[V]{base: m.base, top: l, live: live}
	if l.mentions > relation.OverlayFoldLimit(len(m.base)) {
		if met != nil {
			met.folds.Add(1)
		}
		return &Map[V]{base: v.Flatten(), live: live}
	}
	if l.depth > relation.OverlayMaxDepth {
		if met != nil {
			met.squashes.Add(1)
		}
		v.top = v.squashedTop()
	}
	return v
}

// squashedTop merges the whole chain into one layer over the same base:
// every mentioned base key that died is kept as a removal, every live
// mentioned key as a binding. O(overlay); the base is untouched.
func (m *Map[V]) squashedTop() *mapLayer[V] {
	d := m.decisions()
	set := make(map[string]V)
	dead := make(map[string]struct{})
	for k, l := range d {
		if l != nil {
			set[k] = l.set[k]
		} else if _, inBase := m.base[k]; inBase {
			dead[k] = struct{}{}
		}
	}
	return &mapLayer[V]{set: set, dead: dead, depth: 1, mentions: len(set) + len(dead)}
}

// Depth reports the overlay chain length (0 when flat).
func (m *Map[V]) Depth() int {
	if m.top == nil {
		return 0
	}
	return m.top.depth
}

// Mentions reports the cumulative overlay size (0 when flat).
func (m *Map[V]) Mentions() int {
	if m.top == nil {
		return 0
	}
	return m.top.mentions
}
