package overlay

import (
	"strconv"
	"testing"

	"repro/internal/relation"
)

func tupKey(t relation.Tuple) string { return t.Key() }

// liveSet builds the alive predicate from the keys currently considered
// live, and returns it with the set for mutation.
func liveSet(keys ...string) (map[string]bool, func(string) bool) {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m, func(k string) bool { return m[k] }
}

func bucketOf(t *testing.T, b *Map[BucketVal], key string) BucketVal {
	t.Helper()
	bv, ok := b.Get(key)
	if !ok {
		t.Fatalf("bucket %q missing", key)
	}
	return bv
}

// TestEachLiveYieldsExactlyLive asserts that a probe of a lazily-churned
// bucket yields exactly the live tuples — stale chain entries are
// recognized and skipped, never emitted.
func TestEachLiveYieldsExactlyLive(t *testing.T) {
	r := relation.New("R", relation.NewSchema("A"))
	// A constant bucket key models a hub join key holding every tuple in
	// one chain.
	for i := 0; i < 102; i++ {
		r.InsertStrings("v" + strconv.Itoa(i))
	}
	hub := func(relation.Tuple) string { return "hub" }
	b := BucketBase(r, hub)

	// Kill v2..v50 (49 of 102: below the half-stale bound, so the chain
	// keeps the stale entries and only the counts move).
	m, aliveFn := liveSet()
	for i := 0; i < 102; i++ {
		m[relation.StringTuple("v"+strconv.Itoa(i)).Key()] = i < 2 || i > 50
	}
	var died []relation.Tuple
	for i := 2; i <= 50; i++ {
		died = append(died, relation.StringTuple("v"+strconv.Itoa(i)))
	}
	b2 := BucketsRemove(b, died, hub, aliveFn, nil)

	bv := bucketOf(t, b2, "hub")
	if bv.Live() != 53 {
		t.Fatalf("Live() = %d, want 53", bv.Live())
	}
	visited := 0
	bv.EachLive(aliveFn, func(tu relation.Tuple) bool {
		if !aliveFn(tu.Key()) {
			t.Fatalf("EachLive yielded stale tuple %v", tu)
		}
		visited++
		return true
	})
	if visited != 53 {
		t.Fatalf("EachLive yielded %d tuples, want 53", visited)
	}
}

// TestEachLiveEarlyExitBound asserts the probe-cost contract directly: on
// a bucket whose live tuples sit at the front of the chain, EachLive never
// reaches the stale tail.
func TestEachLiveEarlyExitBound(t *testing.T) {
	hub := func(relation.Tuple) string { return "hub" }
	r := relation.New("R", relation.NewSchema("A"))
	// 101 tuples that stay live, then 100 that die: the live prefix sits at
	// the front of the chain, the stale tail behind it.
	for i := 0; i < 201; i++ {
		r.InsertStrings("v" + strconv.Itoa(i))
	}
	b := BucketBase(r, hub)

	var died []relation.Tuple
	m, aliveFn := liveSet()
	for i := 0; i < 201; i++ {
		k := relation.StringTuple("v" + strconv.Itoa(i)).Key()
		if i < 101 {
			m[k] = true
		} else {
			died = append(died, relation.StringTuple("v"+strconv.Itoa(i)))
		}
	}
	b = BucketsRemove(b, died, hub, aliveFn, nil) // 100 dead of 201: stays lazy

	bv := bucketOf(t, b, "hub")
	if bv.Live() != 101 {
		t.Fatalf("Live() = %d, want 101", bv.Live())
	}
	walked := 0
	bv.EachLive(func(k string) bool { walked++; return aliveFn(k) }, func(relation.Tuple) bool { return true })
	// The live count runs out at the 101st entry; the 100-entry stale tail
	// is never visited.
	if walked != 101 {
		t.Fatalf("probe walked %d chain entries for a front-loaded bucket, want 101", walked)
	}
}

// TestEachLiveReAddedKeyYieldsOnce covers the re-add hazard: a key removed
// and re-added appears twice in the chain with a net live count of one;
// the probe must yield it exactly once and still terminate on the count.
func TestEachLiveReAddedKeyYieldsOnce(t *testing.T) {
	hub := func(relation.Tuple) string { return "hub" }
	r := relation.New("R", relation.NewSchema("A"))
	r.InsertStrings("x")
	r.InsertStrings("y")
	b := BucketBase(r, hub)

	x := relation.StringTuple("x")
	m, aliveFn := liveSet(x.Key(), relation.StringTuple("y").Key())

	// Remove x (lazily: 1 dead of 2 → triggers half-stale compaction; so
	// first grow the bucket to keep it lazy).
	b = BucketsAdd(b, []relation.Tuple{relation.StringTuple("z1"), relation.StringTuple("z2"), relation.StringTuple("z3")}, hub, nil)
	m[relation.StringTuple("z1").Key()] = true
	m[relation.StringTuple("z2").Key()] = true
	m[relation.StringTuple("z3").Key()] = true
	m[x.Key()] = false
	b = BucketsRemove(b, []relation.Tuple{x}, hub, aliveFn, nil)

	// Re-add x: chain now holds x twice, live count nets to one copy each
	// for x, y, z1..z3.
	m[x.Key()] = true
	b = BucketsAdd(b, []relation.Tuple{x}, hub, nil)

	bv := bucketOf(t, b, "hub")
	if bv.Live() != 5 {
		t.Fatalf("Live() = %d, want 5", bv.Live())
	}
	seen := map[string]int{}
	ok := bv.EachLive(aliveFn, func(tu relation.Tuple) bool {
		seen[tu.Key()]++
		return true
	})
	if !ok {
		t.Fatal("EachLive reported early stop")
	}
	total := 0
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %q yielded %d times", k, n)
		}
		total++
	}
	if total != 5 {
		t.Fatalf("EachLive yielded %d distinct keys, want 5", total)
	}
}

// TestBucketsRemoveDropsEmptyInO1 asserts the all-stale fast path: when
// removals bring a bucket's live count to zero, the bucket is dropped
// without the compaction pass ever touching the chain (the alive predicate
// is never consulted).
func TestBucketsRemoveDropsEmptyInO1(t *testing.T) {
	hub := func(relation.Tuple) string { return "hub" }
	r := relation.New("R", relation.NewSchema("A"))
	var died []relation.Tuple
	for i := 0; i < 50; i++ {
		r.InsertStrings("v" + strconv.Itoa(i))
		died = append(died, relation.StringTuple("v"+strconv.Itoa(i)))
	}
	b := BucketBase(r, hub)

	probes := 0
	b = BucketsRemove(b, died, hub, func(string) bool { probes++; return false }, nil)
	if probes != 0 {
		t.Fatalf("empty-bucket drop consulted the alive predicate %d times, want 0", probes)
	}
	if _, ok := b.Get("hub"); ok {
		t.Fatal("all-stale bucket still present")
	}
}
