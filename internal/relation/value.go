// Package relation implements the relational data model used throughout the
// reproduction of Buneman, Khanna and Tan, "On Propagation of Deletions and
// Annotations Through Views" (PODS 2002): named relations with set semantics,
// schemas, tuples, databases, and the (relation, tuple, attribute) locations
// on which annotations are placed.
//
// The model follows the paper exactly: relations are sets of tuples over a
// fixed schema of named attributes, tuple identity is by value, and a
// "location" is a triple (R, t, A) referring to attribute A of tuple t in
// relation R.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the primitive types a Value can hold. The paper works
// with uninterpreted constants; strings cover those, and integers are
// provided for synthetic workloads.
type Kind uint8

// The value kinds.
const (
	KindString Kind = iota
	KindInt
)

// Value is a single attribute value. Values are immutable and comparable
// with ==, so they can participate in map keys and tuple equality directly.
type Value struct {
	kind Kind
	s    string
	i    int64
}

// String constructs a string-valued constant.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int constructs an integer-valued constant.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// Str returns the string payload. It is only meaningful when Kind() ==
// KindString.
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload. It is only meaningful when Kind() ==
// KindInt.
func (v Value) IntVal() int64 { return v.i }

// Equal reports whether two values are identical.
func (v Value) Equal(w Value) bool { return v == w }

// Less imposes a total order on values: all strings sort before all
// integers, strings lexicographically, integers numerically. The order is
// used only to make printed output and iteration deterministic.
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind < w.kind
	}
	if v.kind == KindString {
		return v.s < w.s
	}
	return v.i < w.i
}

// Compare returns -1, 0 or +1 according to the order defined by Less.
func (v Value) Compare(w Value) int {
	if v == w {
		return 0
	}
	if v.Less(w) {
		return -1
	}
	return 1
}

// String renders the value for humans: bare text for strings, decimal for
// integers.
func (v Value) String() string {
	if v.kind == KindInt {
		return strconv.FormatInt(v.i, 10)
	}
	return v.s
}

// appendKey writes an unambiguous encoding of the value to b, used to build
// map keys for tuples. The encoding escapes the separator characters so that
// distinct tuples never collide.
func (v Value) appendKey(b *strings.Builder) {
	if v.kind == KindInt {
		b.WriteByte('#')
		b.WriteString(strconv.FormatInt(v.i, 10))
		return
	}
	b.WriteByte('$')
	for i := 0; i < len(v.s); i++ {
		c := v.s[i]
		if c == '\\' || c == '|' || c == '#' || c == '$' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
}

// ParseValue parses the textual form produced by Value.String, interpreting
// pure decimal strings as integers when intHint is true.
func ParseValue(s string, intHint bool) Value {
	if intHint {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int(n)
		}
	}
	return String(s)
}

// Values is a convenience constructor turning a list of strings into values.
func Values(ss ...string) []Value {
	vs := make([]Value, len(ss))
	for i, s := range ss {
		vs[i] = String(s)
	}
	return vs
}

// FormatValues renders a slice of values as a comma-separated list.
func FormatValues(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return fmt.Sprintf("(%s)", strings.Join(parts, ", "))
}
