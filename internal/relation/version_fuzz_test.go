package relation_test

// FuzzVersionedOps is the fuzzer-driven sibling of
// TestVersionedOpsDifferential: the fuzzer invents the operation script
// instead of a seeded PRNG, so it can steer the store into interleavings
// the random walk never visits (delete-heavy runs that empty a relation,
// duplicate storms, pathological shard counts). Every step is checked
// against the copy-the-world oracle on every observable surface; CI runs
// it as a short smoke (-fuzz=FuzzVersionedOps -fuzztime=10s) and the seed
// corpus keeps it meaningful as a plain test.

import (
	"strconv"
	"testing"

	"repro/internal/relation"
	"repro/internal/storetest"
)

func FuzzVersionedOps(f *testing.F) {
	// Seeds: a delete/insert mix on the flat store, a sharded run, a
	// delete-everything script, and a duplicate-heavy one.
	f.Add(uint8(0), []byte{0, 1, 2, 3, 4, 5, 0, 200, 3, 9, 1, 7})
	f.Add(uint8(4), []byte{2, 0, 2, 1, 0, 0, 4, 3, 5, 5, 3, 2, 0, 9})
	f.Add(uint8(1), []byte{0, 0, 1, 0, 0, 1, 1, 1, 0, 2, 1, 2, 0, 3, 1, 3})
	f.Add(uint8(7), []byte{4, 0, 4, 1, 4, 2, 2, 8, 4, 9, 5, 6})

	f.Fuzz(func(t *testing.T, segments uint8, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		db := diffSeedDB(12, 9)
		if segs := int(segments % 8); segs > 0 {
			db = db.Sharded(segs)
		}
		o := storetest.NewOracle(db)
		fresh := 0

		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i], int(script[i+1])
			rel := []string{"R", "S"}[op&1]
			r := db.Relation(rel)
			switch op % 6 {
			case 0, 1: // delete one existing tuple (a miss when empty)
				var T []relation.SourceTuple
				if r.Len() > 0 {
					T = append(T, relation.SourceTuple{Rel: rel, Tuple: r.Tuple(arg % r.Len())})
				} else {
					T = append(T, relation.SourceTuple{Rel: rel, Tuple: relation.StringTuple("missing", "missing")})
				}
				db = db.DeleteAll(T)
				o.DeleteAll(T)
			case 2, 3: // insert a brand-new tuple
				fresh++
				I := []relation.SourceTuple{{Rel: rel, Tuple: relation.StringTuple("n"+strconv.Itoa(fresh), "m"+strconv.Itoa(arg%5))}}
				next, err := db.InsertAll(I)
				if err != nil {
					t.Fatalf("step %d: InsertAll: %v", i/2, err)
				}
				db = next
				o.InsertAll(I)
			case 4: // re-insert an existing tuple (duplicate: must be a no-op)
				if r.Len() == 0 {
					continue
				}
				I := []relation.SourceTuple{{Rel: rel, Tuple: r.Tuple(arg % r.Len())}}
				next, err := db.InsertAll(I)
				if err != nil {
					t.Fatalf("step %d: duplicate InsertAll: %v", i/2, err)
				}
				db = next
				o.InsertAll(I)
			case 5: // delete a tuple that is not there
				T := []relation.SourceTuple{{Rel: rel, Tuple: relation.StringTuple("ghost"+strconv.Itoa(arg), "ghost")}}
				db = db.DeleteAll(T)
				o.DeleteAll(T)
			}
			assertSameDB(t, db, o, "step "+strconv.Itoa(i/2))
		}
		assertSameDB(t, db, o, "final")
	})
}
