package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Database is a named collection of relations — the source database S of
// the paper. Relation names are unique.
type Database struct {
	rels  map[string]*Relation
	order []string // insertion order of relation names
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Add inserts relation r. It returns an error if a relation with the same
// name already exists.
func (db *Database) Add(r *Relation) error {
	if _, ok := db.rels[r.Name()]; ok {
		return fmt.Errorf("relation: database already has relation %q", r.Name())
	}
	db.rels[r.Name()] = r
	db.order = append(db.order, r.Name())
	return nil
}

// MustAdd is Add but panics on duplicate names; convenient in tests and
// generators where names are controlled.
func (db *Database) MustAdd(r *Relation) {
	if err := db.Add(r); err != nil {
		panic(err)
	}
}

// Relation returns the relation with the given name, or nil.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// Has reports whether the database contains a relation with the given name.
func (db *Database) Has(name string) bool {
	_, ok := db.rels[name]
	return ok
}

// Names returns the relation names in insertion order.
func (db *Database) Names() []string { return db.order }

// Relations returns the relations in insertion order.
func (db *Database) Relations() []*Relation {
	out := make([]*Relation, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.rels[n])
	}
	return out
}

// Size returns the total number of tuples across all relations.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the database.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for _, n := range db.order {
		c.MustAdd(db.rels[n].Clone())
	}
	return c
}

// SourceTuple identifies one tuple of one relation in a database; the unit
// of deletion in the paper's view-deletion problems.
type SourceTuple struct {
	Rel   string
	Tuple Tuple
}

// Key returns a canonical map key for the source tuple.
func (s SourceTuple) Key() string { return s.Rel + "\x00" + s.Tuple.Key() }

// String renders the source tuple as R(v1, v2).
func (s SourceTuple) String() string { return s.Rel + s.Tuple.String() }

// SortSourceTuples orders source tuples by relation name then tuple value,
// for deterministic output.
func SortSourceTuples(ts []SourceTuple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Rel != ts[j].Rel {
			return ts[i].Rel < ts[j].Rel
		}
		return ts[i].Tuple.Less(ts[j].Tuple)
	})
}

// Contains reports whether the database has the given source tuple.
func (db *Database) Contains(st SourceTuple) bool {
	r := db.rels[st.Rel]
	return r != nil && r.Contains(st.Tuple)
}

// DeleteAll returns a copy of the database with the given source tuples
// removed: the S \ T of the paper. Missing tuples are ignored. The receiver
// is not modified.
func (db *Database) DeleteAll(T []SourceTuple) *Database {
	drop := make(map[string]map[string]bool)
	for _, st := range T {
		m := drop[st.Rel]
		if m == nil {
			m = make(map[string]bool)
			drop[st.Rel] = m
		}
		m[st.Tuple.Key()] = true
	}
	c := NewDatabase()
	for _, n := range db.order {
		r := db.rels[n]
		nr := New(r.Name(), r.Schema())
		dropped := drop[n]
		for _, t := range r.Tuples() {
			if dropped != nil && dropped[t.Key()] {
				continue
			}
			nr.Insert(t)
		}
		c.MustAdd(nr)
	}
	return c
}

// InsertAll returns a copy of the database with the given source tuples
// added: the S ∪ I dual of DeleteAll. Tuples already present are ignored
// (set semantics), so re-inserting exactly the tuples a previous deletion
// removed restores the original database. Unlike DeleteAll — where a
// missing tuple is a harmless no-op — an insertion names a relation and
// carries a payload, so an unknown relation or an arity mismatch is an
// error, reported before any copying. The receiver is not modified. Novel
// tuples are appended after the existing ones in request order, keeping
// iteration order deterministic.
func (db *Database) InsertAll(I []SourceTuple) (*Database, error) {
	for _, st := range I {
		r := db.rels[st.Rel]
		if r == nil {
			return nil, fmt.Errorf("relation: insert into unknown relation %q", st.Rel)
		}
		if len(st.Tuple) != r.Schema().Len() {
			return nil, fmt.Errorf("relation: inserting arity-%d tuple into %s%s", len(st.Tuple), st.Rel, r.Schema())
		}
	}
	c := db.Clone()
	for _, st := range I {
		c.rels[st.Rel].Insert(st.Tuple)
	}
	return c, nil
}

// AllSourceTuples enumerates every tuple of every relation in insertion
// order — the candidate deletion set for exhaustive solvers.
func (db *Database) AllSourceTuples() []SourceTuple {
	var out []SourceTuple
	for _, n := range db.order {
		for _, t := range db.rels[n].Tuples() {
			out = append(out, SourceTuple{Rel: n, Tuple: t})
		}
	}
	return out
}

// String renders the database as relation tables separated by blank lines.
func (db *Database) String() string {
	var parts []string
	for _, n := range db.order {
		parts = append(parts, db.rels[n].Table())
	}
	return strings.Join(parts, "\n")
}
