package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// storeMetrics counts versioned-store activity over the lifetime of a
// database version chain. One instance is shared by every generation
// derived from the same root (Freeze starts a fresh one), so the counters
// are cumulative across commits.
type storeMetrics struct {
	// guarded-by: atomic
	derives atomic.Int64 // DeleteAll/InsertAll generations derived
	// guarded-by: atomic
	sharedRels atomic.Int64 // relations shared by pointer during derives
	// guarded-by: atomic
	rewrittenRels atomic.Int64 // relations given a new overlay version
	// guarded-by: atomic
	folds atomic.Int64 // overlays folded into a fresh base
	// guarded-by: atomic
	squashes atomic.Int64 // overlay chains merged into one layer
	// guarded-by: atomic
	parallelDerives atomic.Int64 // derives that scattered across >1 segment
}

// StoreStats is a point-in-time summary of the versioned source store:
// the current generation's shape (overlay depth and size per the deepest
// relation) plus the lifetime sharing and compaction counters.
type StoreStats struct {
	// Version counts the generations derived since the chain's root.
	Version int64 `json:"version"`
	// Relations is the relation count of this generation.
	Relations int `json:"relations"`
	// OverlayRelations counts relations currently carrying an overlay
	// (the rest are flat).
	OverlayRelations int `json:"overlay_relations"`
	// MaxOverlayDepth is the deepest overlay chain of this generation.
	MaxOverlayDepth int `json:"max_overlay_depth"`
	// OverlayMentions is the total overlay size (tombstones + appended
	// tuples) across relations of this generation.
	OverlayMentions int `json:"overlay_mentions"`
	// DerivedVersions counts DeleteAll/InsertAll generations over the
	// chain's lifetime.
	DerivedVersions int64 `json:"derived_versions"`
	// SharedRelations counts relations passed untouched (by pointer) from
	// one generation to the next, cumulatively.
	SharedRelations int64 `json:"shared_relations"`
	// RewrittenRelations counts O(|Δ|) overlay versions created,
	// cumulatively. SharedRelations/(SharedRelations+RewrittenRelations)
	// is the structure-sharing ratio.
	RewrittenRelations int64 `json:"rewritten_relations"`
	// Compactions counts overlays folded into a fresh flat base.
	Compactions int64 `json:"compactions"`
	// Squashes counts overlay chains merged into a single layer without
	// touching the base.
	Squashes int64 `json:"squashes"`
	// Segmented summarizes the sharded relations of this generation (all
	// zero when the store was built with Freeze rather than Sharded).
	Segmented SegmentStats `json:"segmented"`
}

// SegmentStats summarizes the sharded portion of a store generation: how
// the tuples spread over segments and how much scatter/gather parallelism
// the commit path has exercised.
type SegmentStats struct {
	// Relations counts relations stored segmented this generation.
	Relations int `json:"relations"`
	// Segments is the total segment count across segmented relations.
	Segments int `json:"segments"`
	// MaxSegmentTuples is the live tuple count of the fullest segment — a
	// skew indicator; near Size/Segments means the hash spreads evenly.
	MaxSegmentTuples int `json:"max_segment_tuples"`
	// MaxOverlayDepth is the deepest per-segment overlay chain.
	MaxOverlayDepth int `json:"max_overlay_depth"`
	// OverlayMentions is the total overlay size across all segments.
	OverlayMentions int `json:"overlay_mentions"`
	// ParallelDerives counts commits whose delta touched more than one
	// segment of some relation, scattering the derive across workers.
	ParallelDerives int64 `json:"parallel_derives"`
}

// metrics returns the chain's counters, attaching a fresh set to databases
// assembled without NewDatabase.
func (db *Database) metrics() *storeMetrics {
	if db.m == nil {
		db.m = &storeMetrics{}
	}
	return db.m
}

// StoreStats summarizes the versioned store as of this generation.
// O(#relations).
func (db *Database) StoreStats() StoreStats {
	m := db.metrics()
	st := StoreStats{
		Version:            db.version,
		Relations:          len(db.rels),
		DerivedVersions:    m.derives.Load(),
		SharedRelations:    m.sharedRels.Load(),
		RewrittenRelations: m.rewrittenRels.Load(),
		Compactions:        m.folds.Load(),
		Squashes:           m.squashes.Load(),
	}
	st.Segmented.ParallelDerives = m.parallelDerives.Load()
	for _, r := range db.rels {
		if d := r.overlayDepth(); d > 0 {
			st.OverlayRelations++
			if d > st.MaxOverlayDepth {
				st.MaxOverlayDepth = d
			}
			st.OverlayMentions += r.overlayMentions()
		}
		if r.seg == nil {
			continue
		}
		st.Segmented.Relations++
		st.Segmented.Segments += len(r.seg.segs)
		st.Segmented.OverlayMentions += r.seg.overlayMentions()
		if d := r.seg.overlayDepth(); d > st.Segmented.MaxOverlayDepth {
			st.Segmented.MaxOverlayDepth = d
		}
		for _, s := range r.seg.segs {
			if s.live > st.Segmented.MaxSegmentTuples {
				st.Segmented.MaxSegmentTuples = s.live
			}
		}
	}
	return st
}

// Database is a named collection of relations — the source database S of
// the paper. Relation names are unique.
//
// Databases are versioned: DeleteAll, InsertAll and Freeze derive new
// generations in O(|Δ|) that share structure with the receiver — untouched
// relations by pointer, touched relations as overlay versions over the
// same base storage (see version.go). A derived database is a snapshot:
// treat it and its ancestor as read-only afterwards, since legacy
// mutations through a pointer-shared relation are visible in both. (The
// mutators themselves stay safe: a relation whose storage is shared
// copies before writing.)
type Database struct {
	rels  map[string]*Relation
	order []string // insertion order of relation names

	m *storeMetrics // lifetime counters, shared along the version chain
	// version counts derives since the chain's root.
	// propview:generation
	version int64
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation), m: &storeMetrics{}}
}

// Add inserts relation r. It returns an error if a relation with the same
// name already exists.
func (db *Database) Add(r *Relation) error {
	if _, ok := db.rels[r.Name()]; ok {
		return fmt.Errorf("relation: database already has relation %q", r.Name())
	}
	db.rels[r.Name()] = r
	db.order = append(db.order, r.Name())
	return nil
}

// MustAdd is Add but panics on duplicate names; convenient in tests and
// generators where names are controlled.
func (db *Database) MustAdd(r *Relation) {
	if err := db.Add(r); err != nil {
		panic(err)
	}
}

// Relation returns the relation with the given name, or nil.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// Has reports whether the database contains a relation with the given name.
func (db *Database) Has(name string) bool {
	_, ok := db.rels[name]
	return ok
}

// Names returns the relation names in insertion order.
func (db *Database) Names() []string { return db.order }

// Relations returns the relations in insertion order.
func (db *Database) Relations() []*Relation {
	out := make([]*Relation, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.rels[n])
	}
	return out
}

// Size returns the total number of tuples across all relations.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the database: every relation gets fresh,
// privately owned flat storage. Kept for callers that need full
// independence including under mutation; the versioned ops (DeleteAll,
// InsertAll, Freeze) replace it everywhere O(|S|) copying matters.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for _, n := range db.order {
		c.MustAdd(db.rels[n].Clone())
	}
	return c
}

// Freeze returns an immutable snapshot of the database in O(#relations):
// every relation is wrapped in a read-only view sharing its storage, with
// the original marked shared so later legacy mutations of the caller's
// relations copy-on-write away from the snapshot instead of reaching it.
// This is what Engine.New uses in place of the old deep Clone. The
// snapshot starts a fresh version chain with zeroed store metrics.
//
// propview:read-only
func (db *Database) Freeze() *Database {
	c := &Database{
		rels:  make(map[string]*Relation, len(db.rels)),
		order: db.order[:len(db.order):len(db.order)],
		m:     &storeMetrics{},
	}
	for _, n := range db.order {
		c.rels[n] = db.rels[n].ReadOnly()
	}
	return c
}

// Sharded returns an immutable snapshot of the database with every
// relation re-stored as n hash-partitioned segments (segment.go): each
// segment keeps its own base, overlay chain, and fold/squash schedule, so
// commits scatter their delta across the affected segments' workers and
// compaction costs O(segment) instead of O(relation). O(|S|) — a one-time
// re-shard, like the deep Clone that Freeze replaced, paid once at engine
// construction. n <= 0 falls back to Freeze (the unsegmented store). Like
// Freeze, the snapshot starts a fresh version chain with zeroed metrics.
func (db *Database) Sharded(n int) *Database {
	if n <= 0 {
		return db.Freeze()
	}
	c := &Database{
		rels:  make(map[string]*Relation, len(db.rels)),
		order: db.order[:len(db.order):len(db.order)],
		m:     &storeMetrics{},
	}
	for _, name := range db.order {
		c.rels[name] = db.rels[name].sharded(n)
	}
	return c
}

// derived starts a new generation sharing the receiver's metrics. The
// order slice is full-sliced so a later Add on either side cannot alias.
//
// propview:publish
func (db *Database) derived() *Database {
	return &Database{
		rels:    make(map[string]*Relation, len(db.rels)),
		order:   db.order[:len(db.order):len(db.order)],
		m:       db.m,
		version: db.version + 1,
	}
}

// SourceTuple identifies one tuple of one relation in a database; the unit
// of deletion in the paper's view-deletion problems.
type SourceTuple struct {
	Rel   string
	Tuple Tuple
}

// Key returns a canonical map key for the source tuple.
func (s SourceTuple) Key() string { return s.Rel + "\x00" + s.Tuple.Key() }

// String renders the source tuple as R(v1, v2).
func (s SourceTuple) String() string { return s.Rel + s.Tuple.String() }

// SortSourceTuples orders source tuples by relation name then tuple value,
// for deterministic output.
func SortSourceTuples(ts []SourceTuple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Rel != ts[j].Rel {
			return ts[i].Rel < ts[j].Rel
		}
		return ts[i].Tuple.Less(ts[j].Tuple)
	})
}

// Contains reports whether the database has the given source tuple.
func (db *Database) Contains(st SourceTuple) bool {
	r := db.rels[st.Rel]
	return r != nil && r.Contains(st.Tuple)
}

// DeleteAll returns a new generation of the database with the given
// source tuples removed: the S \ T of the paper. Missing tuples are
// ignored. The receiver is not modified. O(|T|) plus amortized overlay
// compaction: untouched relations are shared by pointer, touched
// relations get an overlay version tombstoning exactly the deleted keys
// (iteration order as if rebuilt). The result is a structure-sharing
// snapshot — see the Database doc for the aliasing contract.
func (db *Database) DeleteAll(T []SourceTuple) *Database {
	// Segmented relations take their keys raw: the presence probe belongs
	// inside the per-segment workers, where it parallelizes with the derive
	// (and duplicates collapse there too). Flat relations keep the central
	// filter, which deleteVersion's contract requires.
	drop := make(map[string]map[string]struct{})
	rawKeys := make(map[string][]string)
	for _, st := range T {
		r := db.rels[st.Rel]
		if r == nil {
			continue
		}
		if r.seg != nil {
			rawKeys[st.Rel] = append(rawKeys[st.Rel], st.Tuple.Key())
			continue
		}
		if !r.Contains(st.Tuple) {
			continue
		}
		m := drop[st.Rel]
		if m == nil {
			m = make(map[string]struct{})
			drop[st.Rel] = m
		}
		m[st.Tuple.Key()] = struct{}{}
	}
	c := db.derived()
	for _, n := range db.order {
		r := db.rels[n]
		if keys := rawKeys[n]; len(keys) > 0 {
			if ns, ok := r.seg.deleteAll(keys, db.metrics()); ok {
				c.rels[n] = r.withSeg(ns)
				db.metrics().rewrittenRels.Add(1)
				continue
			}
			r.shared.Store(true)
			c.rels[n] = r
			db.metrics().sharedRels.Add(1)
			continue
		}
		if keys := drop[n]; len(keys) > 0 {
			c.rels[n] = r.deleteVersion(keys, db.metrics())
			db.metrics().rewrittenRels.Add(1)
		} else {
			c.rels[n] = r
			db.metrics().sharedRels.Add(1)
		}
	}
	db.metrics().derives.Add(1)
	return c
}

// InsertAll returns a new generation of the database with the given
// source tuples added: the S ∪ I dual of DeleteAll. Tuples already
// present are ignored (set semantics), so re-inserting exactly the tuples
// a previous deletion removed restores the original database. Unlike
// DeleteAll — where a missing tuple is a harmless no-op — an insertion
// names a relation and carries a payload, so an unknown relation or an
// arity mismatch is an error, reported before anything is derived. The
// receiver is not modified. Novel tuples are appended after the existing
// ones in request order, keeping iteration order deterministic. O(|I|)
// plus amortized overlay compaction, with the same structure sharing and
// aliasing contract as DeleteAll.
func (db *Database) InsertAll(I []SourceTuple) (*Database, error) {
	for _, st := range I {
		r := db.rels[st.Rel]
		if r == nil {
			return nil, fmt.Errorf("relation: insert into unknown relation %q", st.Rel)
		}
		if len(st.Tuple) != r.Schema().Len() {
			return nil, fmt.Errorf("relation: inserting arity-%d tuple into %s%s", len(st.Tuple), st.Rel, r.Schema())
		}
	}
	// As in DeleteAll, segmented relations take the raw request-order list:
	// a key always hashes to one segment, so the workers' per-segment
	// presence checks and dedup are global, and run in parallel. Flat
	// relations keep the central pass.
	add := make(map[string][]Tuple)
	raw := make(map[string][]Tuple)
	var seen map[string]struct{}
	for _, st := range I {
		r := db.rels[st.Rel]
		if r.seg != nil {
			raw[st.Rel] = append(raw[st.Rel], st.Tuple)
			continue
		}
		if r.Contains(st.Tuple) {
			continue
		}
		k := st.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		if seen == nil {
			seen = make(map[string]struct{}, len(I))
		}
		seen[k] = struct{}{}
		add[st.Rel] = append(add[st.Rel], st.Tuple)
	}
	c := db.derived()
	for _, n := range db.order {
		r := db.rels[n]
		if ts := raw[n]; len(ts) > 0 {
			if ns, ok := r.seg.insertAll(ts, db.metrics()); ok {
				c.rels[n] = r.withSeg(ns)
				db.metrics().rewrittenRels.Add(1)
				continue
			}
			r.shared.Store(true)
			c.rels[n] = r
			db.metrics().sharedRels.Add(1)
			continue
		}
		if ts := add[n]; len(ts) > 0 {
			c.rels[n] = r.insertVersion(ts, db.metrics())
			db.metrics().rewrittenRels.Add(1)
		} else {
			c.rels[n] = r
			db.metrics().sharedRels.Add(1)
		}
	}
	db.metrics().derives.Add(1)
	return c, nil
}

// AllSourceTuples enumerates every tuple of every relation in insertion
// order — the candidate deletion set for exhaustive solvers.
func (db *Database) AllSourceTuples() []SourceTuple {
	var out []SourceTuple
	for _, n := range db.order {
		for _, t := range db.rels[n].Tuples() {
			out = append(out, SourceTuple{Rel: n, Tuple: t})
		}
	}
	return out
}

// String renders the database as relation tables separated by blank lines.
func (db *Database) String() string {
	var parts []string
	for _, n := range db.order {
		parts = append(parts, db.rels[n].Table())
	}
	return strings.Join(parts, "\n")
}
