package relation

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text format parsed by ReadDatabase and emitted by WriteDatabase:
//
//	relation UserGroup(user, group)
//	john, staff
//	mary, admin
//
//	relation GroupFile(group, file)
//	staff, f1
//
// One "relation Name(attr, ...)" header per relation followed by one tuple
// per line, values comma-separated. Blank lines and lines starting with '#'
// are ignored. Values consisting solely of digits (with optional leading
// '-') parse as integers.

// ReadDatabase parses the text database format.
func ReadDatabase(r io.Reader) (*Database, error) {
	db := NewDatabase()
	var cur *Relation
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "relation ") {
			name, schema, err := parseHeader(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			cur = New(name, schema)
			if err := db.Add(cur); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: tuple before any relation header", lineNo)
		}
		fields := splitFields(line)
		if len(fields) != cur.Schema().Len() {
			return nil, fmt.Errorf("line %d: expected %d values for %s, got %d",
				lineNo, cur.Schema().Len(), cur.Name(), len(fields))
		}
		t := make(Tuple, len(fields))
		for i, f := range fields {
			t[i] = ParseValue(f, true)
		}
		cur.Insert(t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// ReadDatabaseString parses the text format from a string.
func ReadDatabaseString(s string) (*Database, error) {
	return ReadDatabase(strings.NewReader(s))
}

func parseHeader(line string) (string, Schema, error) {
	rest := strings.TrimPrefix(line, "relation ")
	open := strings.IndexByte(rest, '(')
	close := strings.LastIndexByte(rest, ')')
	if open < 0 || close < open {
		return "", Schema{}, fmt.Errorf("malformed relation header %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return "", Schema{}, fmt.Errorf("empty relation name in %q", line)
	}
	attrs := splitFields(rest[open+1 : close])
	if len(attrs) == 0 {
		return "", Schema{}, fmt.Errorf("relation %q has no attributes", name)
	}
	return name, NewSchema(attrs...), nil
}

func splitFields(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// WriteDatabase emits the database in the text format understood by
// ReadDatabase. Tuples are written in insertion order.
func WriteDatabase(w io.Writer, db *Database) error {
	for i, r := range db.Relations() {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "relation %s(%s)\n", r.Name(), strings.Join(r.Schema().Attrs(), ", ")); err != nil {
			return err
		}
		for _, t := range r.Tuples() {
			parts := make([]string, len(t))
			for j, v := range t {
				parts[j] = v.String()
			}
			if _, err := fmt.Fprintln(w, strings.Join(parts, ", ")); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteDatabaseString renders the database in the text format.
func WriteDatabaseString(db *Database) string {
	var b strings.Builder
	_ = WriteDatabase(&b, db)
	return b.String()
}
