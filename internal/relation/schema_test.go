package relation

import (
	"testing"
)

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("A", "B", "C")
	if s.Len() != 3 {
		t.Fatalf("Len=%d", s.Len())
	}
	if i, ok := s.Index("B"); !ok || i != 1 {
		t.Errorf("Index(B)=%d,%v", i, ok)
	}
	if _, ok := s.Index("Z"); ok {
		t.Error("Index(Z) should be absent")
	}
	if !s.Has("C") || s.Has("D") {
		t.Error("Has misbehaves")
	}
	if s.String() != "(A, B, C)" {
		t.Errorf("String=%q", s.String())
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchema with duplicate attribute should panic")
		}
	}()
	NewSchema("A", "A")
}

func TestSchemaEqualAndSameSet(t *testing.T) {
	a := NewSchema("A", "B")
	b := NewSchema("B", "A")
	c := NewSchema("A", "B")
	if !a.Equal(c) {
		t.Error("identical schemas must be Equal")
	}
	if a.Equal(b) {
		t.Error("reordered schemas are not Equal")
	}
	if !a.SameSet(b) {
		t.Error("reordered schemas are SameSet")
	}
	if a.SameSet(NewSchema("A", "C")) {
		t.Error("different attribute sets are not SameSet")
	}
}

func TestSchemaCommonDisjointJoin(t *testing.T) {
	r := NewSchema("A", "B")
	s := NewSchema("B", "C")
	common := r.Common(s)
	if len(common) != 1 || common[0] != "B" {
		t.Errorf("Common=%v", common)
	}
	if r.Disjoint(s) {
		t.Error("R and S share B")
	}
	if !r.Disjoint(NewSchema("C", "D")) {
		t.Error("disjoint schemas misreported")
	}
	j := r.Join(s)
	if !j.Equal(NewSchema("A", "B", "C")) {
		t.Errorf("Join=%v", j)
	}
}

func TestSchemaProject(t *testing.T) {
	s := NewSchema("A", "B", "C")
	p, err := s.Project([]Attribute{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(NewSchema("C", "A")) {
		t.Errorf("Project=%v", p)
	}
	if _, err := s.Project([]Attribute{"Z"}); err == nil {
		t.Error("projecting a missing attribute must fail")
	}
}

func TestSchemaRename(t *testing.T) {
	s := NewSchema("A", "B")
	r, err := s.Rename(map[Attribute]Attribute{"A": "A1"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(NewSchema("A1", "B")) {
		t.Errorf("Rename=%v", r)
	}
	if _, err := s.Rename(map[Attribute]Attribute{"A": "B"}); err == nil {
		t.Error("renaming onto an existing attribute must fail")
	}
}

func TestTupleOps(t *testing.T) {
	tp := StringTuple("a", "b", "c")
	if !tp.Equal(StringTuple("a", "b", "c")) {
		t.Error("Equal fails on identical tuples")
	}
	if tp.Equal(StringTuple("a", "b")) {
		t.Error("Equal fails on different arities")
	}
	p := tp.Project([]int{2, 0})
	if !p.Equal(StringTuple("c", "a")) {
		t.Errorf("Project=%v", p)
	}
	cl := tp.Clone()
	cl[0] = String("z")
	if tp[0] != String("a") {
		t.Error("Clone must be independent")
	}
}

func TestProjectAttrs(t *testing.T) {
	s := NewSchema("A", "B", "C")
	tp := StringTuple("1", "2", "3")
	got := ProjectAttrs(s, tp, []Attribute{"C", "A"})
	if !got.Equal(StringTuple("3", "1")) {
		t.Errorf("ProjectAttrs=%v", got)
	}
}

func TestAgreeOn(t *testing.T) {
	sr := NewSchema("A", "B")
	ss := NewSchema("B", "C")
	r := StringTuple("a", "x")
	s1 := StringTuple("x", "c")
	s2 := StringTuple("y", "c")
	if !AgreeOn(sr, r, ss, s1, []Attribute{"B"}) {
		t.Error("tuples agreeing on B misreported")
	}
	if AgreeOn(sr, r, ss, s2, []Attribute{"B"}) {
		t.Error("tuples disagreeing on B misreported")
	}
}
