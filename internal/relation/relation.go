package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Relation is a named set of tuples over a schema. Tuples are kept in
// insertion order for deterministic iteration, with a key index enforcing
// set semantics (inserting a duplicate is a no-op, as in the paper's
// set-based model).
//
// A relation is either flat — it owns its tuple array and index, and the
// mutators write in place — or a version: an immutable view of shared base
// storage plus an overlay of tombstones and appended tuples (version.go).
// Versions are produced by Database.DeleteAll/InsertAll/Freeze in O(|Δ|)
// and are safe to read concurrently; reads behave identically in both
// modes, and a legacy mutation of a version first takes a private flat
// copy (copy-on-write).
type Relation struct {
	name   string
	schema Schema
	tuples []Tuple        // base tuple array; shared across versions when shared is set
	index  map[string]int // tuple key -> position in tuples

	top  *layer    // overlay chain; nil for a flat relation
	live int       // tuple count when overlaid (== len(tuples) minus tombstones plus appends)
	seg  *segStore // sharded store (segment.go); nil unless Database.Sharded built this relation
	// guarded-by: atomic
	shared atomic.Bool // base storage shared with other versions: mutators must copy first
	// guarded-by: atomic
	flat atomic.Pointer[[]Tuple] // cached overlay materialization, built lazily
}

// New creates an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{name: name, schema: schema, index: make(map[string]int)}
}

// NewFromTuples creates a relation and inserts the given tuples.
func NewFromTuples(name string, schema Schema, tuples ...Tuple) *Relation {
	r := New(name, schema)
	for _, t := range tuples {
		r.Insert(t)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples. O(1) in both modes.
func (r *Relation) Len() int {
	if r.seg != nil {
		return r.seg.live
	}
	if r.top != nil {
		return r.live
	}
	return len(r.tuples)
}

// Insert adds tuple t. It reports whether the tuple was new (set
// semantics). It panics if the arity does not match the schema. On a
// relation whose storage is shared with other versions, the first
// mutation takes a private flat copy (copy-on-write).
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.schema.Len() {
		panic(fmt.Sprintf("relation: inserting arity-%d tuple into %s%s", len(t), r.name, r.schema))
	}
	if r.top != nil || r.seg != nil || r.shared.Load() {
		r.materializeOwned()
	}
	k := t.Key()
	if _, ok := r.index[k]; ok {
		return false
	}
	r.index[k] = len(r.tuples)
	r.tuples = append(r.tuples, t.Clone())
	return true
}

// InsertStrings is shorthand for Insert(StringTuple(ss...)).
func (r *Relation) InsertStrings(ss ...string) bool { return r.Insert(StringTuple(ss...)) }

// Contains reports whether the relation holds tuple t.
func (r *Relation) Contains(t Tuple) bool { return r.ContainsKey(t.Key()) }

// ContainsKey reports whether the relation holds a tuple with the given
// key. Reads through the overlay: the topmost layer mentioning the key
// decides, else the base index.
func (r *Relation) ContainsKey(key string) bool {
	if r.seg != nil {
		return r.seg.containsKey(key)
	}
	for l := r.top; l != nil; l = l.below {
		if _, ok := l.addedIndex[key]; ok {
			return true
		}
		if _, ok := l.dead[key]; ok {
			return false
		}
	}
	_, ok := r.index[key]
	return ok
}

// Delete removes tuple t, reporting whether it was present. Deletion is
// O(n) in the worst case because positions shift; bulk deletes go through
// Database.DeleteAll, which derives an O(|Δ|) overlay version instead.
// Like Insert, deleting from shared storage copies first.
func (r *Relation) Delete(t Tuple) bool {
	if r.top != nil || r.seg != nil || r.shared.Load() {
		r.materializeOwned()
	}
	k := t.Key()
	i, ok := r.index[k]
	if !ok {
		return false
	}
	delete(r.index, k)
	r.tuples = append(r.tuples[:i], r.tuples[i+1:]...)
	for j := i; j < len(r.tuples); j++ {
		r.index[r.tuples[j].Key()] = j
	}
	return true
}

// Tuples returns the tuples in insertion order. The slice and its tuples
// must not be modified by callers. On a versioned relation the flat form
// is materialized once per version and cached; evaluation-style consumers
// that only walk the tuples should prefer Each, which reads through the
// overlay without materializing.
//
// propview:read-only
func (r *Relation) Tuples() []Tuple {
	if r.top == nil && r.seg == nil {
		return r.tuples
	}
	if f := r.flat.Load(); f != nil {
		return *f
	}
	var flat []Tuple
	if r.seg != nil {
		flat = r.seg.flatten()
	} else {
		flat = r.flatten()
	}
	r.flat.Store(&flat)
	return flat
}

// Each calls yield for every tuple in insertion order, stopping early if
// yield returns false. Unlike Tuples it never materializes a versioned
// relation: base tuples stream past the tombstone set, then appended
// tuples follow, at O(overlay) extra space however large the base is.
// Yielded tuples alias the relation's storage; callbacks that keep one
// must copy it (see internal/analysis).
//
// propview:no-retain
func (r *Relation) Each(yield func(Tuple) bool) {
	if r.top == nil && r.seg == nil {
		for _, t := range r.tuples {
			if !yield(t) {
				return
			}
		}
		return
	}
	if f := r.flat.Load(); f != nil {
		for _, t := range *f {
			if !yield(t) {
				return
			}
		}
		return
	}
	if r.seg != nil {
		r.seg.eachMerged(yield)
		return
	}
	r.eachOverlay(yield)
}

// Tuple returns the i-th tuple in insertion order.
func (r *Relation) Tuple(i int) Tuple {
	if r.top == nil && r.seg == nil {
		return r.tuples[i]
	}
	return r.Tuples()[i]
}

// Clone returns a deep copy of the relation: flat, privately owned
// storage whatever the receiver's representation.
func (r *Relation) Clone() *Relation {
	c := New(r.name, r.schema)
	r.Each(func(t Tuple) bool {
		c.Insert(t)
		return true
	})
	return c
}

// WithName returns a copy of the relation under a different name.
func (r *Relation) WithName(name string) *Relation {
	c := r.Clone()
	c.name = name
	return c
}

// Equal reports whether two relations have equal schemas (same order) and
// the same set of tuples, regardless of insertion order.
func (r *Relation) Equal(s *Relation) bool {
	if !r.schema.Equal(s.schema) || r.Len() != s.Len() {
		return false
	}
	equal := true
	r.Each(func(t Tuple) bool {
		if !s.Contains(t) {
			equal = false
		}
		return equal
	})
	return equal
}

// Minus returns the tuples of r that are not in s (schemas must agree as
// sets; comparison is by key after positional alignment when orders match).
func (r *Relation) Minus(s *Relation) []Tuple {
	var out []Tuple
	r.Each(func(t Tuple) bool {
		if !s.Contains(t) {
			//lint:ignore eachretain the yielded tuple aliases immutable snapshot storage and Minus's result adopts it by design
			out = append(out, t)
		}
		return true
	})
	return out
}

// SortedTuples returns the tuples in lexicographic order, for deterministic
// printing and testing.
func (r *Relation) SortedTuples() []Tuple {
	src := r.Tuples()
	out := make([]Tuple, len(src))
	copy(out, src)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// String renders the relation as a small ASCII table, rows sorted.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s {", r.name, r.schema)
	for i, t := range r.SortedTuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString("}")
	return b.String()
}

// Table renders the relation as a multi-line ASCII table with a header,
// matching the layout of the figures in the paper.
func (r *Relation) Table() string {
	attrs := r.schema.Attrs()
	widths := make([]int, len(attrs))
	for i, a := range attrs {
		widths[i] = len(a)
	}
	rows := r.SortedTuples()
	cells := make([][]string, len(rows))
	for ri, t := range rows {
		cells[ri] = make([]string, len(t))
		for ci, v := range t {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	b.WriteString(r.name + "\n")
	writeRow := func(vals []string) {
		for ci, s := range vals {
			if ci > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			for p := len(s); p < widths[ci]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(attrs)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
