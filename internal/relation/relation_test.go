package relation

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRelationSetSemantics(t *testing.T) {
	r := New("R", NewSchema("A", "B"))
	if !r.InsertStrings("a", "b") {
		t.Error("first insert should report new")
	}
	if r.InsertStrings("a", "b") {
		t.Error("duplicate insert should report not-new")
	}
	if r.Len() != 1 {
		t.Errorf("Len=%d want 1 (set semantics)", r.Len())
	}
	if !r.Contains(StringTuple("a", "b")) {
		t.Error("Contains fails")
	}
}

func TestRelationArityPanic(t *testing.T) {
	r := New("R", NewSchema("A", "B"))
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic")
		}
	}()
	r.InsertStrings("only-one")
}

func TestRelationDelete(t *testing.T) {
	r := New("R", NewSchema("A"))
	r.InsertStrings("a")
	r.InsertStrings("b")
	r.InsertStrings("c")
	if !r.Delete(StringTuple("b")) {
		t.Fatal("Delete(b) should succeed")
	}
	if r.Delete(StringTuple("b")) {
		t.Error("second Delete(b) should fail")
	}
	if r.Len() != 2 || !r.Contains(StringTuple("a")) || !r.Contains(StringTuple("c")) {
		t.Errorf("post-delete state wrong: %v", r)
	}
	// Index must stay consistent after the shift.
	if !r.Delete(StringTuple("c")) {
		t.Error("Delete(c) should succeed after index reshuffle")
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := New("R", NewSchema("A"))
	r.InsertStrings("a")
	c := r.Clone()
	c.InsertStrings("b")
	if r.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: r=%d c=%d", r.Len(), c.Len())
	}
}

func TestRelationEqualIgnoresOrder(t *testing.T) {
	r := NewFromTuples("R", NewSchema("A"), StringTuple("a"), StringTuple("b"))
	s := NewFromTuples("R", NewSchema("A"), StringTuple("b"), StringTuple("a"))
	if !r.Equal(s) {
		t.Error("relations with same tuples in different order must be Equal")
	}
	s.InsertStrings("c")
	if r.Equal(s) {
		t.Error("relations of different cardinality must differ")
	}
}

func TestRelationMinus(t *testing.T) {
	r := NewFromTuples("R", NewSchema("A"), StringTuple("a"), StringTuple("b"), StringTuple("c"))
	s := NewFromTuples("R", NewSchema("A"), StringTuple("b"))
	d := r.Minus(s)
	if len(d) != 2 {
		t.Fatalf("Minus returned %d tuples", len(d))
	}
}

func TestRelationTable(t *testing.T) {
	r := NewFromTuples("R1", NewSchema("A", "B"),
		StringTuple("a", "x1"), StringTuple("a2", "x2"))
	table := r.Table()
	if !strings.HasPrefix(table, "R1\n") {
		t.Errorf("Table missing name header: %q", table)
	}
	if !strings.Contains(table, "A") || !strings.Contains(table, "x2") {
		t.Errorf("Table missing content: %q", table)
	}
}

func TestDatabaseAddAndLookup(t *testing.T) {
	db := NewDatabase()
	db.MustAdd(New("R", NewSchema("A")))
	if err := db.Add(New("R", NewSchema("B"))); err == nil {
		t.Error("duplicate relation name must error")
	}
	if db.Relation("R") == nil || db.Relation("Q") != nil {
		t.Error("Relation lookup wrong")
	}
	if !db.Has("R") || db.Has("Q") {
		t.Error("Has wrong")
	}
}

func TestDatabaseDeleteAll(t *testing.T) {
	db := NewDatabase()
	r := New("R", NewSchema("A"))
	r.InsertStrings("a")
	r.InsertStrings("b")
	db.MustAdd(r)
	s := New("S", NewSchema("B"))
	s.InsertStrings("x")
	db.MustAdd(s)

	d := db.DeleteAll([]SourceTuple{
		{Rel: "R", Tuple: StringTuple("a")},
		{Rel: "S", Tuple: StringTuple("zzz")}, // absent: ignored
	})
	if db.Relation("R").Len() != 2 {
		t.Error("DeleteAll must not mutate the receiver")
	}
	if d.Relation("R").Len() != 1 || d.Relation("R").Contains(StringTuple("a")) {
		t.Errorf("DeleteAll result wrong: %v", d.Relation("R"))
	}
	if d.Relation("S").Len() != 1 {
		t.Error("untouched relation changed size")
	}
}

func TestDatabaseSizeAndAllSourceTuples(t *testing.T) {
	db := NewDatabase()
	r := New("R", NewSchema("A"))
	r.InsertStrings("a")
	r.InsertStrings("b")
	db.MustAdd(r)
	if db.Size() != 2 {
		t.Errorf("Size=%d", db.Size())
	}
	all := db.AllSourceTuples()
	if len(all) != 2 || all[0].Rel != "R" {
		t.Errorf("AllSourceTuples=%v", all)
	}
}

func TestSourceTupleKeyDistinct(t *testing.T) {
	a := SourceTuple{Rel: "R", Tuple: StringTuple("x")}
	b := SourceTuple{Rel: "Rx", Tuple: StringTuple("")}
	if a.Key() == b.Key() {
		t.Error("source tuple keys collide across relation-name boundaries")
	}
}

func TestLocationSetOps(t *testing.T) {
	l1 := Loc("V", StringTuple("a"), "A")
	l2 := Loc("V", StringTuple("a"), "B")
	l3 := Loc("W", StringTuple("a"), "A")
	s := NewLocationSet(l1, l2)
	if s.Len() != 2 || !s.Has(l1) || s.Has(l3) {
		t.Error("LocationSet basic ops wrong")
	}
	if s.Add(l1) {
		t.Error("re-adding must report false")
	}
	t2 := NewLocationSet(l2, l3)
	diff := s.Minus(t2)
	if len(diff) != 1 || !diff[0].Tuple.Equal(l1.Tuple) || diff[0].Attr != "A" {
		t.Errorf("Minus=%v", diff)
	}
	s.AddAll(t2)
	if s.Len() != 3 {
		t.Errorf("AddAll len=%d", s.Len())
	}
	if s.Equal(t2) {
		t.Error("sets of different size must not be Equal")
	}
}

func TestAllLocations(t *testing.T) {
	db := NewDatabase()
	r := New("R", NewSchema("A", "B"))
	r.InsertStrings("a", "b")
	db.MustAdd(r)
	ls := db.AllLocations()
	if len(ls) != 2 {
		t.Fatalf("AllLocations=%d want 2", len(ls))
	}
}

// Property: DeleteAll(T) removes exactly the requested tuples and nothing
// else, for random databases and random deletion sets.
func TestDeleteAllQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := NewDatabase()
		rel := New("R", NewSchema("A", "B"))
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			rel.Insert(NewTuple(Int(int64(r.Intn(5))), Int(int64(r.Intn(5)))))
		}
		db.MustAdd(rel)
		all := db.AllSourceTuples()
		var T []SourceTuple
		want := make(map[string]bool)
		for _, st := range all {
			if r.Intn(2) == 0 {
				T = append(T, st)
				want[st.Key()] = true
			}
		}
		d := db.DeleteAll(T)
		// Every surviving tuple was not deleted; every deleted tuple is gone.
		for _, st := range d.AllSourceTuples() {
			if want[st.Key()] {
				return false
			}
		}
		if d.Size() != db.Size()-len(T) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadWriteDatabaseRoundTrip(t *testing.T) {
	in := `# test db
relation UserGroup(user, group)
john, staff
mary, admin

relation GroupFile(group, file)
staff, f1
admin, f2
`
	db, err := ReadDatabaseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("UserGroup").Len() != 2 || db.Relation("GroupFile").Len() != 2 {
		t.Fatalf("parsed sizes wrong: %v", db)
	}
	out := WriteDatabaseString(db)
	db2, err := ReadDatabaseString(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	for _, name := range db.Names() {
		if !db.Relation(name).Equal(db2.Relation(name)) {
			t.Errorf("round trip changed relation %s", name)
		}
	}
}

func TestReadDatabaseErrors(t *testing.T) {
	cases := []string{
		"a, b\n",                         // tuple before header
		"relation R(\n",                  // malformed header
		"relation R()\nx\n",              // no attributes
		"relation R(A, B)\nonly-one\n",   // arity mismatch
		"relation R(A)\nrelation R(A)\n", // duplicate relation
		"relation (A)\nx\n",              // empty name
	}
	for _, c := range cases {
		if _, err := ReadDatabaseString(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestWithName(t *testing.T) {
	r := NewFromTuples("R", NewSchema("A"), StringTuple("a"))
	s := r.WithName("S")
	if s.Name() != "S" || r.Name() != "R" {
		t.Errorf("WithName: %q / %q", s.Name(), r.Name())
	}
	if !s.Contains(StringTuple("a")) {
		t.Error("WithName lost tuples")
	}
}

func TestSortSourceTuples(t *testing.T) {
	ts := []SourceTuple{
		{Rel: "S", Tuple: StringTuple("a")},
		{Rel: "R", Tuple: StringTuple("b")},
		{Rel: "R", Tuple: StringTuple("a")},
	}
	SortSourceTuples(ts)
	if ts[0].Rel != "R" || ts[0].Tuple[0] != String("a") || ts[2].Rel != "S" {
		t.Errorf("sorted order wrong: %v", ts)
	}
}

func TestSourceTupleString(t *testing.T) {
	st := SourceTuple{Rel: "R", Tuple: StringTuple("a", "b")}
	if st.String() != "R(a, b)" {
		t.Errorf("String=%q", st.String())
	}
}

func TestLocationOrderAndString(t *testing.T) {
	a := Loc("R", StringTuple("a"), "A")
	b := Loc("R", StringTuple("a"), "B")
	c := Loc("R", StringTuple("b"), "A")
	d := Loc("S", StringTuple("a"), "A")
	if !a.Less(b) || !b.Less(c) || !c.Less(d) || d.Less(a) {
		t.Error("location order wrong")
	}
	if a.String() != "(R, (a), A)" {
		t.Errorf("String=%q", a.String())
	}
	ls := []Location{d, c, b, a}
	SortLocations(ls)
	if !ls[0].Tuple.Equal(a.Tuple) || ls[0].Attr != "A" || ls[3].Rel != "S" {
		t.Errorf("SortLocations wrong: %v", ls)
	}
}

func TestLocationSetSorted(t *testing.T) {
	s := NewLocationSet(
		Loc("R", StringTuple("b"), "A"),
		Loc("R", StringTuple("a"), "A"),
	)
	sorted := s.Sorted()
	if !sorted[0].Tuple.Equal(StringTuple("a")) {
		t.Errorf("Sorted wrong: %v", sorted)
	}
}

func TestReadDatabaseIntParsing(t *testing.T) {
	db, err := ReadDatabaseString("relation R(A)\n42\n")
	if err != nil {
		t.Fatal(err)
	}
	if !db.Relation("R").Contains(NewTuple(Int(42))) {
		t.Error("numeric literal should parse as Int")
	}
}
