package relation

import (
	"strconv"
	"testing"
)

func seedDB(nR, nS int) *Database {
	db := NewDatabase()
	r := New("R", NewSchema("A", "B"))
	for i := 0; i < nR; i++ {
		r.InsertStrings("a"+strconv.Itoa(i), "b"+strconv.Itoa(i%7))
	}
	s := New("S", NewSchema("B", "C"))
	for i := 0; i < nS; i++ {
		s.InsertStrings("b"+strconv.Itoa(i%7), "c"+strconv.Itoa(i))
	}
	db.MustAdd(r)
	db.MustAdd(s)
	return db
}

// TestDeleteAllSharesUntouchedRelations pins the structure-sharing
// contract: a relation no delta touches is passed to the next generation
// by pointer, and a touched relation becomes an overlay version over the
// same base array.
func TestDeleteAllSharesUntouchedRelations(t *testing.T) {
	db := seedDB(10, 10)
	r0, s0 := db.Relation("R"), db.Relation("S")
	next := db.DeleteAll([]SourceTuple{{Rel: "R", Tuple: r0.Tuple(3)}})
	if next.Relation("S") != s0 {
		t.Fatal("untouched relation S was not shared by pointer")
	}
	r1 := next.Relation("R")
	if r1 == r0 {
		t.Fatal("touched relation R was shared by pointer")
	}
	if r1.top == nil {
		t.Fatal("touched relation R should be an overlay version")
	}
	if &r1.tuples[0] != &r0.tuples[0] {
		t.Fatal("overlay version does not share the base tuple array")
	}
	if r0.Len() != 10 || r1.Len() != 9 {
		t.Fatalf("Len: old %d (want 10), new %d (want 9)", r0.Len(), r1.Len())
	}

	st := next.StoreStats()
	if st.SharedRelations != 1 || st.RewrittenRelations != 1 {
		t.Fatalf("stats: shared %d rewritten %d, want 1/1", st.SharedRelations, st.RewrittenRelations)
	}
	if st.Version != 1 {
		t.Fatalf("version = %d, want 1", st.Version)
	}
}

// TestReinsertAppendsAtEnd pins the order rule a deleted-then-restored
// tuple obeys: it leaves its old position and reappears at the end,
// exactly as the legacy rebuild behaved.
func TestReinsertAppendsAtEnd(t *testing.T) {
	db := NewDatabase()
	r := New("R", NewSchema("A"))
	r.InsertStrings("x")
	r.InsertStrings("y")
	r.InsertStrings("z")
	db.MustAdd(r)

	mid := SourceTuple{Rel: "R", Tuple: StringTuple("y")}
	db2 := db.DeleteAll([]SourceTuple{mid})
	db3, err := db2.InsertAll([]SourceTuple{mid})
	if err != nil {
		t.Fatal(err)
	}
	got := db3.Relation("R").Tuples()
	want := []string{"x", "z", "y"}
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i][0].String() != w {
			t.Fatalf("position %d = %v, want %s", i, got[i], w)
		}
	}
}

// TestFreezeIsolatesFromCallerMutation: mutating the original database
// after Freeze must not reach the snapshot (the engine's New contract).
func TestFreezeIsolatesFromCallerMutation(t *testing.T) {
	db := seedDB(5, 5)
	snap := db.Freeze()
	before := WriteDatabaseString(snap)

	db.Relation("R").InsertStrings("later", "later")
	db.Relation("S").Delete(db.Relation("S").Tuple(0))

	if after := WriteDatabaseString(snap); after != before {
		t.Fatalf("frozen snapshot changed under caller mutation\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if !db.Relation("R").Contains(StringTuple("later", "later")) {
		t.Fatal("caller's own mutation was lost")
	}
}

// TestReadOnlyViewCopiesOnWrite: a reader mutating a ReadOnly view gets a
// private copy; the underlying relation is untouched.
func TestReadOnlyViewCopiesOnWrite(t *testing.T) {
	r := New("R", NewSchema("A"))
	r.InsertStrings("x")
	ro := r.ReadOnly()
	ro.InsertStrings("y")
	if r.Len() != 1 {
		t.Fatalf("mutating the read-only view reached the original: len %d", r.Len())
	}
	if ro.Len() != 2 || !ro.Contains(StringTuple("y")) {
		t.Fatal("read-only view did not become a private copy on write")
	}
}

// TestOverlayFoldThreshold: overlay mentions past max(overlayFoldMin,
// base/overlayFoldDiv) fold into a fresh flat base.
func TestOverlayFoldThreshold(t *testing.T) {
	db := NewDatabase()
	r := New("R", NewSchema("A"))
	for i := 0; i < 10; i++ {
		r.InsertStrings("t" + strconv.Itoa(i))
	}
	db.MustAdd(r)

	// Insert one novel tuple per derive: mentions grow by one each time,
	// so the overlay must fold when they exceed overlayFoldMin.
	for i := 0; i <= overlayFoldMin; i++ {
		next, err := db.InsertAll([]SourceTuple{{Rel: "R", Tuple: StringTuple("n" + strconv.Itoa(i))}})
		if err != nil {
			t.Fatal(err)
		}
		db = next
	}
	st := db.StoreStats()
	if st.Compactions != 1 {
		t.Fatalf("Compactions = %d, want exactly 1 after %d unit derives", st.Compactions, overlayFoldMin+1)
	}
	if got := db.Relation("R"); got.top != nil {
		t.Fatal("relation should be flat right after a fold")
	}
	if got, want := db.Relation("R").Len(), 10+overlayFoldMin+1; got != want {
		t.Fatalf("Len after fold = %d, want %d", got, want)
	}
}

// TestOverlaySquashBoundsDepth: a delete/restore churn whose mentions stay
// small must still keep the chain depth bounded via squashing.
func TestOverlaySquashBoundsDepth(t *testing.T) {
	db := seedDB(10, 1)
	target := SourceTuple{Rel: "R", Tuple: db.Relation("R").Tuple(0)}
	for i := 0; i < 10*maxOverlayDepth; i++ {
		if i%2 == 0 {
			db = db.DeleteAll([]SourceTuple{target})
		} else {
			next, err := db.InsertAll([]SourceTuple{target})
			if err != nil {
				t.Fatal(err)
			}
			db = next
		}
		if d := db.Relation("R").overlayDepth(); d > maxOverlayDepth+1 {
			t.Fatalf("iteration %d: overlay depth %d exceeds bound %d", i, d, maxOverlayDepth+1)
		}
	}
	st := db.StoreStats()
	if st.Squashes == 0 {
		t.Fatalf("depth-bounding churn never squashed (stats %+v)", st)
	}
	// The churn's mentions collapse under each squash (a round-tripped
	// tuple squashes to one tombstone plus one append), so they oscillate
	// within the depth bound instead of growing without limit, and the
	// (never-growing) base is never folded.
	if st.OverlayMentions > maxOverlayDepth+2 {
		t.Fatalf("steady churn accumulated %d overlay mentions, want ≤ %d", st.OverlayMentions, maxOverlayDepth+2)
	}
	if st.Compactions != 0 {
		t.Fatalf("steady churn folded %d times; squashing should have absorbed it", st.Compactions)
	}
}

// TestEachStopsEarly: Each honors a false return from yield in both modes.
func TestEachStopsEarly(t *testing.T) {
	r := New("R", NewSchema("A"))
	for i := 0; i < 5; i++ {
		r.InsertStrings("t" + strconv.Itoa(i))
	}
	count := func(rel *Relation) int {
		n := 0
		rel.Each(func(Tuple) bool {
			n++
			return n < 2
		})
		return n
	}
	if got := count(r); got != 2 {
		t.Fatalf("flat Each visited %d, want 2", got)
	}
	db := NewDatabase()
	db.MustAdd(r)
	v := db.DeleteAll([]SourceTuple{{Rel: "R", Tuple: StringTuple("t0")}}).Relation("R")
	if v.top == nil {
		t.Fatal("expected an overlay version")
	}
	if got := count(v); got != 2 {
		t.Fatalf("overlay Each visited %d, want 2", got)
	}
}

// TestExportedVersionDerivation pins the out-of-store overlay API the
// provenance node relations ride on: DeleteVersion/InsertVersion share the
// base storage, behave byte-identically to a rebuild, and report their
// compaction activity through VersionMetrics on the same thresholds as
// the Database store.
func TestExportedVersionDerivation(t *testing.T) {
	var vm VersionMetrics
	r := New("N", NewSchema("A", "B"))
	for i := 0; i < 10; i++ {
		r.InsertStrings("a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	dead := map[string]struct{}{r.Tuple(2).Key(): {}, r.Tuple(7).Key(): {}}
	v := r.DeleteVersion(dead, &vm)
	if v.Len() != 8 || r.Len() != 10 {
		t.Fatalf("Len: version %d (want 8), receiver %d (want 10)", v.Len(), r.Len())
	}
	if &v.tuples[0] != &r.tuples[0] {
		t.Fatal("DeleteVersion did not share the base tuple array")
	}
	v2 := v.InsertVersion([]Tuple{StringTuple("z0", "z0"), StringTuple("z1", "z1")}, &vm)
	if v2.Len() != 10 {
		t.Fatalf("Len after InsertVersion = %d, want 10", v2.Len())
	}
	// Content identical to a rebuild: survivors in base order, appends last.
	want := New("N", NewSchema("A", "B"))
	for i := 0; i < 10; i++ {
		if i == 2 || i == 7 {
			continue
		}
		want.InsertStrings("a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	want.InsertStrings("z0", "z0")
	want.InsertStrings("z1", "z1")
	for i, wt := range want.Tuples() {
		if v2.Tuple(i).Key() != wt.Key() {
			t.Fatalf("tuple %d = %v, want %v", i, v2.Tuple(i), wt)
		}
	}
	if vm.Derives() != 2 {
		t.Fatalf("Derives = %d, want 2", vm.Derives())
	}
	if v2.OverlayDepth() != 2 || v2.OverlayMentions() != 4 {
		t.Fatalf("overlay shape depth=%d mentions=%d, want 2/4", v2.OverlayDepth(), v2.OverlayMentions())
	}

	// Past the fold limit the chain collapses into a fresh flat base and
	// the metrics record it.
	cur := v2
	for i := 0; cur.OverlayDepth() > 0 || vm.Folds() == 0; i++ {
		cur = cur.InsertVersion([]Tuple{StringTuple("f"+strconv.Itoa(i), "f")}, &vm)
		if i > 10*OverlayFoldLimit(10) {
			t.Fatal("overlay never folded")
		}
	}
	if vm.Folds() == 0 {
		t.Fatal("fold not counted")
	}
	// Nil metrics are accepted.
	if got := cur.DeleteVersion(map[string]struct{}{cur.Tuple(0).Key(): {}}, nil); got.Len() != cur.Len()-1 {
		t.Fatal("nil-metrics DeleteVersion failed")
	}
}
