package relation_test

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/relation"
)

// TestSegmentedConcurrentFoldsAndReaders races a writer churning a sharded
// store through per-segment folds and squashes against readers paginating
// retained generations. Every published generation is immutable, so the
// readers' streams must be internally consistent however many segment
// compactions happen underneath — this is the -race proof that the
// scatter/gather derive path (parallel segment workers, shared segment
// pointers, lazily-built flat caches) publishes safely.
func TestSegmentedConcurrentFoldsAndReaders(t *testing.T) {
	const steps = 300
	db := diffSeedDB(600, 400).Sharded(8)

	var latest atomic.Pointer[relation.Database]
	latest.Store(db)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				snap := latest.Load()
				for _, r := range snap.Relations() {
					want := r.Len()
					got := 0
					r.Each(func(tu relation.Tuple) bool {
						if w%2 == 0 && got == want/2 {
							// Positional access mid-stream forces the flat
							// cache while Each is underway.
							if k := r.Tuple(got).Key(); k != tu.Key() {
								t.Errorf("reader %d: Tuple(%d) = %s, want %s", w, got, k, tu.Key())
								return false
							}
						}
						if !r.ContainsKey(tu.Key()) {
							t.Errorf("reader %d: yielded tuple %v not ContainsKey", w, tu)
							return false
						}
						got++
						return true
					})
					if got != want {
						t.Errorf("reader %d: Each yielded %d tuples, Len says %d", w, got, want)
					}
				}
			}
		}(w)
	}

	fresh := 0
	for step := 0; step < steps; step++ {
		cur := latest.Load()
		if step%2 == 0 {
			var T []relation.SourceTuple
			for _, name := range []string{"R", "S"} {
				r := cur.Relation(name)
				if r.Len() == 0 {
					continue
				}
				for k := 0; k < 5; k++ {
					T = append(T, relation.SourceTuple{Rel: name, Tuple: r.Tuple((step*7 + k*13) % r.Len())})
				}
			}
			latest.Store(cur.DeleteAll(T))
		} else {
			var I []relation.SourceTuple
			for k := 0; k < 8; k++ {
				fresh++
				I = append(I, relation.SourceTuple{Rel: "R", Tuple: relation.StringTuple("w"+strconv.Itoa(fresh), "m"+strconv.Itoa(fresh%9))})
			}
			next, err := cur.InsertAll(I)
			if err != nil {
				t.Fatalf("step %d: InsertAll: %v", step, err)
			}
			latest.Store(next)
		}
	}
	stop.Store(true)
	wg.Wait()

	if st := latest.Load().StoreStats(); st.Compactions == 0 || st.Squashes == 0 {
		t.Fatalf("churn never compacted a segment: %+v", st)
	}
}
