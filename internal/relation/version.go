package relation

// Versioned relations: the persistent, structure-sharing representation
// behind Database.DeleteAll/InsertAll and Database.Freeze.
//
// A relation version is an immutable base (the tuples/index arrays, shared
// across every version derived from it) plus a chain of overlay layers.
// Each layer records one delta: a tombstone key-set (dead) and a list of
// appended novel tuples (added). Deriving a version is O(|Δ|): the base
// and all earlier layers are shared by pointer, only the new layer is
// allocated. Iteration order is exactly what a from-scratch rebuild would
// produce — base tuples in base order minus every tombstoned key, then
// appended tuples in append order — so Tuples(), Contains() and Len()
// are indistinguishable from the flat relations they replace.
//
// Resolution rule: the TOPMOST layer mentioning a key decides it (added ⇒
// present, dead ⇒ absent; within one layer added wins, which is what a
// squashed delete-then-reinsert needs); an unmentioned key falls through
// to the base index. A tuple deleted and later re-inserted is therefore
// suppressed at its base position and re-emitted at the end — identical to
// the legacy rebuild, which dropped it and re-appended it.
//
// Two compactions bound the overlay:
//
//   - fold: when the cumulative mention count exceeds a fraction of the
//     base (overlayFoldDiv, with overlayFoldMin as a floor for tiny
//     relations), the overlay is folded into a fresh flat base. The O(n)
//     fold is amortized over the ≥ n/overlayFoldDiv delta operations that
//     provoked it, keeping derives amortized O(|Δ|).
//   - squash: when the chain grows deeper than maxOverlayDepth without
//     tripping the fold (e.g. a steady delete/restore churn whose mentions
//     cancel), the chain is merged into a single layer over the same base
//     in O(overlay), bounding lookup cost without touching the base.
//
// Publication safety: every field of a derived version is immutable after
// construction except the lazily-built flat cache (atomic, idempotent) and
// the shared flag (atomic, monotone false→true), so versions are safe to
// read concurrently. The legacy mutators (Insert/Delete) remain available:
// on a version whose storage is shared they first materialize a private
// flat copy (copy-on-write), so old call sites keep their semantics while
// never corrupting a published version.

// Overlay tuning. foldLimit is the mention count past which a derive folds
// the overlay into a fresh base; maxOverlayDepth is the layer-chain length
// past which a derive squashes the chain into one layer.
const (
	overlayFoldMin  = 64
	overlayFoldDiv  = 4
	maxOverlayDepth = 32
)

func foldLimit(baseLen int) int {
	if l := baseLen / overlayFoldDiv; l > overlayFoldMin {
		return l
	}
	return overlayFoldMin
}

// layer is one immutable overlay generation: the delta of a single derive
// (or the merge of a squashed chain) over the version below it.
type layer struct {
	below      *layer
	dead       map[string]struct{} // keys tombstoned at this layer
	added      []Tuple             // novel tuples appended at this layer
	addedIndex map[string]struct{} // keys of added
	depth      int                 // layers in the chain, this one included
	mentions   int                 // cumulative len(dead)+len(added) across the chain
}

func chainDepth(l *layer) int {
	if l == nil {
		return 0
	}
	return l.depth
}

func chainMentions(l *layer) int {
	if l == nil {
		return 0
	}
	return l.mentions
}

// mentionsMap resolves every key the overlay mentions to its deciding
// layer: the topmost layer that adds it, or nil when the topmost mention
// is a tombstone. Keys absent from the map fall through to the base.
func (r *Relation) mentionsMap() map[string]*layer {
	if r.top == nil {
		return nil
	}
	m := make(map[string]*layer, r.top.mentions)
	for l := r.top; l != nil; l = l.below {
		// added before dead: within one layer a re-appended key is present.
		for _, t := range l.added {
			k := t.Key()
			if _, ok := m[k]; !ok {
				m[k] = l
			}
		}
		for k := range l.dead {
			if _, ok := m[k]; !ok {
				m[k] = nil
			}
		}
	}
	return m
}

// layersBottomUp returns the chain oldest-first, the order appended tuples
// must be emitted in.
func (r *Relation) layersBottomUp() []*layer {
	if r.top == nil {
		return nil
	}
	out := make([]*layer, 0, r.top.depth)
	for l := r.top; l != nil; l = l.below {
		out = append(out, l)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// eachOverlay is the one overlay walk in iteration order — base tuples
// past the mention set, then each layer's surviving appends oldest-first —
// shared by Each (streaming) and flatten (materializing) so the
// resolution rule cannot drift between them. Callers must hold an
// overlaid relation (top != nil). Yielded tuples alias base and overlay
// storage (see internal/analysis).
//
// propview:no-retain
func (r *Relation) eachOverlay(yield func(Tuple) bool) {
	m := r.mentionsMap()
	for _, t := range r.tuples {
		if _, mentioned := m[t.Key()]; !mentioned {
			if !yield(t) {
				return
			}
		}
	}
	for _, l := range r.layersBottomUp() {
		for _, t := range l.added {
			if m[t.Key()] == l {
				if !yield(t) {
					return
				}
			}
		}
	}
}

// flatten materializes the version's live tuples in iteration order into a
// fresh slice. O(base + overlay).
func (r *Relation) flatten() []Tuple {
	if r.top == nil {
		return r.tuples
	}
	out := make([]Tuple, 0, r.live)
	r.eachOverlay(func(t Tuple) bool {
		//lint:ignore eachretain flatten materializes the canonical slice; overlay storage is immutable once published
		out = append(out, t)
		return true
	})
	return out
}

// withLayer publishes a derived version with l on top of r, folding or
// squashing when the overlay trips its thresholds. The receiver's storage
// becomes shared; the receiver itself is unchanged.
func (r *Relation) withLayer(l *layer, live int, m *storeMetrics) *Relation {
	r.shared.Store(true)
	v := &Relation{name: r.name, schema: r.schema, tuples: r.tuples, index: r.index, top: l, live: live}
	v.shared.Store(true)
	if l.mentions > foldLimit(len(r.tuples)) {
		flat := v.flatten()
		index := make(map[string]int, len(flat))
		for i, t := range flat {
			index[t.Key()] = i
		}
		if m != nil {
			m.folds.Add(1)
		}
		// The folded version owns its fresh arrays: it is flat and mutable
		// again until the next derive shares it.
		return &Relation{name: r.name, schema: r.schema, tuples: flat, index: index}
	}
	if l.depth > maxOverlayDepth {
		v.top = v.squashedTop()
		if m != nil {
			m.squashes.Add(1)
		}
	}
	return v
}

// squashedTop merges the whole chain into one layer over the same base:
// every mentioned base key is tombstoned (deleted outright, or suppressed
// for re-emission at its appended position), and the surviving appended
// tuples are kept in emission order. O(overlay); the base is not touched.
func (r *Relation) squashedTop() *layer {
	m := r.mentionsMap()
	dead := make(map[string]struct{})
	for k := range m {
		if _, inBase := r.index[k]; inBase {
			dead[k] = struct{}{}
		}
	}
	var added []Tuple
	addedIndex := make(map[string]struct{})
	for _, l := range r.layersBottomUp() {
		for _, t := range l.added {
			if k := t.Key(); m[k] == l {
				added = append(added, t)
				addedIndex[k] = struct{}{}
			}
		}
	}
	return &layer{dead: dead, added: added, addedIndex: addedIndex, depth: 1, mentions: len(dead) + len(added)}
}

// deleteVersion derives the version of r with the given live keys removed.
// Callers must pass only keys r currently contains. O(|dead|) plus
// amortized compaction.
func (r *Relation) deleteVersion(dead map[string]struct{}, m *storeMetrics) *Relation {
	if r.seg != nil {
		keys := make([]string, 0, len(dead))
		for k := range dead {
			keys = append(keys, k)
		}
		ns, ok := r.seg.deleteAll(keys, m)
		if !ok {
			r.shared.Store(true)
			return r
		}
		return r.withSeg(ns)
	}
	l := &layer{
		below:    r.top,
		dead:     dead,
		depth:    chainDepth(r.top) + 1,
		mentions: chainMentions(r.top) + len(dead),
	}
	return r.withLayer(l, r.Len()-len(dead), m)
}

// insertVersion derives the version of r with ts appended, in order.
// Callers must pass only tuples r does not contain, without duplicates.
// O(|ts|) plus amortized compaction.
func (r *Relation) insertVersion(ts []Tuple, m *storeMetrics) *Relation {
	if r.seg != nil {
		ns, ok := r.seg.insertAll(ts, m)
		if !ok {
			r.shared.Store(true)
			return r
		}
		return r.withSeg(ns)
	}
	added := make([]Tuple, len(ts))
	addedIndex := make(map[string]struct{}, len(ts))
	for i, t := range ts {
		added[i] = t.Clone()
		addedIndex[t.Key()] = struct{}{}
	}
	l := &layer{
		below:      r.top,
		added:      added,
		addedIndex: addedIndex,
		depth:      chainDepth(r.top) + 1,
		mentions:   chainMentions(r.top) + len(added),
	}
	return r.withLayer(l, r.Len()+len(added), m)
}

// ReadOnly returns a read-only view of the relation in O(1): a new header
// sharing the receiver's storage, with both marked shared so any later
// legacy mutation — through the receiver or through the view — first
// copies the storage it would touch (copy-on-write) instead of corrupting
// the other side. This is what Engine.Query hands out: callers can read it
// like any relation, and a caller that does mutate it silently gets a
// private copy rather than a data race with the engine's snapshot.
//
// propview:read-only
func (r *Relation) ReadOnly() *Relation {
	r.shared.Store(true)
	v := &Relation{name: r.name, schema: r.schema, tuples: r.tuples, index: r.index, top: r.top, live: r.Len(), seg: r.seg}
	v.shared.Store(true)
	if f := r.flat.Load(); f != nil {
		v.flat.Store(f)
	}
	return v
}

// materializeOwned gives the relation private flat storage, detaching it
// from any versions sharing its arrays. Called by the legacy mutators
// before their first write to shared or overlaid storage (copy-on-write).
func (r *Relation) materializeOwned() {
	src := r.Tuples()
	tuples := make([]Tuple, len(src))
	copy(tuples, src)
	index := make(map[string]int, len(tuples))
	for i, t := range tuples {
		index[t.Key()] = i
	}
	r.tuples, r.index, r.top, r.live = tuples, index, nil, 0
	r.seg = nil
	r.flat.Store(nil)
	r.shared.Store(false)
}

// overlayDepth reports the overlay chain length (0 for a flat relation;
// the deepest segment chain for a segmented one).
func (r *Relation) overlayDepth() int {
	if r.seg != nil {
		return r.seg.overlayDepth()
	}
	return chainDepth(r.top)
}

// overlayMentions reports the cumulative overlay size (0 for a flat
// relation; summed across segments for a segmented one).
func (r *Relation) overlayMentions() int {
	if r.seg != nil {
		return r.seg.overlayMentions()
	}
	return chainMentions(r.top)
}

// --- exported overlay derivation for non-source version chains ---
//
// The Database store is not the only consumer of O(|Δ|) structure sharing:
// the provenance layer keeps one materialized relation per operator node of
// every prepared view, and maintains them under the same
// tombstone/append discipline. The exported wrappers below hand that
// machinery out without exposing the layer internals; chains derived this
// way follow exactly the source store's semantics (iteration order as if
// rebuilt, fold past OverlayFoldLimit mentions, squash past
// OverlayMaxDepth layers).

// VersionMetrics counts overlay activity for a version chain derived
// outside the Database store, e.g. a provenance tree's node relations. One
// instance is shared along a chain (or across the chains of one tree);
// the counters are cumulative and safe for concurrent use. The zero value
// is ready to use; a nil *VersionMetrics disables counting.
type VersionMetrics struct{ m storeMetrics }

// Derives reports the number of versions derived against these metrics.
func (vm *VersionMetrics) Derives() int64 { return vm.m.derives.Load() }

// Folds reports overlays folded into a fresh flat base.
func (vm *VersionMetrics) Folds() int64 { return vm.m.folds.Load() }

// Squashes reports overlay chains merged into a single layer.
func (vm *VersionMetrics) Squashes() int64 { return vm.m.squashes.Load() }

// store returns the internal counter set (nil-safe).
func (vm *VersionMetrics) store() *storeMetrics {
	if vm == nil {
		return nil
	}
	return &vm.m
}

// DeleteVersion derives the version of r with the given live keys
// tombstoned, in O(|dead|) plus amortized compaction, sharing the
// receiver's storage. Callers must pass only keys r currently contains
// and treat both relations as immutable afterwards — the same contract
// Database.DeleteAll operates under.
func (r *Relation) DeleteVersion(dead map[string]struct{}, vm *VersionMetrics) *Relation {
	m := vm.store()
	if m != nil {
		m.derives.Add(1)
	}
	return r.deleteVersion(dead, m)
}

// InsertVersion derives the version of r with ts appended in order, in
// O(|ts|) plus amortized compaction, sharing the receiver's storage.
// Callers must pass only tuples r does not contain, without duplicates,
// and treat both relations as immutable afterwards.
func (r *Relation) InsertVersion(ts []Tuple, vm *VersionMetrics) *Relation {
	m := vm.store()
	if m != nil {
		m.derives.Add(1)
	}
	return r.insertVersion(ts, m)
}

// OverlayFoldLimit is the cumulative mention count past which an overlay
// should be folded into a fresh flat base of the given size. Exported so
// overlay consumers outside this package (the provenance node stores'
// witness and bucket maps) compact on the same amortization thresholds as
// the relations themselves.
func OverlayFoldLimit(baseLen int) int { return foldLimit(baseLen) }

// OverlayMaxDepth is the overlay chain depth past which a derive should
// squash the chain into a single layer; see OverlayFoldLimit.
const OverlayMaxDepth = maxOverlayDepth

// OverlayDepth reports the relation's overlay chain length (0 when flat).
func (r *Relation) OverlayDepth() int { return r.overlayDepth() }

// OverlayMentions reports the relation's cumulative overlay size
// (tombstones + appended tuples; 0 when flat).
func (r *Relation) OverlayMentions() int { return r.overlayMentions() }
