package relation_test

// The store-level differential suite lives in an external test package so
// it can share the copy-the-world reference model (internal/storetest)
// with the engine-level suite, and so it exercises the versioned store
// strictly through its public API.

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/relation"
	"repro/internal/storetest"
)

func diffSeedDB(nR, nS int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", relation.NewSchema("A", "B"))
	for i := 0; i < nR; i++ {
		r.InsertStrings("a"+strconv.Itoa(i), "b"+strconv.Itoa(i%7))
	}
	s := relation.New("S", relation.NewSchema("B", "C"))
	for i := 0; i < nS; i++ {
		s.InsertStrings("b"+strconv.Itoa(i%7), "c"+strconv.Itoa(i))
	}
	db.MustAdd(r)
	db.MustAdd(s)
	return db
}

// assertSameDB checks the versioned database against the oracle on every
// observable surface: rendered tuple order, Len, Contains, and positional
// access.
func assertSameDB(t *testing.T, got *relation.Database, o *storetest.Oracle, ctx string) {
	t.Helper()
	want := o.Build()
	if g, w := relation.WriteDatabaseString(got), relation.WriteDatabaseString(want); g != w {
		t.Fatalf("%s: versioned database diverged from oracle\n got:\n%s\nwant:\n%s", ctx, g, w)
	}
	for _, n := range o.Relations() {
		gr, wr := got.Relation(n), want.Relation(n)
		if gr.Len() != wr.Len() {
			t.Fatalf("%s: %s.Len() = %d, want %d", ctx, n, gr.Len(), wr.Len())
		}
		for i, wt := range wr.Tuples() {
			if gt := gr.Tuple(i); gt.Key() != wt.Key() {
				t.Fatalf("%s: %s.Tuple(%d) = %v, want %v", ctx, n, i, gt, wt)
			}
			if !gr.Contains(wt) {
				t.Fatalf("%s: %s missing %v", ctx, n, wt)
			}
		}
		// Each must agree with Tuples without materializing first.
		i := 0
		gr.Each(func(tt relation.Tuple) bool {
			if wt := wr.Tuple(i); tt.Key() != wt.Key() {
				t.Fatalf("%s: %s Each[%d] = %v, want %v", ctx, n, i, tt, wt)
			}
			i++
			return true
		})
		if i != wr.Len() {
			t.Fatalf("%s: %s Each yielded %d tuples, want %d", ctx, n, i, wr.Len())
		}
	}
}

// TestVersionedOpsDifferential drives long random DeleteAll/InsertAll
// sequences — enough to force both compaction paths (folds and squashes)
// several times over — and asserts after every step that the derived
// generation is byte-identical to a legacy copy-the-world rebuild. The
// same sequence runs against the unsegmented store and against sharded
// stores at several segment counts (including 1, the degenerate shard, and
// 17, a prime that scatters every delta): the segment count must be
// unobservable on every surface.
func TestVersionedOpsDifferential(t *testing.T) {
	for _, segments := range []int{0, 1, 4, 17} {
		segments := segments
		t.Run(fmt.Sprintf("segments=%d", segments), func(t *testing.T) {
			testVersionedOpsDifferential(t, segments)
		})
	}
}

func testVersionedOpsDifferential(t *testing.T, segments int) {
	// Segmented runs go longer and start bigger: fold thresholds are per
	// segment, so each segment needs enough tuples and churn of its own to
	// cycle through ≥2 folds even at the highest segment count.
	steps, seeds, nR, nS := 400, int64(3), 40, 30
	if segments > 0 {
		steps, seeds, nR, nS = 1200, 2, 400, 300
	}
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := diffSeedDB(nR, nS)
		if segments > 0 {
			db = db.Sharded(segments)
		}
		o := storetest.NewOracle(db)
		fresh := 0 // counter for brand-new tuples so inserts can grow the store

		for step := 0; step < steps; step++ {
			if rng.Intn(2) == 0 {
				// Delete 1-3 random existing tuples (sometimes a miss).
				var T []relation.SourceTuple
				for k := 0; k < 1+rng.Intn(3); k++ {
					rel := []string{"R", "S"}[rng.Intn(2)]
					r := db.Relation(rel)
					if r.Len() == 0 {
						continue
					}
					T = append(T, relation.SourceTuple{Rel: rel, Tuple: r.Tuple(rng.Intn(r.Len()))})
				}
				if rng.Intn(8) == 0 {
					T = append(T, relation.SourceTuple{Rel: "R", Tuple: relation.StringTuple("missing", "missing")})
				}
				db = db.DeleteAll(T)
				o.DeleteAll(T)
			} else {
				// Insert a mix of brand-new tuples and duplicates.
				var I []relation.SourceTuple
				for k := 0; k < 1+rng.Intn(3); k++ {
					rel := []string{"R", "S"}[rng.Intn(2)]
					if rng.Intn(2) == 0 {
						fresh++
						I = append(I, relation.SourceTuple{Rel: rel, Tuple: relation.StringTuple("n"+strconv.Itoa(fresh), "m"+strconv.Itoa(fresh%5))})
					} else if r := db.Relation(rel); r.Len() > 0 {
						I = append(I, relation.SourceTuple{Rel: rel, Tuple: r.Tuple(rng.Intn(r.Len()))})
					}
				}
				next, err := db.InsertAll(I)
				if err != nil {
					t.Fatalf("seed %d step %d: InsertAll: %v", seed, step, err)
				}
				db = next
				o.InsertAll(I)
			}
			assertSameDB(t, db, o, fmt.Sprintf("seed %d step %d", seed, step))
		}

		st := db.StoreStats()
		if st.Compactions < 2 {
			t.Fatalf("seed %d: %d steps produced %d overlay folds, want ≥ 2 (stats %+v)", seed, steps, st.Compactions, st)
		}
		if st.Squashes == 0 {
			t.Fatalf("seed %d: %d steps never squashed a chain (stats %+v)", seed, steps, st)
		}
		if st.DerivedVersions != int64(steps) {
			t.Fatalf("seed %d: DerivedVersions = %d, want %d", seed, st.DerivedVersions, steps)
		}
		if st.SharedRelations+st.RewrittenRelations != int64(2*steps) {
			t.Fatalf("seed %d: shared %d + rewritten %d, want %d relation passes",
				seed, st.SharedRelations, st.RewrittenRelations, 2*steps)
		}
		if segments > 0 {
			if st.Segmented.Relations != 2 || st.Segmented.Segments != 2*segments {
				t.Fatalf("seed %d: segment stats %+v, want 2 relations × %d segments", seed, st.Segmented, segments)
			}
			if st.Segmented.ParallelDerives == 0 && segments > 1 {
				t.Fatalf("seed %d: no derive ever scattered across segments (stats %+v)", seed, st.Segmented)
			}
		}
	}
}
