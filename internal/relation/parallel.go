package relation

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn over 0..n-1 across min(n, GOMAXPROCS) goroutines
// pulling indexes from a shared work-stealing counter, so uneven per-index
// cost (one segment folding while its neighbors derive a one-key layer)
// balances itself. GOMAXPROCS is read at call time, not process start, so
// benchmark -cpu sweeps change the fan-out. Inlines when a single worker
// would run — the scatter/gather paths cost nothing extra on GOMAXPROCS=1.
func parallelFor(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
