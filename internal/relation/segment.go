package relation

// Sharded persistent stores: the scatter/gather representation behind
// Database.Sharded. A segmented relation hash-partitions its tuples by key
// into a fixed number of segments, each an independent versioned store —
// its own immutable base array, tombstone/append overlay chain, and
// fold/squash schedule — so deriving a commit's overlay, folding a
// saturated overlay into a fresh base, and answering containment probes
// all cost O(segment) and run concurrently across segments (parallel.For),
// where the unsegmented store serializes one O(relation) pass on a single
// goroutine.
//
// Iteration order is the only subtlety: the observable contract (and the
// differential suites) require byte-identical order to a legacy rebuild —
// base order minus tombstones, then appends oldest-first. Hash
// partitioning destroys positional order, so every entry carries a global
// monotone sequence number assigned at insertion: base entries keep their
// original positions' sequences, appended tuples take fresh sequences
// greater than every live one, and iteration k-way-merges the per-segment
// streams by sequence. Within one segment emission is always
// sequence-ascending — the base is sequence-sorted (folds rebuild it in
// emission order, which is ascending by induction), and every layer's
// appends carry sequences above all below — so the merge reproduces the
// legacy order exactly, including the delete-then-reinsert
// re-emission-at-the-end rule.
//
// Segments compact on their own thresholds (segFoldMin/segMaxDepth below
// the legacy overlayFoldMin/maxOverlayDepth): a segment's base is a
// fraction of the relation, so both the fold floor and the tolerable chain
// depth shrink with it, keeping per-probe overlay walks short without
// giving up fold amortization.

import "repro/internal/parallel"

const (
	segFoldMin  = 24
	segMaxDepth = 8
)

func segFoldLimit(baseLen int) int {
	if l := baseLen / overlayFoldDiv; l > segFoldMin {
		return l
	}
	return segFoldMin
}

// segHash is the partition function — 32-bit FNV-1a, shared with the
// maintenance layers via the parallel package so a tuple's view-delta
// partition matches its storage segment.
func segHash(key string) uint32 { return parallel.Hash(key) }

// seqTuple is one stored tuple tagged with its global insertion sequence.
type seqTuple struct {
	seq uint64
	t   Tuple
}

// segLayer is one immutable overlay generation of a segment; the exact
// analogue of layer (version.go) over sequence-tagged entries.
type segLayer struct {
	below      *segLayer
	dead       map[string]struct{} // keys tombstoned at this layer
	added      []seqTuple          // novel entries appended at this layer
	addedIndex map[string]struct{} // keys of added
	depth      int
	mentions   int
}

func segChainDepth(l *segLayer) int {
	if l == nil {
		return 0
	}
	return l.depth
}

func segChainMentions(l *segLayer) int {
	if l == nil {
		return 0
	}
	return l.mentions
}

// segment is one hash partition: an immutable sequence-sorted base plus an
// overlay chain, exactly the versioned-relation representation scaled down.
type segment struct {
	base  []seqTuple
	index map[string]int // key -> position in base
	top   *segLayer
	live  int
}

func (s *segment) containsKey(key string) bool {
	for l := s.top; l != nil; l = l.below {
		if _, ok := l.addedIndex[key]; ok {
			return true
		}
		if _, ok := l.dead[key]; ok {
			return false
		}
	}
	_, ok := s.index[key]
	return ok
}

// mentionsMap resolves every key the overlay mentions to its deciding
// layer (nil when the topmost mention is a tombstone); same resolution
// rule as Relation.mentionsMap.
func (s *segment) mentionsMap() map[string]*segLayer {
	if s.top == nil {
		return nil
	}
	m := make(map[string]*segLayer, s.top.mentions)
	for l := s.top; l != nil; l = l.below {
		for _, st := range l.added {
			k := st.t.Key()
			if _, ok := m[k]; !ok {
				m[k] = l
			}
		}
		for k := range l.dead {
			if _, ok := m[k]; !ok {
				m[k] = nil
			}
		}
	}
	return m
}

func (s *segment) layersBottomUp() []*segLayer {
	if s.top == nil {
		return nil
	}
	out := make([]*segLayer, 0, s.top.depth)
	for l := s.top; l != nil; l = l.below {
		out = append(out, l)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// eachLive walks the segment's live entries in sequence order.
func (s *segment) eachLive(yield func(seqTuple) bool) {
	m := s.mentionsMap()
	for _, st := range s.base {
		if _, mentioned := m[st.t.Key()]; !mentioned {
			if !yield(st) {
				return
			}
		}
	}
	for _, l := range s.layersBottomUp() {
		for _, st := range l.added {
			if m[st.t.Key()] == l {
				if !yield(st) {
					return
				}
			}
		}
	}
}

func (s *segment) flattenSeq() []seqTuple {
	out := make([]seqTuple, 0, s.live)
	s.eachLive(func(st seqTuple) bool {
		out = append(out, st)
		return true
	})
	return out
}

// withLayer publishes the segment version with l on top, folding or
// squashing on the per-segment thresholds. Folds cost O(segment), not
// O(relation) — the point of sharding — and neighboring segments fold
// independently on their own schedules.
func (s *segment) withLayer(l *segLayer, live int, m *storeMetrics) *segment {
	v := &segment{base: s.base, index: s.index, top: l, live: live}
	if l.mentions > segFoldLimit(len(s.base)) {
		flat := v.flattenSeq()
		index := make(map[string]int, len(flat))
		for i, st := range flat {
			index[st.t.Key()] = i
		}
		if m != nil {
			m.folds.Add(1)
		}
		return &segment{base: flat, index: index, live: len(flat)}
	}
	if l.depth > segMaxDepth {
		v.top = v.squashedTop()
		if m != nil {
			m.squashes.Add(1)
		}
	}
	return v
}

// squashedTop merges the chain into one layer over the same base; same
// semantics as Relation.squashedTop.
func (s *segment) squashedTop() *segLayer {
	m := s.mentionsMap()
	dead := make(map[string]struct{})
	for k := range m {
		if _, inBase := s.index[k]; inBase {
			dead[k] = struct{}{}
		}
	}
	var added []seqTuple
	addedIndex := make(map[string]struct{})
	for _, l := range s.layersBottomUp() {
		for _, st := range l.added {
			if k := st.t.Key(); m[k] == l {
				added = append(added, st)
				addedIndex[k] = struct{}{}
			}
		}
	}
	return &segLayer{dead: dead, added: added, addedIndex: addedIndex, depth: 1, mentions: len(dead) + len(added)}
}

// deleteSeg derives the segment with the given present keys tombstoned.
func (s *segment) deleteSeg(dead map[string]struct{}, m *storeMetrics) *segment {
	l := &segLayer{
		below:    s.top,
		dead:     dead,
		depth:    segChainDepth(s.top) + 1,
		mentions: segChainMentions(s.top) + len(dead),
	}
	return s.withLayer(l, s.live-len(dead), m)
}

// insertSeg derives the segment with the novel entries appended; entries
// must be key-distinct, absent from the segment, and sequence-ascending.
func (s *segment) insertSeg(ts []seqTuple, m *storeMetrics) *segment {
	addedIndex := make(map[string]struct{}, len(ts))
	for _, st := range ts {
		addedIndex[st.t.Key()] = struct{}{}
	}
	l := &segLayer{
		below:      s.top,
		added:      ts,
		addedIndex: addedIndex,
		depth:      segChainDepth(s.top) + 1,
		mentions:   segChainMentions(s.top) + len(ts),
	}
	return s.withLayer(l, s.live+len(ts), m)
}

// segStore is the sharded store of one relation: the segment array plus
// the global sequence allocator. Immutable after construction — derives
// build a new store sharing untouched segments by pointer — so any
// retained generation stays readable while writers scatter new ones.
type segStore struct {
	segs []*segment
	live int
	// nextSeq is the next unallocated global sequence number.
	// propview:generation
	nextSeq uint64
}

func (st *segStore) segOf(key string) int {
	return int(segHash(key) % uint32(len(st.segs)))
}

func (st *segStore) containsKey(key string) bool {
	return st.segs[st.segOf(key)].containsKey(key)
}

// deleteAll derives the store with the present subset of keys tombstoned:
// keys scatter to their segments, each affected segment filters to the
// keys it actually holds and derives its next version (folding on its own
// schedule) concurrently with its neighbors, and the gather shares every
// untouched segment by pointer. Returns (nil, false) when no requested key
// was present, so the caller can share the whole relation.
//
// propview:publish
func (st *segStore) deleteAll(keys []string, m *storeMetrics) (*segStore, bool) {
	if len(keys) == 0 {
		return nil, false
	}
	bySeg := make([][]string, len(st.segs))
	for _, k := range keys {
		i := st.segOf(k)
		bySeg[i] = append(bySeg[i], k)
	}
	affected := make([]int, 0, len(st.segs))
	for i := range bySeg {
		if len(bySeg[i]) > 0 {
			affected = append(affected, i)
		}
	}
	segs := make([]*segment, len(st.segs))
	copy(segs, st.segs)
	removed := make([]int, len(st.segs))
	if len(affected) > 1 && m != nil {
		m.parallelDerives.Add(1)
	}
	parallel.For(len(affected), func(j int) {
		i := affected[j]
		s := st.segs[i]
		var present map[string]struct{}
		for _, k := range bySeg[i] {
			if s.containsKey(k) {
				if present == nil {
					present = make(map[string]struct{}, len(bySeg[i]))
				}
				present[k] = struct{}{}
			}
		}
		if len(present) == 0 {
			return
		}
		segs[i] = s.deleteSeg(present, m)
		removed[i] = len(present)
	})
	total := 0
	for _, n := range removed {
		total += n
	}
	if total == 0 {
		return nil, false
	}
	return &segStore{segs: segs, live: st.live - total, nextSeq: st.nextSeq}, true
}

// insertAll derives the store with the novel subset of ts appended in
// request order. Sequences are pre-assigned by request position before the
// scatter — non-novel candidates just leave holes in the sequence space —
// so cross-segment merge order equals request order without any
// coordination between segment workers. Presence checks and intra-batch
// dedup run inside the workers: a key always hashes to one segment, so
// per-segment dedup is global dedup. Returns (nil, false) when nothing was
// novel.
//
// propview:publish
func (st *segStore) insertAll(ts []Tuple, m *storeMetrics) (*segStore, bool) {
	if len(ts) == 0 {
		return nil, false
	}
	bySeg := make([][]seqTuple, len(st.segs))
	seq := st.nextSeq
	for _, t := range ts {
		i := st.segOf(t.Key())
		bySeg[i] = append(bySeg[i], seqTuple{seq: seq, t: t})
		seq++
	}
	affected := make([]int, 0, len(st.segs))
	for i := range bySeg {
		if len(bySeg[i]) > 0 {
			affected = append(affected, i)
		}
	}
	segs := make([]*segment, len(st.segs))
	copy(segs, st.segs)
	added := make([]int, len(st.segs))
	if len(affected) > 1 && m != nil {
		m.parallelDerives.Add(1)
	}
	parallel.For(len(affected), func(j int) {
		i := affected[j]
		s := st.segs[i]
		var novel []seqTuple
		var seen map[string]struct{}
		for _, c := range bySeg[i] {
			k := c.t.Key()
			if s.containsKey(k) {
				continue
			}
			if _, dup := seen[k]; dup {
				continue
			}
			if seen == nil {
				seen = make(map[string]struct{}, len(bySeg[i]))
			}
			seen[k] = struct{}{}
			novel = append(novel, seqTuple{seq: c.seq, t: c.t.Clone()})
		}
		if len(novel) == 0 {
			return
		}
		segs[i] = s.insertSeg(novel, m)
		added[i] = len(novel)
	})
	total := 0
	for _, n := range added {
		total += n
	}
	if total == 0 {
		return nil, false
	}
	return &segStore{segs: segs, live: st.live + total, nextSeq: seq}, true
}

// segCursor streams one segment's live entries in ascending sequence
// order, pull-style, at O(overlay) extra space.
type segCursor struct {
	base   []seqTuple
	m      map[string]*segLayer
	layers []*segLayer
	bi     int // next base position
	li, ai int // next layer, next position in its added list
	cur    seqTuple
	ok     bool
}

func newSegCursor(s *segment) *segCursor {
	c := &segCursor{base: s.base, m: s.mentionsMap(), layers: s.layersBottomUp()}
	c.advance()
	return c
}

func (c *segCursor) advance() {
	for c.bi < len(c.base) {
		st := c.base[c.bi]
		c.bi++
		if _, mentioned := c.m[st.t.Key()]; !mentioned {
			c.cur, c.ok = st, true
			return
		}
	}
	for c.li < len(c.layers) {
		l := c.layers[c.li]
		for c.ai < len(l.added) {
			st := l.added[c.ai]
			c.ai++
			if c.m[st.t.Key()] == l {
				c.cur, c.ok = st, true
				return
			}
		}
		c.li++
		c.ai = 0
	}
	c.ok = false
}

// cursorHeap is a hand-rolled min-heap on the cursors' current sequence.
type cursorHeap []*segCursor

func (h cursorHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].cur.seq < h[min].cur.seq {
			min = l
		}
		if r < len(h) && h[r].cur.seq < h[min].cur.seq {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// parallelCursorMin is the live-tuple count past which building the
// per-segment cursors (each an O(overlay) mentions-map pass) scatters
// across the worker pool; below it the goroutine fan-out costs more than
// it saves.
const parallelCursorMin = 1 << 14

// eachMerged streams the store's live tuples in global sequence order —
// byte-identical to the legacy unsegmented iteration — by k-way-merging
// the per-segment cursors. Yielded tuples alias segment storage (see
// internal/analysis).
//
// propview:no-retain
func (st *segStore) eachMerged(yield func(Tuple) bool) {
	cs := make([]*segCursor, len(st.segs))
	if st.live >= parallelCursorMin {
		parallel.For(len(st.segs), func(i int) { cs[i] = newSegCursor(st.segs[i]) })
	} else {
		for i, s := range st.segs {
			cs[i] = newSegCursor(s)
		}
	}
	h := make(cursorHeap, 0, len(cs))
	for _, c := range cs {
		if c.ok {
			h = append(h, c)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for len(h) > 0 {
		c := h[0]
		if !yield(c.cur.t) {
			return
		}
		c.advance()
		if c.ok {
			h.siftDown(0)
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			h.siftDown(0)
		}
	}
}

// flatten materializes the live tuples in merge order.
func (st *segStore) flatten() []Tuple {
	out := make([]Tuple, 0, st.live)
	st.eachMerged(func(t Tuple) bool {
		//lint:ignore eachretain flatten materializes the canonical slice; segment storage is immutable once published
		out = append(out, t)
		return true
	})
	return out
}

// overlayDepth / overlayMentions summarize the segments' overlay shape:
// the deepest chain and the total mention count.
func (st *segStore) overlayDepth() int {
	d := 0
	for _, s := range st.segs {
		if sd := segChainDepth(s.top); sd > d {
			d = sd
		}
	}
	return d
}

func (st *segStore) overlayMentions() int {
	n := 0
	for _, s := range st.segs {
		n += segChainMentions(s.top)
	}
	return n
}

// withSeg publishes a derived segmented version of r over the given store.
func (r *Relation) withSeg(ns *segStore) *Relation {
	r.shared.Store(true)
	v := &Relation{name: r.name, schema: r.schema, seg: ns}
	v.shared.Store(true)
	return v
}

// sharded builds a segmented snapshot of the relation: tuples are deep-
// copied into n hash partitions with sequence numbers preserving the
// current iteration order. O(|r|) — a one-time re-shard, not a derive.
func (r *Relation) sharded(n int) *Relation {
	parts := make([][]seqTuple, n)
	var seq uint64
	r.Each(func(t Tuple) bool {
		i := int(segHash(t.Key()) % uint32(n))
		parts[i] = append(parts[i], seqTuple{seq: seq, t: t.Clone()})
		seq++
		return true
	})
	segs := make([]*segment, n)
	for i, p := range parts {
		idx := make(map[string]int, len(p))
		for j, st := range p {
			idx[st.t.Key()] = j
		}
		segs[i] = &segment{base: p, index: idx, live: len(p)}
	}
	//lint:ignore genmonotonic sharded starts a fresh sequence space; seq counted the re-sharded tuples from zero
	v := &Relation{name: r.name, schema: r.schema, seg: &segStore{segs: segs, live: int(seq), nextSeq: seq}}
	v.shared.Store(true)
	return v
}

// Segments reports the relation's segment count (0 when unsegmented).
func (r *Relation) Segments() int {
	if r.seg == nil {
		return 0
	}
	return len(r.seg.segs)
}
