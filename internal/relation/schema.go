package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute names a column. Attribute comparison is case-sensitive, as in
// the paper where A, B, C, A1, ... are distinct symbols.
type Attribute = string

// Schema is an ordered list of distinct attribute names. The order fixes the
// positional layout of tuples; set-level operations (union compatibility,
// natural-join attribute overlap) ignore order.
type Schema struct {
	attrs []Attribute
	pos   map[Attribute]int
}

// NewSchema builds a schema from the given attribute names. It panics if an
// attribute repeats, which is a programmer error in query construction.
func NewSchema(attrs ...Attribute) Schema {
	s := Schema{attrs: append([]Attribute(nil), attrs...), pos: make(map[Attribute]int, len(attrs))}
	for i, a := range s.attrs {
		if _, dup := s.pos[a]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q in schema", a))
		}
		s.pos[a] = i
	}
	return s
}

// Len returns the arity of the schema.
func (s Schema) Len() int { return len(s.attrs) }

// Attrs returns the attributes in positional order. The returned slice must
// not be modified.
func (s Schema) Attrs() []Attribute { return s.attrs }

// Attr returns the attribute at position i.
func (s Schema) Attr(i int) Attribute { return s.attrs[i] }

// Index returns the position of attribute a and whether it exists.
func (s Schema) Index(a Attribute) (int, bool) {
	i, ok := s.pos[a]
	return i, ok
}

// Has reports whether the schema contains attribute a.
func (s Schema) Has(a Attribute) bool {
	_, ok := s.pos[a]
	return ok
}

// Equal reports whether two schemas have the same attributes in the same
// order.
func (s Schema) Equal(t Schema) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for i, a := range s.attrs {
		if t.attrs[i] != a {
			return false
		}
	}
	return true
}

// SameSet reports whether two schemas have the same attributes, ignoring
// order. Union in the paper requires union-compatible schemas; we accept
// reordered schemas and normalize positionally at evaluation time.
func (s Schema) SameSet(t Schema) bool {
	if len(s.attrs) != len(t.attrs) {
		return false
	}
	for _, a := range s.attrs {
		if !t.Has(a) {
			return false
		}
	}
	return true
}

// Common returns the attributes shared by s and t, in s's order. Natural
// join equates exactly these.
func (s Schema) Common(t Schema) []Attribute {
	var out []Attribute
	for _, a := range s.attrs {
		if t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Disjoint reports whether the two schemas share no attribute. Chain joins
// (Theorem 2.6) require non-consecutive relations to be disjoint.
func (s Schema) Disjoint(t Schema) bool { return len(s.Common(t)) == 0 }

// Join returns the schema of the natural join s ⋈ t: s's attributes followed
// by t's attributes that are not in s.
func (s Schema) Join(t Schema) Schema {
	out := append([]Attribute(nil), s.attrs...)
	for _, a := range t.attrs {
		if !s.Has(a) {
			out = append(out, a)
		}
	}
	return NewSchema(out...)
}

// Project returns the sub-schema consisting of the given attributes, in the
// given order. It returns an error if an attribute is missing.
func (s Schema) Project(attrs []Attribute) (Schema, error) {
	for _, a := range attrs {
		if !s.Has(a) {
			return Schema{}, fmt.Errorf("relation: projection attribute %q not in schema %s", a, s)
		}
	}
	return NewSchema(attrs...), nil
}

// Rename applies the attribute mapping θ to the schema. Attributes not in
// the mapping are kept. It returns an error if the result has duplicates.
func (s Schema) Rename(theta map[Attribute]Attribute) (Schema, error) {
	out := make([]Attribute, len(s.attrs))
	seen := make(map[Attribute]bool, len(s.attrs))
	for i, a := range s.attrs {
		b := a
		if nb, ok := theta[a]; ok {
			b = nb
		}
		if seen[b] {
			return Schema{}, fmt.Errorf("relation: renaming produces duplicate attribute %q", b)
		}
		seen[b] = true
		out[i] = b
	}
	return NewSchema(out...), nil
}

// Sorted returns the attribute names in lexicographic order. Used for
// deterministic printing.
func (s Schema) Sorted() []Attribute {
	out := append([]Attribute(nil), s.attrs...)
	sort.Strings(out)
	return out
}

// String renders the schema as (A, B, C).
func (s Schema) String() string {
	return "(" + strings.Join(s.attrs, ", ") + ")"
}
