package relation

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	s := String("abc")
	if s.Kind() != KindString || s.Str() != "abc" {
		t.Fatalf("String: got kind=%v str=%q", s.Kind(), s.Str())
	}
	i := Int(42)
	if i.Kind() != KindInt || i.IntVal() != 42 {
		t.Fatalf("Int: got kind=%v int=%d", i.Kind(), i.IntVal())
	}
}

func TestValueEquality(t *testing.T) {
	if String("a") != String("a") {
		t.Error("equal strings must be ==")
	}
	if String("a") == String("b") {
		t.Error("distinct strings must differ")
	}
	if Int(1) != Int(1) {
		t.Error("equal ints must be ==")
	}
	if String("1") == Int(1) {
		t.Error("string \"1\" must differ from int 1")
	}
}

func TestValueOrderTotality(t *testing.T) {
	vals := []Value{String(""), String("a"), String("b"), Int(-1), Int(0), Int(7)}
	for _, v := range vals {
		for _, w := range vals {
			c := v.Compare(w)
			switch {
			case v == w && c != 0:
				t.Errorf("Compare(%v,%v)=%d want 0", v, w, c)
			case v != w && c == 0:
				t.Errorf("Compare(%v,%v)=0 for distinct values", v, w)
			case c != -w.Compare(v):
				t.Errorf("Compare not antisymmetric on %v,%v", v, w)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	if got := Int(-5).String(); got != "-5" {
		t.Errorf("Int(-5).String()=%q", got)
	}
	if got := String("x1").String(); got != "x1" {
		t.Errorf("String(x1).String()=%q", got)
	}
}

func TestParseValue(t *testing.T) {
	if v := ParseValue("123", true); v != Int(123) {
		t.Errorf("ParseValue(123,true)=%v want Int", v)
	}
	if v := ParseValue("123", false); v != String("123") {
		t.Errorf("ParseValue(123,false)=%v want String", v)
	}
	if v := ParseValue("x1", true); v != String("x1") {
		t.Errorf("ParseValue(x1,true)=%v want String", v)
	}
}

// Tuple keys must be injective: distinct tuples yield distinct keys even in
// the presence of separator characters inside values.
func TestTupleKeyInjective(t *testing.T) {
	pairs := [][2]Tuple{
		{StringTuple("a|b", "c"), StringTuple("a", "b|c")},
		{StringTuple("a", ""), StringTuple("", "a")},
		{StringTuple("a#1"), NewTuple(String("a"), Int(1))},
		{NewTuple(Int(1), Int(23)), NewTuple(Int(12), Int(3))},
		{StringTuple(`a\`, "b"), StringTuple(`a`, `\b`)},
		{StringTuple("$x"), NewTuple(String("x"))},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("key collision: %v and %v both map to %q", p[0], p[1], p[0].Key())
		}
	}
}

func TestTupleKeyInjectiveQuick(t *testing.T) {
	// Property: Key() equality coincides with tuple equality for random
	// string tuples over a hostile alphabet.
	alphabet := []rune{'a', 'b', '|', '#', '$', '\\', '0'}
	gen := func(r *rand.Rand) Tuple {
		n := r.Intn(4)
		tp := make(Tuple, n)
		for i := range tp {
			m := r.Intn(4)
			var sb strings.Builder
			for j := 0; j < m; j++ {
				sb.WriteRune(alphabet[r.Intn(len(alphabet))])
			}
			tp[i] = String(sb.String())
		}
		return tp
	}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vs []reflect.Value, r *rand.Rand) {
			vs[0] = reflect.ValueOf(gen(r))
			vs[1] = reflect.ValueOf(gen(r))
		},
	}
	prop := func(a, b Tuple) bool {
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestFormatValues(t *testing.T) {
	got := FormatValues([]Value{String("a"), Int(2)})
	if got != "(a, 2)" {
		t.Errorf("FormatValues=%q", got)
	}
}
