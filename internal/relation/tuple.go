package relation

import (
	"strings"
)

// Tuple is a positional list of values laid out according to some schema.
// A tuple has no identity beyond its values: the paper's model is purely
// set-based, so two tuples with equal values in equal positions are the
// same tuple.
type Tuple []Value

// NewTuple copies the given values into a fresh tuple.
func NewTuple(vs ...Value) Tuple { return append(Tuple(nil), vs...) }

// StringTuple builds a tuple of string constants.
func StringTuple(ss ...string) Tuple { return Tuple(Values(ss...)) }

// Equal reports whether two tuples agree in length and in every position.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i, v := range t {
		if v != u[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the tuple suitable for use as
// a map key. Distinct tuples always produce distinct keys.
func (t Tuple) Key() string {
	var b strings.Builder
	b.Grow(len(t) * 8)
	for i, v := range t {
		if i > 0 {
			b.WriteByte('|')
		}
		v.appendKey(&b)
	}
	return b.String()
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Less orders tuples lexicographically; used only for deterministic output.
func (t Tuple) Less(u Tuple) bool {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c < 0
		}
	}
	return len(t) < len(u)
}

// Project extracts the values at the given positions, in order.
func (t Tuple) Project(positions []int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string { return FormatValues(t) }

// ProjectAttrs extracts the named attributes from a tuple laid out by
// schema. It panics if an attribute is absent; callers validate schemas at
// query-construction time.
func ProjectAttrs(schema Schema, t Tuple, attrs []Attribute) Tuple {
	out := make(Tuple, len(attrs))
	for i, a := range attrs {
		p, ok := schema.Index(a)
		if !ok {
			panic("relation: ProjectAttrs: attribute " + a + " not in schema " + schema.String())
		}
		out[i] = t[p]
	}
	return out
}

// AgreeOn reports whether tuples t (over st) and u (over su) have equal
// values on every attribute in attrs. Natural join matches exactly the
// pairs that agree on the common attributes.
func AgreeOn(st Schema, t Tuple, su Schema, u Tuple, attrs []Attribute) bool {
	for _, a := range attrs {
		i, ok := st.Index(a)
		if !ok {
			return false
		}
		j, ok := su.Index(a)
		if !ok {
			return false
		}
		if t[i] != u[j] {
			return false
		}
	}
	return true
}
