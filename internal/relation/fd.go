package relation

import (
	"fmt"
	"strings"
)

// FD is a functional dependency X → Y on a named relation. The paper's
// §2.1.1 remark — joins on keys make the side-effect-free decision
// polynomial — and the related-work pointers to Dayal–Bernstein and Keller
// all work with FDs, so the model carries them.
type FD struct {
	Rel         string
	Determinant []Attribute
	Dependent   []Attribute
}

// String renders the FD as R: A B -> C.
func (fd FD) String() string {
	return fmt.Sprintf("%s: %s -> %s", fd.Rel,
		strings.Join(fd.Determinant, " "), strings.Join(fd.Dependent, " "))
}

// Holds checks the dependency against the current contents of the
// database: no two tuples agreeing on the determinant may disagree on the
// dependent.
func (fd FD) Holds(db *Database) (bool, error) {
	r := db.Relation(fd.Rel)
	if r == nil {
		return false, fmt.Errorf("relation: FD references unknown relation %q", fd.Rel)
	}
	for _, a := range fd.Determinant {
		if !r.Schema().Has(a) {
			return false, fmt.Errorf("relation: FD determinant %q not in %s%s", a, fd.Rel, r.Schema())
		}
	}
	for _, a := range fd.Dependent {
		if !r.Schema().Has(a) {
			return false, fmt.Errorf("relation: FD dependent %q not in %s%s", a, fd.Rel, r.Schema())
		}
	}
	byDet := make(map[string]Tuple, r.Len())
	for _, t := range r.Tuples() {
		dk := ProjectAttrs(r.Schema(), t, fd.Determinant).Key()
		dep := ProjectAttrs(r.Schema(), t, fd.Dependent)
		if prev, ok := byDet[dk]; ok {
			if !prev.Equal(dep) {
				return false, nil
			}
		} else {
			byDet[dk] = dep
		}
	}
	return true, nil
}

// IsKey reports whether attrs functionally determine the whole relation in
// its current contents: no two distinct tuples agree on attrs. A key in
// the instance sense, which is what lossless-join reasoning needs.
func (r *Relation) IsKey(attrs []Attribute) bool {
	for _, a := range attrs {
		if !r.Schema().Has(a) {
			return false
		}
	}
	seen := make(map[string]bool, r.Len())
	for _, t := range r.Tuples() {
		k := ProjectAttrs(r.Schema(), t, attrs).Key()
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// Key declares attrs a key of rel: shorthand for the FD attrs → schema.
func Key(rel string, schema Schema, attrs ...Attribute) FD {
	return FD{Rel: rel, Determinant: attrs, Dependent: schema.Attrs()}
}
